file(REMOVE_RECURSE
  "CMakeFiles/vecycle_analysis.dir/binning.cpp.o"
  "CMakeFiles/vecycle_analysis.dir/binning.cpp.o.d"
  "CMakeFiles/vecycle_analysis.dir/table.cpp.o"
  "CMakeFiles/vecycle_analysis.dir/table.cpp.o.d"
  "CMakeFiles/vecycle_analysis.dir/technique.cpp.o"
  "CMakeFiles/vecycle_analysis.dir/technique.cpp.o.d"
  "CMakeFiles/vecycle_analysis.dir/vdi.cpp.o"
  "CMakeFiles/vecycle_analysis.dir/vdi.cpp.o.d"
  "libvecycle_analysis.a"
  "libvecycle_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
