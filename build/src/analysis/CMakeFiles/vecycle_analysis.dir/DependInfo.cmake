
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/binning.cpp" "src/analysis/CMakeFiles/vecycle_analysis.dir/binning.cpp.o" "gcc" "src/analysis/CMakeFiles/vecycle_analysis.dir/binning.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/analysis/CMakeFiles/vecycle_analysis.dir/table.cpp.o" "gcc" "src/analysis/CMakeFiles/vecycle_analysis.dir/table.cpp.o.d"
  "/root/repo/src/analysis/technique.cpp" "src/analysis/CMakeFiles/vecycle_analysis.dir/technique.cpp.o" "gcc" "src/analysis/CMakeFiles/vecycle_analysis.dir/technique.cpp.o.d"
  "/root/repo/src/analysis/vdi.cpp" "src/analysis/CMakeFiles/vecycle_analysis.dir/vdi.cpp.o" "gcc" "src/analysis/CMakeFiles/vecycle_analysis.dir/vdi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecycle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/vecycle_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vecycle_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/digest/CMakeFiles/vecycle_digest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
