file(REMOVE_RECURSE
  "libvecycle_analysis.a"
)
