# Empty dependencies file for vecycle_analysis.
# This may be replaced when dependencies are built.
