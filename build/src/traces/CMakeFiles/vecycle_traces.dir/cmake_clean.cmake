file(REMOVE_RECURSE
  "CMakeFiles/vecycle_traces.dir/machine_spec.cpp.o"
  "CMakeFiles/vecycle_traces.dir/machine_spec.cpp.o.d"
  "CMakeFiles/vecycle_traces.dir/synthesizer.cpp.o"
  "CMakeFiles/vecycle_traces.dir/synthesizer.cpp.o.d"
  "libvecycle_traces.a"
  "libvecycle_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
