
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traces/machine_spec.cpp" "src/traces/CMakeFiles/vecycle_traces.dir/machine_spec.cpp.o" "gcc" "src/traces/CMakeFiles/vecycle_traces.dir/machine_spec.cpp.o.d"
  "/root/repo/src/traces/synthesizer.cpp" "src/traces/CMakeFiles/vecycle_traces.dir/synthesizer.cpp.o" "gcc" "src/traces/CMakeFiles/vecycle_traces.dir/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecycle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vecycle_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/vecycle_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/digest/CMakeFiles/vecycle_digest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
