# Empty dependencies file for vecycle_traces.
# This may be replaced when dependencies are built.
