file(REMOVE_RECURSE
  "libvecycle_traces.a"
)
