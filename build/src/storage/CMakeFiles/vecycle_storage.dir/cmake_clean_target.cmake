file(REMOVE_RECURSE
  "libvecycle_storage.a"
)
