
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/checkpoint.cpp" "src/storage/CMakeFiles/vecycle_storage.dir/checkpoint.cpp.o" "gcc" "src/storage/CMakeFiles/vecycle_storage.dir/checkpoint.cpp.o.d"
  "/root/repo/src/storage/checkpoint_store.cpp" "src/storage/CMakeFiles/vecycle_storage.dir/checkpoint_store.cpp.o" "gcc" "src/storage/CMakeFiles/vecycle_storage.dir/checkpoint_store.cpp.o.d"
  "/root/repo/src/storage/checksum_index.cpp" "src/storage/CMakeFiles/vecycle_storage.dir/checksum_index.cpp.o" "gcc" "src/storage/CMakeFiles/vecycle_storage.dir/checksum_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecycle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/digest/CMakeFiles/vecycle_digest.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vecycle_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vecycle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
