# Empty compiler generated dependencies file for vecycle_storage.
# This may be replaced when dependencies are built.
