file(REMOVE_RECURSE
  "CMakeFiles/vecycle_storage.dir/checkpoint.cpp.o"
  "CMakeFiles/vecycle_storage.dir/checkpoint.cpp.o.d"
  "CMakeFiles/vecycle_storage.dir/checkpoint_store.cpp.o"
  "CMakeFiles/vecycle_storage.dir/checkpoint_store.cpp.o.d"
  "CMakeFiles/vecycle_storage.dir/checksum_index.cpp.o"
  "CMakeFiles/vecycle_storage.dir/checksum_index.cpp.o.d"
  "libvecycle_storage.a"
  "libvecycle_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
