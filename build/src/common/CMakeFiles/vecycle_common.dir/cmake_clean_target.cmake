file(REMOVE_RECURSE
  "libvecycle_common.a"
)
