file(REMOVE_RECURSE
  "CMakeFiles/vecycle_common.dir/log.cpp.o"
  "CMakeFiles/vecycle_common.dir/log.cpp.o.d"
  "CMakeFiles/vecycle_common.dir/units.cpp.o"
  "CMakeFiles/vecycle_common.dir/units.cpp.o.d"
  "libvecycle_common.a"
  "libvecycle_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
