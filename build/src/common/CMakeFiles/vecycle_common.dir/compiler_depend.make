# Empty compiler generated dependencies file for vecycle_common.
# This may be replaced when dependencies are built.
