file(REMOVE_RECURSE
  "libvecycle_sim.a"
)
