file(REMOVE_RECURSE
  "CMakeFiles/vecycle_sim.dir/sim.cpp.o"
  "CMakeFiles/vecycle_sim.dir/sim.cpp.o.d"
  "libvecycle_sim.a"
  "libvecycle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
