# Empty dependencies file for vecycle_sim.
# This may be replaced when dependencies are built.
