file(REMOVE_RECURSE
  "libvecycle_vm.a"
)
