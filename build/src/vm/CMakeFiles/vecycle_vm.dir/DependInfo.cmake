
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/dirty_tracker.cpp" "src/vm/CMakeFiles/vecycle_vm.dir/dirty_tracker.cpp.o" "gcc" "src/vm/CMakeFiles/vecycle_vm.dir/dirty_tracker.cpp.o.d"
  "/root/repo/src/vm/guest_memory.cpp" "src/vm/CMakeFiles/vecycle_vm.dir/guest_memory.cpp.o" "gcc" "src/vm/CMakeFiles/vecycle_vm.dir/guest_memory.cpp.o.d"
  "/root/repo/src/vm/workload.cpp" "src/vm/CMakeFiles/vecycle_vm.dir/workload.cpp.o" "gcc" "src/vm/CMakeFiles/vecycle_vm.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecycle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/digest/CMakeFiles/vecycle_digest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
