# Empty compiler generated dependencies file for vecycle_vm.
# This may be replaced when dependencies are built.
