file(REMOVE_RECURSE
  "CMakeFiles/vecycle_vm.dir/dirty_tracker.cpp.o"
  "CMakeFiles/vecycle_vm.dir/dirty_tracker.cpp.o.d"
  "CMakeFiles/vecycle_vm.dir/guest_memory.cpp.o"
  "CMakeFiles/vecycle_vm.dir/guest_memory.cpp.o.d"
  "CMakeFiles/vecycle_vm.dir/workload.cpp.o"
  "CMakeFiles/vecycle_vm.dir/workload.cpp.o.d"
  "libvecycle_vm.a"
  "libvecycle_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
