file(REMOVE_RECURSE
  "libvecycle_core.a"
)
