# Empty compiler generated dependencies file for vecycle_core.
# This may be replaced when dependencies are built.
