file(REMOVE_RECURSE
  "CMakeFiles/vecycle_core.dir/consolidation.cpp.o"
  "CMakeFiles/vecycle_core.dir/consolidation.cpp.o.d"
  "CMakeFiles/vecycle_core.dir/orchestrator.cpp.o"
  "CMakeFiles/vecycle_core.dir/orchestrator.cpp.o.d"
  "libvecycle_core.a"
  "libvecycle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
