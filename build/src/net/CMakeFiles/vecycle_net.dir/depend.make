# Empty dependencies file for vecycle_net.
# This may be replaced when dependencies are built.
