file(REMOVE_RECURSE
  "libvecycle_net.a"
)
