file(REMOVE_RECURSE
  "CMakeFiles/vecycle_net.dir/message.cpp.o"
  "CMakeFiles/vecycle_net.dir/message.cpp.o.d"
  "libvecycle_net.a"
  "libvecycle_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
