# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("digest")
subdirs("sim")
subdirs("vm")
subdirs("fingerprint")
subdirs("traces")
subdirs("net")
subdirs("storage")
subdirs("migration")
subdirs("core")
subdirs("analysis")
