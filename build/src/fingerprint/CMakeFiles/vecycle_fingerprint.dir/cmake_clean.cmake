file(REMOVE_RECURSE
  "CMakeFiles/vecycle_fingerprint.dir/fingerprint.cpp.o"
  "CMakeFiles/vecycle_fingerprint.dir/fingerprint.cpp.o.d"
  "CMakeFiles/vecycle_fingerprint.dir/trace.cpp.o"
  "CMakeFiles/vecycle_fingerprint.dir/trace.cpp.o.d"
  "libvecycle_fingerprint.a"
  "libvecycle_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
