# Empty dependencies file for vecycle_fingerprint.
# This may be replaced when dependencies are built.
