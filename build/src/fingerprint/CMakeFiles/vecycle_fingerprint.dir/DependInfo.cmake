
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fingerprint/fingerprint.cpp" "src/fingerprint/CMakeFiles/vecycle_fingerprint.dir/fingerprint.cpp.o" "gcc" "src/fingerprint/CMakeFiles/vecycle_fingerprint.dir/fingerprint.cpp.o.d"
  "/root/repo/src/fingerprint/trace.cpp" "src/fingerprint/CMakeFiles/vecycle_fingerprint.dir/trace.cpp.o" "gcc" "src/fingerprint/CMakeFiles/vecycle_fingerprint.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecycle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vecycle_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/digest/CMakeFiles/vecycle_digest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
