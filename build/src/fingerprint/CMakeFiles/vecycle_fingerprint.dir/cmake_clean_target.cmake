file(REMOVE_RECURSE
  "libvecycle_fingerprint.a"
)
