# Empty compiler generated dependencies file for vecycle_migration.
# This may be replaced when dependencies are built.
