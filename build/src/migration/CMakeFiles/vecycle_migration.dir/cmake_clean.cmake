file(REMOVE_RECURSE
  "CMakeFiles/vecycle_migration.dir/destination.cpp.o"
  "CMakeFiles/vecycle_migration.dir/destination.cpp.o.d"
  "CMakeFiles/vecycle_migration.dir/engine.cpp.o"
  "CMakeFiles/vecycle_migration.dir/engine.cpp.o.d"
  "CMakeFiles/vecycle_migration.dir/postcopy.cpp.o"
  "CMakeFiles/vecycle_migration.dir/postcopy.cpp.o.d"
  "CMakeFiles/vecycle_migration.dir/source.cpp.o"
  "CMakeFiles/vecycle_migration.dir/source.cpp.o.d"
  "CMakeFiles/vecycle_migration.dir/strategy.cpp.o"
  "CMakeFiles/vecycle_migration.dir/strategy.cpp.o.d"
  "libvecycle_migration.a"
  "libvecycle_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
