file(REMOVE_RECURSE
  "libvecycle_migration.a"
)
