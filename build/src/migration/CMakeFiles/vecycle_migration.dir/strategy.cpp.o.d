src/migration/CMakeFiles/vecycle_migration.dir/strategy.cpp.o: \
 /root/repo/src/migration/strategy.cpp /usr/include/stdc-predef.h \
 /root/repo/src/migration/strategy.hpp
