# Empty compiler generated dependencies file for vecycle_digest.
# This may be replaced when dependencies are built.
