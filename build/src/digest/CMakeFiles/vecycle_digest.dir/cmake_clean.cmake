file(REMOVE_RECURSE
  "CMakeFiles/vecycle_digest.dir/digest.cpp.o"
  "CMakeFiles/vecycle_digest.dir/digest.cpp.o.d"
  "CMakeFiles/vecycle_digest.dir/fnv.cpp.o"
  "CMakeFiles/vecycle_digest.dir/fnv.cpp.o.d"
  "CMakeFiles/vecycle_digest.dir/hasher.cpp.o"
  "CMakeFiles/vecycle_digest.dir/hasher.cpp.o.d"
  "CMakeFiles/vecycle_digest.dir/md5.cpp.o"
  "CMakeFiles/vecycle_digest.dir/md5.cpp.o.d"
  "CMakeFiles/vecycle_digest.dir/sha1.cpp.o"
  "CMakeFiles/vecycle_digest.dir/sha1.cpp.o.d"
  "CMakeFiles/vecycle_digest.dir/sha256.cpp.o"
  "CMakeFiles/vecycle_digest.dir/sha256.cpp.o.d"
  "libvecycle_digest.a"
  "libvecycle_digest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecycle_digest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
