
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/digest/digest.cpp" "src/digest/CMakeFiles/vecycle_digest.dir/digest.cpp.o" "gcc" "src/digest/CMakeFiles/vecycle_digest.dir/digest.cpp.o.d"
  "/root/repo/src/digest/fnv.cpp" "src/digest/CMakeFiles/vecycle_digest.dir/fnv.cpp.o" "gcc" "src/digest/CMakeFiles/vecycle_digest.dir/fnv.cpp.o.d"
  "/root/repo/src/digest/hasher.cpp" "src/digest/CMakeFiles/vecycle_digest.dir/hasher.cpp.o" "gcc" "src/digest/CMakeFiles/vecycle_digest.dir/hasher.cpp.o.d"
  "/root/repo/src/digest/md5.cpp" "src/digest/CMakeFiles/vecycle_digest.dir/md5.cpp.o" "gcc" "src/digest/CMakeFiles/vecycle_digest.dir/md5.cpp.o.d"
  "/root/repo/src/digest/sha1.cpp" "src/digest/CMakeFiles/vecycle_digest.dir/sha1.cpp.o" "gcc" "src/digest/CMakeFiles/vecycle_digest.dir/sha1.cpp.o.d"
  "/root/repo/src/digest/sha256.cpp" "src/digest/CMakeFiles/vecycle_digest.dir/sha256.cpp.o" "gcc" "src/digest/CMakeFiles/vecycle_digest.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecycle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
