file(REMOVE_RECURSE
  "libvecycle_digest.a"
)
