# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/digest_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/fingerprint_test[1]_include.cmake")
include("/root/repo/build/tests/traces_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/postcopy_test[1]_include.cmake")
include("/root/repo/build/tests/consolidation_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
