# Empty dependencies file for traces_test.
# This may be replaced when dependencies are built.
