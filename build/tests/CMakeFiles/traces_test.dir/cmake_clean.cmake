file(REMOVE_RECURSE
  "CMakeFiles/traces_test.dir/traces_test.cpp.o"
  "CMakeFiles/traces_test.dir/traces_test.cpp.o.d"
  "traces_test"
  "traces_test.pdb"
  "traces_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
