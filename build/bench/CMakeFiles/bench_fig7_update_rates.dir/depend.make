# Empty dependencies file for bench_fig7_update_rates.
# This may be replaced when dependencies are built.
