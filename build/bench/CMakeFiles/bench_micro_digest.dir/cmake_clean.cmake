file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_digest.dir/bench_micro_digest.cpp.o"
  "CMakeFiles/bench_micro_digest.dir/bench_micro_digest.cpp.o.d"
  "bench_micro_digest"
  "bench_micro_digest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_digest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
