# Empty dependencies file for bench_micro_digest.
# This may be replaced when dependencies are built.
