# Empty dependencies file for bench_fig6_best_case.
# This may be replaced when dependencies are built.
