file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_method_sets.dir/bench_fig3_method_sets.cpp.o"
  "CMakeFiles/bench_fig3_method_sets.dir/bench_fig3_method_sets.cpp.o.d"
  "bench_fig3_method_sets"
  "bench_fig3_method_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_method_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
