# Empty dependencies file for bench_fig3_method_sets.
# This may be replaced when dependencies are built.
