file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_duplicate_pages.dir/bench_fig4_duplicate_pages.cpp.o"
  "CMakeFiles/bench_fig4_duplicate_pages.dir/bench_fig4_duplicate_pages.cpp.o.d"
  "bench_fig4_duplicate_pages"
  "bench_fig4_duplicate_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_duplicate_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
