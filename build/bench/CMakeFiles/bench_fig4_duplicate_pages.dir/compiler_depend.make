# Empty compiler generated dependencies file for bench_fig4_duplicate_pages.
# This may be replaced when dependencies are built.
