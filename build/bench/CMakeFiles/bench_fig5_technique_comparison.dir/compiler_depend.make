# Empty compiler generated dependencies file for bench_fig5_technique_comparison.
# This may be replaced when dependencies are built.
