file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_checksum.dir/bench_ablation_checksum.cpp.o"
  "CMakeFiles/bench_ablation_checksum.dir/bench_ablation_checksum.cpp.o.d"
  "bench_ablation_checksum"
  "bench_ablation_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
