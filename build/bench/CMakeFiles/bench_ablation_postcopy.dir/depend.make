# Empty dependencies file for bench_ablation_postcopy.
# This may be replaced when dependencies are built.
