# Empty dependencies file for bench_fig8_vdi.
# This may be replaced when dependencies are built.
