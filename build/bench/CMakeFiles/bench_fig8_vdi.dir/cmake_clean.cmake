file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_vdi.dir/bench_fig8_vdi.cpp.o"
  "CMakeFiles/bench_fig8_vdi.dir/bench_fig8_vdi.cpp.o.d"
  "bench_fig8_vdi"
  "bench_fig8_vdi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_vdi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
