file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_similarity_decay.dir/bench_fig1_similarity_decay.cpp.o"
  "CMakeFiles/bench_fig1_similarity_decay.dir/bench_fig1_similarity_decay.cpp.o.d"
  "bench_fig1_similarity_decay"
  "bench_fig1_similarity_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_similarity_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
