
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/follow_the_sun.cpp" "examples/CMakeFiles/follow_the_sun.dir/follow_the_sun.cpp.o" "gcc" "examples/CMakeFiles/follow_the_sun.dir/follow_the_sun.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vecycle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/digest/CMakeFiles/vecycle_digest.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vecycle_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vecycle_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/vecycle_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/vecycle_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vecycle_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vecycle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/vecycle_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vecycle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/vecycle_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
