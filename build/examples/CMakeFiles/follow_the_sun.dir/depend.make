# Empty dependencies file for follow_the_sun.
# This may be replaced when dependencies are built.
