file(REMOVE_RECURSE
  "CMakeFiles/follow_the_sun.dir/follow_the_sun.cpp.o"
  "CMakeFiles/follow_the_sun.dir/follow_the_sun.cpp.o.d"
  "follow_the_sun"
  "follow_the_sun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/follow_the_sun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
