# Empty dependencies file for vdi_consolidation.
# This may be replaced when dependencies are built.
