file(REMOVE_RECURSE
  "CMakeFiles/vdi_consolidation.dir/vdi_consolidation.cpp.o"
  "CMakeFiles/vdi_consolidation.dir/vdi_consolidation.cpp.o.d"
  "vdi_consolidation"
  "vdi_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdi_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
