// Ablation: a consolidation control loop (Verma et al. [26]) running for
// a simulated work week over 8 desktops, with and without VeCycle.
//
// This closes the paper's loop: dynamic consolidation is one of the
// §1/§2.2 hypotheses for *why* VMs ping-pong between just two hosts —
// and once they do, checkpoint recycling makes the policy's migrations
// nearly free, which in turn lets operators run the policy aggressively
// (the [22]/[26] pain point was precisely migration traffic).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/consolidation.hpp"

namespace {

using namespace vecycle;

/// Office-hours guest: busy hotspot writes by day, trickle by night.
class DiurnalWorkload : public vm::Workload {
 public:
  DiurnalWorkload(std::uint64_t seed, int phase_hours)
      : phase_hours_(phase_hours) {
    // The working set is the hot 8% of RAM; an 8-hour day at this scale
    // must not wander across all of memory or no checkpoint similarity
    // survives (desktops re-touch the same buffers, they don't stream).
    vm::HotspotWorkload::Config busy;
    busy.write_rate_pages_per_s = 800.0;
    busy.hot_fraction = 0.08;
    busy.hot_probability = 0.999;
    busy.seed = seed;
    busy_ = std::make_unique<vm::HotspotWorkload>(busy);
    vm::IdleWorkload::Config idle;
    idle.write_rate_pages_per_s = 1.0;
    idle.seed = seed ^ 0xff;
    idle_ = std::make_unique<vm::IdleWorkload>(idle);
  }

  void Advance(vm::GuestMemory& memory, SimDuration dt) override {
    const int hour =
        static_cast<int>((ToSeconds(clock_) / 3600.0)) % 24;
    clock_ += dt;
    const bool day =
        hour >= 9 + phase_hours_ % 3 && hour < 17 + phase_hours_ % 3;
    if (day) {
      busy_->Advance(memory, dt);
    } else {
      idle_->Advance(memory, dt);
    }
  }

 private:
  int phase_hours_;
  SimTime clock_ = kSimEpoch;
  std::unique_ptr<vm::HotspotWorkload> busy_;
  std::unique_ptr<vm::IdleWorkload> idle_;
};

core::ConsolidationManager::Stats RunWeek(migration::Strategy strategy) {
  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  core::MigrationOrchestrator orchestrator(cluster);
  cluster.AddHost({"consol", sim::DiskConfig::Hdd(), {}, {}, {}});

  constexpr std::size_t kVms = 8;
  std::vector<std::unique_ptr<core::VmInstance>> vms;
  for (std::size_t i = 0; i < kVms; ++i) {
    const std::string worker = "worker-" + std::to_string(i);
    cluster.AddHost({worker, sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.Connect(worker, "consol", sim::LinkConfig::Lan());
    auto vm = std::make_unique<core::VmInstance>(
        "vm-" + std::to_string(i), MiB(512), vm::ContentMode::kSeedOnly);
    Xoshiro256 rng(40 + i);
    vm::MemoryProfile{}.Apply(vm->Memory(), rng);
    vm->SetWorkload(std::make_unique<DiurnalWorkload>(70 + i,
                                                      static_cast<int>(i)));
    orchestrator.Deploy(*vm, worker);
    vms.push_back(std::move(vm));
  }

  core::ConsolidationPolicy policy;
  policy.idle_threshold_writes_per_s = 20.0;
  policy.active_threshold_writes_per_s = 200.0;
  policy.min_dwell = Hours(1);
  migration::MigrationConfig config;
  config.strategy = strategy;
  core::ConsolidationManager manager(cluster, orchestrator, "consol",
                                     policy, config);
  for (std::size_t i = 0; i < kVms; ++i) {
    manager.Register(*vms[i], "worker-" + std::to_string(i));
  }

  // Five days at 30-minute control ticks.
  for (int tick = 0; tick < 5 * 48; ++tick) {
    manager.Tick(Minutes(30));
  }
  return manager.GetStats();
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_ablation_consolidation");
  bench::PrintHeader(
      "Ablation: consolidation loop, 8 x 512 MiB desktops, 5 weekdays");

  analysis::Table table({"Scheme", "Consolidations", "Activations",
                         "Migration traffic", "Migration time"});
  for (const auto& [label, strategy] :
       {std::pair<const char*, migration::Strategy>{
            "full pre-copy", migration::Strategy::kFull},
        {"VeCycle", migration::Strategy::kHashes}}) {
    const auto stats = RunWeek(strategy);
    table.AddRow({label, std::to_string(stats.consolidations),
                  std::to_string(stats.activations),
                  FormatBytes(stats.migration_traffic),
                  FormatDuration(stats.migration_time)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Same policy, same migration schedule — only the transfer mechanism\n"
      "differs. VeCycle turns the consolidation loop's recurring\n"
      "ping-pongs into checksum traffic, removing the operational cost\n"
      "that made aggressive consolidation unattractive [22, 26].\n");
  return 0;
}
