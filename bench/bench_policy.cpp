// Placement-policy corpus bench (docs/policy.md "Scenario corpus"): the
// four ScenarioGen corpus entries — diurnal VDI consolidation, daily
// maintenance drains, spot-eviction storms, and follow-the-sun at 100x
// the follow_the_sun example's fleet (400 VMs) — each run under
// round-robin, checkpoint-affinity, and cycle-aware+affinity placement.
// Like bench_transfer/bench_store, every gated number is *simulated*
// (deterministic and machine-independent): "ns_per_op" is the mean
// simulated migration time per completed leg and "tx_bytes" the
// scenario's total wire bytes, gated against
// bench/BENCH_policy_baseline.json in CI perf-smoke. The followsun100
// rows are deliberately absent from the checked-in baseline; CI admits
// them through bench_compare's --allow-new gate.
//
// The binary re-checks the tentpole claims inline and exits nonzero if
// they fail: pooled over the corpus, cycle-aware+affinity must beat
// round-robin by >= 20% on total wire bytes, and by >= 20% on p99
// downtime over the cyclic (day/night) scenarios, where deferring a
// busy-phase leg into the VM's quiet window is what shrinks the tail.
// It also sweeps the diurnal scenario across PDES worker counts
// {1, 4, 8} and checks the RunResult fingerprints are byte-identical.
//
// Usage: bench_policy [--smoke] [--out BENCH_policy.json]
//   --smoke: one single-simulator diurnal run under cycle-aware
//            placement only (the CI bench-smoke job's audited run; safe
//            under VECYCLE_TRACE=1 / VECYCLE_AUDIT=1).
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/check.hpp"
#include "policy/policies.hpp"
#include "policy/runner.hpp"
#include "policy/scenario.hpp"

namespace {

using namespace vecycle;

struct Row {
  std::string name;
  std::uint64_t iters = 0;     // completed migrations
  double sim_ns = 0.0;         // simulated mean migration time per leg
  std::uint64_t tx_bytes = 0;  // scenario total wire bytes
};

struct CorpusEntry {
  std::string name;
  policy::ScenarioConfig config;
  bool cyclic = false;  ///< day/night workloads (p99 downtime pool)
};

/// The corpus. Small-fleet cyclic entries plus the 400-VM follow-the-sun
/// scale entry. The busy rate sits just under the 50 Mbit/s inter-site
/// link's critical dirty rate (one page per 655 us, ~1520 pages/s):
/// pre-copy convergence contracts by only ~8% per round, so a busy-phase
/// leg still carries >100 dirty pages at the round cap and pays ~100 ms
/// of stop-copy, while a quiet-phase leg converges in one round and pays
/// only the link latency. The workloads confine writes to the front
/// quarter of RAM, so the back three quarters is the overlap checkpoint
/// affinity finds at previously visited hosts.
std::vector<CorpusEntry> Corpus() {
  std::vector<CorpusEntry> corpus;
  {
    policy::ScenarioConfig config;
    config.kind = policy::ScenarioKind::kDiurnal;
    config.sites = 3;
    config.hosts_per_site = 2;
    config.vms = 8;
    config.vm_ram = MiB(4);
    config.days = 2;
    config.busy_rate_pages_per_s = 1400.0;
    config.seed = 11;
    corpus.push_back({"diurnal", config, true});
  }
  {
    policy::ScenarioConfig config;
    config.kind = policy::ScenarioKind::kMaintenanceDrain;
    config.sites = 3;
    config.hosts_per_site = 2;
    config.vms = 8;
    config.vm_ram = MiB(4);
    config.days = 2;
    config.busy_rate_pages_per_s = 1400.0;
    config.seed = 22;
    corpus.push_back({"drain", config, true});
  }
  {
    policy::ScenarioConfig config;
    config.kind = policy::ScenarioKind::kEvictionStorm;
    config.sites = 3;
    config.hosts_per_site = 2;
    config.vms = 8;
    config.vm_ram = MiB(4);
    config.days = 2;
    config.busy_rate_pages_per_s = 1400.0;
    config.storm_fraction = 0.34;
    config.seed = 33;
    corpus.push_back({"storm", config, true});
  }
  {
    // 100x the follow_the_sun example's 4-VM fleet.
    policy::ScenarioConfig config;
    config.kind = policy::ScenarioKind::kFollowTheSun;
    config.sites = 4;
    config.hosts_per_site = 3;
    config.vms = 400;
    config.vm_ram = MiB(4);
    config.days = 2;
    // Steady load: there is no cycle to learn, so no warm-up either.
    config.warmup_days = 0;
    config.step = Hours(1.0);
    config.busy_rate_pages_per_s = 0.01;
    config.seed = 44;
    corpus.push_back({"followsun100", config, false});
  }
  return corpus;
}

/// Fresh policy instance per run — policies are stateful (round-robin
/// cursor, cycle detectors, decision stats), so sharing one across runs
/// would leak history between rows.
std::unique_ptr<policy::PlacementPolicy> MakePolicy(
    const std::string& name) {
  policy::PolicyConfig config;
  // The corpus defers across multi-hour busy phases; the library default
  // (3 h) is tuned for operator patience, not for a bench that wants the
  // full predicted wait honored.
  config.max_defer = Hours(12.0);
  if (name == "round_robin") {
    return std::make_unique<policy::RoundRobinPolicy>();
  }
  if (name == "checkpoint_affinity") {
    return std::make_unique<policy::CheckpointAffinityPolicy>(config);
  }
  if (name == "affinity_cycle") {
    return std::make_unique<policy::CycleAwarePolicy>(
        std::make_unique<policy::CheckpointAffinityPolicy>(config),
        config);
  }
  VEC_CHECK_MSG(false, "unknown policy: " + name);
  return nullptr;
}

migration::MigrationConfig CorpusMigrationConfig() {
  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;
  // The corpus VMs are small (1k pages); the library default threshold
  // (2048 pages) would fold the whole transfer into stop-and-copy and
  // hide the busy/quiet downtime difference the corpus exists to show.
  // 8 pages sits well under the busy-phase equilibrium dirty set (tens
  // of pages on the 50 Mbit/s inter-site link) and well over the quiet
  // phase's (under one page), so only quiet legs converge before the
  // round cap.
  config.stop_copy_threshold_pages = 8;
  return config;
}

void PrintResult(const std::string& label,
                 const policy::RunResult& result) {
  std::printf(
      "%-40s %6zu legs  %10.1f MiB wire  %8.3f ms p99 downtime  "
      "%4llu warm  %4llu deferred\n",
      label.c_str(), result.completed, ToMiB(result.wire_bytes),
      ToSeconds(result.P99Downtime()) * 1e3,
      static_cast<unsigned long long>(result.decisions.affinity_hits),
      static_cast<unsigned long long>(result.decisions.deferred));
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"schema\": \"vecycle.bench_perf.v1\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iters\": %llu, "
                 "\"ns_per_op\": %.1f, \"ops_per_sec\": %.6f, "
                 "\"tx_bytes\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.iters),
                 r.sim_ns, 1e9 / r.sim_ns,
                 static_cast<unsigned long long>(r.tx_bytes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

/// Nearest-rank p99 over a pooled downtime sample.
SimDuration PooledP99(std::vector<SimDuration> samples) {
  policy::RunResult pooled;
  pooled.downtimes = std::move(samples);
  return pooled.P99Downtime();
}

int RunSmoke() {
  const auto corpus = Corpus();
  const auto scenario =
      policy::ScenarioGen(corpus[0].config).Generate();
  auto policy = MakePolicy("affinity_cycle");
  const auto result = policy::PolicyRunner::Run(scenario, *policy,
                                                CorpusMigrationConfig());
  PrintResult("smoke diurnal/affinity_cycle", result);
  policy::EmitPolicyMetrics("policy_diurnal_affinity_cycle", *policy);
  VEC_CHECK_MSG(result.completed > 0, "smoke run completed no migrations");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ScopedReporter reporter("bench_policy");
  std::string out_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "bench_policy: placement policies over the scenario corpus");
  if (smoke) return RunSmoke();

  const auto corpus = Corpus();
  const std::vector<std::string> policies = {
      "round_robin", "checkpoint_affinity", "affinity_cycle"};

  std::vector<Row> rows;
  std::uint64_t wire_rr = 0;
  std::uint64_t wire_ac = 0;
  std::vector<SimDuration> cyclic_downtimes_rr;
  std::vector<SimDuration> cyclic_downtimes_ac;

  for (const auto& entry : corpus) {
    const auto scenario = policy::ScenarioGen(entry.config).Generate();
    for (const auto& name : policies) {
      auto policy = MakePolicy(name);
      const auto result = policy::PolicyRunner::Run(
          scenario, *policy, CorpusMigrationConfig());
      const std::string label = "policy_" + entry.name + "_" + name;
      PrintResult(label, result);
      policy::EmitPolicyMetrics(label, *policy);

      Row row;
      row.name = label;
      row.iters = result.completed;
      row.sim_ns =
          result.completed == 0
              ? 0.0
              : static_cast<double>(result.sum_migration_time.count()) /
                    static_cast<double>(result.completed);
      row.tx_bytes = result.wire_bytes.count;
      rows.push_back(row);

      if (name == "round_robin") {
        wire_rr += result.wire_bytes.count;
        if (entry.cyclic) {
          cyclic_downtimes_rr.insert(cyclic_downtimes_rr.end(),
                                     result.downtimes.begin(),
                                     result.downtimes.end());
        }
      } else if (name == "affinity_cycle") {
        wire_ac += result.wire_bytes.count;
        if (entry.cyclic) {
          cyclic_downtimes_ac.insert(cyclic_downtimes_ac.end(),
                                     result.downtimes.begin(),
                                     result.downtimes.end());
        }
      }
    }
  }

  // PDES determinism sweep: the diurnal scenario under cycle-aware
  // placement must produce one fingerprint at every worker count.
  const auto diurnal = policy::ScenarioGen(corpus[0].config).Generate();
  std::uint64_t fingerprint = 0;
  for (const std::size_t workers : {1, 4, 8}) {
    auto policy = MakePolicy("affinity_cycle");
    const auto result = policy::PolicyRunner::RunSharded(
        diurnal, *policy, CorpusMigrationConfig(), workers);
    if (workers == 1) {
      fingerprint = result.fingerprint;
    } else {
      VEC_CHECK_MSG(result.fingerprint == fingerprint,
                    "bench_policy: PDES fingerprint diverged at " +
                        std::to_string(workers) + " workers");
    }
  }
  std::printf("\nPDES fingerprint (w1 == w4 == w8): %016llx\n",
              static_cast<unsigned long long>(fingerprint));

  // Inline claims check — the tentpole numbers, re-verified every run.
  const double wire_ratio =
      static_cast<double>(wire_ac) / static_cast<double>(wire_rr);
  std::printf("corpus wire bytes: round_robin %.1f MiB -> "
              "affinity_cycle %.1f MiB (%.1f%%)\n",
              ToMiB(Bytes{wire_rr}), ToMiB(Bytes{wire_ac}),
              100.0 * wire_ratio);
  if (wire_ratio > 0.8) {
    std::fprintf(stderr,
                 "FAIL: affinity_cycle wire bytes %.1f%% of round_robin "
                 "(need <= 80%%)\n",
                 100.0 * wire_ratio);
    return 1;
  }
  const SimDuration p99_rr = PooledP99(cyclic_downtimes_rr);
  const SimDuration p99_ac = PooledP99(cyclic_downtimes_ac);
  std::printf("cyclic-corpus p99 downtime: round_robin %.3f ms -> "
              "affinity_cycle %.3f ms\n",
              ToSeconds(p99_rr) * 1e3, ToSeconds(p99_ac) * 1e3);
  if (ToSeconds(p99_ac) > 0.8 * ToSeconds(p99_rr)) {
    std::fprintf(stderr,
                 "FAIL: affinity_cycle p99 downtime %.3f ms vs "
                 "round_robin %.3f ms (need >= 20%% better)\n",
                 ToSeconds(p99_ac) * 1e3, ToSeconds(p99_rr) * 1e3);
    return 1;
  }

  if (!out_path.empty()) WriteJson(out_path, rows);
  return 0;
}
