// Ablation: post-copy migration (related work [13]) composed with
// VeCycle's checkpoint recycling.
//
// §5 argues the insights of prior migration optimizations "are still
// valid and can be combined with VeCycle". Post-copy is the sharpest
// case: it wins pre-copy's downtime war but pays with a degradation
// window where guest accesses fault across the network. Recycling a
// checkpoint at the destination — with the source's checksum vector
// deciding which checkpoint pages are still valid — removes most remote
// faults, because Fig. 1-level similarity means most of the guest's
// working set is already local.
#include <cstdio>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "migration/postcopy.hpp"
#include "storage/checkpoint.hpp"

namespace {

using namespace vecycle;

migration::PostCopyStats Run(sim::LinkConfig link, bool use_checkpoint,
                             double churn_fraction) {
  sim::Simulator simulator;
  sim::Link wire(link);
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore dst_store{dst_disk};

  vm::GuestMemory memory(GiB(1), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(0x99);
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    memory.WritePage(p, rng.Next() | (1ull << 62));
  }
  dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory), kSimEpoch);
  // Diverge a fraction of memory since the checkpoint.
  const auto churned = static_cast<std::uint64_t>(
      churn_fraction * static_cast<double>(memory.PageCount()));
  for (std::uint64_t i = 0; i < churned; ++i) {
    memory.WritePage(rng.NextBelow(memory.PageCount()),
                     rng.Next() | (1ull << 61));
  }

  migration::PostCopyRun run;
  run.simulator = &simulator;
  run.link = &wire;
  run.source_memory = &memory;
  run.source_cpu = &src_cpu;
  run.dest_cpu = &dst_cpu;
  run.dest_store = &dst_store;
  run.config.use_checkpoint = use_checkpoint;
  run.config.guest_touch_rate_per_s = 10000.0;
  return migration::RunPostCopyMigration(std::move(run)).stats;
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_ablation_postcopy");
  bench::PrintHeader(
      "Ablation: post-copy x checkpoint recycling (1 GiB VM, busy guest)");

  analysis::Table table({"Network", "Churn", "Scheme", "Downtime",
                         "Residency", "Remote faults", "Guest stall",
                         "Traffic"});
  for (const auto& [net_label, link] :
       {std::pair<const char*, sim::LinkConfig>{"LAN",
                                                sim::LinkConfig::Lan()},
        {"WAN", sim::LinkConfig::Wan()}}) {
    for (const double churn : {0.1, 0.5}) {
      for (const bool ckpt : {false, true}) {
        const auto stats = Run(link, ckpt, churn);
        table.AddRow({net_label,
                      analysis::Table::Pct(churn, 0),
                      ckpt ? "postcopy+ckpt" : "postcopy",
                      FormatDuration(stats.downtime),
                      FormatDuration(stats.time_to_residency),
                      std::to_string(stats.remote_faults),
                      FormatDuration(stats.total_stall),
                      FormatBytes(stats.tx_bytes)});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Post-copy's downtime is the device-state transfer either way; the\n"
      "checkpoint kills the degradation window: remote faults and guest\n"
      "stall drop by an order of magnitude at Fig. 1-level similarity,\n"
      "and traffic shrinks to the diverged pages plus the 16 B/page\n"
      "checksum vector. On the WAN the difference decides whether\n"
      "post-copy is usable at all.\n");
  return 0;
}
