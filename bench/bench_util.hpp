// Shared scaffolding for the figure-reproduction benches: a two-host
// world matching the paper's testbed (§4.1) and the idle/controlled VM
// setups of §4.4/§4.5.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/vm_instance.hpp"
#include "migration/engine.hpp"
#include "obs/report.hpp"
#include "vm/workload.hpp"

namespace vecycle::bench {

/// Two hosts A/B joined by one link — machine A and machine B of §4.1.
struct TwoHostWorld {
  sim::Simulator simulator;
  core::Cluster cluster{simulator};
  core::MigrationOrchestrator orchestrator{cluster};

  explicit TwoHostWorld(sim::LinkConfig link,
                        sim::DiskConfig disk = sim::DiskConfig::Hdd()) {
    core::HostConfig a;
    a.id = "A";
    a.disk = disk;
    core::HostConfig b;
    b.id = "B";
    b.disk = disk;
    cluster.AddHost(a);
    cluster.AddHost(b);
    cluster.Connect("A", "B", link);
  }
};

/// The §4.4 VM: 95% of memory filled with unique random data (defeating
/// zero-page elision), the rest untouched.
inline core::VmInstance MakeBestCaseVm(Bytes ram, std::uint64_t seed) {
  core::VmInstance vm("vm", ram, vm::ContentMode::kSeedOnly);
  auto& memory = vm.Memory();
  Xoshiro256 rng(seed);
  const auto filled = static_cast<std::uint64_t>(
      0.95 * static_cast<double>(memory.PageCount()));
  for (vm::PageId p = 0; p < filled; ++p) {
    memory.WritePage(p, rng.Next() | (1ull << 62));
  }
  return vm;
}

inline migration::MigrationConfig StrategyConfig(
    migration::Strategy strategy) {
  migration::MigrationConfig config;
  config.strategy = strategy;
  return config;
}

/// Measures one "return-leg" migration: the VM starts at A, hops to B so a
/// checkpoint exists at A (this leg is not measured), optionally runs a
/// workload, then migrates B->A under `strategy`.
inline migration::MigrationStats MeasureReturnMigration(
    sim::LinkConfig link, Bytes ram, migration::Strategy strategy,
    vm::Workload* workload_between, SimDuration dwell,
    sim::DiskConfig disk = sim::DiskConfig::Hdd()) {
  TwoHostWorld world(link, disk);
  auto vm = MakeBestCaseVm(ram, /*seed=*/0x5eed);
  world.orchestrator.Deploy(vm, "A");
  world.orchestrator.Migrate(vm, "B",
                             StrategyConfig(migration::Strategy::kFull));
  if (workload_between != nullptr && dwell > SimDuration::zero()) {
    workload_between->Advance(vm.Memory(), dwell);
    world.simulator.RunUntil(world.simulator.Now() + dwell);
  }
  return world.orchestrator.Migrate(vm, "A", StrategyConfig(strategy));
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace vecycle::bench
