// Ablation: wire compression (Svärd et al. [24]) combined with VeCycle.
// The paper's related-work section claims compression "helps to reduce
// the data volume" and that "all the insights from these works... can be
// combined with VeCycle". This bench stacks the two: a 2 GiB VM returning
// to a stale checkpoint after moderate churn, under baseline / compression
// / VeCycle / VeCycle+compression, on LAN and WAN.
//
// Expected shape: compression roughly halves baseline traffic; VeCycle
// removes the still-matching pages entirely; the combination compresses
// only the genuinely new pages, giving the lowest traffic of all — but on
// a fast LAN the compression CPU cost can erase the *time* advantage,
// which is exactly why such techniques pay off mainly on slow links.
#include <cstdio>

#include "analysis/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace vecycle;

migration::MigrationStats Run(sim::LinkConfig link,
                              migration::Strategy strategy,
                              bool compression) {
  bench::TwoHostWorld world(link);
  auto vm = bench::MakeBestCaseVm(GiB(2), 0x5eed);
  world.orchestrator.Deploy(vm, "A");
  world.orchestrator.Migrate(
      vm, "B", bench::StrategyConfig(migration::Strategy::kFull));

  // Moderate churn: ~25% of pages rewritten before the return trip.
  vm::UniformRandomWorkload churn(150.0, 0x77);
  churn.Advance(vm.Memory(), Minutes(20));
  world.simulator.RunUntil(world.simulator.Now() + Minutes(20));

  migration::MigrationConfig config;
  config.strategy = strategy;
  config.compression.enabled = compression;
  return world.orchestrator.Migrate(vm, "A", config);
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_ablation_compression");
  bench::PrintHeader(
      "Ablation: wire compression x checkpoint recycling (2 GiB VM)");

  analysis::Table table(
      {"Network", "Scheme", "Time", "Traffic", "Payload saved"});
  for (const auto& [net_label, link] :
       {std::pair<const char*, sim::LinkConfig>{"LAN",
                                                sim::LinkConfig::Lan()},
        {"WAN", sim::LinkConfig::Wan()}}) {
    const struct {
      const char* name;
      migration::Strategy strategy;
      bool compress;
    } schemes[] = {
        {"baseline", migration::Strategy::kFull, false},
        {"baseline+zlib", migration::Strategy::kFull, true},
        {"vecycle", migration::Strategy::kHashes, false},
        {"vecycle+zlib", migration::Strategy::kHashes, true},
    };
    for (const auto& scheme : schemes) {
      const auto stats = Run(link, scheme.strategy, scheme.compress);
      const Bytes saved =
          stats.payload_bytes_original - stats.payload_bytes_on_wire;
      table.AddRow({net_label, scheme.name,
                    FormatDuration(stats.total_time),
                    FormatBytes(stats.tx_bytes), FormatBytes(saved)});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Related work [24] + §5: compression composes with VeCycle. The\n"
      "combination ships the least data; on the WAN it is also fastest,\n"
      "while on the LAN the compressor's CPU cost can dominate the\n"
      "checksum-bound VeCycle time.\n");
  return 0;
}
