// Ablation (§4.4/§4.5 claim): storing the checkpoint on SSD instead of a
// spinning disk does not change VeCycle's migration time — the sequential
// checkpoint scan happens in the unmeasured setup phase, and during the
// copy the checksum/network pipeline, not the disk, is the bottleneck.
// The exception the model exposes: remap-heavy guests whose matches are
// satisfied by *random* checkpoint reads at the destination.
#include <cstdio>

#include "analysis/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace vecycle;

migration::MigrationStats RunIdle(sim::DiskConfig disk) {
  vm::IdleWorkload idle{vm::IdleWorkload::Config{}};
  return bench::MeasureReturnMigration(sim::LinkConfig::Lan(), GiB(2),
                                       migration::Strategy::kHashes, &idle,
                                       Minutes(2), disk);
}

migration::MigrationStats RunRemapHeavy(sim::DiskConfig disk) {
  vm::PageRemapWorkload remap(2000.0, /*seed=*/0xabc);
  return bench::MeasureReturnMigration(sim::LinkConfig::Lan(), GiB(2),
                                       migration::Strategy::kHashes, &remap,
                                       Minutes(2), disk);
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_ablation_disk");
  bench::PrintHeader("Ablation: checkpoint on HDD vs SSD (2 GiB VM, LAN)");

  analysis::Table table({"Workload", "Disk", "Migration time", "Setup time",
                         "Ckpt reads"});
  for (const auto& [label, run] :
       {std::pair<const char*,
                  migration::MigrationStats (*)(sim::DiskConfig)>{
            "idle", &RunIdle},
        {"remap-heavy", &RunRemapHeavy}}) {
    const auto hdd = run(sim::DiskConfig::Hdd());
    const auto ssd = run(sim::DiskConfig::Ssd());
    table.AddRow({label, "HDD", FormatDuration(hdd.total_time),
                  FormatDuration(hdd.setup_time),
                  std::to_string(hdd.pages_from_checkpoint)});
    table.AddRow({label, "SSD", FormatDuration(ssd.total_time),
                  FormatDuration(ssd.setup_time),
                  std::to_string(ssd.pages_from_checkpoint)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Paper: \"We repeated the same set of experiments with a solid state\n"
      "disk, but the migration times did not change.\" — holds for the\n"
      "idle case; the remap-heavy case shows where random checkpoint reads\n"
      "would make the HDD visible.\n");
  return 0;
}
