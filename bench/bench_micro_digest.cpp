// Microbenchmarks (google-benchmark) of the real digest implementations.
// §3.4 quotes 350 MiB/s single-core MD5 on the paper's 2012-era Phenom II;
// these numbers justify (or recalibrate) the simulator's
// ChecksumEngineConfig defaults on the machine at hand.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "digest/fnv.hpp"
#include "digest/md5.hpp"
#include "digest/sha1.hpp"

namespace {

using namespace vecycle;

std::vector<std::byte> RandomPage() {
  std::vector<std::byte> page(kPageSize);
  Xoshiro256 rng(1);
  for (auto& b : page) b = static_cast<std::byte>(rng.Next());
  return page;
}

void BM_Md5Page(benchmark::State& state) {
  const auto page = RandomPage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5Digest(page.data(), page.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPageSize));
}
BENCHMARK(BM_Md5Page);

void BM_Sha1Page(benchmark::State& state) {
  const auto page = RandomPage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1Digest(page.data(), page.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPageSize));
}
BENCHMARK(BM_Sha1Page);

void BM_FnvPage(benchmark::State& state) {
  const auto page = RandomPage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FnvDigest(page.data(), page.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPageSize));
}
BENCHMARK(BM_FnvPage);

// The seed-mode fast path: hashing the 8-byte content seed instead of the
// expanded page — what lets benches model multi-GiB VMs.
void BM_Md5Seed(benchmark::State& state) {
  std::uint64_t seed = 0x1234567890abcdefull;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5Digest(&seed, sizeof(seed)));
    ++seed;
  }
}
BENCHMARK(BM_Md5Seed);

}  // namespace

BENCHMARK_MAIN();
