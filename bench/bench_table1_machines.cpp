// Table 1: the six systems whose memory traces the first part of the
// study evaluates, plus the additional machines (§2.3 crawlers, §4.6
// desktop) used later. Paper values are the inventory itself; this bench
// prints the registry our synthetic corpus models.
#include <cstdio>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "traces/machine_spec.hpp"

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_table1_machines");
  using namespace vecycle;

  bench::PrintHeader("Table 1: traced systems (Memory Buddies corpus model)");

  analysis::Table table(
      {"Name", "OS", "Trace ID", "RAM size", "Class", "Trace span",
       "Interval"});
  auto add = [&table](const traces::MachineSpec& spec) {
    table.AddRow({spec.name, spec.os, spec.trace_id,
                  FormatBytes(spec.nominal_ram), ToString(spec.klass),
                  FormatDuration(spec.trace_duration),
                  FormatDuration(spec.fingerprint_interval)});
  };
  for (const auto& machine : traces::Table1AllMachines()) add(machine);
  for (const auto& machine : traces::CrawlerMachines()) add(machine);
  add(traces::DesktopMachine());

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper: servers traced 7 days at 30-min fingerprints (336 ideal);\n"
      "laptops yield only 151-205 fingerprints due to power-off; crawlers\n"
      "4 days (192); author desktop 19 days (912).\n");
  return 0;
}
