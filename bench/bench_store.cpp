// Checkpoint-store sweep (docs/storage.md "Chunked backend"): the Fig. 4
// VDI consolidation scenario driven straight against CheckpointStore,
// flat backend vs content-addressed chunked backend. Eight desktops
// cloned from one golden image checkpoint into a consolidation server's
// store, then a simulated work week of daily dirty-and-resave cycles, a
// tier-served reload, and an explicit GC sweep after half the fleet is
// decommissioned. Like bench_transfer, every number is *simulated* —
// deterministic and machine-independent — so the checked-in baseline
// gates exactly: "ns_per_op" is the simulated disk time of each phase.
//
// The binary re-checks the tentpole claims inline and exits nonzero if
// they fail: the chunked steady-state footprint must undercut flat by
// >= 2x (golden pages stored once instead of eight times), and the
// week's incremental re-saves must write < 50% of the full-image bytes
// the flat store pays every evening.
//
// The GC row (store_gc_sweep) is deliberately absent from the checked-in
// baseline; CI admits it through bench_compare's --allow-new gate.
//
// Usage: bench_store [--out BENCH_store.json]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "storage/checkpoint.hpp"
#include "storage/checkpoint_store.hpp"

namespace {

using namespace vecycle;

struct Row {
  std::string name;
  double sim_ns = 0.0;         // simulated disk time (the gated quantity)
  std::uint64_t tx_bytes = 0;  // disk bytes written (footprint for reload)
};

constexpr Bytes kDesktopRam = MiB(32);
constexpr int kDesktops = 8;
constexpr int kDays = 5;
// Fraction of each desktop's pages rewritten per day before the evening
// checkpoint — the user's working set on top of the shared golden image.
constexpr double kDailyDirty = 0.05;

/// Clones of one golden image: the first three quarters of every
/// desktop's pages carry identical content (OS + applications, laid out
/// alike by the provisioning clone), the rest is per-desktop user data.
vm::GuestMemory MakeDesktop(int desktop) {
  vm::GuestMemory memory{kDesktopRam, vm::ContentMode::kSeedOnly};
  const vm::PageId golden_pages = memory.PageCount() * 3 / 4;
  Xoshiro256 golden_rng(0x901d);  // same stream for every desktop
  for (vm::PageId p = 0; p < golden_pages; ++p) {
    memory.WritePage(p, golden_rng.Next() | (1ull << 62));
  }
  Xoshiro256 user_rng(0xd0c + static_cast<std::uint64_t>(desktop));
  for (vm::PageId p = golden_pages; p < memory.PageCount(); ++p) {
    memory.WritePage(p, user_rng.Next() | (1ull << 62));
  }
  return memory;
}

std::string DesktopId(int desktop) {
  return "desktop-" + std::to_string(desktop);
}

/// A day of desktop use: rewrites land mostly in the user-data region
/// (documents, caches), with a 5% trickle anywhere — golden pages hit by
/// it diverge, and their chunks stop deduplicating against the siblings.
void DirtyDay(vm::GuestMemory& memory, int desktop, int day) {
  Xoshiro256 rng(0xda1ull * static_cast<std::uint64_t>(day + 1) +
                 static_cast<std::uint64_t>(desktop));
  const vm::PageId golden_pages = memory.PageCount() * 3 / 4;
  const auto writes = static_cast<std::uint64_t>(
      kDailyDirty * static_cast<double>(memory.PageCount()));
  for (std::uint64_t i = 0; i < writes; ++i) {
    const bool anywhere = rng.NextBelow(20) == 0;
    const auto p = static_cast<vm::PageId>(
        anywhere ? rng.NextBelow(memory.PageCount())
                 : golden_pages +
                       rng.NextBelow(memory.PageCount() - golden_pages));
    memory.WritePage(p, rng.Next() | (1ull << 62));
  }
}

struct BackendResult {
  std::vector<Row> rows;
  Bytes footprint{0};          // steady state, after the week
  std::uint64_t chunks_written = 0;
  std::uint64_t chunks_deduped = 0;
  std::uint64_t ssd_hits = 0;
  std::uint64_t ssd_misses = 0;
  double gc_pause_ns = 0.0;
  std::uint64_t gc_freed = 0;
};

/// Runs the full VDI week against one store backend. The chunked store
/// uses 16 KiB chunks (4 pages — golden runs dedup across clones, the
/// index stays 4x smaller than page-granular) over a 64 MiB SSD tier on
/// the HDD; flat is the paper's prototype, one image per desktop.
BackendResult RunBackend(bool chunked) {
  const std::string prefix = chunked ? "chunked" : "flat";
  sim::Disk disk{sim::DiskConfig::Hdd()};
  storage::StoreConfig config;
  if (chunked) {
    config.chunking = true;
    config.chunk_pages = 4;
    config.tier.ssd_capacity = MiB(64);
  }
  storage::CheckpointStore store{disk, storage::RetentionPolicy{}, config};

  std::vector<vm::GuestMemory> fleet;
  fleet.reserve(kDesktops);
  for (int d = 0; d < kDesktops; ++d) fleet.push_back(MakeDesktop(d));

  BackendResult result;
  SimTime t = kSimEpoch;

  // Evening zero: the whole fleet checkpoints into the store cold.
  for (int d = 0; d < kDesktops; ++d) {
    t = store.Save(DesktopId(d), storage::Checkpoint::CaptureFrom(fleet[d]),
                   t);
  }
  result.rows.push_back({prefix + "_fleet_save",
                         static_cast<double>((t - kSimEpoch).count()),
                         disk.WrittenBytes().count});

  // The work week: dirty each desktop, re-checkpoint every evening.
  const SimTime week_start = t;
  const Bytes written_before_week = disk.WrittenBytes();
  for (int day = 1; day <= kDays; ++day) {
    for (int d = 0; d < kDesktops; ++d) {
      DirtyDay(fleet[d], d, day);
      t = store.Save(DesktopId(d), storage::Checkpoint::CaptureFrom(fleet[d]),
                     t);
    }
    // Nightly GC: each re-save unpinned the previous day's superseded
    // chunks; the sweep keeps the steady-state footprint honest (no-op
    // for the flat store).
    t = store.CollectGarbage(t);
  }
  result.rows.push_back(
      {prefix + "_week_resaves",
       static_cast<double>((t - week_start).count()),
       (disk.WrittenBytes() - written_before_week).count});

  result.footprint = store.FootprintOnDisk();

  // Monday morning: every desktop's checkpoint is read back (the §3.3
  // initialization scan). The chunked store serves SSD-resident chunks
  // from the tier in parallel with the HDD remainder.
  const SimTime reload_start = t;
  for (int d = 0; d < kDesktops; ++d) {
    t = store.Load(DesktopId(d), t).ready_at;
  }
  result.rows.push_back({prefix + "_reload",
                         static_cast<double>((t - reload_start).count()),
                         result.footprint.count});

  result.chunks_written = store.ChunksWritten();
  result.chunks_deduped = store.ChunksDeduped();
  result.ssd_hits = store.SsdHits();
  result.ssd_misses = store.SsdMisses();

  if (chunked) {
    // Half the fleet is decommissioned; the sweep frees every chunk only
    // they referenced and charges the metadata writes — the GC pause.
    const Bytes before = store.FootprintOnDisk();
    const std::uint64_t freed_before = store.GcFreedChunks();
    for (int d = 0; d < kDesktops / 2; ++d) store.Drop(DesktopId(d));
    const SimTime gc_done = store.CollectGarbage(t);
    result.gc_pause_ns = static_cast<double>((gc_done - t).count());
    result.gc_freed = store.GcFreedChunks() - freed_before;
    result.rows.push_back({"store_gc_sweep", result.gc_pause_ns,
                           (before - store.FootprintOnDisk()).count});
  }
  return result;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"schema\": \"vecycle.bench_perf.v1\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iters\": 1, "
                 "\"ns_per_op\": %.1f, \"ops_per_sec\": %.6f, "
                 "\"tx_bytes\": %llu}%s\n",
                 r.name.c_str(), r.sim_ns, 1e9 / r.sim_ns,
                 static_cast<unsigned long long>(r.tx_bytes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

void Print(const Row& row) {
  std::printf("%-24s %10.3f s simulated  %12llu disk bytes\n",
              row.name.c_str(), row.sim_ns / 1e9,
              static_cast<unsigned long long>(row.tx_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE.json]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "bench_store: VDI fleet, flat vs content-addressed chunked store");

  const auto flat = RunBackend(/*chunked=*/false);
  for (const auto& row : flat.rows) Print(row);
  const auto chunked = RunBackend(/*chunked=*/true);
  for (const auto& row : chunked.rows) Print(row);

  const double per_vm_mib =
      static_cast<double>(chunked.footprint.count) / (1 << 20) / kDesktops;
  const double dedup_ratio =
      static_cast<double>(chunked.chunks_deduped) /
      static_cast<double>(chunked.chunks_written + chunked.chunks_deduped);
  const double hit_rate =
      static_cast<double>(chunked.ssd_hits) /
      static_cast<double>(chunked.ssd_hits + chunked.ssd_misses);
  std::printf("\nsteady-state footprint per VM: %.1f MiB (flat: %.1f MiB)\n",
              per_vm_mib,
              static_cast<double>(flat.footprint.count) / (1 << 20) /
                  kDesktops);
  std::printf("dedup ratio: %.1f%% of pinned chunks shared\n",
              100.0 * dedup_ratio);
  std::printf("GC pause: %.3f ms for %llu freed chunks\n",
              chunked.gc_pause_ns / 1e6,
              static_cast<unsigned long long>(chunked.gc_freed));
  std::printf("SSD hit rate: %.1f%%\n", 100.0 * hit_rate);

  // Inline claims check — the tentpole numbers, re-verified every run.
  const double shrink = static_cast<double>(flat.footprint.count) /
                        static_cast<double>(chunked.footprint.count);
  std::printf("footprint shrink vs flat: %.2fx\n", shrink);
  if (shrink < 2.0) {
    std::fprintf(stderr, "FAIL: chunked footprint shrink %.2fx < 2x\n",
                 shrink);
    return 1;
  }
  const auto full_bytes = flat.rows[1].tx_bytes;  // flat week = full images
  const auto incr_bytes = chunked.rows[1].tx_bytes;
  std::printf("weekly re-save bytes: %llu -> %llu (%.1f%%)\n",
              static_cast<unsigned long long>(full_bytes),
              static_cast<unsigned long long>(incr_bytes),
              100.0 * static_cast<double>(incr_bytes) /
                  static_cast<double>(full_bytes));
  if (incr_bytes * 2 >= full_bytes) {
    std::fprintf(stderr,
                 "FAIL: incremental re-saves wrote %.1f%% of full-image "
                 "bytes (need < 50%%)\n",
                 100.0 * static_cast<double>(incr_bytes) /
                     static_cast<double>(full_bytes));
    return 1;
  }

  std::vector<Row> rows = flat.rows;
  rows.insert(rows.end(), chunked.rows.begin(), chunked.rows.end());
  if (!out_path.empty()) WriteJson(out_path, rows);
  return 0;
}
