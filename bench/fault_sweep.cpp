// Fault sweep: migration fleets on an unreliable WAN.
//
// The paper's setting assumes checkpoints that cannot be trusted (§3.3's
// integrity scan) and WAN links that are far from perfect (§4.4). This
// bench quantifies the recovery machinery end to end: a small fleet
// ping-pongs across the CloudNet-style WAN while an injected fault plan
// cuts the link at increasing rates and rots half of all checkpoint
// write-backs. Sessions cut mid-flight abort and are retried with
// exponential backoff (capped attempts); corrupted recycled checkpoints
// degrade to per-page resends instead of aborting. The table reports,
// per strategy and outage rate, the fleet makespan and the recovery
// counters — retries, aborts, fallback pages — that EXPERIMENTS.md
// tracks as the fault baseline.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "audit/audit.hpp"
#include "bench_util.hpp"
#include "fault/fault.hpp"

namespace {

using namespace vecycle;

constexpr std::size_t kVmCount = 4;
const Bytes kRam = MiB(128);

struct SweepResult {
  SimDuration makespan = SimDuration::zero();
  Bytes total_tx;
  std::uint64_t retries = 0;
  std::uint64_t aborts = 0;
  std::uint64_t fallback_pages = 0;
  std::uint64_t link_cuts = 0;
};

SweepResult Sweep(migration::Strategy strategy, double outages_per_hour) {
  bench::TwoHostWorld world(sim::LinkConfig::Wan());

  fault::FaultConfig fault_config;
  fault_config.enabled = true;
  fault_config.seed = 42;
  fault_config.link_outages_per_hour = outages_per_hour;
  fault_config.link_outage_mean = Seconds(10.0);
  fault_config.link_degradations_per_hour = 4.0;
  fault_config.link_degradation_mean = Seconds(30.0);
  fault_config.corrupt_probability = 0.5;
  fault_config.corrupt_pages = 128;
  fault_config.disk_errors_per_hour = 6.0;
  fault::FaultInjector injector(fault_config);

  audit::SimAuditor auditor;  // conservation stays armed under faults
  core::SchedulerConfig scheduler_config;
  scheduler_config.injector = &injector;
  scheduler_config.auditor = &auditor;
  scheduler_config.max_attempts = 5;
  scheduler_config.throw_on_abort = false;  // report aborts as a column
  core::MigrationOrchestrator orchestrator(world.cluster, scheduler_config);

  std::vector<std::unique_ptr<core::VmInstance>> vms;
  std::vector<core::VmInstance*> fleet;
  for (std::size_t i = 0; i < kVmCount; ++i) {
    auto vm = std::make_unique<core::VmInstance>(
        "vm" + std::to_string(i), kRam, vm::ContentMode::kSeedOnly);
    Xoshiro256 rng(100 + i);
    vm::MemoryProfile{}.Apply(vm->Memory(), rng);
    vm->SetWorkload(std::make_unique<vm::IdleWorkload>(
        vm::IdleWorkload::Config{.seed = 500 + i}));
    orchestrator.Deploy(*vm, "A");
    fleet.push_back(vm.get());
    vms.push_back(std::move(vm));
  }

  migration::MigrationConfig config;
  config.strategy = strategy;

  // Outbound leg, a working day away, then the return. A VM whose leg
  // aborted permanently stays where it is; later legs are skipped the
  // way a control plane would skip a journey with a missing segment.
  // Makespan counts only the two drain windows — the time the fleet
  // actually spent migrating (and retrying), not the dwell between legs.
  SimDuration migrating = SimDuration::zero();
  const auto drain_timed = [&] {
    const SimTime before = world.simulator.Now();
    orchestrator.Drain();
    migrating += world.simulator.Now() - before;
  };
  orchestrator.RunFor(fleet, Minutes(10.0));
  for (auto* vm : fleet) orchestrator.MigrateAsync(*vm, "B", config);
  drain_timed();
  orchestrator.RunFor(fleet, Hours(8.0));
  for (auto* vm : fleet) {
    if (vm->CurrentHost() == "B") orchestrator.MigrateAsync(*vm, "A", config);
  }
  drain_timed();

  auto& scheduler = orchestrator.Scheduler();
  SweepResult result;
  result.makespan = migrating;
  // Wire-level payload, both directions: cut attempts spent these bytes
  // too, so the cost of a retry storm is visible even when nothing
  // completed (the per-completion stats would read zero).
  const auto path = world.cluster.PathBetween("A", "B");
  result.total_tx = path.link->Stats(sim::Direction::kAtoB).payload_bytes +
                    path.link->Stats(sim::Direction::kBtoA).payload_bytes;
  for (const auto& completion : scheduler.Completions()) {
    result.fallback_pages += completion.stats.fallback_pages;
  }
  result.retries = scheduler.Retries();
  result.aborts = scheduler.Aborts().size();
  result.link_cuts = injector.Stats().link_cuts;
  return result;
}

std::string StrategyName(migration::Strategy strategy) {
  switch (strategy) {
    case migration::Strategy::kFull:
      return "full pre-copy";
    case migration::Strategy::kHashes:
      return "VeCycle";
    default:
      return "VeCycle+dedup";
  }
}

}  // namespace

int main() {
  const obs::ScopedReporter reporter("fault_sweep");
  bench::PrintHeader(
      "Fault sweep: 4-VM WAN ping-pong under injected outages "
      "(mean 10 s), 50% checkpoint rot, capped retries");

  analysis::Table table({"Outages/h", "Scheme", "Migration time",
                         "Wire payload", "Retries", "Aborts",
                         "Fallback pages"});
  for (const double rate : {0.0, 30.0, 120.0}) {
    for (const auto strategy :
         {migration::Strategy::kFull, migration::Strategy::kHashes,
          migration::Strategy::kHashesPlusDedup}) {
      const auto result = Sweep(strategy, rate);
      table.AddRow({analysis::Table::Num(rate, 0), StrategyName(strategy),
                    FormatDuration(result.makespan),
                    FormatBytes(result.total_tx),
                    std::to_string(result.retries),
                    std::to_string(result.aborts),
                    std::to_string(result.fallback_pages)});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Reading the table: the fallback pages come from the 50%%\n"
      "checkpoint-rot probability, not the link — every one was re-sent\n"
      "in full over the wire instead of aborting the return leg (§3.3's\n"
      "integrity scan made recoverable), at every outage rate including\n"
      "zero. Outages hit all strategies at the same simulated instants,\n"
      "so the retry counts match across schemes; the cost shows up as\n"
      "backoff-stretched migration time and wire payload burned by cut\n"
      "attempts. At 120 outages/h the WAN is down often enough that\n"
      "every attempt of the outbound leg is cut: the attempt cap fires,\n"
      "the fleet stays at its source — aborted loudly rather than stuck\n"
      "silently — and the wire payload is pure waste.\n");
  return 0;
}
