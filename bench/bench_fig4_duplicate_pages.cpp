// Figure 4: percentage of duplicate pages over the 7-day trace for the
// three servers and three laptops, plus zero-page percentage for the
// servers. Paper shape: servers 5-20% duplicates (Server A lowest ~5%,
// Server C ~20%), laptops 10-20%; zero pages stable below ~5%.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/binning.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "traces/synthesizer.hpp"

namespace {

struct Series {
  std::string name;
  vecycle::analysis::CompositionSeries data;
};

double MeanOf(const std::vector<double>& values) {
  double sum = 0.0;
  for (const double v : values) sum += v;
  return values.empty() ? 0.0 : sum / static_cast<double>(values.size());
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_fig4_duplicate_pages");
  using namespace vecycle;

  bench::PrintHeader("Figure 4: duplicate pages and zero pages over time");

  const std::vector<std::string> machines = {"Server A", "Server B",
                                             "Server C", "Laptop A",
                                             "Laptop B", "Laptop C"};
  std::vector<Series> series;
  for (const auto& name : machines) {
    const auto trace = traces::SynthesizeTrace(traces::FindMachine(name));
    series.push_back({name, analysis::ComputeComposition(trace)});
  }

  // Time series sampled every 24 hours (as the figure's x axis spans
  // 0-168 h).
  analysis::Table dup_table({"t [h]", "Server A", "Server B", "Server C",
                             "Laptop A", "Laptop B", "Laptop C"});
  for (int hour = 0; hour <= 168; hour += 24) {
    std::vector<std::string> row = {std::to_string(hour)};
    for (const auto& s : series) {
      // Closest fingerprint to this time (laptops have gaps).
      double value = -1.0;
      double best_delta = 1e18;
      for (std::size_t i = 0; i < s.data.timestamps.size(); ++i) {
        const double delta =
            std::abs(ToSeconds(s.data.timestamps[i]) - hour * 3600.0);
        if (delta < best_delta) {
          best_delta = delta;
          value = s.data.duplicate_fraction[i];
        }
      }
      row.push_back(value < 0 ? "-" : analysis::Table::Pct(value, 1));
    }
    dup_table.AddRow(row);
  }
  std::printf("Duplicate pages [%% of RAM]:\n%s\n",
              dup_table.Render().c_str());

  analysis::Table summary({"Machine", "mean dup", "mean zero"});
  for (const auto& s : series) {
    summary.AddRow({s.name,
                    analysis::Table::Pct(MeanOf(s.data.duplicate_fraction), 1),
                    analysis::Table::Pct(MeanOf(s.data.zero_fraction), 1)});
  }
  std::printf("%s\n", summary.Render().c_str());

  std::printf(
      "Paper: Server A ~5%% duplicates (stable), Server C ~20%% with the\n"
      "fewest zero pages; laptops 10-20%%; zero pages <5%% for all servers\n"
      "most of the time.\n");
  return 0;
}
