// Figure 2: Server C's snapshot similarity over the entire 7-day trace
// period. Paper shape: even after one week, ~20% of the memory content is
// unchanged; the maximum stays high early, the minimum collapses fast.
#include <cstdio>

#include "analysis/binning.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "traces/synthesizer.hpp"

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_fig2_week_similarity");
  using namespace vecycle;

  bench::PrintHeader("Figure 2: Server C similarity over the full 7 days");

  const auto spec = traces::FindMachine("Server C");
  const auto trace = traces::SynthesizeTrace(spec);

  analysis::SimilarityDecayOptions options;
  options.bin_width = Hours(4);  // coarser bins over the long range
  options.max_delta = Hours(168);
  options.max_pairs_per_bin = 128;
  const auto decay = analysis::SimilarityDecay(trace, options);

  analysis::Table table({"dt [h]", "min", "avg", "max", "pairs"});
  for (const auto& bin : decay) {
    const double hours = ToSeconds(bin.center) / 3600.0;
    // Print every 3rd bin to keep the series readable (12-hour steps).
    if (static_cast<int>(hours) % 12 != 0) continue;
    table.AddRow({analysis::Table::Num(hours, 0),
                  analysis::Table::Num(bin.min, 2),
                  analysis::Table::Num(bin.mean, 2),
                  analysis::Table::Num(bin.max, 2),
                  std::to_string(bin.pairs)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Headline number: average similarity at the one-week delta.
  const auto& last = decay.back();
  std::printf("Measured: avg similarity at ~%.0f h = %.2f\n",
              ToSeconds(last.center) / 3600.0, last.mean);
  std::printf(
      "Paper: \"Even after one week about 20%% of the memory content is\n"
      "unchanged.\"\n");
  return 0;
}
