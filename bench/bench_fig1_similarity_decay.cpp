// Figure 1: snapshot-similarity time series for two servers, two laptops
// and two web crawlers — minimum, average and maximum similarity per
// 30-minute time-delta bin up to 24 hours.
//
// Paper shape targets: similarity decays with delta; servers/laptops
// retain 20-40% at 24 h (Server B ~0.40, Server C ~0.20); crawlers drop to
// ~0.40 within an hour and below 0.20 by five hours; the min/max envelope
// is wide (activity-dependent).
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/binning.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "traces/synthesizer.hpp"

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_fig1_similarity_decay");
  using namespace vecycle;

  bench::PrintHeader("Figure 1: memory similarity vs time between snapshots");

  const std::vector<std::string> machines = {"Server A", "Server B",
                                             "Laptop A", "Laptop B",
                                             "Crawler A", "Crawler B"};
  const std::vector<double> report_hours = {0.5, 1, 2, 4, 8, 16, 24};

  for (const auto& name : machines) {
    const auto spec = traces::FindMachine(name);
    const auto trace = traces::SynthesizeTrace(spec);

    analysis::SimilarityDecayOptions options;
    options.max_delta = Hours(24);
    options.max_pairs_per_bin = 192;
    const auto decay = analysis::SimilarityDecay(trace, options);

    std::printf("--- %s (%s, %s) — %zu fingerprints ---\n", name.c_str(),
                spec.os.c_str(), FormatBytes(spec.nominal_ram).c_str(),
                trace.Size());
    analysis::Table table({"dt [h]", "min", "avg", "max", "pairs"});
    for (const double hours : report_hours) {
      // Pick the bin whose center is closest to the requested delta.
      const analysis::BinStat* best = nullptr;
      for (const auto& bin : decay) {
        if (best == nullptr ||
            std::abs(ToSeconds(bin.center) - hours * 3600.0) <
                std::abs(ToSeconds(best->center) - hours * 3600.0)) {
          best = &bin;
        }
      }
      if (best == nullptr) continue;
      table.AddRow({analysis::Table::Num(ToSeconds(best->center) / 3600.0, 1),
                    analysis::Table::Num(best->min, 2),
                    analysis::Table::Num(best->mean, 2),
                    analysis::Table::Num(best->max, 2),
                    std::to_string(best->pairs)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "Paper: avg similarity at 24 h between 0.40 (Server B) and 0.20\n"
      "(Server C); crawlers ~0.40 at 1 h, <0.20 after 5 h; minima drop\n"
      "below 0.20 quickly for all systems.\n");
  return 0;
}
