// Ablation (§3.4): the checksum algorithm and rate bound VeCycle's
// migration time once the link is fast enough. Sweeps MD5 / SHA-1 / FNV
// and 1/10/40 GbE for a high-similarity 2 GiB migration, plus the
// multi-threading lever the paper names for faster links.
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace vecycle;

migration::MigrationStats Run(sim::LinkConfig link, DigestAlgorithm algorithm,
                              std::uint32_t threads) {
  sim::ChecksumEngineConfig cpu;
  cpu.threads = threads;

  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  core::MigrationOrchestrator orchestrator(cluster);
  cluster.AddHost({"A", sim::DiskConfig::Hdd(), cpu, {}, {}});
  cluster.AddHost({"B", sim::DiskConfig::Hdd(), cpu, {}, {}});
  cluster.Connect("A", "B", link);

  auto vm = bench::MakeBestCaseVm(GiB(2), 0x5eed);
  orchestrator.Deploy(vm, "A");
  migration::MigrationConfig full;
  full.strategy = migration::Strategy::kFull;
  full.algorithm = algorithm;
  orchestrator.Migrate(vm, "B", full);

  migration::MigrationConfig hashes;
  hashes.strategy = migration::Strategy::kHashes;
  hashes.algorithm = algorithm;
  return orchestrator.Migrate(vm, "A", hashes);
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_ablation_checksum");
  bench::PrintHeader(
      "Ablation: checksum algorithm and link speed (2 GiB idle VM)");

  const std::vector<std::pair<const char*, sim::LinkConfig>> links = {
      {"1 GbE", {GigabitsPerSecond(1.0), Milliseconds(0.2), Bytes{0}}},
      {"10 GbE", {GigabitsPerSecond(10.0), Milliseconds(0.2), Bytes{0}}},
      {"40 GbE", {GigabitsPerSecond(40.0), Milliseconds(0.2), Bytes{0}}},
  };
  const std::vector<std::pair<const char*, DigestAlgorithm>> algorithms = {
      {"md5", DigestAlgorithm::kMd5},
      {"sha1", DigestAlgorithm::kSha1},
      {"fnv1a", DigestAlgorithm::kFnv1a},
  };

  analysis::Table table({"Link", "Algorithm", "Threads", "VeCycle time",
                         "Full-copy time @link"});
  for (const auto& [link_label, link] : links) {
    const double full_copy_s =
        ToSeconds(link.EffectiveBandwidth().TimeFor(GiB(2))) * 1538.0 /
        1448.0;
    for (const auto& [alg_label, algorithm] : algorithms) {
      const auto one = Run(link, algorithm, 1);
      table.AddRow({link_label, alg_label, "1",
                    FormatDuration(one.total_time),
                    analysis::Table::Num(full_copy_s, 1) + " s"});
    }
    // The §3.4 remedy for fast links: multi-threaded checksumming.
    const auto four = Run(link, DigestAlgorithm::kMd5, 4);
    table.AddRow({link_label, "md5", "4", FormatDuration(four.total_time),
                  analysis::Table::Num(full_copy_s, 1) + " s"});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Paper (§3.4): on 1 GbE the 350 MiB/s MD5 rate is ~3x the link, so\n"
      "checksums are not the bottleneck; on 10/40 GbE the migration time\n"
      "is dominated by the checksum rate — remedied by a cheaper checksum,\n"
      "or multi-threading.\n");
  return 0;
}
