// Ablation (§3.2): bulk checksum exchange vs. the per-page query scheme
// the paper names but leaves unevaluated: "we expect the high frequency
// exchange of small messages to slow down the migration performance.
// Hence, we send the checksums in-bulk before the actual migration
// begins." This bench quantifies that expectation: a synchronous query
// per page pays one round trip each, so latency — not bandwidth —
// dominates, catastrophically so on the 27 ms WAN. Pipelining the queries
// (larger windows) recovers much of the loss but never beats bulk.
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace vecycle;

migration::MigrationStats Run(sim::LinkConfig link,
                              migration::HashExchangeMode mode,
                              std::uint32_t window) {
  bench::TwoHostWorld world(link);
  auto vm = bench::MakeBestCaseVm(MiB(512), 0x5eed);
  world.orchestrator.Deploy(vm, "A");
  world.orchestrator.Migrate(
      vm, "B", bench::StrategyConfig(migration::Strategy::kFull));

  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;
  config.hash_exchange = mode;
  config.query_window = window;
  // Forget the ping-pong knowledge so the exchange actually runs: the
  // cold-source path is what §3.2 discusses.
  vm.RememberPagesAt("A", {});
  return world.orchestrator.Migrate(vm, "A", config);
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_ablation_hash_exchange");
  bench::PrintHeader(
      "Ablation: hash-exchange protocol (512 MiB idle VM, cold source)");

  analysis::Table table({"Network", "Scheme", "Migration time",
                         "Exchange traffic", "Queries"});
  for (const auto& [net_label, link] :
       {std::pair<const char*, sim::LinkConfig>{"LAN",
                                                sim::LinkConfig::Lan()},
        {"WAN", sim::LinkConfig::Wan()}}) {
    const auto bulk =
        Run(link, migration::HashExchangeMode::kBulk, 1);
    table.AddRow({net_label, "bulk (paper)",
                  FormatDuration(bulk.total_time),
                  FormatBytes(bulk.bulk_exchange_bytes), "0"});
    for (const std::uint32_t window : {1u, 16u, 256u}) {
      const auto query =
          Run(link, migration::HashExchangeMode::kPerPageQuery, window);
      table.AddRow({net_label,
                    "query w=" + std::to_string(window),
                    FormatDuration(query.total_time),
                    FormatBytes(query.query_bytes),
                    std::to_string(query.query_count)});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Paper (§3.2): predicted, not measured — the per-page variant was\n"
      "rejected on the expectation that high-frequency small messages\n"
      "would slow the migration. Measured: with window 1 every page pays\n"
      "a full RTT (0.4 ms LAN / 54 ms WAN), dwarfing the bulk transfer;\n"
      "deep pipelining narrows but never closes the gap, while spending\n"
      "more exchange traffic than bulk for any VM with <100%% distinct\n"
      "pages.\n");
  return 0;
}
