// Figure 5: comparison of traffic-reduction techniques over all
// fingerprint pairs — mean fraction-of-baseline per technique (bar chart,
// left panel) and the CDF of the additional reduction content-based
// redundancy elimination (hashes+dedup) achieves over dirty+dedup (center:
// servers, right: laptops).
//
// Paper values (fraction of baseline): Server A dedup .92 / dirty .80 /
// dirty+dedup .77 / hashes .65 / hashes+dedup .64; Server B .85 / .78 /
// .69 / .59 / .53. CDFs: Server B sees >=10% reduction in ~90% of cases;
// laptops >=5% in half the cases.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "analysis/technique.hpp"
#include "bench_util.hpp"
#include "traces/synthesizer.hpp"

namespace {

double Percentile(const std::vector<vecycle::analysis::CdfPoint>& cdf,
                  double p) {
  for (const auto& point : cdf) {
    if (point.probability >= p) return point.value;
  }
  return cdf.empty() ? 0.0 : cdf.back().value;
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_fig5_technique_comparison");
  using namespace vecycle;

  bench::PrintHeader(
      "Figure 5: traffic-reduction techniques, fraction of baseline");

  const std::vector<std::string> machines = {
      "Server A", "Server B", "Server C", "Laptop A",
      "Laptop B", "Laptop C", "Laptop D"};

  analysis::Table bars({"Machine", "dedup", "dirty", "dirty+dedup", "hashes",
                        "hashes+dedup", "pairs"});
  std::vector<double> server_reductions;
  std::vector<double> laptop_reductions;

  for (const auto& name : machines) {
    const auto spec = traces::FindMachine(name);
    const auto trace = traces::SynthesizeTrace(spec);

    analysis::TechniqueSummaryOptions options;
    options.max_pairs = 384;
    const auto summary = analysis::SummarizeTechniques(trace, options);

    bars.AddRow({name, analysis::Table::Num(summary.mean_dedup, 2),
                 analysis::Table::Num(summary.mean_dirty, 2),
                 analysis::Table::Num(summary.mean_dirty_dedup, 2),
                 analysis::Table::Num(summary.mean_hashes, 2),
                 analysis::Table::Num(summary.mean_hashes_dedup, 2),
                 std::to_string(summary.pairs)});

    auto& bucket = spec.klass == traces::MachineClass::kServer
                       ? server_reductions
                       : laptop_reductions;
    bucket.insert(bucket.end(),
                  summary.reduction_over_dirty_dedup_pct.begin(),
                  summary.reduction_over_dirty_dedup_pct.end());
  }
  std::printf("%s\n", bars.Render().c_str());
  std::printf(
      "Paper bars: Server A .92/.80/.77/.65/.64 — Server B .85/.78/.69/"
      ".59/.53\n\n");

  bench::PrintHeader(
      "Figure 5 (center/right): CDF of reduction of hashes+dedup over "
      "dirty+dedup [%]");
  analysis::Table cdf_table(
      {"Group", "p10", "p25", "p50", "p75", "p90"});
  for (const auto& [label, values] :
       {std::pair<std::string, std::vector<double>&>{"Servers",
                                                     server_reductions},
        {"Laptops", laptop_reductions}}) {
    const auto cdf = analysis::ComputeCdf(values);
    cdf_table.AddRow({label, analysis::Table::Num(Percentile(cdf, 0.10), 1),
                      analysis::Table::Num(Percentile(cdf, 0.25), 1),
                      analysis::Table::Num(Percentile(cdf, 0.50), 1),
                      analysis::Table::Num(Percentile(cdf, 0.75), 1),
                      analysis::Table::Num(Percentile(cdf, 0.90), 1)});
  }
  std::printf("%s\n", cdf_table.Render().c_str());
  std::printf(
      "Paper: content-based redundancy elimination plus dedup reduces\n"
      "traffic by an additional 10-50%% (and more) against dirty+dedup;\n"
      "laptops see >=5%% in half the cases.\n");

  // The fingerprint analysis above is static; also drive one end-to-end
  // simulated return migration per technique so the observability layer
  // (VECYCLE_TRACE=1) captures per-round spans and a full MigrationStats
  // metrics record for every strategy.
  bench::PrintHeader(
      "Figure 5 (simulated): end-to-end return migration per technique");
  analysis::Table sim_table(
      {"Strategy", "tx MiB", "rounds", "total s", "downtime ms"});
  for (const auto strategy :
       {migration::Strategy::kFull, migration::Strategy::kDedup,
        migration::Strategy::kDirtyTracking, migration::Strategy::kHashes,
        migration::Strategy::kDirtyPlusDedup,
        migration::Strategy::kHashesPlusDedup}) {
    vm::UniformRandomWorkload churn(400.0, 0x5eed);
    const auto stats = bench::MeasureReturnMigration(
        sim::LinkConfig::Lan(), MiB(64), strategy, &churn, Seconds(30.0));
    sim_table.AddRow(
        {migration::ToString(strategy),
         analysis::Table::Num(
             static_cast<double>(stats.tx_bytes.count) / (1024.0 * 1024.0),
             1),
         std::to_string(stats.rounds),
         analysis::Table::Num(ToSeconds(stats.total_time), 2),
         analysis::Table::Num(ToSeconds(stats.downtime) * 1e3, 1)});
  }
  std::printf("%s\n", sim_table.Render().c_str());
  return 0;
}
