// Transfer-stack sweep (docs/migration.md "Transfer stack"): multifd
// channel scaling on the WAN link, recycle-aware delta encoding on a
// return leg, and auto-converge against a diverging writer. Unlike
// bench_perf, every number here is *simulated* — deterministic and
// machine-independent — so the checked-in baseline gates exactly: the
// "ns_per_op" of each row is the simulated migration time (downtime for
// the auto-converge rows), and any protocol change that slows a row
// shows up as a regression, on every machine.
//
// The binary also re-checks the tentpole claims inline and exits nonzero
// if they fail: 4 multifd channels must beat the single-stream TCP
// window cap by >= 2x on the bandwidth-bound WAN pre-copy leg, and delta
// encoding must put measurably fewer bytes on the wire.
//
// Usage: bench_transfer [--out BENCH_transfer.json]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "storage/checkpoint.hpp"
#include "vm/workload.hpp"

namespace {

using namespace vecycle;

struct Row {
  std::string name;
  double sim_ns = 0.0;          // simulated time (the gated quantity)
  std::uint64_t tx_bytes = 0;   // forward wire bytes
};

constexpr Bytes kRam = MiB(64);

migration::MigrationConfig BaseConfig() {
  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kFull;
  config.audit = true;  // byte-conservation audits armed throughout
  return config;
}

/// Cold WAN pre-copy of a 64 MiB VM — bandwidth-bound (no checkpoint at
/// the destination, nothing to elide), the leg where multifd pays.
Row WanPrecopy(std::uint32_t channels) {
  bench::TwoHostWorld world{sim::LinkConfig::Wan()};
  auto vm = bench::MakeBestCaseVm(kRam, 0x7a1);
  world.orchestrator.Deploy(vm, "A");
  auto config = BaseConfig();
  config.multifd.enabled = channels > 1;
  config.multifd.channels = channels;
  const auto stats = world.orchestrator.Migrate(vm, "B", config);
  Row row;
  row.name = "wan_precopy_ch" + std::to_string(channels);
  row.sim_ns = static_cast<double>(stats.total_time.count());
  row.tx_bytes = stats.tx_bytes.count;
  return row;
}

/// Return leg against a recycled checkpoint with a rewritten working
/// set: the delta rows ship sub-page encodings where the plain rows ship
/// full pages.
Row WanReturn(bool delta) {
  bench::TwoHostWorld world{sim::LinkConfig::Wan()};
  auto vm = bench::MakeBestCaseVm(kRam, 0x7a2);
  world.orchestrator.Deploy(vm, "A");
  world.orchestrator.Migrate(vm, "B", BaseConfig());
  // A quarter of RAM is rewritten while the VM dwells at B.
  auto& memory = vm.Memory();
  for (vm::PageId p = 0; p < memory.PageCount() / 4; ++p) {
    memory.WritePage(p * 4, 0xd1f7 + p);
  }
  auto config = BaseConfig();
  config.strategy = migration::Strategy::kHashes;
  config.delta.enabled = delta;
  const auto stats = world.orchestrator.Migrate(vm, "A", config);
  Row row;
  row.name = delta ? "wan_return_delta" : "wan_return_full";
  row.sim_ns = static_cast<double>(stats.total_time.count());
  row.tx_bytes = stats.tx_bytes.count;
  return row;
}

/// A writer that outruns the single-stream WAN: without auto-converge
/// the migration runs to max_rounds and stops with the whole working set
/// dirty; with it, the guest is throttled into convergence. The gated
/// quantity is downtime.
Row DivergingWriter(bool converge) {
  // Driven directly (not through the orchestrator) so the live workload
  // keeps dirtying pages between rounds.
  sim::Simulator simulator;
  sim::Link link{sim::LinkConfig::Wan()};
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk src_disk{sim::DiskConfig::Hdd()};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore src_store{src_disk};
  storage::CheckpointStore dst_store{dst_disk};

  vm::GuestMemory memory{MiB(8), vm::ContentMode::kSeedOnly};
  Xoshiro256 rng(0x7a3);
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    memory.WritePage(p, rng.Next() | (1ull << 62));
  }
  vm::UniformRandomWorkload writer(5000.0, 0x7a4);

  auto config = BaseConfig();
  config.auto_converge.enabled = converge;
  config.stop_copy_threshold_pages = 64;
  config.max_rounds = 40;

  migration::MigrationRun run;
  run.simulator = &simulator;
  run.link = &link;
  run.direction = sim::Direction::kAtoB;
  run.source_memory = &memory;
  run.workload = &writer;
  run.source = {&src_cpu, &src_store};
  run.destination = {&dst_cpu, &dst_store};
  run.vm_id = "vm";
  run.config = config;
  const auto stats = migration::RunMigration(std::move(run)).stats;
  Row row;
  row.name = converge ? "wan_converge_on" : "wan_converge_off";
  row.sim_ns = static_cast<double>(stats.downtime.count());
  row.tx_bytes = stats.tx_bytes.count;
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"schema\": \"vecycle.bench_perf.v1\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iters\": 1, "
                 "\"ns_per_op\": %.1f, \"ops_per_sec\": %.6f, "
                 "\"tx_bytes\": %llu}%s\n",
                 r.name.c_str(), r.sim_ns, 1e9 / r.sim_ns,
                 static_cast<unsigned long long>(r.tx_bytes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

void Print(const Row& row) {
  std::printf("%-20s %10.3f s simulated  %12llu wire bytes\n",
              row.name.c_str(), row.sim_ns / 1e9,
              static_cast<unsigned long long>(row.tx_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE.json]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "bench_transfer: multifd / delta / auto-converge WAN sweep");

  std::vector<Row> rows;
  for (const std::uint32_t channels : {1u, 2u, 4u, 8u}) {
    rows.push_back(WanPrecopy(channels));
    Print(rows.back());
  }
  rows.push_back(WanReturn(/*delta=*/false));
  Print(rows.back());
  rows.push_back(WanReturn(/*delta=*/true));
  Print(rows.back());
  rows.push_back(DivergingWriter(/*converge=*/false));
  Print(rows.back());
  rows.push_back(DivergingWriter(/*converge=*/true));
  Print(rows.back());

  // Inline claims check — the tentpole numbers, re-verified every run.
  const double speedup = rows[0].sim_ns / rows[2].sim_ns;  // ch1 / ch4
  std::printf("\nmultifd 4-channel speedup: %.2fx\n", speedup);
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: multifd speedup %.2fx < 2x\n", speedup);
    return 1;
  }
  const auto& full = rows[4];
  const auto& delta = rows[5];
  std::printf("delta wire bytes: %llu -> %llu (%.1f%%)\n",
              static_cast<unsigned long long>(full.tx_bytes),
              static_cast<unsigned long long>(delta.tx_bytes),
              100.0 * static_cast<double>(delta.tx_bytes) /
                  static_cast<double>(full.tx_bytes));
  if (delta.tx_bytes >= full.tx_bytes) {
    std::fprintf(stderr, "FAIL: delta encoding did not cut wire bytes\n");
    return 1;
  }
  if (rows[7].sim_ns >= rows[6].sim_ns) {
    std::fprintf(stderr, "FAIL: auto-converge did not cut downtime\n");
    return 1;
  }

  if (!out_path.empty()) WriteJson(out_path, rows);
  return 0;
}
