// Ablation: concurrent migrations on a shared link.
//
// §4.4 notes the available migration bandwidth "may also be limited in a
// local area network, as the migration traffic competes with other
// network users", and the motivation cites operators who limit migration
// frequency because of its traffic [22, 26]. This bench evacuates N VMs
// at once over one gigabit link — the maintenance-evacuation scenario —
// comparing full pre-copy against VeCycle returns to hosts holding
// day-old checkpoints. VeCycle's per-VM traffic cut multiplies: the whole
// evacuation finishes in a fraction of the time, or equivalently, more
// VMs can migrate per maintenance window.
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "storage/checkpoint.hpp"

namespace {

using namespace vecycle;

struct EvacuationResult {
  SimDuration makespan;
  Bytes total_tx;
};

EvacuationResult Evacuate(std::size_t vm_count,
                          migration::Strategy strategy) {
  sim::Simulator simulator;
  // One shared uplink out of the host being evacuated; each VM returns to
  // a *different* destination host (own disk, CPU and checkpoint store),
  // as a load balancer would scatter them.
  sim::Link link(sim::LinkConfig::Lan());
  sim::ChecksumEngine cpu_a{sim::ChecksumEngineConfig{}};
  sim::Disk disk_a{sim::DiskConfig::Hdd()};
  storage::CheckpointStore store_a{disk_a};
  std::vector<std::unique_ptr<sim::ChecksumEngine>> dest_cpus;
  std::vector<std::unique_ptr<sim::Disk>> dest_disks;
  std::vector<std::unique_ptr<storage::CheckpointStore>> dest_stores;
  for (std::size_t i = 0; i < vm_count; ++i) {
    dest_cpus.push_back(
        std::make_unique<sim::ChecksumEngine>(sim::ChecksumEngineConfig{}));
    dest_disks.push_back(
        std::make_unique<sim::Disk>(sim::DiskConfig::Hdd()));
    dest_stores.push_back(
        std::make_unique<storage::CheckpointStore>(*dest_disks.back()));
  }

  // Each VM: 512 MiB, ~90% still matching the day-old checkpoint at the
  // destination (a typical Fig. 1 server at a few hours delta).
  std::vector<std::unique_ptr<vm::GuestMemory>> memories;
  std::vector<std::vector<Digest128>> knowledge(vm_count);
  for (std::size_t i = 0; i < vm_count; ++i) {
    auto memory = std::make_unique<vm::GuestMemory>(
        MiB(512), vm::ContentMode::kSeedOnly);
    Xoshiro256 rng(100 + i);
    for (vm::PageId p = 0; p < memory->PageCount(); ++p) {
      memory->WritePage(p, rng.Next() | (1ull << 62));
    }
    const std::string id = "vm" + std::to_string(i);
    dest_stores[i]->Save(id, storage::Checkpoint::CaptureFrom(*memory),
                         kSimEpoch);
    for (vm::PageId p = 0; p < memory->PageCount(); ++p) {
      knowledge[i].push_back(memory->PageDigest(p));
    }
    // 10% churn since the checkpoint was taken.
    vm::UniformRandomWorkload churn(100.0, 200 + i);
    churn.Advance(*memory, Seconds(131.0));
    memories.push_back(std::move(memory));
  }

  std::vector<std::unique_ptr<migration::MigrationSession>> sessions;
  for (std::size_t i = 0; i < vm_count; ++i) {
    migration::MigrationRun run;
    run.simulator = &simulator;
    run.link = &link;
    run.direction = sim::Direction::kAtoB;
    run.source_memory = memories[i].get();
    run.source = {&cpu_a, &store_a};
    run.destination = {dest_cpus[i].get(), dest_stores[i].get()};
    run.vm_id = "vm" + std::to_string(i);
    run.config.strategy = strategy;
    run.source_knowledge = knowledge[i];
    sessions.push_back(
        std::make_unique<migration::MigrationSession>(std::move(run)));
  }
  simulator.Run();

  EvacuationResult result{SimDuration::zero(), Bytes{0}};
  for (auto& session : sessions) {
    auto outcome = session->TakeOutcome();
    // Wall-clock makespan of the whole evacuation (sessions all start at
    // t=0; setup staggering and contention both count).
    result.makespan =
        std::max(result.makespan, outcome.completed_at - kSimEpoch);
    result.total_tx += outcome.stats.tx_bytes;
  }
  return result;
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_ablation_contention");
  bench::PrintHeader(
      "Ablation: evacuating N concurrent 512 MiB VMs over one GbE link");

  analysis::Table table({"VMs", "Scheme", "Makespan", "Total traffic"});
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    const auto full = Evacuate(n, migration::Strategy::kFull);
    const auto vecycle = Evacuate(n, migration::Strategy::kHashes);
    table.AddRow({std::to_string(n), "full pre-copy",
                  FormatDuration(full.makespan),
                  FormatBytes(full.total_tx)});
    table.AddRow({std::to_string(n), "VeCycle",
                  FormatDuration(vecycle.makespan),
                  FormatBytes(vecycle.total_tx)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Motivation §1/§5: migration traffic is the pain point that limits\n"
      "how often operators migrate [22, 26]. Makespan here is wall clock\n"
      "and *includes* each destination's checkpoint scan (which the\n"
      "paper's per-migration timing excludes as setup): that is why\n"
      "VeCycle loses the single-VM case yet wins the evacuation — full\n"
      "pre-copy grows linearly with the shared link's backlog while\n"
      "VeCycle grows with the source's checksum rate, crossing over by\n"
      "4 VMs and shipping an order of magnitude less data throughout.\n"
      "Pre-staging the scans (destinations know an evacuation is coming)\n"
      "would remove VeCycle's fixed cost entirely.\n");
  return 0;
}
