// Figure 7: controlled update rates. A 4 GiB VM carries a ramdisk covering
// 90% of its memory; between the outgoing and the measured return
// migration, {0, 25, 50, 75, 100}% of the ramdisk is rewritten with fresh
// random data. Reports migration time (LAN and WAN) and source traffic.
//
// Paper shape: the QEMU baseline is flat (independent of updates, ~35 s
// LAN / ~600 s WAN for 4 GiB); VeCycle's time and traffic grow
// proportionally with the update percentage and converge to the baseline
// at 100% (LAN deltas: -72% at 25%, -49% at 50%, -27% at 75%).
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace vecycle;

struct Sample {
  double update_pct;
  migration::MigrationStats stats;
};

migration::MigrationStats RunOne(sim::LinkConfig link, double update_fraction,
                                 migration::Strategy strategy) {
  bench::TwoHostWorld world(link);
  core::VmInstance vm("vm", GiB(4), vm::ContentMode::kSeedOnly);
  vm::SequentialRamdiskWorkload ramdisk(vm.Memory().PageCount(), 0.9,
                                        /*seed=*/0xd15c);
  ramdisk.Fill(vm.Memory());

  world.orchestrator.Deploy(vm, "A");
  world.orchestrator.Migrate(vm, "B",
                             bench::StrategyConfig(migration::Strategy::kFull));
  ramdisk.UpdateFraction(vm.Memory(), update_fraction);
  return world.orchestrator.Migrate(vm, "A", bench::StrategyConfig(strategy));
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_fig7_update_rates");
  const std::vector<double> updates = {0.0, 0.25, 0.50, 0.75, 1.0};

  for (const auto& [net_label, link] :
       {std::pair<const char*, sim::LinkConfig>{"LAN",
                                                sim::LinkConfig::Lan()},
        {"WAN", sim::LinkConfig::Wan()}}) {
    bench::PrintHeader(std::string("Figure 7 (") + net_label +
                       "): 4 GiB VM, ramdisk updates");
    analysis::Table table({"Updates [%]", "QEMU time", "VeCycle time",
                           "delta", "QEMU tx", "VeCycle tx"});
    for (const double u : updates) {
      const auto baseline = RunOne(link, u, migration::Strategy::kFull);
      const auto vecycle = RunOne(link, u, migration::Strategy::kHashes);
      const double delta =
          100.0 * (ToSeconds(vecycle.total_time) /
                       ToSeconds(baseline.total_time) -
                   1.0);
      table.AddRow({analysis::Table::Num(u * 100.0, 0),
                    FormatDuration(baseline.total_time),
                    FormatDuration(vecycle.total_time),
                    analysis::Table::Num(delta, 0) + "%",
                    FormatBytes(baseline.tx_bytes),
                    FormatBytes(vecycle.tx_bytes)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "Paper (LAN): -72%% at 25%% updates, -49%% at 50%%, -27%% at 75%%;\n"
      "baseline flat; VeCycle traffic tracks the updated-memory volume.\n");
  return 0;
}
