// Figure 3, quantified. The paper's Figure 3 is a conceptual sketch:
// "different methods exist to reduce the network traffic during a
// migration and each method identifies a distinct set of pages to
// transfer... In the common case, deduplication transfers the most pages,
// followed by dirty page tracking. Checksum-based redundancy elimination
// typically performs better than dirty page tracking."
//
// This bench measures those sets and their overlaps on the synthetic
// corpus at a 4-hour and a 24-hour migration delta, making the sketch's
// claims checkable: hashes ⊆ dirty always; dirty \ hashes (moved or
// identically-rewritten content) is exactly Miyakodori's overestimate.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "analysis/technique.hpp"
#include "bench_util.hpp"
#include "traces/synthesizer.hpp"

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_fig3_method_sets");
  using namespace vecycle;

  bench::PrintHeader("Figure 3 (quantified): page sets per method");

  analysis::Table table({"Machine", "dt [h]", "dirty", "hashes",
                         "dirty\\hashes", "dup pos", "dirty&dup",
                         "hashes&dup"});
  for (const char* name : {"Server A", "Server B", "Server C", "Laptop A"}) {
    const auto trace = traces::SynthesizeTrace(traces::FindMachine(name));
    for (const int hours : {4, 24}) {
      // Fingerprints are 30 minutes apart; index = 2 * hours later.
      const std::size_t a = 0;
      const std::size_t b = static_cast<std::size_t>(2 * hours);
      if (b >= trace.Size()) continue;
      const auto sets =
          analysis::ComputeMethodSets(trace.At(a), trace.At(b));
      const auto pct = [&](std::uint64_t n) {
        return analysis::Table::Pct(
            static_cast<double>(n) /
                static_cast<double>(sets.total_pages),
            1);
      };
      table.AddRow({name, std::to_string(hours), pct(sets.dirty),
                    pct(sets.hashes), pct(sets.dirty_not_hashes),
                    pct(sets.dup_positions), pct(sets.dirty_and_dup),
                    pct(sets.hashes_and_dup)});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Reading the sketch off the numbers: the hashes set is always a\n"
      "subset of the dirty set; their difference (dirty\\hashes) is\n"
      "content that moved between frames or was rewritten identically —\n"
      "pages Miyakodori transfers and VeCycle does not. Duplicate\n"
      "positions straddle both sets, which is why dedup composes with\n"
      "either technique (Fig. 3's overlapping circles).\n");
  return 0;
}
