// Figure 8: virtual desktop infrastructure scenario (§4.6). A 6 GiB
// desktop ping-pongs between workstation and consolidation server twice
// every weekday (9 am out, 5 pm back) over 13 weekdays = 26 migrations.
// Reports per-migration traffic as % of RAM for sender-side dedup and for
// VeCycle, plus the aggregate totals.
//
// Paper values: 26 full migrations ~159 GB; dedup ~138 GB (86% of
// baseline); VeCycle ~40 GB (25% of baseline, 29% vs dedup); VeCycle also
// sends 9% fewer pages than dirty-tracking+dedup. The first migration is
// the expensive one (no checkpoint exists anywhere yet).
#include <cstdio>

#include "analysis/table.hpp"
#include "analysis/vdi.hpp"
#include "bench_util.hpp"
#include "traces/synthesizer.hpp"

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_fig8_vdi");
  using namespace vecycle;

  bench::PrintHeader("Figure 8: VDI consolidation, 26 migrations over 13 weekdays");

  const auto spec = traces::DesktopMachine();
  const auto trace = traces::SynthesizeTrace(spec);
  const auto report =
      analysis::AnalyzeVdi(trace, spec.nominal_ram, analysis::VdiScheduleOptions{});

  analysis::Table table({"Mig #", "Direction", "dedup [% RAM]",
                         "VeCycle [% RAM]", "dirty+dedup [% RAM]"});
  for (const auto& row : report.rows) {
    table.AddRow({std::to_string(row.index + 1),
                  row.to_workstation ? "srv->wks" : "wks->srv",
                  analysis::Table::Pct(row.dedup, 1),
                  analysis::Table::Pct(row.vecycle, 1),
                  analysis::Table::Pct(row.dirty_dedup, 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  const auto gb = [](Bytes b) {
    return static_cast<double>(b.count) / 1e9;
  };
  const double full_gb = gb(report.total_full);
  analysis::Table totals({"Scheme", "Total traffic [GB]", "% of baseline"});
  totals.AddRow({"full migration", analysis::Table::Num(full_gb, 0), "100%"});
  totals.AddRow({"sender dedup", analysis::Table::Num(gb(report.total_dedup), 0),
                 analysis::Table::Pct(gb(report.total_dedup) / full_gb, 0)});
  totals.AddRow({"dirty+dedup",
                 analysis::Table::Num(gb(report.total_dirty_dedup), 0),
                 analysis::Table::Pct(gb(report.total_dirty_dedup) / full_gb, 0)});
  totals.AddRow({"VeCycle", analysis::Table::Num(gb(report.total_vecycle), 0),
                 analysis::Table::Pct(gb(report.total_vecycle) / full_gb, 0)});
  std::printf("%s\n", totals.Render().c_str());

  std::printf(
      "VeCycle vs dedup: %.0f%% — VeCycle vs dirty+dedup: %.1f%% fewer "
      "pages\n",
      100.0 * gb(report.total_vecycle) / gb(report.total_dedup),
      100.0 * (1.0 - gb(report.total_vecycle) /
                         gb(report.total_dirty_dedup)));
  std::printf(
      "Paper: 159 GB full / 138 GB dedup (86%%) / 40 GB VeCycle (25%% of\n"
      "baseline, 29%% of dedup); VeCycle sends 9%% fewer pages than dirty\n"
      "tracking with deduplication.\n");
  return 0;
}
