// Figure 6: best-case (idle VM, ~100% similarity) migration time over LAN
// and emulated WAN, plus source send traffic, for VM sizes 1-6 GiB —
// QEMU 2.0 baseline vs VeCycle.
//
// Paper values: LAN baseline ~10 s/GiB (60 s at 6 GiB) vs VeCycle 3 s
// (1 GiB) to 13 s (6 GiB) — 3-4x faster (-76%); WAN baseline 177 s (1 GiB)
// to ~16 min (6 GiB) vs VeCycle ~-94%; traffic drops by two orders of
// magnitude (1 GB -> 15 MB). Also reports the §3.2 bulk-exchange cost
// (zero on the ping-pong fast path).
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "bench_util.hpp"

int main() {
  const vecycle::obs::ScopedReporter reporter("bench_fig6_best_case");
  using namespace vecycle;

  const std::vector<std::uint64_t> sizes_mib = {1024, 2048, 4096, 6144};

  for (const auto& [net_label, link] :
       {std::pair<const char*, sim::LinkConfig>{"LAN",
                                                sim::LinkConfig::Lan()},
        {"WAN", sim::LinkConfig::Wan()}}) {
    bench::PrintHeader(std::string("Figure 6 (") + net_label +
                       "): idle VM, QEMU 2.0 vs VeCycle");
    analysis::Table table({"RAM [MiB]", "QEMU time", "VeCycle time",
                           "speedup", "QEMU tx", "VeCycle tx",
                           "tx delta"});
    for (const auto mib : sizes_mib) {
      // The VM stays idle between the hop to B and the measured return:
      // a two-minute dwell with a background-daemon trickle.
      vm::IdleWorkload idle_a{vm::IdleWorkload::Config{}};
      const auto baseline = bench::MeasureReturnMigration(
          link, MiB(mib), migration::Strategy::kFull, &idle_a, Minutes(2));
      vm::IdleWorkload idle_b{vm::IdleWorkload::Config{}};
      const auto vecycle = bench::MeasureReturnMigration(
          link, MiB(mib), migration::Strategy::kHashes, &idle_b, Minutes(2));

      const double speedup =
          ToSeconds(baseline.total_time) / ToSeconds(vecycle.total_time);
      const double tx_delta =
          100.0 * (static_cast<double>(vecycle.tx_bytes.count) /
                       static_cast<double>(baseline.tx_bytes.count) -
                   1.0);
      table.AddRow({std::to_string(mib),
                    FormatDuration(baseline.total_time),
                    FormatDuration(vecycle.total_time),
                    analysis::Table::Num(speedup, 1) + "x",
                    FormatBytes(baseline.tx_bytes),
                    FormatBytes(vecycle.tx_bytes),
                    analysis::Table::Num(tx_delta, 0) + "%"});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "Paper: LAN 10 s/GiB baseline vs 3-13 s VeCycle (3-4x); WAN 177 s\n"
      "(1 GiB) / ~16 min (6 GiB) baseline vs seconds-to-a-minute VeCycle;\n"
      "source traffic -93%% to -94%% (two orders of magnitude).\n"
      "Bulk hash exchange: 0 B here (ping-pong fast path; a cold source\n"
      "would receive 4 MiB of MD5 checksums per GiB of RAM, §3.2).\n");
  return 0;
}
