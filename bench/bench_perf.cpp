// Wall-clock performance harness for the hot paths this repo's benches
// lean on: page hashing (uncached vs memoized), digest-set construction
// and membership probing (flat hash set vs the sorted-vector baseline it
// replaced), simulator event throughput, and the full six-strategy
// migration sweep of bench_fig5. Workloads are deterministic (fixed
// seeds, fixed iteration counts); only the measured wall time varies by
// machine. Emits BENCH_perf.json for tools/bench_compare.py.
//
// Usage: bench_perf [--out BENCH_perf.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "digest/digest_memo.hpp"
#include "digest/digest_set.hpp"
#include "digest/hasher.hpp"
#include "sim/simulator.hpp"
#include "vm/guest_memory.hpp"

namespace {

using namespace vecycle;
using Clock = std::chrono::steady_clock;

struct Result {
  std::string name;
  std::uint64_t iters = 0;
  double ns_per_op = 0.0;
  double bytes_per_sec = 0.0;  // 0 = not a throughput benchmark
};

/// Best-of-`reps` wall time of `body()` (which performs `iters`
/// operations), after one untimed warmup call.
template <typename Body>
Result Measure(const std::string& name, std::uint64_t iters,
               std::uint64_t bytes_per_op, int reps, Body body) {
  body();  // warmup
  double best_ns = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    body();
    const auto t1 = Clock::now();
    best_ns = std::min(
        best_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  Result result;
  result.name = name;
  result.iters = iters;
  result.ns_per_op = best_ns / static_cast<double>(iters);
  if (bytes_per_op > 0) {
    result.bytes_per_sec = static_cast<double>(bytes_per_op) * 1e9 /
                           result.ns_per_op;
  }
  std::printf("%-32s %12.1f ns/op", name.c_str(), result.ns_per_op);
  if (bytes_per_op > 0) {
    std::printf("  %8.1f MiB/s", result.bytes_per_sec / (1024.0 * 1024.0));
  }
  std::printf("\n");
  return result;
}

std::vector<Digest128> RandomDigests(std::uint64_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Digest128> digests;
  digests.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    digests.push_back(Digest128::FromWords(rng.Next(), rng.Next()));
  }
  return digests;
}

// --- page hashing -----------------------------------------------------

Result BenchPageHashMaterialized() {
  constexpr std::uint64_t kPages = 2048;
  vm::GuestMemory memory(Bytes{kPages * kPageSize},
                         vm::ContentMode::kMaterialized);
  Xoshiro256 rng(7);
  for (vm::PageId p = 0; p < kPages; ++p) memory.WritePage(p, rng.Next());
  memory.SetDigestCacheEnabled(false);  // honest MD5 per call
  return Measure("page_hash_materialized", kPages, kPageSize, 10, [&] {
    for (vm::PageId p = 0; p < kPages; ++p) {
      volatile std::uint64_t sink = memory.PageDigest(p).words[0];
      (void)sink;
    }
  });
}

Result BenchPageHashSeed() {
  constexpr std::uint64_t kPages = 65536;
  vm::GuestMemory memory(Bytes{kPages * kPageSize},
                         vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(7);
  for (vm::PageId p = 0; p < kPages; ++p) memory.WritePage(p, rng.Next());
  memory.SetDigestCacheEnabled(false);
  return Measure("page_hash_seed", kPages, 0, 10, [&] {
    for (vm::PageId p = 0; p < kPages; ++p) {
      volatile std::uint64_t sink = memory.PageDigest(p).words[0];
      (void)sink;
    }
  });
}

Result BenchPageDigestCached() {
  constexpr std::uint64_t kPages = 65536;
  vm::GuestMemory memory(Bytes{kPages * kPageSize},
                         vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(7);
  for (vm::PageId p = 0; p < kPages; ++p) memory.WritePage(p, rng.Next());
  for (vm::PageId p = 0; p < kPages; ++p) (void)memory.PageDigest(p);
  return Measure("page_digest_cached", kPages, 0, 10, [&] {
    for (vm::PageId p = 0; p < kPages; ++p) {
      volatile std::uint64_t sink = memory.PageDigest(p).words[0];
      (void)sink;
    }
  });
}

// --- digest-set membership --------------------------------------------

Result BenchDigestSetBuild() {
  constexpr std::uint64_t kCount = 65536;
  const auto digests = RandomDigests(kCount, 11);
  return Measure("digest_set_build_64k", kCount, 0, 10, [&] {
    DigestSet set(digests);  // copies the vector, then builds
    volatile std::uint64_t sink = set.Size();
    (void)sink;
  });
}

Result BenchDigestSetProbe(bool hit) {
  constexpr std::uint64_t kCount = 65536;
  const DigestSet set(RandomDigests(kCount, 11));
  const auto probes = hit ? RandomDigests(kCount, 11)   // same stream
                          : RandomDigests(kCount, 13);  // disjoint stream
  return Measure(hit ? "digest_set_probe_hit" : "digest_set_probe_miss",
                 kCount, 0, 10, [&] {
                   std::uint64_t found = 0;
                   for (const auto& d : probes) {
                     found += set.Contains(d) ? 1 : 0;
                   }
                   volatile std::uint64_t sink = found;
                   (void)sink;
                 });
}

Result BenchSortedVectorProbe() {
  // The representation DigestSet replaced, kept as the comparison point.
  constexpr std::uint64_t kCount = 65536;
  auto sorted = RandomDigests(kCount, 11);
  std::sort(sorted.begin(), sorted.end());
  const auto probes = RandomDigests(kCount, 11);
  return Measure("sorted_vector_probe_hit", kCount, 0, 10, [&] {
    std::uint64_t found = 0;
    for (const auto& d : probes) {
      found += std::binary_search(sorted.begin(), sorted.end(), d) ? 1 : 0;
    }
    volatile std::uint64_t sink = found;
    (void)sink;
  });
}

// --- simulator --------------------------------------------------------

Result BenchSimulatorEvents() {
  constexpr std::uint64_t kEvents = 200000;
  return Measure("simulator_events", kEvents, 0, 10, [&] {
    sim::Simulator simulator;
    simulator.Reserve(kEvents);
    Xoshiro256 rng(3);
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      simulator.ScheduleAt(SimTime{std::chrono::nanoseconds(
                               rng.Next() % 1000000000)},
                           [&fired] { ++fired; });
    }
    simulator.Run();
    volatile std::uint64_t sink = fired;
    (void)sink;
  });
}

// --- end-to-end sweep -------------------------------------------------

Result BenchMigrationSweep() {
  constexpr std::uint64_t kMigrations = 6;
  return Measure("migration_sweep", kMigrations, 0, 3, [&] {
    for (const auto strategy :
         {migration::Strategy::kFull, migration::Strategy::kDedup,
          migration::Strategy::kDirtyTracking, migration::Strategy::kHashes,
          migration::Strategy::kDirtyPlusDedup,
          migration::Strategy::kHashesPlusDedup}) {
      vm::UniformRandomWorkload churn(400.0, 0x5eed);
      (void)bench::MeasureReturnMigration(sim::LinkConfig::Lan(), MiB(64),
                                          strategy, &churn, Seconds(30.0));
    }
  });
}

Result BenchFleetSweep() {
  // Scheduler-driven fleet wave: 8 VMs on 3 hosts, per-host caps of 2,
  // all submitted at once so admissions overlap and queue. The world is
  // rebuilt per rep — the measurement covers setup + drain, matching how
  // the examples use the scheduler.
  constexpr std::uint64_t kFleet = 8;
  return Measure("fleet_sweep", kFleet, 0, 3, [&] {
    sim::Simulator simulator;
    core::Cluster cluster(simulator);
    cluster.AddHost({"a", sim::DiskConfig::Ssd(), {}, {}, {}});
    cluster.AddHost({"b", sim::DiskConfig::Ssd(), {}, {}, {}});
    cluster.AddHost({"c", sim::DiskConfig::Ssd(), {}, {}, {}});
    cluster.Connect("a", "b", sim::LinkConfig::Lan());
    cluster.Connect("b", "c", sim::LinkConfig::Lan());
    cluster.Connect("a", "c", sim::LinkConfig::Lan());
    core::SchedulerConfig scheduler_config;
    scheduler_config.max_outgoing_per_host = 2;
    scheduler_config.max_incoming_per_host = 2;
    core::MigrationScheduler scheduler(cluster, scheduler_config);
    const char* hosts[] = {"a", "b", "c"};
    std::vector<std::unique_ptr<core::VmInstance>> fleet;
    for (std::uint64_t i = 0; i < kFleet; ++i) {
      fleet.push_back(std::make_unique<core::VmInstance>(
          "vm-" + std::to_string(i), MiB(16), vm::ContentMode::kSeedOnly));
      Xoshiro256 rng(0xf1ee7 + i);
      vm::MemoryProfile{}.Apply(fleet.back()->Memory(), rng);
      fleet.back()->SetCurrentHost(hosts[i % 3]);
    }
    migration::MigrationConfig config;
    config.strategy = migration::Strategy::kHashesPlusDedup;
    for (std::uint64_t i = 0; i < kFleet; ++i) {
      scheduler.Submit(*fleet[i], hosts[(i + 1) % 3], config);
    }
    volatile std::uint64_t sink = scheduler.Drain();
    (void)sink;
  });
}

void WriteJson(const std::string& path, const std::vector<Result>& results) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"schema\": \"vecycle.bench_perf.v1\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iters\": %llu, "
                 "\"ns_per_op\": %.3f, \"ops_per_sec\": %.3f",
                 r.name.c_str(),
                 static_cast<unsigned long long>(r.iters), r.ns_per_op,
                 1e9 / r.ns_per_op);
    if (r.bytes_per_sec > 0) {
      std::fprintf(out, ", \"bytes_per_sec\": %.1f", r.bytes_per_sec);
    }
    std::fprintf(out, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE.json]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader("bench_perf: hot-path wall-clock benchmarks");

  std::vector<Result> results;
  results.push_back(BenchPageHashMaterialized());
  results.push_back(BenchPageHashSeed());
  results.push_back(BenchPageDigestCached());
  results.push_back(BenchDigestSetBuild());
  results.push_back(BenchDigestSetProbe(/*hit=*/true));
  results.push_back(BenchDigestSetProbe(/*hit=*/false));
  results.push_back(BenchSortedVectorProbe());
  results.push_back(BenchSimulatorEvents());
  SeedDigestMemo::Instance().Clear();  // sweep warms its own memo
  results.push_back(BenchMigrationSweep());
  results.push_back(BenchFleetSweep());

  if (!out_path.empty()) WriteJson(out_path, results);
  return 0;
}
