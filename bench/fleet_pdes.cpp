// Datacenter-scale PDES scaling benchmark: 1000 hosts (25 sites of 40)
// carrying 10,000 VMs, sharded one site per shard, drained through the
// sharded MigrationScheduler at 1 worker and at 8 workers. Each host
// pairs with a neighbour inside its site over a LAN link; host 0 of each
// site also connects to host 0 of the next site over a 5 ms inter-site
// link, which sets the conservative lookahead window and carries the
// cross-shard migrations. Every VM migrates once: to its host's partner
// (intra-shard) or, for VMs on the site gateways, to the next site
// (cross-shard).
//
// The two worker counts must produce the same combined audit
// fingerprint (the PDES determinism contract); this binary enforces that
// with a VEC_CHECK and reports both wall-clock rows for
// tools/bench_compare.py. The interesting outputs are fleet_pdes_w1 /
// fleet_pdes_w8 ns/op and the printed speedup. The speedup is only
// meaningful on a machine with spare cores — on a single-core box the
// eight workers timeshare one CPU and the w8 row measures barrier
// overhead instead, so the printed figure is labelled with the core
// count and nothing asserts on it there.
//
// Usage: fleet_pdes [--out BENCH_fleet_pdes.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "sim/link.hpp"
#include "sim/sharded.hpp"
#include "vm/guest_memory.hpp"

namespace {

using namespace vecycle;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kSites = 25;
constexpr std::uint32_t kHostsPerSite = 40;   // 1000 hosts
constexpr std::uint64_t kVmsPerHost = 10;     // 10,000 VMs
constexpr std::uint64_t kVms =
    static_cast<std::uint64_t>(kSites) * kHostsPerSite * kVmsPerHost;

struct Result {
  std::string name;
  std::uint64_t iters = 0;
  double ns_per_op = 0.0;
};

std::string HostName(std::uint32_t site, std::uint32_t host) {
  return "s" + std::to_string(site) + "-h" + std::to_string(host);
}

/// Builds the fleet from scratch, drains every migration with the given
/// worker-pool size, and returns the combined per-shard audit
/// fingerprint folded with the completion count.
std::uint64_t RunFleet(std::size_t workers) {
  sim::ShardedSimulator pdes(kSites);
  // The cluster needs a nominal simulator for its serial-mode APIs; the
  // sharded scheduler routes every session to its own shard instead.
  core::Cluster cluster(pdes.Shard(0));
  sim::ShardPlan plan;

  const sim::LinkConfig intersite{GigabitsPerSecond(1.0), Milliseconds(5.0),
                                  Bytes{0}};
  for (std::uint32_t site = 0; site < kSites; ++site) {
    for (std::uint32_t host = 0; host < kHostsPerSite; ++host) {
      cluster.AddHost({HostName(site, host), sim::DiskConfig::Ssd(), {}, {}, {}});
      plan.Assign(HostName(site, host), site);
    }
    // Partner hosts pairwise inside the site (h0-h1, h2-h3, ...).
    for (std::uint32_t host = 0; host + 1 < kHostsPerSite; host += 2) {
      cluster.Connect(HostName(site, host), HostName(site, host + 1),
                      sim::LinkConfig::Lan());
    }
  }
  // Inter-site ring through each site's gateway host 0. Its latency is
  // the minimum cross-shard latency, i.e. the lookahead window.
  for (std::uint32_t site = 0; site < kSites; ++site) {
    cluster.Connect(HostName(site, 0), HostName((site + 1) % kSites, 0),
                    intersite);
  }

  core::MigrationScheduler scheduler(cluster, pdes, plan,
                                     [workers] {
                                       core::SchedulerConfig config;
                                       config.workers = workers;
                                       return config;
                                     }());

  std::vector<std::unique_ptr<core::VmInstance>> fleet;
  fleet.reserve(kVms);
  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kFull;

  std::uint64_t vm_index = 0;
  for (std::uint32_t site = 0; site < kSites; ++site) {
    for (std::uint32_t host = 0; host < kHostsPerSite; ++host) {
      for (std::uint64_t v = 0; v < kVmsPerHost; ++v, ++vm_index) {
        fleet.push_back(std::make_unique<core::VmInstance>(
            "vm-" + std::to_string(vm_index), MiB(1),
            vm::ContentMode::kSeedOnly));
        Xoshiro256 rng(0xf1ee7000 + vm_index);
        vm::MemoryProfile{}.Apply(fleet.back()->Memory(), rng);
        fleet.back()->SetCurrentHost(HostName(site, host));
        // Gateway VMs hop to the next site (cross-shard); everyone else
        // moves to the in-site partner host (intra-shard).
        const std::string to =
            host == 0 ? HostName((site + 1) % kSites, 0)
                      : HostName(site, host % 2 == 0 ? host + 1 : host - 1);
        scheduler.Submit(*fleet.back(), to, config);
      }
    }
  }

  const std::uint64_t completed = scheduler.Drain();
  VEC_CHECK_MSG(completed == kVms, "fleet_pdes: not every migration ran");
  return SplitMix64(scheduler.CombinedFingerprint() ^ completed).Next();
}

Result MeasureFleet(const std::string& name, std::size_t workers, int reps,
                    std::uint64_t* fingerprint_out) {
  double best_ns = 1e300;
  std::uint64_t fingerprint = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    const std::uint64_t fp = RunFleet(workers);
    const auto t1 = Clock::now();
    if (r == 0) {
      fingerprint = fp;
    } else {
      VEC_CHECK_MSG(fp == fingerprint,
                    "fleet_pdes: fingerprint diverged between repetitions");
    }
    best_ns = std::min(
        best_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  *fingerprint_out = fingerprint;
  Result result;
  result.name = name;
  result.iters = kVms;
  result.ns_per_op = best_ns / static_cast<double>(kVms);
  std::printf("%-32s %12.1f ns/op  (%.2f s total)\n", name.c_str(),
              result.ns_per_op, best_ns / 1e9);
  return result;
}

void WriteJson(const std::string& path, const std::vector<Result>& results) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"schema\": \"vecycle.bench_perf.v1\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iters\": %llu, "
                 "\"ns_per_op\": %.3f, \"ops_per_sec\": %.3f}%s\n",
                 r.name.c_str(),
                 static_cast<unsigned long long>(r.iters), r.ns_per_op,
                 1e9 / r.ns_per_op, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE.json]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "fleet_pdes: 1000-host / 10k-VM sharded fleet drain (w1 vs w8)");

  std::uint64_t fp_w1 = 0;
  std::uint64_t fp_w8 = 0;
  std::vector<Result> results;
  results.push_back(MeasureFleet("fleet_pdes_w1", 1, 2, &fp_w1));
  results.push_back(MeasureFleet("fleet_pdes_w8", 8, 2, &fp_w8));
  VEC_CHECK_MSG(fp_w1 == fp_w8,
                "fleet_pdes: 1-worker and 8-worker runs diverged — the "
                "worker count leaked into simulation results");

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "\nspeedup w8/w1: %.2fx on %u core%s  (fingerprint %016llx, "
      "identical)\n",
      results[0].ns_per_op / results[1].ns_per_op, cores,
      cores == 1 ? "" : "s", static_cast<unsigned long long>(fp_w1));

  if (!out_path.empty()) WriteJson(out_path, results);
  return 0;
}
