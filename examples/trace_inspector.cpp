// Trace inspector: a small CLI over the synthetic Memory-Buddies-style
// corpus. Synthesize traces to disk, load them back, and run the §2
// analyses on any machine — the workflow a researcher would use to poke
// at the data behind Figures 1/2/4/5.
//
// Usage:
//   trace_inspector list
//   trace_inspector synth  <machine> <out.trace>
//   trace_inspector decay  <machine|path.trace> [max-hours]
//   trace_inspector comp   <machine|path.trace>
//   trace_inspector pair   <machine|path.trace> <index-a> <index-b>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/binning.hpp"
#include "analysis/table.hpp"
#include "analysis/technique.hpp"
#include "common/check.hpp"
#include "obs/report.hpp"
#include "traces/synthesizer.hpp"

namespace {

using namespace vecycle;

fp::Trace LoadTraceArg(const std::string& arg) {
  // A path if it contains a dot or slash; otherwise a registry name.
  if (arg.find('/') != std::string::npos ||
      arg.find(".trace") != std::string::npos) {
    return fp::Trace::LoadFile(arg);
  }
  return traces::SynthesizeTrace(traces::FindMachine(arg));
}

int CmdList() {
  analysis::Table table({"Name", "OS", "RAM", "Class", "Fingerprints"});
  auto add = [&table](const traces::MachineSpec& spec) {
    const auto ideal = static_cast<std::uint64_t>(
        ToSeconds(spec.trace_duration) /
        ToSeconds(spec.fingerprint_interval));
    table.AddRow({spec.name, spec.os, FormatBytes(spec.nominal_ram),
                  ToString(spec.klass), "<= " + std::to_string(ideal + 1)});
  };
  for (const auto& machine : traces::Table1AllMachines()) add(machine);
  for (const auto& machine : traces::CrawlerMachines()) add(machine);
  add(traces::DesktopMachine());
  std::printf("%s", table.Render().c_str());
  return 0;
}

int CmdSynth(const std::string& machine, const std::string& path) {
  const auto trace = traces::SynthesizeTrace(traces::FindMachine(machine));
  trace.SaveFile(path);
  std::printf("wrote %zu fingerprints (%llu pages each) to %s\n",
              trace.Size(),
              static_cast<unsigned long long>(trace.At(0).PageCount()),
              path.c_str());
  return 0;
}

int CmdDecay(const std::string& arg, double max_hours) {
  const auto trace = LoadTraceArg(arg);
  analysis::SimilarityDecayOptions options;
  options.max_delta = Hours(max_hours);
  options.max_pairs_per_bin = 128;
  if (max_hours > 48) options.bin_width = Hours(2);
  const auto decay = analysis::SimilarityDecay(trace, options);

  analysis::Table table({"dt [h]", "min", "avg", "max", "pairs"});
  for (const auto& bin : decay) {
    table.AddRow({analysis::Table::Num(ToSeconds(bin.center) / 3600.0, 1),
                  analysis::Table::Num(bin.min, 3),
                  analysis::Table::Num(bin.mean, 3),
                  analysis::Table::Num(bin.max, 3),
                  std::to_string(bin.pairs)});
  }
  std::printf("%s — %zu fingerprints\n%s", trace.MachineName().c_str(),
              trace.Size(), table.Render().c_str());
  return 0;
}

int CmdComposition(const std::string& arg) {
  const auto trace = LoadTraceArg(arg);
  const auto series = analysis::ComputeComposition(trace);
  double dup = 0.0;
  double zero = 0.0;
  for (const double d : series.duplicate_fraction) dup += d;
  for (const double z : series.zero_fraction) zero += z;
  const auto n = static_cast<double>(series.timestamps.size());
  std::printf("%s: mean duplicate pages %.1f%%, mean zero pages %.1f%%\n",
              trace.MachineName().c_str(), 100.0 * dup / n,
              100.0 * zero / n);
  return 0;
}

int CmdPair(const std::string& arg, std::size_t a, std::size_t b) {
  const auto trace = LoadTraceArg(arg);
  VEC_CHECK_MSG(a < trace.Size() && b < trace.Size(),
                "fingerprint index out of range");
  const auto breakdown = analysis::ComparePair(trace.At(a), trace.At(b));
  const auto delta = trace.At(b).Timestamp() - trace.At(a).Timestamp();

  analysis::Table table({"Technique", "Pages", "Fraction of baseline"});
  const auto row = [&](const char* name, std::uint64_t pages) {
    table.AddRow({name, std::to_string(pages),
                  analysis::Table::Pct(breakdown.Fraction(pages), 1)});
  };
  row("full", breakdown.full);
  row("dedup", breakdown.dedup);
  row("dirty", breakdown.dirty);
  row("dirty+dedup", breakdown.dirty_dedup);
  row("hashes (VeCycle)", breakdown.hashes);
  row("hashes+dedup", breakdown.hashes_dedup);
  std::printf("%s, fingerprints #%zu -> #%zu (dt %s):\n%s",
              trace.MachineName().c_str(), a, b,
              FormatDuration(delta).c_str(), table.Render().c_str());
  std::printf("similarity (|Ua n Ub| / |Ua|): %.3f\n",
              fp::Similarity(trace.At(a), trace.At(b)));
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_inspector list\n"
               "  trace_inspector synth <machine> <out.trace>\n"
               "  trace_inspector decay <machine|path.trace> [max-hours]\n"
               "  trace_inspector comp  <machine|path.trace>\n"
               "  trace_inspector pair  <machine|path.trace> <a> <b>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const vecycle::obs::ScopedReporter reporter("trace_inspector");
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return CmdList();
    if (cmd == "synth" && argc == 4) return CmdSynth(argv[2], argv[3]);
    if (cmd == "decay" && argc >= 3) {
      return CmdDecay(argv[2], argc > 3 ? std::atof(argv[3]) : 24.0);
    }
    if (cmd == "comp" && argc == 3) return CmdComposition(argv[2]);
    if (cmd == "pair" && argc == 5) {
      return CmdPair(argv[2], std::strtoul(argv[3], nullptr, 10),
                     std::strtoul(argv[4], nullptr, 10));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
