// Virtual desktop consolidation (the §4.6 scenario, run live).
//
// A virtual desktop runs on the user's workstation during office hours
// and on a shared consolidation server overnight, so the workstation can
// power off. Every weekday: 9 am server->workstation, 5 pm back. This
// example drives a full week of that schedule through the migration
// engine (not just trace analysis) and prints per-migration costs for a
// checkpoint-less baseline versus VeCycle.
//
// Run:   ./build/examples/vdi_consolidation
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/vm_instance.hpp"
#include "obs/report.hpp"
#include "vm/workload.hpp"

namespace {

using namespace vecycle;

/// Office-hours desktop activity: heavy hotspot writes by day, a trickle
/// at night. The orchestrator advances this workload between migrations.
class OfficeWorkload : public vm::Workload {
 public:
  explicit OfficeWorkload(std::uint64_t seed)
      : busy_({150.0, 0.10, 0.98, seed}), idle_({}) {}

  void SetDaytime(bool daytime) { daytime_ = daytime; }

  void Advance(vm::GuestMemory& memory, SimDuration dt) override {
    if (daytime_) {
      busy_.Advance(memory, dt);
    } else {
      idle_.Advance(memory, dt);
    }
  }

 private:
  vm::HotspotWorkload busy_;
  vm::IdleWorkload idle_;
  bool daytime_ = true;
};

double RunWeek(migration::Strategy strategy, bool print) {
  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  cluster.AddHost({"workstation", sim::DiskConfig::Hdd(), {}, {}});
  cluster.AddHost({"server", sim::DiskConfig::Hdd(), {}, {}});
  cluster.Connect("workstation", "server", sim::LinkConfig::Lan());
  core::MigrationOrchestrator orchestrator(cluster);

  // A modest 2 GiB desktop keeps the example snappy; scale at will.
  core::VmInstance vm("desktop", GiB(2), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(1);
  vm::MemoryProfile profile;
  profile.duplicate_fraction = 0.14;
  profile.Apply(vm.Memory(), rng);
  auto workload = std::make_unique<OfficeWorkload>(99);
  auto* office = workload.get();
  vm.SetWorkload(std::move(workload));
  orchestrator.Deploy(vm, "workstation");

  migration::MigrationConfig config;
  config.strategy = strategy;

  analysis::Table table({"Day", "Direction", "Time", "Traffic", "Reused"});
  double total_tx_gib = 0.0;
  for (int day = 0; day < 5; ++day) {
    // 5 pm: leave the office; desktop consolidates onto the server.
    office->SetDaytime(true);
    orchestrator.RunFor(vm, Hours(8));
    const auto evening = orchestrator.Migrate(vm, "server", config);
    total_tx_gib += ToGiB(evening.tx_bytes);
    table.AddRow({"day " + std::to_string(day + 1), "wks -> srv",
                  FormatDuration(evening.total_time),
                  FormatBytes(evening.tx_bytes),
                  std::to_string(evening.pages_sent_checksum +
                                 evening.pages_skipped_clean)});

    // 9 am next morning: the user arrives; desktop moves back.
    office->SetDaytime(false);
    orchestrator.RunFor(vm, Hours(16));
    const auto morning = orchestrator.Migrate(vm, "workstation", config);
    total_tx_gib += ToGiB(morning.tx_bytes);
    table.AddRow({"day " + std::to_string(day + 2), "srv -> wks",
                  FormatDuration(morning.total_time),
                  FormatBytes(morning.tx_bytes),
                  std::to_string(morning.pages_sent_checksum +
                                 morning.pages_skipped_clean)});
  }
  if (print) std::printf("%s\n", table.Render().c_str());
  return total_tx_gib;
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("vdi_consolidation");
  std::printf("One work week, 10 migrations, 2 GiB virtual desktop.\n\n");

  std::printf("--- Baseline (full pre-copy, no checkpoint reuse) ---\n");
  const double baseline = RunWeek(migration::Strategy::kFull, true);

  std::printf("--- VeCycle (content-based checkpoint recycling) ---\n");
  const double vecycle = RunWeek(migration::Strategy::kHashes, true);

  std::printf(
      "weekly migration traffic: baseline %.1f GiB, VeCycle %.1f GiB "
      "(%.0f%% saved)\n",
      baseline, vecycle, 100.0 * (1.0 - vecycle / baseline));
  return 0;
}
