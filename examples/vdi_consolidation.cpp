// Virtual desktop consolidation at fleet scale (the §4.6 scenario).
//
// Eight virtual desktops run on three workstation pools during office
// hours and consolidate onto one shared server overnight, so the
// workstations can power off. Every weekday at 5 pm all eight desktops
// migrate to the server *at once* — the MigrationScheduler admits them as
// overlapping sessions that contend for the pool uplinks and the server's
// disk, and desktops leaving the same pool form a gang that shares a
// sender-side dedup cache (the desktops are clones of one golden image,
// so most of that content crosses each uplink once). At 9 am they all fan
// back out. A full week of that schedule runs for a checkpoint-less
// baseline versus VeCycle with gang dedup.
//
// The VeCycle run routes both waves through the placement policy layer:
// MigrateAuto consults a CheckpointAffinityPolicy, which sends each
// desktop back to the pool holding its freshest checkpoint every morning
// (and scores the forced evening hop to the server, warm from day two
// on). A third, quiet run keeps the same transfer strategy but replaces
// the morning placement with a checkpoint-blind rebalance that rotates
// desktops across the pools — the kind of "spread the load" schedule a
// VDI broker applies when it ignores checkpoint state. The example
// asserts affinity placement beats that rebalance on weekly wire bytes.
//
// Run:   ./build/examples/vdi_consolidation
// Env:   VECYCLE_AUDIT=1 runs every session under the audit layer.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "policy/policies.hpp"
#include "policy/runner.hpp"
#include "vm/workload.hpp"

namespace {

using namespace vecycle;

constexpr int kDesktops = 8;
const char* const kPools[] = {"pool-a", "pool-b", "pool-c"};
constexpr int kPoolCount = 3;

/// Office-hours desktop activity: heavy hotspot writes by day, a trickle
/// at night. The orchestrator advances this workload between migrations.
class OfficeWorkload : public vm::Workload {
 public:
  explicit OfficeWorkload(std::uint64_t seed)
      : busy_({150.0, 0.10, 0.98, seed}), idle_({}) {}

  void SetDaytime(bool daytime) { daytime_ = daytime; }

  void Advance(vm::GuestMemory& memory, SimDuration dt) override {
    if (daytime_) {
      busy_.Advance(memory, dt);
    } else {
      idle_.Advance(memory, dt);
    }
  }

 private:
  vm::HotspotWorkload busy_;
  vm::IdleWorkload idle_;
  bool daytime_ = true;
};

/// A desktop cloned from the golden VDI image: two thirds of its pages
/// come from a pool every clone shares, the rest are the user's own.
std::unique_ptr<core::VmInstance> MakeDesktop(int index) {
  auto vm = std::make_unique<core::VmInstance>(
      "desktop-" + std::to_string(index), MiB(256),
      vm::ContentMode::kSeedOnly);
  Xoshiro256 image_rng(7);  // the same golden image for every clone
  Xoshiro256 user_rng(100 + static_cast<std::uint64_t>(index));
  for (vm::PageId page = 0; page < vm->Memory().PageCount(); ++page) {
    if (page % 3 != 0) {
      vm->Memory().WritePage(page,
                             5'000'000 + image_rng.NextBelow(200'000));
    } else {
      vm->Memory().WritePage(page, user_rng.Next() | (1ull << 62));
    }
  }
  return vm;
}

/// How the morning fan-out picks each desktop's pool.
enum class Placement {
  kHomes,      // the fixed home pool a desktop was deployed on
  kRebalance,  // checkpoint-blind rotation across the pools, one step/day
  kAffinity,   // MigrateAuto + CheckpointAffinityPolicy picks the pool
};

struct WaveResult {
  Bytes traffic;
  SimDuration slowest = SimDuration::zero();
  std::uint64_t reused_pages = 0;
  int warm = 0;
};

WaveResult CollectWave(core::MigrationOrchestrator& orchestrator,
                       std::size_t first) {
  orchestrator.Drain();
  WaveResult result;
  const auto& completions = orchestrator.Scheduler().Completions();
  for (std::size_t i = first; i < completions.size(); ++i) {
    const auto& stats = completions[i].stats;
    result.traffic += stats.tx_bytes;
    result.slowest = std::max(result.slowest, stats.total_time);
    result.reused_pages += stats.pages_sent_checksum +
                           stats.pages_skipped_clean +
                           stats.pages_dup_ref;
  }
  return result;
}

/// Migrates the whole fleet to per-VM destinations in one scheduler
/// drain and aggregates the wave's cost.
WaveResult MigrateWave(core::MigrationOrchestrator& orchestrator,
                       const std::vector<core::VmInstance*>& fleet,
                       const std::vector<std::string>& destinations,
                       const migration::MigrationConfig& config) {
  const std::size_t first =
      orchestrator.Scheduler().Completions().size();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    orchestrator.MigrateAsync(*fleet[i], destinations[i], config);
  }
  return CollectWave(orchestrator, first);
}

/// The policy-driven variant: every leg's destination comes out of the
/// placement policy, queried against the shared candidate list.
WaveResult MigrateWaveAuto(core::MigrationOrchestrator& orchestrator,
                           const std::vector<core::VmInstance*>& fleet,
                           policy::PlacementPolicy& policy,
                           const std::vector<core::HostId>& candidates,
                           const migration::MigrationConfig& config) {
  const std::size_t first =
      orchestrator.Scheduler().Completions().size();
  int warm = 0;
  for (auto* vm : fleet) {
    const policy::Decision decision =
        orchestrator.MigrateAuto(*vm, policy, config, candidates, &fleet);
    warm += decision.warm ? 1 : 0;
  }
  WaveResult result = CollectWave(orchestrator, first);
  result.warm = warm;
  return result;
}

/// Per-host store metrics, written only when tracing is on (the
/// bench-smoke CI job validates them; plain runs emit no files). One
/// "store" record per host, the counters mirroring CheckpointStore's.
void EmitStoreMetrics(const core::Cluster& cluster) {
  for (const auto* host : cluster.Hosts()) {
    const auto& store = host->Store();
    auto& record =
        obs::GlobalMetrics().NewRecord("store/" + host->Id(), "store");
    record.Counter("checkpoints_held", store.Size());
    record.Counter("footprint_bytes", store.FootprintOnDisk().count);
    record.Counter("evictions", store.Evictions());
    record.Counter("chunks_written", store.ChunksWritten());
    record.Counter("chunks_deduped", store.ChunksDeduped());
    record.Counter("chunks_gc_freed", store.GcFreedChunks());
    record.Counter("chunks_resident", store.ResidentChunks());
    record.Counter("chunk_refs", store.TotalChunkRefs());
    record.Counter("ssd_hits", store.SsdHits());
    record.Counter("ssd_misses", store.SsdMisses());
    record.Counter("ssd_promotions", store.SsdPromotions());
    const double pins = static_cast<double>(store.ChunksWritten() +
                                            store.ChunksDeduped());
    const double lookups =
        static_cast<double>(store.SsdHits() + store.SsdMisses());
    record.Gauge("dedup_ratio",
                 pins > 0.0 ? static_cast<double>(store.ChunksDeduped()) /
                                  pins
                            : 0.0);
    record.Gauge("ssd_hit_rate",
                 lookups > 0.0 ? static_cast<double>(store.SsdHits()) /
                                     lookups
                               : 0.0);
    record.Gauge("footprint_mib",
                 static_cast<double>(store.FootprintOnDisk().count) /
                     (1 << 20));
  }
}

double RunWeek(migration::Strategy strategy, bool print, bool chunked,
               Placement placement) {
  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  for (const char* pool : kPools) {
    core::HostConfig host{pool, sim::DiskConfig::Hdd(), {}, {}, {}};
    if (chunked) {
      // Page-granular dedup (golden and user pages interleave, so larger
      // chunks would straddle both) with an SSD cache over the pool HDD.
      // The quota arms the watermark GC: each re-save supersedes chunks,
      // and the sweep reclaims them once the footprint crosses the high
      // watermark — without it superseded chunks pile up all week.
      host.store.chunking = true;
      host.store.chunk_pages = 1;
      host.store.tier.ssd_capacity = MiB(128);
      host.retention.disk_quota = MiB(1024);
    }
    cluster.AddHost(host);
  }
  core::HostConfig server{"server", sim::DiskConfig::Ssd(), {}, {}, {}};
  if (chunked) {
    // The server disk is already an SSD; chunk dedup without a tier.
    server.store.chunking = true;
    server.store.chunk_pages = 1;
    server.retention.disk_quota = MiB(2560);
  }
  cluster.AddHost(server);
  for (const char* pool : kPools) {
    cluster.Connect(pool, "server", sim::LinkConfig::Lan());
  }

  // Evening and morning waves move all eight desktops at once: leave the
  // per-host caps open so every session overlaps.
  core::SchedulerConfig scheduler_config;
  scheduler_config.max_outgoing_per_host = 0;
  scheduler_config.max_incoming_per_host = 0;
  core::MigrationOrchestrator orchestrator(cluster, scheduler_config);

  std::vector<std::unique_ptr<core::VmInstance>> desktops;
  std::vector<core::VmInstance*> fleet;
  std::vector<OfficeWorkload*> offices;
  std::vector<std::string> homes;
  for (int i = 0; i < kDesktops; ++i) {
    desktops.push_back(MakeDesktop(i));
    auto workload =
        std::make_unique<OfficeWorkload>(99 + static_cast<std::uint64_t>(i));
    offices.push_back(workload.get());
    desktops.back()->SetWorkload(std::move(workload));
    homes.emplace_back(kPools[i % kPoolCount]);
    orchestrator.Deploy(*desktops.back(), homes.back());
    fleet.push_back(desktops.back().get());
  }
  const std::vector<std::string> server_wave(kDesktops, "server");
  const std::vector<core::HostId> server_only = {"server"};
  std::vector<core::HostId> all_pools(kPools, kPools + kPoolCount);

  migration::MigrationConfig config;
  config.strategy = strategy;
  policy::CheckpointAffinityPolicy policy;

  analysis::Table table(
      {"Day", "Direction", "Traffic", "Slowest", "Reused pages"});
  double total_tx_gib = 0.0;
  int warm_legs = 0;
  for (int day = 0; day < 5; ++day) {
    // 5 pm: the office empties; all desktops consolidate onto the server.
    for (auto* office : offices) office->SetDaytime(true);
    orchestrator.RunFor(fleet, Hours(8));
    const auto evening =
        placement == Placement::kAffinity
            ? MigrateWaveAuto(orchestrator, fleet, policy, server_only,
                              config)
            : MigrateWave(orchestrator, fleet, server_wave, config);
    total_tx_gib += ToGiB(evening.traffic);
    warm_legs += evening.warm;
    table.AddRow({"day " + std::to_string(day + 1), "pools -> srv",
                  FormatBytes(evening.traffic),
                  FormatDuration(evening.slowest),
                  std::to_string(evening.reused_pages)});

    // 9 am next morning: everyone is back; desktops fan out again.
    for (auto* office : offices) office->SetDaytime(false);
    orchestrator.RunFor(fleet, Hours(16));
    WaveResult morning;
    if (placement == Placement::kAffinity) {
      morning =
          MigrateWaveAuto(orchestrator, fleet, policy, all_pools, config);
    } else if (placement == Placement::kRebalance) {
      // A broker that ignores checkpoints and rotates desktops across
      // the pools to even out the load — two of three mornings land a
      // desktop on a pool holding somebody else's checkpoint.
      std::vector<std::string> rotated;
      for (int i = 0; i < kDesktops; ++i) {
        rotated.emplace_back(kPools[(i + day) % kPoolCount]);
      }
      morning = MigrateWave(orchestrator, fleet, rotated, config);
    } else {
      morning = MigrateWave(orchestrator, fleet, homes, config);
    }
    total_tx_gib += ToGiB(morning.traffic);
    warm_legs += morning.warm;
    table.AddRow({"day " + std::to_string(day + 2), "srv -> pools",
                  FormatBytes(morning.traffic),
                  FormatDuration(morning.slowest),
                  std::to_string(morning.reused_pages)});
  }
  if (print) {
    std::printf("%s\n", table.Render().c_str());
    if (placement == Placement::kAffinity) {
      std::printf("  policy placed %d of %d legs on a warm host\n",
                  warm_legs, 10 * kDesktops);
    }
    // Where the checkpoints ended up, via the cluster's const iteration.
    for (const auto* host : cluster.Hosts()) {
      const auto& store = host->Store();
      std::printf("  %-8s holds %zu checkpoint(s), %s on disk",
                  host->Id().c_str(), store.Size(),
                  FormatBytes(store.FootprintOnDisk()).c_str());
      if (chunked) {
        const auto pins = store.ChunksWritten() + store.ChunksDeduped();
        const auto lookups = store.SsdHits() + store.SsdMisses();
        std::printf(" | %.0f%% chunks deduped, %llu GC-freed",
                    pins > 0 ? 100.0 * static_cast<double>(
                                           store.ChunksDeduped()) /
                                   static_cast<double>(pins)
                             : 0.0,
                    static_cast<unsigned long long>(store.GcFreedChunks()));
        if (lookups > 0) {
          std::printf(", %.0f%% SSD hits",
                      100.0 * static_cast<double>(store.SsdHits()) /
                          static_cast<double>(lookups));
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  if (chunked && obs::EnvEnabled()) EmitStoreMetrics(cluster);
  if (placement == Placement::kAffinity) {
    policy::EmitPolicyMetrics("policy/vdi_week", policy);
  }
  return total_tx_gib;
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("vdi_consolidation");
  std::printf(
      "One work week, %d virtual desktops on %d workstation pools + 1 "
      "server,\n%d overlapping migrations per wave, 10 waves.\n\n",
      kDesktops, kPoolCount, kDesktops);

  std::printf("--- Baseline (full pre-copy, no checkpoint reuse) ---\n");
  const double baseline = RunWeek(migration::Strategy::kFull, true,
                                  /*chunked=*/false, Placement::kHomes);

  std::printf("--- VeCycle + gang dedup (checkpoints recycled, clones\n");
  std::printf("    leaving one pool share a sender-side cache, hosts on\n");
  std::printf("    the chunked content-addressed store, mornings placed\n");
  std::printf("    by checkpoint affinity) ---\n");
  const double vecycle =
      RunWeek(migration::Strategy::kHashesPlusDedup, true,
              /*chunked=*/true, Placement::kAffinity);

  // Same transfer strategy, checkpoint-blind placement: isolates what
  // the affinity policy alone is worth.
  const double rebalance =
      RunWeek(migration::Strategy::kHashesPlusDedup, false,
              /*chunked=*/true, Placement::kRebalance);

  std::printf(
      "weekly migration traffic: baseline %.1f GiB, VeCycle %.1f GiB "
      "(%.0f%% saved)\n"
      "same strategy under a checkpoint-blind rebalance: %.1f GiB\n",
      baseline, vecycle, 100.0 * (1.0 - vecycle / baseline), rebalance);
  VEC_CHECK_MSG(vecycle < rebalance,
                "affinity placement must beat the checkpoint-blind "
                "rebalance on wire bytes");
  return 0;
}
