// Follow-the-sun computing over WAN links (§2.4 names this use case).
//
// Four service VMs follow business hours around the globe: Frankfurt ->
// New York -> Tokyo -> Frankfurt, one hop every 8 hours, over emulated
// wide-area links. Each region is a two-host pool, and *which* host a
// service lands on is chosen by the placement policy layer: the
// orchestrator's MigrateAuto consults a CheckpointAffinityPolicy that
// scores every candidate by the content overlap between the service's
// live memory and the checkpoint the host already holds. Because every
// VM revisits the same three regions daily, affinity sends each service
// back to the host it warmed 24 hours earlier and WAN migrations shrink
// from gigabytes to megabytes.
//
// The baseline it must beat is the classic checkpoint-blind alternative:
// a hardcoded rebalance schedule that alternates services across each
// region's host pair on every visit. That placement looks harmless —
// the load is perfectly even — but it lands almost every migration on
// the host holding the *other* services' checkpoints, and the run pays
// near-full WAN cost every hop. The example asserts the affinity tour
// moves fewer wire bytes than the hardcoded one.
//
// The scheduler flavor of the original example is kept: the per-host
// outgoing cap of 2 admits two WAN transfers at a time and the tier-0
// service is submitted at higher priority so it always crosses first.
//
// Run:   ./build/examples/follow_the_sun
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "obs/report.hpp"
#include "policy/policies.hpp"
#include "policy/runner.hpp"
#include "vm/workload.hpp"

namespace {

using namespace vecycle;

constexpr int kServices = 4;
constexpr int kHostsPerRegion = 2;
const std::vector<std::string> kRegions = {"frankfurt", "new-york",
                                           "tokyo"};

std::vector<core::HostId> RegionHosts(const std::string& region) {
  std::vector<core::HostId> hosts;
  for (int h = 1; h <= kHostsPerRegion; ++h) {
    hosts.push_back(region + "-" + std::to_string(h));
  }
  return hosts;
}

struct TourResult {
  Bytes traffic;
  int warm_legs = 0;
};

/// One three-day world tour, built from scratch. With `use_policy` the
/// destination host inside each region is chosen by checkpoint
/// affinity; otherwise a hardcoded alternating rebalance assigns it.
TourResult RunTour(bool use_policy, bool print) {
  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  for (const auto& region : kRegions) {
    for (const auto& host : RegionHosts(region)) {
      cluster.AddHost({host, sim::DiskConfig::Ssd(), {}, {}, {}});
    }
  }
  // Intercontinental links along the ring, every host pair across each
  // adjacent region boundary: CloudNet-like WAN characteristics.
  for (std::size_t r = 0; r < kRegions.size(); ++r) {
    const auto from = RegionHosts(kRegions[r]);
    const auto to = RegionHosts(kRegions[(r + 1) % kRegions.size()]);
    for (const auto& a : from) {
      for (const auto& b : to) {
        cluster.Connect(a, b, sim::LinkConfig::Wan());
      }
    }
  }

  // At most two concurrent WAN transfers per host; service-0 is tier-0
  // and gets admitted ahead of the rest at every hop.
  core::SchedulerConfig scheduler_config;
  scheduler_config.max_outgoing_per_host = 2;
  core::MigrationOrchestrator orchestrator(cluster, scheduler_config);

  std::vector<std::unique_ptr<core::VmInstance>> services;
  std::vector<core::VmInstance*> fleet;
  for (int i = 0; i < kServices; ++i) {
    services.push_back(std::make_unique<core::VmInstance>(
        "service-" + std::to_string(i), MiB(256),
        vm::ContentMode::kSeedOnly));
    Xoshiro256 rng(2026 + static_cast<std::uint64_t>(i));
    vm::MemoryProfile{}.Apply(services.back()->Memory(), rng);
    // Services with bounded working sets: busy while "their" region has
    // daytime, which is always (they follow the sun), so steady hotspot
    // writers.
    services.back()->SetWorkload(std::make_unique<vm::HotspotWorkload>(
        vm::HotspotWorkload::Config{30.0, 0.04, 0.97,
                                    5 + static_cast<std::uint64_t>(i)}));
    orchestrator.Deploy(*services.back(),
                        RegionHosts("frankfurt")[i % kHostsPerRegion]);
    fleet.push_back(services.back().get());
  }

  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;

  policy::CheckpointAffinityPolicy policy;
  const std::vector<std::string> route = {"new-york", "tokyo",
                                          "frankfurt"};
  analysis::Table table({"Hop", "Region", "Slowest", "Traffic", "Warm",
                         "Tier-0 first"});
  TourResult result;
  int hop = 0;
  for (int day = 0; day < 3; ++day) {
    for (const auto& region : route) {
      orchestrator.RunFor(fleet, Hours(8));
      const auto candidates = RegionHosts(region);
      const std::size_t first_completion =
          orchestrator.Scheduler().Completions().size();
      int warm = 0;
      for (int i = 0; i < kServices; ++i) {
        if (use_policy) {
          const policy::Decision decision = orchestrator.MigrateAuto(
              *fleet[i], policy, config, candidates, &fleet,
              /*priority=*/i == 0 ? 10 : 0);
          warm += decision.warm ? 1 : 0;
        } else {
          // The checkpoint-blind baseline: alternate every service
          // across the region's host pair on each visit.
          orchestrator.MigrateAsync(*fleet[i],
                                    candidates[(i + hop) % kHostsPerRegion],
                                    config,
                                    /*priority=*/i == 0 ? 10 : 0);
        }
      }
      orchestrator.Drain();
      const auto& completions = orchestrator.Scheduler().Completions();
      Bytes traffic;
      SimDuration slowest = SimDuration::zero();
      for (std::size_t i = first_completion; i < completions.size(); ++i) {
        traffic += completions[i].stats.tx_bytes;
        slowest = std::max(slowest, completions[i].stats.total_time);
      }
      result.traffic += traffic;
      result.warm_legs += warm;
      const bool tier0_first =
          completions[first_completion].vm == fleet[0];
      if (print) {
        table.AddRow({std::to_string(hop + 1), region,
                      FormatDuration(slowest), FormatBytes(traffic),
                      std::to_string(warm) + "/" +
                          std::to_string(kServices),
                      tier0_first ? "yes" : "no"});
      }
      ++hop;
    }
  }
  if (print) std::printf("%s\n", table.Render().c_str());
  if (use_policy) {
    policy::EmitPolicyMetrics("policy/follow_the_sun", policy);
  }
  return result;
}

}  // namespace

int main() {
  const vecycle::obs::ScopedReporter reporter("follow_the_sun");
  std::printf(
      "Three-day world tour, %d services, %zu regions x %d hosts.\n\n"
      "--- Checkpoint-affinity placement (MigrateAuto) ---\n",
      kServices, kRegions.size(), kHostsPerRegion);
  const TourResult affinity = RunTour(/*use_policy=*/true, /*print=*/true);

  const TourResult hardcoded =
      RunTour(/*use_policy=*/false, /*print=*/false);
  std::printf(
      "Day 1 hops pay full WAN cost (no checkpoints exist); from day 2 on\n"
      "affinity returns every service to the host it warmed 24 hours\n"
      "earlier and traffic collapses to the working-set deltas.\n\n"
      "tour WAN traffic: affinity %s (%d warm legs), hardcoded "
      "rebalance %s (%d warm legs)\n",
      FormatBytes(affinity.traffic).c_str(), affinity.warm_legs,
      FormatBytes(hardcoded.traffic).c_str(), hardcoded.warm_legs);
  VEC_CHECK_MSG(affinity.traffic.count < hardcoded.traffic.count,
                "checkpoint-affinity placement must beat the hardcoded "
                "rebalance on wire bytes");
  return 0;
}
