// Follow-the-sun computing over WAN links (§2.4 names this use case).
//
// A service VM follows business hours around the globe: Frankfurt ->
// New York -> Tokyo -> Frankfurt, one hop every 8 hours, over emulated
// wide-area links. Because the VM revisits the same three sites daily,
// every site quickly holds a recent checkpoint and WAN migrations shrink
// from gigabytes to megabytes. Demonstrates the §3.2 bulk hash exchange
// too: the first revisit of a site after a multi-hop loop is a non-ping-
// pong pattern — yet the VM's own incoming-migration tracking makes even
// that a fast path.
//
// Run:   ./build/examples/follow_the_sun
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/vm_instance.hpp"
#include "obs/report.hpp"
#include "vm/workload.hpp"

int main() {
  const vecycle::obs::ScopedReporter reporter("follow_the_sun");
  using namespace vecycle;

  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  cluster.AddHost({"frankfurt", sim::DiskConfig::Ssd(), {}, {}});
  cluster.AddHost({"new-york", sim::DiskConfig::Ssd(), {}, {}});
  cluster.AddHost({"tokyo", sim::DiskConfig::Ssd(), {}, {}});
  // Intercontinental links: CloudNet-like WAN characteristics.
  cluster.Connect("frankfurt", "new-york", sim::LinkConfig::Wan());
  cluster.Connect("new-york", "tokyo", sim::LinkConfig::Wan());
  cluster.Connect("tokyo", "frankfurt", sim::LinkConfig::Wan());
  core::MigrationOrchestrator orchestrator(cluster);

  core::VmInstance vm("service", GiB(2), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(2026);
  vm::MemoryProfile{}.Apply(vm.Memory(), rng);
  // A service with a bounded working set: busy while "its" region has
  // daytime, which is always (the service follows the sun), so a steady
  // hotspot writer.
  vm.SetWorkload(std::make_unique<vm::HotspotWorkload>(
      vm::HotspotWorkload::Config{120.0, 0.04, 0.97, 5}));
  orchestrator.Deploy(vm, "frankfurt");

  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;

  const std::vector<std::string> route = {"new-york", "tokyo", "frankfurt"};
  analysis::Table table({"Hop", "To", "Time", "Traffic", "Ckpt at dest",
                         "Bulk exchange"});
  int hop = 0;
  for (int day = 0; day < 3; ++day) {
    for (const auto& site : route) {
      orchestrator.RunFor(vm, Hours(8));
      const bool had_checkpoint =
          cluster.GetHost(site).Store().Has(vm.Id());
      const auto stats = orchestrator.Migrate(vm, site, config);
      table.AddRow({std::to_string(++hop), site,
                    FormatDuration(stats.total_time),
                    FormatBytes(stats.tx_bytes),
                    had_checkpoint ? "yes" : "no",
                    FormatBytes(stats.bulk_exchange_bytes)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Day 1 hops pay full WAN cost (no checkpoints exist); from day 2 on\n"
      "every site holds a 24-hour-old checkpoint and traffic collapses to\n"
      "the working-set delta. The VM's incoming-page tracking keeps even\n"
      "multi-site loops on the no-bulk-exchange fast path.\n");
  return 0;
}
