// Follow-the-sun computing over WAN links (§2.4 names this use case).
//
// Four service VMs follow business hours around the globe: Frankfurt ->
// New York -> Tokyo -> Frankfurt, one hop every 8 hours, over emulated
// wide-area links. The whole fleet hops at once through the
// MigrationScheduler: the per-host outgoing cap of 2 admits two WAN
// transfers at a time, and the tier-0 service is submitted at higher
// priority so it always crosses first. Because every VM revisits the
// same three sites daily, each site quickly holds recent checkpoints and
// WAN migrations shrink from gigabytes to megabytes. Demonstrates the
// §3.2 bulk hash exchange too: the first revisit of a site after a
// multi-hop loop is a non-ping-pong pattern — yet each VM's own
// incoming-migration tracking makes even that a fast path.
//
// Run:   ./build/examples/follow_the_sun
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "obs/report.hpp"
#include "vm/workload.hpp"

int main() {
  const vecycle::obs::ScopedReporter reporter("follow_the_sun");
  using namespace vecycle;

  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  cluster.AddHost({"frankfurt", sim::DiskConfig::Ssd(), {}, {}, {}});
  cluster.AddHost({"new-york", sim::DiskConfig::Ssd(), {}, {}, {}});
  cluster.AddHost({"tokyo", sim::DiskConfig::Ssd(), {}, {}, {}});
  // Intercontinental links: CloudNet-like WAN characteristics.
  cluster.Connect("frankfurt", "new-york", sim::LinkConfig::Wan());
  cluster.Connect("new-york", "tokyo", sim::LinkConfig::Wan());
  cluster.Connect("tokyo", "frankfurt", sim::LinkConfig::Wan());

  // At most two concurrent WAN transfers per site; service-0 is tier-0
  // and gets admitted ahead of the rest at every hop.
  core::SchedulerConfig scheduler_config;
  scheduler_config.max_outgoing_per_host = 2;
  core::MigrationOrchestrator orchestrator(cluster, scheduler_config);

  constexpr int kServices = 4;
  std::vector<std::unique_ptr<core::VmInstance>> services;
  std::vector<core::VmInstance*> fleet;
  for (int i = 0; i < kServices; ++i) {
    services.push_back(std::make_unique<core::VmInstance>(
        "service-" + std::to_string(i), MiB(512),
        vm::ContentMode::kSeedOnly));
    Xoshiro256 rng(2026 + static_cast<std::uint64_t>(i));
    vm::MemoryProfile{}.Apply(services.back()->Memory(), rng);
    // Services with bounded working sets: busy while "their" region has
    // daytime, which is always (they follow the sun), so steady hotspot
    // writers (rate scaled to the 512 MiB RAM size).
    services.back()->SetWorkload(std::make_unique<vm::HotspotWorkload>(
        vm::HotspotWorkload::Config{30.0, 0.04, 0.97,
                                    5 + static_cast<std::uint64_t>(i)}));
    orchestrator.Deploy(*services.back(), "frankfurt");
    fleet.push_back(services.back().get());
  }

  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;

  const std::vector<std::string> route = {"new-york", "tokyo", "frankfurt"};
  analysis::Table table({"Hop", "To", "Slowest", "Traffic", "Ckpt at dest",
                         "Bulk exchange", "Tier-0 first"});
  int hop = 0;
  std::string site_before = "frankfurt";
  for (int day = 0; day < 3; ++day) {
    for (const auto& site : route) {
      // The route must ride an actual provisioned link.
      VEC_CHECK_MSG(cluster.LinkBetween(site_before, site) != nullptr,
                    "follow-the-sun route visits unconnected sites");
      orchestrator.RunFor(fleet, Hours(8));
      int checkpoints_at_dest = 0;
      for (const auto* vm : fleet) {
        checkpoints_at_dest +=
            cluster.GetHost(site).Store().Has(vm->Id()) ? 1 : 0;
      }
      const std::size_t first_completion =
          orchestrator.Scheduler().Completions().size();
      for (int i = 0; i < kServices; ++i) {
        orchestrator.MigrateAsync(*fleet[i], site, config,
                                  /*priority=*/i == 0 ? 10 : 0);
      }
      orchestrator.Drain();
      const auto& completions = orchestrator.Scheduler().Completions();
      Bytes traffic;
      Bytes bulk_exchange;
      SimDuration slowest = SimDuration::zero();
      for (std::size_t i = first_completion; i < completions.size(); ++i) {
        traffic += completions[i].stats.tx_bytes;
        bulk_exchange += completions[i].stats.bulk_exchange_bytes;
        slowest = std::max(slowest, completions[i].stats.total_time);
      }
      const bool tier0_first =
          completions[first_completion].vm == fleet[0];
      table.AddRow({std::to_string(++hop), site, FormatDuration(slowest),
                    FormatBytes(traffic),
                    std::to_string(checkpoints_at_dest) + "/" +
                        std::to_string(kServices),
                    FormatBytes(bulk_exchange), tier0_first ? "yes" : "no"});
      site_before = site;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Day 1 hops pay full WAN cost (no checkpoints exist); from day 2 on\n"
      "every site holds 24-hour-old checkpoints and traffic collapses to\n"
      "the working-set deltas. The per-site outgoing cap keeps two WAN\n"
      "transfers in flight and the tier-0 service always crosses first.\n");
  return 0;
}
