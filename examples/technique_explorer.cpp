// Technique explorer: run the same migration under every strategy the
// literature offers (Fig. 3's taxonomy) and compare what each one puts on
// the wire. A compact, runnable version of the paper's §4.2/§4.3
// discussion — useful for building intuition about when dirty tracking,
// dedup, or content hashing wins.
//
// Usage:   ./build/examples/technique_explorer [dwell-minutes]
// (default 60 — how long the VM runs between the outbound and the
// measured return migration).
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/vm_instance.hpp"
#include "obs/report.hpp"
#include "vm/workload.hpp"

namespace {

using namespace vecycle;

migration::MigrationStats Measure(migration::Strategy strategy,
                                  double dwell_minutes) {
  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  cluster.AddHost({"A", sim::DiskConfig::Ssd(), {}, {}, {}});
  cluster.AddHost({"B", sim::DiskConfig::Ssd(), {}, {}, {}});
  cluster.Connect("A", "B", sim::LinkConfig::Lan());
  core::MigrationOrchestrator orchestrator(cluster);

  core::VmInstance vm("vm", GiB(1), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(7);
  vm::MemoryProfile{}.Apply(vm.Memory(), rng);

  // A composite guest: hotspot churn plus a remap trickle — the mix that
  // separates the techniques (remapped pages defeat dirty tracking but
  // not content hashing; duplicated writes favor dedup).
  auto composite = std::make_unique<vm::CompositeWorkload>();
  composite->Add(std::make_unique<vm::HotspotWorkload>(
      vm::HotspotWorkload::Config{300.0, 0.1, 0.85, 11}));
  composite->Add(std::make_unique<vm::PageRemapWorkload>(10.0, 13));
  vm.SetWorkload(std::move(composite));

  orchestrator.Deploy(vm, "A");
  migration::MigrationConfig config;
  config.strategy = strategy;
  orchestrator.Migrate(vm, "B", config);
  orchestrator.RunFor(vm, Minutes(dwell_minutes));
  return orchestrator.Migrate(vm, "A", config);
}

}  // namespace

int main(int argc, char** argv) {
  const vecycle::obs::ScopedReporter reporter("technique_explorer");
  const double dwell = argc > 1 ? std::atof(argv[1]) : 60.0;
  std::printf(
      "1 GiB VM, hotspot+remap guest, %g minutes between outbound and "
      "return migration.\n\n",
      dwell);

  analysis::Table table({"Strategy", "Time", "Traffic", "Full pages",
                         "Checksums", "Dup refs", "Clean skips"});
  for (const auto strategy :
       {migration::Strategy::kFull, migration::Strategy::kDedup,
        migration::Strategy::kDirtyTracking,
        migration::Strategy::kDirtyPlusDedup, migration::Strategy::kHashes,
        migration::Strategy::kHashesPlusDedup}) {
    const auto stats = Measure(strategy, dwell);
    table.AddRow({ToString(strategy), FormatDuration(stats.total_time),
                  FormatBytes(stats.tx_bytes),
                  std::to_string(stats.pages_sent_full),
                  std::to_string(stats.pages_sent_checksum),
                  std::to_string(stats.pages_dup_ref),
                  std::to_string(stats.pages_skipped_clean)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Expected traffic ordering (Fig. 3/5): full > dedup > dirty >\n"
      "dirty+dedup > hashes ~ hashes+dedup. Remapped pages travel as\n"
      "checksum records for 'hashes' but as full pages for 'dirty' — the\n"
      "destination satisfies each moved page with a random read from the\n"
      "local checkpoint (Listing 1), which is why these hosts use SSDs:\n"
      "on a spinning disk, heavy remapping makes those lookups the\n"
      "bottleneck (see bench_ablation_disk).\n");
  return 0;
}
