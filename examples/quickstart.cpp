// Quickstart: the smallest complete VeCycle program.
//
// Builds a two-host cluster, deploys a 1 GiB VM with a light workload,
// migrates it away and back, and prints how much cheaper the return trip
// is thanks to the checkpoint recycled at the original host.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/vm_instance.hpp"
#include "obs/report.hpp"
#include "vm/workload.hpp"

int main() {
  const vecycle::obs::ScopedReporter reporter("quickstart");
  using namespace vecycle;

  // 1. A cluster: two hosts joined by gigabit Ethernet, each with a local
  //    spinning disk for checkpoints and one core of MD5 at 350 MiB/s.
  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  cluster.AddHost({"alpha", sim::DiskConfig::Hdd(), {}, {}, {}});
  cluster.AddHost({"beta", sim::DiskConfig::Hdd(), {}, {}, {}});
  cluster.Connect("alpha", "beta", sim::LinkConfig::Lan());
  core::MigrationOrchestrator orchestrator(cluster);

  // 2. A 1 GiB VM with realistic memory composition (some zero pages, a
  //    duplicate pool, unique content elsewhere) and a light workload.
  core::VmInstance vm("demo-vm", GiB(1), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(42);
  vm::MemoryProfile{}.Apply(vm.Memory(), rng);
  vm.SetWorkload(std::make_unique<vm::HotspotWorkload>(
      vm::HotspotWorkload::Config{/*rate*/ 50.0, /*hot*/ 0.05, /*p*/ 0.9,
                                  /*seed*/ 7}));
  orchestrator.Deploy(vm, "alpha");

  // 3. Migrate away. No checkpoint exists anywhere yet, so this is a full
  //    pre-copy migration — and it leaves a checkpoint behind on alpha.
  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;  // VeCycle
  const auto outbound = orchestrator.Migrate(vm, "beta", config);
  std::printf("outbound:  %8s  tx %10s  rounds %u\n",
              FormatDuration(outbound.total_time).c_str(),
              FormatBytes(outbound.tx_bytes).c_str(), outbound.rounds);

  // 4. Let the VM run for an hour on beta, then bring it home. The
  //    checkpoint on alpha is slightly stale, but most pages still match:
  //    they travel as 16-byte checksums instead of 4 KiB pages.
  orchestrator.RunFor(vm, Hours(1));
  const auto inbound = orchestrator.Migrate(vm, "alpha", config);
  std::printf("return:    %8s  tx %10s  rounds %u\n",
              FormatDuration(inbound.total_time).c_str(),
              FormatBytes(inbound.tx_bytes).c_str(), inbound.rounds);

  std::printf(
      "\nreturn trip: %.0fx less traffic, %.1fx faster — %llu pages "
      "reused from the local checkpoint\n",
      static_cast<double>(outbound.tx_bytes.count) /
          static_cast<double>(inbound.tx_bytes.count),
      ToSeconds(outbound.total_time) / ToSeconds(inbound.total_time),
      static_cast<unsigned long long>(inbound.pages_sent_checksum));
  return 0;
}
