// The placement policy layer: cycle-detector phase learning pinned to a
// hand-computed trace, the shipped policies' choice and deferral rules,
// flat/chunked checkpoint-store affinity agreement, the seeded scenario
// corpus, and the PDES worker-count determinism of full corpus replays.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "audit/replay.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/vm_instance.hpp"
#include "migration/config.hpp"
#include "policy/placement.hpp"
#include "policy/policies.hpp"
#include "policy/runner.hpp"
#include "policy/scenario.hpp"
#include "storage/checkpoint_store.hpp"
#include "vm/cycle_detector.hpp"
#include "vm/workload.hpp"

namespace vecycle::policy {
namespace {

SimTime At(double hours) { return kSimEpoch + Hours(hours); }

// --- CycleDetector: rate trace pinned by hand. ---------------------------

// Hourly cadence, a counter that alternates 100 writes/s and 1 write/s in
// three-hour blocks. Every expectation below is computed by hand from the
// detector's definitions (windowed mean, 0.5 threshold, run scan).
TEST(CycleDetector, PinnedHandComputedTrace) {
  vm::CycleDetector::Config config;
  config.window_samples = 16;
  config.low_threshold = 0.5;
  config.min_samples = 4;
  vm::CycleDetector detector(config);

  // Anchor, then samples at t=2..11h with rates
  // [100,100,100, 1,1,1, 100,100,100, 1] writes/s.
  std::uint64_t writes = 0;
  detector.AddSample(At(1.0), writes);
  const auto feed = [&](double hour, std::uint64_t per_hour) {
    writes += per_hour;
    detector.AddSample(At(hour), writes);
  };
  for (int h = 2; h <= 4; ++h) feed(h, 360000);
  for (int h = 5; h <= 7; ++h) feed(h, 3600);
  for (int h = 8; h <= 10; ++h) feed(h, 360000);
  feed(11, 3600);

  EXPECT_EQ(detector.SampleCount(), 10u);
  EXPECT_DOUBLE_EQ(detector.LatestRate(), 1.0);
  // Mean = (6*100 + 4*1) / 10; threshold = half of that.
  EXPECT_DOUBLE_EQ(detector.MeanRate(), 60.4);
  EXPECT_TRUE(detector.InLowChurnWindow());
  EXPECT_EQ(detector.TimeToLowChurn(At(11.0)), SimDuration::zero());
  // Run starts at the 2h and 8h samples: period = 6h.
  EXPECT_EQ(detector.EstimatedPeriod(), Hours(6.0));

  // Two more high samples open a third run at t=12h.
  feed(12, 360000);
  feed(13, 360000);
  EXPECT_FALSE(detector.InLowChurnWindow());
  // Last completed run spanned samples 8h..11h: history = 3h. One hour
  // of the current run has elapsed by t=13h.
  EXPECT_EQ(detector.TimeToLowChurn(At(13.0)), Hours(2.0));
  // Overdue prediction saturates at zero.
  EXPECT_EQ(detector.TimeToLowChurn(At(15.0)), SimDuration::zero());
  // Period is measured start-to-start including the open run: 12h - 8h.
  EXPECT_EQ(detector.EstimatedPeriod(), Hours(4.0));
}

// A high run that begins at the window's first sample may have been
// clipped by the window edge; its length is a lower bound and must never
// drive the extrapolation.
TEST(CycleDetector, ClippedFirstRunNeverExtrapolates) {
  vm::CycleDetector::Config config;
  config.window_samples = 8;
  config.min_samples = 4;

  // Clipped: the window opens mid-run ([100,100,100, 0, 100]).
  vm::CycleDetector clipped(config);
  std::uint64_t writes = 0;
  clipped.AddSample(At(1.0), writes);
  const auto feed = [&](vm::CycleDetector& d, double hour, bool high) {
    writes += high ? 360000 : 0;
    d.AddSample(At(hour), writes);
  };
  feed(clipped, 2, true);
  feed(clipped, 3, true);
  feed(clipped, 4, true);
  feed(clipped, 5, false);
  feed(clipped, 6, true);
  EXPECT_FALSE(clipped.InLowChurnWindow());
  EXPECT_EQ(clipped.TimeToLowChurn(At(6.0)), SimDuration::zero());

  // Control: one leading low sample makes the same run unclipped
  // ([0, 100,100,100, 0, 100]) and it extrapolates normally.
  vm::CycleDetector whole(config);
  writes = 0;
  whole.AddSample(At(1.0), writes);
  feed(whole, 2, false);
  feed(whole, 3, true);
  feed(whole, 4, true);
  feed(whole, 5, true);
  feed(whole, 6, false);
  feed(whole, 7, true);
  // Completed run spans the 3h..6h samples (3h); the current run has
  // zero elapsed at its own first sample.
  EXPECT_EQ(whole.TimeToLowChurn(At(7.0)), Hours(3.0));
}

TEST(CycleDetector, ReanchorKeepsHistoryAcrossCounterReplacement) {
  vm::CycleDetector detector;
  detector.AddSample(At(1.0), 1000);
  detector.AddSample(At(2.0), 361000);  // rate 100
  ASSERT_EQ(detector.SampleCount(), 1u);

  // Explicit re-anchor (migration seen via host change): history stays,
  // and the next interval rates against the *new* counter.
  detector.Reanchor(At(3.0), 50);
  EXPECT_EQ(detector.SampleCount(), 1u);
  detector.AddSample(At(4.0), 3650);
  EXPECT_EQ(detector.SampleCount(), 2u);
  EXPECT_DOUBLE_EQ(detector.LatestRate(), 1.0);

  // A backwards counter re-anchors implicitly: no sample for the
  // spanning interval, normal sampling resumes after.
  detector.AddSample(At(5.0), 100);
  EXPECT_EQ(detector.SampleCount(), 2u);
  detector.AddSample(At(6.0), 360100);
  EXPECT_EQ(detector.SampleCount(), 3u);
  EXPECT_DOUBLE_EQ(detector.LatestRate(), 100.0);

  EXPECT_THROW(detector.AddSample(At(6.0), 360200), CheckFailure);
}

// --- The shipped policies on a three-host world. -------------------------

core::VmInstance MakeVm(const std::string& id = "vm-1",
                        std::uint64_t seed = 1) {
  core::VmInstance vm(id, MiB(2), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(vm.Memory(), rng);
  return vm;
}

migration::MigrationConfig VeCycleConfig() {
  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;
  return config;
}

struct PolicyWorld {
  sim::Simulator simulator;
  core::Cluster cluster{simulator};
  core::MigrationOrchestrator orchestrator{cluster};

  explicit PolicyWorld(storage::StoreConfig store = {}) {
    for (const char* name : {"A", "B", "C"}) {
      cluster.AddHost({name, sim::DiskConfig::Ssd(), {}, {}, store});
    }
    cluster.Connect("A", "B", sim::LinkConfig::Lan());
    cluster.Connect("A", "C", sim::LinkConfig::Lan());
    cluster.Connect("B", "C", sim::LinkConfig::Lan());
  }

  PlacementQuery QueryFor(const core::VmInstance& vm,
                          std::vector<core::HostId> candidates) {
    PlacementQuery query;
    query.cluster = &cluster;
    query.vm = &vm;
    query.candidates = std::move(candidates);
    return query;
  }
};

TEST(RoundRobinPolicy, RotatesThroughCandidates) {
  PolicyWorld world;
  auto vm = MakeVm();
  world.orchestrator.Deploy(vm, "A");
  RoundRobinPolicy policy;
  const auto query = world.QueryFor(vm, {"B", "C"});
  EXPECT_EQ(policy.Decide(query).to, "B");
  EXPECT_EQ(policy.Decide(query).to, "C");
  EXPECT_EQ(policy.Decide(query).to, "B");
  EXPECT_EQ(policy.Stats().decisions, 3u);
  EXPECT_EQ(policy.Stats().cold_placements, 3u);
  EXPECT_EQ(policy.Stats().affinity_hits, 0u);
}

TEST(PlacementPolicy, RejectsMalformedQueries) {
  PolicyWorld world;
  auto vm = MakeVm();
  world.orchestrator.Deploy(vm, "A");
  RoundRobinPolicy policy;
  // No candidates.
  EXPECT_THROW((void)policy.Decide(world.QueryFor(vm, {})), CheckFailure);
  // Unsorted candidates.
  EXPECT_THROW((void)policy.Decide(world.QueryFor(vm, {"C", "B"})),
               CheckFailure);
  // The VM's current host can never be a destination.
  EXPECT_THROW((void)policy.Decide(world.QueryFor(vm, {"A", "B"})),
               CheckFailure);
  // Null world pointers.
  PlacementQuery query = world.QueryFor(vm, {"B"});
  query.cluster = nullptr;
  EXPECT_THROW((void)policy.Decide(query), CheckFailure);
}

TEST(LeastLoadedPolicy, PicksFewestVmsWithLexicographicTies) {
  PolicyWorld world;
  auto vm = MakeVm("vm-0");
  auto vm1 = MakeVm("vm-b1", 2);
  auto vm2 = MakeVm("vm-b2", 3);
  auto vm3 = MakeVm("vm-c1", 4);
  world.orchestrator.Deploy(vm, "A");
  world.orchestrator.Deploy(vm1, "B");
  world.orchestrator.Deploy(vm2, "B");
  world.orchestrator.Deploy(vm3, "C");
  const std::vector<core::VmInstance*> fleet = {&vm, &vm1, &vm2, &vm3};

  LeastLoadedPolicy policy;
  auto query = world.QueryFor(vm, {"B", "C"});
  query.fleet = &fleet;
  EXPECT_EQ(policy.Decide(query).to, "C");  // B holds 2, C holds 1
  // Without a fleet view every load is zero; ties break toward the
  // lexicographically smaller candidate.
  query.fleet = nullptr;
  EXPECT_EQ(policy.Decide(query).to, "B");
}

TEST(CheckpointAffinityPolicy, WarmCheckpointWinsColdFallsBackToLoad) {
  PolicyWorld world;
  auto vm = MakeVm();
  world.orchestrator.Deploy(vm, "A");
  // Migrating away writes the VM's checkpoint back on the source (§4.4):
  // host A is now warm for this VM, B and C are cold.
  (void)world.orchestrator.Migrate(vm, "B", VeCycleConfig());

  CheckpointAffinityPolicy policy;
  const Decision warm = policy.Decide(world.QueryFor(vm, {"A", "C"}));
  EXPECT_EQ(warm.to, "A");
  EXPECT_TRUE(warm.warm);
  EXPECT_GT(warm.affinity, 0.9);  // nothing was overwritten since
  ASSERT_EQ(warm.scored.size(), 2u);
  EXPECT_DOUBLE_EQ(warm.scored[1].affinity, 0.0);

  // A VM no host has ever checkpointed places cold, by load.
  auto fresh = MakeVm("vm-fresh", 9);
  world.orchestrator.Deploy(fresh, "C");
  const std::vector<core::VmInstance*> fleet = {&vm, &fresh};
  auto query = world.QueryFor(fresh, {"A", "B"});
  query.fleet = &fleet;
  const Decision cold = policy.Decide(query);
  EXPECT_FALSE(cold.warm);
  EXPECT_EQ(cold.to, "A");  // A and B both hold one VM; tie to "A"...
  EXPECT_EQ(policy.Stats().affinity_hits, 1u);
  EXPECT_EQ(policy.Stats().cold_placements, 1u);
}

TEST(MigrateAuto, ConsultsPolicyAndExecutesTheChoice) {
  PolicyWorld world;
  auto vm = MakeVm();
  world.orchestrator.Deploy(vm, "A");
  (void)world.orchestrator.Migrate(vm, "B", VeCycleConfig());

  // Empty candidates resolve to every linked host except the current
  // one; affinity sends the VM home to its checkpoint on A.
  CheckpointAffinityPolicy policy;
  const Decision decision =
      world.orchestrator.MigrateAuto(vm, policy, VeCycleConfig());
  EXPECT_EQ(decision.to, "A");
  EXPECT_TRUE(decision.warm);
  EXPECT_EQ(world.orchestrator.Drain(), 1u);
  EXPECT_EQ(vm.CurrentHost(), "A");
}

// The affinity signal must not depend on the checkpoint-store backend:
// a chunked store resolves baseline seeds through its manifests, a flat
// store keeps them inline, and ContentOverlap must agree to the bit.
TEST(CheckpointAffinityPolicy, FlatAndChunkedStoresScoreIdentically) {
  storage::StoreConfig chunked;
  chunked.chunking = true;
  chunked.chunk_pages = 4;

  double affinity[2] = {0.0, 0.0};
  core::HostId chosen[2];
  int i = 0;
  for (const auto& store : {storage::StoreConfig{}, chunked}) {
    PolicyWorld world(store);
    auto vm = MakeVm();
    world.orchestrator.Deploy(vm, "A");
    (void)world.orchestrator.Migrate(vm, "B", VeCycleConfig());
    // Dirty the front quarter so the overlap is a real fraction, not 1.
    for (std::uint64_t p = 0; p < vm.Memory().PageCount() / 4; ++p) {
      vm.Memory().WritePage(p, 0xabc123u + p);
    }
    CheckpointAffinityPolicy policy;
    const Decision decision = policy.Decide(world.QueryFor(vm, {"A", "C"}));
    affinity[i] = decision.affinity;
    chosen[i] = decision.to;
    ++i;
  }
  EXPECT_GT(affinity[0], 0.5);
  EXPECT_LT(affinity[0], 1.0);
  EXPECT_DOUBLE_EQ(affinity[0], affinity[1]);
  EXPECT_EQ(chosen[0], chosen[1]);
}

TEST(CycleAwarePolicy, DefersBusyLegsQuantizedAndClamped) {
  PolicyWorld world;
  auto vm = MakeVm();
  world.orchestrator.Deploy(vm, "A");

  PolicyConfig config;
  config.defer_step = Minutes(30.0);
  config.max_defer = Hours(12.0);
  CycleAwarePolicy policy(std::make_unique<RoundRobinPolicy>(), config);

  // Hourly observations; "busy" hours write 3600 pages (1/s), quiet
  // hours none. Trace [0, 1,1,1, 0, 1]: a completed 3h run, then a busy
  // sample right at decision time.
  const auto observe = [&](double hour, std::uint64_t writes) {
    for (std::uint64_t w = 0; w < writes; ++w) {
      vm.Memory().WritePage(w % vm.Memory().PageCount(), 0xfeedu + w);
    }
    policy.Observe(vm, At(hour));
  };
  observe(1.0, 0);
  observe(2.0, 0);
  for (int h = 3; h <= 5; ++h) observe(h, 3600);
  observe(6.0, 0);
  observe(7.0, 3600);

  auto query = world.QueryFor(vm, {"B", "C"});
  query.now = At(7.0);
  // Raw wait is 3h (history) - 0h (elapsed); quantization rounds up to
  // the 30-minute step and adds one step of safety margin: 3.5h.
  const Decision deferred = policy.Decide(query);
  EXPECT_EQ(deferred.defer, Hours(3.5));
  EXPECT_EQ(policy.Stats().deferred, 1u);

  // The same observations under a tight bound clamp to max_defer.
  PolicyConfig tight = config;
  tight.max_defer = Hours(1.0);
  CycleAwarePolicy clamped(std::make_unique<RoundRobinPolicy>(), tight);
  auto vm2 = MakeVm("vm-2", 5);
  world.orchestrator.Deploy(vm2, "A");
  const auto observe2 = [&](double hour, std::uint64_t writes) {
    for (std::uint64_t w = 0; w < writes; ++w) {
      vm2.Memory().WritePage(w % vm2.Memory().PageCount(), 0xbeefu + w);
    }
    clamped.Observe(vm2, At(hour));
  };
  observe2(1.0, 0);
  observe2(2.0, 0);
  for (int h = 3; h <= 5; ++h) observe2(h, 3600);
  observe2(6.0, 0);
  observe2(7.0, 3600);
  auto query2 = world.QueryFor(vm2, {"B", "C"});
  query2.now = At(7.0);
  EXPECT_EQ(clamped.Decide(query2).defer, Hours(1.0));

  // A quiet VM is never deferred.
  observe(8.0, 0);
  query.now = At(8.0);
  EXPECT_EQ(policy.Decide(query).defer, SimDuration::zero());
}

TEST(CycleAwarePolicy, HostChangeReanchorsInsteadOfSampling) {
  PolicyWorld world;
  auto vm = MakeVm();
  world.orchestrator.Deploy(vm, "A");
  CycleAwarePolicy policy(std::make_unique<RoundRobinPolicy>());

  policy.Observe(vm, At(1.0));  // anchor
  policy.Observe(vm, At(2.0));
  policy.Observe(vm, At(3.0));
  const vm::CycleDetector* detector = policy.DetectorFor(vm.Id());
  ASSERT_NE(detector, nullptr);
  ASSERT_EQ(detector->SampleCount(), 2u);

  // "Migrate" the VM: new host, and a counter bumped the way a page
  // reconstruction bumps it (monotonically up, so only the host change
  // reveals the replacement). The spanning interval must NOT become a
  // rate sample.
  vm.SetCurrentHost("B");
  for (std::uint64_t w = 0; w < 5000; ++w) {
    vm.Memory().WritePage(w % vm.Memory().PageCount(), 0x5eedu + w);
  }
  policy.Observe(vm, At(4.0));
  EXPECT_EQ(detector->SampleCount(), 2u);
  // Sampling resumes on the new anchor.
  policy.Observe(vm, At(5.0));
  EXPECT_EQ(detector->SampleCount(), 3u);
  EXPECT_DOUBLE_EQ(detector->LatestRate(), 0.0);

  EXPECT_EQ(policy.DetectorFor("no-such-vm"), nullptr);
}

// --- Scenario corpus. ----------------------------------------------------

TEST(ScenarioGen, IsAPureFunctionOfItsConfig) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kEvictionStorm;
  config.seed = 77;
  const Scenario a = ScenarioGen(config).Generate();
  const Scenario b = ScenarioGen(config).Generate();
  ASSERT_EQ(a.waves.size(), b.waves.size());
  for (std::size_t w = 0; w < a.waves.size(); ++w) {
    EXPECT_EQ(a.waves[w].advance, b.waves[w].advance);
    EXPECT_EQ(a.waves[w].drain_hosts, b.waves[w].drain_hosts);
    ASSERT_EQ(a.waves[w].demands.size(), b.waves[w].demands.size());
    for (std::size_t d = 0; d < a.waves[w].demands.size(); ++d) {
      EXPECT_EQ(a.waves[w].demands[d].vm, b.waves[w].demands[d].vm);
      EXPECT_EQ(a.waves[w].demands[d].rule, b.waves[w].demands[d].rule);
      EXPECT_EQ(a.waves[w].demands[d].site, b.waves[w].demands[d].site);
    }
  }
  // A different seed reshuffles the storm.
  config.seed = 78;
  const Scenario c = ScenarioGen(config).Generate();
  bool diverged = false;
  for (std::size_t w = 0; w < std::min(a.waves.size(), c.waves.size());
       ++w) {
    if (a.waves[w].drain_hosts != c.waves[w].drain_hosts) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(ScenarioGen, PrependsDemandFreeWarmupDays) {
  ScenarioConfig config;
  config.warmup_days = 2;
  const Scenario with = ScenarioGen(config).Generate();
  ASSERT_FALSE(with.waves.empty());
  EXPECT_EQ(with.waves.front().advance, Hours(48.0));
  EXPECT_TRUE(with.waves.front().demands.empty());
  EXPECT_TRUE(with.waves.front().drain_hosts.empty());

  config.warmup_days = 0;
  const Scenario without = ScenarioGen(config).Generate();
  EXPECT_EQ(with.waves.size(), without.waves.size() + 1);
}

TEST(RunResult, P99IsNearestRank) {
  RunResult result;
  for (int i = 100; i >= 1; --i) {
    result.downtimes.push_back(Milliseconds(i));
  }
  // N=100: rank ceil(99.0) = 99 -> the 99th smallest.
  EXPECT_EQ(result.P99Downtime(), Milliseconds(99));
  RunResult small;
  for (int i = 1; i <= 5; ++i) small.downtimes.push_back(Milliseconds(i));
  // N=5: rank ceil(4.95) = 5 -> the maximum.
  EXPECT_EQ(small.P99Downtime(), Milliseconds(5));
  EXPECT_EQ(RunResult{}.P99Downtime(), SimDuration::zero());
}

// --- Corpus replay determinism (the PDES contract). ----------------------

// A sharded corpus replay under the full policy stack must produce the
// same fingerprint at every worker count. Policies are created inside
// the scenario callback: each run starts from virgin detector state.
TEST(PolicyRunner, CorpusReplayIsWorkerCountInvariant) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kDiurnal;
  config.vms = 4;
  config.vm_ram = MiB(2);
  config.days = 1;
  config.warmup_days = 1;
  config.step = Hours(1.0);
  config.busy_rate_pages_per_s = 200.0;
  config.seed = 5;
  const Scenario scenario = ScenarioGen(config).Generate();

  migration::MigrationConfig mconfig;
  mconfig.strategy = migration::Strategy::kHashes;
  mconfig.stop_copy_threshold_pages = 8;

  audit::ReplayCheck::VerifyWorkers(
      [&](std::size_t workers) {
        CycleAwarePolicy policy(
            std::make_unique<CheckpointAffinityPolicy>());
        return PolicyRunner::RunSharded(scenario, policy, mconfig, workers)
            .fingerprint;
      },
      {1, 4, 8});
}

// And the single-simulator runner agrees with itself run-to-run (fresh
// world each time, so any hidden static state would diverge here).
TEST(PolicyRunner, SingleSimulatorReplayIsDeterministic) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMaintenanceDrain;
  config.vms = 4;
  config.vm_ram = MiB(2);
  config.days = 2;
  config.warmup_days = 0;
  config.step = Hours(1.0);
  config.seed = 6;
  const Scenario scenario = ScenarioGen(config).Generate();

  const auto run = [&] {
    CheckpointAffinityPolicy policy;
    return PolicyRunner::Run(scenario, policy, VeCycleConfig());
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.wire_bytes.count, b.wire_bytes.count);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_GT(a.completed, 0u);
}

}  // namespace
}  // namespace vecycle::policy
