// The top-level VeCycle API: cluster topology, VM deployment, and the
// orchestrated migrate/checkpoint/remember cycle — including the paper's
// headline behaviour, the ping-pong pattern where return migrations get
// dramatically cheaper.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/vm_instance.hpp"
#include "vm/workload.hpp"

namespace vecycle::core {
namespace {

struct World {
  sim::Simulator simulator;
  Cluster cluster{simulator};
  MigrationOrchestrator orchestrator{cluster};

  World() {
    cluster.AddHost({"A", sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.AddHost({"B", sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.Connect("A", "B", sim::LinkConfig::Lan());
  }
};

VmInstance MakeVm(Bytes ram = MiB(16), std::uint64_t seed = 1) {
  VmInstance vm("vm-1", ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(vm.Memory(), rng);
  return vm;
}

migration::MigrationConfig VeCycleConfig() {
  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;
  return config;
}

// --- Cluster topology. ---

TEST(Cluster, RejectsDuplicateHosts) {
  sim::Simulator simulator;
  Cluster cluster(simulator);
  cluster.AddHost({"A", {}, {}, {}, {}});
  EXPECT_THROW(cluster.AddHost({"A", {}, {}, {}, {}}), CheckFailure);
}

TEST(Cluster, RejectsSelfLink) {
  sim::Simulator simulator;
  Cluster cluster(simulator);
  cluster.AddHost({"A", {}, {}, {}, {}});
  EXPECT_THROW(cluster.Connect("A", "A", sim::LinkConfig::Lan()),
               CheckFailure);
}

TEST(Cluster, PathIsDirectionAware) {
  World world;
  const auto ab = world.cluster.PathBetween("A", "B");
  const auto ba = world.cluster.PathBetween("B", "A");
  EXPECT_EQ(ab.link, ba.link);
  EXPECT_NE(ab.direction == sim::Direction::kAtoB,
            ba.direction == sim::Direction::kAtoB);
}

TEST(Cluster, MissingLinkThrows) {
  sim::Simulator simulator;
  Cluster cluster(simulator);
  cluster.AddHost({"A", {}, {}, {}, {}});
  cluster.AddHost({"B", {}, {}, {}, {}});
  EXPECT_THROW((void)cluster.PathBetween("A", "B"), CheckFailure);
}

// --- Deployment and time. ---

TEST(Orchestrator, DeployPlacesVm) {
  World world;
  auto vm = MakeVm();
  world.orchestrator.Deploy(vm, "A");
  EXPECT_EQ(vm.CurrentHost(), "A");
  EXPECT_THROW(world.orchestrator.Deploy(vm, "B"), CheckFailure);
}

TEST(Orchestrator, RunForAdvancesClockAndWorkload) {
  World world;
  auto vm = MakeVm();
  vm.SetWorkload(std::make_unique<vm::UniformRandomWorkload>(10.0, 7));
  world.orchestrator.Deploy(vm, "A");
  world.orchestrator.RunFor(vm, Hours(1));
  EXPECT_EQ(world.simulator.Now(), Hours(1));
  EXPECT_EQ(vm.Memory().TotalWrites(),
            vm.Memory().PageCount() + 36000u);  // profile init + churn
}

TEST(Orchestrator, MigrateRequiresDeployment) {
  World world;
  auto vm = MakeVm();
  EXPECT_THROW(world.orchestrator.Migrate(vm, "B", VeCycleConfig()),
               CheckFailure);
}

TEST(Orchestrator, MigrateToCurrentHostThrows) {
  World world;
  auto vm = MakeVm();
  world.orchestrator.Deploy(vm, "A");
  EXPECT_THROW(world.orchestrator.Migrate(vm, "A", VeCycleConfig()),
               CheckFailure);
}

// --- The migrate/checkpoint/remember cycle. ---

TEST(Orchestrator, MigrationMovesVmAndLeavesCheckpoint) {
  World world;
  auto vm = MakeVm();
  world.orchestrator.Deploy(vm, "A");
  const auto before = vm.Memory().Generations();

  const auto stats = world.orchestrator.Migrate(vm, "B", VeCycleConfig());

  EXPECT_EQ(vm.CurrentHost(), "B");
  EXPECT_GT(stats.tx_bytes.count, 0u);
  // The source kept a checkpoint of the departed VM.
  EXPECT_TRUE(world.cluster.GetHost("A").Store().Has("vm-1"));
  EXPECT_FALSE(world.cluster.GetHost("B").Store().Has("vm-1"));
  // The VM remembers what it left behind; the source store is the system
  // of record for the departure-time generations and delta baseline.
  EXPECT_FALSE(vm.KnownPagesAt("A").empty());
  EXPECT_EQ(world.cluster.GetHost("A").Store().DepartureGenerations("vm-1"),
            before);
  EXPECT_EQ(world.cluster.GetHost("A").Store().BaselineSeeds("vm-1"),
            world.cluster.GetHost("A").Store().Peek("vm-1")->Seeds());
  EXPECT_EQ(vm.VisitedHostCount(), 1u);
}

TEST(Orchestrator, PingPongReturnIsCheap) {
  World world;
  auto vm = MakeVm(MiB(32));
  // An idle guest: at 32 MiB model scale the absolute write rate must be
  // tiny to keep the paper's near-100% similarity (the paper's idle VM
  // touches a vanishing fraction of its multi-GiB RAM).
  vm::IdleWorkload::Config idle;
  idle.write_rate_pages_per_s = 0.5;
  idle.hot_region_pages = 256;
  vm.SetWorkload(std::make_unique<vm::IdleWorkload>(idle));
  world.orchestrator.Deploy(vm, "A");

  const auto first = world.orchestrator.Migrate(vm, "B", VeCycleConfig());
  world.orchestrator.RunFor(vm, Minutes(10));
  const auto back = world.orchestrator.Migrate(vm, "A", VeCycleConfig());

  // First migration had no checkpoint anywhere: full traffic. The return
  // found a near-identical checkpoint at A: traffic collapses (§4.4).
  EXPECT_LT(back.tx_bytes.count * 10, first.tx_bytes.count);
  EXPECT_LT(ToSeconds(back.total_time), ToSeconds(first.total_time));
  // Ping-pong fast path: no bulk hash exchange was needed.
  EXPECT_EQ(back.bulk_exchange_bytes.count, 0u);
  EXPECT_GT(back.pages_sent_checksum, 0u);
}

TEST(Orchestrator, RepeatedPingPongKeepsWorking) {
  World world;
  auto vm = MakeVm(MiB(8));
  vm.SetWorkload(std::make_unique<vm::UniformRandomWorkload>(5.0, 21));
  world.orchestrator.Deploy(vm, "A");

  const char* hosts[] = {"B", "A", "B", "A", "B"};
  for (const char* to : hosts) {
    world.orchestrator.RunFor(vm, Hours(1));
    const auto stats = world.orchestrator.Migrate(vm, to, VeCycleConfig());
    EXPECT_EQ(vm.CurrentHost(), to);
    EXPECT_GT(stats.rounds, 0u);
  }
  EXPECT_EQ(vm.VisitedHostCount(), 2u);
}

TEST(Orchestrator, CheckpointReflectsDepartureState) {
  World world;
  auto vm = MakeVm(MiB(8));
  world.orchestrator.Deploy(vm, "A");
  world.orchestrator.Migrate(vm, "B", VeCycleConfig());

  // The checkpoint at A holds exactly the VM's state at departure.
  const auto* checkpoint = world.cluster.GetHost("A").Store().Peek("vm-1");
  ASSERT_NE(checkpoint, nullptr);
  for (vm::PageId p = 0; p < vm.Memory().PageCount(); ++p) {
    EXPECT_EQ(checkpoint->SeedAt(p), vm.Memory().Seed(p));
  }
}

TEST(Orchestrator, ThreeHostCircuitUsesBulkExchangeOnNewPaths) {
  // A VM visiting a third host has knowledge of neither — but once a
  // checkpoint exists there, a later return uses it after a bulk
  // exchange... unless the VM remembers, which it does after departing.
  sim::Simulator simulator;
  Cluster cluster(simulator);
  MigrationOrchestrator orchestrator(cluster);
  cluster.AddHost({"A", {}, {}, {}, {}});
  cluster.AddHost({"B", {}, {}, {}, {}});
  cluster.AddHost({"C", {}, {}, {}, {}});
  cluster.Connect("A", "B", sim::LinkConfig::Lan());
  cluster.Connect("B", "C", sim::LinkConfig::Lan());
  cluster.Connect("A", "C", sim::LinkConfig::Lan());

  auto vm = MakeVm(MiB(8));
  orchestrator.Deploy(vm, "A");
  const auto to_b = orchestrator.Migrate(vm, "B", VeCycleConfig());
  const auto to_c = orchestrator.Migrate(vm, "C", VeCycleConfig());
  EXPECT_EQ(to_b.bulk_exchange_bytes.count, 0u);  // no checkpoint at B
  EXPECT_EQ(to_c.bulk_exchange_bytes.count, 0u);  // none at C either

  // Return to A: checkpoint exists, VM remembers its content (learned
  // during the outgoing migration) — fast path, no bulk exchange.
  const auto back_a = orchestrator.Migrate(vm, "A", VeCycleConfig());
  EXPECT_EQ(back_a.bulk_exchange_bytes.count, 0u);
  EXPECT_GT(back_a.pages_sent_checksum, 0u);
}

TEST(Orchestrator, MiyakodoriStrategyWorksThroughOrchestrator) {
  World world;
  auto vm = MakeVm(MiB(8));
  world.orchestrator.Deploy(vm, "A");

  migration::MigrationConfig dirty;
  dirty.strategy = migration::Strategy::kDirtyTracking;
  world.orchestrator.Migrate(vm, "B", dirty);

  // Touch 50 pages, then return: only those (plus re-sends) travel full.
  for (vm::PageId p = 0; p < 50; ++p) vm.Memory().WritePage(p, 1 << 20);
  const auto back = world.orchestrator.Migrate(vm, "A", dirty);
  EXPECT_EQ(back.pages_skipped_clean, vm.Memory().PageCount() - 50);
  EXPECT_GT(back.pages_skipped_clean, 0u);
}

TEST(Orchestrator, ReturnAfterCheckpointEvictionDegradesGracefully) {
  // A consolidation host with a tight retention quota: VM-1's checkpoint
  // is evicted by VM-2's before VM-1 returns. The return migration must
  // fall back to a cold transfer, not fail on the VM's stale knowledge.
  sim::Simulator simulator;
  Cluster cluster(simulator);
  MigrationOrchestrator orchestrator(cluster);
  core::HostConfig a{"A", sim::DiskConfig::Hdd(), {}, {}, {}};
  a.retention.max_checkpoints = 1;
  cluster.AddHost(a);
  cluster.AddHost({"B", sim::DiskConfig::Hdd(), {}, {}, {}});
  cluster.Connect("A", "B", sim::LinkConfig::Lan());

  // Distinct ids matter for the store.
  VmInstance vm_one("vm-1", MiB(8), vm::ContentMode::kSeedOnly);
  VmInstance vm_two("vm-2", MiB(8), vm::ContentMode::kSeedOnly);
  Xoshiro256 r1(61);
  Xoshiro256 r2(62);
  vm::MemoryProfile{}.Apply(vm_one.Memory(), r1);
  vm::MemoryProfile{}.Apply(vm_two.Memory(), r2);

  orchestrator.Deploy(vm_one, "A");
  orchestrator.Deploy(vm_two, "A");
  orchestrator.Migrate(vm_one, "B", VeCycleConfig());  // ckpt(vm-1) at A
  orchestrator.Migrate(vm_two, "B", VeCycleConfig());  // evicts ckpt(vm-1)
  EXPECT_FALSE(cluster.GetHost("A").Store().Has("vm-1"));
  EXPECT_TRUE(cluster.GetHost("A").Store().Has("vm-2"));
  EXPECT_EQ(cluster.GetHost("A").Store().Evictions(), 1u);

  // vm-1 returns: cold path, still correct.
  const auto back = orchestrator.Migrate(vm_one, "A", VeCycleConfig());
  EXPECT_EQ(back.pages_sent_checksum, 0u);
  EXPECT_EQ(vm_one.CurrentHost(), "A");
}

TEST(Orchestrator, WanMigrationIsSlowerThanLan) {
  sim::Simulator simulator;
  Cluster cluster(simulator);
  MigrationOrchestrator orchestrator(cluster);
  cluster.AddHost({"A", {}, {}, {}, {}});
  cluster.AddHost({"B", {}, {}, {}, {}});
  cluster.AddHost({"C", {}, {}, {}, {}});
  cluster.Connect("A", "B", sim::LinkConfig::Lan());
  cluster.Connect("A", "C", sim::LinkConfig::Wan());

  auto vm_lan = MakeVm(MiB(32), 1);
  auto vm_wan = MakeVm(MiB(32), 1);
  vm_lan.AdoptMemory(
      std::make_unique<vm::GuestMemory>(MiB(32), vm::ContentMode::kSeedOnly));
  vm_wan.AdoptMemory(
      std::make_unique<vm::GuestMemory>(MiB(32), vm::ContentMode::kSeedOnly));
  Xoshiro256 rng(5);
  vm::MemoryProfile{}.Apply(vm_lan.Memory(), rng);
  Xoshiro256 rng2(5);
  vm::MemoryProfile{}.Apply(vm_wan.Memory(), rng2);

  orchestrator.Deploy(vm_lan, "A");
  const auto lan = orchestrator.Migrate(vm_lan, "B", VeCycleConfig());

  orchestrator.Deploy(vm_wan, "A");
  const auto wan = orchestrator.Migrate(vm_wan, "C", VeCycleConfig());

  EXPECT_GT(ToSeconds(wan.total_time), 3.0 * ToSeconds(lan.total_time));
}

}  // namespace
}  // namespace vecycle::core
