// Content-addressed chunk store: the DigestMap index primitive, chunk
// identity, refcount conservation, deterministic GC, and the chunked
// CheckpointStore backend's core properties — (a) a reconstructed image
// is digest-identical to what was saved, (b) GC never frees a chunk
// reachable from a live manifest, (c) refcounts return to zero once every
// manifest is gone. The properties are then swept under the PDES
// worker-count determinism contract with checkpoint bit-rot injected.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "audit/replay.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "digest/digest_map.hpp"
#include "fault/fault.hpp"
#include "sim/disk.hpp"
#include "sim/sharded.hpp"
#include "storage/checkpoint.hpp"
#include "storage/checkpoint_store.hpp"
#include "storage/chunk_store.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::storage {
namespace {

// --- DigestMap ---------------------------------------------------------

Digest128 TestDigest(std::uint64_t i) {
  // Route through ChunkDigest so both words are populated exactly the way
  // the store's real keys are.
  return ChunkDigest(std::span<const std::uint64_t>(&i, 1));
}

TEST(DigestMap, InsertFindEraseRoundTrip) {
  DigestMap map;
  EXPECT_TRUE(map.Empty());
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(map.Insert(TestDigest(i), i * 7));
  }
  EXPECT_EQ(map.Size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t* value = map.Find(TestDigest(i));
    ASSERT_NE(value, nullptr) << i;
    EXPECT_EQ(*value, i * 7);
  }
  EXPECT_EQ(map.Find(TestDigest(5000)), nullptr);

  for (std::uint64_t i = 0; i < 1000; i += 3) {
    EXPECT_TRUE(map.Erase(TestDigest(i)));
  }
  EXPECT_FALSE(map.Erase(TestDigest(0)));  // already gone
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t* value = map.Find(TestDigest(i));
    if (i % 3 == 0) {
      EXPECT_EQ(value, nullptr) << i;
    } else {
      ASSERT_NE(value, nullptr) << i;
      EXPECT_EQ(*value, i * 7);
    }
  }
}

TEST(DigestMap, DuplicateInsertKeepsFirstValue) {
  DigestMap map;
  EXPECT_TRUE(map.Insert(TestDigest(1), 10));
  EXPECT_FALSE(map.Insert(TestDigest(1), 20));
  EXPECT_EQ(map.Size(), 1u);
  EXPECT_EQ(*map.Find(TestDigest(1)), 10u);
}

TEST(DigestMap, LoadFactorStaysAtMostHalf) {
  DigestMap map;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    map.Insert(TestDigest(i), i);
    EXPECT_GE(map.Capacity(), 2 * map.Size());
  }
}

TEST(DigestMap, ChurnMatchesReferenceModel) {
  // Backward-shift deletion is the part a tombstone-free table gets
  // wrong first: after heavy interleaved insert/erase churn every live
  // key must still be reachable through its probe chain.
  DigestMap map;
  std::map<std::uint64_t, std::uint64_t> model;
  SplitMix64 rng(42);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.Next() % 512;
    if (rng.Next() % 3 == 0) {
      EXPECT_EQ(map.Erase(TestDigest(key)), model.erase(key) == 1) << step;
    } else {
      EXPECT_EQ(map.Insert(TestDigest(key), key),
                model.emplace(key, key).second)
          << step;
    }
  }
  EXPECT_EQ(map.Size(), model.size());
  for (std::uint64_t key = 0; key < 512; ++key) {
    const std::uint64_t* value = map.Find(TestDigest(key));
    if (model.contains(key)) {
      ASSERT_NE(value, nullptr) << key;
      EXPECT_EQ(*value, key);
    } else {
      EXPECT_EQ(value, nullptr) << key;
    }
  }
}

// --- Chunk identity ----------------------------------------------------

TEST(ChunkIdentity, DigestPopulatesBothWords) {
  // FnvDigest leaves the high word zero, which would collapse every
  // DigestMap slot hash; the chunk digest must fill both words.
  const auto digest = TestDigest(123);
  EXPECT_NE(digest.words[0], 0u);
  EXPECT_NE(digest.words[1], 0u);
}

TEST(ChunkIdentity, DigestIsAFunctionOfContentAndOrder) {
  const std::vector<std::uint64_t> a = {1, 2, 3};
  const std::vector<std::uint64_t> b = {3, 2, 1};
  const std::vector<std::uint64_t> c = {1, 2};
  EXPECT_EQ(ChunkDigest(a), ChunkDigest(a));
  EXPECT_NE(ChunkDigest(a), ChunkDigest(b));
  EXPECT_NE(ChunkDigest(a), ChunkDigest(c));
}

TEST(ChunkIdentity, ContentKeyMatchesSinglePageChunkDigest) {
  const std::uint64_t seed = 0xfeedface;
  EXPECT_EQ(ChunkContentKey(seed),
            ChunkDigest(std::span<const std::uint64_t>(&seed, 1)).words[1]);
  EXPECT_NE(ChunkContentKey(1), ChunkContentKey(2));
}

// --- ChunkStore --------------------------------------------------------

std::vector<std::uint64_t> SeedRun(std::uint64_t tag, std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  SplitMix64 rng(tag);
  for (auto& seed : seeds) seed = rng.Next();
  return seeds;
}

TEST(ChunkStore, PinDedupsIdenticalContent) {
  ChunkStore store;
  const auto seeds = SeedRun(1, 4);
  const auto digest = ChunkDigest(seeds);
  EXPECT_TRUE(store.Pin(digest, seeds, Seconds(1)));   // fresh: needs a write
  EXPECT_FALSE(store.Pin(digest, seeds, Seconds(2)));  // deduplicated
  EXPECT_EQ(store.ResidentChunks(), 1u);
  EXPECT_EQ(store.TotalRefcount(), 2u);
  EXPECT_EQ(store.Footprint(), Pages(4));
  EXPECT_EQ(store.ChunksWritten(), 1u);
  EXPECT_EQ(store.ChunksDeduped(), 1u);
  ASSERT_NE(store.SeedsOf(digest), nullptr);
  EXPECT_EQ(*store.SeedsOf(digest), seeds);
}

TEST(ChunkStore, SweepNeverFreesAReferencedChunk) {
  ChunkStore store;
  const auto pinned = SeedRun(1, 4);
  const auto loose = SeedRun(2, 4);
  store.Pin(ChunkDigest(pinned), pinned, Seconds(1));
  store.Pin(ChunkDigest(loose), loose, Seconds(2));
  store.Unpin(ChunkDigest(loose));
  const auto freed = store.SweepUntil(Bytes{0});
  EXPECT_EQ(freed, std::vector<Digest128>{ChunkDigest(loose)});
  EXPECT_NE(store.SeedsOf(ChunkDigest(pinned)), nullptr);
  EXPECT_EQ(store.SeedsOf(ChunkDigest(loose)), nullptr);
  EXPECT_EQ(store.Footprint(), Pages(4));
  EXPECT_EQ(store.GcFreed(), 1u);
}

TEST(ChunkStore, SweepOrderIsLastUsedThenDigest) {
  ChunkStore store;
  const auto a = SeedRun(10, 2);
  const auto b = SeedRun(11, 2);
  const auto c = SeedRun(12, 2);
  store.Pin(ChunkDigest(a), a, Seconds(3));
  store.Pin(ChunkDigest(b), b, Seconds(1));
  store.Pin(ChunkDigest(c), c, Seconds(2));
  for (const auto& seeds : {a, b, c}) store.Unpin(ChunkDigest(seeds));
  // Stop after freeing two chunks: the LRU pair (b then c) goes, a stays.
  const auto freed = store.SweepUntil(Pages(2));
  ASSERT_EQ(freed.size(), 2u);
  EXPECT_EQ(freed[0], ChunkDigest(b));
  EXPECT_EQ(freed[1], ChunkDigest(c));
  EXPECT_NE(store.SeedsOf(ChunkDigest(a)), nullptr);

  // Touch refreshes recency: re-pin b and c, unpin, touch b — now c is
  // the older of the two and goes first. Re-pin a so the survivor of the
  // first sweep is referenced and off the candidate list.
  store.Pin(ChunkDigest(a), a, Seconds(4));
  store.Pin(ChunkDigest(b), b, Seconds(4));
  store.Pin(ChunkDigest(c), c, Seconds(5));
  store.Unpin(ChunkDigest(b));
  store.Unpin(ChunkDigest(c));
  store.Touch(ChunkDigest(b), Seconds(9));
  const auto freed2 = store.SweepUntil(Pages(4));
  ASSERT_EQ(freed2.size(), 1u);
  EXPECT_EQ(freed2[0], ChunkDigest(c));
}

TEST(ChunkStore, UnpinWithoutPinThrows) {
  ChunkStore store;
  const auto seeds = SeedRun(1, 2);
  EXPECT_THROW(store.Unpin(ChunkDigest(seeds)), CheckFailure);
  store.Pin(ChunkDigest(seeds), seeds, Seconds(1));
  store.Unpin(ChunkDigest(seeds));
  EXPECT_THROW(store.Unpin(ChunkDigest(seeds)), CheckFailure);
}

// --- Chunked CheckpointStore properties --------------------------------

vm::GuestMemory MakeMemory(std::uint64_t rng_seed, Bytes ram = MiB(1)) {
  vm::GuestMemory memory(ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(rng_seed);
  vm::MemoryProfile{}.Apply(memory, rng);
  return memory;
}

StoreConfig ChunkedConfig(std::uint64_t chunk_pages = 4,
                          Bytes ssd_capacity = Bytes{0}) {
  StoreConfig config;
  config.chunking = true;
  config.chunk_pages = chunk_pages;
  config.tier.ssd_capacity = ssd_capacity;
  return config;
}

TEST(ChunkedStore, ReconstructedImageIsDigestIdenticalToSaved) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk, RetentionPolicy{}, ChunkedConfig());
  const auto memory = MakeMemory(7);
  const auto saved = Checkpoint::CaptureFrom(memory);
  const auto image_digest = saved.ImageDigest();
  store.Save("vm", saved, kSimEpoch);

  ASSERT_TRUE(store.Has("vm"));
  EXPECT_EQ(store.Peek("vm")->ImageDigest(), image_digest);
  EXPECT_TRUE(store.Peek("vm")->IntegrityOk());
  // The manifest-resolved baseline is the exact page-seed sequence saved.
  EXPECT_EQ(store.BaselineSeeds("vm"), saved.Seeds());
  EXPECT_EQ(store.DepartureGenerations("vm"), saved.Generations());

  const auto load = store.Load("vm", Seconds(10));
  ASSERT_NE(load.checkpoint, nullptr);
  EXPECT_EQ(load.checkpoint->ImageDigest(), image_digest);
}

TEST(ChunkedStore, PartialTailChunkRoundTrips) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk, RetentionPolicy{}, ChunkedConfig(8));
  // 13 pages: one full chunk of 8 plus a 5-page tail.
  vm::GuestMemory memory(Pages(13), vm::ContentMode::kSeedOnly);
  for (vm::PageId p = 0; p < 13; ++p) memory.WritePage(p, 1000 + p);
  const auto saved = Checkpoint::CaptureFrom(memory);
  store.Save("vm", saved, kSimEpoch);
  EXPECT_EQ(store.BaselineSeeds("vm"), saved.Seeds());
  EXPECT_EQ(store.ResidentChunks(), 2u);
}

TEST(ChunkedStore, IncrementalSaveWritesOnlyAbsentChunks) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk, RetentionPolicy{}, ChunkedConfig());
  auto memory = MakeMemory(7);
  store.Save("vm", Checkpoint::CaptureFrom(memory), kSimEpoch);
  const Bytes first = disk.WrittenBytes();
  EXPECT_GE(first, MiB(1));  // a cold save writes the full image

  // Dirty one page and save again: only the chunk holding it (plus
  // manifest metadata) hits the disk.
  memory.WritePage(3, 0xABCDEF);
  store.Save("vm", Checkpoint::CaptureFrom(memory), Seconds(100));
  const Bytes second = disk.WrittenBytes() - first;
  EXPECT_LT(second.count, MiB(1).count / 2);
  EXPECT_GE(second, Pages(4));  // the rewritten chunk itself
  EXPECT_GT(store.ChunksDeduped(), 0u);

  // An identical twin VM saves almost nothing: every chunk dedups.
  const Bytes before_twin = disk.WrittenBytes();
  store.Save("twin", Checkpoint::CaptureFrom(memory), Seconds(200));
  EXPECT_LT((disk.WrittenBytes() - before_twin).count, Pages(4).count);
  EXPECT_EQ(store.BaselineSeeds("twin"), store.BaselineSeeds("vm"));

  // Shared chunks are stored once: two live manifests, one image's worth
  // of chunks on disk.
  EXPECT_LT(store.FootprintOnDisk().count, (MiB(1) + Pages(8)).count);
}

TEST(ChunkedStore, GcNeverFreesAChunkReachableFromALiveManifest) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  RetentionPolicy policy;
  policy.disk_quota = MiB(2);
  CheckpointStore store(disk, policy, ChunkedConfig());
  std::map<std::string, std::vector<std::uint64_t>> saved;
  SimTime at = kSimEpoch;
  for (int round = 0; round < 3; ++round) {
    for (const char* vm : {"a", "b", "c", "d"}) {
      auto memory = MakeMemory(0x5eed + vm[0] + round);
      const auto cp = Checkpoint::CaptureFrom(memory);
      saved[vm] = cp.Seeds();
      at = store.Save(vm, cp, at);
      // Every live manifest must still resolve its exact image, no
      // matter what the quota sweeps freed between saves.
      for (const auto& [id, seeds] : saved) {
        if (!store.Has(id)) continue;
        EXPECT_EQ(store.BaselineSeeds(id), seeds) << id << " round " << round;
      }
    }
  }
  EXPECT_GT(store.Evictions(), 0u);
  EXPECT_GT(store.GcFreedChunks(), 0u);
  EXPECT_LE(store.FootprintOnDisk().count, policy.disk_quota.count);
}

TEST(ChunkedStore, RefcountsReturnToZeroAfterAllManifestsDrop) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk, RetentionPolicy{}, ChunkedConfig());
  // Three VMs, two of them identical twins (shared chunks at refcount 2).
  store.Save("a", Checkpoint::CaptureFrom(MakeMemory(1)), Seconds(1));
  store.Save("b", Checkpoint::CaptureFrom(MakeMemory(1)), Seconds(2));
  store.Save("c", Checkpoint::CaptureFrom(MakeMemory(3)), Seconds(3));
  EXPECT_GT(store.TotalChunkRefs(), 0u);
  EXPECT_GT(store.ChunksDeduped(), 0u);

  for (const char* vm : {"a", "b", "c"}) store.Drop(vm);
  EXPECT_EQ(store.TotalChunkRefs(), 0u);

  // Unreferenced chunks still occupy disk until GC actually runs.
  EXPECT_GT(store.FootprintOnDisk().count, 0u);
  const SimTime done = store.CollectGarbage(Seconds(10));
  EXPECT_GT(done, Seconds(10));  // the sweep's metadata writes took time
  EXPECT_EQ(store.ResidentChunks(), 0u);
  EXPECT_EQ(store.FootprintOnDisk(), Bytes{0});
  EXPECT_EQ(store.GcFreedChunks(), store.ChunksWritten());
}

TEST(ChunkedStore, RotAffectsServingCopyButNotBaseline) {
  fault::FaultConfig fault_config;
  fault_config.enabled = true;
  fault_config.seed = 5;
  fault_config.corrupt_probability = 1.0;
  fault_config.corrupt_pages = 4;
  fault::FaultInjector injector(fault_config);

  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk, RetentionPolicy{}, ChunkedConfig());
  store.SetFaultInjector(&injector);
  const auto saved = Checkpoint::CaptureFrom(MakeMemory(9));
  store.Save("vm", saved, kSimEpoch);

  EXPECT_TRUE(store.WasCorrupted("vm"));
  EXPECT_FALSE(store.Peek("vm")->IntegrityOk());
  // The chunks hold the image as written; rot damaged the serving copy
  // only, so the delta baseline a return migration plans against is
  // pristine.
  EXPECT_EQ(store.BaselineSeeds("vm"), saved.Seeds());
}

TEST(ChunkedStore, SsdTierServesResidentChunksAndPromotesMisses) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  // Cache holds a quarter of the image: saves make the last-written
  // chunks resident, so loads split between SSD and backing disk.
  CheckpointStore store(disk, RetentionPolicy{},
                        ChunkedConfig(4, KiB(256)));
  const auto saved = Checkpoint::CaptureFrom(MakeMemory(11));
  store.Save("vm", saved, kSimEpoch);
  (void)store.Load("vm", Seconds(10));
  EXPECT_GT(store.SsdHits(), 0u);
  EXPECT_GT(store.SsdMisses(), 0u);

  // A random block read of a non-resident chunk promotes it.
  const std::uint64_t before = store.SsdPromotions();
  bool read_error = false;
  for (std::uint64_t page = 0; page < saved.PageCount(); page += 4) {
    store.ReadBlock("vm", page, Seconds(20), &read_error);
    EXPECT_FALSE(read_error);
  }
  EXPECT_GT(store.SsdPromotions(), before);
}

TEST(ChunkedStore, FlatAndChunkedServeIdenticalContent) {
  sim::Disk flat_disk(sim::DiskConfig::Hdd());
  sim::Disk chunk_disk(sim::DiskConfig::Hdd());
  CheckpointStore flat(flat_disk);
  CheckpointStore chunked(chunk_disk, RetentionPolicy{}, ChunkedConfig());
  const auto saved = Checkpoint::CaptureFrom(MakeMemory(13));
  flat.Save("vm", saved, kSimEpoch);
  chunked.Save("vm", saved, kSimEpoch);
  EXPECT_EQ(flat.BaselineSeeds("vm"), chunked.BaselineSeeds("vm"));
  EXPECT_EQ(flat.DepartureGenerations("vm"),
            chunked.DepartureGenerations("vm"));
  EXPECT_EQ(flat.Peek("vm")->ImageDigest(), chunked.Peek("vm")->ImageDigest());
  EXPECT_EQ(flat.FootprintOnDisk(), chunked.FootprintOnDisk());
}

// --- Drop routes through the observer path -----------------------------

TEST(ChunkedStore, DropAndEvictionReportToAuditorAndTracer) {
  audit::SimAuditor auditor;
  obs::TraceRecorder tracer;
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk, RetentionPolicy{}, ChunkedConfig());
  store.SetAuditor(&auditor);
  store.SetTracer(&tracer, tracer.Track(tracer.NewProcess("host"), "store"));

  store.Save("vm", Checkpoint::CaptureFrom(MakeMemory(1)), kSimEpoch);
  const std::size_t events_before = tracer.EventCount();
  const std::uint64_t fp_before = auditor.Fingerprint();
  store.Drop("vm");
  EXPECT_EQ(auditor.Report().checkpoint_drops, 1u);
  EXPECT_NE(auditor.Fingerprint(), fp_before);
  EXPECT_GT(tracer.EventCount(), events_before);  // the drop instant
}

// --- PDES determinism sweep with bit-rot -------------------------------

std::string FleetHost(std::uint32_t site, std::uint32_t host) {
  return "s" + std::to_string(site) + "-h" + std::to_string(host);
}

/// A chunked-store fleet under the worker-count contract: `sites` shards
/// of paired hosts, every host's store running the content-addressed
/// backend with a small SSD tier and a quota tight enough to force GC,
/// plus a per-host fault injector rotting half the checkpoint saves. VMs
/// round-trip (out and back), so the return leg recycles manifests whose
/// serving copies may be rotten. The fingerprint folds the scheduler's
/// combined audit stream with every store's chunk counters in host-name
/// order; any worker-count dependence in pinning, GC sweeps or tier
/// residency diverges it.
std::uint64_t RunChunkedFleet(std::size_t workers, std::uint32_t sites) {
  sim::ShardedSimulator pdes(sites);
  core::Cluster cluster(pdes.Shard(0));
  sim::ShardPlan plan;
  core::HostConfig host_config;
  host_config.retention.disk_quota = MiB(3);
  host_config.store.chunking = true;
  host_config.store.chunk_pages = 2;
  host_config.store.tier.ssd_capacity = KiB(512);
  for (std::uint32_t site = 0; site < sites; ++site) {
    for (std::uint32_t host = 0; host < 2; ++host) {
      host_config.id = FleetHost(site, host);
      cluster.AddHost(host_config);
      plan.Assign(host_config.id, site);
    }
    cluster.Connect(FleetHost(site, 0), FleetHost(site, 1),
                    sim::LinkConfig::Lan());
  }

  // One injector per host store (a store lives on one shard, so no
  // cross-worker feeding): half of all checkpoint saves rot.
  fault::FaultConfig fault_config;
  fault_config.enabled = true;
  fault_config.corrupt_probability = 0.5;
  fault_config.corrupt_pages = 4;
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  for (std::uint32_t site = 0; site < sites; ++site) {
    for (std::uint32_t host = 0; host < 2; ++host) {
      fault_config.seed = 0x20b + site * 2 + host;
      injectors.push_back(
          std::make_unique<fault::FaultInjector>(fault_config));
      cluster.GetHost(FleetHost(site, host))
          .Store()
          .SetFaultInjector(injectors.back().get());
    }
  }

  core::SchedulerConfig sconfig;
  sconfig.workers = workers;
  core::MigrationScheduler scheduler(cluster, pdes, plan, sconfig);

  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;
  std::vector<std::unique_ptr<core::VmInstance>> fleet;
  for (std::uint32_t site = 0; site < sites; ++site) {
    for (std::uint64_t v = 0; v < 2; ++v) {
      fleet.push_back(std::make_unique<core::VmInstance>(
          "vm-" + std::to_string(site * 2 + v), MiB(1),
          vm::ContentMode::kSeedOnly));
      // Both VMs of a site share one content seed: identical images, so
      // their checkpoints dedup against each other in the host's store.
      Xoshiro256 rng(0xc0ffee + site);
      vm::MemoryProfile{}.Apply(fleet.back()->Memory(), rng);
      fleet.back()->SetCurrentHost(FleetHost(site, 0));
      scheduler.Submit(*fleet.back(), FleetHost(site, 1), config);
    }
  }
  const std::size_t out = scheduler.Drain();
  // Return leg: recycle the checkpoints the outbound leg wrote back.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::uint32_t site = static_cast<std::uint32_t>(i / 2);
    scheduler.Submit(*fleet[i], FleetHost(site, 0), config);
  }
  const std::size_t back = scheduler.Drain();
  VEC_CHECK_MSG(out == fleet.size() && back == fleet.size(),
                "chunked fleet: not every VM migrated");

  std::uint64_t fp =
      SplitMix64(scheduler.CombinedFingerprint() ^ (out + back)).Next();
  for (std::uint32_t site = 0; site < sites; ++site) {
    for (std::uint32_t host = 0; host < 2; ++host) {
      const auto& store = cluster.GetHost(FleetHost(site, host)).Store();
      for (const std::uint64_t counter :
           {store.ChunksWritten(), store.ChunksDeduped(),
            store.GcFreedChunks(), store.ResidentChunks(),
            store.TotalChunkRefs(), store.SsdHits(), store.SsdMisses(),
            static_cast<std::uint64_t>(store.FootprintOnDisk().count)}) {
        fp = SplitMix64(fp ^ counter).Next();
      }
    }
  }
  return fp;
}

TEST(ChunkedPdesDeterminism, RotSweepReplaysAtOneFourEightWorkers) {
  audit::ReplayCheck::VerifyWorkers(
      [](std::size_t workers) { return RunChunkedFleet(workers, 4); },
      {1, 4, 8});
}

}  // namespace
}  // namespace vecycle::storage
