// The audit layer: eager causality/wire/checkpoint checks in SimAuditor,
// run-level conservation and end-state-digest audits across the pre-copy
// strategies and post-copy, the VECYCLE_AUDIT environment gate, and the
// ReplayCheck determinism harness (including detection of an injected
// divergence).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "audit/audit.hpp"
#include "audit/replay.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "migration/engine.hpp"
#include "migration/postcopy.hpp"
#include "storage/checkpoint.hpp"
#include "vm/workload.hpp"

namespace vecycle::audit {
namespace {

// --- SimAuditor: eager invariant checks. ---

TEST(SimAuditor, AcceptsMonotonicEventTimes) {
  SimAuditor auditor;
  auditor.OnEventExecuted(Seconds(1.0), 0);
  auditor.OnEventExecuted(Seconds(1.0), 1);  // ties are legal
  auditor.OnEventExecuted(Seconds(2.0), 2);
  EXPECT_EQ(auditor.Report().events_executed, 3u);
}

TEST(SimAuditor, RejectsTimeRunningBackwards) {
  SimAuditor auditor;
  auditor.OnEventExecuted(Seconds(2.0), 0);
  EXPECT_THROW(auditor.OnEventExecuted(Seconds(1.0), 1), CheckFailure);
}

TEST(SimAuditor, RejectsArrivalBeforeDeparture) {
  SimAuditor auditor;
  auditor.OnMessageSent(0, 0, 128, Seconds(1.0), Seconds(1.5));  // fine
  EXPECT_THROW(
      auditor.OnMessageSent(0, 0, 128, Seconds(2.0), Seconds(1.0)),
      CheckFailure);
}

TEST(SimAuditor, RejectsCorruptCheckpoint) {
  SimAuditor auditor;
  auditor.OnCheckpointVerified(true);
  EXPECT_EQ(auditor.Report().checkpoint_verifications, 1u);
  EXPECT_THROW(auditor.OnCheckpointVerified(false), CheckFailure);
}

TEST(SimAuditor, AccountsWireBytesPerChannel) {
  SimAuditor auditor;
  auditor.OnMessageSent(0, 0, 100, kSimEpoch, Seconds(1.0));
  auditor.OnMessageSent(1, 0, 40, kSimEpoch, Seconds(1.0));
  auditor.OnMessageSent(0, 1, 60, Seconds(1.0), Seconds(2.0));
  EXPECT_EQ(auditor.ChannelBytes(0), Bytes{160});
  EXPECT_EQ(auditor.ChannelBytes(1), Bytes{40});
  EXPECT_EQ(auditor.ChannelBytes(7), Bytes{0});
  EXPECT_EQ(auditor.Report().wire_bytes, Bytes{200});
}

TEST(SimAuditor, FingerprintIsOrderSensitive) {
  SimAuditor a;
  a.OnScalar("x", 1);
  a.OnScalar("y", 2);
  SimAuditor b;
  b.OnScalar("y", 2);
  b.OnScalar("x", 1);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

// --- Simulator hook: the auditor observes every executed event. ---

TEST(SimulatorAudit, ObservesEveryExecutedEvent) {
  sim::Simulator simulator;
  SimAuditor auditor;
  simulator.SetAuditor(&auditor);
  for (int i = 0; i < 5; ++i) {
    simulator.Schedule(Seconds(1.0 * (i + 1)), [] {});
  }
  simulator.Run();
  simulator.SetAuditor(nullptr);
  EXPECT_EQ(auditor.Report().events_executed, 5u);
  EXPECT_EQ(simulator.ProcessedEvents(), 5u);
}

// --- End-to-end migration audits. ---

struct TestBed {
  sim::Simulator simulator;
  sim::Link link{sim::LinkConfig::Lan()};
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk src_disk{sim::DiskConfig::Hdd()};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore src_store{src_disk};
  storage::CheckpointStore dst_store{dst_disk};

  migration::MigrationRun MakeRun(vm::GuestMemory& memory,
                                  migration::MigrationConfig config) {
    migration::MigrationRun run;
    run.simulator = &simulator;
    run.link = &link;
    run.direction = sim::Direction::kAtoB;
    run.source_memory = &memory;
    run.source = {&src_cpu, &src_store};
    run.destination = {&dst_cpu, &dst_store};
    run.vm_id = "vm";
    run.config = config;
    return run;
  }
};

vm::GuestMemory RandomMemory(Bytes ram, std::uint64_t seed) {
  vm::GuestMemory memory(ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(memory, rng);
  return memory;
}

/// Runs one audited return migration (stale checkpoint + departure
/// metadata at the destination, churn in between) under `strategy`.
migration::MigrationOutcome RunAuditedReturnMigration(
    migration::Strategy strategy, SimAuditor* auditor = nullptr,
    std::uint64_t memory_seed = 11, double churn_rate = 200.0) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), memory_seed);

  const auto departure_generations = memory.Generations();
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);

  vm::UniformRandomWorkload churn(churn_rate, 99);
  churn.Advance(memory, Seconds(10.0));

  migration::MigrationConfig config;
  config.strategy = strategy;
  config.audit = true;
  auto run = bed.MakeRun(memory, config);
  run.departure_generations = departure_generations;
  run.auditor = auditor;
  return migration::RunMigration(std::move(run));
}

class AuditedStrategies
    : public ::testing::TestWithParam<migration::Strategy> {};

TEST_P(AuditedStrategies, ConservationAndDigestAuditsRunGreen) {
  // A violation of any audited invariant (page conservation, wire-byte
  // conservation, end-state digest, causality, checkpoint integrity)
  // would throw CheckFailure out of RunMigration/TakeOutcome.
  const auto outcome = RunAuditedReturnMigration(GetParam());
  EXPECT_GT(outcome.stats.tx_bytes.count, 0u);
}

TEST_P(AuditedStrategies, ColdFirstVisitAuditsRunGreen) {
  // No checkpoint at the destination: every strategy degrades to a full
  // first round and the audits must still balance.
  TestBed bed;
  auto memory = RandomMemory(MiB(4), 21);
  migration::MigrationConfig config;
  config.strategy = GetParam();
  config.audit = true;
  const auto outcome =
      migration::RunMigration(bed.MakeRun(memory, config));
  EXPECT_EQ(outcome.stats.Round1Pages(), memory.PageCount());
}

INSTANTIATE_TEST_SUITE_P(
    FirstRoundStrategies, AuditedStrategies,
    ::testing::Values(migration::Strategy::kFull,
                      migration::Strategy::kHashes,
                      migration::Strategy::kDirtyTracking,
                      migration::Strategy::kHashesPlusDedup),
    [](const ::testing::TestParamInfo<migration::Strategy>& info) {
      switch (info.param) {
        case migration::Strategy::kFull:
          return "Full";
        case migration::Strategy::kHashes:
          return "Hashes";
        case migration::Strategy::kDirtyTracking:
          return "Dirty";
        case migration::Strategy::kHashesPlusDedup:
          return "Combined";
        default:
          return "Other";
      }
    });

TEST(MigrationAudit, ExternalAuditorObservesTheRun) {
  SimAuditor auditor;
  RunAuditedReturnMigration(migration::Strategy::kHashes, &auditor);
  const auto& report = auditor.Report();
  EXPECT_GT(report.events_executed, 0u);
  EXPECT_GT(report.messages_sent, 0u);
  EXPECT_GT(report.wire_bytes.count, 0u);
  // The stale checkpoint was loaded (and re-verified) during setup.
  EXPECT_GE(report.checkpoint_verifications, 1u);
  // Finalize folded outcome stats into the stream.
  EXPECT_GT(report.scalars_recorded, 0u);
}

TEST(MigrationAudit, AuditorDetachesFromSharedResources) {
  TestBed bed;
  auto memory = RandomMemory(MiB(2), 5);
  migration::MigrationConfig config;
  config.audit = true;
  migration::RunMigration(bed.MakeRun(memory, config));
  // The session-private auditor is gone; shared resources must not keep
  // a dangling pointer to it.
  EXPECT_EQ(bed.simulator.Auditor(), nullptr);
  EXPECT_EQ(bed.dst_store.Auditor(), nullptr);
}

TEST(MigrationAudit, EnvVariableEnablesAuditing) {
  ASSERT_EQ(setenv("VECYCLE_AUDIT", "1", /*overwrite=*/1), 0);
  EXPECT_TRUE(EnvEnabled());
  // config.audit stays false; the env gate alone must arm the layer, and
  // the audited run must pass.
  TestBed bed;
  auto memory = RandomMemory(MiB(2), 6);
  migration::MigrationConfig config;
  ASSERT_FALSE(config.audit);
  migration::RunMigration(bed.MakeRun(memory, config));
  ASSERT_EQ(unsetenv("VECYCLE_AUDIT"), 0);
  EXPECT_FALSE(EnvEnabled());
}

TEST(MigrationAudit, EnvParsingMatchesDocumentedValues) {
  for (const char* on : {"1", "true", "TRUE", "on", "yes"}) {
    ASSERT_EQ(setenv("VECYCLE_AUDIT", on, 1), 0);
    EXPECT_TRUE(EnvEnabled()) << on;
  }
  for (const char* off : {"0", "false", "off", "no", ""}) {
    ASSERT_EQ(setenv("VECYCLE_AUDIT", off, 1), 0);
    EXPECT_FALSE(EnvEnabled()) << off;
  }
  ASSERT_EQ(unsetenv("VECYCLE_AUDIT"), 0);
}

// --- Post-copy audits. ---

TEST(PostCopyAudit, ResidencyConservationAndDigestRunGreen) {
  sim::Simulator simulator;
  sim::Link link{sim::LinkConfig::Lan()};
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk dst_disk{sim::DiskConfig::Ssd()};
  storage::CheckpointStore dst_store{dst_disk};

  auto memory = RandomMemory(MiB(8), 31);
  dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory), kSimEpoch);
  vm::UniformRandomWorkload churn(200.0, 7);
  churn.Advance(memory, Seconds(5.0));

  SimAuditor auditor;
  migration::PostCopyRun run;
  run.simulator = &simulator;
  run.link = &link;
  run.source_memory = &memory;
  run.source_cpu = &src_cpu;
  run.dest_cpu = &dst_cpu;
  run.dest_store = &dst_store;
  run.auditor = &auditor;
  const auto outcome = migration::RunPostCopyMigration(std::move(run));

  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_EQ(outcome.stats.pages_from_checkpoint +
                outcome.stats.pages_prefetched +
                outcome.stats.remote_faults,
            memory.PageCount());
  EXPECT_GT(auditor.Report().events_executed, 0u);
  EXPECT_EQ(simulator.Auditor(), nullptr);  // detached on completion
}

// --- Determinism harness. ---

/// One full audited return migration as a ReplayCheck scenario; the
/// memory seed parameterizes injected divergence.
std::uint64_t MigrationScenario(SimAuditor& auditor,
                                std::uint64_t memory_seed) {
  TestBed bed;
  auto memory = RandomMemory(MiB(4), memory_seed);
  const auto departure_generations = memory.Generations();
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  vm::UniformRandomWorkload churn(150.0, 42);
  churn.Advance(memory, Seconds(8.0));

  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);
  run.departure_generations = departure_generations;
  run.auditor = &auditor;
  const auto outcome = migration::RunMigration(std::move(run));
  return outcome.stats.tx_bytes.count ^ (outcome.stats.rounds * 0x9e37ull);
}

TEST(ReplayCheck, IdenticalRunsAreDeterministic) {
  const auto result = ReplayCheck::Compare(
      [](SimAuditor& auditor) { return MigrationScenario(auditor, 17); });
  EXPECT_TRUE(result.Deterministic());
  EXPECT_NO_THROW(ReplayCheck::Verify(
      [](SimAuditor& auditor) { return MigrationScenario(auditor, 17); }));
}

TEST(ReplayCheck, DetectsInjectedDivergence) {
  // A scenario with hidden mutable state — exactly the bug class the
  // harness exists to catch (unseeded RNGs, leftover statics).
  std::uint64_t calls = 0;
  const ReplayCheck::Scenario diverging = [&calls](SimAuditor& auditor) {
    return MigrationScenario(auditor, 100 + calls++);
  };
  const auto result = ReplayCheck::Compare(diverging);
  EXPECT_FALSE(result.Deterministic());

  calls = 0;
  EXPECT_THROW(ReplayCheck::Verify(diverging), CheckFailure);
}

/// MigrationScenario with the source digest cache toggled and external
/// trace/metrics sinks attached.
std::uint64_t CachedMigrationScenario(SimAuditor& auditor, bool cache,
                                      obs::TraceRecorder& tracer,
                                      obs::MetricsRegistry& metrics) {
  TestBed bed;
  auto memory = RandomMemory(MiB(4), 17);
  memory.SetDigestCacheEnabled(cache);
  const auto departure_generations = memory.Generations();
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  vm::UniformRandomWorkload churn(150.0, 42);
  churn.Advance(memory, Seconds(8.0));

  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);
  run.departure_generations = departure_generations;
  run.auditor = &auditor;
  run.tracer = &tracer;
  run.metrics = &metrics;
  const auto outcome = migration::RunMigration(std::move(run));
  return outcome.stats.tx_bytes.count ^ (outcome.stats.rounds * 0x9e37ull);
}

TEST(ReplayCheck, DigestCachingInvisibleToAuditAndObservability) {
  // Digest memoization must be a pure wall-clock optimization: the audit
  // fingerprint (every event, message, and scalar) and the exported
  // trace/metrics must be byte-identical with the caches on and off.
  SimAuditor cached_auditor;
  SimAuditor uncached_auditor;
  obs::TraceRecorder cached_trace;
  obs::TraceRecorder uncached_trace;
  obs::MetricsRegistry cached_metrics;
  obs::MetricsRegistry uncached_metrics;

  const auto cached_fp = CachedMigrationScenario(
      cached_auditor, /*cache=*/true, cached_trace, cached_metrics);
  const auto uncached_fp = CachedMigrationScenario(
      uncached_auditor, /*cache=*/false, uncached_trace, uncached_metrics);

  EXPECT_EQ(cached_fp, uncached_fp);
  EXPECT_EQ(cached_auditor.Fingerprint(), uncached_auditor.Fingerprint());
  EXPECT_EQ(cached_trace.ChromeTraceJson(), uncached_trace.ChromeTraceJson());
  EXPECT_EQ(cached_metrics.ToJson("test"), uncached_metrics.ToJson("test"));
}

TEST(ReplayCheck, DetectsDivergenceInStatsAlone) {
  // Even with an empty event stream, a diverging scenario-returned stat
  // fingerprint must fail the check.
  std::uint64_t calls = 0;
  const auto result =
      ReplayCheck::Compare([&calls](SimAuditor&) { return calls++; });
  EXPECT_FALSE(result.Deterministic());
}

}  // namespace
}  // namespace vecycle::audit
