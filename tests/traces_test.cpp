// Machine registry (Table 1) and trace synthesis: determinism, schedule
// behaviour, and calibration against the observables the paper publishes
// (Fig. 1 similarity decay, Fig. 4 duplicate/zero fractions, §2.3 trace
// counts). Calibration tests run at reduced page counts for speed — the
// statistics are scale-free.
#include <gtest/gtest.h>

#include "analysis/binning.hpp"
#include "common/check.hpp"
#include "traces/machine_spec.hpp"
#include "traces/synthesizer.hpp"

namespace vecycle::traces {
namespace {

MachineSpec Scaled(MachineSpec spec, std::uint64_t pages = 8192) {
  spec.model_pages = pages;
  return spec;
}

double MeanSimilarityAt(const fp::Trace& trace, double hours) {
  analysis::SimilarityDecayOptions options;
  options.max_delta = Hours(hours + 1.0);
  options.max_pairs_per_bin = 64;
  const auto decay = analysis::SimilarityDecay(trace, options);
  double value = -1.0;
  for (const auto& bin : decay) {
    if (ToSeconds(bin.center) <= hours * 3600.0 + 1.0) value = bin.mean;
  }
  VEC_CHECK(value >= 0.0);
  return value;
}

double MeanDuplicateFraction(const fp::Trace& trace) {
  const auto series = analysis::ComputeComposition(trace);
  double sum = 0.0;
  for (const double d : series.duplicate_fraction) sum += d;
  return sum / static_cast<double>(series.duplicate_fraction.size());
}

// --- Registry (Table 1). ---

TEST(MachineRegistry, Table1HasSixEvaluatedMachines) {
  const auto machines = Table1Machines();
  ASSERT_EQ(machines.size(), 6u);
  EXPECT_EQ(machines[0].name, "Server A");
  EXPECT_EQ(machines[0].nominal_ram, GiB(1));
  EXPECT_EQ(machines[1].nominal_ram, GiB(4));
  EXPECT_EQ(machines[2].nominal_ram, GiB(8));
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(machines[i].os, "OSX");
    EXPECT_EQ(machines[i].nominal_ram, GiB(2));
  }
}

TEST(MachineRegistry, AllRegistryEntriesValidate) {
  for (const auto& m : Table1AllMachines()) EXPECT_NO_THROW(m.Validate());
  for (const auto& m : CrawlerMachines()) EXPECT_NO_THROW(m.Validate());
  EXPECT_NO_THROW(DesktopMachine().Validate());
}

TEST(MachineRegistry, TraceIdsMatchTable1) {
  EXPECT_EQ(FindMachine("Server A").trace_id, "00065BEE5AA7");
  EXPECT_EQ(FindMachine("Server B").trace_id, "00188B30D847");
  EXPECT_EQ(FindMachine("Server C").trace_id, "001E4F36E2FB");
  EXPECT_EQ(FindMachine("Laptop A").trace_id, "001B6333F86A");
}

TEST(MachineRegistry, FindUnknownMachineThrows) {
  EXPECT_THROW(FindMachine("Server Z"), CheckFailure);
}

TEST(MachineSpec, ValidateCatchesBadWeights) {
  auto spec = Table1Machines()[0];
  spec.regions.push_back({0.5, Hours(1)});
  EXPECT_THROW(spec.Validate(), CheckFailure);
}

// --- Synthesis mechanics. ---

TEST(TraceSynthesizer, IsDeterministic) {
  const auto spec = Scaled(Table1Machines()[0], 2048);
  const auto a = SynthesizeTrace(spec);
  const auto b = SynthesizeTrace(spec);
  ASSERT_EQ(a.Size(), b.Size());
  for (std::size_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(a.At(i).PageHashes(), b.At(i).PageHashes());
  }
}

TEST(TraceSynthesizer, DifferentSeedsGiveDifferentTraces) {
  auto spec = Scaled(Table1Machines()[0], 2048);
  const auto a = SynthesizeTrace(spec);
  spec.seed ^= 0xffff;
  const auto b = SynthesizeTrace(spec);
  EXPECT_NE(a.At(1).PageHashes(), b.At(1).PageHashes());
}

TEST(TraceSynthesizer, ServerTraceHasFullFingerprintCount) {
  // 7 days at 30 min: 336 steps + the t=0 capture.
  const auto trace = SynthesizeTrace(Scaled(Table1Machines()[0], 2048));
  EXPECT_EQ(trace.Size(), 337u);
}

TEST(TraceSynthesizer, CrawlerTraceHas4DaysOfFingerprints) {
  const auto trace = SynthesizeTrace(Scaled(CrawlerMachines()[0], 2048));
  EXPECT_EQ(trace.Size(), 193u);  // §2.3: 192 intervals over 4 days
}

TEST(TraceSynthesizer, DesktopTraceCovers19Days) {
  const auto trace = SynthesizeTrace(Scaled(DesktopMachine(), 2048));
  EXPECT_EQ(trace.Size(), 913u);  // §4.6: 912 intervals over 19 days
}

TEST(TraceSynthesizer, LaptopsMissFingerprintsWhenPoweredOff) {
  // §2.3: laptops yielded only 151-205 of the 336 possible fingerprints.
  const auto trace = SynthesizeTrace(Scaled(Table1Machines()[3], 2048));
  EXPECT_LT(trace.Size(), 280u);
  EXPECT_GT(trace.Size(), 120u);
}

TEST(TraceSynthesizer, MemoryChangesOverTime) {
  const auto trace = SynthesizeTrace(Scaled(Table1Machines()[0], 2048));
  EXPECT_NE(trace.At(0).PageHashes(), trace.At(48).PageHashes());
}

TEST(TraceSynthesizer, PowerOffFreezesMemory) {
  auto spec = Scaled(Table1Machines()[3], 2048);  // laptop
  TraceSynthesizer synth(spec);
  // Drive steps until we observe an off interval; memory must not change
  // across it.
  for (int i = 0; i < 400; ++i) {
    const auto writes_before = synth.Memory().TotalWrites();
    synth.Step();
    if (!synth.PoweredOn()) {
      EXPECT_EQ(synth.Memory().TotalWrites(), writes_before);
      return;
    }
  }
  FAIL() << "laptop never powered off in 400 steps";
}

// --- Calibration against the paper's observables. ---

TEST(Calibration, ServerBSimilarityAt24hNearPaper) {
  // §2.3: "the average similarity after 24 hours is between 40% (Server
  // B) and 20% (Server C)".
  const auto trace = SynthesizeTrace(Scaled(Table1Machines()[1]));
  EXPECT_NEAR(MeanSimilarityAt(trace, 24.0), 0.40, 0.09);
}

TEST(Calibration, ServerCSimilarityAt24hNearPaper) {
  const auto trace = SynthesizeTrace(Scaled(Table1Machines()[2]));
  EXPECT_NEAR(MeanSimilarityAt(trace, 24.0), 0.20, 0.08);
}

TEST(Calibration, CrawlerDropsBelow20PercentWithin5Hours) {
  // §2.3: crawlers average ~40% after one hour, below 20% after five.
  const auto trace = SynthesizeTrace(Scaled(CrawlerMachines()[0]));
  EXPECT_NEAR(MeanSimilarityAt(trace, 1.0), 0.45, 0.12);
  EXPECT_LT(MeanSimilarityAt(trace, 5.0), 0.25);
}

TEST(Calibration, SimilarityDecaysMonotonicallyOnAverage) {
  const auto trace = SynthesizeTrace(Scaled(Table1Machines()[0]));
  const double s1 = MeanSimilarityAt(trace, 1.0);
  const double s6 = MeanSimilarityAt(trace, 6.0);
  const double s24 = MeanSimilarityAt(trace, 24.0);
  EXPECT_GT(s1, s6);
  EXPECT_GT(s6, s24);
  EXPECT_GT(s24, 0.1);  // never collapses: the stable core remains
}

TEST(Calibration, ServerDuplicateFractionsMatchFig4) {
  // Fig. 4: Server A ~5%, Server C ~20%.
  const auto a = SynthesizeTrace(Scaled(Table1Machines()[0]));
  const auto c = SynthesizeTrace(Scaled(Table1Machines()[2]));
  EXPECT_NEAR(MeanDuplicateFraction(a), 0.07, 0.03);
  EXPECT_NEAR(MeanDuplicateFraction(c), 0.20, 0.04);
}

TEST(Calibration, ZeroPagesStayBelowFivePercentForServers) {
  // Fig. 4 right: zero pages "stable and low at less than 5%".
  for (int i = 0; i < 3; ++i) {
    const auto trace = SynthesizeTrace(Scaled(Table1Machines()[static_cast<std::size_t>(i)]));
    const auto series = analysis::ComputeComposition(trace);
    double sum = 0.0;
    for (const double z : series.zero_fraction) sum += z;
    EXPECT_LT(sum / static_cast<double>(series.zero_fraction.size()), 0.05);
  }
}

TEST(Calibration, DesktopStaysHighlySimilarOverNight) {
  // §4.6 implies the overnight (idle) interval barely degrades the
  // checkpoint: 16-hour deltas must stay well above the crawler regime.
  const auto trace = SynthesizeTrace(Scaled(DesktopMachine()));
  EXPECT_GT(MeanSimilarityAt(trace, 16.0), 0.6);
}

}  // namespace
}  // namespace vecycle::traces
