// Digest algorithms verified against their specifications: MD5 against the
// RFC 1321 appendix test suite, SHA-1 against RFC 3174 / FIPS 180 vectors,
// FNV-1a against published reference values, plus incremental-update and
// boundary-condition behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "digest/digest.hpp"
#include "digest/digest_set.hpp"
#include "digest/fnv.hpp"
#include "digest/hasher.hpp"
#include "digest/md5.hpp"
#include "digest/sha1.hpp"
#include "digest/sha256.hpp"

namespace vecycle {
namespace {

std::string Md5Hex(const std::string& input) {
  return Md5Digest(input.data(), input.size()).ToHex();
}

// --- MD5: the complete RFC 1321 appendix A.5 test suite. ---

TEST(Md5, Rfc1321EmptyString) {
  EXPECT_EQ(Md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(Md5, Rfc1321SingleChar) {
  EXPECT_EQ(Md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
}

TEST(Md5, Rfc1321Abc) {
  EXPECT_EQ(Md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, Rfc1321MessageDigest) {
  EXPECT_EQ(Md5Hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
}

TEST(Md5, Rfc1321Alphabet) {
  EXPECT_EQ(Md5Hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5, Rfc1321AlphaNumeric) {
  EXPECT_EQ(
      Md5Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(Md5, Rfc1321Digits) {
  EXPECT_EQ(Md5Hex("1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

// --- MD5: implementation mechanics. ---

TEST(Md5, IncrementalUpdateMatchesOneShot) {
  const std::string input =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "several 64-byte block boundaries in this message.";
  Md5 incremental;
  // Feed in awkward chunk sizes to exercise buffer-fill paths.
  std::size_t offset = 0;
  const std::size_t chunks[] = {1, 3, 7, 13, 31, 64, 100};
  std::size_t chunk_index = 0;
  while (offset < input.size()) {
    const std::size_t len =
        std::min(chunks[chunk_index++ % 7], input.size() - offset);
    incremental.Update(input.data() + offset, len);
    offset += len;
  }
  EXPECT_EQ(incremental.Finalize(), Md5Digest(input.data(), input.size()));
}

TEST(Md5, ExactBlockBoundaryInputs) {
  // 55/56/57 bytes straddle the padding cutover; 64/65 straddle a block.
  for (const std::size_t size : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    const std::string input(size, 'x');
    Md5 a;
    a.Update(input.data(), input.size());
    EXPECT_EQ(a.Finalize(), Md5Digest(input.data(), input.size()))
        << "size=" << size;
  }
}

TEST(Md5, FinalizeTwiceThrows) {
  Md5 md5;
  md5.Update("x", 1);
  (void)md5.Finalize();
  EXPECT_THROW((void)md5.Finalize(), CheckFailure);
}

TEST(Md5, UpdateAfterFinalizeThrows) {
  Md5 md5;
  (void)md5.Finalize();
  EXPECT_THROW(md5.Update("x", 1), CheckFailure);
}

TEST(Md5, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md5Hex("hello"), Md5Hex("hellp"));
  EXPECT_NE(Md5Hex("hello"), Md5Hex("hello "));
}

// --- SHA-1: RFC 3174 / FIPS 180-1 vectors (full 160-bit state). ---

std::string Sha1FullHex(const std::string& input) {
  Sha1 sha;
  sha.Update(input.data(), input.size());
  const auto words = sha.FinalizeFull();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%08x%08x%08x%08x%08x", words[0], words[1],
                words[2], words[3], words[4]);
  return buf;
}

TEST(Sha1, FipsAbc) {
  EXPECT_EQ(Sha1FullHex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, FipsTwoBlockMessage) {
  EXPECT_EQ(
      Sha1FullHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, EmptyString) {
  EXPECT_EQ(Sha1FullHex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 sha;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.Update(chunk.data(), chunk.size());
  const auto words = sha.FinalizeFull();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%08x%08x%08x%08x%08x", words[0], words[1],
                words[2], words[3], words[4]);
  EXPECT_STREQ(buf, "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, TruncatedDigestMatchesLeading128Bits) {
  const std::string input = "abc";
  const Digest128 truncated = Sha1Digest(input.data(), input.size());
  EXPECT_EQ(truncated.ToHex(), "a9993e364706816aba3e25717850c26c");
}

// --- SHA-256: FIPS 180-4 / NIST vectors. ---

std::string Sha256FullHex(const std::string& input) {
  Sha256 sha;
  sha.Update(input.data(), input.size());
  const auto words = sha.FinalizeFull();
  std::string out;
  char buf[16];
  for (const auto w : words) {
    std::snprintf(buf, sizeof(buf), "%08x", w);
    out += buf;
  }
  return out;
}

TEST(Sha256, NistAbc) {
  EXPECT_EQ(Sha256FullHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, NistEmptyString) {
  EXPECT_EQ(Sha256FullHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, NistTwoBlockMessage) {
  EXPECT_EQ(Sha256FullHex(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 sha;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.Update(chunk.data(), chunk.size());
  const auto words = sha.FinalizeFull();
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%08x%08x%08x%08x%08x%08x%08x%08x",
                words[0], words[1], words[2], words[3], words[4], words[5],
                words[6], words[7]);
  EXPECT_STREQ(
      buf, "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, TruncatedDigestMatchesLeading128Bits) {
  const std::string input = "abc";
  const Digest128 truncated = Sha256Digest(input.data(), input.size());
  EXPECT_EQ(truncated.ToHex(), "ba7816bf8f01cfea414140de5dae2223");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string input(173, 'z');
  Sha256 sha;
  sha.Update(input.data(), 100);
  sha.Update(input.data() + 100, 73);
  EXPECT_EQ(sha.Finalize(), Sha256Digest(input.data(), input.size()));
}

// --- FNV-1a: published reference values. ---

TEST(Fnv, ReferenceValues) {
  // Offset basis: hash of the empty string.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
  const char a = 'a';
  EXPECT_EQ(Fnv1a64(reinterpret_cast<const std::uint8_t*>(&a), 1),
            0xaf63dc4c8601ec8cull);
  const std::string foobar = "foobar";
  EXPECT_EQ(Fnv1a64(reinterpret_cast<const std::uint8_t*>(foobar.data()),
                    foobar.size()),
            0x85944171f73967e8ull);
}

TEST(Fnv, DigestWidening) {
  const std::string input = "foobar";
  const Digest128 d = FnvDigest(input.data(), input.size());
  EXPECT_EQ(d.words[0], 0x85944171f73967e8ull);
  EXPECT_EQ(d.words[1], 0u);
}

// --- Digest128 value-type behaviour. ---

TEST(Digest128, OrderingIsLexicographicOnWords) {
  const auto a = Digest128::FromWords(1, 0);
  const auto b = Digest128::FromWords(1, 1);
  const auto c = Digest128::FromWords(2, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, Digest128::FromWords(1, 0));
}

TEST(Digest128, HexRendering) {
  const auto d = Digest128::FromWords(0x0123456789abcdefull, 0xfedcba9876543210ull);
  EXPECT_EQ(d.ToHex(), "0123456789abcdeffedcba9876543210");
}

TEST(Digest128, StdHashSpreadsValues) {
  const auto a = std::hash<Digest128>{}(Digest128::FromWords(1, 2));
  const auto b = std::hash<Digest128>{}(Digest128::FromWords(2, 1));
  EXPECT_NE(a, b);
}

// --- Algorithm dispatch. ---

TEST(Hasher, DispatchMatchesDirectCalls) {
  const std::string input = "dispatch me";
  EXPECT_EQ(ComputeDigest(DigestAlgorithm::kMd5, input.data(), input.size()),
            Md5Digest(input.data(), input.size()));
  EXPECT_EQ(ComputeDigest(DigestAlgorithm::kSha1, input.data(), input.size()),
            Sha1Digest(input.data(), input.size()));
  EXPECT_EQ(
      ComputeDigest(DigestAlgorithm::kSha256, input.data(), input.size()),
      Sha256Digest(input.data(), input.size()));
  EXPECT_EQ(ComputeDigest(DigestAlgorithm::kFnv1a, input.data(), input.size()),
            FnvDigest(input.data(), input.size()));
}

TEST(Hasher, WireSizes) {
  EXPECT_EQ(WireSizeBytes(DigestAlgorithm::kMd5), 16u);
  EXPECT_EQ(WireSizeBytes(DigestAlgorithm::kSha1), 16u);
  EXPECT_EQ(WireSizeBytes(DigestAlgorithm::kSha256), 16u);
  EXPECT_EQ(WireSizeBytes(DigestAlgorithm::kFnv1a), 8u);
}

TEST(Hasher, AlgorithmNames) {
  EXPECT_STREQ(ToString(DigestAlgorithm::kMd5), "md5");
  EXPECT_STREQ(ToString(DigestAlgorithm::kSha1), "sha1");
  EXPECT_STREQ(ToString(DigestAlgorithm::kSha256), "sha256");
  EXPECT_STREQ(ToString(DigestAlgorithm::kFnv1a), "fnv1a");
}

TEST(Hasher, UnenumeratedAlgorithmFailsLoudly) {
  // A zero digest for an unknown algorithm (the old fallback) would make
  // every page "match" every other; this must be a hard failure instead.
  const auto bogus = static_cast<DigestAlgorithm>(42);
  const std::string input = "x";
  EXPECT_THROW(ComputeDigest(bogus, input.data(), input.size()),
               CheckFailure);
  EXPECT_THROW(ToString(bogus), CheckFailure);
}

// --- Padding-boundary inputs across all algorithms. ---
//
// Both MD5 and SHA pad to a 64-byte block with an 8-byte (MD5/SHA-1/
// SHA-256) length trailer, so 55/56 straddle the one-vs-two-block padding
// decision and 63/64/65 straddle the block boundary itself. Reference
// digests computed with Python hashlib (SHA digests truncated to their
// leading 128 bits, matching Digest128).

struct BoundaryVector {
  std::size_t length;
  const char* md5;
  const char* sha1;
  const char* sha256;
};

constexpr BoundaryVector kBoundaryVectors[] = {
    {0, "d41d8cd98f00b204e9800998ecf8427e",
     "da39a3ee5e6b4b0d3255bfef95601890",
     "e3b0c44298fc1c149afbf4c8996fb924"},
    {55, "04364420e25c512fd958a70738aa8f72",
     "cef734ba81a024479e09eb5a75b6ddae",
     "d5e285683cd4efc02d021a5c62014694"},
    {56, "668a72d5ba17f08e62dabcafad6db14b",
     "901305367c259952f4e7af8323f480d5",
     "04c26261370ee7541549d16dee320c72"},
    {63, "7dc2ca208106a2f703567bdff99d8981",
     "0ddc4e0cccd9a12850deb5abb0853a44",
     "75220b47218278e656f2013bb8f0c455"},
    {64, "c1bb4f81d892b2d57947682aeb252456",
     "bb2fa3ee7afb9f54c6dfb5d021f14b1f",
     "7ce100971f64e7001e8fe5a51973ecdf"},
    {65, "1bc932052302d074bdec39795fe00cf6",
     "78c741ddc482e4cdf8c474a0876347a0",
     "9537c5fdf120482f7d58d25e9ed583f5"},
};

TEST(PaddingBoundaries, AllAlgorithmsMatchReferenceDigests) {
  for (const auto& v : kBoundaryVectors) {
    const std::string input(v.length, 'x');
    EXPECT_EQ(
        ComputeDigest(DigestAlgorithm::kMd5, input.data(), input.size())
            .ToHex(),
        v.md5)
        << "md5 length " << v.length;
    EXPECT_EQ(
        ComputeDigest(DigestAlgorithm::kSha1, input.data(), input.size())
            .ToHex(),
        v.sha1)
        << "sha1 length " << v.length;
    EXPECT_EQ(
        ComputeDigest(DigestAlgorithm::kSha256, input.data(), input.size())
            .ToHex(),
        v.sha256)
        << "sha256 length " << v.length;
  }
}

TEST(PaddingBoundaries, IncrementalSplitsAgreeAtEveryBoundary) {
  // The same inputs fed through Update() in two pieces at every split
  // point must reproduce the one-shot digest.
  const std::string input(65, 'x');
  for (std::size_t split : {0u, 1u, 55u, 56u, 63u, 64u, 65u}) {
    Md5 md5;
    md5.Update(input.data(), split);
    md5.Update(input.data() + split, input.size() - split);
    EXPECT_EQ(md5.Finalize().ToHex(), kBoundaryVectors[5].md5)
        << "split " << split;
  }
}

// --- DigestSet: flat O(1) membership vs the sorted-vector baseline. ---

std::vector<Digest128> RandomCorpus(std::uint64_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Digest128> corpus;
  corpus.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    corpus.push_back(Digest128::FromWords(rng.Next(), rng.Next()));
  }
  return corpus;
}

TEST(DigestSet, EmptySetContainsNothing) {
  const DigestSet set{std::vector<Digest128>{}};
  EXPECT_TRUE(set.Empty());
  EXPECT_EQ(set.Size(), 0u);
  EXPECT_FALSE(set.Contains(Digest128::FromWords(1, 2)));
  const DigestSet default_constructed;
  EXPECT_FALSE(default_constructed.Contains(Digest128::FromWords(1, 2)));
}

TEST(DigestSet, AgreesWithBinarySearchOnRandomCorpus) {
  const auto corpus = RandomCorpus(5000, 0xd1d1);
  auto sorted = corpus;
  std::sort(sorted.begin(), sorted.end());
  const DigestSet set(corpus);

  for (const auto& digest : corpus) {
    EXPECT_TRUE(set.Contains(digest));
  }
  // Random probes (overwhelmingly non-members) must give the same answer
  // binary search over the sorted list gives.
  for (const auto& probe : RandomCorpus(2000, 0xfeed)) {
    EXPECT_EQ(set.Contains(probe),
              std::binary_search(sorted.begin(), sorted.end(), probe));
  }
}

TEST(DigestSet, LowWordCollisionsDoNotConfuseMembership) {
  // Every digest here shares the low 64 bits the probe hash is derived
  // from; only the full-digest comparison in the slot can tell them
  // apart. Members must be found, the absent sibling must not.
  constexpr std::uint64_t kSharedLow = 0x1234567812345678ull;
  std::vector<Digest128> corpus;
  for (std::uint64_t hi = 0; hi < 257; ++hi) {
    corpus.push_back(Digest128::FromWords(hi, kSharedLow));
  }
  const DigestSet set(corpus);
  for (const auto& digest : corpus) {
    EXPECT_TRUE(set.Contains(digest));
  }
  EXPECT_FALSE(set.Contains(Digest128::FromWords(999, kSharedLow)));
  EXPECT_FALSE(set.Contains(Digest128::FromWords(0, kSharedLow + 1)));
}

TEST(DigestSet, DeduplicatesAndSortsBack) {
  auto corpus = RandomCorpus(1000, 0xabcd);
  auto with_dups = corpus;
  with_dups.insert(with_dups.end(), corpus.begin(), corpus.end());
  const DigestSet set(with_dups);
  EXPECT_EQ(set.Size(), corpus.size());

  std::sort(corpus.begin(), corpus.end());
  EXPECT_EQ(set.ToSortedVector(), corpus);
}

TEST(DigestSet, InternalEmptyMarkerValueIsStorable) {
  // The implementation reserves one arbitrary 128-bit value as its
  // free-slot marker; storing exactly that value must still work.
  const auto marker =
      Digest128::FromWords(0x9d5c6fabe17c4e2bull, 0x3f84a1d0c2b96e57ull);
  std::vector<Digest128> corpus = RandomCorpus(16, 0x11);
  corpus.push_back(marker);
  corpus.push_back(marker);  // duplicate of the marker too
  const DigestSet set(corpus);
  EXPECT_TRUE(set.Contains(marker));
  EXPECT_EQ(set.Size(), 17u);
  auto sorted = RandomCorpus(16, 0x11);
  sorted.push_back(marker);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(set.ToSortedVector(), sorted);
}

}  // namespace
}  // namespace vecycle
