// Every public Validate() rejects each invalid field with a CheckFailure
// whose message names the field distinctly — so a failing configuration
// points at the exact mistake, not a generic "invalid config".
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/cluster.hpp"
#include "core/host.hpp"
#include "migration/config.hpp"
#include "migration/engine.hpp"
#include "migration/postcopy.hpp"
#include "core/scheduler.hpp"
#include "policy/placement.hpp"
#include "policy/policies.hpp"
#include "policy/scenario.hpp"
#include "sim/checksum_engine.hpp"
#include "sim/disk.hpp"
#include "sim/link.hpp"
#include "storage/checkpoint_store.hpp"
#include "vm/cycle_detector.hpp"
#include "vm/workload.hpp"

namespace vecycle {
namespace {

/// Runs `mutate` on a default config, validates, and returns the
/// CheckFailure message — failing the test if nothing was thrown or the
/// message lacks `expected` substring.
template <typename Config>
std::string RejectionMessage(const std::function<void(Config&)>& mutate,
                             const std::string& expected) {
  Config config;
  mutate(config);
  try {
    config.Validate();
  } catch (const CheckFailure& failure) {
    const std::string what = failure.what();
    EXPECT_NE(what.find(expected), std::string::npos)
        << "message \"" << what << "\" does not mention \"" << expected
        << '"';
    return what;
  }
  ADD_FAILURE() << "Validate() accepted a config that should fail: "
                << expected;
  return {};
}

/// Asserts all collected rejection messages are pairwise distinct.
void ExpectDistinct(const std::vector<std::string>& messages) {
  const std::set<std::string> unique(messages.begin(), messages.end());
  EXPECT_EQ(unique.size(), messages.size())
      << "two invalid fields produce the same diagnostic";
}

TEST(MigrationConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using migration::MigrationConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<MigrationConfig>(
      [](auto& c) { c.batch_pages = 0; }, "batch_pages must be positive"));
  messages.push_back(RejectionMessage<MigrationConfig>(
      [](auto& c) { c.max_rounds = 1; },
      "need at least one copy + one stop round"));
  messages.push_back(RejectionMessage<MigrationConfig>(
      [](auto& c) { c.query_window = 0; }, "query_window must be positive"));
  messages.push_back(RejectionMessage<MigrationConfig>(
      [](auto& c) { c.compression.mean_ratio = 0.0; },
      "compression mean_ratio must be in (0, 1]"));
  messages.push_back(RejectionMessage<MigrationConfig>(
      [](auto& c) { c.compression.ratio_jitter = -0.1; },
      "compression ratio_jitter must be in [0, 1]"));
  messages.push_back(RejectionMessage<MigrationConfig>(
      [](auto& c) { c.compression.compress_rate = MiBPerSecond(0.0); },
      "compression compress_rate must be positive"));
  messages.push_back(RejectionMessage<MigrationConfig>(
      [](auto& c) { c.compression.decompress_rate = MiBPerSecond(0.0); },
      "compression decompress_rate must be positive"));
  ExpectDistinct(messages);

  // Boundary values the checks must accept.
  MigrationConfig ok;
  ok.max_rounds = 2;
  ok.compression.mean_ratio = 1.0;
  ok.compression.ratio_jitter = 0.0;
  EXPECT_NO_THROW(ok.Validate());
}

TEST(LinkConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using sim::LinkConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<LinkConfig>(
      [](auto& c) { c.bandwidth = MiBPerSecond(0.0); },
      "link bandwidth must be positive"));
  messages.push_back(RejectionMessage<LinkConfig>(
      [](auto& c) { c.latency = Seconds(-0.001); },
      "link latency must be non-negative"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(LinkConfig::Lan().Validate());
  EXPECT_NO_THROW(LinkConfig::Wan().Validate());
}

TEST(LinkConfigValidate, ConstructorRefusesInvalidConfig) {
  sim::LinkConfig config;
  config.bandwidth = MiBPerSecond(-5.0);
  EXPECT_THROW(sim::Link{config}, CheckFailure);
}

TEST(DiskConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using sim::DiskConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<DiskConfig>(
      [](auto& c) { c.sequential_read = MiBPerSecond(0.0); },
      "disk sequential_read rate must be positive"));
  messages.push_back(RejectionMessage<DiskConfig>(
      [](auto& c) { c.sequential_write = MiBPerSecond(0.0); },
      "disk sequential_write rate must be positive"));
  messages.push_back(RejectionMessage<DiskConfig>(
      [](auto& c) { c.random_access = Seconds(-0.001); },
      "disk random_access must be non-negative"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(DiskConfig::Hdd().Validate());
  EXPECT_NO_THROW(DiskConfig::Ssd().Validate());
}

TEST(DiskConfigValidate, ConstructorRefusesInvalidConfig) {
  sim::DiskConfig config;
  config.sequential_write = MiBPerSecond(0.0);
  EXPECT_THROW(sim::Disk{config}, CheckFailure);
}

TEST(ChecksumEngineConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using sim::ChecksumEngineConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<ChecksumEngineConfig>(
      [](auto& c) { c.md5_rate = MiBPerSecond(0.0); },
      "checksum md5_rate must be positive"));
  messages.push_back(RejectionMessage<ChecksumEngineConfig>(
      [](auto& c) { c.sha1_rate = MiBPerSecond(0.0); },
      "checksum sha1_rate must be positive"));
  messages.push_back(RejectionMessage<ChecksumEngineConfig>(
      [](auto& c) { c.sha256_rate = MiBPerSecond(0.0); },
      "checksum sha256_rate must be positive"));
  messages.push_back(RejectionMessage<ChecksumEngineConfig>(
      [](auto& c) { c.fnv_rate = MiBPerSecond(0.0); },
      "checksum fnv_rate must be positive"));
  messages.push_back(RejectionMessage<ChecksumEngineConfig>(
      [](auto& c) { c.threads = 0; },
      "checksum engine needs at least one thread"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(ChecksumEngineConfig{}.Validate());
}

TEST(ChecksumEngineConfigValidate, ConstructorRefusesInvalidConfig) {
  sim::ChecksumEngineConfig config;
  config.threads = 0;
  EXPECT_THROW(sim::ChecksumEngine{config}, CheckFailure);
}

TEST(ChecksumEngineConfigValidate, RateForRejectsUnenumeratedAlgorithm) {
  // The old fallback silently billed unknown algorithms at md5_rate,
  // skewing every timing result; it must fail loudly instead.
  const sim::ChecksumEngineConfig config;
  EXPECT_GT(config.RateFor(DigestAlgorithm::kFnv1a).bytes_per_second, 0.0);
  EXPECT_THROW((void)config.RateFor(static_cast<DigestAlgorithm>(42)),
               CheckFailure);
}

TEST(RetentionPolicyValidate, RejectsQuotaSmallerThanOneImage) {
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<storage::RetentionPolicy>(
      [](auto& c) { c.disk_quota = Bytes{kPageSize - 1}; },
      "retention disk_quota smaller than one checkpoint image"));
  ExpectDistinct(messages);

  // Boundary and sentinel values the check must accept: exactly one page
  // image, and 0 meaning unlimited.
  storage::RetentionPolicy one_page;
  one_page.disk_quota = Pages(1);
  EXPECT_NO_THROW(one_page.Validate());
  EXPECT_NO_THROW(storage::RetentionPolicy{}.Validate());

  // Callers with bigger images can raise the floor.
  storage::RetentionPolicy small;
  small.disk_quota = MiB(1);
  EXPECT_THROW(small.Validate(MiB(2)), CheckFailure);
  EXPECT_NO_THROW(small.Validate(MiB(1)));
}

TEST(StoreConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using storage::StoreConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<StoreConfig>(
      [](auto& c) { c.chunk_pages = 0; },
      "store chunk_pages must be a nonzero power of two"));
  messages.push_back(RejectionMessage<StoreConfig>(
      [](auto& c) { c.tier.ssd_capacity = Bytes{kPageSize - 1}; },
      "store tier ssd_capacity smaller than one chunk"));
  messages.push_back(RejectionMessage<StoreConfig>(
      [](auto& c) { c.gc_low_watermark = 0.0; },
      "store gc_low_watermark must be positive"));
  messages.push_back(RejectionMessage<StoreConfig>(
      [](auto& c) { c.gc_low_watermark = 0.95; },
      "store gc watermarks must be ordered (low <= high)"));
  messages.push_back(RejectionMessage<StoreConfig>(
      [](auto& c) { c.gc_high_watermark = 1.5; },
      "store gc_high_watermark must not exceed 1.0"));
  ExpectDistinct(messages);

  // Non-power-of-two trips the same diagnostic as zero (one knob).
  RejectionMessage<StoreConfig>([](auto& c) { c.chunk_pages = 3; },
                                "nonzero power of two");

  // Boundaries the checks must accept: an SSD cache of exactly one chunk,
  // degenerate equal watermarks, and a high watermark at the quota.
  StoreConfig ok;
  ok.chunking = true;
  ok.chunk_pages = 8;
  ok.tier.ssd_capacity = Pages(8);
  ok.gc_low_watermark = ok.gc_high_watermark = 1.0;
  EXPECT_NO_THROW(ok.Validate());
  EXPECT_NO_THROW(StoreConfig{}.Validate());
}

TEST(StoreConfigValidate, CheckedEvenWhenChunkingDisabled) {
  // Same contract as the transfer-stack configs: a latent bad chunk size
  // fails at Validate time, not on the day chunking is switched on.
  storage::StoreConfig config;
  config.chunking = false;
  config.chunk_pages = 5;
  EXPECT_THROW(config.Validate(), CheckFailure);
}

TEST(TieredDiskConfigValidate, ReachesSsdDeviceModel) {
  using sim::TieredDiskConfig;
  // The tier's own fields are unconstrained (0 = disabled), but the SSD
  // device model must be structurally valid even while the tier is off.
  RejectionMessage<TieredDiskConfig>(
      [](auto& c) { c.ssd.sequential_read = MiBPerSecond(0.0); },
      "disk sequential_read rate must be positive");
  EXPECT_NO_THROW(TieredDiskConfig{}.Validate());
  TieredDiskConfig enabled;
  enabled.ssd_capacity = MiB(64);
  EXPECT_NO_THROW(enabled.Validate());
}

TEST(StoreConfigValidate, ConstructorRefusesInvalidConfig) {
  sim::Disk disk{sim::DiskConfig::Hdd()};
  storage::StoreConfig bad;
  bad.chunk_pages = 6;
  EXPECT_THROW(
      (storage::CheckpointStore{disk, storage::RetentionPolicy{}, bad}),
      CheckFailure);
}

TEST(HostConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using core::HostConfig;
  std::vector<std::string> messages;
  // A default HostConfig has an empty id, so the "mutation" is a no-op.
  messages.push_back(RejectionMessage<HostConfig>(
      [](auto&) {}, "host id must be non-empty"));
  messages.push_back(RejectionMessage<HostConfig>(
      [](auto& c) {
        c.id = "h";
        c.retention.disk_quota = Bytes{1};
      },
      "retention disk_quota smaller than one checkpoint image"));
  messages.push_back(RejectionMessage<HostConfig>(
      [](auto& c) {
        c.id = "h";
        c.disk.sequential_read = MiBPerSecond(0.0);
      },
      "disk sequential_read rate must be positive"));
  messages.push_back(RejectionMessage<HostConfig>(
      [](auto& c) {
        c.id = "h";
        c.cpu.md5_rate = MiBPerSecond(0.0);
      },
      "checksum md5_rate must be positive"));
  messages.push_back(RejectionMessage<HostConfig>(
      [](auto& c) {
        c.id = "h";
        c.store.chunk_pages = 7;
      },
      "store chunk_pages must be a nonzero power of two"));
  ExpectDistinct(messages);

  HostConfig ok;
  ok.id = "h";
  ok.retention.disk_quota = Pages(1);
  EXPECT_NO_THROW(ok.Validate());
}

TEST(HostConfigValidate, HostConstructorAndClusterRefuseInvalidConfig) {
  core::HostConfig config;  // empty id
  EXPECT_THROW(core::Host{config}, CheckFailure);

  sim::Simulator simulator;
  core::Cluster cluster(simulator);
  EXPECT_THROW(cluster.AddHost({}), CheckFailure);
  core::HostConfig tiny_quota;
  tiny_quota.id = "h";
  tiny_quota.retention.disk_quota = Bytes{512};
  EXPECT_THROW(cluster.AddHost(tiny_quota), CheckFailure);
  EXPECT_EQ(cluster.HostCount(), 0u);
}

TEST(PostCopyConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using migration::PostCopyConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<PostCopyConfig>(
      [](auto& c) { c.guest_touch_rate_per_s = -1.0; },
      "touch rate must be non-negative"));
  messages.push_back(RejectionMessage<PostCopyConfig>(
      [](auto& c) { c.prefetch_batch = 0; },
      "prefetch batch must be positive"));
  messages.push_back(RejectionMessage<PostCopyConfig>(
      [](auto& c) { c.switchover_state = Bytes{0}; },
      "switchover_state must be positive"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(PostCopyConfig{}.Validate());
}

TEST(SchedulerConfigValidate, RejectsNegativeBackoff) {
  using core::SchedulerConfig;
  RejectionMessage<SchedulerConfig>(
      [](auto& c) { c.retry_backoff = Seconds(-1.0); },
      "retry_backoff must be non-negative");
  EXPECT_NO_THROW(SchedulerConfig{}.Validate());
  // Documented-unconstrained fields really do accept every value.
  SchedulerConfig zeros;
  zeros.max_outgoing_per_host = 0;
  zeros.max_incoming_per_host = 0;
  zeros.max_attempts = 0;
  EXPECT_NO_THROW(zeros.Validate());
}

TEST(CompressionConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using migration::CompressionConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<CompressionConfig>(
      [](auto& c) { c.mean_ratio = 0.0; }, "mean_ratio"));
  messages.push_back(RejectionMessage<CompressionConfig>(
      [](auto& c) { c.ratio_jitter = -0.1; }, "ratio_jitter"));
  messages.push_back(RejectionMessage<CompressionConfig>(
      [](auto& c) { c.compress_rate = MiBPerSecond(0.0); },
      "compress_rate"));
  messages.push_back(RejectionMessage<CompressionConfig>(
      [](auto& c) { c.decompress_rate = MiBPerSecond(0.0); },
      "decompress_rate"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(CompressionConfig{}.Validate());
}

TEST(CompressionConfigValidate, CheckedEvenWhenDisabled) {
  // The header promises a latent bad config fails at Validate time, not
  // on the day compression is switched on.
  migration::CompressionConfig config;
  config.enabled = false;
  config.mean_ratio = 2.0;
  EXPECT_THROW(config.Validate(), CheckFailure);
}

TEST(MultifdConfigValidate, RejectsOutOfRangeChannelCounts) {
  using migration::MultifdConfig;
  // Both ends of the range trip the same bounds check (one knob, one
  // diagnostic), so no distinctness to assert here.
  RejectionMessage<MultifdConfig>(
      [](auto& c) { c.channels = 0; }, "multifd channels must be in [1, 16]");
  RejectionMessage<MultifdConfig>(
      [](auto& c) { c.channels = MultifdConfig::kMaxChannels + 1; },
      "multifd channels");
  EXPECT_NO_THROW(MultifdConfig{}.Validate());

  // Boundary values the audit channel-id scheme can still represent.
  MultifdConfig full;
  full.enabled = true;
  full.channels = MultifdConfig::kMaxChannels;
  EXPECT_NO_THROW(full.Validate());
  MultifdConfig one;
  one.enabled = true;
  one.channels = 1;
  EXPECT_NO_THROW(one.Validate());
  EXPECT_EQ(one.ActiveChannels(), 1u);
  EXPECT_EQ(MultifdConfig{}.ActiveChannels(), 1u);
}

TEST(MultifdConfigValidate, CheckedEvenWhenDisabled) {
  migration::MultifdConfig config;
  config.enabled = false;
  config.channels = 0;
  EXPECT_THROW(config.Validate(), CheckFailure);
}

TEST(DeltaConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using migration::DeltaConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<DeltaConfig>(
      [](auto& c) { c.mean_ratio = 0.0; },
      "delta mean_ratio must be in (0, 1]"));
  messages.push_back(RejectionMessage<DeltaConfig>(
      [](auto& c) { c.ratio_jitter = -0.1; },
      "delta ratio_jitter must be in [0, 1]"));
  messages.push_back(RejectionMessage<DeltaConfig>(
      [](auto& c) { c.max_ratio = 1.5; },
      "delta max_ratio must be in (0, 1]"));
  messages.push_back(RejectionMessage<DeltaConfig>(
      [](auto& c) { c.encode_rate = MiBPerSecond(0.0); },
      "delta encode_rate must be positive"));
  messages.push_back(RejectionMessage<DeltaConfig>(
      [](auto& c) { c.decode_rate = MiBPerSecond(0.0); },
      "delta decode_rate must be positive"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(DeltaConfig{}.Validate());

  DeltaConfig boundary;
  boundary.mean_ratio = 1.0;
  boundary.ratio_jitter = 0.0;
  boundary.max_ratio = 1.0;
  EXPECT_NO_THROW(boundary.Validate());
}

TEST(DeltaConfigValidate, CheckedEvenWhenDisabled) {
  migration::DeltaConfig config;
  config.enabled = false;
  config.max_ratio = -1.0;
  EXPECT_THROW(config.Validate(), CheckFailure);
}

TEST(AutoConvergeConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using migration::AutoConvergeConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<AutoConvergeConfig>(
      [](auto& c) { c.initial_throttle = 1.0; },
      "auto-converge initial_throttle must be in [0, 1)"));
  messages.push_back(RejectionMessage<AutoConvergeConfig>(
      [](auto& c) { c.throttle_increment = 0.0; },
      "auto-converge throttle_increment must be in (0, 1)"));
  messages.push_back(RejectionMessage<AutoConvergeConfig>(
      [](auto& c) { c.max_throttle = 0.0; },
      "auto-converge max_throttle must be in (0, 1)"));
  messages.push_back(RejectionMessage<AutoConvergeConfig>(
      [](auto& c) {
        c.initial_throttle = 0.5;
        c.max_throttle = 0.3;
      },
      "auto-converge max_throttle must be >= initial_throttle"));
  messages.push_back(RejectionMessage<AutoConvergeConfig>(
      [](auto& c) { c.divergence_ratio = 0.0; },
      "auto-converge divergence_ratio must be positive"));
  messages.push_back(RejectionMessage<AutoConvergeConfig>(
      [](auto& c) { c.trigger_rounds = 0; },
      "auto-converge trigger_rounds must be positive"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(AutoConvergeConfig{}.Validate());

  // Boundary: the guest may start unthrottled (0) and the first step may
  // also be the ceiling.
  AutoConvergeConfig boundary;
  boundary.initial_throttle = 0.0;
  boundary.max_throttle = 0.99;
  EXPECT_NO_THROW(boundary.Validate());
}

TEST(AutoConvergeConfigValidate, CheckedEvenWhenDisabled) {
  migration::AutoConvergeConfig config;
  config.enabled = false;
  config.trigger_rounds = 0;
  EXPECT_THROW(config.Validate(), CheckFailure);
}

TEST(MigrationConfigValidate, ChecksTransferStackSubConfigs) {
  // MigrationConfig::Validate must reach all three transfer-stack
  // sub-configs, not just its own scalar fields.
  migration::MigrationConfig bad_multifd;
  bad_multifd.multifd.channels = 0;
  EXPECT_THROW(bad_multifd.Validate(), CheckFailure);
  migration::MigrationConfig bad_delta;
  bad_delta.delta.mean_ratio = -1.0;
  EXPECT_THROW(bad_delta.Validate(), CheckFailure);
  migration::MigrationConfig bad_converge;
  bad_converge.auto_converge.max_throttle = 1.0;
  EXPECT_THROW(bad_converge.Validate(), CheckFailure);
}

TEST(WorkloadConfigValidate, IdleRejectsImpossibleRatesAndRegions) {
  using vm::IdleWorkload;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<IdleWorkload::Config>(
      [](auto& c) { c.write_rate_pages_per_s = -1.0; },
      "idle write_rate_pages_per_s"));
  messages.push_back(RejectionMessage<IdleWorkload::Config>(
      [](auto& c) { c.hot_region_pages = 0; }, "idle hot_region_pages"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(IdleWorkload::Config{}.Validate());
  EXPECT_THROW(IdleWorkload({.hot_region_pages = 0}), CheckFailure);
}

TEST(WorkloadConfigValidate, HotspotRejectsOutOfDomainSkew) {
  using vm::HotspotWorkload;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<HotspotWorkload::Config>(
      [](auto& c) { c.write_rate_pages_per_s = -1.0; },
      "hotspot write_rate_pages_per_s"));
  messages.push_back(RejectionMessage<HotspotWorkload::Config>(
      [](auto& c) { c.hot_fraction = 0.0; }, "hot_fraction"));
  messages.push_back(RejectionMessage<HotspotWorkload::Config>(
      [](auto& c) { c.hot_probability = 1.5; }, "hot_probability"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(HotspotWorkload::Config{}.Validate());
  EXPECT_THROW(HotspotWorkload({.hot_fraction = -0.5}), CheckFailure);
}

TEST(PeriodicWorkloadConfigValidate, RejectsDegenerateCycles) {
  using vm::PeriodicWorkload;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<PeriodicWorkload::Config>(
      [](auto& c) { c.period = SimDuration::zero(); }, "periodic workload "
      "period"));
  messages.push_back(RejectionMessage<PeriodicWorkload::Config>(
      [](auto& c) { c.busy_fraction = 1.5; }, "busy_fraction"));
  messages.push_back(RejectionMessage<PeriodicWorkload::Config>(
      [](auto& c) { c.phase_offset = Hours(-1.0); }, "phase_offset"));
  // The busy and quiet sub-configs are reached too.
  messages.push_back(RejectionMessage<PeriodicWorkload::Config>(
      [](auto& c) { c.busy.hot_fraction = 0.0; }, "hot_fraction"));
  messages.push_back(RejectionMessage<PeriodicWorkload::Config>(
      [](auto& c) { c.quiet.hot_region_pages = 0; },
      "idle hot_region_pages"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(PeriodicWorkload::Config{}.Validate());
  EXPECT_THROW(PeriodicWorkload({.busy_fraction = -0.1}), CheckFailure);
}

TEST(CycleDetectorConfigValidate, RejectsUnusableWindows) {
  using vm::CycleDetector;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<CycleDetector::Config>(
      [](auto& c) { c.window_samples = 1; }, "window_samples"));
  messages.push_back(RejectionMessage<CycleDetector::Config>(
      [](auto& c) { c.low_threshold = 1.0; }, "low_threshold"));
  messages.push_back(RejectionMessage<CycleDetector::Config>(
      [](auto& c) { c.min_samples = 0; }, "min_samples"));
  // min_samples must fit inside the window.
  messages.push_back(RejectionMessage<CycleDetector::Config>(
      [](auto& c) {
        c.window_samples = 4;
        c.min_samples = 5;
      },
      "min_samples"));
  EXPECT_NO_THROW(CycleDetector::Config{}.Validate());
  EXPECT_THROW(CycleDetector({.window_samples = 0}), CheckFailure);
}

TEST(PolicyConfigValidate, RejectsEachInvalidFieldDistinctly) {
  using policy::PolicyConfig;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<PolicyConfig>(
      [](auto& c) { c.affinity_weight = -1.0; }, "affinity_weight"));
  messages.push_back(RejectionMessage<PolicyConfig>(
      [](auto& c) { c.load_weight = -1.0; }, "load_weight"));
  messages.push_back(RejectionMessage<PolicyConfig>(
      [](auto& c) { c.min_affinity = 1.5; }, "min_affinity"));
  messages.push_back(RejectionMessage<PolicyConfig>(
      [](auto& c) { c.max_defer = Hours(-1.0); }, "max_defer"));
  messages.push_back(RejectionMessage<PolicyConfig>(
      [](auto& c) { c.defer_step = SimDuration::zero(); }, "defer_step"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(PolicyConfig{}.Validate());
  EXPECT_THROW(policy::CheckpointAffinityPolicy({.affinity_weight = -1.0}),
               CheckFailure);
  EXPECT_THROW(
      policy::CycleAwarePolicy(
          std::make_unique<policy::RoundRobinPolicy>(),
          PolicyConfig{.defer_step = SimDuration::zero()}),
      CheckFailure);
}

TEST(ScenarioConfigValidate, RejectsUnbuildableWorlds) {
  using policy::ScenarioConfig;
  using policy::ScenarioKind;
  std::vector<std::string> messages;
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.kind = static_cast<ScenarioKind>(99); },
      "scenario kind"));
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.sites = 1; }, "at least two sites"));
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.hosts_per_site = 0; }, "host per site"));
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.vms = 0; }, "at least one VM"));
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.vm_ram = Bytes{0}; }, "vm_ram"));
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.days = 0; }, "day-cycle"));
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.warmup_days = 366; }, "warmup_days"));
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.step = SimDuration::zero(); }, "scenario step"));
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.busy_rate_pages_per_s = -1.0; },
      "busy_rate_pages_per_s"));
  messages.push_back(RejectionMessage<ScenarioConfig>(
      [](auto& c) { c.storm_fraction = 0.0; }, "storm_fraction"));
  ExpectDistinct(messages);
  EXPECT_NO_THROW(ScenarioConfig{}.Validate());
  EXPECT_THROW(policy::ScenarioGen({.sites = 1}), CheckFailure);
}

// The diagnostics must stay distinct ACROSS config types too: a log line
// containing only the message still identifies the failing knob.
TEST(AllValidates, MessagesAreGloballyDistinct) {
  const std::vector<std::string> messages = {
      RejectionMessage<migration::MigrationConfig>(
          [](auto& c) { c.batch_pages = 0; }, "batch_pages"),
      RejectionMessage<sim::LinkConfig>(
          [](auto& c) { c.bandwidth = MiBPerSecond(0.0); }, "bandwidth"),
      RejectionMessage<sim::DiskConfig>(
          [](auto& c) { c.sequential_read = MiBPerSecond(0.0); },
          "sequential_read"),
      RejectionMessage<sim::ChecksumEngineConfig>(
          [](auto& c) { c.md5_rate = MiBPerSecond(0.0); }, "md5_rate"),
      RejectionMessage<migration::PostCopyConfig>(
          [](auto& c) { c.prefetch_batch = 0; }, "prefetch batch"),
      RejectionMessage<core::HostConfig>([](auto&) {}, "host id"),
      RejectionMessage<storage::RetentionPolicy>(
          [](auto& c) { c.disk_quota = Bytes{1}; }, "disk_quota"),
      RejectionMessage<storage::StoreConfig>(
          [](auto& c) { c.gc_low_watermark = -1.0; }, "gc_low_watermark"),
      RejectionMessage<migration::MultifdConfig>(
          [](auto& c) { c.channels = 0; }, "multifd channels"),
      RejectionMessage<migration::DeltaConfig>(
          [](auto& c) { c.mean_ratio = 0.0; }, "delta mean_ratio"),
      RejectionMessage<migration::AutoConvergeConfig>(
          [](auto& c) { c.trigger_rounds = 0; },
          "auto-converge trigger_rounds"),
      RejectionMessage<policy::PolicyConfig>(
          [](auto& c) { c.defer_step = SimDuration::zero(); },
          "defer_step"),
      RejectionMessage<policy::ScenarioConfig>(
          [](auto& c) { c.warmup_days = 366; }, "warmup_days"),
      RejectionMessage<vm::CycleDetector::Config>(
          [](auto& c) { c.low_threshold = 0.0; }, "low_threshold"),
      RejectionMessage<vm::PeriodicWorkload::Config>(
          [](auto& c) { c.period = SimDuration::zero(); },
          "periodic workload period"),
  };
  ExpectDistinct(messages);
}

}  // namespace
}  // namespace vecycle
