// Conservative-PDES sharding: ShardPlan determinism and validation, the
// barrier-window lookahead contract, cross-shard migration sessions, and
// the worker-count determinism sweep (ReplayCheck::VerifyWorkers) with
// and without intra-shard faults. Also covers the saturating
// retry-backoff arithmetic the PDES control plane shares with the serial
// scheduler.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "audit/replay.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "fault/fault.hpp"
#include "sim/link.hpp"
#include "sim/sharded.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::core {
namespace {

// --- ShardPlan ---------------------------------------------------------

TEST(ShardPlan, BuildIsAPureFunctionOfKeySetSeedAndShardCount) {
  const std::vector<std::string> keys = {"h3", "h1", "h7", "h0", "h5",
                                         "h2", "h9", "h4", "h8", "h6"};
  std::vector<std::string> shuffled = {"h9", "h0", "h4", "h2", "h6",
                                       "h8", "h1", "h5", "h3", "h7"};
  const auto plan = sim::ShardPlan::Build(keys, 4, 42);
  const auto replayed = sim::ShardPlan::Build(shuffled, 4, 42);
  EXPECT_EQ(plan.ShardCount(), 4u);
  EXPECT_EQ(plan.KeyCount(), keys.size());
  for (const auto& key : keys) {
    EXPECT_EQ(plan.ShardOf(key), replayed.ShardOf(key))
        << "insertion order leaked into the partition for " << key;
    EXPECT_LT(plan.ShardOf(key), 4u);
  }
  // A different seed reshuffles (with ten keys on four shards the odds of
  // an identical partition by chance are negligible).
  const auto reseeded = sim::ShardPlan::Build(keys, 4, 43);
  bool any_moved = false;
  for (const auto& key : keys) {
    any_moved = any_moved || reseeded.ShardOf(key) != plan.ShardOf(key);
  }
  EXPECT_TRUE(any_moved);
}

TEST(ShardPlan, ValidateRejectsEmptyAndUncoveringPlans) {
  // A default ShardPlan has zero shards — no sharded run could use it.
  sim::ShardPlan empty;
  EXPECT_THROW(empty.Validate(), CheckFailure);
  EXPECT_THROW(sim::ShardPlan::Build({"a"}, 0, 1), CheckFailure);
  EXPECT_THROW(sim::ShardPlan::Build({"a", "a"}, 2, 1), CheckFailure);

  sim::ShardPlan plan;
  plan.Assign("a", 0);
  plan.Assign("b", 2);  // grows the shard count to 3
  plan.Validate();
  EXPECT_EQ(plan.ShardCount(), 3u);
  EXPECT_TRUE(plan.Covers("a"));
  EXPECT_FALSE(plan.Covers("c"));
  EXPECT_THROW(plan.ShardOf("c"), CheckFailure);
}

// --- ShardedSimulator windows ------------------------------------------

TEST(ShardedSimulator, CrossShardPostsLandAfterTheLookaheadWindow) {
  // Shard 1 runs a local event in the first window; shard 0 posts it more
  // work for after the barrier, honouring the lookahead.
  std::vector<int> order;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    order.clear();
    sim::ShardedSimulator fresh(2);
    fresh.Shard(1).ScheduleAt(kSimEpoch + Milliseconds(1.0),
                              [&] { order.push_back(1); });
    fresh.Shard(0).ScheduleAt(kSimEpoch + Milliseconds(2.0), [&] {
      fresh.Post(0, 1, kSimEpoch + Milliseconds(12.0),
                 [&] { order.push_back(2); });
    });
    fresh.Run(workers, Milliseconds(10.0));
    EXPECT_EQ(order, (std::vector<int>{1, 2})) << workers << " workers";
    EXPECT_GE(fresh.MaxNow(), kSimEpoch + Milliseconds(12.0));
  }
}

TEST(ShardedSimulator, PostInsideTheWindowViolatesTheContract) {
  sim::ShardedSimulator pdes(2);
  // An event at t=1ms posting for t=2ms: inside the [1ms, 11ms) window —
  // exactly what the conservative lookahead forbids.
  pdes.Shard(0).ScheduleAt(kSimEpoch + Milliseconds(1.0), [&] {
    pdes.Post(0, 1, kSimEpoch + Milliseconds(2.0), [] {});
  });
  EXPECT_THROW(pdes.Run(1, Milliseconds(10.0)), CheckFailure);
}

// --- Worker-count environment knob -------------------------------------

TEST(ShardedSimulator, ThreadsFromEnvParsesAndClamps) {
  const char* saved = std::getenv("VECYCLE_THREADS");
  const std::string restore = saved == nullptr ? "" : saved;

  ::unsetenv("VECYCLE_THREADS");
  EXPECT_EQ(sim::ThreadsFromEnv(), 1u);
  ::setenv("VECYCLE_THREADS", "4", 1);
  EXPECT_EQ(sim::ThreadsFromEnv(), 4u);
  ::setenv("VECYCLE_THREADS", "0", 1);
  EXPECT_EQ(sim::ThreadsFromEnv(), 1u);
  ::setenv("VECYCLE_THREADS", "9999", 1);
  EXPECT_EQ(sim::ThreadsFromEnv(), 64u);
  ::setenv("VECYCLE_THREADS", "plenty", 1);
  EXPECT_EQ(sim::ThreadsFromEnv(), 1u);

  if (restore.empty()) {
    ::unsetenv("VECYCLE_THREADS");
  } else {
    ::setenv("VECYCLE_THREADS", restore.c_str(), 1);
  }
}

// --- Sharded fleet scenarios -------------------------------------------

std::string HostName(std::uint32_t site, std::uint32_t host) {
  return "s" + std::to_string(site) + "-h" + std::to_string(host);
}

/// A miniature of bench/fleet_pdes: `sites` shards of paired hosts, an
/// inter-site 5 ms ring through each site's gateway (host 0), gateway
/// VMs migrating cross-shard and everyone else to the in-site partner.
/// Returns the combined audit fingerprint folded with the completion
/// count — the number the worker sweep compares.
std::uint64_t RunMiniFleet(std::size_t workers, std::uint32_t sites,
                           std::uint32_t hosts_per_site,
                           std::uint64_t vms_per_host) {
  sim::ShardedSimulator pdes(sites);
  core::Cluster cluster(pdes.Shard(0));
  sim::ShardPlan plan;
  const sim::LinkConfig intersite{GigabitsPerSecond(1.0), Milliseconds(5.0),
                                  Bytes{0}};
  for (std::uint32_t site = 0; site < sites; ++site) {
    for (std::uint32_t host = 0; host < hosts_per_site; ++host) {
      cluster.AddHost({HostName(site, host), sim::DiskConfig::Ssd(), {}, {}, {}});
      plan.Assign(HostName(site, host), site);
    }
    for (std::uint32_t host = 0; host + 1 < hosts_per_site; host += 2) {
      cluster.Connect(HostName(site, host), HostName(site, host + 1),
                      sim::LinkConfig::Lan());
    }
  }
  for (std::uint32_t site = 0; site < sites; ++site) {
    cluster.Connect(HostName(site, 0), HostName((site + 1) % sites, 0),
                    intersite);
  }

  SchedulerConfig sconfig;
  sconfig.workers = workers;
  MigrationScheduler scheduler(cluster, pdes, plan, sconfig);

  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kFull;
  std::vector<std::unique_ptr<VmInstance>> fleet;
  std::uint64_t vm_index = 0;
  for (std::uint32_t site = 0; site < sites; ++site) {
    for (std::uint32_t host = 0; host < hosts_per_site; ++host) {
      for (std::uint64_t v = 0; v < vms_per_host; ++v, ++vm_index) {
        fleet.push_back(std::make_unique<VmInstance>(
            "vm-" + std::to_string(vm_index), MiB(1),
            vm::ContentMode::kSeedOnly));
        Xoshiro256 rng(0x5eed0000 + vm_index);
        vm::MemoryProfile{}.Apply(fleet.back()->Memory(), rng);
        fleet.back()->SetCurrentHost(HostName(site, host));
        const std::string to =
            host == 0 ? HostName((site + 1) % sites, 0)
                      : HostName(site, host % 2 == 0 ? host + 1 : host - 1);
        scheduler.Submit(*fleet.back(), to, config);
      }
    }
  }

  const std::size_t completed = scheduler.Drain();
  VEC_CHECK_MSG(completed == vm_index, "mini fleet: not every VM migrated");
  return SplitMix64(scheduler.CombinedFingerprint() ^ completed).Next();
}

TEST(PdesDeterminism, CrossShardSessionsMatchAcrossOneAndTwoWorkers) {
  audit::ReplayCheck::VerifyWorkers(
      [](std::size_t workers) { return RunMiniFleet(workers, 3, 2, 1); },
      {1, 2});
}

TEST(PdesDeterminism, FleetFingerprintIsIdenticalAtOneTwoFourEightWorkers) {
  audit::ReplayCheck::VerifyWorkers(
      [](std::size_t workers) { return RunMiniFleet(workers, 4, 4, 2); });
}

TEST(PdesDeterminism, WorkerCountFromEnvironmentMatchesExplicitCount) {
  const char* saved = std::getenv("VECYCLE_THREADS");
  const std::string restore = saved == nullptr ? "" : saved;

  // workers == 0 defers to VECYCLE_THREADS — the path CI's threaded ctest
  // leg exercises. The result must match any explicit worker count.
  ::setenv("VECYCLE_THREADS", "2", 1);
  const std::uint64_t via_env = RunMiniFleet(0, 3, 2, 1);
  const std::uint64_t explicit_one = RunMiniFleet(1, 3, 2, 1);
  EXPECT_EQ(via_env, explicit_one);

  if (restore.empty()) {
    ::unsetenv("VECYCLE_THREADS");
  } else {
    ::setenv("VECYCLE_THREADS", restore.c_str(), 1);
  }
}

TEST(PdesDeterminism, IntraShardFaultSweepReplaysAcrossWorkerCounts) {
  // Two shards, each with one flaky intra-shard LAN link. The injectors
  // are per shard (a shared one would be fed from two workers at once —
  // the scheduler rejects that); identical (config, seed) pairs give both
  // shards the same outage plan, and every attempt, retry and backoff
  // must replay bit-for-bit at any worker count.
  const auto scenario = [](std::size_t workers) -> std::uint64_t {
    fault::FaultConfig fault_config;
    fault_config.enabled = true;
    fault_config.seed = 13;
    fault_config.link_outages_per_hour = 6.0;
    fault_config.link_outage_mean = Seconds(2.0);
    fault_config.horizon = Hours(4.0);

    sim::ShardedSimulator pdes(2);
    core::Cluster cluster(pdes.Shard(0));
    sim::ShardPlan plan;
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    for (std::uint32_t site = 0; site < 2; ++site) {
      cluster.AddHost({HostName(site, 0), sim::DiskConfig::Ssd(), {}, {}, {}});
      cluster.AddHost({HostName(site, 1), sim::DiskConfig::Ssd(), {}, {}, {}});
      plan.Assign(HostName(site, 0), site);
      plan.Assign(HostName(site, 1), site);
      sim::Link& link = cluster.Connect(HostName(site, 0), HostName(site, 1),
                                        sim::LinkConfig::Lan());
      injectors.push_back(
          std::make_unique<fault::FaultInjector>(fault_config));
      link.SetFaultInjector(injectors.back().get());
    }
    const auto window = injectors.front()->LinkOutages().front();

    SchedulerConfig sconfig;
    sconfig.workers = workers;
    sconfig.max_attempts = 10;
    MigrationScheduler scheduler(cluster, pdes, plan, sconfig);

    // Park the fleet just before the first outage so the initial
    // attempts stream into the window and get cut.
    pdes.AdvanceAllTo(window.start - Milliseconds(1.0));

    migration::MigrationConfig config;
    config.strategy = migration::Strategy::kFull;
    std::vector<std::unique_ptr<VmInstance>> fleet;
    for (std::uint32_t site = 0; site < 2; ++site) {
      for (std::uint64_t v = 0; v < 2; ++v) {
        fleet.push_back(std::make_unique<VmInstance>(
            "vm-" + std::to_string(site * 2 + v), MiB(4),
            vm::ContentMode::kSeedOnly));
        Xoshiro256 rng(0xfa017u + site * 2 + v);
        vm::MemoryProfile{}.Apply(fleet.back()->Memory(), rng);
        fleet.back()->SetCurrentHost(HostName(site, 0));
        scheduler.Submit(*fleet.back(), HostName(site, 1), config);
      }
    }
    const std::size_t completed = scheduler.Drain();
    VEC_CHECK_MSG(completed == fleet.size(),
                  "fault sweep: not every VM migrated");
    std::uint64_t folded =
        SplitMix64(scheduler.CombinedFingerprint() ^ completed).Next();
    return SplitMix64(folded ^ scheduler.Retries()).Next();
  };
  const auto sweep = audit::ReplayCheck::CompareWorkers(scenario, {1, 2});
  EXPECT_TRUE(sweep.Deterministic());
}

TEST(PdesDeterminism, MultifdSessionsReplayUnderChannelFaults) {
  // The transfer stack under the worker sweep: four forward streams per
  // session on a flaky intra-shard link, so outages cut individual
  // multifd channel messages mid-round. Striping, per-channel round
  // markers, retries and the auto-converge throttle state must all
  // replay bit-for-bit at any worker count.
  const auto scenario = [](std::size_t workers) -> std::uint64_t {
    fault::FaultConfig fault_config;
    fault_config.enabled = true;
    fault_config.seed = 29;
    fault_config.link_outages_per_hour = 6.0;
    fault_config.link_outage_mean = Seconds(2.0);
    fault_config.horizon = Hours(4.0);

    sim::ShardedSimulator pdes(2);
    core::Cluster cluster(pdes.Shard(0));
    sim::ShardPlan plan;
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    for (std::uint32_t site = 0; site < 2; ++site) {
      cluster.AddHost({HostName(site, 0), sim::DiskConfig::Ssd(), {}, {}, {}});
      cluster.AddHost({HostName(site, 1), sim::DiskConfig::Ssd(), {}, {}, {}});
      plan.Assign(HostName(site, 0), site);
      plan.Assign(HostName(site, 1), site);
      sim::Link& link = cluster.Connect(HostName(site, 0), HostName(site, 1),
                                        sim::LinkConfig::Lan());
      injectors.push_back(
          std::make_unique<fault::FaultInjector>(fault_config));
      link.SetFaultInjector(injectors.back().get());
    }
    const auto window = injectors.front()->LinkOutages().front();

    SchedulerConfig sconfig;
    sconfig.workers = workers;
    sconfig.max_attempts = 10;
    MigrationScheduler scheduler(cluster, pdes, plan, sconfig);
    pdes.AdvanceAllTo(window.start - Milliseconds(1.0));

    migration::MigrationConfig config;
    config.strategy = migration::Strategy::kFull;
    config.multifd.enabled = true;
    config.multifd.channels = 4;
    config.auto_converge.enabled = true;
    std::vector<std::unique_ptr<VmInstance>> fleet;
    for (std::uint32_t site = 0; site < 2; ++site) {
      for (std::uint64_t v = 0; v < 2; ++v) {
        fleet.push_back(std::make_unique<VmInstance>(
            "vm-" + std::to_string(site * 2 + v), MiB(4),
            vm::ContentMode::kSeedOnly));
        Xoshiro256 rng(0xfd017u + site * 2 + v);
        vm::MemoryProfile{}.Apply(fleet.back()->Memory(), rng);
        fleet.back()->SetCurrentHost(HostName(site, 0));
        scheduler.Submit(*fleet.back(), HostName(site, 1), config);
      }
    }
    const std::size_t completed = scheduler.Drain();
    VEC_CHECK_MSG(completed == fleet.size(),
                  "multifd fault sweep: not every VM migrated");
    std::uint64_t folded =
        SplitMix64(scheduler.CombinedFingerprint() ^ completed).Next();
    return SplitMix64(folded ^ scheduler.Retries()).Next();
  };
  audit::ReplayCheck::VerifyWorkers(scenario, {1, 2, 4});
}

// --- Saturating retry backoff ------------------------------------------

TEST(SchedulerBackoff, RetryNotBeforeDoublesThenSaturates) {
  const SimTime when = kSimEpoch + Seconds(100.0);
  const SimDuration backoff = Seconds(5.0);
  EXPECT_EQ(RetryNotBefore(when, backoff, 1), when + Seconds(5.0));
  EXPECT_EQ(RetryNotBefore(when, backoff, 2), when + Seconds(10.0));
  EXPECT_EQ(RetryNotBefore(when, backoff, 4), when + Seconds(40.0));
  // Zero backoff never gates.
  EXPECT_EQ(RetryNotBefore(when, SimDuration::zero(), 9), when);

  // Monotone in the failure count: a longer streak can only push the
  // deadline later, never wrap it into the past (the overflow bug this
  // guards against produced a negative delay around 2^63).
  SimTime previous = kSimEpoch;
  for (std::uint64_t failures = 1; failures <= 100; ++failures) {
    const SimTime deadline = RetryNotBefore(when, backoff, failures);
    EXPECT_GE(deadline, previous) << "failures=" << failures;
    EXPECT_GE(deadline, when) << "failures=" << failures;
    previous = deadline;
  }
  // A long streak saturates to "never" instead of overflowing.
  EXPECT_EQ(RetryNotBefore(when, backoff, 100), SimTime::max());
  EXPECT_EQ(RetryNotBefore(when, backoff, 64), SimTime::max());
  // The final sum saturates too, even at one failure.
  EXPECT_EQ(RetryNotBefore(SimTime::max() - Seconds(1.0), backoff, 1),
            SimTime::max());
}

}  // namespace
}  // namespace vecycle::core
