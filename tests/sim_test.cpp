// Discrete-event engine, FIFO resources, and the link/disk/checksum
// device models.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "sim/checksum_engine.hpp"
#include "sim/disk.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace vecycle::sim {
namespace {

// --- Event loop. ---

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.Schedule(Seconds(3.0), [&] { order.push_back(3); });
  simulator.Schedule(Seconds(1.0), [&] { order.push_back(1); });
  simulator.Schedule(Seconds(2.0), [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.Schedule(Seconds(1.0), [&order, i] { order.push_back(i); });
  }
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator simulator;
  SimTime observed = kSimEpoch;
  simulator.Schedule(Seconds(5.0), [&] { observed = simulator.Now(); });
  simulator.Run();
  EXPECT_EQ(observed, Seconds(5.0));
  EXPECT_EQ(simulator.Now(), Seconds(5.0));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Seconds(1.0), [&] {
    ++fired;
    simulator.Schedule(Seconds(1.0), [&] { ++fired; });
  });
  simulator.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.Now(), Seconds(2.0));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator simulator;
  simulator.Schedule(Seconds(2.0), [&] {
    EXPECT_THROW(simulator.ScheduleAt(Seconds(1.0), [] {}), CheckFailure);
  });
  simulator.Run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Seconds(1.0), [&] { ++fired; });
  simulator.Schedule(Seconds(10.0), [&] { ++fired; });
  simulator.RunUntil(Seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.Now(), Seconds(5.0));
  EXPECT_EQ(simulator.PendingEvents(), 1u);
}

TEST(Simulator, RunUntilAdvancesIdleClock) {
  Simulator simulator;
  simulator.RunUntil(Hours(8.0));
  EXPECT_EQ(simulator.Now(), Hours(8.0));
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator simulator;
  EXPECT_FALSE(simulator.Step());
}

// Regression: ProcessedEvents() used to report scheduled events, so a
// never-run simulator with queued work claimed it had processed them.
TEST(Simulator, ProcessedEventsCountsExecutedNotScheduled) {
  Simulator simulator;
  simulator.Schedule(Seconds(1.0), [] {});
  simulator.Schedule(Seconds(2.0), [] {});
  simulator.Schedule(Seconds(3.0), [] {});
  EXPECT_EQ(simulator.ProcessedEvents(), 0u);
  EXPECT_EQ(simulator.ScheduledEvents(), 3u);

  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(simulator.ProcessedEvents(), 1u);

  simulator.Run();
  EXPECT_EQ(simulator.ProcessedEvents(), 3u);
  EXPECT_EQ(simulator.ScheduledEvents(), 3u);
}

TEST(Simulator, RunUntilExecutesOnlyDueEvents) {
  Simulator simulator;
  simulator.Schedule(Seconds(1.0), [] {});
  simulator.Schedule(Seconds(5.0), [] {});
  simulator.RunUntil(Seconds(2.0));
  EXPECT_EQ(simulator.ProcessedEvents(), 1u);
  EXPECT_EQ(simulator.ScheduledEvents(), 2u);
}

// --- FIFO resource. ---

TEST(FifoResource, BackToBackRequestsQueue) {
  FifoResource resource;
  const auto first = resource.Reserve(Seconds(0.0), Seconds(2.0));
  EXPECT_EQ(first.start, Seconds(0.0));
  EXPECT_EQ(first.end, Seconds(2.0));
  // Requested at t=1 but the device is busy until t=2.
  const auto second = resource.Reserve(Seconds(1.0), Seconds(2.0));
  EXPECT_EQ(second.start, Seconds(2.0));
  EXPECT_EQ(second.end, Seconds(4.0));
}

TEST(FifoResource, IdleGapsAreHonored) {
  FifoResource resource;
  resource.Reserve(Seconds(0.0), Seconds(1.0));
  const auto later = resource.Reserve(Seconds(10.0), Seconds(1.0));
  EXPECT_EQ(later.start, Seconds(10.0));
}

TEST(FifoResource, BusyTimeAccumulates) {
  FifoResource resource;
  resource.Reserve(Seconds(0.0), Seconds(2.0));
  resource.Reserve(Seconds(0.0), Seconds(3.0));
  EXPECT_EQ(resource.BusyTime(), Seconds(5.0));
}

// --- Link model. ---

TEST(Link, LanDeliversAtAboutGigabitGoodput) {
  Link link(LinkConfig::Lan());
  const SimTime arrival =
      link.Transmit(Direction::kAtoB, kSimEpoch, GiB(1));
  // ~115 MiB/s goodput after framing: 1 GiB in ~9.3 s (+0.2 ms latency).
  EXPECT_NEAR(ToSeconds(arrival), 9.2, 0.4);
}

TEST(Link, WanIsWindowLimited) {
  const auto config = LinkConfig::Wan();
  // 192 KiB / 27 ms ≈ 7 MiB/s — far below the 465 Mbps line rate.
  EXPECT_LT(config.EffectiveBandwidth().bytes_per_second,
            MegabitsPerSecond(465.0).bytes_per_second);
  EXPECT_NEAR(config.EffectiveBandwidth().bytes_per_second / (1 << 20), 7.1,
              0.3);
}

TEST(Link, DirectionsAreIndependent) {
  Link link(LinkConfig::Lan());
  const SimTime ab = link.Transmit(Direction::kAtoB, kSimEpoch, MiB(100));
  const SimTime ba = link.Transmit(Direction::kBtoA, kSimEpoch, MiB(100));
  // Full duplex: the reverse transfer is not queued behind the forward one.
  EXPECT_EQ(ab, ba);
}

TEST(Link, SameDirectionTransfersQueue) {
  Link link(LinkConfig::Lan());
  const SimTime first = link.Transmit(Direction::kAtoB, kSimEpoch, MiB(100));
  const SimTime second =
      link.Transmit(Direction::kAtoB, kSimEpoch, MiB(100));
  EXPECT_GT(second, first);
}

TEST(Link, TrafficAccounting) {
  Link link(LinkConfig::Lan());
  link.Transmit(Direction::kAtoB, kSimEpoch, MiB(10));
  link.Transmit(Direction::kAtoB, kSimEpoch, MiB(5));
  link.Transmit(Direction::kBtoA, kSimEpoch, MiB(1));
  EXPECT_EQ(link.Stats(Direction::kAtoB).payload_bytes, MiB(15));
  EXPECT_EQ(link.Stats(Direction::kAtoB).transfers, 2u);
  EXPECT_EQ(link.Stats(Direction::kBtoA).payload_bytes, MiB(1));
  // Wire bytes exceed payload by the framing overhead.
  EXPECT_GT(link.Stats(Direction::kAtoB).wire_bytes,
            link.Stats(Direction::kAtoB).payload_bytes);
}

TEST(Link, LatencyAddsToDelivery) {
  LinkConfig config;
  config.bandwidth = GigabitsPerSecond(1.0);
  config.latency = Milliseconds(27.0);
  Link link(config);
  const SimTime tiny = link.Transmit(Direction::kAtoB, kSimEpoch, Bytes{1});
  EXPECT_GE(tiny, Milliseconds(27.0));
}

// --- Disk model. ---

TEST(Disk, SequentialReadAtConfiguredRate) {
  Disk disk(DiskConfig::Hdd());
  const SimTime done = disk.ReadSequential(kSimEpoch, MiB(120));
  EXPECT_NEAR(ToSeconds(done), 1.0, 0.01);
}

TEST(Disk, RandomReadsPayPositioningCost) {
  Disk disk(DiskConfig::Hdd());
  const SimTime one = disk.ReadRandom(kSimEpoch, Bytes{kPageSize});
  // 12 ms positioning dominates the 33 us of transfer.
  EXPECT_NEAR(ToSeconds(one), 0.012, 0.001);
  EXPECT_EQ(disk.RandomReads(), 1u);
}

TEST(Disk, SsdRandomReadsAreCheap) {
  Disk hdd(DiskConfig::Hdd());
  Disk ssd(DiskConfig::Ssd());
  const SimTime hdd_time = hdd.ReadRandom(kSimEpoch, Bytes{kPageSize});
  const SimTime ssd_time = ssd.ReadRandom(kSimEpoch, Bytes{kPageSize});
  EXPECT_LT(ToSeconds(ssd_time) * 10, ToSeconds(hdd_time));
}

TEST(Disk, RequestsSerializeOnTheDevice) {
  Disk disk(DiskConfig::Hdd());
  const SimTime first = disk.ReadSequential(kSimEpoch, MiB(120));
  const SimTime second = disk.WriteSequential(kSimEpoch, MiB(110));
  EXPECT_GT(second, first);  // write waits for the read
}

TEST(Disk, ByteCountersTrack) {
  Disk disk(DiskConfig::Ssd());
  disk.ReadSequential(kSimEpoch, MiB(10));
  disk.WriteSequential(kSimEpoch, MiB(20));
  EXPECT_EQ(disk.ReadBytes(), MiB(10));
  EXPECT_EQ(disk.WrittenBytes(), MiB(20));
}

// --- Checksum engine. ---

TEST(ChecksumEngine, Md5RateMatchesPaper) {
  ChecksumEngine engine(ChecksumEngineConfig{});
  const SimTime done =
      engine.Hash(kSimEpoch, MiB(350), DigestAlgorithm::kMd5);
  EXPECT_NEAR(ToSeconds(done), 1.0, 0.01);
}

TEST(ChecksumEngine, Sha1IsSlowerThanMd5) {
  ChecksumEngine a(ChecksumEngineConfig{});
  ChecksumEngine b(ChecksumEngineConfig{});
  const SimTime md5 = a.Hash(kSimEpoch, GiB(1), DigestAlgorithm::kMd5);
  const SimTime sha1 = b.Hash(kSimEpoch, GiB(1), DigestAlgorithm::kSha1);
  EXPECT_GT(sha1, md5);
}

TEST(ChecksumEngine, FnvRunsNearMemorySpeed) {
  ChecksumEngine engine(ChecksumEngineConfig{});
  const SimTime fnv = engine.Hash(kSimEpoch, GiB(1), DigestAlgorithm::kFnv1a);
  EXPECT_LT(ToSeconds(fnv), 0.5);
}

TEST(ChecksumEngine, ThreadsScaleThroughput) {
  ChecksumEngineConfig config;
  config.threads = 4;
  ChecksumEngine engine(config);
  const SimTime done =
      engine.Hash(kSimEpoch, MiB(1400), DigestAlgorithm::kMd5);
  EXPECT_NEAR(ToSeconds(done), 1.0, 0.01);
}

TEST(ChecksumEngine, WorkSerializesOnOneEngine) {
  ChecksumEngine engine(ChecksumEngineConfig{});
  const SimTime first = engine.Hash(kSimEpoch, MiB(350), DigestAlgorithm::kMd5);
  const SimTime second =
      engine.Hash(kSimEpoch, MiB(350), DigestAlgorithm::kMd5);
  EXPECT_NEAR(ToSeconds(second), 2 * ToSeconds(first), 0.01);
  EXPECT_EQ(engine.HashedBytes(), MiB(700));
}

}  // namespace
}  // namespace vecycle::sim
