// Protocol message wire-size accounting and the channel over a simulated
// link.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace vecycle::net {
namespace {

// --- Wire sizes. ---

TEST(Message, FullPageRecordSize) {
  Message msg;
  PageRecord record;
  record.has_payload = true;
  record.has_digest = true;
  msg.records.push_back(record);
  EXPECT_EQ(msg.WireSize(DigestAlgorithm::kMd5).count,
            kControlFrameBytes + kRecordHeaderBytes + 16 + kPageSize);
}

TEST(Message, ChecksumOnlyRecordSize) {
  Message msg;
  PageRecord record;
  record.has_payload = false;
  record.has_digest = true;
  msg.records.push_back(record);
  EXPECT_EQ(msg.WireSize(DigestAlgorithm::kMd5).count,
            kControlFrameBytes + kRecordHeaderBytes + 16);
}

TEST(Message, DupRefRecordSize) {
  Message msg;
  PageRecord record;
  record.has_payload = false;
  record.has_digest = false;
  record.is_dup_ref = true;
  msg.records.push_back(record);
  EXPECT_EQ(msg.WireSize(DigestAlgorithm::kMd5).count,
            kControlFrameBytes + kRecordHeaderBytes + 8);
}

TEST(Message, ZeroPageRecordIsHeaderOnly) {
  Message msg;
  PageRecord record;
  record.is_zero = true;
  record.has_payload = false;
  record.has_digest = false;
  msg.records.push_back(record);
  EXPECT_EQ(msg.WireSize(DigestAlgorithm::kMd5).count,
            kControlFrameBytes + kRecordHeaderBytes);
}

TEST(Message, BulkHashSizeMatchesSection32) {
  // §3.2: a 4 GiB VM -> 2^20 pages -> 16 MiB of MD5 checksums. Model at
  // 2^20 digests directly.
  Message msg;
  msg.type = MessageType::kBulkHashes;
  msg.bulk_hashes.resize(1u << 20);
  EXPECT_EQ(msg.WireSize(DigestAlgorithm::kMd5).count,
            kControlFrameBytes + (1ull << 24));
}

TEST(Message, FnvDigestsHalveChecksumBytes) {
  Message msg;
  PageRecord record;
  record.has_digest = true;
  msg.records.push_back(record);
  const auto md5 = msg.WireSize(DigestAlgorithm::kMd5);
  const auto fnv = msg.WireSize(DigestAlgorithm::kFnv1a);
  EXPECT_EQ(md5.count - fnv.count, 8u);
}

TEST(Message, TypeNames) {
  EXPECT_STREQ(ToString(MessageType::kPageBatch), "page-batch");
  EXPECT_STREQ(ToString(MessageType::kBulkHashes), "bulk-hashes");
  EXPECT_STREQ(ToString(MessageType::kDone), "done");
}

// --- Channel. ---

TEST(Channel, DeliversToReceiverAtArrivalTime) {
  sim::Simulator simulator;
  sim::Link link(sim::LinkConfig::Lan());
  Channel channel(simulator, link, sim::Direction::kAtoB,
                  DigestAlgorithm::kMd5);

  SimTime delivered_at = kSimEpoch;
  MessageType delivered_type = MessageType::kDone;
  channel.SetReceiver([&](const Message& msg, SimTime t) {
    delivered_at = t;
    delivered_type = msg.type;
  });

  Message msg;
  msg.type = MessageType::kRoundEnd;
  const SimTime predicted = channel.Send(std::move(msg), kSimEpoch);
  simulator.Run();
  EXPECT_EQ(delivered_at, predicted);
  EXPECT_EQ(delivered_type, MessageType::kRoundEnd);
  EXPECT_GE(delivered_at, Milliseconds(0.2));  // at least the latency
}

TEST(Channel, MessagesArriveInOrder) {
  sim::Simulator simulator;
  sim::Link link(sim::LinkConfig::Lan());
  Channel channel(simulator, link, sim::Direction::kAtoB,
                  DigestAlgorithm::kMd5);

  std::vector<std::uint32_t> rounds;
  channel.SetReceiver(
      [&](const Message& msg, SimTime) { rounds.push_back(msg.round); });

  for (std::uint32_t i = 0; i < 10; ++i) {
    Message msg;
    msg.round = i;
    // Deliberately send with identical earliest times.
    channel.Send(std::move(msg), kSimEpoch);
  }
  simulator.Run();
  EXPECT_EQ(rounds, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6, 7, 8,
                                                9}));
}

TEST(Channel, SendWithoutReceiverThrows) {
  sim::Simulator simulator;
  sim::Link link(sim::LinkConfig::Lan());
  Channel channel(simulator, link, sim::Direction::kAtoB,
                  DigestAlgorithm::kMd5);
  EXPECT_THROW(channel.Send(Message{}, kSimEpoch), CheckFailure);
}

TEST(Channel, AccountsPayload) {
  sim::Simulator simulator;
  sim::Link link(sim::LinkConfig::Lan());
  Channel channel(simulator, link, sim::Direction::kAtoB,
                  DigestAlgorithm::kMd5);
  channel.SetReceiver([](const Message&, SimTime) {});

  Message msg;
  PageRecord record;
  record.has_payload = true;
  record.has_digest = true;
  msg.records.push_back(record);
  const Bytes expected = msg.WireSize(DigestAlgorithm::kMd5);
  channel.Send(std::move(msg), kSimEpoch);
  simulator.Run();
  EXPECT_EQ(channel.PayloadSent(), expected);
  EXPECT_EQ(channel.MessagesSent(), 1u);
}

TEST(Channel, OppositeDirectionsDoNotQueueOnEachOther) {
  sim::Simulator simulator;
  sim::Link link(sim::LinkConfig::Lan());
  Channel forward(simulator, link, sim::Direction::kAtoB,
                  DigestAlgorithm::kMd5);
  Channel backward(simulator, link, sim::Direction::kBtoA,
                   DigestAlgorithm::kMd5);
  forward.SetReceiver([](const Message&, SimTime) {});
  backward.SetReceiver([](const Message&, SimTime) {});

  Message big;
  big.bulk_hashes.resize(1u << 18);  // 4 MiB of digests
  const SimTime fwd = forward.Send(std::move(big), kSimEpoch);
  const SimTime bwd = backward.Send(Message{}, kSimEpoch);
  simulator.Run();
  EXPECT_LT(bwd, fwd);  // the tiny reverse frame is not stuck behind it
}

}  // namespace
}  // namespace vecycle::net
