// The reproduction-gate tests reuse the bench harness scaffolding so that
// what the tests assert is literally what the benches print.
#pragma once

#include "bench_util.hpp"  // from bench/

namespace testbench = vecycle::bench;
