// The observability layer: TraceRecorder invariants (span nesting,
// sim-time monotonicity, deterministic Chrome-trace output), the
// MetricsRegistry schema, the VECYCLE_TRACE environment gate, the
// single-pointer-test disabled path, and end-to-end traces/metrics from
// pre-copy and post-copy runs — including a ReplayCheck-style proof that
// the exported trace is byte-identical across identically seeded runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "audit/replay.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "migration/engine.hpp"
#include "migration/observe.hpp"
#include "migration/postcopy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/checkpoint.hpp"
#include "vm/workload.hpp"

namespace vecycle {
namespace {

// --- TraceRecorder: recording invariants. ---

TEST(TraceRecorder, InternsNames) {
  obs::TraceRecorder rec;
  const auto a = rec.Name("round 1");
  const auto b = rec.Name("round 2");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.Name("round 1"), a);
}

TEST(TraceRecorder, SpansCloseInnermostFirstPerTrack) {
  obs::TraceRecorder rec;
  const auto process = rec.NewProcess("vm/hashes");
  const auto track = rec.Track(process, "rounds");
  const auto outer = rec.BeginSpan(track, rec.Name("outer"), Seconds(1.0));
  const auto inner = rec.BeginSpan(track, rec.Name("inner"), Seconds(2.0));
  // Closing the outer span with the inner still open is the kind of bug
  // the viewers silently mis-render; the recorder rejects it eagerly.
  EXPECT_THROW(rec.EndSpan(outer, Seconds(3.0)), CheckFailure);
  rec.EndSpan(inner, Seconds(3.0));
  rec.EndSpan(outer, Seconds(4.0));
  EXPECT_EQ(rec.EventCount(), 2u);
}

TEST(TraceRecorder, NestingIsPerTrackNotGlobal) {
  obs::TraceRecorder rec;
  const auto process = rec.NewProcess("vm");
  const auto track_a = rec.Track(process, "a");
  const auto track_b = rec.Track(process, "b");
  const auto on_a = rec.BeginSpan(track_a, rec.Name("s"), Seconds(1.0));
  const auto on_b = rec.BeginSpan(track_b, rec.Name("s"), Seconds(2.0));
  // Interleaved closes across *different* tracks are fine.
  EXPECT_NO_THROW(rec.EndSpan(on_a, Seconds(3.0)));
  EXPECT_NO_THROW(rec.EndSpan(on_b, Seconds(4.0)));
}

TEST(TraceRecorder, RejectsSpanEndingBeforeItStarts) {
  obs::TraceRecorder rec;
  const auto process = rec.NewProcess("vm");
  const auto track = rec.Track(process, "t");
  EXPECT_THROW(
      rec.Span(track, rec.Name("backwards"), Seconds(2.0), Seconds(1.0)),
      CheckFailure);
  const auto open = rec.BeginSpan(track, rec.Name("s"), Seconds(5.0));
  EXPECT_THROW(rec.EndSpan(open, Seconds(4.0)), CheckFailure);
}

TEST(TraceRecorder, RejectsEventsBeforeTheSimulationEpoch) {
  obs::TraceRecorder rec;
  const auto process = rec.NewProcess("vm");
  const auto track = rec.Track(process, "t");
  EXPECT_THROW(rec.Instant(track, rec.Name("early"), SimTime{-1}),
               CheckFailure);
}

TEST(TraceRecorder, RejectsUnknownTracksAndProcesses) {
  obs::TraceRecorder rec;
  EXPECT_THROW(rec.Track(/*process=*/0, "orphan"), CheckFailure);
  EXPECT_THROW(rec.Counter(/*track=*/0, rec.Name("c"), kSimEpoch, 1.0),
               CheckFailure);
}

TEST(TraceRecorder, ClearDropsEventsButKeepsInternedHandles) {
  obs::TraceRecorder rec;
  const auto process = rec.NewProcess("vm");
  const auto track = rec.Track(process, "t");
  const auto name = rec.Name("sample");
  rec.Counter(track, name, Seconds(1.0), 7.0);
  ASSERT_FALSE(rec.Empty());
  rec.Clear();
  EXPECT_TRUE(rec.Empty());
  // Components cache NameId/TrackId across runs; they must stay valid.
  EXPECT_EQ(rec.Name("sample"), name);
  EXPECT_NO_THROW(rec.Counter(track, name, Seconds(2.0), 8.0));
}

// --- Chrome-trace export. ---

/// Extracts every "ts" value, in emission order, from trace JSON.
std::vector<double> TimestampsOf(const std::string& json) {
  std::vector<double> out;
  const std::string key = "\"ts\":";
  for (std::size_t at = json.find(key); at != std::string::npos;
       at = json.find(key, at + key.size())) {
    out.push_back(std::strtod(json.c_str() + at + key.size(), nullptr));
  }
  return out;
}

TEST(ChromeTrace, EventsAreEmittedInTimeOrder) {
  obs::TraceRecorder rec;
  const auto process = rec.NewProcess("vm");
  const auto track = rec.Track(process, "t");
  // Recorded out of order (retroactive spans do this in real runs); the
  // export must still be sorted so viewers and diffs see a stable file.
  rec.Span(track, rec.Name("late"), Seconds(9.0), Seconds(10.0));
  rec.Instant(track, rec.Name("mid"), Seconds(5.0));
  rec.Counter(track, rec.Name("early"), Seconds(1.0), 3.0);
  const auto stamps = TimestampsOf(rec.ChromeTraceJson());
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_TRUE(std::is_sorted(stamps.begin(), stamps.end()));
}

TEST(ChromeTrace, CarriesMetadataArgsAndPhases) {
  obs::TraceRecorder rec;
  const auto process = rec.NewProcess("vm \"quoted\"");
  const auto track = rec.Track(process, "rounds");
  const auto span = rec.BeginSpan(track, rec.Name("round 1"), Seconds(1.0));
  rec.Arg(rec.Name("pages"), 2048);
  rec.EndSpan(span, Seconds(2.0));
  rec.Counter(track, rec.Name("dirty_pages"), Seconds(2.0), 37.0);
  rec.Instant(track, rec.Name("fault"), Seconds(3.0));

  const std::string json = rec.ChromeTraceJson();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("vm \\\"quoted\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pages\":2048"), std::string::npos);
  EXPECT_NE(json.find("\"dirty_pages\":37"), std::string::npos);
  // A span of 1 s starting at 1 s: microsecond timestamps, fixed
  // three-decimal fraction for nanosecond precision.
  EXPECT_NE(json.find("\"ts\":1000000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000000.000"), std::string::npos);
}

// --- Environment gate (mirrors VECYCLE_AUDIT). ---

TEST(TraceEnv, ParsingMatchesDocumentedValues) {
  for (const char* on : {"1", "true", "TRUE", "on", "yes"}) {
    ASSERT_EQ(setenv("VECYCLE_TRACE", on, /*overwrite=*/1), 0);
    EXPECT_TRUE(obs::EnvEnabled()) << on;
  }
  for (const char* off : {"0", "false", "off", "no", ""}) {
    ASSERT_EQ(setenv("VECYCLE_TRACE", off, 1), 0);
    EXPECT_FALSE(obs::EnvEnabled()) << off;
  }
  ASSERT_EQ(unsetenv("VECYCLE_TRACE"), 0);
  EXPECT_FALSE(obs::EnvEnabled());
}

// --- Metrics registry. ---

TEST(Metrics, SerializesTheStableSchema) {
  obs::MetricsRegistry registry;
  auto& record = registry.NewRecord("vm/hashes", "precopy");
  record.Counter("tx_bytes", 123);
  record.Counter("rounds", 4);
  record.Gauge("compression_ratio", 0.5);
  const std::string json = registry.ToJson("obs_test");
  EXPECT_NE(json.find("\"schema\":\"vecycle.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"source\":\"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"vm/hashes\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"precopy\""), std::string::npos);
  EXPECT_NE(json.find("\"tx_bytes\":123"), std::string::npos);
  EXPECT_NE(json.find("\"compression_ratio\":0.5"), std::string::npos);
  EXPECT_EQ(registry.Count(), 1u);
  registry.Clear();
  EXPECT_TRUE(registry.Empty());
}

// --- End-to-end: migrations feed the recorders. ---

struct TestBed {
  sim::Simulator simulator;
  sim::Link link{sim::LinkConfig::Lan()};
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk src_disk{sim::DiskConfig::Hdd()};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore src_store{src_disk};
  storage::CheckpointStore dst_store{dst_disk};

  migration::MigrationRun MakeRun(vm::GuestMemory& memory,
                                  migration::MigrationConfig config) {
    migration::MigrationRun run;
    run.simulator = &simulator;
    run.link = &link;
    run.direction = sim::Direction::kAtoB;
    run.source_memory = &memory;
    run.source = {&src_cpu, &src_store};
    run.destination = {&dst_cpu, &dst_store};
    run.vm_id = "vm";
    run.config = config;
    return run;
  }
};

vm::GuestMemory RandomMemory(Bytes ram, std::uint64_t seed) {
  vm::GuestMemory memory(ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(memory, rng);
  return memory;
}

/// One traced return migration (stale checkpoint at the destination,
/// churn in between) recording into the given private recorders.
migration::MigrationOutcome RunTracedReturnMigration(
    obs::TraceRecorder& tracer, obs::MetricsRegistry& metrics,
    migration::Strategy strategy = migration::Strategy::kHashes) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 11);
  const auto departure_generations = memory.Generations();
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  vm::UniformRandomWorkload churn(200.0, 99);
  churn.Advance(memory, Seconds(10.0));

  migration::MigrationConfig config;
  config.strategy = strategy;
  auto run = bed.MakeRun(memory, config);
  run.departure_generations = departure_generations;
  run.tracer = &tracer;
  run.metrics = &metrics;
  auto outcome = migration::RunMigration(std::move(run));
  // The run-private wiring must be gone: shared resources cannot keep a
  // pointer into a recorder the caller may destroy.
  EXPECT_EQ(bed.simulator.Tracer(), nullptr);
  EXPECT_EQ(bed.src_cpu.Tracer(), nullptr);
  EXPECT_EQ(bed.dst_cpu.Tracer(), nullptr);
  EXPECT_EQ(bed.dst_store.Tracer(), nullptr);
  return outcome;
}

TEST(MigrationTrace, EmitsRoundSpansPhasesAndCounters) {
  obs::TraceRecorder tracer;
  obs::MetricsRegistry metrics;
  const auto outcome = RunTracedReturnMigration(tracer, metrics);
  ASSERT_FALSE(tracer.Empty());

  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"vm/hashes\""), std::string::npos);  // process
  EXPECT_NE(json.find("\"round 1\""), std::string::npos);
  EXPECT_NE(json.find("\"setup\""), std::string::npos);
  EXPECT_NE(json.find("\"migration\""), std::string::npos);
  EXPECT_NE(json.find("\"downtime\""), std::string::npos);
  EXPECT_NE(json.find("\"wire_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"dirty_pages\""), std::string::npos);
  EXPECT_GT(outcome.stats.rounds, 1u);
  // One span per round on the source-rounds track.
  for (std::uint32_t r = 1; r <= outcome.stats.rounds; ++r) {
    const std::string name = "\"round " + std::to_string(r);
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST(MigrationTrace, MetricsRecordCoversEveryStatsField) {
  obs::TraceRecorder tracer;
  obs::MetricsRegistry metrics;
  RunTracedReturnMigration(tracer, metrics);
  ASSERT_EQ(metrics.Count(), 1u);
  const auto& record = metrics.Records().front();
  EXPECT_EQ(record.kind, "precopy");

  const auto has_counter = [&record](std::string_view name) {
    for (const auto& [key, value] : record.counters) {
      if (key == name) return true;
    }
    return false;
  };
  // Every MigrationStats field, by serialized name. Extending the struct
  // without extending RecordMigrationStats should fail here.
  for (const char* name :
       {"rounds", "tx_bytes", "bulk_exchange_bytes", "query_bytes",
        "query_count", "pages_sent_full", "pages_sent_checksum",
        "pages_dup_ref", "pages_skipped_clean", "pages_resent_dirty",
        "pages_matched_in_place", "pages_from_checkpoint",
        "fallback_pages", "disk_read_errors", "retries",
        "source_hashed_bytes", "dest_hashed_bytes", "payload_bytes_original",
        "payload_bytes_on_wire", "total_time_ns", "downtime_ns",
        "setup_time_ns", "round1_pages"}) {
    EXPECT_TRUE(has_counter(name)) << name;
  }
  const auto has_gauge = [&record](std::string_view name) {
    for (const auto& [key, value] : record.gauges) {
      if (key == name) return true;
    }
    return false;
  };
  for (const char* name : {"total_time_s", "downtime_s", "setup_time_s",
                           "throughput_mib_per_s", "compression_ratio"}) {
    EXPECT_TRUE(has_gauge(name)) << name;
  }
}

TEST(MigrationTrace, DisabledRunTouchesNoRecorder) {
  ASSERT_EQ(unsetenv("VECYCLE_TRACE"), 0);
  obs::GlobalTrace().Clear();
  obs::GlobalMetrics().Clear();
  TestBed bed;
  auto memory = RandomMemory(MiB(2), 5);
  migration::MigrationConfig config;
  ASSERT_FALSE(config.trace);
  migration::RunMigration(bed.MakeRun(memory, config));
  EXPECT_TRUE(obs::GlobalTrace().Empty());
  EXPECT_TRUE(obs::GlobalMetrics().Empty());
}

TEST(MigrationTrace, ConfigFlagArmsTheGlobalRecorder) {
  ASSERT_EQ(unsetenv("VECYCLE_TRACE"), 0);
  obs::GlobalTrace().Clear();
  obs::GlobalMetrics().Clear();
  TestBed bed;
  auto memory = RandomMemory(MiB(2), 5);
  migration::MigrationConfig config;
  config.trace = true;
  migration::RunMigration(bed.MakeRun(memory, config));
  EXPECT_FALSE(obs::GlobalTrace().Empty());
  EXPECT_EQ(obs::GlobalMetrics().Count(), 1u);
  obs::GlobalTrace().Clear();
  obs::GlobalMetrics().Clear();
}

TEST(MigrationTrace, EnvVariableArmsTheGlobalRecorder) {
  ASSERT_EQ(setenv("VECYCLE_TRACE", "1", 1), 0);
  obs::GlobalTrace().Clear();
  obs::GlobalMetrics().Clear();
  TestBed bed;
  auto memory = RandomMemory(MiB(2), 6);
  migration::MigrationConfig config;
  ASSERT_FALSE(config.trace);
  migration::RunMigration(bed.MakeRun(memory, config));
  ASSERT_EQ(unsetenv("VECYCLE_TRACE"), 0);
  EXPECT_FALSE(obs::GlobalTrace().Empty());
  obs::GlobalTrace().Clear();
  obs::GlobalMetrics().Clear();
}

// --- Determinism: the exported artifacts are byte-identical. ---

TEST(MigrationTrace, TraceIsByteIdenticalAcrossSeededRuns) {
  obs::TraceRecorder first_trace;
  obs::MetricsRegistry first_metrics;
  RunTracedReturnMigration(first_trace, first_metrics);
  obs::TraceRecorder second_trace;
  obs::MetricsRegistry second_metrics;
  RunTracedReturnMigration(second_trace, second_metrics);
  EXPECT_EQ(first_trace.ChromeTraceJson(), second_trace.ChromeTraceJson());
  EXPECT_EQ(first_metrics.ToJson("replay"), second_metrics.ToJson("replay"));
}

TEST(MigrationTrace, ReplayCheckCoversTheTracedRun) {
  // The trace file content folded into the ReplayCheck fingerprint: any
  // wall-clock leakage or unstable formatting in the recorder itself
  // would diverge here even if the simulation stayed deterministic.
  const audit::ReplayCheck::Scenario scenario =
      [](audit::SimAuditor& auditor) {
        obs::TraceRecorder tracer;
        obs::MetricsRegistry metrics;
        TestBed bed;
        auto memory = RandomMemory(MiB(4), 17);
        const auto departure_generations = memory.Generations();
        bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                           kSimEpoch);
        vm::UniformRandomWorkload churn(150.0, 42);
        churn.Advance(memory, Seconds(8.0));

        migration::MigrationConfig config;
        config.strategy = migration::Strategy::kHashesPlusDedup;
        auto run = bed.MakeRun(memory, config);
        run.departure_generations = departure_generations;
        run.auditor = &auditor;
        run.tracer = &tracer;
        run.metrics = &metrics;
        migration::RunMigration(std::move(run));

        std::uint64_t fingerprint = 0xcbf29ce484222325ull;
        for (const char c :
             tracer.ChromeTraceJson() + metrics.ToJson("replay")) {
          fingerprint = (fingerprint ^ static_cast<unsigned char>(c)) *
                        0x100000001b3ull;
        }
        return fingerprint;
      };
  EXPECT_NO_THROW(audit::ReplayCheck::Verify(scenario));
}

// --- Post-copy. ---

TEST(PostCopyTrace, EmitsPhasesFaultsAndMetrics) {
  sim::Simulator simulator;
  sim::Link link{sim::LinkConfig::Lan()};
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk dst_disk{sim::DiskConfig::Ssd()};
  storage::CheckpointStore dst_store{dst_disk};

  auto memory = RandomMemory(MiB(8), 31);
  dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory), kSimEpoch);
  vm::UniformRandomWorkload churn(200.0, 7);
  churn.Advance(memory, Seconds(5.0));

  obs::TraceRecorder tracer;
  obs::MetricsRegistry metrics;
  migration::PostCopyRun run;
  run.simulator = &simulator;
  run.link = &link;
  run.source_memory = &memory;
  run.source_cpu = &src_cpu;
  run.dest_cpu = &dst_cpu;
  run.dest_store = &dst_store;
  run.tracer = &tracer;
  run.metrics = &metrics;
  const auto outcome = migration::RunPostCopyMigration(std::move(run));
  EXPECT_EQ(simulator.Tracer(), nullptr);  // detached on completion

  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"vm/postcopy\""), std::string::npos);
  EXPECT_NE(json.find("\"switchover\""), std::string::npos);
  EXPECT_NE(json.find("\"residency\""), std::string::npos);
  EXPECT_NE(json.find("\"remaining_pages\""), std::string::npos);
  if (outcome.stats.remote_faults > 0) {
    EXPECT_NE(json.find("\"remote_fault\""), std::string::npos);
  }

  ASSERT_EQ(metrics.Count(), 1u);
  const auto& record = metrics.Records().front();
  EXPECT_EQ(record.kind, "postcopy");
  EXPECT_EQ(record.counters.size(), 8u);  // every PostCopyStats field
  EXPECT_EQ(record.gauges.size(), 3u);
}

}  // namespace
}  // namespace vecycle
