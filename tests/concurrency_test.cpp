// Concurrent migrations through the MigrationSession API: multiple
// transfers share links and host CPUs batch-by-batch, reproducing the
// contention §4.4 alludes to ("the migration traffic competes with other
// network users").
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "migration/engine.hpp"
#include "storage/checkpoint.hpp"

namespace vecycle::migration {
namespace {

struct SharedWorld {
  sim::Simulator simulator;
  sim::Link link{sim::LinkConfig::Lan()};
  sim::ChecksumEngine cpu_a{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine cpu_b{sim::ChecksumEngineConfig{}};
  sim::Disk disk_a{sim::DiskConfig::Hdd()};
  sim::Disk disk_b{sim::DiskConfig::Hdd()};
  storage::CheckpointStore store_a{disk_a};
  storage::CheckpointStore store_b{disk_b};

  MigrationRun MakeRun(vm::GuestMemory& memory, const std::string& vm_id,
                       sim::Direction direction) {
    MigrationRun run;
    run.simulator = &simulator;
    run.link = &link;
    run.direction = direction;
    run.source_memory = &memory;
    if (direction == sim::Direction::kAtoB) {
      run.source = {&cpu_a, &store_a};
      run.destination = {&cpu_b, &store_b};
    } else {
      run.source = {&cpu_b, &store_b};
      run.destination = {&cpu_a, &store_a};
    }
    run.vm_id = vm_id;
    run.config.strategy = Strategy::kFull;
    return run;
  }
};

vm::GuestMemory FilledMemory(Bytes ram, std::uint64_t seed) {
  vm::GuestMemory memory(ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    memory.WritePage(p, rng.Next() | (1ull << 62));
  }
  return memory;
}

double SoloSeconds(Bytes ram) {
  SharedWorld world;
  auto memory = FilledMemory(ram, 1);
  auto outcome =
      RunMigration(world.MakeRun(memory, "solo", sim::Direction::kAtoB));
  return ToSeconds(outcome.stats.total_time);
}

TEST(Concurrency, TwoMigrationsShareTheLink) {
  const double solo = SoloSeconds(MiB(64));

  SharedWorld world;
  auto mem1 = FilledMemory(MiB(64), 1);
  auto mem2 = FilledMemory(MiB(64), 2);
  MigrationSession s1(world.MakeRun(mem1, "vm1", sim::Direction::kAtoB));
  MigrationSession s2(world.MakeRun(mem2, "vm2", sim::Direction::kAtoB));
  world.simulator.Run();
  ASSERT_TRUE(s1.Completed());
  ASSERT_TRUE(s2.Completed());
  auto o1 = s1.TakeOutcome();
  auto o2 = s2.TakeOutcome();

  EXPECT_TRUE(o1.dest_memory->ContentEquals(mem1));
  EXPECT_TRUE(o2.dest_memory->ContentEquals(mem2));
  // Sharing one link roughly doubles each migration's time.
  EXPECT_GT(ToSeconds(o1.stats.total_time), 1.5 * solo);
  EXPECT_GT(ToSeconds(o2.stats.total_time), 1.5 * solo);
}

TEST(Concurrency, SharingIsFair) {
  SharedWorld world;
  auto mem1 = FilledMemory(MiB(64), 3);
  auto mem2 = FilledMemory(MiB(64), 4);
  MigrationSession s1(world.MakeRun(mem1, "vm1", sim::Direction::kAtoB));
  MigrationSession s2(world.MakeRun(mem2, "vm2", sim::Direction::kAtoB));
  world.simulator.Run();
  const auto t1 = ToSeconds(s1.TakeOutcome().stats.total_time);
  const auto t2 = ToSeconds(s2.TakeOutcome().stats.total_time);
  // Batch-granular interleaving: neither migration starves.
  EXPECT_LT(std::abs(t1 - t2) / std::max(t1, t2), 0.25);
}

TEST(Concurrency, OppositeDirectionsDoNotContend) {
  const double solo = SoloSeconds(MiB(64));

  SharedWorld world;
  auto mem1 = FilledMemory(MiB(64), 5);
  auto mem2 = FilledMemory(MiB(64), 6);
  MigrationSession s1(world.MakeRun(mem1, "vm1", sim::Direction::kAtoB));
  MigrationSession s2(world.MakeRun(mem2, "vm2", sim::Direction::kBtoA));
  world.simulator.Run();
  const auto t1 = ToSeconds(s1.TakeOutcome().stats.total_time);
  const auto t2 = ToSeconds(s2.TakeOutcome().stats.total_time);
  // Full duplex: each direction has its own capacity. Only the small
  // reverse-direction acks overlap, so times stay near solo.
  EXPECT_LT(t1, 1.2 * solo);
  EXPECT_LT(t2, 1.2 * solo);
}

TEST(Concurrency, FourWayPileUpStillCompletesCorrectly) {
  SharedWorld world;
  std::vector<vm::GuestMemory> memories;
  for (std::uint64_t i = 0; i < 4; ++i) {
    memories.push_back(FilledMemory(MiB(16), 10 + i));
  }
  std::vector<std::unique_ptr<MigrationSession>> sessions;
  for (std::size_t i = 0; i < memories.size(); ++i) {
    sessions.push_back(std::make_unique<MigrationSession>(world.MakeRun(
        memories[i], "vm" + std::to_string(i),
        i % 2 == 0 ? sim::Direction::kAtoB : sim::Direction::kBtoA)));
  }
  world.simulator.Run();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    ASSERT_TRUE(sessions[i]->Completed()) << i;
    auto outcome = sessions[i]->TakeOutcome();
    EXPECT_TRUE(outcome.dest_memory->ContentEquals(memories[i])) << i;
  }
}

TEST(Concurrency, TakeOutcomeBeforeCompletionThrows) {
  SharedWorld world;
  auto memory = FilledMemory(MiB(16), 20);
  MigrationSession session(
      world.MakeRun(memory, "vm", sim::Direction::kAtoB));
  EXPECT_FALSE(session.Completed());
  EXPECT_THROW(session.TakeOutcome(), CheckFailure);
  world.simulator.Run();
  (void)session.TakeOutcome();
}

TEST(Concurrency, TakeOutcomeTwiceThrows) {
  SharedWorld world;
  auto memory = FilledMemory(MiB(16), 21);
  MigrationSession session(
      world.MakeRun(memory, "vm", sim::Direction::kAtoB));
  world.simulator.Run();
  (void)session.TakeOutcome();
  EXPECT_THROW(session.TakeOutcome(), CheckFailure);
}

// --- Gang migration with a shared cross-VM dedup cache (VMFlock [4]). ---

TEST(GangDedup, SharedCacheCollapsesCrossVmDuplicates) {
  // Two VMs built from the same "OS image": 75% of pages drawn from one
  // shared pool, the rest unique per VM.
  auto make_memory = [](std::uint64_t unique_seed) {
    vm::GuestMemory memory(MiB(16), vm::ContentMode::kSeedOnly);
    Xoshiro256 pool_rng(0x05);  // same pool for both VMs
    Xoshiro256 own_rng(unique_seed);
    for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
      if (p % 4 != 0) {
        memory.WritePage(p, 1'000'000 + pool_rng.NextBelow(100'000));
      } else {
        memory.WritePage(p, own_rng.Next() | (1ull << 62));
      }
    }
    return memory;
  };

  auto run_gang = [&](bool shared) {
    SharedWorld world;
    auto mem1 = make_memory(41);
    auto mem2 = make_memory(42);
    std::unordered_map<std::uint64_t, std::uint64_t> gang_cache;

    auto run1 = world.MakeRun(mem1, "vm1", sim::Direction::kAtoB);
    auto run2 = world.MakeRun(mem2, "vm2", sim::Direction::kAtoB);
    run1.config.strategy = Strategy::kDedup;
    run2.config.strategy = Strategy::kDedup;
    if (shared) {
      run1.shared_dedup_cache = &gang_cache;
      run2.shared_dedup_cache = &gang_cache;
    }
    MigrationSession s1(std::move(run1));
    MigrationSession s2(std::move(run2));
    world.simulator.Run();
    auto o1 = s1.TakeOutcome();
    auto o2 = s2.TakeOutcome();
    EXPECT_TRUE(o1.dest_memory->ContentEquals(mem1));
    EXPECT_TRUE(o2.dest_memory->ContentEquals(mem2));
    return o1.stats.tx_bytes + o2.stats.tx_bytes;
  };

  const auto separate = run_gang(false);
  const auto gang = run_gang(true);
  // The shared pool's pages cross the wire once instead of twice: the
  // gang ships meaningfully less in total.
  EXPECT_LT(gang.count, separate.count * 9 / 10);
}

TEST(GangDedup, PrivateCachesAreIndependent) {
  // Without sharing, identical content in two VMs is sent by both.
  SharedWorld world;
  vm::GuestMemory mem1(MiB(4), vm::ContentMode::kSeedOnly);
  vm::GuestMemory mem2(MiB(4), vm::ContentMode::kSeedOnly);
  for (vm::PageId p = 0; p < mem1.PageCount(); ++p) {
    mem1.WritePage(p, 77);  // one content, everywhere
    mem2.WritePage(p, 77);
  }
  auto run1 = world.MakeRun(mem1, "vm1", sim::Direction::kAtoB);
  auto run2 = world.MakeRun(mem2, "vm2", sim::Direction::kAtoB);
  run1.config.strategy = Strategy::kDedup;
  run2.config.strategy = Strategy::kDedup;
  MigrationSession s1(std::move(run1));
  MigrationSession s2(std::move(run2));
  world.simulator.Run();
  const auto o1 = s1.TakeOutcome();
  const auto o2 = s2.TakeOutcome();
  // Each VM sends the content once itself.
  EXPECT_EQ(o1.stats.pages_sent_full, 1u);
  EXPECT_EQ(o2.stats.pages_sent_full, 1u);
}

TEST(Concurrency, ConcurrentVeCycleAndBaselineShareSourceCpu) {
  // A VeCycle migration (checksum-bound) and a plain one sharing the same
  // source host: the checksum work and the transfers serialize on their
  // respective shared resources, and both still complete correctly.
  SharedWorld world;
  auto mem1 = FilledMemory(MiB(32), 30);
  auto mem2 = FilledMemory(MiB(32), 31);

  // Give vm1 a checkpoint + knowledge at the destination so it takes the
  // checksum path.
  world.store_b.Save("vm1", storage::Checkpoint::CaptureFrom(mem1),
                     kSimEpoch);
  std::vector<Digest128> knowledge;
  for (vm::PageId p = 0; p < mem1.PageCount(); ++p) {
    knowledge.push_back(mem1.PageDigest(p));
  }

  auto run1 = world.MakeRun(mem1, "vm1", sim::Direction::kAtoB);
  run1.config.strategy = Strategy::kHashes;
  run1.source_knowledge = std::move(knowledge);
  MigrationSession s1(std::move(run1));
  MigrationSession s2(world.MakeRun(mem2, "vm2", sim::Direction::kAtoB));
  world.simulator.Run();

  EXPECT_TRUE(s1.TakeOutcome().dest_memory->ContentEquals(mem1));
  EXPECT_TRUE(s2.TakeOutcome().dest_memory->ContentEquals(mem2));
}

}  // namespace
}  // namespace vecycle::migration
