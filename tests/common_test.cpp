// Units, rates, formatting, RNG determinism, and the check machinery.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace vecycle {
namespace {

// --- Byte units. ---

TEST(Units, ByteConstructors) {
  EXPECT_EQ(KiB(1).count, 1024u);
  EXPECT_EQ(MiB(1).count, 1024u * 1024u);
  EXPECT_EQ(GiB(1).count, 1024ull * 1024 * 1024);
  EXPECT_EQ(Pages(2).count, 2 * kPageSize);
}

TEST(Units, ByteArithmetic) {
  EXPECT_EQ(MiB(1) + MiB(1), MiB(2));
  EXPECT_EQ(MiB(3) - MiB(1), MiB(2));
  EXPECT_EQ(MiB(2) * 3, MiB(6));
  Bytes b = MiB(1);
  b += MiB(2);
  EXPECT_EQ(b, MiB(3));
  b -= MiB(1);
  EXPECT_EQ(b, MiB(2));
}

TEST(Units, ByteConversions) {
  EXPECT_DOUBLE_EQ(ToMiB(MiB(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToGiB(GiB(2)), 2.0);
  EXPECT_DOUBLE_EQ(ToGiB(MiB(512)), 0.5);
}

// --- Rates. ---

TEST(Units, GigabitLinkMovesGigabyteInAboutTenSeconds) {
  // §4.4: "Copying one gigabyte takes about 10 seconds over a gigabit
  // link." (Raw serialization, before framing overhead.)
  const auto rate = GigabitsPerSecond(1.0);
  const double seconds = ToSeconds(rate.TimeFor(GiB(1)));
  EXPECT_NEAR(seconds, 8.6, 0.1);  // 2^30 bytes at 10^9 bits/s
}

TEST(Units, Md5RateMatchesPaperQuote) {
  // §3.4: 350 MiB/s — 1 GiB of hashing takes ~2.9 s.
  const auto rate = MiBPerSecond(350.0);
  EXPECT_NEAR(ToSeconds(rate.TimeFor(GiB(1))), 1024.0 / 350.0, 0.01);
}

TEST(Units, TimeForZeroBytesIsZero) {
  EXPECT_EQ(MiBPerSecond(100.0).TimeFor(Bytes{0}), SimDuration::zero());
}

TEST(Units, TimeForRoundsUpToNanosecond) {
  // One byte at an absurdly high rate still takes at least 1 ns.
  EXPECT_GE(GigabitsPerSecond(100.0).TimeFor(Bytes{1}).count(), 1);
}

TEST(Units, DurationHelpers) {
  EXPECT_EQ(Hours(1), Minutes(60));
  EXPECT_EQ(Minutes(1), Seconds(60));
  EXPECT_DOUBLE_EQ(ToSeconds(Milliseconds(27.0)), 0.027);
}

TEST(Units, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(Bytes{512}), "512 B");
  EXPECT_EQ(FormatBytes(KiB(2)), "2.00 KiB");
  EXPECT_EQ(FormatBytes(MiB(3)), "3.00 MiB");
  EXPECT_EQ(FormatBytes(GiB(1)), "1.00 GiB");
}

TEST(Units, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(Seconds(90.0)), "1.50 min");
  EXPECT_EQ(FormatDuration(Seconds(2.5)), "2.50 s");
  EXPECT_EQ(FormatDuration(Milliseconds(12.0)), "12.00 ms");
  EXPECT_EQ(FormatDuration(Hours(25.0)), "25.00 h");
}

// --- RNG. ---

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, SplitMixDiffersAcrossSeeds) {
  EXPECT_NE(SplitMix64(1).Next(), SplitMix64(2).Next());
}

TEST(Rng, XoshiroIsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(17);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Xoshiro256 rng(23);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads, kDraws * 0.3, kDraws * 0.02);
}

TEST(Rng, NextBoolDegenerateProbabilities) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

// --- Check machinery. ---

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(VEC_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithExpression) {
  try {
    VEC_CHECK(1 == 2);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, MessageIsAppended) {
  try {
    VEC_CHECK_MSG(false, "extra context");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace vecycle
