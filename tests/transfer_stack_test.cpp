// Transfer-stack tests (QEMU parity: multifd, recycle-aware delta
// encoding, auto-converge). Multifd must beat the single-stream TCP
// window cap on a WAN link; delta encoding must cut wire bytes on a
// return migration and degrade per page when the recycled baseline
// rotted; auto-converge must throttle a diverging writer into
// convergence. All of it under the byte-conservation audits.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "migration/engine.hpp"
#include "migration/observe.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/checkpoint.hpp"
#include "vm/workload.hpp"

namespace vecycle::migration {
namespace {

struct TestBed {
  explicit TestBed(sim::LinkConfig link_config = sim::LinkConfig::Lan())
      : link(link_config) {}

  sim::Simulator simulator;
  sim::Link link;
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk src_disk{sim::DiskConfig::Hdd()};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore src_store{src_disk};
  storage::CheckpointStore dst_store{dst_disk};

  MigrationRun MakeRun(vm::GuestMemory& memory, MigrationConfig config) {
    MigrationRun run;
    run.simulator = &simulator;
    run.link = &link;
    run.direction = sim::Direction::kAtoB;
    run.source_memory = &memory;
    run.source = {&src_cpu, &src_store};
    run.destination = {&dst_cpu, &dst_store};
    run.vm_id = "vm";
    run.config = config;
    return run;
  }
};

vm::GuestMemory RandomMemory(Bytes ram, std::uint64_t seed) {
  vm::GuestMemory memory(ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(memory, rng);
  return memory;
}

std::vector<Digest128> DigestsOf(const vm::GuestMemory& memory) {
  std::vector<Digest128> digests;
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    digests.push_back(memory.PageDigest(p));
  }
  return digests;
}

Bytes SumPerChannel(const MigrationStats& stats) {
  Bytes total;
  for (const auto bytes : stats.tx_bytes_per_channel) total += bytes;
  return total;
}

// --- Multifd -----------------------------------------------------------

/// One WAN pre-copy of a cold 16 MiB VM with `channels` forward streams,
/// audits armed. The single-stream case is capped by the 192 KiB TCP
/// window (~56 Mbps effective); multifd must aggregate past the cap.
MigrationStats RunWanFull(std::uint32_t channels, bool audit = true) {
  TestBed bed{sim::LinkConfig::Wan()};
  auto memory = RandomMemory(MiB(16), 0x3a1);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.audit = audit;
  config.multifd.enabled = channels > 1;
  config.multifd.channels = channels;
  auto outcome = RunMigration(bed.MakeRun(memory, config));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  return outcome.stats;
}

TEST(Multifd, FourChannelsAtLeastTwiceAsFastOnWan) {
  const auto one = RunWanFull(1);
  const auto four = RunWanFull(4);

  // Same pages, near-identical wire bytes (striping a batch into four
  // messages costs four headers instead of one, and rounds end with one
  // marker per channel) — only the wall clock changes materially.
  EXPECT_EQ(one.Round1Pages(), four.Round1Pages());
  EXPECT_GE(four.tx_bytes.count, one.tx_bytes.count);
  EXPECT_LT(four.tx_bytes.count - one.tx_bytes.count,
            one.tx_bytes.count / 100);
  ASSERT_GT(ToSeconds(four.total_time), 0.0);
  const double speedup =
      ToSeconds(one.total_time) / ToSeconds(four.total_time);
  EXPECT_GE(speedup, 2.0) << "multifd speedup only " << speedup << "x";

  // The per-channel accounting is complete and balanced: every stream
  // carried a nontrivial share (pages stripe page % N, so no channel
  // can starve).
  EXPECT_EQ(four.multifd_channels, 4u);
  ASSERT_EQ(four.tx_bytes_per_channel.size(), 4u);
  EXPECT_EQ(SumPerChannel(four), four.tx_bytes);
  for (const auto bytes : four.tx_bytes_per_channel) {
    EXPECT_GT(bytes.count, four.tx_bytes.count / 8);
  }
}

TEST(Multifd, SingleChannelIsByteIdenticalToDisabled) {
  // multifd.enabled with channels = 1 must take the exact pre-multifd
  // path: same times, same bytes, same everything (MigrationStats
  // field-wise equality).
  const auto off = RunWanFull(1);
  TestBed bed{sim::LinkConfig::Wan()};
  auto memory = RandomMemory(MiB(16), 0x3a1);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.audit = true;
  config.multifd.enabled = true;
  config.multifd.channels = 1;
  const auto on = RunMigration(bed.MakeRun(memory, config)).stats;
  EXPECT_EQ(off, on);
}

TEST(Multifd, ReconstructsUnderChurnWithResends) {
  // Multi-round convergence with a live writer: later-round resends
  // stripe across the same channels (page % N) and per-channel FIFO
  // ordering must keep the newest content last.
  TestBed bed{sim::LinkConfig::Wan()};
  auto memory = RandomMemory(MiB(8), 0x3a2);
  vm::UniformRandomWorkload churn(300.0, 0xc4u);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.audit = true;
  config.multifd.enabled = true;
  config.multifd.channels = 3;  // deliberately not a power of two
  config.stop_copy_threshold_pages = 64;
  auto run = bed.MakeRun(memory, config);
  run.workload = &churn;
  auto outcome = RunMigration(std::move(run));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_GT(outcome.stats.rounds, 1u);
  EXPECT_GT(outcome.stats.pages_resent_dirty, 0u);
  EXPECT_EQ(SumPerChannel(outcome.stats), outcome.stats.tx_bytes);
}

TEST(Multifd, EmitsPerChannelTimelinesAndMetrics) {
  TestBed bed{sim::LinkConfig::Wan()};
  auto memory = RandomMemory(MiB(4), 0x3a3);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.trace = true;
  config.multifd.enabled = true;
  config.multifd.channels = 2;
  obs::TraceRecorder tracer;
  obs::MetricsRegistry metrics;
  auto run = bed.MakeRun(memory, config);
  run.tracer = &tracer;
  run.metrics = &metrics;
  auto outcome = RunMigration(std::move(run));

  // Per-channel byte and queue-depth timelines, one labelled series per
  // stream — not one aggregated "wire_bytes" line.
  const std::string trace = tracer.ChromeTraceJson();
  EXPECT_NE(trace.find("wire_bytes[ch0]"), std::string::npos);
  EXPECT_NE(trace.find("wire_bytes[ch1]"), std::string::npos);
  EXPECT_NE(trace.find("queue_depth[ch0]"), std::string::npos);
  EXPECT_NE(trace.find("queue_depth[ch1]"), std::string::npos);

  // The metrics record carries the per-channel counters, and they sum to
  // tx_bytes (the invariant tools/validate_metrics.py enforces).
  auto& record =
      RecordMigrationStats(metrics, "transfer_stack", outcome.stats);
  std::uint64_t sum = 0;
  std::uint64_t channels = 0;
  for (const auto& [name, value] : record.counters) {
    if (name == "multifd_channels") channels = value;
    if (name.rfind("tx_bytes_ch", 0) == 0) sum += value;
  }
  EXPECT_EQ(channels, 2u);
  EXPECT_EQ(sum, outcome.stats.tx_bytes.count);
}

// --- Recycle-aware delta encoding --------------------------------------

/// A return migration: the destination holds the VM's recycled
/// checkpoint, the VM carries knowledge + departure seeds, and `dirty`
/// pages were rewritten since departure. Returns the outcome stats.
MigrationStats RunReturnMigration(bool delta, std::uint64_t dirty_pages,
                                  vm::GuestMemory* check_against = nullptr) {
  TestBed bed;
  auto memory = RandomMemory(MiB(16), 0x0de17a);
  const auto departure_seeds = memory.Seeds();
  const auto departure_generations = memory.Generations();
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  const auto knowledge = DigestsOf(memory);

  // The VM diverges: a contiguous working set is rewritten.
  for (std::uint64_t p = 0; p < dirty_pages; ++p) {
    memory.WritePage(p, 0xbeef0000 + p);
  }

  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  config.audit = true;
  config.delta.enabled = delta;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = knowledge;
  run.departure_generations = departure_generations;
  run.departure_seeds = departure_seeds;
  auto outcome = RunMigration(std::move(run));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  if (check_against != nullptr) {
    EXPECT_TRUE(outcome.dest_memory->ContentEquals(*check_against));
  }
  return outcome.stats;
}

TEST(DeltaEncoding, CutsWireBytesOnReturnMigration) {
  const std::uint64_t dirty = 1024;
  const auto full = RunReturnMigration(/*delta=*/false, dirty);
  const auto delta = RunReturnMigration(/*delta=*/true, dirty);

  // Same classification, measurably fewer wire bytes: most dirty pages
  // ship as sub-page deltas against the recycled baseline.
  EXPECT_EQ(full.Round1Pages(), delta.Round1Pages());
  EXPECT_GT(delta.pages_sent_delta, dirty / 2);
  EXPECT_LT(delta.tx_bytes.count, full.tx_bytes.count);
  EXPECT_GT(delta.delta_bytes_original.count,
            delta.delta_bytes_on_wire.count);
  // Deltas are a subset of the full-content sends, so round-1
  // conservation held inside RunReturnMigration's audit already; the
  // fallback counter stays quiet on a pristine checkpoint.
  EXPECT_LE(delta.pages_sent_delta, delta.pages_sent_full);
  EXPECT_EQ(delta.pages_delta_fallback, 0u);
  EXPECT_EQ(delta.fallback_pages, 0u);
  // And it is faster, not just thinner.
  EXPECT_LT(ToSeconds(delta.total_time), ToSeconds(full.total_time));
}

TEST(DeltaEncoding, ColdDestinationDegradesToFullSends) {
  // No checkpoint at the destination: the engine clears the baseline and
  // the run behaves exactly as if delta were off.
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 0x0de17b);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  config.audit = true;
  config.delta.enabled = true;
  auto run = bed.MakeRun(memory, config);
  run.departure_seeds = memory.Seeds();  // stale claim, no checkpoint
  auto outcome = RunMigration(std::move(run));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_EQ(outcome.stats.pages_sent_delta, 0u);
  EXPECT_EQ(outcome.stats.delta_bytes_on_wire.count, 0u);
}

TEST(DeltaEncoding, RottenBaselineDegradesPerPage) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 0x0de17c);
  const auto departure_seeds = memory.Seeds();
  auto checkpoint = storage::Checkpoint::CaptureFrom(memory);

  // The recycled checkpoint rots in place (vecycle::fault's bit-rot
  // model) on exactly the pages the VM rewrites before returning: every
  // delta the source encodes against those baselines is unappliable.
  const std::uint64_t damaged = 64;
  for (std::uint64_t p = 0; p < damaged; ++p) {
    checkpoint.CorruptPageForTesting(p, 0xdead0000 + p);
  }
  bed.dst_store.Save("vm", std::move(checkpoint), kSimEpoch);
  const auto knowledge = DigestsOf(memory);
  for (std::uint64_t p = 0; p < damaged; ++p) {
    memory.WritePage(p, 0xbeef0000 + p);
  }

  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  config.audit = true;
  config.delta.enabled = true;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = knowledge;
  run.departure_seeds = departure_seeds;
  auto outcome = RunMigration(std::move(run));

  // The destination verified each baseline, rejected the rotten ones,
  // and recovered every page over the resend path — content is exact.
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_GT(outcome.stats.pages_delta_fallback, 0u);
  EXPECT_LE(outcome.stats.pages_delta_fallback,
            outcome.stats.pages_sent_delta);
  // Every fallback here is a delta fallback (the rot hits only rewritten
  // pages, so checksum records still verify in place).
  EXPECT_EQ(outcome.stats.fallback_pages,
            outcome.stats.pages_delta_fallback);
}

// --- Auto-converge -----------------------------------------------------

/// WAN migration of a writer that outruns the single-stream wire
/// (~1.7 kpages/s drain vs 5 kpages/s dirty rate) — without throttling
/// this never converges before max_rounds.
MigrationStats RunDivergingWriter(bool converge,
                                  double* final_throttle_keep = nullptr) {
  TestBed bed{sim::LinkConfig::Wan()};
  auto memory = RandomMemory(MiB(8), 0xac5);
  vm::UniformRandomWorkload writer(5000.0, 0x77u);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.audit = true;
  config.auto_converge.enabled = converge;
  config.stop_copy_threshold_pages = 64;
  config.max_rounds = 40;
  auto run = bed.MakeRun(memory, config);
  run.workload = &writer;
  auto outcome = RunMigration(std::move(run));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  if (final_throttle_keep != nullptr) {
    *final_throttle_keep = writer.ThrottleKeep();
  }
  return outcome.stats;
}

TEST(AutoConverge, ThrottlesDivergingWriterIntoConvergence) {
  double keep_after = 0.0;
  const auto unthrottled = RunDivergingWriter(false);
  const auto throttled = RunDivergingWriter(true, &keep_after);

  // Unthrottled, the writer wins every round and the migration runs to
  // the max_rounds livelock guard with a big final dirty set.
  EXPECT_EQ(unthrottled.rounds, 40u);
  EXPECT_EQ(unthrottled.throttle_rounds, 0u);
  EXPECT_EQ(unthrottled.max_throttle, 0.0);

  // Auto-converge ramps the throttle until the dirty set fits under the
  // stop-and-copy threshold: fewer rounds, and downtime bounded by the
  // shrunken final dirty set instead of the whole working set.
  EXPECT_GT(throttled.throttle_rounds, 0u);
  EXPECT_GE(throttled.max_throttle,
            MigrationConfig{}.auto_converge.initial_throttle);
  EXPECT_LE(throttled.max_throttle,
            MigrationConfig{}.auto_converge.max_throttle);
  EXPECT_LT(throttled.rounds, unthrottled.rounds);
  EXPECT_LT(ToSeconds(throttled.downtime), ToSeconds(unthrottled.downtime));

  // The engine restores full guest speed once the VM runs at the
  // destination — the throttle never outlives the migration.
  EXPECT_EQ(keep_after, 1.0);
}

TEST(AutoConverge, StaysQuietWhenTheWireIsWinning) {
  // A slow writer on a LAN converges on its own; auto-converge must not
  // touch the guest.
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 0xac6);
  vm::UniformRandomWorkload writer(50.0, 0x78u);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.audit = true;
  config.auto_converge.enabled = true;
  auto run = bed.MakeRun(memory, config);
  run.workload = &writer;
  auto outcome = RunMigration(std::move(run));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_EQ(outcome.stats.throttle_rounds, 0u);
  EXPECT_EQ(outcome.stats.max_throttle, 0.0);
  EXPECT_EQ(writer.ThrottleKeep(), 1.0);
}

// --- The full stack together -------------------------------------------

TEST(TransferStack, AllThreeCapabilitiesComposeUnderAudit) {
  TestBed bed{sim::LinkConfig::Wan()};
  auto memory = RandomMemory(MiB(16), 0x57ac);
  const auto departure_seeds = memory.Seeds();
  const auto departure_generations = memory.Generations();
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  const auto knowledge = DigestsOf(memory);
  vm::UniformRandomWorkload writer(2000.0, 0x57u);
  writer.Advance(memory, Seconds(5.0));

  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  config.audit = true;
  config.multifd.enabled = true;
  config.multifd.channels = 4;
  config.delta.enabled = true;
  config.auto_converge.enabled = true;
  config.stop_copy_threshold_pages = 128;
  auto run = bed.MakeRun(memory, config);
  run.workload = &writer;
  run.source_knowledge = knowledge;
  run.departure_generations = departure_generations;
  run.departure_seeds = departure_seeds;
  auto outcome = RunMigration(std::move(run));

  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_EQ(outcome.stats.multifd_channels, 4u);
  EXPECT_EQ(SumPerChannel(outcome.stats), outcome.stats.tx_bytes);
  EXPECT_GT(outcome.stats.pages_sent_delta, 0u);
  EXPECT_EQ(writer.ThrottleKeep(), 1.0);
}

}  // namespace
}  // namespace vecycle::migration
