// The consolidation control loop: activity sensing, hysteresis, dwell
// times, and the ping-pong pattern it generates — the very pattern
// VeCycle's checkpoint recycling then makes cheap.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/consolidation.hpp"
#include "vm/workload.hpp"

namespace vecycle::core {
namespace {

/// A guest whose write rate can be switched between test phases. Writes
/// concentrate in a small hot region — at test-scale VM sizes a uniform
/// writer would plow through all of RAM within one phase and no
/// similarity would survive for VeCycle to exploit.
class SwitchableWorkload : public vm::Workload {
 public:
  explicit SwitchableWorkload(std::uint64_t seed) : seed_(seed) {}

  void SetRate(double writes_per_s) {
    vm::HotspotWorkload::Config config;
    config.write_rate_pages_per_s = writes_per_s;
    config.hot_fraction = 0.05;
    config.hot_probability = 1.0;
    config.seed = seed_++;
    workload_ = std::make_unique<vm::HotspotWorkload>(config);
  }

  void Advance(vm::GuestMemory& memory, SimDuration dt) override {
    if (workload_ != nullptr) workload_->Advance(memory, dt);
  }

 private:
  std::uint64_t seed_;
  std::unique_ptr<vm::HotspotWorkload> workload_;
};

struct ConsolidationWorld {
  sim::Simulator simulator;
  Cluster cluster{simulator};
  MigrationOrchestrator orchestrator{cluster};

  ConsolidationWorld() {
    cluster.AddHost({"worker-1", sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.AddHost({"worker-2", sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.AddHost({"consol", sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.Connect("worker-1", "consol", sim::LinkConfig::Lan());
    cluster.Connect("worker-2", "consol", sim::LinkConfig::Lan());
  }

  ConsolidationManager MakeManager(
      ConsolidationPolicy policy = DefaultPolicy()) {
    migration::MigrationConfig config;
    config.strategy = migration::Strategy::kHashes;
    return ConsolidationManager(cluster, orchestrator, "consol", policy,
                                config);
  }

  static ConsolidationPolicy DefaultPolicy() {
    ConsolidationPolicy policy;
    policy.idle_threshold_writes_per_s = 20.0;
    policy.active_threshold_writes_per_s = 200.0;
    policy.min_dwell = Minutes(10);
    return policy;
  }
};

VmInstance MakeVm(const std::string& id, std::uint64_t seed) {
  VmInstance vm(id, MiB(16), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(vm.Memory(), rng);
  return vm;
}

// --- ActivitySensor. ---

TEST(ActivitySensor, RateFromConsecutiveObservations) {
  ActivitySensor sensor;
  sensor.Observe(1000, Seconds(0.0));
  EXPECT_DOUBLE_EQ(sensor.WritesPerSecond(), 0.0);  // not primed
  sensor.Observe(1500, Seconds(10.0));
  EXPECT_DOUBLE_EQ(sensor.WritesPerSecond(), 50.0);
  sensor.Observe(1500, Seconds(20.0));
  EXPECT_DOUBLE_EQ(sensor.WritesPerSecond(), 0.0);
}

// --- Policy validation. ---

TEST(ConsolidationPolicy, RejectsInvertedHysteresis) {
  ConsolidationPolicy policy;
  policy.idle_threshold_writes_per_s = 300.0;
  policy.active_threshold_writes_per_s = 100.0;
  EXPECT_THROW(policy.Validate(), CheckFailure);
}

// --- The control loop. ---

TEST(Consolidation, IdleVmGetsConsolidated) {
  ConsolidationWorld world;
  auto manager = world.MakeManager();
  auto vm = MakeVm("vm-1", 1);
  auto workload = std::make_unique<SwitchableWorkload>(7);
  auto* knob = workload.get();
  vm.SetWorkload(std::move(workload));
  world.orchestrator.Deploy(vm, "worker-1");
  manager.Register(vm, "worker-1");

  knob->SetRate(1.0);  // nearly idle
  for (int i = 0; i < 4; ++i) manager.Tick(Minutes(10));

  EXPECT_TRUE(manager.IsConsolidated(vm));
  EXPECT_EQ(manager.GetStats().consolidations, 1u);
  EXPECT_EQ(manager.GetStats().activations, 0u);
}

TEST(Consolidation, ActiveVmStaysPut) {
  ConsolidationWorld world;
  auto manager = world.MakeManager();
  auto vm = MakeVm("vm-1", 2);
  auto workload = std::make_unique<SwitchableWorkload>(8);
  workload->SetRate(1000.0);
  vm.SetWorkload(std::move(workload));
  world.orchestrator.Deploy(vm, "worker-1");
  manager.Register(vm, "worker-1");

  for (int i = 0; i < 4; ++i) manager.Tick(Minutes(10));
  EXPECT_FALSE(manager.IsConsolidated(vm));
  EXPECT_EQ(manager.GetStats().consolidations, 0u);
}

TEST(Consolidation, ReactivationBringsVmHome) {
  ConsolidationWorld world;
  auto manager = world.MakeManager();
  auto vm = MakeVm("vm-1", 3);
  auto workload = std::make_unique<SwitchableWorkload>(9);
  auto* knob = workload.get();
  vm.SetWorkload(std::move(workload));
  world.orchestrator.Deploy(vm, "worker-1");
  manager.Register(vm, "worker-1");

  knob->SetRate(1.0);
  for (int i = 0; i < 4; ++i) manager.Tick(Minutes(10));
  ASSERT_TRUE(manager.IsConsolidated(vm));

  knob->SetRate(2000.0);  // user is back
  for (int i = 0; i < 4; ++i) manager.Tick(Minutes(10));
  EXPECT_FALSE(manager.IsConsolidated(vm));
  EXPECT_EQ(vm.CurrentHost(), "worker-1");
  EXPECT_EQ(manager.GetStats().activations, 1u);
}

TEST(Consolidation, HysteresisPreventsFlapping) {
  // A rate inside the hysteresis band (idle < rate < active) must cause
  // no movement in either direction.
  ConsolidationWorld world;
  auto manager = world.MakeManager();
  auto vm = MakeVm("vm-1", 4);
  auto workload = std::make_unique<SwitchableWorkload>(10);
  workload->SetRate(100.0);  // between 20 and 200
  vm.SetWorkload(std::move(workload));
  world.orchestrator.Deploy(vm, "worker-1");
  manager.Register(vm, "worker-1");

  for (int i = 0; i < 6; ++i) manager.Tick(Minutes(10));
  EXPECT_EQ(manager.GetStats().consolidations, 0u);
  EXPECT_EQ(manager.GetStats().activations, 0u);
}

TEST(Consolidation, DwellTimeDelaysMigration) {
  ConsolidationWorld world;
  auto policy = ConsolidationWorld::DefaultPolicy();
  policy.min_dwell = Hours(2);
  auto manager = world.MakeManager(policy);
  auto vm = MakeVm("vm-1", 5);
  auto workload = std::make_unique<SwitchableWorkload>(11);
  workload->SetRate(1.0);
  vm.SetWorkload(std::move(workload));
  world.orchestrator.Deploy(vm, "worker-1");
  manager.Register(vm, "worker-1");

  // 60 minutes of idleness: still inside the dwell window.
  for (int i = 0; i < 6; ++i) manager.Tick(Minutes(10));
  EXPECT_FALSE(manager.IsConsolidated(vm));
  // Past the dwell: consolidates.
  for (int i = 0; i < 8; ++i) manager.Tick(Minutes(10));
  EXPECT_TRUE(manager.IsConsolidated(vm));
}

TEST(Consolidation, PingPongGetsCheaperWithVeCycle) {
  // Two full day cycles: the second consolidation finds a checkpoint on
  // the consolidation host and ships far less.
  ConsolidationWorld world;
  auto manager = world.MakeManager();
  auto vm = MakeVm("vm-1", 6);
  auto workload = std::make_unique<SwitchableWorkload>(12);
  auto* knob = workload.get();
  vm.SetWorkload(std::move(workload));
  world.orchestrator.Deploy(vm, "worker-1");
  manager.Register(vm, "worker-1");

  const auto cycle = [&](double idle_rate, double busy_rate) {
    knob->SetRate(idle_rate);
    for (int i = 0; i < 4; ++i) manager.Tick(Minutes(15));
    knob->SetRate(busy_rate);
    for (int i = 0; i < 4; ++i) manager.Tick(Minutes(15));
  };

  cycle(1.0, 2000.0);
  const auto after_first = manager.GetStats().migration_traffic;
  cycle(1.0, 2000.0);
  const auto after_second = manager.GetStats().migration_traffic;

  EXPECT_EQ(manager.GetStats().consolidations, 2u);
  EXPECT_EQ(manager.GetStats().activations, 2u);
  // Second round trip costs less than the first (checkpoints exist on
  // both sides now).
  const auto first_cost = after_first.count;
  const auto second_cost = after_second.count - after_first.count;
  EXPECT_LT(second_cost, first_cost);
}

TEST(Consolidation, ManagesMultipleVmsIndependently) {
  ConsolidationWorld world;
  auto manager = world.MakeManager();
  auto vm1 = MakeVm("vm-1", 7);
  auto vm2 = MakeVm("vm-2", 8);
  auto w1 = std::make_unique<SwitchableWorkload>(13);
  auto w2 = std::make_unique<SwitchableWorkload>(14);
  w1->SetRate(1.0);     // idle: should consolidate
  w2->SetRate(2000.0);  // busy: should stay
  vm1.SetWorkload(std::move(w1));
  vm2.SetWorkload(std::move(w2));
  world.orchestrator.Deploy(vm1, "worker-1");
  world.orchestrator.Deploy(vm2, "worker-2");
  manager.Register(vm1, "worker-1");
  manager.Register(vm2, "worker-2");

  for (int i = 0; i < 4; ++i) manager.Tick(Minutes(10));
  EXPECT_TRUE(manager.IsConsolidated(vm1));
  EXPECT_FALSE(manager.IsConsolidated(vm2));
}

TEST(Consolidation, RegisterRequiresDeployedVm) {
  ConsolidationWorld world;
  auto manager = world.MakeManager();
  auto vm = MakeVm("vm-1", 9);
  EXPECT_THROW(manager.Register(vm, "worker-1"), CheckFailure);
}

}  // namespace
}  // namespace vecycle::core
