// Checkpoints, the sorted checksum index (§3.3), and the per-host
// checkpoint store with disk-time accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "audit/replay.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "storage/checkpoint.hpp"
#include "storage/checkpoint_store.hpp"
#include "storage/checksum_index.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::storage {
namespace {

vm::GuestMemory MakeMemory(Bytes ram = MiB(4)) {
  vm::GuestMemory memory(ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(1);
  vm::MemoryProfile{}.Apply(memory, rng);
  return memory;
}

// --- Checkpoint capture / restore. ---

TEST(Checkpoint, CapturesContentAndGenerations) {
  auto memory = MakeMemory();
  memory.WritePage(5, 42);
  const auto cp = Checkpoint::CaptureFrom(memory);
  EXPECT_EQ(cp.PageCount(), memory.PageCount());
  EXPECT_EQ(cp.SeedAt(5), 42u);
  EXPECT_EQ(cp.GenerationAt(5), memory.Generation(5));
}

TEST(Checkpoint, RestoreReproducesContent) {
  auto memory = MakeMemory();
  const auto cp = Checkpoint::CaptureFrom(memory);
  vm::GuestMemory fresh(memory.RamSize(), vm::ContentMode::kSeedOnly);
  cp.RestoreInto(fresh);
  EXPECT_TRUE(fresh.ContentEquals(memory));
}

TEST(Checkpoint, RestoreGeometryMismatchThrows) {
  auto memory = MakeMemory(MiB(4));
  const auto cp = Checkpoint::CaptureFrom(memory);
  vm::GuestMemory other(MiB(8), vm::ContentMode::kSeedOnly);
  EXPECT_THROW(cp.RestoreInto(other), CheckFailure);
}

TEST(Checkpoint, SizeOnDiskIsFullImage) {
  auto memory = MakeMemory(MiB(4));
  const auto cp = Checkpoint::CaptureFrom(memory);
  EXPECT_EQ(cp.SizeOnDisk(), MiB(4));
}

TEST(Checkpoint, DigestMatchesGuestMemory) {
  auto memory = MakeMemory();
  const auto cp = Checkpoint::CaptureFrom(memory);
  for (vm::PageId page = 0; page < 16; ++page) {
    EXPECT_EQ(cp.DigestAt(page, DigestAlgorithm::kMd5),
              memory.PageDigest(page));
  }
}

TEST(Checkpoint, FileRoundTrip) {
  auto memory = MakeMemory();
  const auto cp = Checkpoint::CaptureFrom(memory);
  const auto path =
      (std::filesystem::temp_directory_path() / "vecycle_ckpt_test.bin")
          .string();
  cp.SaveFile(path);
  const auto loaded = Checkpoint::LoadFile(path);
  EXPECT_EQ(loaded.Seeds(), cp.Seeds());
  EXPECT_EQ(loaded.Generations(), cp.Generations());
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadRejectsGarbageFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "vecycle_garbage.bin")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  EXPECT_THROW(Checkpoint::LoadFile(path), CheckFailure);
  std::remove(path.c_str());
}

TEST(Checkpoint, IntegrityDigestDetectsCorruption) {
  auto memory = MakeMemory();
  auto cp = Checkpoint::CaptureFrom(memory);
  EXPECT_TRUE(cp.IntegrityOk());
  cp.CorruptPageForTesting(7, 0xDEAD);
  EXPECT_FALSE(cp.IntegrityOk());
}

TEST(Checkpoint, FileLoadRejectsCorruptImage) {
  auto memory = MakeMemory();
  auto cp = Checkpoint::CaptureFrom(memory);
  cp.CorruptPageForTesting(3, 0xBEEF);
  const auto path =
      (std::filesystem::temp_directory_path() / "vecycle_corrupt_ckpt.bin")
          .string();
  cp.SaveFile(path);  // saves the stale digest alongside corrupt data
  EXPECT_THROW(Checkpoint::LoadFile(path), CheckFailure);
  std::filesystem::remove(path);
}

// --- Checksum index. ---

TEST(ChecksumIndex, LookupFindsEveryPage) {
  auto memory = MakeMemory();
  const auto cp = Checkpoint::CaptureFrom(memory);
  const auto index = ChecksumIndex::Build(cp, DigestAlgorithm::kMd5);
  for (vm::PageId page = 0; page < cp.PageCount(); ++page) {
    const auto found = index.Lookup(cp.DigestAt(page, DigestAlgorithm::kMd5));
    ASSERT_TRUE(found.has_value());
    // Duplicates may resolve to a different offset with the same content.
    EXPECT_EQ(cp.SeedAt(*found), cp.SeedAt(page));
  }
}

TEST(ChecksumIndex, MissingDigestReturnsNullopt) {
  auto memory = MakeMemory();
  const auto cp = Checkpoint::CaptureFrom(memory);
  const auto index = ChecksumIndex::Build(cp, DigestAlgorithm::kMd5);
  EXPECT_FALSE(index.Lookup(Digest128::FromWords(0xdead, 0xbeef)).has_value());
}

TEST(ChecksumIndex, DistinctCountCollapsesDuplicates) {
  vm::GuestMemory memory(MiB(1), vm::ContentMode::kSeedOnly);
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    memory.WritePage(p, p % 10);  // 10 distinct contents
  }
  const auto cp = Checkpoint::CaptureFrom(memory);
  const auto index = ChecksumIndex::Build(cp, DigestAlgorithm::kMd5);
  EXPECT_EQ(index.EntryCount(), memory.PageCount());
  EXPECT_EQ(index.DistinctDigests(), 10u);
  EXPECT_EQ(index.DistinctDigestList().size(), 10u);
}

TEST(ChecksumIndex, BulkExchangeSizeMatchesPaperExample) {
  // §3.2: a 4 GiB VM has 2^20 pages -> 16 MiB of MD5 checksums. Verify at
  // reduced scale: 4 MiB VM, 1024 pages, all distinct -> 16 KiB.
  vm::GuestMemory memory(MiB(4), vm::ContentMode::kSeedOnly);
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    memory.WritePage(p, p + 1000);
  }
  const auto cp = Checkpoint::CaptureFrom(memory);
  const auto index = ChecksumIndex::Build(cp, DigestAlgorithm::kMd5);
  EXPECT_EQ(index.BulkExchangeSize(), KiB(16));
}

TEST(ChecksumIndex, FromEntriesSortsInput) {
  std::vector<std::pair<Digest128, vm::PageId>> entries = {
      {Digest128::FromWords(3, 0), 30},
      {Digest128::FromWords(1, 0), 10},
      {Digest128::FromWords(2, 0), 20},
  };
  const auto index =
      ChecksumIndex::FromEntries(std::move(entries), DigestAlgorithm::kMd5);
  EXPECT_EQ(index.Lookup(Digest128::FromWords(1, 0)), 10u);
  EXPECT_EQ(index.Lookup(Digest128::FromWords(2, 0)), 20u);
  EXPECT_EQ(index.Lookup(Digest128::FromWords(3, 0)), 30u);
}

// --- Checkpoint store. ---

TEST(CheckpointStore, SaveChargesSequentialWrite) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk);
  auto memory = MakeMemory(MiB(110));
  const SimTime done =
      store.Save("vm", Checkpoint::CaptureFrom(memory), kSimEpoch);
  EXPECT_NEAR(ToSeconds(done), 1.0, 0.05);  // 110 MiB at 110 MiB/s
  EXPECT_TRUE(store.Has("vm"));
  EXPECT_EQ(disk.WrittenBytes(), MiB(110));
}

TEST(CheckpointStore, LoadChargesSequentialRead) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk);
  auto memory = MakeMemory(MiB(120));
  store.Save("vm", Checkpoint::CaptureFrom(memory), kSimEpoch);
  // The save occupied the disk until ~1.1 s; loading at t=10 s is past it,
  // so the scan takes exactly 120 MiB / 120 MiB/s = 1 s.
  const auto load = store.Load("vm", Seconds(10.0));
  ASSERT_NE(load.checkpoint, nullptr);
  EXPECT_NEAR(ToSeconds(load.ready_at), 11.0, 0.05);
}

TEST(CheckpointStore, LoadMissingVmThrows) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk);
  EXPECT_THROW(store.Load("ghost", kSimEpoch), CheckFailure);
}

TEST(CheckpointStore, SaveReplacesPrevious) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk);
  auto memory = MakeMemory();
  store.Save("vm", Checkpoint::CaptureFrom(memory), kSimEpoch);
  memory.WritePage(0, 777);
  store.Save("vm", Checkpoint::CaptureFrom(memory), kSimEpoch);
  EXPECT_EQ(store.Size(), 1u);
  EXPECT_EQ(store.Peek("vm")->SeedAt(0), 777u);
}

TEST(CheckpointStore, FootprintSumsImages) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk);
  store.Save("a", Checkpoint::CaptureFrom(MakeMemory(MiB(4))), kSimEpoch);
  store.Save("b", Checkpoint::CaptureFrom(MakeMemory(MiB(8))), kSimEpoch);
  EXPECT_EQ(store.FootprintOnDisk(), MiB(12));
  store.Drop("a");
  EXPECT_EQ(store.FootprintOnDisk(), MiB(8));
}

// --- Retention policy. ---

TEST(Retention, QuotaEvictsLeastRecentlyUsed) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  RetentionPolicy policy;
  policy.disk_quota = MiB(10);
  CheckpointStore store(disk, policy);

  store.Save("a", Checkpoint::CaptureFrom(MakeMemory(MiB(4))), Seconds(0));
  store.Save("b", Checkpoint::CaptureFrom(MakeMemory(MiB(4))), Seconds(1));
  // Touch "a" so "b" becomes the LRU entry.
  store.Load("a", Seconds(10));
  // A third 4 MiB checkpoint exceeds the 10 MiB quota: "b" must go.
  store.Save("c", Checkpoint::CaptureFrom(MakeMemory(MiB(4))), Seconds(20));

  EXPECT_TRUE(store.Has("a"));
  EXPECT_FALSE(store.Has("b"));
  EXPECT_TRUE(store.Has("c"));
  EXPECT_EQ(store.Evictions(), 1u);
  EXPECT_LE(store.FootprintOnDisk().count, MiB(10).count);
}

TEST(Retention, CountCapEvicts) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  RetentionPolicy policy;
  policy.max_checkpoints = 2;
  CheckpointStore store(disk, policy);
  store.Save("a", Checkpoint::CaptureFrom(MakeMemory()), Seconds(0));
  store.Save("b", Checkpoint::CaptureFrom(MakeMemory()), Seconds(1));
  store.Save("c", Checkpoint::CaptureFrom(MakeMemory()), Seconds(2));
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_FALSE(store.Has("a"));  // oldest evicted
}

TEST(Retention, ReplacingOwnCheckpointNeedsNoEviction) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  RetentionPolicy policy;
  policy.disk_quota = MiB(4);
  CheckpointStore store(disk, policy);
  store.Save("a", Checkpoint::CaptureFrom(MakeMemory(MiB(4))), Seconds(0));
  store.Save("a", Checkpoint::CaptureFrom(MakeMemory(MiB(4))), Seconds(1));
  EXPECT_TRUE(store.Has("a"));
  EXPECT_EQ(store.Evictions(), 0u);
}

TEST(Retention, OversizedCheckpointIsDiscarded) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  RetentionPolicy policy;
  policy.disk_quota = MiB(2);
  CheckpointStore store(disk, policy);
  store.Save("big", Checkpoint::CaptureFrom(MakeMemory(MiB(4))),
             Seconds(0));
  EXPECT_FALSE(store.Has("big"));
  EXPECT_EQ(store.Evictions(), 1u);
}

/// A store under a tight quota with interleaved saves and recency
/// touches, as a ReplayCheck scenario. Victim selection iterates the
/// hash-keyed checkpoint map; it must follow the documented strict
/// (last_used, VmId) total order, never the hash table's bucket order.
/// The fingerprint folds in the eviction count, the survivor set, and
/// the final footprint, so a victim chosen differently in either run —
/// or between this pinned expectation and a future refactor — diverges.
std::uint64_t EvictionStormScenario(audit::SimAuditor& auditor) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  RetentionPolicy policy;
  policy.disk_quota = MiB(12);
  CheckpointStore store(disk, policy);
  store.SetAuditor(&auditor);
  SimTime at = kSimEpoch;
  for (int round = 0; round < 3; ++round) {
    for (const char* vm : {"a", "b", "c", "d", "e"}) {
      at = store.Save(vm, Checkpoint::CaptureFrom(MakeMemory(MiB(4))), at);
      // Refresh an older entry's recency between saves so the LRU order
      // keeps churning while evictions fire.
      if (vm[0] != 'a' && store.Has("a")) {
        at = store.Load("a", at).ready_at;
      }
    }
  }
  std::uint64_t fp = store.Evictions();
  for (const char* vm : {"a", "b", "c", "d", "e"}) {
    fp = fp * 1099511628211ull ^
         (store.Has(vm) ? 0x9e3779b9ull : 0x7f4a7c15ull);
  }
  return fp * 1099511628211ull ^ store.FootprintOnDisk().count;
}

TEST(RetentionDeterminism, EvictionStormReplaysBitForBit) {
  EXPECT_NO_THROW(audit::ReplayCheck::Verify(EvictionStormScenario));
}

TEST(Retention, UnlimitedByDefault) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk);
  for (int i = 0; i < 16; ++i) {
    store.Save("vm" + std::to_string(i),
               Checkpoint::CaptureFrom(MakeMemory()), Seconds(i));
  }
  EXPECT_EQ(store.Size(), 16u);
  EXPECT_EQ(store.Evictions(), 0u);
}

TEST(CheckpointStore, ReadBlockIsRandomAccess) {
  sim::Disk disk(sim::DiskConfig::Hdd());
  CheckpointStore store(disk);
  store.ReadBlock(kSimEpoch);
  EXPECT_EQ(disk.RandomReads(), 1u);
}

}  // namespace
}  // namespace vecycle::storage
