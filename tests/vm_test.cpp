// Guest memory model: dual content representation, digests, generation
// counters, dirty snapshots, memory profiles, and workload mutators.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "common/check.hpp"
#include "digest/hasher.hpp"
#include "vm/dirty_tracker.hpp"
#include "vm/guest_memory.hpp"
#include "vm/workload.hpp"

namespace vecycle::vm {
namespace {

// --- Page materialization. ---

TEST(MaterializePage, ZeroSeedGivesZeroPage) {
  std::array<std::byte, kPageSize> page;
  MaterializePage(kZeroPageSeed, page);
  for (const auto b : page) EXPECT_EQ(b, std::byte{0});
}

TEST(MaterializePage, IsDeterministic) {
  std::array<std::byte, kPageSize> a;
  std::array<std::byte, kPageSize> b;
  MaterializePage(12345, a);
  MaterializePage(12345, b);
  EXPECT_EQ(a, b);
}

TEST(MaterializePage, DistinctSeedsGiveDistinctContent) {
  std::array<std::byte, kPageSize> a;
  std::array<std::byte, kPageSize> b;
  MaterializePage(1, a);
  MaterializePage(2, b);
  EXPECT_NE(a, b);
}

// --- GuestMemory basics. ---

TEST(GuestMemory, GeometryFromRamSize) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  EXPECT_EQ(memory.PageCount(), 256u);
  EXPECT_EQ(memory.RamSize(), MiB(1));
}

TEST(GuestMemory, UnalignedRamSizeThrows) {
  EXPECT_THROW(GuestMemory(Bytes{kPageSize + 1}, ContentMode::kSeedOnly),
               CheckFailure);
}

TEST(GuestMemory, StartsAllZeroPages) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  EXPECT_EQ(memory.CountZeroPages(), memory.PageCount());
}

TEST(GuestMemory, WriteChangesSeedAndGeneration) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  memory.WritePage(7, 999);
  EXPECT_EQ(memory.Seed(7), 999u);
  EXPECT_EQ(memory.Generation(7), 1u);
  EXPECT_EQ(memory.Generation(8), 0u);
  EXPECT_EQ(memory.TotalWrites(), 1u);
}

TEST(GuestMemory, RewriteWithSameContentStillBumpsGeneration) {
  // This is the semantic that makes dirty tracking overestimate (§4.3).
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  memory.WritePage(3, 42);
  memory.WritePage(3, 42);
  EXPECT_EQ(memory.Generation(3), 2u);
}

TEST(GuestMemory, CopyPageMovesContentAndDirtiesDestination) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  memory.WritePage(1, 42);
  memory.CopyPage(1, 2);
  EXPECT_EQ(memory.Seed(2), 42u);
  EXPECT_EQ(memory.Generation(2), 1u);
  EXPECT_EQ(memory.Generation(1), 1u);  // source untouched by the copy
}

TEST(GuestMemory, OutOfRangeAccessThrows) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  EXPECT_THROW((void)memory.Seed(memory.PageCount()), CheckFailure);
  EXPECT_THROW(memory.WritePage(memory.PageCount(), 1), CheckFailure);
}

// --- Digest semantics across modes. ---

TEST(GuestMemory, EqualSeedsGiveEqualDigestsWithinMode) {
  for (const auto mode :
       {ContentMode::kSeedOnly, ContentMode::kMaterialized}) {
    GuestMemory memory(MiB(1), mode);
    memory.WritePage(0, 123);
    memory.WritePage(1, 123);
    memory.WritePage(2, 456);
    EXPECT_EQ(memory.PageDigest(0), memory.PageDigest(1));
    EXPECT_NE(memory.PageDigest(0), memory.PageDigest(2));
  }
}

TEST(GuestMemory, ContentHashMatchesAcrossModes) {
  GuestMemory seeded(MiB(1), ContentMode::kSeedOnly);
  GuestMemory materialized(MiB(1), ContentMode::kMaterialized);
  seeded.WritePage(0, 77);
  materialized.WritePage(0, 77);
  EXPECT_EQ(seeded.ContentHash64(0), materialized.ContentHash64(0));
}

TEST(GuestMemory, MaterializedDigestHashesRealBytes) {
  GuestMemory memory(MiB(1), ContentMode::kMaterialized);
  memory.WritePage(0, 55);
  // Independently materialize and hash; must match PageDigest.
  std::array<std::byte, kPageSize> bytes;
  MaterializePage(55, bytes);
  const auto expected =
      ComputeDigest(memory.Algorithm(), bytes.data(), bytes.size());
  EXPECT_EQ(memory.PageDigest(0), expected);
}

TEST(GuestMemory, ReadPageAgreesWithPageBytes) {
  GuestMemory memory(MiB(1), ContentMode::kMaterialized);
  memory.WritePage(4, 99);
  std::array<std::byte, kPageSize> copy;
  memory.ReadPage(4, copy);
  const auto view = memory.PageBytes(4);
  EXPECT_TRUE(std::equal(copy.begin(), copy.end(), view.begin()));
}

TEST(GuestMemory, PageBytesThrowsInSeedMode) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  EXPECT_THROW((void)memory.PageBytes(0), CheckFailure);
}

TEST(GuestMemory, ContentEqualsComparesContent) {
  GuestMemory a(MiB(1), ContentMode::kSeedOnly);
  GuestMemory b(MiB(1), ContentMode::kSeedOnly);
  a.WritePage(0, 1);
  b.WritePage(0, 1);
  EXPECT_TRUE(a.ContentEquals(b));
  b.WritePage(0, 2);
  EXPECT_FALSE(a.ContentEquals(b));
}

TEST(GuestMemory, SetGenerationsAdoptsVector) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  std::vector<std::uint64_t> generations(memory.PageCount(), 9);
  memory.SetGenerations(generations);
  EXPECT_EQ(memory.Generation(0), 9u);
  EXPECT_THROW(memory.SetGenerations({1, 2, 3}), CheckFailure);
}

// --- Digest memoization. ---

/// Honest recomputation of what PageDigest should return, bypassing every
/// cache layer.
Digest128 HonestDigest(const GuestMemory& memory, PageId page) {
  if (memory.Mode() == ContentMode::kMaterialized) {
    std::array<std::byte, kPageSize> bytes;
    MaterializePage(memory.Seed(page), bytes);
    return ComputeDigest(memory.Algorithm(), bytes.data(), bytes.size());
  }
  const std::uint64_t seed = memory.Seed(page);
  return ComputeDigest(memory.Algorithm(), &seed, sizeof(seed));
}

TEST(DigestCache, CachedAndUncachedDigestsAreByteIdentical) {
  for (const auto mode :
       {ContentMode::kSeedOnly, ContentMode::kMaterialized}) {
    GuestMemory cached(MiB(1), mode);
    GuestMemory uncached(MiB(1), mode);
    uncached.SetDigestCacheEnabled(false);
    Xoshiro256 rng(0xcafe);
    for (PageId p = 0; p < cached.PageCount(); ++p) {
      const std::uint64_t seed = rng.Next();
      cached.WritePage(p, seed);
      uncached.WritePage(p, seed);
    }
    for (PageId p = 0; p < cached.PageCount(); ++p) {
      EXPECT_EQ(cached.PageDigest(p), uncached.PageDigest(p));
      // Second read serves from the cache; still identical.
      EXPECT_EQ(cached.PageDigest(p), uncached.PageDigest(p));
      EXPECT_EQ(cached.ContentHash64(p), uncached.ContentHash64(p));
    }
    EXPECT_GT(cached.DigestCacheHits(), 0u);
    EXPECT_EQ(uncached.DigestCacheHits(), 0u);
  }
}

TEST(DigestCache, WritePageInvalidates) {
  for (const auto mode :
       {ContentMode::kSeedOnly, ContentMode::kMaterialized}) {
    GuestMemory memory(MiB(1), mode);
    memory.WritePage(0, 111);
    const auto before = memory.PageDigest(0);
    memory.WritePage(0, 222);
    const auto after = memory.PageDigest(0);
    EXPECT_NE(before, after);
    EXPECT_EQ(after, HonestDigest(memory, 0));
  }
}

TEST(DigestCache, CopyPageInvalidatesDestination) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  memory.WritePage(0, 111);
  memory.WritePage(1, 222);
  const auto dest_before = memory.PageDigest(1);
  memory.CopyPage(0, 1);
  EXPECT_NE(memory.PageDigest(1), dest_before);
  EXPECT_EQ(memory.PageDigest(1), memory.PageDigest(0));
}

TEST(DigestCache, SetGenerationsKeepsDigestsValid) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  memory.WritePage(0, 333);
  const auto digest = memory.PageDigest(0);  // cached at generation 1
  std::vector<std::uint64_t> generations(memory.PageCount(), 0);
  memory.SetGenerations(generations);  // content untouched
  EXPECT_EQ(memory.PageDigest(0), digest);
  EXPECT_EQ(memory.PageDigest(0), HonestDigest(memory, 0));
}

TEST(DigestCache, GenerationAliasingAfterSetGenerationsIsSafe) {
  // The dangerous interleaving: cache a digest at generation g, rewind
  // the counters with SetGenerations, then write until the counter
  // climbs back to g. A naive generation-keyed cache would serve the
  // stale digest for the new content.
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  memory.WritePage(0, 444);  // generation 1
  const auto stale = memory.PageDigest(0);
  std::vector<std::uint64_t> generations(memory.PageCount(), 0);
  memory.SetGenerations(generations);  // back to generation 0
  memory.WritePage(0, 555);  // generation 1 again, new content
  EXPECT_NE(memory.PageDigest(0), stale);
  EXPECT_EQ(memory.PageDigest(0), HonestDigest(memory, 0));
}

TEST(DigestCache, SetGenerationsDropsEntriesStaledByEarlierWrites) {
  // The other dangerous interleaving: cache a digest, *overwrite* the
  // page (staling the entry), then SetGenerations. Re-stamping every
  // nonzero key would resurrect the stale digest as valid under the new
  // counters. This is exactly the destination-side sequence during a
  // checkpoint-assisted migration: ApplyRecord computes PageDigest for
  // the in-place check, then WritePage fetches the real content, then
  // Finalize adopts the source's generation counters.
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  memory.WritePage(0, 666);                    // generation 1
  const auto stale = memory.PageDigest(0);     // cached at generation 1
  memory.WritePage(0, 777);                    // generation 2, entry stale
  std::vector<std::uint64_t> generations(memory.PageCount(), 5);
  memory.SetGenerations(generations);
  EXPECT_NE(memory.PageDigest(0), stale);
  EXPECT_EQ(memory.PageDigest(0), HonestDigest(memory, 0));
}

TEST(DigestCache, HitAndMissCountersTrack) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  memory.WritePage(0, 1);
  EXPECT_EQ(memory.DigestCacheMisses(), 0u);
  (void)memory.PageDigest(0);
  EXPECT_EQ(memory.DigestCacheMisses(), 1u);
  EXPECT_EQ(memory.DigestCacheHits(), 0u);
  (void)memory.PageDigest(0);
  EXPECT_EQ(memory.DigestCacheHits(), 1u);
  memory.WritePage(0, 2);
  (void)memory.PageDigest(0);
  EXPECT_EQ(memory.DigestCacheMisses(), 2u);
}

TEST(DigestCache, ContentFingerprintUnaffectedByCaching) {
  GuestMemory cached(MiB(1), ContentMode::kSeedOnly);
  GuestMemory uncached(MiB(1), ContentMode::kSeedOnly);
  uncached.SetDigestCacheEnabled(false);
  for (PageId p = 0; p < cached.PageCount(); ++p) {
    cached.WritePage(p, p * 31 + 7);
    uncached.WritePage(p, p * 31 + 7);
  }
  const auto before = cached.ContentFingerprint();
  for (PageId p = 0; p < cached.PageCount(); ++p) {
    (void)cached.PageDigest(p);  // warm the cache
  }
  EXPECT_EQ(cached.ContentFingerprint(), before);
  EXPECT_EQ(cached.ContentFingerprint(), uncached.ContentFingerprint());
}

// --- Memory profile. ---

TEST(MemoryProfile, CompositionMatchesRequestedFractions) {
  GuestMemory memory(MiB(64), ContentMode::kSeedOnly);  // 16384 pages
  Xoshiro256 rng(1);
  MemoryProfile profile;
  profile.zero_fraction = 0.05;
  profile.duplicate_fraction = 0.10;
  profile.Apply(memory, rng);

  const double zeros = static_cast<double>(memory.CountZeroPages()) /
                       static_cast<double>(memory.PageCount());
  EXPECT_NEAR(zeros, 0.05, 0.01);

  std::set<std::uint64_t> unique;
  for (PageId p = 0; p < memory.PageCount(); ++p) {
    unique.insert(memory.Seed(p));
  }
  const double dup_fraction =
      1.0 - static_cast<double>(unique.size()) /
                static_cast<double>(memory.PageCount());
  // Zero pages collapse to one seed; dup pool of 512 seeds absorbs ~10%.
  EXPECT_NEAR(dup_fraction, 0.15, 0.03);
}

TEST(MemoryProfile, InvalidFractionsThrow) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  Xoshiro256 rng(1);
  MemoryProfile profile;
  profile.zero_fraction = 0.6;
  profile.duplicate_fraction = 0.6;
  EXPECT_THROW(profile.Apply(memory, rng), CheckFailure);
}

// --- Dirty snapshots. ---

TEST(DirtySnapshot, DetectsWrites) {
  GuestMemory memory(MiB(1), ContentMode::kSeedOnly);
  DirtySnapshot snapshot(memory);
  memory.WritePage(10, 1);
  memory.WritePage(20, 2);
  EXPECT_TRUE(snapshot.IsDirty(memory, 10));
  EXPECT_FALSE(snapshot.IsDirty(memory, 11));
  EXPECT_EQ(snapshot.CountDirty(memory), 2u);
  EXPECT_EQ(snapshot.DirtyPages(memory), (std::vector<PageId>{10, 20}));
}

TEST(DirtySnapshot, MismatchedGeometryThrows) {
  GuestMemory small(MiB(1), ContentMode::kSeedOnly);
  GuestMemory big(MiB(2), ContentMode::kSeedOnly);
  DirtySnapshot snapshot(small);
  EXPECT_THROW((void)snapshot.CountDirty(big), CheckFailure);
}

// --- Workloads. ---

TEST(IdleWorkload, WritesAtConfiguredRate) {
  GuestMemory memory(MiB(16), ContentMode::kSeedOnly);
  IdleWorkload::Config config;
  config.write_rate_pages_per_s = 4.0;
  IdleWorkload workload(config);
  workload.Advance(memory, Seconds(100.0));
  EXPECT_EQ(memory.TotalWrites(), 400u);
}

TEST(IdleWorkload, CarriesFractionalWritesAcrossSteps) {
  GuestMemory memory(MiB(16), ContentMode::kSeedOnly);
  IdleWorkload::Config config;
  config.write_rate_pages_per_s = 0.5;
  IdleWorkload workload(config);
  for (int i = 0; i < 100; ++i) workload.Advance(memory, Seconds(1.0));
  EXPECT_EQ(memory.TotalWrites(), 50u);
}

TEST(IdleWorkload, WritesStayInHotRegion) {
  GuestMemory memory(MiB(64), ContentMode::kSeedOnly);
  IdleWorkload::Config config;
  config.write_rate_pages_per_s = 100.0;
  config.hot_region_pages = 128;
  IdleWorkload workload(config);
  DirtySnapshot snapshot(memory);
  workload.Advance(memory, Seconds(100.0));
  for (const PageId page : snapshot.DirtyPages(memory)) {
    EXPECT_LT(page, 128u);
  }
}

TEST(UniformRandomWorkload, SpreadsWritesAcrossRam) {
  GuestMemory memory(MiB(16), ContentMode::kSeedOnly);  // 4096 pages
  UniformRandomWorkload workload(100.0, /*seed=*/3);
  DirtySnapshot snapshot(memory);
  workload.Advance(memory, Seconds(20.0));
  const auto dirty = snapshot.DirtyPages(memory);
  // 2000 writes over 4096 pages: expect wide coverage, some collisions.
  EXPECT_GT(dirty.size(), 1500u);
  EXPECT_LT(dirty.size(), 2001u);
}

TEST(HotspotWorkload, ConcentratesWrites) {
  GuestMemory memory(MiB(64), ContentMode::kSeedOnly);  // 16384 pages
  HotspotWorkload::Config config;
  config.write_rate_pages_per_s = 1000.0;
  config.hot_fraction = 0.1;
  config.hot_probability = 0.9;
  HotspotWorkload workload(config);
  DirtySnapshot snapshot(memory);
  workload.Advance(memory, Seconds(10.0));
  const auto hot_boundary =
      static_cast<PageId>(0.1 * static_cast<double>(memory.PageCount()));
  std::uint64_t hot_writes = 0;
  std::uint64_t total = 0;
  for (const PageId page : snapshot.DirtyPages(memory)) {
    ++total;
    if (page < hot_boundary) ++hot_writes;
  }
  EXPECT_GT(total, 0u);
  // Dirty-page fraction in the hot region must dominate.
  EXPECT_GT(static_cast<double>(hot_writes) / static_cast<double>(total),
            0.5);
}

TEST(SequentialRamdisk, FillCoversConfiguredSpan) {
  GuestMemory memory(MiB(16), ContentMode::kSeedOnly);
  SequentialRamdiskWorkload ramdisk(memory.PageCount(), 0.9, /*seed=*/5);
  ramdisk.Fill(memory);
  EXPECT_EQ(ramdisk.PageSpan(),
            static_cast<std::uint64_t>(0.9 * memory.PageCount()));
  // All ramdisk pages have fresh (non-zero) content.
  for (std::uint64_t i = 0; i < ramdisk.PageSpan(); ++i) {
    EXPECT_NE(memory.Seed(ramdisk.FirstPage() + i), kZeroPageSeed);
  }
}

TEST(SequentialRamdisk, UpdateFractionTouchesExactCount) {
  GuestMemory memory(MiB(16), ContentMode::kSeedOnly);
  SequentialRamdiskWorkload ramdisk(memory.PageCount(), 0.9, /*seed=*/5);
  ramdisk.Fill(memory);
  DirtySnapshot snapshot(memory);
  ramdisk.UpdateFraction(memory, 0.25);
  const auto expected =
      static_cast<std::uint64_t>(0.25 * static_cast<double>(ramdisk.PageSpan()));
  EXPECT_EQ(snapshot.CountDirty(memory), expected);
}

TEST(SequentialRamdisk, UpdatesStayInsideRamdisk) {
  GuestMemory memory(MiB(16), ContentMode::kSeedOnly);
  SequentialRamdiskWorkload ramdisk(memory.PageCount(), 0.5, /*seed=*/5);
  ramdisk.Fill(memory);
  DirtySnapshot snapshot(memory);
  ramdisk.UpdateFraction(memory, 1.0);
  for (const PageId page : snapshot.DirtyPages(memory)) {
    EXPECT_LT(page, ramdisk.FirstPage() + ramdisk.PageSpan());
  }
}

TEST(PageRemapWorkload, PreservesContentMultiset) {
  GuestMemory memory(MiB(16), ContentMode::kSeedOnly);
  Xoshiro256 rng(1);
  MemoryProfile{}.Apply(memory, rng);

  std::multiset<std::uint64_t> before;
  for (PageId p = 0; p < memory.PageCount(); ++p) {
    before.insert(memory.Seed(p));
  }

  PageRemapWorkload workload(50.0, /*seed=*/9);
  workload.Advance(memory, Seconds(10.0));

  std::multiset<std::uint64_t> after;
  for (PageId p = 0; p < memory.PageCount(); ++p) {
    after.insert(memory.Seed(p));
  }
  EXPECT_EQ(before, after);
  // ...but pages were dirtied (the Fig. 5 dirty-tracking overestimate).
  EXPECT_GT(memory.TotalWrites(), memory.PageCount());
}

TEST(CompositeWorkload, RunsAllParts) {
  GuestMemory memory(MiB(16), ContentMode::kSeedOnly);
  CompositeWorkload composite;
  composite.Add(std::make_unique<UniformRandomWorkload>(10.0, 1));
  composite.Add(std::make_unique<UniformRandomWorkload>(20.0, 2));
  composite.Advance(memory, Seconds(10.0));
  EXPECT_EQ(memory.TotalWrites(), 300u);
}

}  // namespace
}  // namespace vecycle::vm
