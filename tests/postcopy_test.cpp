// Post-copy migration and its composition with checkpoint recycling.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "migration/postcopy.hpp"
#include "storage/checkpoint.hpp"
#include "vm/workload.hpp"

namespace vecycle::migration {
namespace {

struct PostCopyBed {
  sim::Simulator simulator;
  sim::Link link{sim::LinkConfig::Lan()};
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore dst_store{dst_disk};

  PostCopyRun MakeRun(vm::GuestMemory& memory, PostCopyConfig config = {}) {
    PostCopyRun run;
    run.simulator = &simulator;
    run.link = &link;
    run.direction = sim::Direction::kAtoB;
    run.source_memory = &memory;
    run.source_cpu = &src_cpu;
    run.dest_cpu = &dst_cpu;
    run.dest_store = &dst_store;
    run.vm_id = "vm";
    run.config = config;
    return run;
  }
};

vm::GuestMemory FilledMemory(Bytes ram, std::uint64_t seed) {
  vm::GuestMemory memory(ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(memory, rng);
  return memory;
}

TEST(PostCopy, ColdMigrationReconstructsMemory) {
  PostCopyBed bed;
  auto memory = FilledMemory(MiB(8), 1);
  PostCopyConfig config;
  config.use_checkpoint = false;
  auto outcome = RunPostCopyMigration(bed.MakeRun(memory, config));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_EQ(outcome.stats.pages_from_checkpoint, 0u);
  EXPECT_GT(outcome.stats.pages_prefetched, 0u);
}

TEST(PostCopy, DowntimeIsTiny) {
  // The whole point of post-copy: downtime is the device-state transfer,
  // not the memory copy.
  PostCopyBed bed;
  auto memory = FilledMemory(MiB(64), 2);
  auto outcome = RunPostCopyMigration(bed.MakeRun(memory));
  EXPECT_LT(ToSeconds(outcome.stats.downtime), 0.1);
  EXPECT_GT(ToSeconds(outcome.stats.time_to_residency),
            ToSeconds(outcome.stats.downtime));
}

TEST(PostCopy, CheckpointCutsNetworkTraffic) {
  auto run_one = [](bool use_checkpoint) {
    PostCopyBed bed;
    auto memory = FilledMemory(MiB(16), 3);
    bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                       kSimEpoch);
    // Mild churn after the checkpoint: ~10% of pages change.
    vm::UniformRandomWorkload churn(100.0, 4);
    churn.Advance(memory, Seconds(4.0));
    PostCopyConfig config;
    config.use_checkpoint = use_checkpoint;
    auto outcome = RunPostCopyMigration(bed.MakeRun(memory, config));
    EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
    return outcome.stats;
  };

  const auto cold = run_one(false);
  const auto recycled = run_one(true);
  EXPECT_GT(recycled.pages_from_checkpoint, 0u);
  EXPECT_LT(recycled.tx_bytes.count, cold.tx_bytes.count / 2);
  EXPECT_GT(recycled.checksum_vector_bytes.count, 0u);
}

TEST(PostCopy, CheckpointCutsRemoteFaults) {
  auto run_one = [](bool use_checkpoint) {
    PostCopyBed bed;
    auto memory = FilledMemory(MiB(32), 5);
    bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                       kSimEpoch);
    vm::UniformRandomWorkload churn(50.0, 6);
    churn.Advance(memory, Seconds(4.0));
    PostCopyConfig config;
    config.use_checkpoint = use_checkpoint;
    config.guest_touch_rate_per_s = 20000.0;  // hungry guest
    auto outcome = RunPostCopyMigration(bed.MakeRun(memory, config));
    return outcome.stats;
  };

  const auto cold = run_one(false);
  const auto recycled = run_one(true);
  EXPECT_LT(recycled.remote_faults, cold.remote_faults);
  EXPECT_LT(ToSeconds(recycled.total_stall), ToSeconds(cold.total_stall));
}

TEST(PostCopy, ChecksumVectorSizeMatchesSection32Math) {
  PostCopyBed bed;
  auto memory = FilledMemory(MiB(16), 7);  // 4096 pages
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  auto outcome = RunPostCopyMigration(bed.MakeRun(memory));
  EXPECT_EQ(outcome.stats.checksum_vector_bytes.count, 4096u * 16u);
}

TEST(PostCopy, NoTouchesStillReachesResidency) {
  PostCopyBed bed;
  auto memory = FilledMemory(MiB(8), 8);
  PostCopyConfig config;
  config.use_checkpoint = false;
  config.guest_touch_rate_per_s = 0.0;
  auto outcome = RunPostCopyMigration(bed.MakeRun(memory, config));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_EQ(outcome.stats.remote_faults, 0u);
}

TEST(PostCopy, GenerationsTravelWithTheVm) {
  PostCopyBed bed;
  auto memory = FilledMemory(MiB(8), 9);
  auto outcome = RunPostCopyMigration(bed.MakeRun(memory));
  EXPECT_EQ(outcome.dest_memory->Generations(), memory.Generations());
}

TEST(PostCopy, ResizedCheckpointIsIgnored) {
  PostCopyBed bed;
  auto old_memory = FilledMemory(MiB(4), 10);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(old_memory),
                     kSimEpoch);
  auto memory = FilledMemory(MiB(8), 11);
  auto outcome = RunPostCopyMigration(bed.MakeRun(memory));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_EQ(outcome.stats.pages_from_checkpoint, 0u);
}

TEST(PostCopyConfig, RejectsDegenerateValues) {
  PostCopyConfig config;
  config.prefetch_batch = 0;
  EXPECT_THROW(config.Validate(), CheckFailure);
  config = PostCopyConfig{};
  config.guest_touch_rate_per_s = -1.0;
  EXPECT_THROW(config.Validate(), CheckFailure);
}

}  // namespace
}  // namespace vecycle::migration
