// Property-based suites: invariants that must hold across randomized
// inputs and swept parameter spaces, driven through parameterized gtest.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.hpp"
#include "digest/hasher.hpp"
#include "digest/md5.hpp"
#include "digest/sha1.hpp"
#include "digest/sha256.hpp"
#include "fingerprint/fingerprint.hpp"
#include "migration/engine.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"
#include "storage/checkpoint.hpp"
#include "vm/workload.hpp"

namespace vecycle {
namespace {

// =====================================================================
// Digest properties: one-shot == any chunking; injective in practice.
// =====================================================================

class DigestChunking
    : public ::testing::TestWithParam<std::tuple<DigestAlgorithm, int>> {};

TEST_P(DigestChunking, ChunkedUpdateEqualsOneShot) {
  const auto [algorithm, size] = GetParam();
  if (algorithm == DigestAlgorithm::kFnv1a) {
    GTEST_SKIP() << "FNV has no incremental context in the public API";
  }
  std::vector<std::byte> data(static_cast<std::size_t>(size));
  Xoshiro256 rng(static_cast<std::uint64_t>(size) * 31 + 7);
  for (auto& b : data) b = static_cast<std::byte>(rng.Next());

  const auto oneshot = ComputeDigest(algorithm, data.data(), data.size());

  // Re-hash through every prefix split point of a coarse grid.
  for (std::size_t split = 0; split <= data.size();
       split += std::max<std::size_t>(1, data.size() / 7)) {
    Digest128 chunked;
    switch (algorithm) {
      case DigestAlgorithm::kMd5: {
        Md5 ctx;
        ctx.Update(data.data(), split);
        ctx.Update(data.data() + split, data.size() - split);
        chunked = ctx.Finalize();
        break;
      }
      case DigestAlgorithm::kSha1: {
        Sha1 ctx;
        ctx.Update(data.data(), split);
        ctx.Update(data.data() + split, data.size() - split);
        chunked = ctx.Finalize();
        break;
      }
      case DigestAlgorithm::kSha256: {
        Sha256 ctx;
        ctx.Update(data.data(), split);
        ctx.Update(data.data() + split, data.size() - split);
        chunked = ctx.Finalize();
        break;
      }
      case DigestAlgorithm::kFnv1a:
        return;
    }
    EXPECT_EQ(chunked, oneshot) << "split at " << split;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgorithms, DigestChunking,
    ::testing::Combine(::testing::Values(DigestAlgorithm::kMd5,
                                         DigestAlgorithm::kSha1,
                                         DigestAlgorithm::kSha256),
                       ::testing::Values(0, 1, 55, 56, 63, 64, 65, 127, 500,
                                         4096)),
    [](const auto& info) {
      return std::string(ToString(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DigestProperty, NoCollisionsAcrossManyRandomPages) {
  // 10k random 64-byte buffers: all four algorithms must keep them
  // distinct (a collision here would mean a broken implementation, not
  // bad luck).
  Xoshiro256 rng(99);
  for (const auto algorithm :
       {DigestAlgorithm::kMd5, DigestAlgorithm::kSha1,
        DigestAlgorithm::kSha256, DigestAlgorithm::kFnv1a}) {
    std::map<Digest128, std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i) {
      std::uint64_t buffer[8];
      for (auto& w : buffer) w = rng.Next();
      const auto digest =
          ComputeDigest(algorithm, buffer, sizeof(buffer));
      const auto [it, inserted] = seen.emplace(digest, i);
      EXPECT_TRUE(inserted)
          << ToString(algorithm) << " collision between inputs "
          << it->second << " and " << i;
    }
  }
}

// =====================================================================
// Simulator properties: arbitrary schedules fire in nondecreasing order.
// =====================================================================

class SimulatorOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorOrdering, RandomSchedulesFireInOrder) {
  sim::Simulator simulator;
  Xoshiro256 rng(GetParam());
  std::vector<SimTime> fired;
  // Seed events that recursively schedule more events.
  std::function<void(int)> plant = [&](int depth) {
    fired.push_back(simulator.Now());
    if (depth <= 0) return;
    const int children = static_cast<int>(rng.NextBelow(3));
    for (int c = 0; c < children; ++c) {
      simulator.Schedule(Seconds(static_cast<double>(rng.NextBelow(100))),
                         [&plant, depth] { plant(depth - 1); });
    }
  };
  for (int i = 0; i < 10; ++i) {
    simulator.Schedule(Seconds(static_cast<double>(rng.NextBelow(1000))),
                       [&plant] { plant(4); });
  }
  simulator.Run();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_GE(fired[i], fired[i - 1]);
  }
  EXPECT_GT(fired.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOrdering,
                         ::testing::Values(1, 2, 3, 4, 5));

// =====================================================================
// Workload properties: exact op accounting over fragmented intervals.
// =====================================================================

class WorkloadRate : public ::testing::TestWithParam<double> {};

TEST_P(WorkloadRate, FragmentedAdvancesHonorTheRateExactly) {
  const double rate = GetParam();
  vm::GuestMemory memory(MiB(16), vm::ContentMode::kSeedOnly);
  vm::UniformRandomWorkload workload(rate, 5);
  // 1000 seconds delivered in awkward fragments.
  Xoshiro256 rng(11);
  double remaining = 1000.0;
  while (remaining > 0.0) {
    const double step = std::min(
        remaining, 0.1 + static_cast<double>(rng.NextBelow(50)) / 10.0);
    workload.Advance(memory, Seconds(step));
    remaining -= step;
  }
  // The fractional-carry mechanism bounds the error at one op (plus the
  // float rounding of the fragment sum); drift must not accumulate.
  EXPECT_NEAR(static_cast<double>(memory.TotalWrites()), rate * 1000.0,
              1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, WorkloadRate,
                         ::testing::Values(0.1, 1.0, 3.7, 12.5, 100.0));

// =====================================================================
// Similarity metric properties.
// =====================================================================

TEST(SimilarityProperty, BoundedAndReflexive) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> ha(128);
    std::vector<std::uint64_t> hb(128);
    for (auto& h : ha) h = rng.NextBelow(64);
    for (auto& h : hb) h = rng.NextBelow(64);
    const fp::Fingerprint a(kSimEpoch, ha);
    const fp::Fingerprint b(Minutes(30), hb);
    const double s = fp::Similarity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_DOUBLE_EQ(fp::Similarity(a, a), 1.0);
  }
}

TEST(SimilarityProperty, MonotoneUnderContentLoss) {
  // Removing shared content from b can only lower similarity(a, b).
  Xoshiro256 rng(22);
  std::vector<std::uint64_t> base(256);
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = i;
  const fp::Fingerprint a(kSimEpoch, base);

  double previous = 1.0;
  auto hashes = base;
  for (int round = 0; round < 8; ++round) {
    // Replace 32 surviving entries with fresh content.
    for (int k = 0; k < 32; ++k) {
      hashes[rng.NextBelow(hashes.size())] = (1ull << 40) + rng.Next();
    }
    const fp::Fingerprint b(Minutes(30 * (round + 1)), hashes);
    const double s = fp::Similarity(a, b);
    EXPECT_LE(s, previous + 1e-12);
    previous = s;
  }
}

// =====================================================================
// Migration invariants swept across strategy x mode x size x churn.
// =====================================================================

struct SweepCase {
  migration::Strategy strategy;
  vm::ContentMode mode;
  std::uint64_t ram_mib;
  double churn_pages_per_s;
};

class MigrationSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MigrationSweep, InvariantsHold) {
  const auto param = GetParam();

  sim::Simulator simulator;
  sim::Link link(sim::LinkConfig::Lan());
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk src_disk{sim::DiskConfig::Hdd()};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore src_store{src_disk};
  storage::CheckpointStore dst_store{dst_disk};

  vm::GuestMemory memory(MiB(param.ram_mib), param.mode);
  Xoshiro256 rng(0xbeef ^ param.ram_mib);
  vm::MemoryProfile{}.Apply(memory, rng);

  // Stale checkpoint + VM metadata from a previous visit.
  const auto departure = memory.Generations();
  dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory), kSimEpoch);
  std::vector<Digest128> knowledge;
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    knowledge.push_back(memory.PageDigest(p));
  }

  // Churn before and during the migration.
  vm::UniformRandomWorkload churn(param.churn_pages_per_s, 0x5ee);
  churn.Advance(memory, Seconds(30.0));

  migration::MigrationRun run;
  run.simulator = &simulator;
  run.link = &link;
  run.direction = sim::Direction::kAtoB;
  run.source_memory = &memory;
  run.workload = &churn;
  run.source = {&src_cpu, &src_store};
  run.destination = {&dst_cpu, &dst_store};
  run.vm_id = "vm";
  run.config.strategy = param.strategy;
  run.source_knowledge = knowledge;
  run.departure_generations = departure;

  const auto outcome = migration::RunMigration(std::move(run));
  const auto& stats = outcome.stats;

  // 1. Exact reconstruction, always.
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  // 2. Round-1 accounting covers every page exactly once.
  EXPECT_EQ(stats.Round1Pages(), memory.PageCount());
  // 3. Time and traffic are sane.
  EXPECT_GT(stats.total_time, SimDuration::zero());
  EXPECT_GT(stats.tx_bytes.count, 0u);
  EXPECT_GE(stats.total_time, stats.downtime);
  // 4. A checkpoint-using strategy never ships more than RAM + overhead.
  EXPECT_LT(stats.tx_bytes.count,
            Pages(memory.PageCount()).count + memory.PageCount() * 64);
  // 5. Incoming digests describe the final state: every page's digest is
  //    findable.
  for (vm::PageId p = 0; p < memory.PageCount(); p += 97) {
    EXPECT_TRUE(std::binary_search(outcome.incoming_digests.begin(),
                                   outcome.incoming_digests.end(),
                                   outcome.dest_memory->PageDigest(p)));
  }
}

std::vector<SweepCase> SweepCases() {
  std::vector<SweepCase> cases;
  for (const auto strategy :
       {migration::Strategy::kFull, migration::Strategy::kDedup,
        migration::Strategy::kDirtyTracking, migration::Strategy::kHashes,
        migration::Strategy::kDirtyPlusDedup,
        migration::Strategy::kHashesPlusDedup}) {
    for (const auto mode :
         {vm::ContentMode::kSeedOnly, vm::ContentMode::kMaterialized}) {
      for (const std::uint64_t ram : {4ull, 16ull}) {
        for (const double churn : {0.0, 200.0}) {
          // Materialized mode only at the small size (it carries real
          // 4 KiB images).
          if (mode == vm::ContentMode::kMaterialized && ram > 4) continue;
          cases.push_back(SweepCase{strategy, mode, ram, churn});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    StrategyModeSizeChurn, MigrationSweep, ::testing::ValuesIn(SweepCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const auto& c = info.param;
      std::string name = ToString(c.strategy);
      for (auto& ch : name) {
        if (ch == '+') ch = '_';
      }
      name += c.mode == vm::ContentMode::kSeedOnly ? "_seed" : "_bytes";
      name += "_" + std::to_string(c.ram_mib) + "mib";
      name += c.churn_pages_per_s > 0 ? "_churn" : "_still";
      return name;
    });

// =====================================================================
// Stats conservation: the byte and page counters MigrationStats reports
// must be complete (cover everything the link carried) and disjoint
// (nothing booked under two names), for every strategy x hash-exchange
// mode x compression. Unlike MigrationSweep above, the source starts
// with NO knowledge of the destination, so the §3.2 bulk exchange and
// the per-page-query variant actually run and their traffic has to
// reconcile against the link's own byte counters.
// =====================================================================

struct ConservationCase {
  migration::Strategy strategy;
  migration::HashExchangeMode exchange;
  bool compression;
};

class StatsConservation
    : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(StatsConservation, WireAndPageAccountingReconcile) {
  const auto param = GetParam();

  sim::Simulator simulator;
  sim::Link link(sim::LinkConfig::Lan());
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore dst_store{dst_disk};

  vm::GuestMemory memory(MiB(16), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(0xacc0);
  vm::MemoryProfile{}.Apply(memory, rng);

  // Stale checkpoint + departure-time generations from a previous visit,
  // then churn so later rounds and dirty skips both occur.
  const auto departure = memory.Generations();
  dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory), kSimEpoch);
  vm::UniformRandomWorkload churn(400.0, 0x5ee);
  churn.Advance(memory, Seconds(30.0));

  migration::MigrationRun run;
  run.simulator = &simulator;
  run.link = &link;
  run.direction = sim::Direction::kAtoB;
  run.source_memory = &memory;
  run.workload = &churn;
  run.source = {&src_cpu, nullptr};
  run.destination = {&dst_cpu, &dst_store};
  run.vm_id = "vm";
  run.config.strategy = param.strategy;
  run.config.hash_exchange = param.exchange;
  run.config.query_window = 4;
  run.config.compression.enabled = param.compression;
  run.config.stop_copy_threshold_pages = 64;
  run.departure_generations = departure;
  // Deliberately no source_knowledge: the exchange protocol must run.

  const auto outcome = migration::RunMigration(std::move(run));
  const auto& stats = outcome.stats;
  const auto& fwd = link.Stats(sim::Direction::kAtoB);
  const auto& bwd = link.Stats(sim::Direction::kBtoA);
  const std::uint64_t digest_bytes = WireSizeBytes(run.config.algorithm);
  const std::uint64_t question = net::kRecordHeaderBytes + digest_bytes;
  const std::uint64_t verdict = net::kRecordHeaderBytes + 1;

  // Round-1 page classification is a partition of guest RAM.
  EXPECT_EQ(stats.Round1Pages(), memory.PageCount());
  // Every checksum-only record was satisfied exactly once downstream.
  EXPECT_EQ(stats.pages_matched_in_place + stats.pages_from_checkpoint,
            stats.pages_sent_checksum);

  // Forward direction: everything on the wire is either channel traffic
  // (tx_bytes) or a raw query question frame — nothing else, nothing
  // counted twice.
  EXPECT_EQ(fwd.payload_bytes.count,
            stats.tx_bytes.count + stats.query_count * question);
  // Backward direction: the bulk exchange, one control ack per round, and
  // the query verdict frames.
  EXPECT_EQ(bwd.payload_bytes.count,
            stats.bulk_exchange_bytes.count +
                stats.rounds * net::kControlFrameBytes +
                stats.query_count * verdict);
  // query_bytes is exactly the question+verdict traffic, and the two
  // exchange mechanisms are mutually exclusive.
  EXPECT_EQ(stats.query_bytes.count,
            stats.query_count * (question + verdict));
  if (param.exchange == migration::HashExchangeMode::kBulk) {
    EXPECT_EQ(stats.query_count, 0u);
    EXPECT_EQ(stats.query_bytes.count, 0u);
    // The exchange must actually have run for hash strategies (the
    // source started with no knowledge), or the equations above pass
    // vacuously.
    if (migration::UsesContentHashes(param.strategy)) {
      EXPECT_GT(stats.bulk_exchange_bytes.count, 0u);
    }
  } else {
    EXPECT_EQ(stats.bulk_exchange_bytes.count, 0u);
    if (migration::UsesContentHashes(param.strategy)) {
      EXPECT_GT(stats.query_count, 0u);
    }
  }
  // Grand total: link payload in both directions decomposes into the
  // three disjoint stats counters plus the per-round ack frames.
  EXPECT_EQ(fwd.payload_bytes.count + bwd.payload_bytes.count,
            stats.tx_bytes.count + stats.bulk_exchange_bytes.count +
                stats.query_bytes.count +
                stats.rounds * net::kControlFrameBytes);

  // Compression accounting: on-wire never exceeds original; both zero
  // when compression is off.
  EXPECT_LE(stats.payload_bytes_on_wire.count,
            stats.payload_bytes_original.count);
  if (!param.compression) {
    EXPECT_EQ(stats.payload_bytes_original.count, 0u);
    EXPECT_EQ(stats.payload_bytes_on_wire.count, 0u);
  }
  // Guarded derived rates are finite even in degenerate corners.
  EXPECT_GE(stats.CompressionRatio(), 0.0);
  EXPECT_LE(stats.CompressionRatio(), 1.0);
  EXPECT_GE(stats.ThroughputBytesPerSecond(), 0.0);
}

std::vector<ConservationCase> ConservationCases() {
  std::vector<ConservationCase> cases;
  for (const auto strategy :
       {migration::Strategy::kFull, migration::Strategy::kDedup,
        migration::Strategy::kDirtyTracking, migration::Strategy::kHashes,
        migration::Strategy::kDirtyPlusDedup,
        migration::Strategy::kHashesPlusDedup}) {
    for (const auto exchange : {migration::HashExchangeMode::kBulk,
                                migration::HashExchangeMode::kPerPageQuery}) {
      for (const bool compression : {false, true}) {
        cases.push_back(ConservationCase{strategy, exchange, compression});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    StrategyExchangeCompression, StatsConservation,
    ::testing::ValuesIn(ConservationCases()),
    [](const ::testing::TestParamInfo<ConservationCase>& info) {
      const auto& c = info.param;
      std::string name = ToString(c.strategy);
      for (auto& ch : name) {
        if (ch == '+') ch = '_';
      }
      name += c.exchange == migration::HashExchangeMode::kBulk ? "_bulk"
                                                               : "_query";
      name += c.compression ? "_zlib" : "_raw";
      return name;
    });

// =====================================================================
// Transfer-stack conservation: multifd per-channel accounts and delta
// byte/page counters must reconcile against the link's own byte totals,
// for every (channels, delta) combination — forward wire bytes are the
// sum over channels, delta pages stay a subset of content sends, and
// the decoded memory digests equal to the source either way.
// =====================================================================

struct TransferStackCase {
  std::uint32_t channels;
  bool delta;
  bool compression;
};

class TransferStackConservation
    : public ::testing::TestWithParam<TransferStackCase> {};

TEST_P(TransferStackConservation, ChannelAndDeltaAccountingReconcile) {
  const auto param = GetParam();

  sim::Simulator simulator;
  sim::Link link(sim::LinkConfig::Lan());
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore dst_store{dst_disk};

  vm::GuestMemory memory(MiB(16), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(0x7f5);
  vm::MemoryProfile{}.Apply(memory, rng);

  // Return-migration setup: recycled checkpoint + departure seeds, then
  // churn, so delta encoding has a baseline and later rounds resend.
  const auto departure_seeds = memory.Seeds();
  const auto departure_generations = memory.Generations();
  dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory), kSimEpoch);
  vm::UniformRandomWorkload churn(400.0, 0x5ef);
  churn.Advance(memory, Seconds(30.0));

  migration::MigrationRun run;
  run.simulator = &simulator;
  run.link = &link;
  run.direction = sim::Direction::kAtoB;
  run.source_memory = &memory;
  run.workload = &churn;
  run.source = {&src_cpu, nullptr};
  run.destination = {&dst_cpu, &dst_store};
  run.vm_id = "vm";
  run.config.strategy = migration::Strategy::kHashes;
  run.config.audit = true;  // per-channel byte-conservation audits armed
  run.config.multifd.enabled = param.channels > 1;
  run.config.multifd.channels = param.channels;
  run.config.delta.enabled = param.delta;
  run.config.compression.enabled = param.compression;
  run.config.stop_copy_threshold_pages = 64;
  run.departure_generations = departure_generations;
  run.departure_seeds = departure_seeds;
  const double delta_max_ratio = run.config.delta.max_ratio;

  const auto outcome = migration::RunMigration(std::move(run));
  const auto& stats = outcome.stats;
  const auto& fwd = link.Stats(sim::Direction::kAtoB);
  const auto& bwd = link.Stats(sim::Direction::kBtoA);

  // The decoded destination image digests equal to the source.
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));

  // Multifd accounting: the per-channel byte accounts are complete and
  // sum to tx_bytes, which is everything the forward wire carried (no
  // knowledge was given, so the bulk exchange ran backward).
  EXPECT_EQ(stats.multifd_channels, param.channels);
  ASSERT_EQ(stats.tx_bytes_per_channel.size(), param.channels);
  Bytes per_channel_sum;
  for (const auto bytes : stats.tx_bytes_per_channel) {
    per_channel_sum += bytes;
  }
  EXPECT_EQ(per_channel_sum, stats.tx_bytes);
  EXPECT_EQ(fwd.payload_bytes.count, stats.tx_bytes.count);
  // Backward: bulk exchange + one ack per round (+ nothing else in a
  // fault-free run — no resend requests).
  EXPECT_EQ(bwd.payload_bytes.count,
            stats.bulk_exchange_bytes.count +
                stats.rounds * net::kControlFrameBytes);

  // Round-1 classification is a partition of guest RAM, with delta pages
  // as a subset of the content sends (not a fifth class).
  EXPECT_EQ(stats.Round1Pages(), memory.PageCount());
  EXPECT_LE(stats.pages_sent_delta,
            stats.pages_sent_full + stats.pages_resent_dirty);

  // Delta accounting: encoded never exceeds original, fraction per page
  // never exceeds max_ratio (plus the 16-byte token floor), all zero
  // when the capability is off.
  EXPECT_LE(stats.delta_bytes_on_wire.count,
            stats.delta_bytes_original.count);
  if (param.delta) {
    EXPECT_GT(stats.pages_sent_delta, 0u);
    EXPECT_EQ(stats.delta_bytes_original.count,
              stats.pages_sent_delta * kPageSize);
    EXPECT_LE(stats.delta_bytes_on_wire.count,
              static_cast<std::uint64_t>(
                  static_cast<double>(stats.delta_bytes_original.count) *
                  delta_max_ratio) +
                  16 * stats.pages_sent_delta);
  } else {
    EXPECT_EQ(stats.pages_sent_delta, 0u);
    EXPECT_EQ(stats.delta_bytes_original.count, 0u);
    EXPECT_EQ(stats.delta_bytes_on_wire.count, 0u);
  }
  // Pristine checkpoint: the per-page degradation path stayed quiet.
  EXPECT_EQ(stats.pages_delta_fallback, 0u);
}

std::vector<TransferStackCase> TransferStackCases() {
  std::vector<TransferStackCase> cases;
  for (const std::uint32_t channels : {1u, 2u, 4u, 8u}) {
    for (const bool delta : {false, true}) {
      for (const bool compression : {false, true}) {
        // Delta and compression are mutually exclusive per record; the
        // combined case proves they partition rather than double-book.
        cases.push_back(TransferStackCase{channels, delta, compression});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    ChannelsDeltaCompression, TransferStackConservation,
    ::testing::ValuesIn(TransferStackCases()),
    [](const ::testing::TestParamInfo<TransferStackCase>& info) {
      const auto& c = info.param;
      std::string name = "ch" + std::to_string(c.channels);
      name += c.delta ? "_delta" : "_plain";
      name += c.compression ? "_zlib" : "_raw";
      return name;
    });

// =====================================================================
// Caching invariance: digest memoization is a wall-clock optimization
// only. Simulated CPU time is charged by the ChecksumEngine regardless
// of whether the real MD5 ran, so every MigrationStats field must be
// identical with the digest caches enabled and disabled.
// =====================================================================

migration::MigrationStats RunCachingScenario(migration::Strategy strategy,
                                             bool cache_enabled) {
  sim::Simulator simulator;
  sim::Link link(sim::LinkConfig::Lan());
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore dst_store{dst_disk};

  vm::GuestMemory memory(MiB(8), vm::ContentMode::kSeedOnly);
  memory.SetDigestCacheEnabled(cache_enabled);
  Xoshiro256 rng(0xcac4e);
  vm::MemoryProfile{}.Apply(memory, rng);

  const auto departure = memory.Generations();
  dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory), kSimEpoch);
  vm::UniformRandomWorkload churn(300.0, 0x5ee);
  churn.Advance(memory, Seconds(20.0));

  migration::MigrationRun run;
  run.simulator = &simulator;
  run.link = &link;
  run.direction = sim::Direction::kAtoB;
  run.source_memory = &memory;
  run.workload = &churn;
  run.source = {&src_cpu, nullptr};
  run.destination = {&dst_cpu, &dst_store};
  run.vm_id = "vm";
  run.config.strategy = strategy;
  run.config.stop_copy_threshold_pages = 64;
  run.departure_generations = departure;
  // No source knowledge, so hash strategies run the full bulk exchange
  // and every digest-dependent code path executes.

  return migration::RunMigration(std::move(run)).stats;
}

TEST(CachingInvariance, StatsIdenticalWithDigestCacheOnAndOff) {
  for (const auto strategy :
       {migration::Strategy::kFull, migration::Strategy::kDedup,
        migration::Strategy::kDirtyTracking, migration::Strategy::kHashes,
        migration::Strategy::kDirtyPlusDedup,
        migration::Strategy::kHashesPlusDedup}) {
    const auto with_cache = RunCachingScenario(strategy, true);
    const auto without_cache = RunCachingScenario(strategy, false);
    EXPECT_EQ(with_cache, without_cache) << ToString(strategy);
  }
}

}  // namespace
}  // namespace vecycle
