#!/usr/bin/env python3
"""Fixture tests for tools/bench_compare.py one-sided-row handling.

Runs the comparer against small synthetic reports and asserts the exit
code for every combination the CI gate relies on: matched reports pass,
regressions fail, rows present on only one side fail loudly, and
--allow-new exempts exactly the declared names (and itself fails when a
declared name never shows up).
"""

import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
COMPARE = REPO / "tools" / "bench_compare.py"


def report(path, rows):
    payload = {
        "schema": "vecycle.bench_perf.v1",
        "benchmarks": [
            {
                "name": name,
                "iters": 100,
                "ns_per_op": ns,
                "ops_per_sec": 1e9 / ns,
            }
            for name, ns in rows
        ],
    }
    path.write_text(json.dumps(payload))
    return path


def run(*argv):
    proc = subprocess.run(
        [sys.executable, str(COMPARE), *map(str, argv)],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc


def main():
    failures = []

    def check(label, proc, want_rc, want_text=None):
        ok = proc.returncode == want_rc and (
            want_text is None or want_text in proc.stdout + proc.stderr
        )
        print(f"{'ok  ' if ok else 'FAIL'} {label}")
        if not ok:
            failures.append(label)
            print(f"  rc={proc.returncode} (wanted {want_rc})")
            print("  stdout:", proc.stdout.strip())
            print("  stderr:", proc.stderr.strip())

    with tempfile.TemporaryDirectory() as raw:
        tmp = pathlib.Path(raw)
        base = report(tmp / "base.json", [("alpha", 100.0), ("beta", 200.0)])
        same = report(tmp / "same.json", [("alpha", 101.0), ("beta", 199.0)])
        slow = report(tmp / "slow.json", [("alpha", 150.0), ("beta", 200.0)])
        extra = report(
            tmp / "extra.json",
            [("alpha", 100.0), ("beta", 200.0), ("gamma", 50.0)],
        )
        short = report(tmp / "short.json", [("alpha", 100.0)])

        check("validate only", run(same), 0)
        check("matched reports pass", run(same, "--baseline", base), 0)
        check(
            "regression beyond threshold fails",
            run(slow, "--baseline", base),
            1,
        )
        check(
            "undeclared new row fails",
            run(extra, "--baseline", base),
            1,
            "missing from baseline",
        )
        check(
            "declared new row passes",
            run(extra, "--baseline", base, "--allow-new", "gamma"),
            0,
            "(allowed)",
        )
        check(
            "row dropped from current fails",
            run(short, "--baseline", base),
            1,
            "missing from current",
        )
        check(
            "allow-new name that never appears fails",
            run(same, "--baseline", base, "--allow-new", "gamma"),
            1,
            "listed in --allow-new but not in current",
        )
        check(
            "allow-new does not mask a dropped baseline row",
            run(short, "--baseline", base, "--allow-new", "beta"),
            1,
            "missing from current",
        )

    if failures:
        print(f"{len(failures)} fixture check(s) failed", file=sys.stderr)
        return 1
    print("all bench_compare fixture checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
