// Reproduction gate: the paper's headline quantitative claims, asserted
// as tests so a regression in any layer (trace calibration, device
// models, protocol) fails CI rather than silently bending the figures.
// Tolerances are deliberately generous — these guard the *shape* of each
// result, per EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "analysis/binning.hpp"
#include "analysis/technique.hpp"
#include "analysis/vdi.hpp"
#include "bench_helpers_for_tests.hpp"
#include "traces/synthesizer.hpp"

namespace vecycle {
namespace {

traces::MachineSpec Scaled(traces::MachineSpec spec) {
  spec.model_pages = 8192;
  return spec;
}

// --- §4.4 / Fig. 6: best-case idle VM. ---

TEST(Reproduction, Fig6LanSpeedupIsAtLeastThreefold) {
  vm::IdleWorkload idle_a{vm::IdleWorkload::Config{}};
  const auto baseline = testbench::MeasureReturnMigration(
      sim::LinkConfig::Lan(), GiB(1), migration::Strategy::kFull, &idle_a,
      Minutes(2));
  vm::IdleWorkload idle_b{vm::IdleWorkload::Config{}};
  const auto vecycle = testbench::MeasureReturnMigration(
      sim::LinkConfig::Lan(), GiB(1), migration::Strategy::kHashes, &idle_b,
      Minutes(2));

  // Paper: 3x faster on small VMs; traffic down two orders of magnitude.
  EXPECT_GE(ToSeconds(baseline.total_time) / ToSeconds(vecycle.total_time),
            2.5);
  EXPECT_GE(static_cast<double>(baseline.tx_bytes.count) /
                static_cast<double>(vecycle.tx_bytes.count),
            50.0);
  // Paper: ~10 s/GiB baseline over GbE.
  EXPECT_NEAR(ToSeconds(baseline.total_time), 10.0, 2.5);
}

TEST(Reproduction, Fig6WanBenefitIsLarger) {
  vm::IdleWorkload idle_a{vm::IdleWorkload::Config{}};
  const auto baseline = testbench::MeasureReturnMigration(
      sim::LinkConfig::Wan(), GiB(1), migration::Strategy::kFull, &idle_a,
      Minutes(2));
  vm::IdleWorkload idle_b{vm::IdleWorkload::Config{}};
  const auto vecycle = testbench::MeasureReturnMigration(
      sim::LinkConfig::Wan(), GiB(1), migration::Strategy::kHashes, &idle_b,
      Minutes(2));
  // Paper: 177 s -> 16 s at 1 GiB (11x); we require >8x.
  EXPECT_GE(ToSeconds(baseline.total_time) / ToSeconds(vecycle.total_time),
            8.0);
}

// --- §4.5 / Fig. 7: proportional decay with update rate. ---

TEST(Reproduction, Fig7DeltasTrackThePaper) {
  const auto run = [](double update_fraction,
                      migration::Strategy strategy) {
    testbench::TwoHostWorld world(sim::LinkConfig::Lan());
    core::VmInstance vm("vm", GiB(1), vm::ContentMode::kSeedOnly);
    vm::SequentialRamdiskWorkload ramdisk(vm.Memory().PageCount(), 0.9,
                                          0xd15c);
    ramdisk.Fill(vm.Memory());
    world.orchestrator.Deploy(vm, "A");
    world.orchestrator.Migrate(
        vm, "B", testbench::StrategyConfig(migration::Strategy::kFull));
    ramdisk.UpdateFraction(vm.Memory(), update_fraction);
    return world.orchestrator.Migrate(vm, "A",
                                      testbench::StrategyConfig(strategy));
  };

  const auto baseline = run(0.5, migration::Strategy::kFull);
  // Paper LAN deltas: -72% at 25%, -49% at 50%, -27% at 75%.
  const struct {
    double update;
    double expected_delta;
  } cases[] = {{0.25, -0.72}, {0.50, -0.49}, {0.75, -0.27}};
  for (const auto& c : cases) {
    const auto vecycle = run(c.update, migration::Strategy::kHashes);
    const double delta = ToSeconds(vecycle.total_time) /
                             ToSeconds(baseline.total_time) -
                         1.0;
    EXPECT_NEAR(delta, c.expected_delta, 0.12)
        << "update fraction " << c.update;
  }
  // At 100% updates VeCycle converges to the baseline.
  const auto full_update = run(1.0, migration::Strategy::kHashes);
  EXPECT_NEAR(ToSeconds(full_update.total_time) /
                  ToSeconds(baseline.total_time),
              1.0, 0.15);
}

// --- §2.3 / Fig. 1-2: trace similarity calibration. ---

TEST(Reproduction, Fig1SimilarityBandsHold) {
  const auto decay_at = [](const fp::Trace& trace, double hours) {
    analysis::SimilarityDecayOptions options;
    options.max_delta = Hours(hours + 1.0);
    options.max_pairs_per_bin = 64;
    const auto decay = analysis::SimilarityDecay(trace, options);
    return decay.back().mean;
  };

  const auto server_b =
      traces::SynthesizeTrace(Scaled(traces::FindMachine("Server B")));
  const auto server_c =
      traces::SynthesizeTrace(Scaled(traces::FindMachine("Server C")));
  // "The average similarity after 24 hours is between 40% (Server B) and
  // 20% (Server C)."
  EXPECT_NEAR(decay_at(server_b, 24.0), 0.40, 0.10);
  EXPECT_NEAR(decay_at(server_c, 24.0), 0.22, 0.08);

  const auto crawler =
      traces::SynthesizeTrace(Scaled(traces::FindMachine("Crawler A")));
  EXPECT_LT(decay_at(crawler, 5.0), 0.27);  // "below 20% after 5 hours"
}

// --- §4.2-4.3 / Fig. 5: technique ordering. ---

TEST(Reproduction, Fig5OrderingHoldsOnEveryMachine) {
  for (const char* name : {"Server A", "Server B", "Server C", "Laptop A"}) {
    const auto trace =
        traces::SynthesizeTrace(Scaled(traces::FindMachine(name)));
    analysis::TechniqueSummaryOptions options;
    options.max_pairs = 128;
    const auto s = analysis::SummarizeTechniques(trace, options);
    EXPECT_GT(s.mean_dedup, s.mean_dirty) << name;
    EXPECT_GE(s.mean_dirty, s.mean_dirty_dedup) << name;
    EXPECT_GE(s.mean_dirty_dedup, s.mean_hashes_dedup - 0.01) << name;
    EXPECT_GE(s.mean_hashes, s.mean_hashes_dedup) << name;
  }
}

TEST(Reproduction, Fig5ServerABarsNearPaper) {
  const auto trace =
      traces::SynthesizeTrace(Scaled(traces::FindMachine("Server A")));
  analysis::TechniqueSummaryOptions options;
  options.max_pairs = 256;
  const auto s = analysis::SummarizeTechniques(trace, options);
  EXPECT_NEAR(s.mean_dedup, 0.92, 0.05);         // paper .92
  EXPECT_NEAR(s.mean_hashes, 0.65, 0.08);        // paper .65
  EXPECT_NEAR(s.mean_hashes_dedup, 0.64, 0.08);  // paper .64
}

// --- §4.6 / Fig. 8: the VDI aggregate. ---

TEST(Reproduction, Fig8AggregatesNearPaper) {
  auto spec = traces::DesktopMachine();
  spec.model_pages = 8192;
  const auto trace = traces::SynthesizeTrace(spec);
  const auto report = analysis::AnalyzeVdi(trace, spec.nominal_ram,
                                           analysis::VdiScheduleOptions{});

  const double dedup_frac =
      static_cast<double>(report.total_dedup.count) /
      static_cast<double>(report.total_full.count);
  const double vecycle_frac =
      static_cast<double>(report.total_vecycle.count) /
      static_cast<double>(report.total_full.count);
  const double vs_dirty =
      1.0 - static_cast<double>(report.total_vecycle.count) /
                static_cast<double>(report.total_dirty_dedup.count);

  EXPECT_NEAR(dedup_frac, 0.86, 0.06);    // paper: 86% of baseline
  EXPECT_NEAR(vecycle_frac, 0.25, 0.07);  // paper: 25% of baseline
  EXPECT_NEAR(vs_dirty, 0.09, 0.06);      // paper: 9% fewer pages
  EXPECT_EQ(report.rows.size(), 26u);     // paper: 26 migrations
}

}  // namespace
}  // namespace vecycle
