// End-to-end migration engine tests: every strategy must reconstruct the
// source memory exactly, and the per-strategy traffic/time behaviour must
// match the paper's mechanics (checksum-only records for matches, dirty
// skips, dedup references, multi-round convergence, stop-and-copy).
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "migration/engine.hpp"
#include "storage/checkpoint.hpp"
#include "vm/workload.hpp"

namespace vecycle::migration {
namespace {

struct TestBed {
  sim::Simulator simulator;
  sim::Link link{sim::LinkConfig::Lan()};
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk src_disk{sim::DiskConfig::Hdd()};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore src_store{src_disk};
  storage::CheckpointStore dst_store{dst_disk};

  MigrationRun MakeRun(vm::GuestMemory& memory, MigrationConfig config) {
    MigrationRun run;
    run.simulator = &simulator;
    run.link = &link;
    run.direction = sim::Direction::kAtoB;
    run.source_memory = &memory;
    run.source = {&src_cpu, &src_store};
    run.destination = {&dst_cpu, &dst_store};
    run.vm_id = "vm";
    run.config = config;
    return run;
  }
};

vm::GuestMemory RandomMemory(Bytes ram, std::uint64_t seed,
                             vm::ContentMode mode = vm::ContentMode::kSeedOnly) {
  vm::GuestMemory memory(ram, mode);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(memory, rng);
  return memory;
}

/// Digest list of a memory image — the ping-pong knowledge a source would
/// have learned from a previous incoming migration.
std::vector<Digest128> DigestsOf(const vm::GuestMemory& memory) {
  std::vector<Digest128> digests;
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    digests.push_back(memory.PageDigest(p));
  }
  return digests;
}

// --- Correctness: every strategy reconstructs memory exactly. ---

class StrategyCorrectness : public ::testing::TestWithParam<Strategy> {};

TEST_P(StrategyCorrectness, ReconstructsMemoryWithoutCheckpoint) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 1);
  MigrationConfig config;
  config.strategy = GetParam();
  auto outcome = RunMigration(bed.MakeRun(memory, config));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_GT(outcome.stats.tx_bytes.count, 0u);
}

TEST_P(StrategyCorrectness, ReconstructsMemoryWithStaleCheckpoint) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 2);

  // The VM visited the destination before: a checkpoint of an older state
  // waits there, and the VM carries its departure metadata.
  const auto departure_generations = memory.Generations();
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  const auto knowledge = DigestsOf(memory);

  // The VM diverges meaningfully before returning.
  vm::UniformRandomWorkload churn(100.0, 99);
  churn.Advance(memory, Seconds(10.0));

  MigrationConfig config;
  config.strategy = GetParam();
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = knowledge;
  run.departure_generations = departure_generations;
  auto outcome = RunMigration(std::move(run));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
}

TEST_P(StrategyCorrectness, GenerationsTravelWithTheVm) {
  TestBed bed;
  auto memory = RandomMemory(MiB(4), 3);
  MigrationConfig config;
  config.strategy = GetParam();
  auto outcome = RunMigration(bed.MakeRun(memory, config));
  EXPECT_EQ(outcome.dest_memory->Generations(), memory.Generations());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyCorrectness,
    ::testing::Values(Strategy::kFull, Strategy::kDedup,
                      Strategy::kDirtyTracking, Strategy::kHashes,
                      Strategy::kDirtyPlusDedup, Strategy::kHashesPlusDedup),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      switch (info.param) {
        case Strategy::kFull:
          return "Full";
        case Strategy::kDedup:
          return "Dedup";
        case Strategy::kDirtyTracking:
          return "Dirty";
        case Strategy::kHashes:
          return "Hashes";
        case Strategy::kDirtyPlusDedup:
          return "DirtyDedup";
        case Strategy::kHashesPlusDedup:
          return "HashesDedup";
      }
      return "Unknown";
    });

// --- Byte-level fidelity in materialized mode. ---

TEST(Migration, MaterializedModeReconstructsBytes) {
  TestBed bed;
  auto memory = RandomMemory(MiB(2), 4, vm::ContentMode::kMaterialized);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto outcome = RunMigration(bed.MakeRun(memory, config));
  ASSERT_EQ(outcome.dest_memory->Mode(), vm::ContentMode::kMaterialized);
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    const auto src = memory.PageBytes(p);
    const auto dst = outcome.dest_memory->PageBytes(p);
    ASSERT_TRUE(std::equal(src.begin(), src.end(), dst.begin()))
        << "page " << p;
  }
}

// --- Baseline (kFull) behaviour. ---

TEST(Migration, FullSendsEveryPage) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 5);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  auto outcome = RunMigration(bed.MakeRun(memory, config));
  EXPECT_EQ(outcome.stats.Round1Pages(), memory.PageCount());
  EXPECT_EQ(outcome.stats.pages_sent_checksum, 0u);
  EXPECT_EQ(outcome.stats.pages_dup_ref, 0u);
  // Traffic is roughly the RAM size (zero pages elided; default profile
  // has ~3%).
  EXPECT_GT(outcome.stats.tx_bytes, MiB(7));
}

TEST(Migration, FullElidesZeroPages) {
  TestBed bed;
  vm::GuestMemory memory(MiB(8), vm::ContentMode::kSeedOnly);  // all zeros
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  auto outcome = RunMigration(bed.MakeRun(memory, config));
  // Only headers travel: far less than one MiB for 2048 pages.
  EXPECT_LT(outcome.stats.tx_bytes, MiB(1));
}

// --- VeCycle (kHashes) behaviour. ---

TEST(Migration, HashesIdenticalStateSendsOnlyChecksums) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 6);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = DigestsOf(memory);
  auto outcome = RunMigration(std::move(run));

  EXPECT_EQ(outcome.stats.pages_sent_full,
            memory.CountZeroPages());  // only the (elided) zero pages
  EXPECT_GT(outcome.stats.pages_sent_checksum, 0u);
  // Traffic is two orders of magnitude below RAM size (§4.4).
  EXPECT_LT(outcome.stats.tx_bytes, MiB(1));
  // Every checksum-only record matched in place: positions unchanged.
  EXPECT_EQ(outcome.stats.pages_from_checkpoint, 0u);
}

TEST(Migration, HashesFetchesMovedContentFromCheckpoint) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 7);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  const auto knowledge = DigestsOf(memory);

  // Remap content between frames: content set unchanged, positions not.
  vm::PageRemapWorkload remap(100.0, 11);
  remap.Advance(memory, Seconds(5.0));

  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = knowledge;
  auto outcome = RunMigration(std::move(run));

  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  // Moved pages were satisfied by random checkpoint reads, not network.
  EXPECT_GT(outcome.stats.pages_from_checkpoint, 0u);
  EXPECT_LT(outcome.stats.tx_bytes, MiB(1));
}

TEST(Migration, HashesWithoutKnowledgeTriggersBulkExchange) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 8);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);  // no source_knowledge
  auto outcome = RunMigration(std::move(run));
  EXPECT_GT(outcome.stats.bulk_exchange_bytes.count, 0u);
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  // The exchange pays for itself: checksum traffic instead of pages.
  EXPECT_LT(outcome.stats.tx_bytes, MiB(1));
}

TEST(Migration, HashesWithKnowledgeSkipsBulkExchange) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 9);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = DigestsOf(memory);
  auto outcome = RunMigration(std::move(run));
  EXPECT_EQ(outcome.stats.bulk_exchange_bytes.count, 0u);
}

TEST(Migration, HashesWithoutCheckpointDegradesToFull) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 10);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto outcome = RunMigration(bed.MakeRun(memory, config));
  EXPECT_EQ(outcome.stats.pages_sent_checksum, 0u);
  EXPECT_GT(outcome.stats.tx_bytes, MiB(7));
}

// --- Miyakodori (kDirtyTracking) behaviour. ---

TEST(Migration, DirtyTrackingSkipsCleanPages) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 11);
  const auto departure = memory.Generations();
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);

  // Touch exactly 100 pages.
  for (vm::PageId p = 0; p < 100; ++p) memory.WritePage(p, 1'000'000 + p);

  MigrationConfig config;
  config.strategy = Strategy::kDirtyTracking;
  auto run = bed.MakeRun(memory, config);
  run.departure_generations = departure;
  auto outcome = RunMigration(std::move(run));

  EXPECT_EQ(outcome.stats.pages_skipped_clean, memory.PageCount() - 100);
  EXPECT_EQ(outcome.stats.pages_sent_full, 100u);
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
}

TEST(Migration, DirtyTrackingOverestimatesOnRemap) {
  // The Fig. 5 caveat: moving content between frames dirties pages without
  // creating new content. Dirty tracking transfers them; VeCycle does not.
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 12);
  const auto departure = memory.Generations();
  const auto knowledge = DigestsOf(memory);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);

  vm::PageRemapWorkload remap(200.0, 13);
  remap.Advance(memory, Seconds(5.0));

  MigrationConfig dirty_config;
  dirty_config.strategy = Strategy::kDirtyTracking;
  auto dirty_run = bed.MakeRun(memory, dirty_config);
  dirty_run.departure_generations = departure;
  auto dirty_outcome = RunMigration(std::move(dirty_run));

  TestBed bed2;
  bed2.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                      kSimEpoch);
  // Rebuild pre-remap checkpoint state at the second bed's destination:
  // the checkpoint must hold the *old* state for a fair comparison — but
  // content-wise old and new states are identical under remap, so saving
  // the current state is equivalent for kHashes.
  MigrationConfig hash_config;
  hash_config.strategy = Strategy::kHashes;
  auto hash_run = bed2.MakeRun(memory, hash_config);
  hash_run.source_knowledge = knowledge;
  auto hash_outcome = RunMigration(std::move(hash_run));

  EXPECT_GT(dirty_outcome.stats.tx_bytes.count,
            2 * hash_outcome.stats.tx_bytes.count);
}

// --- Dedup behaviour. ---

TEST(Migration, DedupCollapsesIdenticalPages) {
  TestBed bed;
  vm::GuestMemory memory(MiB(8), vm::ContentMode::kSeedOnly);
  // 2048 pages, only 16 distinct contents.
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    memory.WritePage(p, 1 + (p % 16));
  }
  MigrationConfig config;
  config.strategy = Strategy::kDedup;
  auto outcome = RunMigration(bed.MakeRun(memory, config));
  EXPECT_EQ(outcome.stats.pages_sent_full, 16u);
  EXPECT_EQ(outcome.stats.pages_dup_ref, memory.PageCount() - 16);
  EXPECT_LT(outcome.stats.tx_bytes, MiB(1));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
}

TEST(Migration, HashesPlusDedupBeatsPlainHashesOnDuplicates) {
  // New content that is internally duplicated: hashes alone sends each
  // copy, hashes+dedup sends one copy plus references.
  auto make_memory = [] {
    vm::GuestMemory memory(MiB(8), vm::ContentMode::kSeedOnly);
    for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
      memory.WritePage(p, 1 + (p % 64));
    }
    return memory;
  };

  TestBed bed_a;
  auto mem_a = make_memory();
  MigrationConfig plain;
  plain.strategy = Strategy::kHashes;
  auto out_a = RunMigration(bed_a.MakeRun(mem_a, plain));

  TestBed bed_b;
  auto mem_b = make_memory();
  MigrationConfig combo;
  combo.strategy = Strategy::kHashesPlusDedup;
  auto out_b = RunMigration(bed_b.MakeRun(mem_b, combo));

  EXPECT_LT(out_b.stats.tx_bytes.count, out_a.stats.tx_bytes.count / 10);
}

// --- Live-migration dynamics. ---

TEST(Migration, ActiveWorkloadForcesExtraRounds) {
  TestBed bed;
  auto memory = RandomMemory(MiB(64), 14);
  vm::UniformRandomWorkload churn(2000.0, 15);

  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.stop_copy_threshold_pages = 64;
  auto run = bed.MakeRun(memory, config);
  run.workload = &churn;
  auto outcome = RunMigration(std::move(run));

  EXPECT_GE(outcome.stats.rounds, 3u);
  EXPECT_GT(outcome.stats.pages_resent_dirty, 0u);
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
}

TEST(Migration, FastWriterHitsRoundCap) {
  TestBed bed;
  auto memory = RandomMemory(MiB(32), 16);
  // Writes far faster than the link can drain.
  vm::UniformRandomWorkload churn(200000.0, 17);

  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.stop_copy_threshold_pages = 16;
  config.max_rounds = 5;
  auto run = bed.MakeRun(memory, config);
  run.workload = &churn;
  auto outcome = RunMigration(std::move(run));

  EXPECT_EQ(outcome.stats.rounds, 5u);
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_GT(outcome.stats.downtime, SimDuration::zero());
}

TEST(Migration, IdleVmConvergesInTwoRounds) {
  TestBed bed;
  auto memory = RandomMemory(MiB(64), 18);
  vm::IdleWorkload idle(vm::IdleWorkload::Config{});

  MigrationConfig config;
  config.strategy = Strategy::kFull;
  auto run = bed.MakeRun(memory, config);
  run.workload = &idle;
  auto outcome = RunMigration(std::move(run));
  EXPECT_EQ(outcome.stats.rounds, 2u);  // first copy + trivial stop round
}

TEST(Migration, DowntimeIsSmallForIdleVm) {
  TestBed bed;
  auto memory = RandomMemory(MiB(64), 19);
  vm::IdleWorkload idle(vm::IdleWorkload::Config{});
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  auto run = bed.MakeRun(memory, config);
  run.workload = &idle;
  auto outcome = RunMigration(std::move(run));
  EXPECT_LT(outcome.stats.downtime, Seconds(0.5));
  EXPECT_LT(outcome.stats.downtime, outcome.stats.total_time);
}

// --- Timing shape (the §4.4 claims at small scale). ---

TEST(Migration, VeCycleIsFasterThanBaselineAtHighSimilarity) {
  auto make = [](Strategy strategy, std::vector<Digest128> knowledge,
                 bool with_checkpoint) {
    auto bed = std::make_unique<TestBed>();
    auto memory = RandomMemory(MiB(64), 20);
    if (with_checkpoint) {
      bed->dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                          kSimEpoch);
    }
    MigrationConfig config;
    config.strategy = strategy;
    auto run = bed->MakeRun(memory, config);
    run.source_knowledge = std::move(knowledge);
    return RunMigration(std::move(run)).stats;
  };

  auto memory_for_digests = RandomMemory(MiB(64), 20);
  const auto knowledge = DigestsOf(memory_for_digests);

  const auto baseline = make(Strategy::kFull, {}, false);
  const auto vecycle = make(Strategy::kHashes, knowledge, true);

  // §4.4: 3-4x faster on LAN at ~100% similarity.
  EXPECT_LT(ToSeconds(vecycle.total_time) * 2.0,
            ToSeconds(baseline.total_time));
  // And traffic collapses by orders of magnitude.
  EXPECT_LT(vecycle.tx_bytes.count * 20, baseline.tx_bytes.count);
}

TEST(Migration, ChecksumRateBoundsVeCycle) {
  // §3.4: with high similarity the checksum rate, not the link, is the
  // lower bound. At 350 MiB/s, 64 MiB of hashing takes ~0.18 s at both
  // ends (pipelined); the total time must sit near that, far below the
  // ~0.55 s the link would need for full content.
  TestBed bed;
  auto memory = RandomMemory(MiB(64), 21);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = DigestsOf(memory);
  auto outcome = RunMigration(std::move(run));
  const double hash_seconds = 64.0 / 350.0;
  EXPECT_GT(ToSeconds(outcome.stats.total_time), hash_seconds * 0.9);
  EXPECT_LT(ToSeconds(outcome.stats.total_time), hash_seconds * 3.0);
}

// --- The §3.2 per-page query protocol variant. ---

namespace {

MigrationStats RunQueryMode(sim::LinkConfig link, HashExchangeMode mode,
                            std::uint32_t window) {
  TestBed bed;
  bed.link = sim::Link(link);
  auto memory = RandomMemory(MiB(8), 30);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  config.hash_exchange = mode;
  config.query_window = window;
  auto run = bed.MakeRun(memory, config);  // no source knowledge -> exchange
  auto outcome = RunMigration(std::move(run));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  return outcome.stats;
}

}  // namespace

TEST(QueryProtocol, ReconstructsMemoryAndCountsQueries) {
  const auto stats = RunQueryMode(sim::LinkConfig::Lan(),
                                  HashExchangeMode::kPerPageQuery, 4);
  EXPECT_GT(stats.query_count, 0u);
  EXPECT_GT(stats.query_bytes.count, 0u);
  EXPECT_EQ(stats.bulk_exchange_bytes.count, 0u);
  // Zero pages are elided without consulting the destination.
  EXPECT_LT(stats.query_count, 2048u);
}

TEST(QueryProtocol, BulkModeIssuesNoQueries) {
  const auto stats =
      RunQueryMode(sim::LinkConfig::Lan(), HashExchangeMode::kBulk, 1);
  EXPECT_EQ(stats.query_count, 0u);
  EXPECT_EQ(stats.query_bytes.count, 0u);
  EXPECT_GT(stats.bulk_exchange_bytes.count, 0u);
}

TEST(QueryProtocol, SynchronousQueriesPayPerPageLatency) {
  // §3.2's expectation, verified: with one outstanding query the WAN's
  // 54 ms round trip dominates everything else.
  const auto bulk =
      RunQueryMode(sim::LinkConfig::Wan(), HashExchangeMode::kBulk, 1);
  const auto query = RunQueryMode(sim::LinkConfig::Wan(),
                                  HashExchangeMode::kPerPageQuery, 1);
  EXPECT_GT(ToSeconds(query.total_time), 10.0 * ToSeconds(bulk.total_time));
}

TEST(QueryProtocol, PipeliningRecoversMostOfTheLoss) {
  const auto narrow = RunQueryMode(sim::LinkConfig::Wan(),
                                   HashExchangeMode::kPerPageQuery, 1);
  const auto wide = RunQueryMode(sim::LinkConfig::Wan(),
                                 HashExchangeMode::kPerPageQuery, 64);
  EXPECT_LT(ToSeconds(wide.total_time) * 5.0,
            ToSeconds(narrow.total_time));
}

TEST(QueryProtocol, PingPongKnowledgeBypassesQueries) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 31);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  config.hash_exchange = HashExchangeMode::kPerPageQuery;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = DigestsOf(memory);  // ping-pong fast path
  auto outcome = RunMigration(std::move(run));
  EXPECT_EQ(outcome.stats.query_count, 0u);
}

// --- Wire compression (related work [24], composable with VeCycle). ---

TEST(Compression, ReducesTrafficAndReconstructsMemory) {
  TestBed plain_bed;
  auto memory_a = RandomMemory(MiB(8), 40);
  MigrationConfig plain;
  plain.strategy = Strategy::kFull;
  const auto uncompressed =
      RunMigration(plain_bed.MakeRun(memory_a, plain));

  TestBed zip_bed;
  auto memory_b = RandomMemory(MiB(8), 40);
  MigrationConfig zipped;
  zipped.strategy = Strategy::kFull;
  zipped.compression.enabled = true;
  const auto compressed = RunMigration(zip_bed.MakeRun(memory_b, zipped));

  EXPECT_TRUE(compressed.dest_memory->ContentEquals(memory_b));
  EXPECT_LT(compressed.stats.tx_bytes.count,
            uncompressed.stats.tx_bytes.count * 3 / 4);
  EXPECT_GT(compressed.stats.payload_bytes_original.count,
            compressed.stats.payload_bytes_on_wire.count);
}

TEST(Compression, RatioIsDeterministicPerContent) {
  TestBed bed_a;
  auto mem_a = RandomMemory(MiB(4), 41);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.compression.enabled = true;
  const auto first = RunMigration(bed_a.MakeRun(mem_a, config));

  TestBed bed_b;
  auto mem_b = RandomMemory(MiB(4), 41);
  const auto second = RunMigration(bed_b.MakeRun(mem_b, config));
  EXPECT_EQ(first.stats.payload_bytes_on_wire,
            second.stats.payload_bytes_on_wire);
}

TEST(Compression, ComposesWithVeCycle) {
  // Compression applies only to the genuinely new pages; matched pages
  // travel as checksums either way.
  auto run_one = [](bool compress) {
    TestBed bed;
    auto memory = RandomMemory(MiB(8), 42);
    bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                       kSimEpoch);
    const auto knowledge = DigestsOf(memory);
    vm::UniformRandomWorkload churn(100.0, 43);
    churn.Advance(memory, Seconds(5.0));
    MigrationConfig config;
    config.strategy = Strategy::kHashes;
    config.compression.enabled = compress;
    auto run = bed.MakeRun(memory, config);
    run.source_knowledge = knowledge;
    return RunMigration(std::move(run)).stats;
  };
  const auto without = run_one(false);
  const auto with = run_one(true);
  EXPECT_LT(with.tx_bytes.count, without.tx_bytes.count);
  EXPECT_EQ(with.pages_sent_checksum, without.pages_sent_checksum);
}

TEST(Compression, DisabledLeavesPayloadsUntouched) {
  TestBed bed;
  auto memory = RandomMemory(MiB(4), 44);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  const auto outcome = RunMigration(bed.MakeRun(memory, config));
  EXPECT_EQ(outcome.stats.payload_bytes_original.count, 0u);
  EXPECT_EQ(outcome.stats.payload_bytes_on_wire.count, 0u);
}

// --- Resized-VM safety. ---

TEST(Migration, ResizedVmIgnoresStaleCheckpoint) {
  TestBed bed;
  // Checkpoint from a 4 MiB incarnation of the VM...
  auto old_memory = RandomMemory(MiB(4), 32);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(old_memory),
                     kSimEpoch);
  // ...but the VM now has 8 MiB and stale knowledge/generations.
  auto memory = RandomMemory(MiB(8), 33);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = DigestsOf(old_memory);
  run.departure_generations = old_memory.Generations();
  auto outcome = RunMigration(std::move(run));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  // Degraded to a cold migration: no checksum records, no skips.
  EXPECT_EQ(outcome.stats.pages_sent_checksum, 0u);
  EXPECT_EQ(outcome.stats.pages_skipped_clean, 0u);
  // The unusable checkpoint was dropped.
  EXPECT_FALSE(bed.dst_store.Has("vm"));
}

TEST(Migration, CorruptCheckpointDegradesPerPage) {
  // A latent disk error flips a page inside the stored checkpoint. The
  // destination still seeds guest RAM from it — the checksum index is
  // built over the content actually on disk, so the damaged page misses
  // its lookup and only that page is re-fetched in full over the wire.
  // The rest of the image keeps recycling (the fault layer's graceful
  // degradation, instead of the whole migration going cold).
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 50);
  auto checkpoint = storage::Checkpoint::CaptureFrom(memory);
  ASSERT_TRUE(checkpoint.IntegrityOk());
  checkpoint.CorruptPageForTesting(123, 0xBADBADBADull);
  ASSERT_FALSE(checkpoint.IntegrityOk());
  bed.dst_store.Save("vm", std::move(checkpoint), kSimEpoch);

  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = DigestsOf(memory);
  auto outcome = RunMigration(std::move(run));

  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_GT(outcome.stats.pages_sent_checksum, 0u);  // still recycling
  EXPECT_TRUE(bed.dst_store.Has("vm"));              // checkpoint retained
  // Every checksum-only record resolved exactly one way.
  EXPECT_EQ(outcome.stats.pages_matched_in_place +
                outcome.stats.pages_from_checkpoint +
                outcome.stats.fallback_pages,
            outcome.stats.pages_sent_checksum);
}

TEST(Migration, IntactCheckpointPassesIntegrityCheck) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 51);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  auto run = bed.MakeRun(memory, config);
  run.source_knowledge = DigestsOf(memory);
  auto outcome = RunMigration(std::move(run));
  EXPECT_GT(outcome.stats.pages_sent_checksum, 0u);  // recycled as normal
}

TEST(Migration, DirtyTrackingWithResizedVmDegradesToFull) {
  TestBed bed;
  auto old_memory = RandomMemory(MiB(4), 34);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(old_memory),
                     kSimEpoch);
  auto memory = RandomMemory(MiB(8), 35);
  MigrationConfig config;
  config.strategy = Strategy::kDirtyTracking;
  auto run = bed.MakeRun(memory, config);
  run.departure_generations = old_memory.Generations();
  auto outcome = RunMigration(std::move(run));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  EXPECT_EQ(outcome.stats.pages_skipped_clean, 0u);
}

// --- Config validation. ---

TEST(MigrationConfig, RejectsDegenerateValues) {
  MigrationConfig config;
  config.batch_pages = 0;
  EXPECT_THROW(config.Validate(), CheckFailure);
  config = MigrationConfig{};
  config.max_rounds = 1;
  EXPECT_THROW(config.Validate(), CheckFailure);
}

// --- Degenerate-stats guards. ---

TEST(MigrationStatsMath, InstantMigrationReportsZeroThroughputNotNan) {
  // A migration where every page was skipped clean finishes in zero
  // simulated time with zero eligible payload — both derived quantities
  // must stay finite instead of dividing by zero.
  MigrationStats stats;
  EXPECT_EQ(stats.ThroughputBytesPerSecond(), 0.0);
  EXPECT_EQ(stats.CompressionRatio(), 1.0);

  // Bytes on the wire but no elapsed time still reports zero throughput.
  stats.tx_bytes = MiB(16);
  EXPECT_EQ(stats.ThroughputBytesPerSecond(), 0.0);

  // The ordinary case divides as expected once both operands are real.
  stats.total_time = Seconds(2.0);
  EXPECT_DOUBLE_EQ(stats.ThroughputBytesPerSecond(),
                   static_cast<double>(MiB(16).count) / 2.0);
  stats.payload_bytes_original = MiB(8);
  stats.payload_bytes_on_wire = MiB(2);
  EXPECT_DOUBLE_EQ(stats.CompressionRatio(), 0.25);
}

}  // namespace
}  // namespace vecycle::migration
