// Fingerprints, the §2.1 similarity metric, and trace serialization.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fingerprint/fingerprint.hpp"
#include "fingerprint/trace.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::fp {
namespace {

vm::GuestMemory ProfiledMemory(std::uint64_t seed) {
  vm::GuestMemory memory(MiB(4), vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(memory, rng);
  return memory;
}

// --- Capture. ---

TEST(Fingerprint, CaptureCoversEveryPage) {
  auto memory = ProfiledMemory(1);
  const auto print = Capture(memory, Hours(1));
  EXPECT_EQ(print.PageCount(), memory.PageCount());
  EXPECT_EQ(print.Timestamp(), Hours(1));
  for (vm::PageId p = 0; p < 32; ++p) {
    EXPECT_EQ(print.HashAt(p), memory.ContentHash64(p));
  }
}

TEST(Fingerprint, EmptyFingerprintThrows) {
  EXPECT_THROW(Fingerprint(kSimEpoch, {}), CheckFailure);
}

// --- Unique hashes / duplicates / zeros. ---

TEST(Fingerprint, UniqueHashesAreSortedAndDeduplicated) {
  Fingerprint print(kSimEpoch, {5, 3, 5, 1, 3, 3});
  const auto& unique = print.UniqueHashes();
  EXPECT_EQ(unique, (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST(Fingerprint, DuplicateFractionDefinition) {
  // §4.2: duplicate fraction = 1 - unique/total.
  Fingerprint print(kSimEpoch, {7, 7, 7, 8, 9, 9});
  EXPECT_DOUBLE_EQ(print.DuplicateFraction(), 1.0 - 3.0 / 6.0);
}

TEST(Fingerprint, AllDistinctHasNoDuplicates) {
  Fingerprint print(kSimEpoch, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(print.DuplicateFraction(), 0.0);
}

TEST(Fingerprint, ZeroFractionCountsZeroPages) {
  vm::GuestMemory memory(MiB(1), vm::ContentMode::kSeedOnly);
  // 256 pages, all zero initially; write 64 non-zero.
  for (vm::PageId p = 0; p < 64; ++p) memory.WritePage(p, p + 1);
  const auto print = Capture(memory, kSimEpoch);
  EXPECT_DOUBLE_EQ(print.ZeroFraction(), 192.0 / 256.0);
}

TEST(Fingerprint, ContainsUsesWholeFingerprint) {
  Fingerprint print(kSimEpoch, {10, 20, 30});
  EXPECT_TRUE(print.Contains(20));
  EXPECT_FALSE(print.Contains(25));
}

// --- Similarity. ---

TEST(Similarity, IdenticalFingerprintsScoreOne) {
  auto memory = ProfiledMemory(2);
  const auto a = Capture(memory, kSimEpoch);
  const auto b = Capture(memory, Minutes(30));
  EXPECT_DOUBLE_EQ(Similarity(a, b), 1.0);
}

TEST(Similarity, DisjointContentScoresZero) {
  Fingerprint a(kSimEpoch, {1, 2, 3});
  Fingerprint b(Minutes(30), {4, 5, 6});
  EXPECT_DOUBLE_EQ(Similarity(a, b), 0.0);
}

TEST(Similarity, MatchesSetDefinition) {
  // Ua = {1,2,3,4}, Ub = {3,4,5}; |Ua ∩ Ub| / |Ua| = 2/4.
  Fingerprint a(kSimEpoch, {1, 2, 3, 4});
  Fingerprint b(Minutes(30), {3, 4, 5, 5});
  EXPECT_DOUBLE_EQ(Similarity(a, b), 0.5);
  // Directionality: |Ua ∩ Ub| / |Ub| = 2/3.
  EXPECT_DOUBLE_EQ(Similarity(b, a), 2.0 / 3.0);
}

TEST(Similarity, UnaffectedByPagePositions) {
  // Content moved between frames leaves the unique set unchanged.
  Fingerprint a(kSimEpoch, {1, 2, 3, 4});
  Fingerprint b(Minutes(30), {4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(Similarity(a, b), 1.0);
}

TEST(Similarity, DecreasesWithChurn) {
  auto memory = ProfiledMemory(3);
  const auto before = Capture(memory, kSimEpoch);
  Xoshiro256 rng(99);
  // Rewrite half the pages with fresh content.
  for (vm::PageId p = 0; p < memory.PageCount() / 2; ++p) {
    memory.WritePage(p, rng.Next() | (1ull << 62));
  }
  const auto after = Capture(memory, Minutes(30));
  const double similarity = Similarity(before, after);
  EXPECT_GT(similarity, 0.35);
  EXPECT_LT(similarity, 0.65);
}

TEST(SharedUniqueHashes, CountsIntersection) {
  Fingerprint a(kSimEpoch, {1, 2, 3, 4, 4});
  Fingerprint b(Minutes(30), {2, 4, 6, 8});
  EXPECT_EQ(SharedUniqueHashes(a, b), 2u);
}

// --- Trace container. ---

TEST(Trace, AppendEnforcesMonotoneTimestamps) {
  Trace trace("machine");
  trace.Append(Fingerprint(Minutes(30), {1, 2}));
  EXPECT_THROW(trace.Append(Fingerprint(Minutes(30), {1, 2})),
               CheckFailure);
  EXPECT_THROW(trace.Append(Fingerprint(Minutes(10), {1, 2})),
               CheckFailure);
}

TEST(Trace, AppendEnforcesConsistentGeometry) {
  Trace trace("machine");
  trace.Append(Fingerprint(Minutes(30), {1, 2}));
  EXPECT_THROW(trace.Append(Fingerprint(Minutes(60), {1, 2, 3})),
               CheckFailure);
}

TEST(Trace, SpanIsLastMinusFirst) {
  Trace trace("machine");
  trace.Append(Fingerprint(Minutes(30), {1}));
  trace.Append(Fingerprint(Minutes(90), {2}));
  trace.Append(Fingerprint(Minutes(150), {3}));
  EXPECT_EQ(trace.Span(), Minutes(120));
}

TEST(Trace, StreamRoundTrip) {
  Trace trace("Server X");
  trace.Append(Fingerprint(Minutes(30), {1, 2, 3}));
  trace.Append(Fingerprint(Minutes(60), {4, 5, 6}));

  std::stringstream stream;
  trace.WriteTo(stream);
  const auto loaded = Trace::ReadFrom(stream);

  EXPECT_EQ(loaded.MachineName(), "Server X");
  ASSERT_EQ(loaded.Size(), 2u);
  EXPECT_EQ(loaded.At(0).PageHashes(), trace.At(0).PageHashes());
  EXPECT_EQ(loaded.At(1).Timestamp(), Minutes(60));
}

TEST(Trace, FileRoundTrip) {
  Trace trace("disk-machine");
  trace.Append(Fingerprint(Minutes(30), {9, 8, 7}));
  const auto path =
      (std::filesystem::temp_directory_path() / "vecycle_trace_test.bin")
          .string();
  trace.SaveFile(path);
  const auto loaded = Trace::LoadFile(path);
  EXPECT_EQ(loaded.MachineName(), "disk-machine");
  EXPECT_EQ(loaded.At(0).PageHashes(), trace.At(0).PageHashes());
  std::filesystem::remove(path);
}

TEST(Trace, ReadRejectsBadMagic) {
  std::stringstream stream;
  stream << "NOTATRACE........";
  EXPECT_THROW(Trace::ReadFrom(stream), CheckFailure);
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(Trace::LoadFile("/nonexistent/path/trace.bin"),
               CheckFailure);
}

}  // namespace
}  // namespace vecycle::fp
