// MigrationScheduler: admission control, priority and per-VM ordering,
// gang dedup across concurrently admitted sessions, conservation under
// link contention, and the serial-equivalence guarantee — a scheduler
// admitting one session at a time reproduces the synchronous engine's
// MigrationStats exactly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/replay.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "fault/fault.hpp"
#include "vm/workload.hpp"

namespace vecycle::core {
namespace {

migration::MigrationConfig VeCycleConfig() {
  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;
  return config;
}

migration::MigrationConfig FullConfig() {
  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kFull;
  return config;
}

std::unique_ptr<VmInstance> MakeVm(const std::string& id, Bytes ram,
                                   std::uint64_t seed) {
  auto vm = std::make_unique<VmInstance>(id, ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(vm->Memory(), rng);
  return vm;
}

/// Two hosts joined by a LAN link, as in core_test.
struct PairWorld {
  sim::Simulator simulator;
  Cluster cluster{simulator};

  PairWorld() {
    cluster.AddHost({"A", sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.AddHost({"B", sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.Connect("A", "B", sim::LinkConfig::Lan());
  }
};

/// Triangle of three hosts, every pair connected.
struct TriangleWorld {
  sim::Simulator simulator;
  Cluster cluster{simulator};

  TriangleWorld() {
    for (const char* id : {"A", "B", "C"}) {
      cluster.AddHost({id, sim::DiskConfig::Hdd(), {}, {}, {}});
    }
    cluster.Connect("A", "B", sim::LinkConfig::Lan());
    cluster.Connect("B", "C", sim::LinkConfig::Lan());
    cluster.Connect("A", "C", sim::LinkConfig::Lan());
  }
};

// --- Serial equivalence: the refactor's must-not-change guarantee. ---

TEST(SerialEquivalence, PingPongMatchesSynchronousEngine) {
  // Two independent, identically seeded worlds. One drives the old
  // synchronous facade; the other submits the same legs through the
  // scheduler with capacity one. Every field of every MigrationStats
  // must come out identical — timing, bytes, page classification.
  const auto drive_sync = [](std::vector<migration::MigrationStats>& out) {
    PairWorld world;
    MigrationOrchestrator orchestrator(world.cluster);
    auto vm = MakeVm("vm-1", MiB(32), 7);
    vm->SetWorkload(std::make_unique<vm::IdleWorkload>(
        vm::IdleWorkload::Config{.seed = 11}));
    orchestrator.Deploy(*vm, "A");
    orchestrator.RunFor(*vm, Minutes(10));
    out.push_back(orchestrator.Migrate(*vm, "B", VeCycleConfig()));
    orchestrator.RunFor(*vm, Hours(2));
    out.push_back(orchestrator.Migrate(*vm, "A", VeCycleConfig()));
  };
  const auto drive_scheduled =
      [](std::vector<migration::MigrationStats>& out) {
        PairWorld world;
        SchedulerConfig scheduler_config;
        scheduler_config.max_outgoing_per_host = 1;
        scheduler_config.max_incoming_per_host = 1;
        MigrationOrchestrator orchestrator(world.cluster, scheduler_config);
        auto vm = MakeVm("vm-1", MiB(32), 7);
        vm->SetWorkload(std::make_unique<vm::IdleWorkload>(
            vm::IdleWorkload::Config{.seed = 11}));
        orchestrator.Deploy(*vm, "A");
        orchestrator.RunFor(*vm, Minutes(10));
        orchestrator.MigrateAsync(*vm, "B", VeCycleConfig());
        ASSERT_EQ(orchestrator.Drain(), 1u);
        orchestrator.RunFor(*vm, Hours(2));
        orchestrator.MigrateAsync(*vm, "A", VeCycleConfig());
        ASSERT_EQ(orchestrator.Drain(), 1u);
        for (const auto& completion :
             orchestrator.Scheduler().Completions()) {
          out.push_back(completion.stats);
        }
      };

  std::vector<migration::MigrationStats> sync_stats;
  std::vector<migration::MigrationStats> scheduled_stats;
  drive_sync(sync_stats);
  drive_scheduled(scheduled_stats);

  ASSERT_EQ(sync_stats.size(), 2u);
  ASSERT_EQ(scheduled_stats.size(), 2u);
  EXPECT_EQ(sync_stats[0], scheduled_stats[0]);
  EXPECT_EQ(sync_stats[1], scheduled_stats[1]);
  // The return leg actually exercised the recycled checkpoint: most
  // pages travelled as checksum-only records.
  EXPECT_GT(scheduled_stats[1].pages_sent_checksum, 0u);
}

TEST(SerialEquivalence, BackToBackVmsMatchSynchronousEngine) {
  // Several VMs migrated one after another: the scheduler chains the
  // next admission off the previous completion at the exact sim time the
  // synchronous path would start it.
  constexpr int kVms = 3;
  std::vector<migration::MigrationStats> sync_stats;
  {
    PairWorld world;
    MigrationOrchestrator orchestrator(world.cluster);
    std::vector<std::unique_ptr<VmInstance>> vms;
    for (int i = 0; i < kVms; ++i) {
      vms.push_back(
          MakeVm("vm-" + std::to_string(i), MiB(16), 100 + i));
      orchestrator.Deploy(*vms.back(), "A");
    }
    for (auto& vm : vms) {
      sync_stats.push_back(orchestrator.Migrate(*vm, "B", FullConfig()));
    }
  }
  std::vector<migration::MigrationStats> scheduled_stats;
  {
    PairWorld world;
    SchedulerConfig scheduler_config;
    scheduler_config.max_outgoing_per_host = 1;
    scheduler_config.max_incoming_per_host = 1;
    MigrationScheduler scheduler(world.cluster, scheduler_config);
    std::vector<std::unique_ptr<VmInstance>> vms;
    for (int i = 0; i < kVms; ++i) {
      vms.push_back(
          MakeVm("vm-" + std::to_string(i), MiB(16), 100 + i));
      vms.back()->SetCurrentHost("A");
      scheduler.Submit(*vms.back(), "B", FullConfig());
    }
    ASSERT_EQ(scheduler.Drain(), static_cast<std::size_t>(kVms));
    for (const auto& completion : scheduler.Completions()) {
      scheduled_stats.push_back(completion.stats);
    }
  }
  ASSERT_EQ(scheduled_stats.size(), sync_stats.size());
  for (int i = 0; i < kVms; ++i) {
    EXPECT_EQ(sync_stats[static_cast<std::size_t>(i)],
              scheduled_stats[static_cast<std::size_t>(i)])
        << "vm " << i;
  }
}

// --- Determinism: per-host slot accounting is replay-ordered. ---

/// An 8-VM fleet drained through tight per-host admission caps, as a
/// ReplayCheck scenario. The slot accounting behind admission
/// (outgoing_/incoming_) is deliberately an ordered std::map keyed by
/// HostId: were it hash-ordered, admission sequence — and with it every
/// completion time below — could silently depend on bucket layout. The
/// fingerprint folds in each completion's id, timing and bytes, so any
/// admission reordering between the two runs diverges loudly.
std::uint64_t CappedFleetScenario(audit::SimAuditor& auditor) {
  TriangleWorld world;
  SchedulerConfig config;
  config.max_outgoing_per_host = 1;  // tight caps force the admission
  config.max_incoming_per_host = 1;  // loop through the per-host maps
  config.auditor = &auditor;
  MigrationScheduler scheduler(world.cluster, config);

  std::vector<std::unique_ptr<VmInstance>> vms;
  const char* placements[] = {"A", "A", "A", "B", "B", "B", "C", "C"};
  const char* destinations[] = {"B", "B", "C", "C", "C", "A", "A", "B"};
  for (int i = 0; i < 8; ++i) {
    vms.push_back(MakeVm("vm-" + std::to_string(i), MiB(8), 200 + i));
    vms.back()->SetCurrentHost(placements[i]);
    scheduler.Submit(*vms.back(), destinations[i], FullConfig());
  }
  scheduler.Drain();

  std::uint64_t fp = 0;
  for (const auto& completion : scheduler.Completions()) {
    fp = fp * 1099511628211ull ^ completion.id;
    fp = fp * 1099511628211ull ^
         static_cast<std::uint64_t>(completion.completed_at.count());
    fp = fp * 1099511628211ull ^ completion.stats.tx_bytes.count;
  }
  return fp;
}

TEST(SchedulerDeterminism, CappedFleetReplaysBitForBit) {
  EXPECT_NO_THROW(audit::ReplayCheck::Verify(
      [](audit::SimAuditor& auditor) { return CappedFleetScenario(auditor); }));
}

// --- Overlap, contention, conservation. ---

TEST(Scheduler, ConcurrentSessionsConserveWireBytes) {
  // 8 VMs across a triangle of hosts migrate concurrently under one
  // shared auditor. Channel ids derive from session ids, so each
  // session's forward-channel byte account must equal the tx_bytes its
  // own stats report — contention may reorder and delay batches, but
  // bytes can neither leak between sessions nor vanish.
  TriangleWorld world;
  audit::SimAuditor auditor;
  SchedulerConfig config;
  config.max_outgoing_per_host = 0;  // unlimited: force full overlap
  config.max_incoming_per_host = 0;
  config.auditor = &auditor;
  MigrationScheduler scheduler(world.cluster, config);

  std::vector<std::unique_ptr<VmInstance>> vms;
  const char* placements[] = {"A", "A", "A", "B", "B", "B", "C", "C"};
  const char* destinations[] = {"B", "B", "C", "C", "C", "A", "A", "B"};
  std::vector<SessionId> sessions;
  for (int i = 0; i < 8; ++i) {
    vms.push_back(MakeVm("vm-" + std::to_string(i), MiB(8), 200 + i));
    vms.back()->SetCurrentHost(placements[i]);
    sessions.push_back(
        scheduler.Submit(*vms.back(), destinations[i], FullConfig()));
  }
  EXPECT_EQ(scheduler.QueuedCount(), 8u);
  ASSERT_EQ(scheduler.Drain(), 8u);
  EXPECT_EQ(scheduler.QueuedCount(), 0u);
  EXPECT_EQ(scheduler.RunningCount(), 0u);

  for (int i = 0; i < 8; ++i) {
    const auto* completion = scheduler.FindCompletion(sessions[i]);
    ASSERT_NE(completion, nullptr) << i;
    EXPECT_EQ(completion->to, destinations[i]) << i;
    EXPECT_EQ(vms[i]->CurrentHost(), destinations[i]) << i;
    const auto channel =
        static_cast<std::uint32_t>(2 * completion->id);
    EXPECT_EQ(completion->stats.tx_bytes, auditor.ChannelBytes(channel))
        << "session " << completion->id;
  }
}

TEST(Scheduler, GangDedupSharesContentAcrossConcurrentSessions) {
  // Four VMs stamped from one "image" (75% shared pool) leave host A for
  // host B at the same moment. With gang dedup the pool crosses the wire
  // once; with it disabled every VM ships its own copy.
  const auto total_wire_bytes = [](bool gang_dedup) {
    PairWorld world;
    SchedulerConfig config;
    config.max_outgoing_per_host = 0;
    config.max_incoming_per_host = 0;
    config.gang_dedup = gang_dedup;
    MigrationScheduler scheduler(world.cluster, config);

    std::vector<std::unique_ptr<VmInstance>> vms;
    for (int i = 0; i < 4; ++i) {
      auto vm = std::make_unique<VmInstance>("vm-" + std::to_string(i),
                                             MiB(8),
                                             vm::ContentMode::kSeedOnly);
      Xoshiro256 pool_rng(0x05);  // one pool, every VM
      Xoshiro256 own_rng(300 + static_cast<std::uint64_t>(i));
      for (vm::PageId p = 0; p < vm->Memory().PageCount(); ++p) {
        if (p % 4 != 0) {
          vm->Memory().WritePage(p,
                                 1'000'000 + pool_rng.NextBelow(100'000));
        } else {
          vm->Memory().WritePage(p, own_rng.Next() | (1ull << 62));
        }
      }
      vm->SetCurrentHost("A");
      migration::MigrationConfig migration_config;
      migration_config.strategy = migration::Strategy::kDedup;
      scheduler.Submit(*vm, "B", migration_config);
      vms.push_back(std::move(vm));
    }
    EXPECT_EQ(scheduler.Drain(), 4u);
    Bytes total;
    for (const auto& completion : scheduler.Completions()) {
      total += completion.stats.tx_bytes;
    }
    return total;
  };

  const Bytes separate = total_wire_bytes(false);
  const Bytes gang = total_wire_bytes(true);
  EXPECT_LT(gang.count, separate.count * 9 / 10);
}

// --- Admission control. ---

TEST(Scheduler, OutgoingCapSerializesAndLiftsContention) {
  // Two equal VMs on one link: with capacity one each session has the
  // link to itself (per-migration time near solo); with capacity two
  // they overlap and share it (times grow well past solo).
  const auto migration_seconds = [](std::size_t cap) {
    PairWorld world;
    SchedulerConfig config;
    config.max_outgoing_per_host = cap;
    config.max_incoming_per_host = 0;
    MigrationScheduler scheduler(world.cluster, config);
    std::vector<std::unique_ptr<VmInstance>> vms;
    for (int i = 0; i < 2; ++i) {
      vms.push_back(MakeVm("vm-" + std::to_string(i), MiB(32), 400 + i));
      vms.back()->SetCurrentHost("A");
      scheduler.Submit(*vms.back(), "B", FullConfig());
    }
    EXPECT_EQ(scheduler.Drain(), 2u);
    std::vector<double> seconds;
    for (const auto& completion : scheduler.Completions()) {
      seconds.push_back(ToSeconds(completion.stats.total_time));
    }
    return seconds;
  };

  const auto serial = migration_seconds(1);
  const auto overlapped = migration_seconds(2);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(overlapped.size(), 2u);
  // Serialized sessions run at full link speed; overlapped ones share.
  EXPECT_GT(overlapped[0], 1.5 * serial[0]);
  EXPECT_GT(overlapped[1], 1.5 * serial[1]);
}

TEST(Scheduler, PriorityOrdersAdmissionAcrossVms) {
  PairWorld world;
  SchedulerConfig config;
  config.max_outgoing_per_host = 1;
  config.max_incoming_per_host = 1;
  MigrationScheduler scheduler(world.cluster, config);

  std::vector<std::unique_ptr<VmInstance>> vms;
  const int priorities[] = {0, 5, 1};
  std::vector<SessionId> sessions;
  for (int i = 0; i < 3; ++i) {
    vms.push_back(MakeVm("vm-" + std::to_string(i), MiB(8), 500 + i));
    vms.back()->SetCurrentHost("A");
    sessions.push_back(
        scheduler.Submit(*vms.back(), "B", FullConfig(), priorities[i]));
  }
  ASSERT_EQ(scheduler.Drain(), 3u);
  const auto& completions = scheduler.Completions();
  // Highest priority first, then the rest by descending priority.
  EXPECT_EQ(completions[0].id, sessions[1]);
  EXPECT_EQ(completions[1].id, sessions[2]);
  EXPECT_EQ(completions[2].id, sessions[0]);
}

TEST(Scheduler, PerVmLegsRunInSubmissionOrderRegardlessOfPriority) {
  TriangleWorld world;
  SchedulerConfig config;
  MigrationScheduler scheduler(world.cluster, config);
  auto vm = MakeVm("traveller", MiB(8), 600);
  vm->SetCurrentHost("A");
  // The second leg outranks the first, but it needs the VM on B, so it
  // must wait: per-VM FIFO wins over priority.
  const auto leg1 = scheduler.Submit(*vm, "B", FullConfig(), 0);
  const auto leg2 = scheduler.Submit(*vm, "C", FullConfig(), 10);
  ASSERT_EQ(scheduler.Drain(), 2u);
  const auto& completions = scheduler.Completions();
  EXPECT_EQ(completions[0].id, leg1);
  EXPECT_EQ(completions[0].from, "A");
  EXPECT_EQ(completions[0].to, "B");
  EXPECT_EQ(completions[1].id, leg2);
  EXPECT_EQ(completions[1].from, "B");
  EXPECT_EQ(completions[1].to, "C");
  EXPECT_EQ(vm->CurrentHost(), "C");
}

TEST(Scheduler, CompletionCallbackCanChainFollowOnLegs) {
  TriangleWorld world;
  MigrationScheduler scheduler(world.cluster);
  auto vm = MakeVm("hopper", MiB(8), 700);
  vm->SetCurrentHost("A");
  SessionId second_leg = 0;
  scheduler.Submit(*vm, "B", FullConfig(), 0,
                   [&](const MigrationScheduler::Completion& completion) {
                     EXPECT_EQ(completion.to, "B");
                     EXPECT_GT(completion.stats.rounds, 0u);
                     second_leg =
                         scheduler.Submit(*completion.vm, "C", FullConfig());
                   });
  ASSERT_EQ(scheduler.Drain(), 2u);
  EXPECT_NE(second_leg, 0u);
  EXPECT_EQ(vm->CurrentHost(), "C");
  const auto* completion = scheduler.FindCompletion(second_leg);
  ASSERT_NE(completion, nullptr);
  EXPECT_EQ(completion->from, "B");
}

TEST(Scheduler, SubmitRejectsUndeployedVmAndUnknownHost) {
  PairWorld world;
  MigrationScheduler scheduler(world.cluster);
  auto vm = MakeVm("vm-1", MiB(8), 800);
  EXPECT_THROW(scheduler.Submit(*vm, "B", FullConfig()), CheckFailure);
  vm->SetCurrentHost("A");
  EXPECT_THROW(scheduler.Submit(*vm, "Z", FullConfig()), CheckFailure);
}

TEST(Scheduler, MigrationToCurrentHostFailsAtAdmission) {
  PairWorld world;
  MigrationScheduler scheduler(world.cluster);
  auto vm = MakeVm("vm-1", MiB(8), 900);
  vm->SetCurrentHost("A");
  scheduler.Submit(*vm, "A", FullConfig());
  EXPECT_THROW(scheduler.Drain(), CheckFailure);
}

// --- The issue's fleet acceptance scenario. ---

TEST(FleetAcceptance, EightConcurrentVmsAcrossThreeHostsUnderAudit) {
  TriangleWorld world;
  SchedulerConfig config;
  config.max_outgoing_per_host = 0;
  config.max_incoming_per_host = 0;
  MigrationScheduler scheduler(world.cluster, config);

  auto migration_config = VeCycleConfig();
  migration_config.audit = true;  // per-session auditors, full checks

  std::vector<std::unique_ptr<VmInstance>> vms;
  const char* placements[] = {"A", "A", "A", "B", "B", "C", "C", "C"};
  const char* destinations[] = {"B", "C", "B", "A", "C", "A", "B", "A"};
  for (int i = 0; i < 8; ++i) {
    vms.push_back(MakeVm("fleet-" + std::to_string(i), MiB(8), 1000 + i));
    vms.back()->SetCurrentHost(placements[i]);
    scheduler.Submit(*vms.back(), destinations[i], migration_config);
  }
  // Everything is admissible at once: the drain starts 8 overlapping
  // sessions and completes them all with per-session audits green.
  ASSERT_EQ(scheduler.Drain(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(vms[i]->CurrentHost(), destinations[i]) << i;
    // The source wrote the departed VM's checkpoint back to local disk.
    EXPECT_TRUE(world.cluster.GetHost(placements[i])
                    .Store()
                    .Has(vms[i]->Id()))
        << i;
  }
  EXPECT_EQ(scheduler.Completions().size(), 8u);
}

// --- Fault retries: failure requeues at the front; per-VM FIFO holds. -

TEST(SchedulerFaults, FailedLegRetriesWithoutOvertakingItsSuccessor) {
  TriangleWorld world;
  fault::FaultConfig fault_config;
  fault_config.enabled = true;
  fault_config.seed = 13;
  fault_config.link_outages_per_hour = 6.0;
  fault_config.link_outage_mean = Seconds(2.0);
  fault_config.horizon = Hours(4.0);
  fault::FaultInjector injector(fault_config);
  ASSERT_FALSE(injector.LinkOutages().empty());
  const auto window = injector.LinkOutages().front();

  SchedulerConfig config;
  config.injector = &injector;
  config.max_attempts = 10;
  MigrationOrchestrator orchestrator(world.cluster, config);
  auto traveller = MakeVm("vm-1", MiB(16), 5);
  auto rival = MakeVm("vm-2", MiB(16), 6);
  orchestrator.Deploy(*traveller, "A");
  orchestrator.Deploy(*rival, "A");
  // Park the fleet just before the first outage so the initial attempts
  // stream into the window and get cut.
  orchestrator.RunFor({traveller.get(), rival.get()},
                      (window.start - kSimEpoch) - Milliseconds(1.0));

  // Both legs of vm-1's journey up front, then a high-priority rival:
  // the retry must neither let leg 2 overtake leg 1 nor starve behind
  // the rival forever.
  orchestrator.MigrateAsync(*traveller, "B", VeCycleConfig());
  orchestrator.MigrateAsync(*traveller, "C", VeCycleConfig());
  orchestrator.MigrateAsync(*rival, "C", VeCycleConfig(), /*priority=*/100);
  EXPECT_EQ(orchestrator.Drain(), 3u);

  auto& scheduler = orchestrator.Scheduler();
  EXPECT_GE(scheduler.Retries(), 1u);
  EXPECT_TRUE(scheduler.Aborts().empty());
  EXPECT_EQ(traveller->CurrentHost(), "C");
  EXPECT_EQ(rival->CurrentHost(), "C");
  // vm-1's legs completed in submission order despite the retry loop.
  std::vector<HostId> traveller_destinations;
  for (const auto& completion : scheduler.Completions()) {
    if (completion.vm == traveller.get()) {
      traveller_destinations.push_back(completion.to);
    }
  }
  ASSERT_EQ(traveller_destinations.size(), 2u);
  EXPECT_EQ(traveller_destinations[0], "B");
  EXPECT_EQ(traveller_destinations[1], "C");
}

}  // namespace
}  // namespace vecycle::core
