// Fault injection and recovery: the vecycle::fault schedule must be a
// deterministic function of its seed, devices must honour the plan the
// way they honour an auditor (one pointer test when detached), and the
// recovery paths must hold — corrupted recycled checkpoints degrade to
// per-page resends instead of aborting, link outages abort the session
// and the scheduler retries with backoff, and a torn-down session never
// fires events into freed actors.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "audit/replay.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "fault/fault.hpp"
#include "migration/engine.hpp"
#include "storage/checkpoint.hpp"
#include "vm/workload.hpp"

namespace vecycle {
namespace {

using migration::MigrationConfig;
using migration::MigrationRun;
using migration::MigrationSession;
using migration::RunMigration;
using migration::Strategy;

struct TestBed {
  sim::Simulator simulator;
  sim::Link link{sim::LinkConfig::Lan()};
  sim::ChecksumEngine src_cpu{sim::ChecksumEngineConfig{}};
  sim::ChecksumEngine dst_cpu{sim::ChecksumEngineConfig{}};
  sim::Disk src_disk{sim::DiskConfig::Hdd()};
  sim::Disk dst_disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore src_store{src_disk};
  storage::CheckpointStore dst_store{dst_disk};

  MigrationRun MakeRun(vm::GuestMemory& memory, MigrationConfig config) {
    MigrationRun run;
    run.simulator = &simulator;
    run.link = &link;
    run.direction = sim::Direction::kAtoB;
    run.source_memory = &memory;
    run.source = {&src_cpu, &src_store};
    run.destination = {&dst_cpu, &dst_store};
    run.vm_id = "vm";
    run.config = config;
    return run;
  }
};

vm::GuestMemory RandomMemory(Bytes ram, std::uint64_t seed) {
  vm::GuestMemory memory(ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(memory, rng);
  return memory;
}

std::vector<Digest128> DigestsOf(const vm::GuestMemory& memory) {
  std::vector<Digest128> digests;
  for (vm::PageId p = 0; p < memory.PageCount(); ++p) {
    digests.push_back(memory.PageDigest(p));
  }
  return digests;
}

std::unique_ptr<core::VmInstance> MakeVm(const std::string& id, Bytes ram,
                                         std::uint64_t seed) {
  auto vm =
      std::make_unique<core::VmInstance>(id, ram, vm::ContentMode::kSeedOnly);
  Xoshiro256 rng(seed);
  vm::MemoryProfile{}.Apply(vm->Memory(), rng);
  return vm;
}

/// Two hosts joined by a LAN link, as in scheduler_test.
struct PairWorld {
  sim::Simulator simulator;
  core::Cluster cluster{simulator};

  PairWorld() {
    cluster.AddHost({"A", sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.AddHost({"B", sim::DiskConfig::Hdd(), {}, {}, {}});
    cluster.Connect("A", "B", sim::LinkConfig::Lan());
  }
};

/// Restores VECYCLE_FAULTS on scope exit so one test cannot leak fault
/// injection into the rest of the suite.
struct ScopedFaultsEnv {
  explicit ScopedFaultsEnv(const char* spec) {
    ::setenv("VECYCLE_FAULTS", spec, 1);
  }
  ~ScopedFaultsEnv() { ::unsetenv("VECYCLE_FAULTS"); }
};

// --- FaultConfig: validation and spec parsing. ------------------------

TEST(FaultConfigTest, ValidateRejectsOutOfRangeValues) {
  const fault::FaultConfig valid;
  valid.Validate();  // defaults must pass

  auto broken = valid;
  broken.link_outages_per_hour = -1.0;
  EXPECT_THROW(broken.Validate(), CheckFailure);

  broken = valid;
  broken.link_outage_mean = SimDuration::zero();
  EXPECT_THROW(broken.Validate(), CheckFailure);

  broken = valid;
  broken.link_degradation_factor = 0.0;
  EXPECT_THROW(broken.Validate(), CheckFailure);

  broken = valid;
  broken.corrupt_probability = 1.5;
  EXPECT_THROW(broken.Validate(), CheckFailure);

  broken = valid;
  broken.corrupt_pages = 0;
  EXPECT_THROW(broken.Validate(), CheckFailure);

  broken = valid;
  broken.truncate_fraction = 0.0;
  EXPECT_THROW(broken.Validate(), CheckFailure);

  broken = valid;
  broken.horizon = SimDuration::zero();
  EXPECT_THROW(broken.Validate(), CheckFailure);
}

TEST(FaultConfigTest, FromSpecParsesEveryKey) {
  const auto config = fault::FaultConfig::FromSpec(
      "seed=42,link_outages_per_hour=3,link_outage_ms=1500,"
      "link_degradations_per_hour=2,link_degradation_ms=250,"
      "link_degradation_factor=0.5,disk_errors_per_hour=6,"
      "disk_error_ms=20,corrupt_prob=0.25,corrupt_pages=16,"
      "truncate_prob=0.5,truncate_fraction=0.5,horizon_hours=1");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.link_outages_per_hour, 3.0);
  EXPECT_EQ(config.link_outage_mean, Milliseconds(1500.0));
  EXPECT_DOUBLE_EQ(config.link_degradations_per_hour, 2.0);
  EXPECT_EQ(config.link_degradation_mean, Milliseconds(250.0));
  EXPECT_DOUBLE_EQ(config.link_degradation_factor, 0.5);
  EXPECT_DOUBLE_EQ(config.disk_errors_per_hour, 6.0);
  EXPECT_EQ(config.disk_error_mean, Milliseconds(20.0));
  EXPECT_DOUBLE_EQ(config.corrupt_probability, 0.25);
  EXPECT_EQ(config.corrupt_pages, 16u);
  EXPECT_DOUBLE_EQ(config.truncate_probability, 0.5);
  EXPECT_DOUBLE_EQ(config.truncate_fraction, 0.5);
  EXPECT_EQ(config.horizon, Hours(1.0));
}

TEST(FaultConfigTest, FromSpecBareTruthySelectsDefaultPlan) {
  for (const char* word : {"1", "on", "true", "yes", "TRUE"}) {
    const auto config = fault::FaultConfig::FromSpec(word);
    EXPECT_TRUE(config.enabled) << word;
    EXPECT_GT(config.link_outages_per_hour, 0.0) << word;
    EXPECT_GT(config.corrupt_probability, 0.0) << word;
  }
}

TEST(FaultConfigTest, FromSpecRejectsUnknownKeysAndGarbage) {
  EXPECT_THROW(fault::FaultConfig::FromSpec("frobnicate=1"), CheckFailure);
  EXPECT_THROW(fault::FaultConfig::FromSpec("corrupt_prob=banana"),
               CheckFailure);
  EXPECT_THROW(fault::FaultConfig::FromSpec("corrupt_prob"), CheckFailure);
  // Well-formed but out of range: FromSpec validates before returning.
  EXPECT_THROW(fault::FaultConfig::FromSpec("corrupt_prob=2"), CheckFailure);
}

TEST(FaultConfigTest, FromEnvDisabledWhenUnset) {
  ::unsetenv("VECYCLE_FAULTS");
  EXPECT_FALSE(fault::EnvEnabled());
  EXPECT_FALSE(fault::FaultConfig::FromEnv().enabled);

  ScopedFaultsEnv env("corrupt_prob=1");
  EXPECT_TRUE(fault::EnvEnabled());
  EXPECT_TRUE(fault::FaultConfig::FromEnv().enabled);
}

// --- FaultInjector: the plan is a pure function of the seed. ----------

fault::FaultConfig MixedPlan(std::uint64_t seed) {
  fault::FaultConfig config;
  config.enabled = true;
  config.seed = seed;
  config.link_outages_per_hour = 4.0;
  config.link_degradations_per_hour = 2.0;
  config.disk_errors_per_hour = 12.0;
  config.corrupt_probability = 1.0;
  config.horizon = Hours(48.0);
  return config;
}

void ExpectSameWindows(const std::vector<fault::FaultWindow>& a,
                       const std::vector<fault::FaultWindow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(FaultInjectorTest, SameSeedReproducesTheExactPlan) {
  fault::FaultInjector a(MixedPlan(7));
  fault::FaultInjector b(MixedPlan(7));
  ASSERT_FALSE(a.LinkOutages().empty());
  ASSERT_FALSE(a.LinkDegradations().empty());
  ASSERT_FALSE(a.DiskErrorWindows().empty());
  ExpectSameWindows(a.LinkOutages(), b.LinkOutages());
  ExpectSameWindows(a.LinkDegradations(), b.LinkDegradations());
  ExpectSameWindows(a.DiskErrorWindows(), b.DiskErrorWindows());

  // Per-checkpoint damage is keyed on (seed, vm, save ordinal).
  const auto plan_a = a.DecideCorruption("vm-1", 2048);
  const auto plan_b = b.DecideCorruption("vm-1", 2048);
  ASSERT_FALSE(plan_a.rotted.empty());
  EXPECT_EQ(plan_a.rotted, plan_b.rotted);
  EXPECT_EQ(plan_a.truncate_from, plan_b.truncate_from);

  // The next save of the same VM draws a fresh decision stream.
  const auto plan_a2 = a.DecideCorruption("vm-1", 2048);
  EXPECT_NE(plan_a.rotted, plan_a2.rotted);
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentPlans) {
  fault::FaultInjector a(MixedPlan(7));
  fault::FaultInjector c(MixedPlan(8));
  ASSERT_FALSE(a.LinkOutages().empty());
  ASSERT_FALSE(c.LinkOutages().empty());
  EXPECT_NE(a.LinkOutages().front().start, c.LinkOutages().front().start);
}

TEST(FaultInjectorTest, WindowsAreSortedAndDisjoint) {
  fault::FaultInjector injector(MixedPlan(19));
  for (const auto* windows :
       {&injector.LinkOutages(), &injector.LinkDegradations(),
        &injector.DiskErrorWindows()}) {
    for (std::size_t i = 0; i < windows->size(); ++i) {
      EXPECT_LT((*windows)[i].start, (*windows)[i].end);
      if (i > 0) {
        EXPECT_GT((*windows)[i].start, (*windows)[i - 1].end);
      }
    }
  }
}

TEST(FaultInjectorTest, LinkCutHitsExactlyTheOutageWindows) {
  fault::FaultInjector injector(MixedPlan(3));
  ASSERT_FALSE(injector.LinkOutages().empty());
  const auto window = injector.LinkOutages().front();
  // A booking strictly before the first window is clean; one overlapping
  // it is cut; the counters record only the cut.
  EXPECT_FALSE(injector.LinkCut(kSimEpoch, kSimEpoch + Milliseconds(1.0)));
  EXPECT_EQ(injector.Stats().link_cuts, 0u);
  EXPECT_TRUE(injector.LinkCut(window.start, window.start + Milliseconds(1.0)));
  EXPECT_EQ(injector.Stats().link_cuts, 1u);
  // Closed-open: a booking ending exactly at the window start is clean.
  EXPECT_FALSE(injector.LinkCut(kSimEpoch, window.start));
}

// --- Device integration: disk scans retry past error windows. ---------

TEST(FaultInjectorTest, CheckpointScanRetriesPastDiskErrorWindow) {
  fault::FaultConfig config;
  config.enabled = true;
  config.seed = 11;
  config.disk_errors_per_hour = 60.0;
  config.disk_error_mean = Milliseconds(50.0);
  fault::FaultInjector injector(config);
  ASSERT_FALSE(injector.DiskErrorWindows().empty());
  const auto window = injector.DiskErrorWindows().front();

  sim::Disk disk{sim::DiskConfig::Hdd()};
  storage::CheckpointStore store(disk);
  auto memory = RandomMemory(MiB(8), 17);
  store.Save("vm", storage::Checkpoint::CaptureFrom(memory), kSimEpoch);

  disk.SetFaultInjector(&injector);
  store.SetFaultInjector(&injector);
  // A scan booked into the error window fails and restarts past its end.
  const auto load = store.Load("vm", window.start);
  EXPECT_GE(load.read_retries, 1u);
  EXPECT_GE(load.ready_at, window.end);
  EXPECT_GE(disk.ReadErrors(), 1u);
  EXPECT_GE(injector.Stats().disk_read_errors, 1u);
}

// --- Recovery: corrupted recycled checkpoints degrade per page. -------

migration::MigrationStats RunRecycledMigration(bool rot,
                                               double corrupt_probability,
                                               double truncate_probability) {
  audit::SimAuditor auditor;  // conservation checks stay armed throughout
  TestBed bed;
  bed.simulator.SetAuditor(&auditor);
  auto memory = RandomMemory(MiB(8), 21);

  fault::FaultConfig config;
  config.enabled = true;
  config.seed = 5;
  config.corrupt_probability = corrupt_probability;
  config.corrupt_pages = 64;
  config.truncate_probability = truncate_probability;
  fault::FaultInjector injector(config);
  if (rot) bed.dst_store.SetFaultInjector(&injector);
  bed.dst_store.Save("vm", storage::Checkpoint::CaptureFrom(memory),
                     kSimEpoch);
  bed.dst_store.SetFaultInjector(nullptr);
  EXPECT_EQ(rot, bed.dst_store.WasCorrupted("vm"));

  const auto knowledge = DigestsOf(memory);
  vm::UniformRandomWorkload churn(50.0, 31);
  churn.Advance(memory, Seconds(5.0));

  MigrationConfig migration_config;
  migration_config.strategy = Strategy::kHashes;
  auto run = bed.MakeRun(memory, migration_config);
  run.auditor = &auditor;
  run.source_knowledge = knowledge;
  auto outcome = RunMigration(std::move(run));
  // The acceptance bar: the reconstructed memory is bit-identical to the
  // fault-free run's (both must equal the live source).
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
  bed.simulator.SetAuditor(nullptr);
  return outcome.stats;
}

TEST(FaultRecovery, CorruptedCheckpointFallsBackPerPage) {
  const auto rotted = RunRecycledMigration(true, 1.0, 0.0);
  const auto clean = RunRecycledMigration(false, 0.0, 0.0);

  EXPECT_GT(rotted.fallback_pages, 0u);
  EXPECT_EQ(clean.fallback_pages, 0u);
  // Recycling still happened: checksum records, not a cold full copy.
  EXPECT_GT(rotted.pages_sent_checksum, 0u);
  // Page conservation with the fallback term.
  EXPECT_EQ(rotted.pages_matched_in_place + rotted.pages_from_checkpoint +
                rotted.fallback_pages,
            rotted.pages_sent_checksum);
  // The resends are pure extra traffic relative to the clean run.
  EXPECT_GT(rotted.tx_bytes.count, clean.tx_bytes.count);
}

TEST(FaultRecovery, TruncatedCheckpointFallsBackPerPage) {
  const auto truncated = RunRecycledMigration(true, 0.0, 1.0);
  EXPECT_GT(truncated.fallback_pages, 0u);
  EXPECT_EQ(truncated.pages_matched_in_place +
                truncated.pages_from_checkpoint + truncated.fallback_pages,
            truncated.pages_sent_checksum);
}

// --- Recovery: degradation slows, outage aborts. ----------------------

TEST(FaultRecovery, LinkDegradationStretchesTheMigration) {
  const auto run_once = [](bool degraded) {
    TestBed bed;
    auto memory = RandomMemory(MiB(32), 44);
    MigrationConfig config;
    config.strategy = Strategy::kFull;
    if (degraded) {
      // Degradation windows that merge into (almost) always-on.
      config.faults.enabled = true;
      config.faults.seed = 12;
      config.faults.link_degradations_per_hour = 36000.0;
      config.faults.link_degradation_mean = Hours(1.0);
      config.faults.link_degradation_factor = 0.25;
      config.faults.horizon = Hours(2.0);
    }
    return RunMigration(bed.MakeRun(memory, config)).stats.total_time;
  };
  const auto degraded = run_once(true);
  const auto clean = run_once(false);
  EXPECT_GT(degraded, clean);
}

TEST(FaultRecovery, LinkOutageAbortsTheSessionWithoutAnOutcome) {
  TestBed bed;
  auto memory = RandomMemory(MiB(8), 55);
  MigrationConfig config;
  config.strategy = Strategy::kFull;
  config.faults.enabled = true;
  config.faults.seed = 2;
  config.faults.link_outages_per_hour = 360000.0;
  config.faults.link_outage_mean = Hours(1.0);
  config.faults.horizon = Hours(2.0);

  bool failed_at_seen = false;
  auto run = bed.MakeRun(memory, config);
  run.on_failed = [&](SimTime) { failed_at_seen = true; };
  MigrationSession session(std::move(run));
  bed.simulator.Run();

  EXPECT_TRUE(session.Failed());
  EXPECT_TRUE(failed_at_seen);
  EXPECT_THROW(session.TakeOutcome(), migration::MigrationFailed);
}

// --- Recovery: a torn-down session leaves no dangling events. ---------

TEST(FaultRecovery, DestroyedSessionLeavesNoDanglingEvents) {
  TestBed bed;
  auto memory = RandomMemory(MiB(4), 66);
  MigrationConfig config;
  config.strategy = Strategy::kHashes;
  {
    MigrationSession doomed(bed.MakeRun(memory, config));
    // Let it get partway through its protocol, then destroy it with its
    // remaining events still queued.
    bed.simulator.RunUntil(kSimEpoch + Milliseconds(5.0));
  }
  // The leftover events must drain without touching the freed actors.
  bed.simulator.Run();

  // And the world is still usable: a fresh migration on the same bed.
  auto outcome = RunMigration(bed.MakeRun(memory, config));
  EXPECT_TRUE(outcome.dest_memory->ContentEquals(memory));
}

// --- Determinism: a faulted run replays bit-identically. --------------

TEST(FaultRecovery, FaultedMigrationReplaysDeterministically) {
  audit::ReplayCheck::Verify([](audit::SimAuditor& auditor) -> std::uint64_t {
    TestBed bed;
    bed.simulator.SetAuditor(&auditor);
    auto memory = RandomMemory(MiB(4), 33);
    MigrationConfig config;
    config.strategy = Strategy::kHashesPlusDedup;
    config.faults.enabled = true;
    config.faults.seed = 3;
    config.faults.link_degradations_per_hour = 120.0;
    config.faults.link_degradation_mean = Seconds(10.0);
    config.faults.disk_errors_per_hour = 30.0;
    config.faults.corrupt_probability = 1.0;
    config.faults.horizon = Hours(2.0);
    auto run = bed.MakeRun(memory, config);
    run.auditor = &auditor;
    auto outcome = RunMigration(std::move(run));
    bed.simulator.SetAuditor(nullptr);
    return static_cast<std::uint64_t>(outcome.stats.tx_bytes.count) ^
           (outcome.stats.fallback_pages << 32);
  });
}

// --- Scheduler: retry with backoff, attempt cap, abort reporting. -----

migration::MigrationConfig HashesConfig() {
  migration::MigrationConfig config;
  config.strategy = migration::Strategy::kHashes;
  return config;
}

TEST(FaultRecovery, SchedulerRetriesAfterOutageAndSucceeds) {
  PairWorld world;
  fault::FaultConfig fault_config;
  fault_config.enabled = true;
  fault_config.seed = 13;
  fault_config.link_outages_per_hour = 6.0;
  fault_config.link_outage_mean = Seconds(2.0);
  fault_config.horizon = Hours(4.0);
  fault::FaultInjector injector(fault_config);
  ASSERT_FALSE(injector.LinkOutages().empty());
  const auto window = injector.LinkOutages().front();

  core::SchedulerConfig scheduler_config;
  scheduler_config.injector = &injector;
  scheduler_config.max_attempts = 10;
  core::MigrationOrchestrator orchestrator(world.cluster, scheduler_config);
  auto vm = MakeVm("vm-1", MiB(16), 5);
  orchestrator.Deploy(*vm, "A");
  // Park the fleet just before the first outage so the attempt starts,
  // streams into the window, and is cut.
  orchestrator.RunFor(*vm, (window.start - kSimEpoch) - Milliseconds(1.0));
  orchestrator.MigrateAsync(*vm, "B", HashesConfig());
  ASSERT_EQ(orchestrator.Drain(), 1u);

  auto& scheduler = orchestrator.Scheduler();
  EXPECT_GE(scheduler.Retries(), 1u);
  EXPECT_TRUE(scheduler.Aborts().empty());
  ASSERT_EQ(scheduler.Completions().size(), 1u);
  const auto& done = scheduler.Completions().front();
  EXPECT_EQ(done.stats.retries, scheduler.Retries());
  // The retry could not have been admitted before failure + backoff, and
  // the failure happened inside the outage window.
  EXPECT_GT(done.completed_at,
            window.start + scheduler_config.retry_backoff);
  EXPECT_EQ(vm->CurrentHost(), "B");
}

/// An outage plan that merges into one wall: every attempt is cut.
fault::FaultConfig AlwaysDown(std::uint64_t seed) {
  fault::FaultConfig config;
  config.enabled = true;
  config.seed = seed;
  config.link_outages_per_hour = 360000.0;
  config.link_outage_mean = Hours(1.0);
  config.horizon = Hours(8.0);
  return config;
}

TEST(FaultRecovery, AttemptCapThrowsTypedAbortByDefault) {
  PairWorld world;
  fault::FaultInjector injector(AlwaysDown(2));
  core::SchedulerConfig scheduler_config;
  scheduler_config.injector = &injector;
  scheduler_config.max_attempts = 3;
  core::MigrationOrchestrator orchestrator(world.cluster, scheduler_config);
  auto vm = MakeVm("vm-1", MiB(8), 6);
  orchestrator.Deploy(*vm, "A");
  orchestrator.MigrateAsync(*vm, "B", HashesConfig());
  EXPECT_THROW(orchestrator.Drain(), core::MigrationAborted);
  EXPECT_EQ(vm->CurrentHost(), "A");  // the VM never moved
}

TEST(FaultRecovery, AttemptCapRecordsAbortWhenAskedToKeepDraining) {
  PairWorld world;
  fault::FaultInjector injector(AlwaysDown(2));
  core::SchedulerConfig scheduler_config;
  scheduler_config.injector = &injector;
  scheduler_config.max_attempts = 3;
  scheduler_config.throw_on_abort = false;
  core::MigrationOrchestrator orchestrator(world.cluster, scheduler_config);
  auto vm = MakeVm("vm-1", MiB(8), 6);
  orchestrator.Deploy(*vm, "A");
  const auto id = orchestrator.MigrateAsync(*vm, "B", HashesConfig());
  EXPECT_EQ(orchestrator.Drain(), 0u);

  auto& scheduler = orchestrator.Scheduler();
  ASSERT_EQ(scheduler.Aborts().size(), 1u);
  const auto& abort = scheduler.Aborts().front();
  EXPECT_EQ(abort.id, id);
  EXPECT_EQ(abort.attempts, 3u);
  EXPECT_EQ(abort.from, "A");
  EXPECT_EQ(abort.to, "B");
  EXPECT_EQ(scheduler.Retries(), 2u);  // attempts 1 and 2 were requeued
  EXPECT_TRUE(scheduler.Completions().empty());
  EXPECT_EQ(vm->CurrentHost(), "A");
}

// --- End to end: VECYCLE_FAULTS corrupts the write-back; the return ---
// --- leg recovers page by page and lands the exact memory image. ------

TEST(FaultRecovery, EnvFaultsCorruptWriteBackAndTheReturnLegRecovers) {
  const auto ping_pong = [](core::VmInstance& vm,
                            audit::SimAuditor* auditor)
      -> std::vector<migration::MigrationStats> {
    PairWorld world;
    core::SchedulerConfig scheduler_config;
    scheduler_config.auditor = auditor;
    core::MigrationOrchestrator orchestrator(world.cluster,
                                             scheduler_config);
    orchestrator.Deploy(vm, "A");
    orchestrator.RunFor(vm, Minutes(1.0));
    orchestrator.MigrateAsync(vm, "B", HashesConfig());
    EXPECT_EQ(orchestrator.Drain(), 1u);
    orchestrator.RunFor(vm, Minutes(1.0));
    orchestrator.MigrateAsync(vm, "A", HashesConfig());
    EXPECT_EQ(orchestrator.Drain(), 1u);
    std::vector<migration::MigrationStats> stats;
    for (const auto& completion :
         orchestrator.Scheduler().Completions()) {
      stats.push_back(completion.stats);
    }
    return stats;
  };

  // Faulted world: every checkpoint save rots 64 pages, so the leg-1
  // write-back at A hands leg 2 a corrupted image to recycle.
  auto faulted_vm = MakeVm("vm-1", MiB(16), 7);
  std::vector<migration::MigrationStats> faulted;
  {
    ScopedFaultsEnv env("seed=6,corrupt_prob=1,corrupt_pages=64");
    audit::SimAuditor auditor;
    faulted = ping_pong(*faulted_vm, &auditor);
  }
  ASSERT_EQ(faulted.size(), 2u);
  EXPECT_GT(faulted[1].fallback_pages, 0u);
  EXPECT_EQ(faulted_vm->CurrentHost(), "A");

  // Fault-free twin: identical seeds, no injection. The final memory
  // image must be bit-identical — recovery changed traffic, not state.
  auto clean_vm = MakeVm("vm-1", MiB(16), 7);
  audit::SimAuditor clean_auditor;
  const auto clean = ping_pong(*clean_vm, &clean_auditor);
  ASSERT_EQ(clean.size(), 2u);
  EXPECT_EQ(clean[1].fallback_pages, 0u);
  EXPECT_TRUE(faulted_vm->Memory().ContentEquals(clean_vm->Memory()));
}

}  // namespace
}  // namespace vecycle
