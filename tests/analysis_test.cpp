// Analysis layer: similarity binning, technique comparison arithmetic,
// CDFs, the VDI schedule analyzer, and table rendering.
#include <gtest/gtest.h>

#include "analysis/binning.hpp"
#include "analysis/table.hpp"
#include "analysis/technique.hpp"
#include "analysis/vdi.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace vecycle::analysis {
namespace {

fp::Trace MakeTrace(std::vector<std::vector<std::uint64_t>> prints,
                    SimDuration interval = Minutes(30)) {
  fp::Trace trace("test");
  SimTime t = interval;
  for (auto& hashes : prints) {
    trace.Append(fp::Fingerprint(t, std::move(hashes)));
    t += interval;
  }
  return trace;
}

// --- Similarity decay binning. ---

TEST(SimilarityDecay, BinsPairsByDelta) {
  // Three fingerprints at 30-minute spacing: two 30-min pairs, one 60-min.
  auto trace = MakeTrace({{1, 2, 3, 4}, {1, 2, 3, 5}, {1, 2, 6, 7}});
  SimilarityDecayOptions options;
  options.max_delta = Hours(2);
  options.max_pairs_per_bin = 0;  // exact
  const auto decay = SimilarityDecay(trace, options);

  ASSERT_EQ(decay.size(), 2u);
  EXPECT_EQ(decay[0].center, Minutes(30));
  EXPECT_EQ(decay[0].pairs, 2u);
  // Pair (0,1): 3/4. Pair (1,2): 2/4.
  EXPECT_DOUBLE_EQ(decay[0].min, 0.5);
  EXPECT_DOUBLE_EQ(decay[0].max, 0.75);
  EXPECT_DOUBLE_EQ(decay[0].mean, 0.625);
  // Pair (0,2): 2/4.
  EXPECT_EQ(decay[1].pairs, 1u);
  EXPECT_DOUBLE_EQ(decay[1].mean, 0.5);
}

TEST(SimilarityDecay, RespectsMaxDelta) {
  auto trace = MakeTrace({{1}, {1}, {1}, {1}, {1}}, Hours(10));
  SimilarityDecayOptions options;
  options.bin_width = Hours(10);
  options.max_delta = Hours(25);
  options.max_pairs_per_bin = 0;
  const auto decay = SimilarityDecay(trace, options);
  for (const auto& bin : decay) {
    EXPECT_LE(bin.center, Hours(25));
  }
}

TEST(SimilarityDecay, SamplingCapsEvaluatedPairs) {
  std::vector<std::vector<std::uint64_t>> prints(50, {1, 2, 3});
  auto trace = MakeTrace(std::move(prints));
  SimilarityDecayOptions options;
  options.max_pairs_per_bin = 5;
  const auto decay = SimilarityDecay(trace, options);
  for (const auto& bin : decay) {
    EXPECT_LE(bin.pairs, 5u);
  }
}

TEST(SimilarityDecay, SamplingIsDeterministic) {
  std::vector<std::vector<std::uint64_t>> prints;
  Xoshiro256 rng(5);
  for (int i = 0; i < 40; ++i) {
    std::vector<std::uint64_t> hashes(64);
    for (auto& h : hashes) h = rng.NextBelow(256);
    prints.push_back(std::move(hashes));
  }
  auto trace = MakeTrace(std::move(prints));
  SimilarityDecayOptions options;
  options.max_pairs_per_bin = 8;
  const auto a = SimilarityDecay(trace, options);
  const auto b = SimilarityDecay(trace, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean, b[i].mean);
  }
}

// --- Technique comparison. ---

TEST(ComparePair, AllTechniquesOnKnownExample) {
  // a: positions [1 2 3 4 5 5]; b: [1 9 3 5 5 5].
  const fp::Fingerprint a(kSimEpoch, {1, 2, 3, 4, 5, 5});
  const fp::Fingerprint b(Minutes(30), {1, 9, 3, 5, 5, 5});
  const auto r = ComparePair(a, b);
  EXPECT_EQ(r.total_pages, 6u);
  EXPECT_EQ(r.full, 6u);
  EXPECT_EQ(r.dedup, 4u);          // U_b = {1,3,5,9}
  EXPECT_EQ(r.dirty, 2u);          // positions 1 and 3 changed
  EXPECT_EQ(r.dirty_dedup, 2u);    // dirty contents {9, 5}
  EXPECT_EQ(r.hashes, 1u);         // only content 9 is new
  EXPECT_EQ(r.hashes_dedup, 1u);   // U_b \ U_a = {9}
}

TEST(ComparePair, IdenticalFingerprintsTransferNothingNew) {
  const fp::Fingerprint a(kSimEpoch, {1, 2, 3});
  const fp::Fingerprint b(Minutes(30), {1, 2, 3});
  const auto r = ComparePair(a, b);
  EXPECT_EQ(r.dirty, 0u);
  EXPECT_EQ(r.hashes, 0u);
  EXPECT_EQ(r.hashes_dedup, 0u);
}

TEST(ComparePair, RemapDirtiesWithoutNewContent) {
  // The Fig. 5 mechanism: content permuted across frames.
  const fp::Fingerprint a(kSimEpoch, {1, 2, 3, 4});
  const fp::Fingerprint b(Minutes(30), {4, 3, 2, 1});
  const auto r = ComparePair(a, b);
  EXPECT_EQ(r.dirty, 4u);         // every position changed
  EXPECT_EQ(r.hashes, 0u);        // no new content
  EXPECT_EQ(r.hashes_dedup, 0u);
}

TEST(ComparePair, OrderingInvariantHoldsOnRandomData) {
  // hashes+dedup <= hashes <= full, hashes+dedup <= dedup,
  // dirty_dedup <= dirty, hashes <= dirty (content change implies position
  // change... the converse), for arbitrary inputs.
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> ha(256);
    std::vector<std::uint64_t> hb(256);
    for (auto& h : ha) h = rng.NextBelow(64);
    for (std::size_t i = 0; i < hb.size(); ++i) {
      hb[i] = rng.NextBool(0.5) ? ha[i] : rng.NextBelow(64);
    }
    const fp::Fingerprint a(kSimEpoch, ha);
    const fp::Fingerprint b(Minutes(30), hb);
    const auto r = ComparePair(a, b);
    EXPECT_LE(r.hashes_dedup, r.hashes);
    EXPECT_LE(r.hashes, r.dirty);  // unseen content at position i => a[i]!=b[i]
    EXPECT_LE(r.dirty_dedup, r.dirty);
    EXPECT_LE(r.dedup, r.full);
    EXPECT_LE(r.hashes_dedup, r.dedup);
  }
}

TEST(ComparePair, MismatchedSizesThrow) {
  const fp::Fingerprint a(kSimEpoch, {1, 2});
  const fp::Fingerprint b(Minutes(30), {1, 2, 3});
  EXPECT_THROW(ComparePair(a, b), CheckFailure);
}

TEST(SummarizeTechniques, MeansAreFractionsOfBaseline) {
  auto trace = MakeTrace({{1, 2, 3, 4}, {1, 2, 3, 5}, {1, 2, 6, 7}});
  TechniqueSummaryOptions options;
  options.max_pairs = 0;
  const auto summary = SummarizeTechniques(trace, options);
  EXPECT_EQ(summary.pairs, 3u);
  EXPECT_GT(summary.mean_hashes_dedup, 0.0);
  EXPECT_LE(summary.mean_hashes_dedup, summary.mean_hashes);
  EXPECT_LE(summary.mean_hashes_dedup, 1.0);
  EXPECT_LE(summary.mean_dirty_dedup, summary.mean_dirty);
}

TEST(SummarizeTechniques, MinDeltaFiltersPairs) {
  auto trace = MakeTrace({{1}, {1}, {1}});
  TechniqueSummaryOptions options;
  options.max_pairs = 0;
  options.min_delta = Minutes(45);
  const auto summary = SummarizeTechniques(trace, options);
  EXPECT_EQ(summary.pairs, 1u);  // only the 60-minute pair survives
}

TEST(MethodSets, NestingAndOverlapsOnKnownExample) {
  // a: [1 2 3 4 5]; b: [1 9 4 3 9]
  //   position 1: new content 9 (dirty, hashes, first occurrence)
  //   positions 2,3: contents 4 and 3 swapped (dirty, not hashes)
  //   position 4: content 9 again (dirty, hashes, duplicate)
  const fp::Fingerprint a(kSimEpoch, {1, 2, 3, 4, 5});
  const fp::Fingerprint b(Minutes(30), {1, 9, 4, 3, 9});
  const auto sets = ComputeMethodSets(a, b);
  EXPECT_EQ(sets.total_pages, 5u);
  EXPECT_EQ(sets.dirty, 4u);
  EXPECT_EQ(sets.hashes, 2u);
  EXPECT_EQ(sets.dirty_not_hashes, 2u);
  EXPECT_EQ(sets.dup_positions, 1u);
  EXPECT_EQ(sets.dirty_and_dup, 1u);
  EXPECT_EQ(sets.hashes_and_dup, 1u);
}

TEST(MethodSets, HashesIsAlwaysSubsetOfDirty) {
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint64_t> ha(128);
    std::vector<std::uint64_t> hb(128);
    for (auto& h : ha) h = rng.NextBelow(40);
    for (std::size_t i = 0; i < hb.size(); ++i) {
      hb[i] = rng.NextBool(0.6) ? ha[i] : rng.NextBelow(40);
    }
    const auto sets = ComputeMethodSets(fp::Fingerprint(kSimEpoch, ha),
                                        fp::Fingerprint(Minutes(30), hb));
    EXPECT_LE(sets.hashes, sets.dirty);
    EXPECT_EQ(sets.dirty - sets.hashes, sets.dirty_not_hashes);
  }
}

// --- CDF. ---

TEST(Cdf, SortsAndAssignsProbabilities) {
  const auto cdf = ComputeCdf({3.0, 1.0, 2.0, 4.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].probability, 0.25);
  EXPECT_DOUBLE_EQ(cdf[3].value, 4.0);
  EXPECT_DOUBLE_EQ(cdf[3].probability, 1.0);
}

// --- VDI analysis. ---

fp::Trace DesktopLikeTrace(int days) {
  // One fingerprint per 30 minutes; content drifts a little each step and
  // strongly during office hours. Contents are drawn from a bounded space
  // so the memory carries duplicate pages, as real desktops do.
  fp::Trace trace("desktop");
  Xoshiro256 rng(3);
  const auto draw = [&rng] { return rng.NextBelow(3000); };
  std::vector<std::uint64_t> hashes(512);
  for (auto& h : hashes) h = draw();
  SimTime t = kSimEpoch;
  for (int step = 0; step < days * 48; ++step) {
    t += Minutes(30);
    const int hour = static_cast<int>(ToSeconds(t) / 3600.0) % 24;
    const bool office = hour >= 9 && hour < 17;
    const std::size_t churn = office ? 12 : 1;
    for (std::size_t i = 0; i < churn; ++i) {
      hashes[rng.NextBelow(hashes.size())] = draw();
    }
    trace.Append(fp::Fingerprint(t, hashes));
  }
  return trace;
}

TEST(Vdi, TwoMigrationsPerWeekday) {
  const auto trace = DesktopLikeTrace(19);
  VdiScheduleOptions options;
  options.weekday_count = 13;
  const auto report = AnalyzeVdi(trace, GiB(6), options);
  EXPECT_EQ(report.rows.size(), 26u);
  // Alternating directions: morning to workstation, evening back.
  EXPECT_TRUE(report.rows[0].to_workstation);
  EXPECT_FALSE(report.rows[1].to_workstation);
  EXPECT_TRUE(report.rows[2].to_workstation);
}

TEST(Vdi, FirstMigrationShipsEverything) {
  const auto trace = DesktopLikeTrace(19);
  const auto report = AnalyzeVdi(trace, GiB(6), VdiScheduleOptions{});
  EXPECT_DOUBLE_EQ(report.rows[0].full, 1.0);
  // With no checkpoint anywhere, VeCycle degenerates to dedup.
  EXPECT_DOUBLE_EQ(report.rows[0].vecycle, report.rows[0].dedup);
  // Later migrations reuse checkpoints.
  EXPECT_LT(report.rows[2].vecycle, report.rows[0].vecycle);
}

TEST(Vdi, WeekendsAreSkipped) {
  const auto trace = DesktopLikeTrace(19);
  const auto report = AnalyzeVdi(trace, GiB(6), VdiScheduleOptions{});
  // Day 4 (Friday) evening migration is row 9; the next is day 7 (Monday)
  // morning: a 64-hour gap.
  const auto gap = report.rows[10].when - report.rows[9].when;
  EXPECT_EQ(gap, Hours(64));
}

TEST(Vdi, VeCycleBeatsDedupInAggregate) {
  const auto trace = DesktopLikeTrace(19);
  const auto report = AnalyzeVdi(trace, GiB(6), VdiScheduleOptions{});
  EXPECT_LT(report.total_vecycle.count, report.total_dedup.count);
  EXPECT_LT(report.total_dedup.count, report.total_full.count);
  EXPECT_LE(report.total_vecycle.count, report.total_dirty_dedup.count);
}

TEST(Vdi, BaselineTrafficIsMigrationsTimesRam) {
  const auto trace = DesktopLikeTrace(19);
  const auto report = AnalyzeVdi(trace, GiB(6), VdiScheduleOptions{});
  EXPECT_EQ(report.total_full, GiB(6) * 26);
}

TEST(Vdi, TraceTooShortThrows) {
  const auto trace = DesktopLikeTrace(3);
  VdiScheduleOptions options;
  options.weekday_count = 13;
  EXPECT_THROW(AnalyzeVdi(trace, GiB(6), options), CheckFailure);
}

// --- Table rendering. ---

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  const auto out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RejectsMisshapenRows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), CheckFailure);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Pct(0.756, 1), "75.6%");
}

}  // namespace
}  // namespace vecycle::analysis
