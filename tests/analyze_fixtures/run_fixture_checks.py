#!/usr/bin/env python3
"""Regression harness for the vecycle-analyze rule set.

Runs the analyzer over the known-good/known-bad corpus in root/ and
asserts the finding set matches expectations EXACTLY:

  * every `// EXPECT <rule>` marker in a fixture must produce a finding of
    that rule on that line (rules fire where they should),
  * the suppression-hygiene expectations listed below must appear
    (malformed/unknown/missing-reason/unused suppressions are caught),
  * nothing else may fire (the good shapes — ordered containers, point
    lookups, suppressed loops, documented fields, exempt members — stay
    clean).

Any drift in either direction fails the test, so a rule that silently
stops firing is as loud as one that starts over-reporting. Wired into
ctest as `analyze_fixtures` (tests/CMakeLists.txt) and run in CI's
static-analysis job.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
FIXTURE_ROOT = HERE / "root"
ANALYZER = REPO / "tools" / "vecycle_analyze"

EXPECT_RE = re.compile(r"//\s*EXPECT\s+([A-Za-z0-9_-]+)")

# Hygiene findings land on the suppression comment itself, where an EXPECT
# marker would corrupt the reason text; locate them by unique substring.
HYGIENE_EXPECTATIONS = [
    ("src/core/bad_suppression.cpp", "allow(no-such-rule)"),
    ("src/core/bad_suppression.cpp",
     "allow(determinism-unordered-iteration)\n"),  # reason-less (line end)
    ("src/core/bad_suppression.cpp", "nothing on the next line iterates"),
    ("src/core/bad_suppression.cpp", "alow("),
]


def collect_expected() -> set[tuple[str, int, str]]:
    expected: set[tuple[str, int, str]] = set()
    for path in sorted(FIXTURE_ROOT.rglob("*")):
        if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
            continue
        rel = path.relative_to(FIXTURE_ROOT).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            m = EXPECT_RE.search(line)
            if m:
                expected.add((rel, lineno, m.group(1)))
    for rel, needle in HYGIENE_EXPECTATIONS:
        text = (FIXTURE_ROOT / rel).read_text()
        if needle.endswith("\n"):
            # Match a reason-less suppression: the allow() is the line end.
            target = needle[:-1]
            lines = [
                i
                for i, line in enumerate(text.splitlines(), 1)
                if line.rstrip().endswith(target)
            ]
        else:
            lines = [
                i
                for i, line in enumerate(text.splitlines(), 1)
                if needle in line
            ]
        if len(lines) != 1:
            print(
                f"FIXTURE BUG: locator '{needle}' matches lines {lines} "
                f"in {rel}; expected exactly one",
                file=sys.stderr,
            )
            sys.exit(2)
        expected.add((rel, lines[0], "suppression-hygiene"))
    return expected


def main() -> int:
    expected = collect_expected()
    if not expected:
        print("FIXTURE BUG: no EXPECT markers found", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        out_json = Path(tmp) / "findings.json"
        proc = subprocess.run(
            [
                sys.executable,
                str(ANALYZER),
                "--root",
                str(FIXTURE_ROOT),
                "--backend",
                "lexical",
                "--json",
                str(out_json),
            ],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 1:
            print(
                f"FAIL: analyzer exited {proc.returncode} on a corpus full "
                f"of violations (expected 1)\nstdout:\n{proc.stdout}\n"
                f"stderr:\n{proc.stderr}",
                file=sys.stderr,
            )
            return 1
        report = json.loads(out_json.read_text())

    actual = {
        (f["path"], f["line"], f["rule"]) for f in report["findings"]
    }

    missing = expected - actual
    unexpected = actual - expected
    for path, line, rule in sorted(missing):
        print(f"FAIL: rule '{rule}' did not fire at {path}:{line}")
    for path, line, rule in sorted(unexpected):
        print(f"FAIL: unexpected '{rule}' finding at {path}:{line}")
    if missing or unexpected:
        print(
            f"\n{len(missing)} missing, {len(unexpected)} unexpected "
            f"(of {len(expected)} expected findings)",
            file=sys.stderr,
        )
        return 1

    print(
        f"PASS: all {len(expected)} expected findings fired, nothing "
        "else did, suppressions behaved"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
