// Known-bad fixture: every banned wall-clock / entropy construct, one per
// line, so run_fixture_checks.py can assert determinism-wall-clock fires
// at each site. Never compiled — analyzer input only.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

long UsesSystemClock() {
  auto t = std::chrono::system_clock::now();  // EXPECT determinism-wall-clock
  return t.time_since_epoch().count();
}

long UsesSteadyClock() {
  auto t = std::chrono::steady_clock::now();  // EXPECT determinism-wall-clock
  return t.time_since_epoch().count();
}

long UsesHighResolutionClock() {
  auto t = std::chrono::high_resolution_clock::now();  // EXPECT determinism-wall-clock
  return t.time_since_epoch().count();
}

int UsesRand() {
  return std::rand();  // EXPECT determinism-wall-clock
}

unsigned UsesRandomDevice() {
  std::random_device rd;  // EXPECT determinism-wall-clock
  return rd();
}

long UsesTime() {
  return time(nullptr);  // EXPECT determinism-wall-clock
}

// The string below must NOT fire: literals are blanked before matching.
const char* kDocString = "call std::rand() and time(NULL) at your peril";

// Comments must NOT fire either: std::random_device, steady_clock.

}  // namespace fixture
