// Known-bad fixture for suppression hygiene. Never compiled.
#include <unordered_set>

namespace fixture {

std::unordered_set<int> hygiene_pages;

int UnknownRule() {
  int sum = 0;
  // vecycle-analyze: allow(no-such-rule) this rule name does not exist
  for (const auto& p : hygiene_pages) {  // EXPECT determinism-unordered-iteration
    sum += p;
  }
  return sum;
}

int MissingReason() {
  int sum = 0;
  // vecycle-analyze: allow(determinism-unordered-iteration)
  for (const auto& p : hygiene_pages) {
    sum += p;
  }
  return sum;
}

// vecycle-analyze: allow(determinism-unordered-iteration) nothing on the next line iterates anything
int UnusedSuppression() { return 0; }

int Malformed() {
  // vecycle-analyze: alow(determinism-unordered-iteration) typo in 'allow'
  return 0;
}

}  // namespace fixture
