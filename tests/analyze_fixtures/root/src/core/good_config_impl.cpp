// Out-of-line Validate() for the nested fixture config: proves the
// analyzer resolves Outer::Config::Validate across files and searches its
// body (including comments) for field mentions. Never compiled.
#include "core/bad_config.hpp"

namespace fixture {

void Outer::Config::Validate() const {
  if (window <= 0.0 || window > 1.0) throw "window must be in (0, 1]";
}

}  // namespace fixture
