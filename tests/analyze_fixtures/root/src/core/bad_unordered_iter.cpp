// Known-bad fixture: hash-ordered iteration in a replay-sensitive
// directory, both spellings (range-for and explicit .begin() walk), plus
// cases that must NOT fire (ordered containers, point lookups, and a
// properly suppressed loop). Never compiled — analyzer input only.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

std::unordered_map<int, std::string> page_table;
std::unordered_set<int> dirty_pages;
std::map<int, std::string> ordered_table;

int RangeForOverUnorderedMap() {
  int sum = 0;
  for (const auto& [page, contents] : page_table) {  // EXPECT determinism-unordered-iteration
    sum += page;
  }
  return sum;
}

int BeginWalkOverUnorderedSet() {
  int sum = 0;
  for (auto it = dirty_pages.begin(); it != dirty_pages.end(); ++it) {  // EXPECT determinism-unordered-iteration
    sum += *it;
  }
  return sum;
}

int RangeForOverOrderedMapIsFine() {
  int sum = 0;
  for (const auto& [page, contents] : ordered_table) {
    sum += page;
  }
  return sum;
}

bool PointLookupIsFine(int page) {
  return page_table.find(page) != page_table.end() &&
         dirty_pages.count(page) > 0;
}

int SuppressedCommutativeSum() {
  int sum = 0;
  // vecycle-analyze: allow(determinism-unordered-iteration) commutative integer sum; order cannot reach the result
  for (const auto& page : dirty_pages) {
    sum += page;
  }
  return sum;
}

}  // namespace fixture
