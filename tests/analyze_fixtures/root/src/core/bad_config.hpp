// Known-bad fixture for the config-hygiene rules. Never compiled.
#pragma once
#include <cstdint>

namespace fixture {

// No Validate() at all.
struct OrphanConfig {  // EXPECT config-validate-required
  double rate = 1.0;
  std::uint64_t pages = 64;
};

// Validate() exists but forgets a field.
struct ForgetfulConfig {
  double checked_rate = 1.0;
  std::uint64_t forgotten_pages = 64;  // EXPECT config-field-validated
  bool flag = false;            // bools are exempt
  std::uint64_t seed = 1;       // seeds are exempt
  int* wiring = nullptr;        // pointers are exempt

  void Validate() const {
    if (checked_rate < 0.0) throw "bad rate";
  }
};

// A field accounted for by a comment inside Validate() is fine.
struct DocumentedConfig {
  std::uint64_t retries = 3;

  void Validate() const {
    // retries: every value is legal; zero means fail fast.
  }
};

// Nested Config resolved through its out-of-line Outer::Config::Validate
// definition in good_config_impl.cpp.
class Outer {
 public:
  struct Config {
    double window = 0.5;
    void Validate() const;
  };
};

}  // namespace fixture
