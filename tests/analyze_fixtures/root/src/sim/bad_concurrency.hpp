// Known-bad fixture for the concurrency rules. Never compiled.
//
// `Simulator` is on the required-annotations list but carries no
// VEC_GUARDED_BY members; `HalfGuarded` has one guarded member and one
// bare one; `FullyGuarded` shows the accepted shapes (guarded, mutex,
// const, reference, static, suppressed).
#pragma once

#define VEC_GUARDED_BY(x)  // fixture stand-in for thread_annotations.hpp

namespace fixture {

class NullMutex {};

class Simulator {  // EXPECT concurrency-annotation-required
 public:
  long Now() const { return now_; }

 private:
  long now_ = 0;
};

class HalfGuarded {
 private:
  NullMutex mu_;
  long guarded_ VEC_GUARDED_BY(mu_) = 0;
  long bare_ = 0;  // EXPECT concurrency-guarded-member
};

class Observer;

class FullyGuarded {
 private:
  NullMutex mu_;
  long guarded_ VEC_GUARDED_BY(mu_) = 0;
  const long limit_ = 10;
  Observer& wiring_;
  static constexpr long kStep = 1;
  // vecycle-analyze: allow(concurrency-guarded-member) written once before the loop starts, read-only afterwards
  Observer* observer_ = nullptr;
};

}  // namespace fixture
