// Trace synthesis: turns a MachineSpec into a fingerprint trace with the
// statistical shape of the Memory Buddies corpus (see machine_spec.hpp for
// the model and its calibration targets).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "fingerprint/trace.hpp"
#include "traces/machine_spec.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::traces {

class TraceSynthesizer {
 public:
  explicit TraceSynthesizer(MachineSpec spec);

  /// Runs the full trace duration and returns the fingerprints captured at
  /// each interval the machine was powered on.
  fp::Trace Synthesize();

  /// Single simulation step (one fingerprint interval): advances activity
  /// state, applies churn if powered on. Exposed for fine-grained tests.
  void Step();

  [[nodiscard]] bool PoweredOn() const { return powered_on_; }
  [[nodiscard]] SimTime Now() const { return now_; }
  [[nodiscard]] const vm::GuestMemory& Memory() const { return *memory_; }
  [[nodiscard]] vm::GuestMemory& MutableMemory() { return *memory_; }
  [[nodiscard]] const MachineSpec& Spec() const { return spec_; }

  /// Current activity multiplier (diurnal x burst), 0 when powered off.
  [[nodiscard]] double ActivityFactor() const;

 private:
  void InitializeMemory();
  void ApplyChurn(SimDuration dt);
  void UpdatePowerAndBurst();
  [[nodiscard]] int HourOfDay() const;
  [[nodiscard]] bool IsDaytime() const;
  [[nodiscard]] std::uint64_t DrawContentSeed(vm::PageId page);

  MachineSpec spec_;
  Xoshiro256 rng_;
  std::unique_ptr<vm::GuestMemory> memory_;
  /// Per-page churn region index; region count = regions.size(), with
  /// index regions.size() meaning the stable core.
  std::vector<std::uint32_t> region_of_page_;
  std::vector<double> rewrite_probability_;  // per region per step at activity 1
  std::vector<std::uint64_t> duplicate_pool_;
  SimTime now_ = kSimEpoch;
  bool powered_on_ = true;
  bool busy_ = false;
};

/// Convenience: synthesize the trace for `spec` in one call.
fp::Trace SynthesizeTrace(const MachineSpec& spec);

}  // namespace vecycle::traces
