// Machine specifications for trace synthesis.
//
// The paper's §2 analysis runs over the Memory Buddies corpus (Table 1:
// three Linux servers and four OSX laptops, 30-minute fingerprints over
// 7 days), the authors' own web-crawler VMs (8 GiB, 4 days), and a
// personal desktop (6 GiB, 19 days, §4.6). That corpus is no longer
// retrievable, so each machine is described here by a *churn model* whose
// free parameters are calibrated against the observables the paper
// publishes: average similarity at 24 h (Fig. 1), the one-week plateau
// (Fig. 2), duplicate- and zero-page fractions (Fig. 4).
//
// The churn model partitions memory into a stable core (never rewritten:
// kernel text, resident libraries — this sets the long-run similarity
// plateau) plus exponential-decay regions, each with a half-life: within
// region r, a page is rewritten during an interval dt with probability
// 1 - 2^(-dt_eff / half_life), where dt_eff scales with the machine's
// current activity level (diurnal schedule × bursty Markov state). That
// produces exactly the shapes of Fig. 1: decaying mean with a wide
// min/max envelope driven by activity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace vecycle::traces {

enum class MachineClass { kServer, kLaptop, kCrawler, kDesktop };

const char* ToString(MachineClass klass);

/// One exponential-churn region. Weights across regions plus
/// `stable_fraction` must sum to 1.
struct ChurnRegion {
  double weight = 0.0;
  SimDuration half_life = Hours(12);
};

/// Diurnal + bursty activity. The effective churn interval is
/// dt * diurnal(t) * burst_state(t).
struct ActivityModel {
  double day_factor = 1.0;    ///< multiplier during [day_start, day_end)
  double night_factor = 0.3;  ///< multiplier otherwise
  int day_start_hour = 9;
  int day_end_hour = 21;

  /// Two-state busy/quiet Markov modulation creating the min/max spread of
  /// Fig. 1. Expected dwell time in each state is `mean_dwell`.
  double busy_factor = 2.5;
  double quiet_factor = 0.25;
  SimDuration mean_dwell = Hours(3);

  /// Laptops power off (§2.3: only 151–205 of 336 fingerprints exist).
  /// When off, no fingerprint is captured and no churn occurs. Transition
  /// probabilities are evaluated per 30-minute step.
  bool can_power_off = false;
  double off_to_on_day = 0.35;   ///< P(turn on | off, daytime step)
  double off_to_on_night = 0.02;
  double on_to_off_day = 0.04;   ///< P(turn off | on, daytime step)
  double on_to_off_night = 0.30;
};

struct MachineSpec {
  std::string name;      ///< e.g. "Server A"
  std::string os;        ///< "Linux" / "OSX" (Table 1)
  std::string trace_id;  ///< Memory Buddies trace id (Table 1)
  MachineClass klass = MachineClass::kServer;

  /// RAM of the real machine (drives absolute traffic numbers, e.g.
  /// Fig. 8's gigabytes).
  Bytes nominal_ram = GiB(1);
  /// Pages actually modeled. Similarity and duplicate fractions are
  /// scale-free, so traces are synthesized at reduced scale for speed.
  std::uint64_t model_pages = 32768;

  double stable_fraction = 0.3;
  std::vector<ChurnRegion> regions;
  /// Fraction of pages whose content *moves* to another frame per
  /// fingerprint interval (at unit activity): kernel compaction, page
  /// cache shuffling, COW breaks. Moves dirty pages without creating new
  /// content — the Fig. 5 mechanism that makes dirty tracking (Miyakodori)
  /// overestimate relative to content-based matching.
  double remap_fraction_per_step = 0.0;
  /// Steady-state duplicate / zero page composition (Fig. 4 targets).
  double duplicate_fraction = 0.08;
  double zero_fraction = 0.03;
  std::uint64_t duplicate_pool_size = 192;

  ActivityModel activity;

  SimDuration fingerprint_interval = Minutes(30);
  SimDuration trace_duration = Hours(7 * 24);
  std::uint64_t seed = 1;

  /// Sum of stable fraction and region weights; must be ~1.
  [[nodiscard]] double TotalWeight() const;
  void Validate() const;
};

/// The six Table 1 machines (Server A/B/C, Laptop A/B/C — Laptop D is
/// available via Table1AllMachines) with calibrated churn models.
std::vector<MachineSpec> Table1Machines();
std::vector<MachineSpec> Table1AllMachines();

/// The two web-crawler VMs of §2.3 (8 GiB, Apache Nutch, 4-day traces).
std::vector<MachineSpec> CrawlerMachines();

/// The author's desktop of §4.6 (6 GiB, 19 days, 912 fingerprints).
MachineSpec DesktopMachine();

/// Looks a machine up by name across all registries; throws if unknown.
MachineSpec FindMachine(const std::string& name);

}  // namespace vecycle::traces
