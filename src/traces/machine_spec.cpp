#include "traces/machine_spec.hpp"

#include <cmath>

#include "common/check.hpp"

namespace vecycle::traces {

const char* ToString(MachineClass klass) {
  switch (klass) {
    case MachineClass::kServer:
      return "server";
    case MachineClass::kLaptop:
      return "laptop";
    case MachineClass::kCrawler:
      return "crawler";
    case MachineClass::kDesktop:
      return "desktop";
  }
  return "?";
}

double MachineSpec::TotalWeight() const {
  double total = stable_fraction;
  for (const auto& r : regions) total += r.weight;
  return total;
}

void MachineSpec::Validate() const {
  VEC_CHECK_MSG(!name.empty(), "machine needs a name");
  VEC_CHECK_MSG(model_pages >= 1024, "model too small for stable statistics");
  VEC_CHECK_MSG(std::abs(TotalWeight() - 1.0) < 1e-9,
                "stable fraction + region weights must sum to 1: " + name);
  VEC_CHECK_MSG(duplicate_fraction + zero_fraction < 0.9,
                "implausible duplicate/zero composition: " + name);
  VEC_CHECK_MSG(fingerprint_interval > SimDuration::zero(),
                "fingerprint interval must be positive");
  for (const auto& r : regions) {
    VEC_CHECK_MSG(r.weight > 0.0 && r.half_life > SimDuration::zero(),
                  "invalid churn region in " + name);
  }
}

namespace {

ActivityModel ServerActivity() {
  ActivityModel a;
  a.day_factor = 1.3;
  a.night_factor = 0.5;
  a.day_start_hour = 8;
  a.day_end_hour = 20;
  a.busy_factor = 2.0;
  a.quiet_factor = 0.3;
  a.mean_dwell = Hours(3);
  return a;
}

ActivityModel LaptopActivity() {
  ActivityModel a;
  a.day_factor = 1.5;
  a.night_factor = 0.4;
  a.day_start_hour = 9;
  a.day_end_hour = 23;
  a.busy_factor = 2.2;
  a.quiet_factor = 0.3;
  a.mean_dwell = Hours(2);
  a.can_power_off = true;  // §2.3: laptops yield only 151–205 fingerprints
  return a;
}

ActivityModel CrawlerActivity() {
  // Crawlers run flat out around the clock; only mild burstiness from the
  // frontier composition.
  ActivityModel a;
  a.day_factor = 1.0;
  a.night_factor = 1.0;
  a.busy_factor = 1.6;
  a.quiet_factor = 0.5;
  a.mean_dwell = Hours(4);
  return a;
}

ActivityModel DesktopActivity() {
  // §4.6: interactive use during office hours, near-idle overnight — this
  // is what makes the evening->morning migration almost free.
  ActivityModel a;
  a.day_factor = 1.6;
  a.night_factor = 0.25;
  a.day_start_hour = 9;
  a.day_end_hour = 17;
  a.busy_factor = 1.8;
  a.quiet_factor = 0.4;
  a.mean_dwell = Hours(2);
  return a;
}

MachineSpec ServerA() {
  MachineSpec m;
  m.name = "Server A";
  m.os = "Linux";
  m.trace_id = "00065BEE5AA7";
  m.klass = MachineClass::kServer;
  m.nominal_ram = GiB(1);
  // Calibrated for Fig. 1: avg similarity ~0.85 at 1 h, ~0.35 at 24 h;
  // Fig. 4: ~5-8% duplicates, few % zeros.
  m.stable_fraction = 0.20;
  m.regions = {{0.30, Hours(1.5)}, {0.30, Hours(8)}, {0.20, Hours(36)}};
  m.duplicate_fraction = 0.06;
  m.zero_fraction = 0.03;
  m.remap_fraction_per_step = 0.034;
  m.activity = ServerActivity();
  m.seed = 0xA001;
  return m;
}

MachineSpec ServerB() {
  MachineSpec m;
  m.name = "Server B";
  m.os = "Linux";
  m.trace_id = "00188B30D847";
  m.klass = MachineClass::kServer;
  m.nominal_ram = GiB(4);
  // Fig. 1: the most reusable server — avg ~0.9 at 1 h, ~0.40 at 24 h.
  m.stable_fraction = 0.25;
  m.regions = {{0.25, Hours(2)}, {0.30, Hours(10)}, {0.20, Hours(40)}};
  m.duplicate_fraction = 0.10;
  m.zero_fraction = 0.04;
  m.remap_fraction_per_step = 0.045;
  m.activity = ServerActivity();
  m.seed = 0xB002;
  return m;
}

MachineSpec ServerC() {
  MachineSpec m;
  m.name = "Server C";
  m.os = "Linux";
  m.trace_id = "001E4F36E2FB";
  m.klass = MachineClass::kServer;
  m.nominal_ram = GiB(8);
  // Fig. 1/2: drops fastest of the servers — ~0.20 at 24 h, just under
  // 0.20 at one week; Fig. 4: ~20% duplicates yet almost no zero pages.
  m.stable_fraction = 0.16;
  m.regions = {{0.35, Hours(1)}, {0.32, Hours(6)}, {0.17, Hours(22)}};
  m.duplicate_fraction = 0.20;
  m.zero_fraction = 0.01;
  m.remap_fraction_per_step = 0.014;
  m.activity = ServerActivity();
  m.seed = 0xC003;
  return m;
}

MachineSpec Laptop(const std::string& suffix, const std::string& trace_id,
                   std::uint64_t seed) {
  MachineSpec m;
  m.name = "Laptop " + suffix;
  m.os = "OSX";
  m.trace_id = trace_id;
  m.klass = MachineClass::kLaptop;
  m.nominal_ram = GiB(2);
  // Fig. 1: similar decay to the servers but with a wide envelope from
  // intermittent use; Fig. 4: 10-20% duplicates.
  m.stable_fraction = 0.22;
  m.regions = {{0.35, Hours(2)}, {0.28, Hours(10)}, {0.15, Hours(60)}};
  m.duplicate_fraction = 0.15;
  m.zero_fraction = 0.05;
  m.remap_fraction_per_step = 0.016;
  m.activity = LaptopActivity();
  m.seed = seed;
  return m;
}

MachineSpec Crawler(const std::string& suffix, std::uint64_t seed) {
  MachineSpec m;
  m.name = "Crawler " + suffix;
  m.os = "Linux";
  m.trace_id = "nutch-" + suffix;
  m.klass = MachineClass::kCrawler;
  m.nominal_ram = GiB(8);
  // §2.3: avg similarity ~0.4 after one hour, below 0.2 after five —
  // constantly active, small stable core.
  m.stable_fraction = 0.10;
  m.regions = {{0.60, Hours(0.4)}, {0.30, Hours(3)}};
  m.duplicate_fraction = 0.05;
  m.zero_fraction = 0.01;
  m.remap_fraction_per_step = 0.006;
  m.activity = CrawlerActivity();
  m.trace_duration = Hours(4 * 24);  // 192 fingerprints at 30 min
  m.seed = seed;
  return m;
}

}  // namespace

std::vector<MachineSpec> Table1Machines() {
  return {ServerA(),
          ServerB(),
          ServerC(),
          Laptop("A", "001B6333F86A", 0x1A01),
          Laptop("B", "001B6333F90A", 0x1B02),
          Laptop("C", "001B6334DE9F", 0x1C03)};
}

std::vector<MachineSpec> Table1AllMachines() {
  auto machines = Table1Machines();
  machines.push_back(Laptop("D", "001B6338238A", 0x1D04));
  return machines;
}

std::vector<MachineSpec> CrawlerMachines() {
  return {Crawler("A", 0x2A01), Crawler("B", 0x2B02)};
}

MachineSpec DesktopMachine() {
  MachineSpec m;
  m.name = "Desktop";
  m.os = "Linux";
  m.trace_id = "author-desktop";
  m.klass = MachineClass::kDesktop;
  m.nominal_ram = GiB(6);
  // §4.6: Ubuntu 10.04 research desktop; calibrated so a 9 am->5 pm
  // working day leaves ~70-75% similarity and the idle night ~85-90%,
  // which yields the paper's aggregate 25%-of-baseline VeCycle traffic,
  // and ~14% duplicates so sender-side dedup lands at 86% of baseline.
  m.stable_fraction = 0.55;
  m.regions = {{0.18, Hours(3)}, {0.17, Hours(15)}, {0.10, Hours(80)}};
  m.duplicate_fraction = 0.14;
  m.zero_fraction = 0.03;
  m.remap_fraction_per_step = 0.012;
  m.activity = DesktopActivity();
  m.trace_duration = Hours(19 * 24);  // 912 fingerprints at 30 min
  m.seed = 0xDE51;
  return m;
}

MachineSpec FindMachine(const std::string& name) {
  for (const auto& m : Table1AllMachines()) {
    if (m.name == name) return m;
  }
  for (const auto& m : CrawlerMachines()) {
    if (m.name == name) return m;
  }
  if (DesktopMachine().name == name) return DesktopMachine();
  VEC_CHECK_MSG(false, "unknown machine: " + name);
  return {};
}

}  // namespace vecycle::traces
