#include "traces/synthesizer.hpp"

#include <cmath>

#include "common/check.hpp"

namespace vecycle::traces {

TraceSynthesizer::TraceSynthesizer(MachineSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {
  spec_.Validate();
  InitializeMemory();

  // Precompute per-region rewrite probability for one fingerprint interval
  // at unit activity: p = 1 - 2^(-dt / half_life). ApplyChurn raises this
  // to the current activity factor via p_eff = 1 - (1-p)^activity, which
  // is exact for exponentials.
  const double dt_hours = ToSeconds(spec_.fingerprint_interval) / 3600.0;
  for (const auto& region : spec_.regions) {
    const double hl_hours = ToSeconds(region.half_life) / 3600.0;
    rewrite_probability_.push_back(1.0 -
                                   std::exp2(-dt_hours / hl_hours));
  }

  // Laptops start powered on mid-morning equivalent; everything else is
  // always on at t=0.
  powered_on_ = true;
  busy_ = false;
}

void TraceSynthesizer::InitializeMemory() {
  memory_ = std::make_unique<vm::GuestMemory>(
      Pages(spec_.model_pages), vm::ContentMode::kSeedOnly);

  duplicate_pool_.resize(spec_.duplicate_pool_size);
  for (auto& s : duplicate_pool_) s = rng_.Next() | (1ull << 63);

  // Region assignment: pages are dealt to regions by weighted round-robin
  // over a shuffled order so regions interleave across the address space.
  const std::uint64_t n = spec_.model_pages;
  region_of_page_.assign(n, static_cast<std::uint32_t>(spec_.regions.size()));
  std::vector<vm::PageId> order(n);
  for (std::uint64_t i = 0; i < n; ++i) order[i] = i;
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    const std::uint64_t j = i + rng_.NextBelow(n - i);
    std::swap(order[i], order[j]);
  }
  std::uint64_t cursor = 0;
  for (std::uint32_t r = 0; r < spec_.regions.size(); ++r) {
    const auto count = static_cast<std::uint64_t>(
        spec_.regions[r].weight * static_cast<double>(n));
    for (std::uint64_t k = 0; k < count && cursor < n; ++k, ++cursor) {
      region_of_page_[order[cursor]] = r;
    }
  }
  // Remaining pages (rounding remainder) stay in the stable core.

  // Initial contents: zero / duplicate-pool / unique mix everywhere.
  for (vm::PageId page = 0; page < n; ++page) {
    memory_->WritePage(page, DrawContentSeed(page));
  }
}

std::uint64_t TraceSynthesizer::DrawContentSeed(vm::PageId /*page*/) {
  const double coin = rng_.NextDouble();
  if (coin < spec_.zero_fraction) return vm::kZeroPageSeed;
  if (coin < spec_.zero_fraction + spec_.duplicate_fraction) {
    return duplicate_pool_[rng_.NextBelow(duplicate_pool_.size())];
  }
  return rng_.Next() & ~(1ull << 63);
}

int TraceSynthesizer::HourOfDay() const {
  const auto seconds = static_cast<std::int64_t>(ToSeconds(now_));
  return static_cast<int>((seconds / 3600) % 24);
}

bool TraceSynthesizer::IsDaytime() const {
  const int hour = HourOfDay();
  return hour >= spec_.activity.day_start_hour &&
         hour < spec_.activity.day_end_hour;
}

double TraceSynthesizer::ActivityFactor() const {
  if (!powered_on_) return 0.0;
  const auto& a = spec_.activity;
  const double diurnal = IsDaytime() ? a.day_factor : a.night_factor;
  const double burst = busy_ ? a.busy_factor : a.quiet_factor;
  return diurnal * burst;
}

void TraceSynthesizer::UpdatePowerAndBurst() {
  const auto& a = spec_.activity;

  if (a.can_power_off) {
    const bool day = IsDaytime();
    if (powered_on_) {
      const double p_off = day ? a.on_to_off_day : a.on_to_off_night;
      if (rng_.NextBool(p_off)) powered_on_ = false;
    } else {
      const double p_on = day ? a.off_to_on_day : a.off_to_on_night;
      if (rng_.NextBool(p_on)) powered_on_ = true;
    }
  }

  // Busy/quiet Markov chain: per-step flip probability chosen so the
  // expected dwell time matches mean_dwell.
  const double steps_per_dwell =
      ToSeconds(a.mean_dwell) / ToSeconds(spec_.fingerprint_interval);
  const double p_flip = steps_per_dwell > 0.0
                            ? std::min(1.0, 1.0 / steps_per_dwell)
                            : 1.0;
  if (rng_.NextBool(p_flip)) busy_ = !busy_;
}

void TraceSynthesizer::ApplyChurn(SimDuration dt) {
  const double activity =
      ActivityFactor() * ToSeconds(dt) / ToSeconds(spec_.fingerprint_interval);
  if (activity <= 0.0) return;

  // Effective rewrite probability per region for this step.
  std::vector<double> p_eff(rewrite_probability_.size());
  for (std::size_t r = 0; r < p_eff.size(); ++r) {
    p_eff[r] = 1.0 - std::pow(1.0 - rewrite_probability_[r], activity);
  }

  const std::uint64_t n = memory_->PageCount();
  const auto stable_region =
      static_cast<std::uint32_t>(spec_.regions.size());
  for (vm::PageId page = 0; page < n; ++page) {
    const std::uint32_t region = region_of_page_[page];
    if (region == stable_region) continue;
    if (rng_.NextBool(p_eff[region])) {
      memory_->WritePage(page, DrawContentSeed(page));
    }
  }

  // Content remapping: swap page pairs so content moves without changing.
  // Stable pages are exempt (pinned kernel text does not wander).
  const double remap_pages =
      spec_.remap_fraction_per_step * activity * static_cast<double>(n);
  const auto swaps = static_cast<std::uint64_t>(remap_pages / 2.0);
  for (std::uint64_t s = 0; s < swaps; ++s) {
    const vm::PageId a = rng_.NextBelow(n);
    const vm::PageId b = rng_.NextBelow(n);
    if (a == b || region_of_page_[a] == stable_region ||
        region_of_page_[b] == stable_region) {
      continue;
    }
    const std::uint64_t seed_a = memory_->Seed(a);
    memory_->WritePage(a, memory_->Seed(b));
    memory_->WritePage(b, seed_a);
  }
}

void TraceSynthesizer::Step() {
  UpdatePowerAndBurst();
  ApplyChurn(spec_.fingerprint_interval);
  now_ += spec_.fingerprint_interval;
}

fp::Trace TraceSynthesizer::Synthesize() {
  fp::Trace trace(spec_.name);
  const auto steps = static_cast<std::uint64_t>(
      ToSeconds(spec_.trace_duration) /
      ToSeconds(spec_.fingerprint_interval));
  // Capture at t=0 first (machines are on at trace start), then step.
  trace.Append(fp::Capture(*memory_, now_));
  for (std::uint64_t i = 0; i < steps; ++i) {
    Step();
    if (powered_on_) {
      trace.Append(fp::Capture(*memory_, now_));
    }
  }
  return trace;
}

fp::Trace SynthesizeTrace(const MachineSpec& spec) {
  return TraceSynthesizer(spec).Synthesize();
}

}  // namespace vecycle::traces
