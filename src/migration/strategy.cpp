#include "migration/strategy.hpp"

namespace vecycle::migration {

const char* ToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kFull:
      return "full";
    case Strategy::kDedup:
      return "dedup";
    case Strategy::kDirtyTracking:
      return "dirty";
    case Strategy::kHashes:
      return "hashes";
    case Strategy::kDirtyPlusDedup:
      return "dirty+dedup";
    case Strategy::kHashesPlusDedup:
      return "hashes+dedup";
  }
  return "?";
}

}  // namespace vecycle::migration
