#include "migration/strategy.hpp"

#include "common/check.hpp"

namespace vecycle::migration {

const char* ToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kFull:
      return "full";
    case Strategy::kDedup:
      return "dedup";
    case Strategy::kDirtyTracking:
      return "dirty";
    case Strategy::kHashes:
      return "hashes";
    case Strategy::kDirtyPlusDedup:
      return "dirty+dedup";
    case Strategy::kHashesPlusDedup:
      return "hashes+dedup";
  }
  VEC_CHECK_MSG(false, "ToString: unenumerated migration strategy");
}

}  // namespace vecycle::migration
