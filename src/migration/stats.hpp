// Migration outcome statistics — the quantities the paper's evaluation
// reports: total migration time (initiation at the source until the VM
// runs at the destination, excluding destination setup and source
// checkpoint writing, §4.4), source send traffic, and per-mechanism page
// counts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace vecycle::migration {

struct MigrationStats {
  SimDuration total_time = SimDuration::zero();
  SimDuration downtime = SimDuration::zero();
  /// Destination setup: checkpoint scan + index build (not part of
  /// total_time, reported separately as the paper discusses).
  SimDuration setup_time = SimDuration::zero();
  std::uint32_t rounds = 0;

  /// Source -> destination payload, everything included (page data,
  /// checksum records, protocol frames).
  Bytes tx_bytes;
  /// Destination -> source bulk checksum exchange (§3.2); zero on the
  /// ping-pong fast path where the source already knows the set.
  Bytes bulk_exchange_bytes;
  /// Per-page query traffic (both directions) and count, when the
  /// HashExchangeMode::kPerPageQuery protocol variant is active.
  Bytes query_bytes;
  std::uint64_t query_count = 0;

  // Round-1 classification.
  std::uint64_t pages_sent_full = 0;       ///< full content transferred
  std::uint64_t pages_sent_checksum = 0;   ///< checksum-only records
  std::uint64_t pages_dup_ref = 0;         ///< dedup cache references
  std::uint64_t pages_skipped_clean = 0;   ///< dirty-tracking skips

  /// Pages re-sent in rounds >= 2 (dirtied while copying).
  std::uint64_t pages_resent_dirty = 0;

  // Destination-side behaviour for checksum-only records.
  std::uint64_t pages_matched_in_place = 0;   ///< local page already right
  std::uint64_t pages_from_checkpoint = 0;    ///< random checkpoint read

  // Fault-recovery accounting (all zero in fault-free runs).
  /// Checksum-only pages the destination could not satisfy locally
  /// (checkpoint rot/truncation or a failed block read) and the source
  /// re-sent with full content — the per-page graceful-degradation path.
  std::uint64_t fallback_pages = 0;
  /// Injected disk-error windows hit by this migration's reads.
  std::uint64_t disk_read_errors = 0;
  /// Prior aborted attempts of this migration (scheduler retries); the
  /// stats describe the attempt that completed.
  std::uint64_t retries = 0;

  Bytes source_hashed_bytes;
  Bytes dest_hashed_bytes;

  /// Wire-compression accounting: original vs on-wire size of full-page
  /// payloads (equal when compression is disabled — both stay zero).
  Bytes payload_bytes_original;
  Bytes payload_bytes_on_wire;

  // Transfer-stack accounting (docs/migration.md "Transfer stack").
  /// Forward channels the session used (1 unless multifd was enabled).
  std::uint32_t multifd_channels = 1;
  /// Per-channel source -> destination payload; sums to tx_bytes. One
  /// entry per forward channel, indexed by stream.
  std::vector<Bytes> tx_bytes_per_channel;
  /// Pages shipped as XBZRLE-style deltas against the destination's
  /// baseline (DeltaConfig), and their original vs encoded sizes. Delta
  /// pages are a subset of pages_sent_full / pages_resent_dirty (they are
  /// still content sends), so the round-1 conservation invariant holds
  /// unchanged.
  std::uint64_t pages_sent_delta = 0;
  Bytes delta_bytes_original;
  Bytes delta_bytes_on_wire;
  /// Delta records the destination rejected because its local content did
  /// not match the encoded baseline (rotten recycled checkpoint); each
  /// fell back to a full-content resend and is included in fallback_pages.
  std::uint64_t pages_delta_fallback = 0;
  /// Auto-converge: rounds during which the guest was throttled, and the
  /// strongest throttle applied (0 = never throttled).
  std::uint64_t throttle_rounds = 0;
  double max_throttle = 0.0;

  /// Field-wise equality — the caching-invariance tests assert that two
  /// runs of the same scenario report identical simulated quantities.
  friend bool operator==(const MigrationStats&,
                         const MigrationStats&) = default;

  [[nodiscard]] std::uint64_t Round1Pages() const {
    return pages_sent_full + pages_sent_checksum + pages_dup_ref +
           pages_skipped_clean;
  }

  /// On-wire / original payload size. 1.0 when no payload was eligible for
  /// compression (compression off, or every page travelled as checksum,
  /// dedup reference or zero page) — dividing by payload_bytes_original
  /// there would be 0/0.
  [[nodiscard]] double CompressionRatio() const {
    if (payload_bytes_original.count == 0) return 1.0;
    return static_cast<double>(payload_bytes_on_wire.count) /
           static_cast<double>(payload_bytes_original.count);
  }

  /// Effective send rate tx_bytes / total_time. 0 when total_time is zero
  /// (a degenerate instant migration, e.g. every page skipped) rather
  /// than a division by zero.
  [[nodiscard]] double ThroughputBytesPerSecond() const {
    const double seconds = ToSeconds(total_time);
    if (seconds <= 0.0) return 0.0;
    return static_cast<double>(tx_bytes.count) / seconds;
  }
};

}  // namespace vecycle::migration
