// Migration destination actor (§3.3, Listing 1).
//
// Before the migration the destination initializes guest RAM from the
// local checkpoint (sequential scan, one checksum per 4 KiB block recorded
// into the sorted index). During the migration it consumes page batches:
// full pages are written to RAM; checksum-only records are verified
// against the locally initialized page and, on mismatch, satisfied by a
// random read from the checkpoint file at the offset the index returns.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "migration/config.hpp"
#include "migration/stats.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "sim/checksum_engine.hpp"
#include "storage/checkpoint_store.hpp"
#include "storage/checksum_index.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::migration {

class DestinationActor {
 public:
  struct Params {
    sim::Simulator* simulator = nullptr;
    net::Channel* reply = nullptr;  ///< destination -> source channel
    sim::ChecksumEngine* cpu = nullptr;
    storage::CheckpointStore* store = nullptr;  ///< nullable
    storage::VmId vm_id;
    MigrationConfig config;
    std::uint64_t page_count = 0;
    vm::ContentMode mode = vm::ContentMode::kSeedOnly;
    /// Session this actor belongs to; every delivered message must carry
    /// the same tag (cross-session routing check on shared links).
    std::uint64_t session_id = 0;
    /// Forward channels the source stripes over (multifd). Round-end and
    /// done markers arrive once per channel; the destination acts only
    /// after all of them have landed (QEMU's MULTIFD_FLUSH semantics).
    std::uint32_t forward_channels = 1;
  };

  explicit DestinationActor(Params params);

  /// Pre-migration setup. If the strategy uses a checkpoint and one exists
  /// locally, books the sequential image scan (and, for content-hash
  /// strategies, the per-block checksum computation) and restores the
  /// image into guest RAM. When `send_bulk_hashes`, ships the distinct
  /// digest set to the source at setup completion (§3.2's non-ping-pong
  /// path). Returns the setup completion time.
  SimTime Prepare(SimTime start, bool send_bulk_hashes);

  /// Channel receiver: dispatch on message type. Rvalue to match the
  /// channel's zero-copy delivery; batches are applied in place.
  void OnMessage(net::Message&& message, SimTime arrival);

  /// Invoked once, when the final round has been fully applied and the VM
  /// runs at the destination.
  std::function<void(SimTime)> on_complete;

  [[nodiscard]] vm::GuestMemory& Memory() { return *memory_; }

  /// The checkpoint's checksum index, for the engine to answer per-page
  /// queries from (HashExchangeMode::kPerPageQuery). Empty when no
  /// checkpoint was restored.
  [[nodiscard]] const storage::ChecksumIndex& Index() const {
    return index_;
  }
  [[nodiscard]] std::unique_ptr<vm::GuestMemory> TakeMemory() {
    return std::move(memory_);
  }
  [[nodiscard]] bool RestoredFromCheckpoint() const {
    return restored_from_checkpoint_;
  }
  [[nodiscard]] SimDuration SetupTime() const { return setup_time_; }

  // Statistics merged into MigrationStats by the engine.
  [[nodiscard]] std::uint64_t PagesMatchedInPlace() const {
    return pages_matched_in_place_;
  }
  [[nodiscard]] std::uint64_t PagesFromCheckpoint() const {
    return pages_from_checkpoint_;
  }
  /// Pages this actor could not satisfy locally and requested back in
  /// full: checksum-only records (damaged checkpoint or failed block
  /// read) plus delta records whose baseline did not match.
  [[nodiscard]] std::uint64_t PagesFallback() const {
    return fallback_requested_ + delta_fallback_requested_;
  }
  /// The checksum-only share of PagesFallback() — the term of the
  /// checksum-record conservation equation.
  [[nodiscard]] std::uint64_t PagesChecksumFallback() const {
    return fallback_requested_;
  }
  /// The delta share of PagesFallback(): delta records rejected because
  /// local content did not equal the encoded baseline (checkpoint rot).
  [[nodiscard]] std::uint64_t PagesDeltaFallback() const {
    return delta_fallback_requested_;
  }
  /// Injected disk-error windows hit by this migration's reads (setup
  /// scan retries + failed random block reads).
  [[nodiscard]] std::uint64_t DiskReadErrors() const {
    return disk_read_errors_;
  }
  [[nodiscard]] Bytes HashedBytes() const { return hashed_bytes_; }

 private:
  void ApplyBatch(const net::Message& message, SimTime arrival);
  void ApplyRecord(const net::PageRecord& record, SimTime arrival);
  /// Queues `page` for a kResendRequest (flushed at batch end);
  /// `from_delta` separates the delta-baseline rejections from the
  /// checksum-record fallbacks in the conservation accounting.
  void RequestResend(vm::PageId page, bool from_delta = false);
  /// Resumes the VM: send the done-ack and fire on_complete.
  void Complete(SimTime at);

  Params params_;
  std::unique_ptr<vm::GuestMemory> memory_;
  const storage::Checkpoint* checkpoint_ = nullptr;
  storage::ChecksumIndex index_;
  bool restored_from_checkpoint_ = false;
  SimDuration setup_time_ = SimDuration::zero();

  /// Completion time of the latest booked CPU/disk work; round acks and
  /// the final done-ack wait for it.
  SimTime work_done_ = kSimEpoch;

  std::uint64_t pages_matched_in_place_ = 0;
  std::uint64_t pages_from_checkpoint_ = 0;
  std::uint64_t fallback_requested_ = 0;
  std::uint64_t delta_fallback_requested_ = 0;
  std::uint64_t disk_read_errors_ = 0;
  Bytes hashed_bytes_;
  bool completed_ = false;

  /// Multifd round synchronization: markers seen for the round (or done
  /// phase) in progress, and the latest marker arrival.
  std::uint32_t round_end_seen_ = 0;
  std::uint32_t done_seen_ = 0;
  SimTime round_end_latest_ = kSimEpoch;

  /// Per-page graceful degradation: pages whose checksum-only record
  /// could not be satisfied, batched into one kResendRequest per applied
  /// batch; the migration cannot complete while any are outstanding.
  std::vector<vm::PageId> resend_pending_;
  std::uint64_t outstanding_resends_ = 0;
  bool done_pending_ = false;
  SimTime done_arrival_ = kSimEpoch;
};

}  // namespace vecycle::migration
