#include "migration/engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.hpp"
#include "migration/destination.hpp"
#include "migration/observe.hpp"
#include "migration/source.hpp"
#include "net/channel.hpp"
#include "storage/checkpoint.hpp"

namespace vecycle::migration {

const char* ToString(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kHashExchange:
      return "hash-exchange";
    case SessionPhase::kPreCopy:
      return "pre-copy";
    case SessionPhase::kStopAndCopy:
      return "stop-and-copy";
    case SessionPhase::kCheckpointWriteBack:
      return "checkpoint-write-back";
    case SessionPhase::kDone:
      return "done";
    case SessionPhase::kFailed:
      return "failed";
  }
  VEC_CHECK_MSG(false, "unknown SessionPhase");
}

void CompressionConfig::Validate() const {
  VEC_CHECK_MSG(mean_ratio > 0.0 && mean_ratio <= 1.0,
                "compression mean_ratio must be in (0, 1]");
  VEC_CHECK_MSG(ratio_jitter >= 0.0 && ratio_jitter <= 1.0,
                "compression ratio_jitter must be in [0, 1]");
  VEC_CHECK_MSG(compress_rate.bytes_per_second > 0.0,
                "compression compress_rate must be positive");
  VEC_CHECK_MSG(decompress_rate.bytes_per_second > 0.0,
                "compression decompress_rate must be positive");
}

void MultifdConfig::Validate() const {
  // enabled is a boolean toggle.
  VEC_CHECK_MSG(channels >= 1 && channels <= kMaxChannels,
                "multifd channels must be in [1, 16]");
}

void DeltaConfig::Validate() const {
  // enabled is a boolean toggle.
  VEC_CHECK_MSG(mean_ratio > 0.0 && mean_ratio <= 1.0,
                "delta mean_ratio must be in (0, 1]");
  VEC_CHECK_MSG(ratio_jitter >= 0.0 && ratio_jitter <= 1.0,
                "delta ratio_jitter must be in [0, 1]");
  VEC_CHECK_MSG(max_ratio > 0.0 && max_ratio <= 1.0,
                "delta max_ratio must be in (0, 1]");
  VEC_CHECK_MSG(encode_rate.bytes_per_second > 0.0,
                "delta encode_rate must be positive");
  VEC_CHECK_MSG(decode_rate.bytes_per_second > 0.0,
                "delta decode_rate must be positive");
}

void AutoConvergeConfig::Validate() const {
  // enabled is a boolean toggle.
  VEC_CHECK_MSG(initial_throttle >= 0.0 && initial_throttle < 1.0,
                "auto-converge initial_throttle must be in [0, 1)");
  VEC_CHECK_MSG(throttle_increment > 0.0 && throttle_increment < 1.0,
                "auto-converge throttle_increment must be in (0, 1)");
  VEC_CHECK_MSG(max_throttle > 0.0 && max_throttle < 1.0,
                "auto-converge max_throttle must be in (0, 1)");
  VEC_CHECK_MSG(max_throttle >= initial_throttle,
                "auto-converge max_throttle must be >= initial_throttle");
  VEC_CHECK_MSG(divergence_ratio > 0.0 &&
                    std::isfinite(divergence_ratio),
                "auto-converge divergence_ratio must be positive and "
                "finite");
  VEC_CHECK_MSG(trigger_rounds >= 1,
                "auto-converge trigger_rounds must be positive");
}

void MigrationConfig::Validate() const {
  // strategy, algorithm and hash_exchange are closed enums whose every
  // value is legal; audit and trace are boolean toggles.
  // stop_copy_threshold_pages accepts every value: 0 simply defers the
  // stop-and-copy decision to max_rounds.
  VEC_CHECK_MSG(batch_pages > 0, "batch_pages must be positive");
  VEC_CHECK_MSG(max_rounds >= 2, "need at least one copy + one stop round");
  VEC_CHECK_MSG(query_window > 0, "query_window must be positive");
  compression.Validate();
  multifd.Validate();
  delta.Validate();
  auto_converge.Validate();
  faults.Validate();
}

/// All the wiring of one migration: channels, the two actors, and the
/// completion latch. Kept behind a pimpl so MigrationSession's header
/// stays light.
struct MigrationSession::Impl {
  /// Audit channel-id scheme (see MigrationRun::session_id): the compact
  /// 2*id / 2*id+1 pair when multifd is inactive — unchanged from the
  /// pre-multifd engine — and a block of 2*kMaxChannels ids per session
  /// when several forward streams need distinct per-channel accounts.
  static std::uint32_t ForwardChannelBase(const MigrationRun& run) {
    if (run.config.multifd.ActiveChannels() > 1) {
      return static_cast<std::uint32_t>(run.session_id * 2 *
                                        MultifdConfig::kMaxChannels);
    }
    return static_cast<std::uint32_t>(2 * run.session_id);
  }
  static std::uint32_t BackwardChannelIdFor(const MigrationRun& run) {
    if (run.config.multifd.ActiveChannels() > 1) {
      return ForwardChannelBase(run) + 2 * MultifdConfig::kMaxChannels - 1;
    }
    return static_cast<std::uint32_t>(2 * run.session_id) + 1;
  }

  explicit Impl(MigrationRun run_in)
      : run(std::move(run_in)),
        forward_channel_id(ForwardChannelBase(run)),
        backward_channel_id(BackwardChannelIdFor(run)) {
    VEC_CHECK(run.simulator != nullptr);
    VEC_CHECK(run.link != nullptr);
    VEC_CHECK(run.source_memory != nullptr);
    VEC_CHECK(run.source.cpu != nullptr);
    VEC_CHECK(run.destination.cpu != nullptr);
    run.config.Validate();

    auto& simulator = *run.simulator;
    // Cross-shard wiring: the destination actor and the backward channel
    // live on the destination shard's simulator, so their events execute
    // on that shard's worker. Everything below that touches "the other
    // side" is either routed through a delivery executor or checked off.
    sim::Simulator& dest_sim =
        run.dest_simulator != nullptr ? *run.dest_simulator : simulator;
    const bool cross_shard = &dest_sim != &simulator;
    if (cross_shard) {
      VEC_CHECK_MSG(run.forward_delivery != nullptr &&
                        run.backward_delivery != nullptr,
                    "cross-shard session needs both delivery routes");
    }
    const SimTime t0 = std::max(simulator.Now(), run.start_at);
    start_time = t0;
    const sim::Direction reverse = run.direction == sim::Direction::kAtoB
                                       ? sim::Direction::kBtoA
                                       : sim::Direction::kAtoB;
    const std::uint32_t nchan = run.config.multifd.ActiveChannels();
    forwards.reserve(nchan);
    for (std::uint32_t k = 0; k < nchan; ++k) {
      auto channel = std::make_unique<net::Channel>(
          simulator, *run.link, run.direction, run.config.algorithm);
      channel->SetDeliveryExecutor(run.forward_delivery);
      channel->SetSessionTag(run.session_id);
      // Each multifd stream is its own TCP connection: serialization at
      // the link's line rate, injection paced by the per-stream window.
      // Single-channel sessions keep the classic Transmit path,
      // byte-identical to the pre-multifd engine.
      if (nchan > 1) channel->SetWindowPaced(true);
      forwards.push_back(std::move(channel));
    }
    backward = std::make_unique<net::Channel>(dest_sim, *run.link, reverse,
                                              run.config.algorithm);
    backward->SetDeliveryExecutor(run.backward_delivery);
    backward->SetSessionTag(run.session_id);

    // Lifetime token: every closure the session's channels and source
    // actor put on the shared event heap is guarded by it. Teardown (or
    // a fault abort) zeroes the token, so events already queued for this
    // session fire as no-ops instead of calling into freed actors — the
    // simulator may safely outlive any of its sessions.
    alive = std::make_shared<bool>(true);
    for (auto& channel : forwards) {
      channel->SetLifetime(alive);
      channel->SetFaultHandler([this](SimTime t) { OnFault(t); });
    }
    backward->SetLifetime(alive);
    backward->SetFaultHandler([this](SimTime t) { OnFault(t); });

    // Fault layer, same resolution and attach rules as the audit layer:
    // an explicit injector (the scheduler's fleet-wide plan) wins;
    // otherwise config.faults or VECYCLE_FAULTS creates a session-private
    // one. The link, stores and disks are shared resources — attach only
    // when free, detach what was attached.
    if (run.injector != nullptr) {
      injector = run.injector;
    } else if (run.config.faults.enabled) {
      owned_injector = std::make_unique<fault::FaultInjector>(run.config.faults);
      injector = owned_injector.get();
    } else if (fault::EnvEnabled()) {
      owned_injector =
          std::make_unique<fault::FaultInjector>(fault::FaultConfig::FromEnv());
      injector = owned_injector.get();
    }
    // A fault abort zeroes the lifetime token from whichever shard notices
    // the cut; with endpoints on two workers that write would race every
    // in-flight guard check. Faults stay supported within a shard.
    VEC_CHECK_MSG(!cross_shard || injector == nullptr,
                  "fault injection is not supported for cross-shard "
                  "sessions");
    if (injector != nullptr) {
      if (run.link->Injector() == nullptr) {
        run.link->SetFaultInjector(injector);
        attached_link_injector = true;
      }
      for (auto* store : {run.source.store, run.destination.store}) {
        if (store == nullptr) continue;
        if (store->Injector() == nullptr) {
          store->SetFaultInjector(injector);
          if (store == run.source.store) attached_source_store_injector = true;
          if (store == run.destination.store) attached_dest_store_injector = true;
        }
        if (store->Disk().Injector() == nullptr) {
          store->Disk().SetFaultInjector(injector);
          if (store == run.source.store) attached_source_disk_injector = true;
          if (store == run.destination.store) attached_dest_disk_injector = true;
        }
      }
    }

    // Audit layer: an explicit auditor always wins; otherwise the config
    // flag or VECYCLE_AUDIT creates a session-private one. The simulator
    // and destination store are shared resources, so the session attaches
    // to each only when no other auditor already observes it (first
    // session wins under gang migrations) and detaches what it attached.
    if (run.auditor != nullptr) {
      auditor = run.auditor;
    } else if (run.config.audit || audit::EnvEnabled()) {
      owned_auditor = std::make_unique<audit::SimAuditor>();
      auditor = owned_auditor.get();
    }
    dest_side_auditor =
        run.dest_auditor != nullptr ? run.dest_auditor : auditor;
    if (cross_shard && auditor != nullptr) {
      // Each worker must report into its own shard's auditor; one sink
      // fed from two threads would race (and scramble the fingerprint).
      VEC_CHECK_MSG(run.auditor != nullptr && run.dest_auditor != nullptr &&
                        run.auditor != run.dest_auditor,
                    "cross-shard session needs distinct per-shard "
                    "auditors");
    }
    if (auditor != nullptr) {
      for (std::uint32_t k = 0; k < nchan; ++k) {
        forwards[k]->SetAuditor(auditor, forward_channel_id + k);
      }
      backward->SetAuditor(dest_side_auditor, backward_channel_id);
      if (simulator.Auditor() == nullptr) {
        simulator.SetAuditor(auditor);
        attached_simulator = true;
      }
      if (cross_shard && dest_sim.Auditor() == nullptr) {
        dest_sim.SetAuditor(dest_side_auditor);
        attached_dest_simulator = true;
      }
      if (run.destination.store != nullptr &&
          run.destination.store->Auditor() == nullptr) {
        run.destination.store->SetAuditor(dest_side_auditor);
        attached_store = true;
      }
    }

    // Observability layer, same resolution and attach rules as the audit
    // layer: an explicit recorder wins; otherwise the config flag or
    // VECYCLE_TRACE routes to the process-wide recorder. Shared resources
    // (simulator, CPUs, store) are claimed only when free and released on
    // teardown; the channels and the source actor are session-owned.
    if (run.tracer != nullptr) {
      tracer = run.tracer;
    } else if (run.config.trace || obs::EnvEnabled()) {
      tracer = &obs::GlobalTrace();
    }
    // A session trace spans both endpoints, which here execute on two
    // workers; one recorder fed from both would race. Shard-level tracing
    // (per-shard recorders merged at the end) replaces it.
    VEC_CHECK_MSG(!cross_shard || tracer == nullptr,
                  "per-session tracing is not supported for cross-shard "
                  "sessions");
    if (run.metrics != nullptr) {
      metrics = run.metrics;
    } else if (tracer != nullptr) {
      metrics = &obs::GlobalMetrics();
    }
    if (tracer != nullptr) {
      label = run.vm_id;
      label += "/";
      label += ToString(run.config.strategy);
      if (run.session_id != 0) {
        label += "#";
        label += std::to_string(run.session_id);
      }
      const auto process = tracer->NewProcess(label);
      session_track = tracer->Track(process, "session");
      const auto source_track = tracer->Track(process, "source rounds");
      if (nchan == 1) {
        forwards[0]->SetTracer(tracer,
                               tracer->Track(process, "link to dest"));
      } else {
        // Per-channel byte timelines: each stream gets its own track and
        // a "ch<k>" label so the counters stay separate series instead of
        // aggregating into one misleading wire_bytes line.
        for (std::uint32_t k = 0; k < nchan; ++k) {
          const std::string ch = "ch" + std::to_string(k);
          forwards[k]->SetTracer(
              tracer, tracer->Track(process, "link to dest " + ch), ch);
        }
      }
      backward->SetTracer(tracer, tracer->Track(process, "link to source"));
      if (run.source.cpu->Tracer() == nullptr) {
        run.source.cpu->SetTracer(tracer, tracer->Track(process, "cpu source"));
        attached_source_cpu = true;
      }
      if (run.destination.cpu->Tracer() == nullptr) {
        run.destination.cpu->SetTracer(tracer,
                                       tracer->Track(process, "cpu dest"));
        attached_dest_cpu = true;
      }
      if (run.destination.store != nullptr &&
          run.destination.store->Tracer() == nullptr) {
        run.destination.store->SetTracer(tracer,
                                         tracer->Track(process, "store"));
        attached_store_tracer = true;
      }
      if (simulator.Tracer() == nullptr) {
        simulator.SetTracer(tracer, tracer->Track(process, "event loop"));
        attached_simulator_tracer = true;
      }
      trace_source_track = source_track;
    }

    DestinationActor::Params dest_params;
    dest_params.simulator = &dest_sim;
    dest_params.reply = backward.get();
    dest_params.cpu = run.destination.cpu;
    dest_params.store = run.destination.store;
    dest_params.vm_id = run.vm_id;
    dest_params.config = run.config;
    dest_params.page_count = run.source_memory->PageCount();
    dest_params.mode = run.source_memory->Mode();
    dest_params.session_id = run.session_id;
    dest_params.forward_channels = nchan;
    destination = std::make_unique<DestinationActor>(std::move(dest_params));

    // Event-heap capacity hint: round 1 pumps ~page_count/batch_pages
    // batches, each scheduling a pump continuation and a delivery.
    simulator.Reserve(static_cast<std::size_t>(
        run.source_memory->PageCount() / run.config.batch_pages + 16));

    const bool source_has_knowledge =
        (run.source_knowledge_set != nullptr &&
         !run.source_knowledge_set->Empty()) ||
        !run.source_knowledge.empty();
    const bool dest_has_checkpoint =
        UsesCheckpoint(run.config.strategy) &&
        run.destination.store != nullptr &&
        run.destination.store->Has(run.vm_id) &&
        run.destination.store->Peek(run.vm_id)->PageCount() ==
            run.source_memory->PageCount();
    // A geometry-matching checkpoint that fails its integrity check is
    // still usable for content-hash strategies — damaged pages degrade
    // per page to a resend over the wire — but never for dirty-tracking
    // skips, which restore skipped pages from it verbatim and would pin
    // rotten content into the reconstructed memory.
    const bool checkpoint_pristine =
        dest_has_checkpoint &&
        run.destination.store->Peek(run.vm_id)->IntegrityOk();
    if (!checkpoint_pristine ||
        run.departure_generations.size() !=
            run.source_memory->PageCount()) {
      // Dirty-tracking skips are only sound when the destination can
      // restore the skipped pages from a matching pristine checkpoint;
      // first visits, resized VMs and rotten images degrade to full.
      run.departure_generations.clear();
    }
    if (!dest_has_checkpoint) {
      // Checksum-only records can only be satisfied from a checkpoint;
      // any stale knowledge the VM carries about this destination is
      // useless (e.g. the checkpoint was evicted or the VM was resized).
      run.source_knowledge.clear();
      run.source_knowledge_set.reset();
    }
    if (!dest_has_checkpoint || !run.config.delta.enabled ||
        run.departure_seeds.size() != run.source_memory->PageCount()) {
      // Round-1 delta baselines exist only when the destination restores
      // this VM's checkpoint into guest RAM (rot is fine — the
      // destination verifies each baseline before patching); cold
      // destinations and resized VMs degrade to full sends.
      run.departure_seeds.clear();
    }

    // Hash-exchange planning (§3.2): needed only when the source lacks
    // knowledge of the destination's page set and the strategy consumes
    // it; the config then picks the bulk transfer or per-page queries.
    const bool wants_exchange = UsesContentHashes(run.config.strategy) &&
                                dest_has_checkpoint &&
                                !source_has_knowledge;
    const bool use_query =
        wants_exchange &&
        run.config.hash_exchange == HashExchangeMode::kPerPageQuery;
    // The query oracle consults the destination's index synchronously from
    // the source's event — a zero-latency cross-shard read that would
    // break both the lookahead contract and thread safety.
    VEC_CHECK_MSG(!cross_shard || !use_query,
                  "per-page hash queries are not supported for "
                  "cross-shard sessions");
    const bool need_bulk = wants_exchange && !use_query;

    SourceActor::Params src_params;
    src_params.simulator = &simulator;
    src_params.channels.reserve(forwards.size());
    for (auto& channel : forwards) {
      src_params.channels.push_back(channel.get());
    }
    src_params.cpu = run.source.cpu;
    src_params.memory = run.source_memory;
    src_params.workload = run.workload;
    src_params.config = run.config;
    src_params.dest_digests = std::move(run.source_knowledge);
    src_params.dest_digest_set = std::move(run.source_knowledge_set);
    src_params.departure_generations =
        std::move(run.departure_generations);
    src_params.departure_seeds = std::move(run.departure_seeds);
    src_params.shared_dedup_cache = run.shared_dedup_cache;
    src_params.session_id = run.session_id;
    src_params.tracer = tracer;
    src_params.trace_track = trace_source_track;
    src_params.lifetime = alive;

    if (use_query) {
      // §3.2's alternative scheme: the source asks the destination about
      // each page. The oracle consults the destination's checkpoint
      // index; the transport books the question/verdict frames.
      DestinationActor* dest_ptr = destination.get();
      src_params.query_oracle = [dest_ptr](const Digest128& digest) {
        return dest_ptr->Index().Contains(digest);
      };
      const std::uint64_t question_bytes =
          net::kRecordHeaderBytes + WireSizeBytes(run.config.algorithm);
      const std::uint64_t verdict_bytes = net::kRecordHeaderBytes + 1;
      src_params.query_transport = [link = run.link, dir = run.direction,
                                    reverse, question_bytes,
                                    verdict_bytes](SimTime earliest) {
        const SimTime asked =
            link->Transmit(dir, earliest, Bytes{question_bytes});
        return link->Transmit(reverse, asked, Bytes{verdict_bytes});
      };
    }
    source = std::make_unique<SourceActor>(std::move(src_params));

    for (auto& channel : forwards) {
      channel->SetReceiver([this](net::Message&& m, SimTime t) {
        destination->OnMessage(std::move(m), t);
      });
    }
    backward->SetReceiver([this](net::Message&& m, SimTime t) {
      source->OnMessage(std::move(m), t);
    });
    // State machine hooks: the actors report the milestones, the session
    // tracks the phase and decides when the whole migration is over. The
    // session is finished only when the destination runs the VM *and* the
    // source has seen the final done-ack — the done-ack arrival is the
    // last event of the migration, so a scheduler chaining sessions off
    // on_complete starts the next one at the same sim time the synchronous
    // facade would (serial equivalence).
    source->on_started = [this](SimTime) {
      AdvanceTo(SessionPhase::kPreCopy);
    };
    source->on_pause = [this](SimTime) {
      AdvanceTo(SessionPhase::kStopAndCopy);
    };
    source->on_finished = [this](SimTime t) {
      source_finished = true;
      finished_at = t;
      MaybeFinish();
    };
    destination->on_complete = [this](SimTime t) {
      completed_at = t;
      completed = true;
      MaybeFinish();
    };

    // Destination setup (§3.3), then kick off round 1.
    const SimTime setup_done = destination->Prepare(t0, need_bulk);
    if (!need_bulk) {
      source->Start(std::max(t0, setup_done));
    }
    // (When need_bulk, Start happens inside OnBulkHashes at arrival.)
  }

  ~Impl() {
    // Queued events of this session become no-ops before the actors and
    // channels they would call into are freed.
    if (alive != nullptr) *alive = false;
    if (attached_simulator) run.simulator->SetAuditor(nullptr);
    if (attached_dest_simulator) run.dest_simulator->SetAuditor(nullptr);
    if (attached_store) run.destination.store->SetAuditor(nullptr);
    if (attached_simulator_tracer) run.simulator->SetTracer(nullptr);
    if (attached_source_cpu) run.source.cpu->SetTracer(nullptr);
    if (attached_dest_cpu) run.destination.cpu->SetTracer(nullptr);
    if (attached_store_tracer) run.destination.store->SetTracer(nullptr);
    if (attached_link_injector) run.link->SetFaultInjector(nullptr);
    if (attached_source_store_injector) {
      run.source.store->SetFaultInjector(nullptr);
    }
    if (attached_dest_store_injector) {
      run.destination.store->SetFaultInjector(nullptr);
    }
    if (attached_source_disk_injector) {
      run.source.store->Disk().SetFaultInjector(nullptr);
    }
    if (attached_dest_disk_injector) {
      run.destination.store->Disk().SetFaultInjector(nullptr);
    }
  }

  /// Phases advance strictly forward; a backwards transition means the
  /// protocol misfired (e.g. a round started after the stop-and-copy).
  /// kFailed is terminal and reachable from everywhere except kDone.
  void AdvanceTo(SessionPhase next) {
    if (next == SessionPhase::kFailed) {
      VEC_CHECK_MSG(
          phase != SessionPhase::kDone && phase != SessionPhase::kFailed,
          "cannot fail a finished or already-failed session");
      phase = next;
      return;
    }
    VEC_CHECK_MSG(phase != SessionPhase::kFailed,
                  "failed migration session cannot advance");
    VEC_CHECK_MSG(static_cast<int>(next) > static_cast<int>(phase),
                  "migration session phase may only advance");
    phase = next;
  }

  /// An injected link outage cut one of this session's messages: abort
  /// the attempt. The VM keeps running at the source; every event the
  /// session still has queued is dropped via the lifetime token (partial
  /// destination state is simply abandoned — a retry starts clean).
  void OnFault(SimTime at) {
    if (failed || phase == SessionPhase::kDone) return;
    failed = true;
    failed_at = at;
    *alive = false;
    // Undo any auto-converge throttling: the VM keeps running (at full
    // speed) at the source while the scheduler decides on a retry.
    if (run.workload != nullptr) run.workload->SetThrottle(1.0);
    AdvanceTo(SessionPhase::kFailed);
    if (tracer != nullptr) {
      tracer->Instant(session_track, tracer->Name("aborted: link cut"), at);
    }
    if (run.on_failed) run.on_failed(at);
  }

  /// Called from both completion hooks; fires once, when the destination
  /// runs the VM and the source has seen the done-ack. Books the optional
  /// §4.4 source-side checkpoint write-back, then notifies the caller.
  void MaybeFinish() {
    if (failed) return;
    if (!completed || !source_finished) return;
    // Auto-converge ends with the migration: the guest runs unthrottled
    // at the destination.
    if (run.workload != nullptr) run.workload->SetThrottle(1.0);
    // Warm the arrived memory's digest cache here, on the session's own
    // shard: Finalize() re-reads every page digest for the incoming-page
    // tracking and runs on the coordinator at the barrier in fleet
    // drains — without the warm-up that pass serially re-hashes the
    // whole fleet's memory. Pure host-side computation: no simulated
    // time, no audit events, so serial-mode output is unchanged.
    auto& arrived = destination->Memory();
    for (vm::PageId page = 0; page < arrived.PageCount(); ++page) {
      (void)arrived.PageDigest(page);
    }
    if (run.write_back_checkpoint && run.source.store != nullptr) {
      AdvanceTo(SessionPhase::kCheckpointWriteBack);
      run.source.store->Save(
          run.vm_id, storage::Checkpoint::CaptureFrom(*run.source_memory),
          completed_at);
    }
    AdvanceTo(SessionPhase::kDone);
    if (run.on_complete) run.on_complete(finished_at);
  }

  /// Run-level audit: conservation and end-state integrity, checked once
  /// the outcome totals exist. (Causality and checkpoint integrity were
  /// verified eagerly by the auditor as the run executed.)
  void AuditOutcome(const MigrationOutcome& outcome) const {
    const auto& stats = outcome.stats;
    const std::uint64_t page_count = run.source_memory->PageCount();

    // Page conservation: round 1 classifies every page into exactly one
    // mechanism — full send, checksum-only record, dedup reference, or
    // dirty-tracking skip.
    VEC_CHECK_MSG(stats.Round1Pages() == page_count,
                  "audit: round-1 page conservation violated (sent + "
                  "skipped-via-checksum + dedup + clean-skips != page "
                  "count)");
    // Every checksum-only record was satisfied at the destination either
    // by the locally initialized page, by a checkpoint read, or by the
    // per-page fallback (full content re-sent over the wire). Delta
    // fallbacks are a separate account — they never start as checksum
    // records.
    VEC_CHECK_MSG(stats.pages_matched_in_place + stats.pages_from_checkpoint +
                          destination->PagesChecksumFallback() ==
                      stats.pages_sent_checksum,
                  "audit: checksum-record conservation violated (matched "
                  "in place + restored from checkpoint + fallback != "
                  "checksum records sent)");
    // Both endpoints agree on the fallback set: pages the destination
    // requested (checksum misses + rejected deltas) equal pages the
    // source re-sent.
    VEC_CHECK_MSG(stats.fallback_pages == destination->PagesFallback(),
                  "audit: fallback pages served by source != fallback "
                  "pages requested by destination");
    // Wire conservation, per channel: bytes each forward stream booked on
    // the link equal the sum of the serialized message sizes the auditor
    // observed under that stream's channel id — and the per-channel
    // accounts sum to the session total.
    Bytes forward_total;
    for (std::size_t k = 0; k < forwards.size(); ++k) {
      VEC_CHECK_MSG(
          forwards[k]->PayloadSent() ==
              auditor->ChannelBytes(forward_channel_id +
                                    static_cast<std::uint32_t>(k)),
          "audit: forward wire bytes != sum of message sizes");
      forward_total += forwards[k]->PayloadSent();
    }
    VEC_CHECK_MSG(forward_total == stats.tx_bytes,
                  "audit: per-channel byte accounts do not sum to "
                  "tx_bytes");
    VEC_CHECK_MSG(backward->PayloadSent() ==
                      dest_side_auditor->ChannelBytes(backward_channel_id),
                  "audit: backward wire bytes != sum of message sizes");
    // End-state integrity: the reconstructed memory digests equal to the
    // source at pause time.
    VEC_CHECK_MSG(outcome.dest_memory->ContentFingerprint() ==
                      run.source_memory->ContentFingerprint(),
                  "audit: destination memory digest != source digest");

    // Fold the outcome into the auditor's fingerprint so the determinism
    // harness compares results, not just event shapes.
    auditor->OnScalar("session_id", run.session_id);
    auditor->OnScalar("rounds", stats.rounds);
    auditor->OnScalar("tx_bytes", stats.tx_bytes.count);
    auditor->OnScalar("total_ns",
                      static_cast<std::uint64_t>(stats.total_time.count()));
    auditor->OnScalar("downtime_ns",
                      static_cast<std::uint64_t>(stats.downtime.count()));
    auditor->OnScalar("memory_digest",
                      outcome.dest_memory->ContentFingerprint());
    auditor->OnScalar("fallback_pages", stats.fallback_pages);
    auditor->OnScalar("disk_read_errors", stats.disk_read_errors);
    auditor->OnScalar("retries", stats.retries);
    auditor->OnScalar("multifd_channels", stats.multifd_channels);
    auditor->OnScalar("delta_pages", stats.pages_sent_delta);
    auditor->OnScalar("throttle_rounds", stats.throttle_rounds);
  }

  MigrationOutcome Finalize() {
    if (failed) {
      throw MigrationFailed(
          "migration of " + run.vm_id + " (session " +
          std::to_string(run.session_id) + ", attempt " +
          std::to_string(run.attempt) +
          ") aborted by an injected link outage — no outcome to take");
    }
    VEC_CHECK_MSG(completed, "migration did not complete");
    VEC_CHECK_MSG(!finalized, "outcome already taken");
    finalized = true;

    // The reconstructed memory must match the source exactly.
    VEC_CHECK_MSG(destination->Memory().ContentEquals(*run.source_memory),
                  "destination memory diverged from source after migration");

    MigrationOutcome outcome;
    outcome.stats = source->Stats();
    outcome.stats.setup_time = destination->SetupTime();
    outcome.stats.total_time = completed_at - source->RoundOneStart();
    outcome.stats.downtime = completed_at - source->PauseTime();
    outcome.stats.tx_bytes = Bytes{};
    outcome.stats.tx_bytes_per_channel.clear();
    outcome.stats.tx_bytes_per_channel.reserve(forwards.size());
    for (const auto& channel : forwards) {
      outcome.stats.tx_bytes_per_channel.push_back(channel->PayloadSent());
      outcome.stats.tx_bytes += channel->PayloadSent();
    }
    outcome.stats.pages_matched_in_place =
        destination->PagesMatchedInPlace();
    outcome.stats.pages_from_checkpoint =
        destination->PagesFromCheckpoint();
    outcome.stats.pages_delta_fallback = destination->PagesDeltaFallback();
    outcome.stats.dest_hashed_bytes = destination->HashedBytes();
    outcome.stats.disk_read_errors = destination->DiskReadErrors();
    outcome.stats.retries = run.attempt;
    outcome.completed_at = completed_at;

    // Generation counters travel with the VM.
    outcome.dest_memory = destination->TakeMemory();
    outcome.dest_memory->SetGenerations(run.source_memory->Generations());

    // What the destination now knows: the digest set of the arrived
    // state — §3.2's incoming-page tracking, the source_knowledge of a
    // future return migration.
    auto& dest_memory = *outcome.dest_memory;
    outcome.incoming_digests.reserve(dest_memory.PageCount());
    for (vm::PageId page = 0; page < dest_memory.PageCount(); ++page) {
      outcome.incoming_digests.push_back(dest_memory.PageDigest(page));
    }
    std::sort(outcome.incoming_digests.begin(),
              outcome.incoming_digests.end());
    outcome.incoming_digests.erase(
        std::unique(outcome.incoming_digests.begin(),
                    outcome.incoming_digests.end()),
        outcome.incoming_digests.end());

    if (auditor != nullptr) AuditOutcome(outcome);
    if (tracer != nullptr) {
      // Durations only known now: the whole migration and the setup scan,
      // recorded retroactively on the session track (they would overlap
      // the per-round spans on the source lane).
      tracer->Span(session_track, tracer->Name("setup"), start_time,
                   start_time + outcome.stats.setup_time);
      tracer->Span(session_track, tracer->Name("migration"),
                   source->RoundOneStart(), completed_at);
      tracer->Span(session_track, tracer->Name("downtime"),
                   source->PauseTime(), completed_at);
    }
    if (metrics != nullptr) {
      std::string metric_label = label;
      if (metric_label.empty()) {
        metric_label = run.vm_id;
        if (run.session_id != 0) {
          metric_label += "#";
          metric_label += std::to_string(run.session_id);
        }
      }
      RecordMigrationStats(*metrics, metric_label, outcome.stats,
                           run.session_id);
    }
    return outcome;
  }

  MigrationRun run;
  /// Audit channel ids derive from the session id so that sessions sharing
  /// one auditor keep separate per-channel byte accounts (0/1 for the
  /// anonymous single-session default; forward stream k of a multifd
  /// session is forward_channel_id + k).
  const std::uint32_t forward_channel_id;
  const std::uint32_t backward_channel_id;
  std::vector<std::unique_ptr<net::Channel>> forwards;
  std::unique_ptr<net::Channel> backward;
  std::unique_ptr<DestinationActor> destination;
  std::unique_ptr<SourceActor> source;
  std::unique_ptr<audit::SimAuditor> owned_auditor;
  audit::SimAuditor* auditor = nullptr;
  /// Where the destination's worker reports: run.dest_auditor for a
  /// cross-shard session, otherwise the session auditor itself.
  audit::SimAuditor* dest_side_auditor = nullptr;
  bool attached_simulator = false;
  bool attached_dest_simulator = false;
  bool attached_store = false;

  std::unique_ptr<fault::FaultInjector> owned_injector;
  fault::FaultInjector* injector = nullptr;
  std::shared_ptr<bool> alive;
  bool attached_link_injector = false;
  bool attached_source_store_injector = false;
  bool attached_dest_store_injector = false;
  bool attached_source_disk_injector = false;
  bool attached_dest_disk_injector = false;

  obs::TraceRecorder* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  std::string label;
  obs::TrackId session_track = 0;
  obs::TrackId trace_source_track = 0;
  bool attached_simulator_tracer = false;
  bool attached_source_cpu = false;
  bool attached_dest_cpu = false;
  bool attached_store_tracer = false;

  SimTime start_time = kSimEpoch;
  SimTime completed_at = kSimEpoch;
  SimTime finished_at = kSimEpoch;
  SimTime failed_at = kSimEpoch;
  SessionPhase phase = SessionPhase::kHashExchange;
  bool completed = false;
  bool source_finished = false;
  bool finalized = false;
  bool failed = false;
};

MigrationSession::MigrationSession(MigrationRun run)
    : impl_(std::make_unique<Impl>(std::move(run))) {}

MigrationSession::~MigrationSession() = default;

bool MigrationSession::Completed() const { return impl_->completed; }

bool MigrationSession::Failed() const { return impl_->failed; }

SessionPhase MigrationSession::Phase() const { return impl_->phase; }

std::uint64_t MigrationSession::Id() const { return impl_->run.session_id; }

MigrationOutcome MigrationSession::TakeOutcome() {
  return impl_->Finalize();
}

MigrationOutcome RunMigration(MigrationRun run) {
  auto* simulator = run.simulator;
  MigrationSession session(std::move(run));
  simulator->Run();
  return session.TakeOutcome();
}

}  // namespace vecycle::migration
