#include "migration/engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "migration/destination.hpp"
#include "migration/source.hpp"
#include "net/channel.hpp"

namespace vecycle::migration {

void MigrationConfig::Validate() const {
  VEC_CHECK_MSG(batch_pages > 0, "batch_pages must be positive");
  VEC_CHECK_MSG(max_rounds >= 2, "need at least one copy + one stop round");
  VEC_CHECK_MSG(query_window > 0, "query_window must be positive");
}

/// All the wiring of one migration: channels, the two actors, and the
/// completion latch. Kept behind a pimpl so MigrationSession's header
/// stays light.
struct MigrationSession::Impl {
  explicit Impl(MigrationRun run_in) : run(std::move(run_in)) {
    VEC_CHECK(run.simulator != nullptr);
    VEC_CHECK(run.link != nullptr);
    VEC_CHECK(run.source_memory != nullptr);
    VEC_CHECK(run.source.cpu != nullptr);
    VEC_CHECK(run.destination.cpu != nullptr);
    run.config.Validate();

    auto& simulator = *run.simulator;
    const SimTime t0 = simulator.Now();
    const sim::Direction reverse = run.direction == sim::Direction::kAtoB
                                       ? sim::Direction::kBtoA
                                       : sim::Direction::kAtoB;
    forward = std::make_unique<net::Channel>(simulator, *run.link,
                                             run.direction,
                                             run.config.algorithm);
    backward = std::make_unique<net::Channel>(simulator, *run.link, reverse,
                                              run.config.algorithm);

    DestinationActor::Params dest_params;
    dest_params.simulator = &simulator;
    dest_params.reply = backward.get();
    dest_params.cpu = run.destination.cpu;
    dest_params.store = run.destination.store;
    dest_params.vm_id = run.vm_id;
    dest_params.config = run.config;
    dest_params.page_count = run.source_memory->PageCount();
    dest_params.mode = run.source_memory->Mode();
    destination = std::make_unique<DestinationActor>(std::move(dest_params));

    const bool source_has_knowledge = !run.source_knowledge.empty();
    const bool dest_has_checkpoint =
        UsesCheckpoint(run.config.strategy) &&
        run.destination.store != nullptr &&
        run.destination.store->Has(run.vm_id) &&
        run.destination.store->Peek(run.vm_id)->PageCount() ==
            run.source_memory->PageCount() &&
        run.destination.store->Peek(run.vm_id)->IntegrityOk();
    if (!dest_has_checkpoint ||
        run.departure_generations.size() !=
            run.source_memory->PageCount()) {
      // Dirty-tracking skips are only sound when the destination can
      // restore the skipped pages from a matching checkpoint; first
      // visits and resized VMs degrade to full.
      run.departure_generations.clear();
    }
    if (!dest_has_checkpoint) {
      // Checksum-only records can only be satisfied from a checkpoint;
      // any stale knowledge the VM carries about this destination is
      // useless (e.g. the checkpoint was evicted or the VM was resized).
      run.source_knowledge.clear();
    }

    // Hash-exchange planning (§3.2): needed only when the source lacks
    // knowledge of the destination's page set and the strategy consumes
    // it; the config then picks the bulk transfer or per-page queries.
    const bool wants_exchange = UsesContentHashes(run.config.strategy) &&
                                dest_has_checkpoint &&
                                !source_has_knowledge;
    const bool use_query =
        wants_exchange &&
        run.config.hash_exchange == HashExchangeMode::kPerPageQuery;
    const bool need_bulk = wants_exchange && !use_query;

    SourceActor::Params src_params;
    src_params.simulator = &simulator;
    src_params.channel = forward.get();
    src_params.cpu = run.source.cpu;
    src_params.memory = run.source_memory;
    src_params.workload = run.workload;
    src_params.config = run.config;
    src_params.dest_digests = std::move(run.source_knowledge);
    src_params.departure_generations =
        std::move(run.departure_generations);
    src_params.shared_dedup_cache = run.shared_dedup_cache;

    if (use_query) {
      // §3.2's alternative scheme: the source asks the destination about
      // each page. The oracle consults the destination's checkpoint
      // index; the transport books the question/verdict frames.
      DestinationActor* dest_ptr = destination.get();
      src_params.query_oracle = [dest_ptr](const Digest128& digest) {
        return dest_ptr->Index().Contains(digest);
      };
      const std::uint64_t question_bytes =
          net::kRecordHeaderBytes + WireSizeBytes(run.config.algorithm);
      const std::uint64_t verdict_bytes = net::kRecordHeaderBytes + 1;
      src_params.query_transport = [link = run.link, dir = run.direction,
                                    reverse, question_bytes,
                                    verdict_bytes](SimTime earliest) {
        const SimTime asked =
            link->Transmit(dir, earliest, Bytes{question_bytes});
        return link->Transmit(reverse, asked, Bytes{verdict_bytes});
      };
    }
    source = std::make_unique<SourceActor>(std::move(src_params));

    forward->SetReceiver([this](const net::Message& m, SimTime t) {
      destination->OnMessage(m, t);
    });
    backward->SetReceiver([this](const net::Message& m, SimTime t) {
      source->OnMessage(m, t);
    });
    destination->on_complete = [this](SimTime t) {
      completed_at = t;
      completed = true;
    };

    // Destination setup (§3.3), then kick off round 1.
    const SimTime setup_done = destination->Prepare(t0, need_bulk);
    if (!need_bulk) {
      source->Start(std::max(t0, setup_done));
    }
    // (When need_bulk, Start happens inside OnBulkHashes at arrival.)
  }

  MigrationOutcome Finalize() {
    VEC_CHECK_MSG(completed, "migration did not complete");
    VEC_CHECK_MSG(!finalized, "outcome already taken");
    finalized = true;

    // The reconstructed memory must match the source exactly.
    VEC_CHECK_MSG(destination->Memory().ContentEquals(*run.source_memory),
                  "destination memory diverged from source after migration");

    MigrationOutcome outcome;
    outcome.stats = source->Stats();
    outcome.stats.setup_time = destination->SetupTime();
    outcome.stats.total_time = completed_at - source->RoundOneStart();
    outcome.stats.downtime = completed_at - source->PauseTime();
    outcome.stats.tx_bytes = forward->PayloadSent();
    outcome.stats.pages_matched_in_place =
        destination->PagesMatchedInPlace();
    outcome.stats.pages_from_checkpoint =
        destination->PagesFromCheckpoint();
    outcome.stats.dest_hashed_bytes = destination->HashedBytes();
    outcome.completed_at = completed_at;

    // Generation counters travel with the VM.
    outcome.dest_memory = destination->TakeMemory();
    outcome.dest_memory->SetGenerations(run.source_memory->Generations());

    // What the destination now knows: the digest set of the arrived
    // state — §3.2's incoming-page tracking, the source_knowledge of a
    // future return migration.
    auto& dest_memory = *outcome.dest_memory;
    outcome.incoming_digests.reserve(dest_memory.PageCount());
    for (vm::PageId page = 0; page < dest_memory.PageCount(); ++page) {
      outcome.incoming_digests.push_back(dest_memory.PageDigest(page));
    }
    std::sort(outcome.incoming_digests.begin(),
              outcome.incoming_digests.end());
    outcome.incoming_digests.erase(
        std::unique(outcome.incoming_digests.begin(),
                    outcome.incoming_digests.end()),
        outcome.incoming_digests.end());
    return outcome;
  }

  MigrationRun run;
  std::unique_ptr<net::Channel> forward;
  std::unique_ptr<net::Channel> backward;
  std::unique_ptr<DestinationActor> destination;
  std::unique_ptr<SourceActor> source;
  SimTime completed_at = kSimEpoch;
  bool completed = false;
  bool finalized = false;
};

MigrationSession::MigrationSession(MigrationRun run)
    : impl_(std::make_unique<Impl>(std::move(run))) {}

MigrationSession::~MigrationSession() = default;

bool MigrationSession::Completed() const { return impl_->completed; }

MigrationOutcome MigrationSession::TakeOutcome() {
  return impl_->Finalize();
}

MigrationOutcome RunMigration(MigrationRun run) {
  auto* simulator = run.simulator;
  MigrationSession session(std::move(run));
  simulator->Run();
  return session.TakeOutcome();
}

}  // namespace vecycle::migration
