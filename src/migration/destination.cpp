#include "migration/destination.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace vecycle::migration {

DestinationActor::DestinationActor(Params params)
    : params_(std::move(params)) {
  VEC_CHECK(params_.simulator != nullptr);
  VEC_CHECK(params_.reply != nullptr);
  VEC_CHECK(params_.cpu != nullptr);
  VEC_CHECK(params_.page_count > 0);
  memory_ = std::make_unique<vm::GuestMemory>(
      Pages(params_.page_count), params_.mode, params_.config.algorithm);
}

SimTime DestinationActor::Prepare(SimTime start, bool send_bulk_hashes) {
  SimTime ready = start;

  const bool wants_checkpoint = UsesCheckpoint(params_.config.strategy);
  const bool geometry_matches =
      params_.store != nullptr && params_.store->Has(params_.vm_id) &&
      params_.store->Peek(params_.vm_id)->PageCount() == params_.page_count;
  if (wants_checkpoint && params_.store != nullptr &&
      params_.store->Has(params_.vm_id) && !geometry_matches) {
    // The VM was resized since it last left this host; its old checkpoint
    // cannot seed the new geometry. Drop it and run a cold migration.
    params_.store->Drop(params_.vm_id);
  }
  const bool integrity_ok =
      geometry_matches &&
      params_.store->Peek(params_.vm_id)->IntegrityOk();
  if (wants_checkpoint && geometry_matches && !integrity_ok) {
    // Latent disk corruption caught by the image digest during the §3.3
    // scan: trusting the checkpoint would reconstruct wrong memory, so
    // the migration falls back to a cold transfer.
    params_.store->Drop(params_.vm_id);
  }
  if (wants_checkpoint && geometry_matches && integrity_ok) {
    // Sequential scan of the image (disk) pipelined with per-block
    // checksum computation (CPU); the slower of the two gates readiness.
    const auto load = params_.store->Load(params_.vm_id, start);
    checkpoint_ = load.checkpoint;
    ready = load.ready_at;
    if (UsesContentHashes(params_.config.strategy)) {
      const Bytes image = checkpoint_->SizeOnDisk();
      const SimTime hashed =
          params_.cpu->Hash(start, image, params_.config.algorithm);
      hashed_bytes_ += image;
      ready = std::max(ready, hashed);
      index_ = storage::ChecksumIndex::Build(*checkpoint_,
                                             params_.config.algorithm);
    }
    checkpoint_->RestoreInto(*memory_);
    restored_from_checkpoint_ = true;
  }

  setup_time_ = ready - start;
  work_done_ = ready;

  if (send_bulk_hashes) {
    VEC_CHECK_MSG(!index_.Empty(),
                  "bulk hash exchange requires a checkpoint index");
    net::Message bulk;
    bulk.type = net::MessageType::kBulkHashes;
    bulk.bulk_hashes = index_.DistinctDigestList();
    params_.reply->Send(std::move(bulk), ready);
  }
  return ready;
}

void DestinationActor::OnMessage(net::Message&& message, SimTime arrival) {
  VEC_CHECK_MSG(message.session == params_.session_id,
                "message routed to the wrong migration session (destination)");
  switch (message.type) {
    case net::MessageType::kPageBatch:
      ApplyBatch(message, arrival);
      break;
    case net::MessageType::kRoundEnd: {
      net::Message ack;
      ack.type = net::MessageType::kRoundAck;
      ack.round = message.round;
      params_.reply->Send(std::move(ack), std::max(arrival, work_done_));
      break;
    }
    case net::MessageType::kDone: {
      VEC_CHECK_MSG(!completed_, "duplicate done message");
      completed_ = true;
      const SimTime resume = std::max(arrival, work_done_);
      net::Message ack;
      ack.type = net::MessageType::kDoneAck;
      params_.reply->Send(std::move(ack), resume);
      if (on_complete) on_complete(resume);
      break;
    }
    case net::MessageType::kBulkHashes:
    case net::MessageType::kRoundAck:
    case net::MessageType::kDoneAck:
      VEC_CHECK_MSG(false, "unexpected message at migration destination");
  }
}

void DestinationActor::ApplyBatch(const net::Message& message,
                                  SimTime arrival) {
  VEC_CHECK_MSG(!completed_, "page batch after done");
  std::uint64_t decompress_bytes = 0;
  for (const auto& record : message.records) {
    if (record.has_payload && record.payload_wire_bytes < kPageSize) {
      decompress_bytes += kPageSize;  // inflate back to the full page
    }
    ApplyRecord(record, arrival);
  }
  if (decompress_bytes > 0) {
    const SimTime done = params_.cpu->Work(
        std::max(arrival, work_done_), Bytes{decompress_bytes},
        params_.config.compression.decompress_rate);
    work_done_ = std::max(work_done_, done);
  }
}

void DestinationActor::ApplyRecord(const net::PageRecord& record,
                                   SimTime arrival) {
  VEC_CHECK_MSG(record.page < memory_->PageCount(),
                "page record out of range");

  if (record.has_payload || record.is_dup_ref || record.is_zero) {
    // Full content (directly, via the dedup cache, or the implicit zero
    // page). Memory writes are free at simulation granularity.
    memory_->WritePage(record.page, record.content_seed);
    return;
  }

  // Checksum-only record — Listing 1. Verify the locally initialized page
  // first (one 4 KiB checksum), then fall back to the checkpoint.
  const SimTime hashed = params_.cpu->Hash(
      std::max(arrival, work_done_), Bytes{kPageSize},
      params_.config.algorithm);
  hashed_bytes_ += Bytes{kPageSize};
  work_done_ = std::max(work_done_, hashed);

  const Digest128 local = memory_->PageDigest(record.page);
  if (local == record.digest) {
    ++pages_matched_in_place_;
    return;
  }

  const auto offset = index_.Lookup(record.digest);
  VEC_CHECK_MSG(offset.has_value(),
                "checksum-only record for content absent at destination");
  VEC_CHECK(checkpoint_ != nullptr);
  const SimTime read =
      params_.store->ReadBlock(std::max(arrival, work_done_));
  work_done_ = std::max(work_done_, read);
  const std::uint64_t seed = checkpoint_->SeedAt(*offset);
  // Cross-check the protocol invariant: the checkpoint block the index
  // points at really carries the content the source named.
  VEC_CHECK_MSG(checkpoint_->DigestAt(*offset, params_.config.algorithm) ==
                    record.digest,
                "checkpoint block does not carry the content its index "
                "entry promises");
  memory_->WritePage(record.page, seed);
  ++pages_from_checkpoint_;
}

}  // namespace vecycle::migration
