#include "migration/destination.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace vecycle::migration {

DestinationActor::DestinationActor(Params params)
    : params_(std::move(params)) {
  VEC_CHECK(params_.simulator != nullptr);
  VEC_CHECK(params_.reply != nullptr);
  VEC_CHECK(params_.cpu != nullptr);
  VEC_CHECK(params_.page_count > 0);
  VEC_CHECK_MSG(params_.forward_channels >= 1,
                "destination needs at least one forward channel");
  memory_ = std::make_unique<vm::GuestMemory>(
      Pages(params_.page_count), params_.mode, params_.config.algorithm);
}

SimTime DestinationActor::Prepare(SimTime start, bool send_bulk_hashes) {
  SimTime ready = start;

  const bool wants_checkpoint = UsesCheckpoint(params_.config.strategy);
  const bool geometry_matches =
      params_.store != nullptr && params_.store->Has(params_.vm_id) &&
      params_.store->Peek(params_.vm_id)->PageCount() == params_.page_count;
  if (wants_checkpoint && params_.store != nullptr &&
      params_.store->Has(params_.vm_id) && !geometry_matches) {
    // The VM was resized since it last left this host; its old checkpoint
    // cannot seed the new geometry. Drop it and run a cold migration.
    params_.store->Drop(params_.vm_id);
  }
  if (wants_checkpoint && geometry_matches) {
    // A checkpoint that fails the §3.3 integrity scan is still used: its
    // checksum index is built over the content actually on disk, so the
    // damaged pages simply miss every lookup and degrade per page to a
    // resend over the wire, instead of the whole migration going cold.
    // Sequential scan of the image (disk) pipelined with per-block
    // checksum computation (CPU); the slower of the two gates readiness.
    const auto load = params_.store->Load(params_.vm_id, start);
    checkpoint_ = load.checkpoint;
    disk_read_errors_ += load.read_retries;
    ready = load.ready_at;
    if (UsesContentHashes(params_.config.strategy)) {
      const Bytes image = checkpoint_->SizeOnDisk();
      const SimTime hashed =
          params_.cpu->Hash(start, image, params_.config.algorithm);
      hashed_bytes_ += image;
      ready = std::max(ready, hashed);
      index_ = storage::ChecksumIndex::Build(*checkpoint_,
                                             params_.config.algorithm);
    }
    checkpoint_->RestoreInto(*memory_);
    restored_from_checkpoint_ = true;
  }

  setup_time_ = ready - start;
  work_done_ = ready;

  if (send_bulk_hashes) {
    VEC_CHECK_MSG(!index_.Empty(),
                  "bulk hash exchange requires a checkpoint index");
    net::Message bulk;
    bulk.type = net::MessageType::kBulkHashes;
    bulk.bulk_hashes = index_.DistinctDigestList();
    params_.reply->Send(std::move(bulk), ready);
  }
  return ready;
}

void DestinationActor::OnMessage(net::Message&& message, SimTime arrival) {
  VEC_CHECK_MSG(message.session == params_.session_id,
                "message routed to the wrong migration session (destination)");
  switch (message.type) {
    case net::MessageType::kPageBatch:
      ApplyBatch(message, arrival);
      // A resend batch that retires the last outstanding request while a
      // done message already arrived completes the migration now.
      if (done_pending_ && outstanding_resends_ == 0 &&
          resend_pending_.empty()) {
        done_pending_ = false;
        Complete(std::max(arrival, done_arrival_));
      }
      break;
    case net::MessageType::kRoundEnd: {
      // One marker per forward channel (multifd); the round is over only
      // when the last channel's marker lands — its data is then fully
      // applied, because each channel delivers in FIFO order.
      ++round_end_seen_;
      round_end_latest_ = std::max(round_end_latest_, arrival);
      if (round_end_seen_ < params_.forward_channels) break;
      round_end_seen_ = 0;
      net::Message ack;
      ack.type = net::MessageType::kRoundAck;
      ack.round = message.round;
      params_.reply->Send(std::move(ack),
                          std::max(round_end_latest_, work_done_));
      round_end_latest_ = kSimEpoch;
      break;
    }
    case net::MessageType::kDone: {
      VEC_CHECK_MSG(!completed_ && !done_pending_, "duplicate done message");
      ++done_seen_;
      done_arrival_ = std::max(done_arrival_, arrival);
      if (done_seen_ < params_.forward_channels) break;
      if (outstanding_resends_ > 0 || !resend_pending_.empty()) {
        // Fallback pages are still in flight (FIFO puts their full
        // content behind this done): resume only once they land.
        done_pending_ = true;
        break;
      }
      Complete(done_arrival_);
      break;
    }
    case net::MessageType::kBulkHashes:
    case net::MessageType::kRoundAck:
    case net::MessageType::kDoneAck:
    case net::MessageType::kResendRequest:
      VEC_CHECK_MSG(false, "unexpected message at migration destination");
  }
}

void DestinationActor::Complete(SimTime at) {
  completed_ = true;
  const SimTime resume = std::max(at, work_done_);
  net::Message ack;
  ack.type = net::MessageType::kDoneAck;
  params_.reply->Send(std::move(ack), resume);
  if (on_complete) on_complete(resume);
}

void DestinationActor::RequestResend(vm::PageId page, bool from_delta) {
  resend_pending_.push_back(page);
  if (from_delta) {
    ++delta_fallback_requested_;
  } else {
    ++fallback_requested_;
  }
}

void DestinationActor::ApplyBatch(const net::Message& message,
                                  SimTime arrival) {
  VEC_CHECK_MSG(!completed_, "page batch after done");
  std::uint64_t decompress_bytes = 0;
  std::uint64_t delta_decode_bytes = 0;
  for (const auto& record : message.records) {
    if (record.is_delta) {
      delta_decode_bytes += kPageSize;  // patch the baseline page
    } else if (record.has_payload && record.payload_wire_bytes < kPageSize) {
      decompress_bytes += kPageSize;  // inflate back to the full page
    }
    ApplyRecord(record, arrival);
  }
  if (decompress_bytes > 0) {
    const SimTime done = params_.cpu->Work(
        std::max(arrival, work_done_), Bytes{decompress_bytes},
        params_.config.compression.decompress_rate);
    work_done_ = std::max(work_done_, done);
  }
  if (delta_decode_bytes > 0) {
    const SimTime done = params_.cpu->Work(
        std::max(arrival, work_done_), Bytes{delta_decode_bytes},
        params_.config.delta.decode_rate);
    work_done_ = std::max(work_done_, done);
  }
  if (!resend_pending_.empty()) {
    // One request per applied batch: every page this batch could not
    // satisfy locally goes back to the source for full content.
    outstanding_resends_ += resend_pending_.size();
    net::Message request;
    request.type = net::MessageType::kResendRequest;
    request.resend_pages = std::move(resend_pending_);
    resend_pending_.clear();
    params_.reply->Send(std::move(request), std::max(arrival, work_done_));
  }
}

void DestinationActor::ApplyRecord(const net::PageRecord& record,
                                   SimTime arrival) {
  VEC_CHECK_MSG(record.page < memory_->PageCount(),
                "page record out of range");

  if (record.is_resend) {
    // Full content answering an earlier resend request.
    VEC_CHECK_MSG(outstanding_resends_ > 0,
                  "resend record without an outstanding request");
    --outstanding_resends_;
    memory_->WritePage(record.page, record.content_seed);
    return;
  }

  if (record.is_delta) {
    // XBZRLE-style delta: only applicable against the exact content the
    // source encoded it from. When the recycled checkpoint rotted, the
    // restored page differs from the source's departure-time view — the
    // baseline check fails and the page degrades to the resend path
    // instead of silently patching the wrong bytes.
    if (memory_->Seed(record.page) != record.baseline_seed) {
      RequestResend(record.page, /*from_delta=*/true);
      return;
    }
    memory_->WritePage(record.page, record.content_seed);
    return;
  }

  if (record.has_payload || record.is_dup_ref || record.is_zero) {
    // Full content (directly, via the dedup cache, or the implicit zero
    // page). Memory writes are free at simulation granularity.
    memory_->WritePage(record.page, record.content_seed);
    return;
  }

  // Checksum-only record — Listing 1. Verify the locally initialized page
  // first (one 4 KiB checksum), then fall back to the checkpoint.
  const SimTime hashed = params_.cpu->Hash(
      std::max(arrival, work_done_), Bytes{kPageSize},
      params_.config.algorithm);
  hashed_bytes_ += Bytes{kPageSize};
  work_done_ = std::max(work_done_, hashed);

  const Digest128 local = memory_->PageDigest(record.page);
  if (local == record.digest) {
    ++pages_matched_in_place_;
    return;
  }

  const auto offset = index_.Lookup(record.digest);
  if (!offset.has_value()) {
    // Checkpoint rot/truncation: the index was built over the content
    // actually on disk, so a damaged page's true digest misses. Degrade
    // per page — request the full content back — instead of aborting.
    RequestResend(record.page);
    return;
  }
  VEC_CHECK(checkpoint_ != nullptr);
  bool read_error = false;
  // Chunk-aware read: in chunked mode the block routes through the SSD
  // tier for the chunk holding this checkpoint offset (hit, or a
  // backing-disk miss that promotes the chunk); flat mode books the
  // classic random 4 KiB read.
  const SimTime read = params_.store->ReadBlock(
      params_.vm_id, *offset, std::max(arrival, work_done_), &read_error);
  work_done_ = std::max(work_done_, read);
  if (read_error) {
    // The block read hit an injected disk-error window; the disk time is
    // spent but the data cannot be trusted.
    ++disk_read_errors_;
    RequestResend(record.page);
    return;
  }
  const std::uint64_t seed = checkpoint_->SeedAt(*offset);
  // Cross-check the protocol invariant: the checkpoint block the index
  // points at really carries the content the source named.
  VEC_CHECK_MSG(checkpoint_->DigestAt(*offset, params_.config.algorithm) ==
                    record.digest,
                "checkpoint block does not carry the content its index "
                "entry promises");
  memory_->WritePage(record.page, seed);
  ++pages_from_checkpoint_;
}

}  // namespace vecycle::migration
