#include "migration/observe.hpp"

#include <string>

namespace vecycle::migration {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

std::uint64_t Ns(SimDuration d) {
  return static_cast<std::uint64_t>(d.count());
}

}  // namespace

obs::MetricsRecord& RecordMigrationStats(obs::MetricsRegistry& registry,
                                         std::string_view label,
                                         const MigrationStats& stats,
                                         std::uint64_t session_id) {
  auto& record = registry.NewRecord(label, "precopy");
  record.Counter("session_id", session_id);
  record.Counter("rounds", stats.rounds);
  record.Counter("tx_bytes", stats.tx_bytes.count);
  record.Counter("bulk_exchange_bytes", stats.bulk_exchange_bytes.count);
  record.Counter("query_bytes", stats.query_bytes.count);
  record.Counter("query_count", stats.query_count);
  record.Counter("pages_sent_full", stats.pages_sent_full);
  record.Counter("pages_sent_checksum", stats.pages_sent_checksum);
  record.Counter("pages_dup_ref", stats.pages_dup_ref);
  record.Counter("pages_skipped_clean", stats.pages_skipped_clean);
  record.Counter("pages_resent_dirty", stats.pages_resent_dirty);
  record.Counter("pages_matched_in_place", stats.pages_matched_in_place);
  record.Counter("pages_from_checkpoint", stats.pages_from_checkpoint);
  record.Counter("fallback_pages", stats.fallback_pages);
  record.Counter("disk_read_errors", stats.disk_read_errors);
  record.Counter("retries", stats.retries);
  record.Counter("source_hashed_bytes", stats.source_hashed_bytes.count);
  record.Counter("dest_hashed_bytes", stats.dest_hashed_bytes.count);
  record.Counter("payload_bytes_original",
                 stats.payload_bytes_original.count);
  record.Counter("payload_bytes_on_wire", stats.payload_bytes_on_wire.count);
  record.Counter("multifd_channels", stats.multifd_channels);
  for (std::size_t k = 0; k < stats.tx_bytes_per_channel.size(); ++k) {
    record.Counter("tx_bytes_ch" + std::to_string(k),
                   stats.tx_bytes_per_channel[k].count);
  }
  record.Counter("pages_sent_delta", stats.pages_sent_delta);
  record.Counter("delta_bytes_original", stats.delta_bytes_original.count);
  record.Counter("delta_bytes_on_wire", stats.delta_bytes_on_wire.count);
  record.Counter("pages_delta_fallback", stats.pages_delta_fallback);
  record.Counter("throttle_rounds", stats.throttle_rounds);
  record.Counter("total_time_ns", Ns(stats.total_time));
  record.Counter("downtime_ns", Ns(stats.downtime));
  record.Counter("setup_time_ns", Ns(stats.setup_time));
  record.Counter("round1_pages", stats.Round1Pages());
  record.Gauge("total_time_s", ToSeconds(stats.total_time));
  record.Gauge("downtime_s", ToSeconds(stats.downtime));
  record.Gauge("setup_time_s", ToSeconds(stats.setup_time));
  record.Gauge("throughput_mib_per_s",
               stats.ThroughputBytesPerSecond() / kMiB);
  record.Gauge("compression_ratio", stats.CompressionRatio());
  record.Gauge("max_throttle", stats.max_throttle);
  return record;
}

obs::MetricsRecord& RecordPostCopyStats(obs::MetricsRegistry& registry,
                                        std::string_view label,
                                        const PostCopyStats& stats) {
  auto& record = registry.NewRecord(label, "postcopy");
  record.Counter("remote_faults", stats.remote_faults);
  record.Counter("pages_prefetched", stats.pages_prefetched);
  record.Counter("pages_from_checkpoint", stats.pages_from_checkpoint);
  record.Counter("tx_bytes", stats.tx_bytes.count);
  record.Counter("checksum_vector_bytes", stats.checksum_vector_bytes.count);
  record.Counter("downtime_ns", Ns(stats.downtime));
  record.Counter("time_to_residency_ns", Ns(stats.time_to_residency));
  record.Counter("total_stall_ns", Ns(stats.total_stall));
  record.Gauge("downtime_s", ToSeconds(stats.downtime));
  record.Gauge("time_to_residency_s", ToSeconds(stats.time_to_residency));
  record.Gauge("total_stall_s", ToSeconds(stats.total_stall));
  return record;
}

}  // namespace vecycle::migration
