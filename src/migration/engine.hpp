// Migration engine: wires a source and a destination actor over a
// simulated link, runs the event loop to completion, and reports the
// quantities the paper measures. This is the reproduction of the patched
// QEMU 2.0 of §3 — strategy kFull is the unmodified baseline, kHashes is
// VeCycle, the rest are the comparison techniques of Fig. 3/5.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "audit/audit.hpp"
#include "common/check.hpp"
#include "digest/digest_set.hpp"
#include "fault/fault.hpp"
#include "migration/config.hpp"
#include "migration/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/checksum_engine.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "storage/checkpoint_store.hpp"
#include "storage/checksum_index.hpp"
#include "vm/guest_memory.hpp"
#include "vm/workload.hpp"

namespace vecycle::migration {

/// Per-host resources a migration endpoint uses.
struct EndpointResources {
  sim::ChecksumEngine* cpu = nullptr;
  storage::CheckpointStore* store = nullptr;  ///< nullable at the source
};

struct MigrationRun {
  sim::Simulator* simulator = nullptr;
  sim::Link* link = nullptr;
  /// Direction of page flow on the link (source -> destination).
  sim::Direction direction = sim::Direction::kAtoB;

  /// Simulator of the destination endpoint when it lives on a different
  /// PDES shard than the source; null (the default) means both endpoints
  /// share `simulator` — the single-shard case, byte-identical to the
  /// pre-PDES engine. Cross-shard sessions additionally require the two
  /// delivery executors below and reject fault injection, per-page hash
  /// queries and per-session tracing (those seams would touch two shards
  /// inside one window).
  sim::Simulator* dest_simulator = nullptr;

  /// Where the forward channel (source -> destination) lands its delivery
  /// closures: the sharded simulator's mailbox route into the destination
  /// shard. Null schedules on `simulator` directly, as before.
  sim::DeliveryExecutor* forward_delivery = nullptr;
  /// Backward channel (destination -> source) route into the source shard.
  sim::DeliveryExecutor* backward_delivery = nullptr;

  /// Earliest simulated time the session may begin. The engine starts at
  /// max(simulator->Now(), start_at); the sharded scheduler passes the
  /// barrier time here, which is ahead of every shard clock, so both
  /// endpoints agree on t0. kSimEpoch (the default) defers to Now().
  SimTime start_at = kSimEpoch;

  /// Session identity under a scheduler. Distinguishes overlapping
  /// migrations everywhere they meet shared infrastructure: audit channel
  /// ids derive from it (2*id forward, 2*id+1 backward when multifd is
  /// inactive; with multifd, forward stream k is
  /// id * 2 * MultifdConfig::kMaxChannels + k and the backward channel
  /// takes the last slot of that block), wire messages are stamped with
  /// it, and trace/metrics labels carry a "#id" suffix when it is
  /// nonzero. 0 is the anonymous single-session default, which keeps the
  /// pre-session channel ids 0/1.
  std::uint64_t session_id = 0;

  /// When true, the session itself performs the paper's §4.4 post-copy
  /// bookkeeping step — writing the departed VM's checkpoint to the
  /// *source* host's store at completion — as its final state-machine
  /// phase. The synchronous facade leaves this off (the orchestrator does
  /// the write-back after RunMigration, as before); the scheduler turns it
  /// on so overlapping sessions book their checkpoint writes inside the
  /// shared event loop.
  bool write_back_checkpoint = false;

  /// Invoked exactly once, when the session reaches SessionPhase::kDone:
  /// the destination runs the VM, the source has seen the final done-ack,
  /// and the optional checkpoint write-back has been booked. TakeOutcome()
  /// is legal from inside the callback. The scheduler uses this to admit
  /// queued migrations the moment capacity frees up.
  std::function<void(SimTime)> on_complete;

  vm::GuestMemory* source_memory = nullptr;  ///< the live VM
  vm::Workload* workload = nullptr;          ///< nullable

  EndpointResources source;
  EndpointResources destination;

  storage::VmId vm_id = "vm";
  MigrationConfig config;

  /// Digest set the source already knows to exist at the destination
  /// (ping-pong fast path, learned during the previous incoming
  /// migration). Empty + content-hash strategy + checkpoint at the
  /// destination triggers the §3.2 bulk exchange instead.
  std::vector<Digest128> source_knowledge;

  /// Prebuilt membership set with the same meaning as source_knowledge;
  /// wins when non-null. VmInstance builds the set once per remembered
  /// host, so repeat migrations probe it with zero rebuild cost.
  std::shared_ptr<const DigestSet> source_knowledge_set;

  /// Generation counters at the moment the VM last left the destination
  /// (Miyakodori); empty means no dirty-tracking state.
  std::vector<std::uint64_t> departure_generations;

  /// Per-page content seeds at the moment the VM last left the
  /// destination — what its recycled checkpoint holds, the round-1
  /// baseline for delta encoding (DeltaConfig). The engine forwards this
  /// to the source only when the destination actually restores a
  /// geometry-matching checkpoint; empty disables round-1 deltas.
  std::vector<std::uint64_t> departure_seeds;

  /// Gang migration (VMFlock [4]): concurrent MigrationSessions from one
  /// host to one destination may share a sender-side dedup cache so
  /// cross-VM duplicates (shared OS images, libraries) travel once.
  /// The caller owns the map and its lifetime.
  std::unordered_map<std::uint64_t, std::uint64_t>* shared_dedup_cache =
      nullptr;

  /// External auditor to run this migration under (determinism harness /
  /// tests). When null and auditing is requested via config.audit or
  /// VECYCLE_AUDIT, the session creates a private one. The caller owns
  /// the auditor and must outlive the session.
  audit::SimAuditor* auditor = nullptr;

  /// Destination-side auditor for cross-shard sessions: the backward
  /// channel and the destination store report here, so every audit
  /// observation lands in the auditor of the shard whose worker made it.
  /// Null (single-shard) falls back to `auditor`. Cross-shard sessions
  /// with auditing must supply both, distinct — one auditor fed from two
  /// workers would race.
  audit::SimAuditor* dest_auditor = nullptr;

  /// External trace recorder / metrics registry (tests, custom sinks).
  /// When null and tracing is requested via config.trace or VECYCLE_TRACE,
  /// the session records into obs::GlobalTrace() / obs::GlobalMetrics().
  /// The caller owns both and must outlive the session.
  obs::TraceRecorder* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  /// External fault injector (the scheduler's mode: one plan shared by
  /// every attempt and session of a fleet). Wins over config.faults and
  /// VECYCLE_FAULTS; when null and either of those enables faults, the
  /// session creates a private injector. The caller owns the injector
  /// and must outlive the session.
  fault::FaultInjector* injector = nullptr;

  /// Invoked at most once, when an injected link outage cuts one of this
  /// session's messages: the session enters SessionPhase::kFailed, drops
  /// every in-flight event it owns, and will never complete. The
  /// scheduler uses this to release capacity and queue a retry.
  std::function<void(SimTime)> on_failed;

  /// Which attempt of a logical migration this session is (0 = first).
  /// Reported as MigrationStats::retries by the attempt that completes.
  std::uint64_t attempt = 0;
};

struct MigrationOutcome {
  MigrationStats stats;
  /// Reconstructed VM memory at the destination (content-identical to the
  /// source at pause time; generation counters carried over).
  std::unique_ptr<vm::GuestMemory> dest_memory;
  /// What the destination learned during the migration: the digest set of
  /// the VM's arrived state — the source_knowledge for the return trip.
  std::vector<Digest128> incoming_digests;
  SimTime completed_at = kSimEpoch;
};

/// Runs one migration to completion on `run.simulator` (which must not
/// have unrelated pending events). Verifies the protocol reconstructed the
/// memory exactly.
MigrationOutcome RunMigration(MigrationRun run);

/// Explicit state machine of one migration session. Phases advance
/// strictly in declaration order (kCheckpointWriteBack is skipped unless
/// MigrationRun::write_back_checkpoint is set); a transition that would
/// run backwards throws CheckFailure. kFailed is terminal and reachable
/// from every phase except kDone (an injected link outage aborts the
/// attempt; the VM keeps running at the source).
enum class SessionPhase {
  kHashExchange,        ///< destination setup + §3.2 bulk hash transfer
  kPreCopy,             ///< iterative copy rounds, guest still running
  kStopAndCopy,         ///< VM paused, final dirty set in flight
  kCheckpointWriteBack, ///< §4.4 source-side checkpoint write
  kDone,                ///< VM runs at the destination
  kFailed,              ///< aborted by an injected fault; VM still at source
};

const char* ToString(SessionPhase phase);

/// Thrown by TakeOutcome() on a session that aborted (SessionPhase::
/// kFailed): there is no outcome — the VM never moved. Callers that
/// retry (the scheduler) never call TakeOutcome on failed sessions;
/// the synchronous RunMigration facade lets this propagate.
class MigrationFailed : public CheckFailure {
 public:
  explicit MigrationFailed(const std::string& what) : CheckFailure(what) {}
};

/// A migration wired up but not yet driven to completion: construct one
/// (or several — they share links and CPUs and contend realistically,
/// batch by batch), run the shared simulator, then TakeOutcome().
///
///   MigrationSession a(run_a);
///   MigrationSession b(run_b);   // same link, opposite or same direction
///   simulator.Run();
///   auto outcome_a = a.TakeOutcome();
class MigrationSession {
 public:
  explicit MigrationSession(MigrationRun run);
  ~MigrationSession();

  MigrationSession(const MigrationSession&) = delete;
  MigrationSession& operator=(const MigrationSession&) = delete;

  /// True once the VM runs at the destination.
  [[nodiscard]] bool Completed() const;

  /// True once an injected fault aborted this session (terminal).
  [[nodiscard]] bool Failed() const;

  /// Where the session's state machine currently stands.
  [[nodiscard]] SessionPhase Phase() const;

  /// The MigrationRun::session_id this session was created with.
  [[nodiscard]] std::uint64_t Id() const;

  /// Collects statistics and the reconstructed memory; valid exactly once,
  /// after completion.
  MigrationOutcome TakeOutcome();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vecycle::migration
