// First-round traffic-reduction strategies (§3, §4.3, Fig. 3).
//
// Each technique identifies a distinct set of pages to transfer:
//   kFull            — QEMU 2.0 baseline: round 1 sends every page.
//   kDedup           — sender-side deduplication (CloudNet): identical
//                      content is sent once per migration; repeats become
//                      small cache references.
//   kDirtyTracking   — Miyakodori: pages not written since the VM last
//                      left the destination are skipped entirely (the
//                      destination restores them from its checkpoint); no
//                      checksums are computed.
//   kHashes          — VeCycle's content-based redundancy elimination:
//                      per-page strong checksums against the set of pages
//                      existing at the destination; matches travel as
//                      checksum-only records.
//   kDirtyPlusDedup  — Miyakodori with sender-side dedup on the dirty set.
//   kHashesPlusDedup — VeCycle with sender-side dedup on the miss set.
#pragma once

namespace vecycle::migration {

enum class Strategy {
  kFull,
  kDedup,
  kDirtyTracking,
  kHashes,
  kDirtyPlusDedup,
  kHashesPlusDedup,
};

const char* ToString(Strategy strategy);

/// Strategy consults the destination's available-page checksum set.
constexpr bool UsesContentHashes(Strategy s) {
  return s == Strategy::kHashes || s == Strategy::kHashesPlusDedup;
}

/// Strategy skips pages whose generation counter is unchanged since the VM
/// left the destination host.
constexpr bool UsesDirtyTracking(Strategy s) {
  return s == Strategy::kDirtyTracking || s == Strategy::kDirtyPlusDedup;
}

/// Strategy deduplicates repeated content within the migration stream.
constexpr bool UsesDedup(Strategy s) {
  return s == Strategy::kDedup || s == Strategy::kDirtyPlusDedup ||
         s == Strategy::kHashesPlusDedup;
}

/// Strategy benefits from a checkpoint at the destination (the destination
/// pre-loads guest RAM from it).
constexpr bool UsesCheckpoint(Strategy s) {
  return UsesContentHashes(s) || UsesDirtyTracking(s);
}

}  // namespace vecycle::migration
