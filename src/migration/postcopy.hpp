// Post-copy migration (related work [13], Hines & Gopalan), composed with
// VeCycle's checkpoint recycling.
//
// Pre-copy ships memory *before* switching execution; post-copy switches
// first (minimal downtime) and fetches memory afterwards: a background
// prefetcher streams pages in order while guest accesses to not-yet-
// resident pages stall on demand fetches across the network.
//
// The VeCycle twist this module adds: when the destination holds a stale
// checkpoint, the source ships the VM's current per-page checksum vector
// at switchover (16 B/page — the §3.2 bulk message in the reverse role).
// Every checkpoint page whose checksum still matches is instantly
// resident, so only the diverged pages can fault remotely. With Fig. 1
// similarities of 60-90%, that removes most of post-copy's notorious
// degradation window.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "audit/audit.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "migration/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/checksum_engine.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "storage/checkpoint_store.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::migration {

struct PostCopyConfig {
  DigestAlgorithm algorithm = DigestAlgorithm::kMd5;
  /// Reuse a checkpoint at the destination when one exists (the VeCycle
  /// composition); false gives classic cold post-copy.
  bool use_checkpoint = true;
  /// Device/CPU state shipped at switchover (QEMU sends a few MiB).
  Bytes switchover_state = MiB(4);
  /// Guest memory-touch rate at the destination while residency is
  /// incomplete; touches to non-resident pages become remote faults.
  double guest_touch_rate_per_s = 2000.0;
  /// Pages per background-prefetch batch.
  std::uint32_t prefetch_batch = 256;
  std::uint64_t touch_seed = 1;

  /// Runs this migration under the audit layer (src/audit): causality,
  /// residency conservation, and end-state digest checks. VECYCLE_AUDIT
  /// turns this on globally regardless of the flag.
  bool audit = false;

  /// Runs this migration under the observability layer (src/obs):
  /// switchover/residency spans, remaining-page counter, per-fault
  /// instants, and a metrics record of every PostCopyStats field.
  /// VECYCLE_TRACE turns this on globally regardless of the flag.
  bool trace = false;

  void Validate() const;
};

struct PostCopyStats {
  /// Execution gap at switchover (device state + resume) — post-copy's
  /// headline advantage over pre-copy.
  SimDuration downtime = SimDuration::zero();
  /// Switchover until every page is resident at the destination.
  SimDuration time_to_residency = SimDuration::zero();
  /// Guest stall time accumulated on remote demand faults — post-copy's
  /// notorious cost.
  SimDuration total_stall = SimDuration::zero();
  std::uint64_t remote_faults = 0;
  std::uint64_t pages_prefetched = 0;
  /// Pages that never crossed the network: checkpoint content whose
  /// checksum still matched.
  std::uint64_t pages_from_checkpoint = 0;
  Bytes tx_bytes;               ///< source -> destination
  Bytes checksum_vector_bytes;  ///< the switchover checksum shipment
};

struct PostCopyRun {
  sim::Simulator* simulator = nullptr;
  sim::Link* link = nullptr;
  sim::Direction direction = sim::Direction::kAtoB;
  vm::GuestMemory* source_memory = nullptr;
  sim::ChecksumEngine* source_cpu = nullptr;
  sim::ChecksumEngine* dest_cpu = nullptr;
  storage::CheckpointStore* dest_store = nullptr;  ///< nullable
  storage::VmId vm_id = "vm";
  PostCopyConfig config;

  /// External auditor (determinism harness / tests); when null and
  /// auditing is requested, the run creates a private one. Caller-owned.
  audit::SimAuditor* auditor = nullptr;

  /// External trace recorder / metrics registry; when null and tracing is
  /// requested via config.trace or VECYCLE_TRACE, the run records into
  /// obs::GlobalTrace() / obs::GlobalMetrics(). Caller-owned.
  obs::TraceRecorder* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct PostCopyOutcome {
  PostCopyStats stats;
  std::unique_ptr<vm::GuestMemory> dest_memory;
};

/// Runs one post-copy migration to completion on the run's simulator
/// (which must not carry unrelated events). The source memory is frozen
/// at switchover (execution is already at the destination), so the
/// reconstructed memory must equal it exactly.
PostCopyOutcome RunPostCopyMigration(PostCopyRun run);

}  // namespace vecycle::migration
