#include "migration/source.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"

namespace vecycle::migration {

SourceActor::SourceActor(Params params) : params_(std::move(params)) {
  VEC_CHECK(params_.simulator != nullptr);
  VEC_CHECK(params_.channel != nullptr);
  VEC_CHECK(params_.cpu != nullptr);
  VEC_CHECK(params_.memory != nullptr);
  params_.config.Validate();
  if (!params_.departure_generations.empty()) {
    VEC_CHECK_MSG(
        params_.departure_generations.size() == params_.memory->PageCount(),
        "departure generation vector does not match memory geometry");
  }
  if (params_.dest_digest_set != nullptr) {
    shared_dest_digests_ = std::move(params_.dest_digest_set);
  } else if (!params_.dest_digests.empty()) {
    owned_dest_digests_ = DigestSet(std::move(params_.dest_digests));
  }
}

bool SourceActor::DestHas(const Digest128& digest) const {
  const DigestSet& digests = shared_dest_digests_ != nullptr
                                 ? *shared_dest_digests_
                                 : owned_dest_digests_;
  return digests.Contains(digest);
}

void SourceActor::Start(SimTime start) {
  VEC_CHECK_MSG(!started_, "source started twice");
  started_ = true;
  round1_start_ = start;
  last_send_ = start;
  if (on_started) on_started(start);
  BeginRound(start, {}, /*final_round=*/false);
}

void SourceActor::OnMessage(net::Message&& message, SimTime arrival) {
  VEC_CHECK_MSG(message.session == params_.session_id,
                "message routed to the wrong migration session (source)");
  switch (message.type) {
    case net::MessageType::kBulkHashes: {
      VEC_CHECK_MSG(!started_, "bulk hashes after round 1 started");
      stats_.bulk_exchange_bytes +=
          message.WireSize(params_.config.algorithm);
      // Consume the payload by move; the hash set needs no sort, so the
      // digests go straight from the wire into the probe table.
      owned_dest_digests_ = DigestSet(std::move(message.bulk_hashes));
      shared_dest_digests_.reset();
      Start(arrival);
      break;
    }
    case net::MessageType::kRoundAck:
      OnRoundAck(arrival);
      break;
    case net::MessageType::kDoneAck:
      if (round_span_open_) {
        params_.tracer->EndSpan(round_span_, arrival);
        round_span_open_ = false;
      }
      if (on_finished) on_finished(arrival);
      break;
    case net::MessageType::kResendRequest:
      ServeResend(message.resend_pages, arrival);
      break;
    case net::MessageType::kPageBatch:
    case net::MessageType::kRoundEnd:
    case net::MessageType::kDone:
      VEC_CHECK_MSG(false, "unexpected message at migration source");
  }
}

void SourceActor::ServeResend(const std::vector<vm::PageId>& pages,
                              SimTime arrival) {
  VEC_CHECK_MSG(!pages.empty(), "empty resend request");
  auto& memory = *params_.memory;
  net::Message msg;
  msg.type = net::MessageType::kPageBatch;
  msg.round = round_;
  msg.records.reserve(pages.size());
  for (const vm::PageId page : pages) {
    VEC_CHECK_MSG(page < memory.PageCount(), "resend request out of range");
    net::PageRecord record;
    record.page = page;
    record.content_seed = memory.Seed(page);
    record.is_resend = true;
    record.has_digest = false;
    record.is_zero = record.content_seed == vm::kZeroPageSeed;
    record.has_payload = !record.is_zero;
    msg.records.push_back(record);
    ++stats_.fallback_pages;
  }
  // Live memory is authoritative: if the page was dirtied since its
  // checksum-only classification, a later round (or the stop-and-copy)
  // re-sends it anyway, and FIFO ordering means the newest content
  // always lands last.
  last_send_ =
      std::max(last_send_, std::max(arrival, params_.simulator->Now()));
  params_.channel->Send(std::move(msg), last_send_);
}

bool SourceActor::ClassifyFirstRoundPage(vm::PageId page,
                                         net::PageRecord& record,
                                         std::uint64_t& hash_bytes) {
  auto& memory = *params_.memory;
  const Strategy strategy = params_.config.strategy;

  // Miyakodori skip: generation counter unchanged since the VM left the
  // destination host — the destination's checkpoint copy is still valid
  // and nothing needs to travel. No checksum is ever computed.
  if (UsesDirtyTracking(strategy) && !params_.departure_generations.empty() &&
      memory.Generation(page) == params_.departure_generations[page]) {
    ++stats_.pages_skipped_clean;
    return false;
  }

  record = net::PageRecord{};
  record.page = page;
  record.content_seed = memory.Seed(page);

  // Zero-page elision, which every implementation performs.
  if (record.content_seed == vm::kZeroPageSeed) {
    record.is_zero = true;
    record.has_payload = false;
    record.has_digest = false;
    ++stats_.pages_sent_full;  // counted as a (trivially small) content send
    return true;
  }

  // VeCycle: one strong checksum per page, compared against the set of
  // pages existing at the destination (§3.2). In bulk mode the source
  // holds the set locally; in per-page-query mode it asks the destination
  // and cannot proceed past `query_window` unanswered questions — the
  // protocol variant the paper expected to be slow.
  if (UsesContentHashes(strategy)) {
    record.digest = memory.PageDigest(page);
    hash_bytes += kPageSize;
    bool dest_has;
    if (params_.query_oracle != nullptr) {
      // Window control: at most query_window questions in flight. The
      // link's FIFO serializes the query frames themselves.
      SimTime earliest = round_start_;
      if (query_pipeline_.size() >= params_.config.query_window) {
        earliest = std::max(earliest, query_pipeline_.front());
        query_pipeline_.pop_front();
      }
      const SimTime answered = params_.query_transport(earliest);
      query_pipeline_.push_back(answered);
      // Page data referencing this answer cannot leave before it arrives;
      // FlushBatch folds this into the batch send time.
      query_ready_pending_ = std::max(query_ready_pending_, answered);
      ++stats_.query_count;
      // Query: header + digest out; header + one-byte verdict back.
      stats_.query_bytes += Bytes{net::kRecordHeaderBytes +
                                  WireSizeBytes(params_.config.algorithm) +
                                  net::kRecordHeaderBytes + 1};
      dest_has = params_.query_oracle(record.digest);
    } else {
      dest_has = DestHas(record.digest);
    }
    if (dest_has) {
      record.has_payload = false;
      record.has_digest = true;
      ++stats_.pages_sent_checksum;
      return true;
    }
  }

  // Sender-side dedup: identical content already transmitted during this
  // migration travels as a cache reference. The probe hash is cheap
  // (FNV-class) and candidates are verified by local byte comparison,
  // which the model gets for free because seed equality is content
  // equality; the probe cost is charged at the FNV rate per batch.
  if (UsesDedup(strategy)) {
    fnv_bytes_pending_ += kPageSize;
    auto& cache = DedupCache();
    const bool inserted =
        cache.try_emplace(record.content_seed, cache.size()).second;
    if (!inserted) {
      record.is_dup_ref = true;
      record.has_payload = false;
      record.has_digest = false;
      ++stats_.pages_dup_ref;
      return true;
    }
  }

  record.has_payload = true;
  record.has_digest = UsesContentHashes(strategy);
  MaybeCompress(record);
  ++stats_.pages_sent_full;
  return true;
}

void SourceActor::MaybeCompress(net::PageRecord& record) {
  const auto& compression = params_.config.compression;
  if (!compression.enabled || !record.has_payload) return;
  // Per-page compressibility derived deterministically from the content
  // identity: some pages squeeze well, some barely at all.
  const double unit =
      static_cast<double>(SplitMix64(record.content_seed ^ 0xc0dec0deull)
                              .Next() >>
                          11) *
      0x1.0p-53;
  const double ratio =
      std::clamp(compression.mean_ratio +
                     (unit * 2.0 - 1.0) * compression.ratio_jitter,
                 0.05, 1.0);
  record.payload_wire_bytes =
      static_cast<std::uint32_t>(ratio * static_cast<double>(kPageSize));
  compress_bytes_pending_ += kPageSize;
  stats_.payload_bytes_original += Bytes{kPageSize};
  stats_.payload_bytes_on_wire += Bytes{record.payload_wire_bytes};
}

net::PageRecord SourceActor::FullRecord(vm::PageId page) {
  auto& memory = *params_.memory;
  net::PageRecord record;
  record.page = page;
  record.content_seed = memory.Seed(page);
  record.has_digest = false;
  if (record.content_seed == vm::kZeroPageSeed) {
    record.is_zero = true;
    return record;
  }
  if (UsesDedup(params_.config.strategy)) {
    fnv_bytes_pending_ += kPageSize;
    auto& cache = DedupCache();
    const bool inserted =
        cache.try_emplace(record.content_seed, cache.size()).second;
    if (!inserted) {
      record.is_dup_ref = true;
      return record;
    }
  }
  record.has_payload = true;
  MaybeCompress(record);
  return record;
}

SimTime SourceActor::FlushBatch(std::vector<net::PageRecord>& records,
                                std::uint64_t hash_bytes,
                                std::uint32_t round) {
  if (records.empty()) return kSimEpoch;
  SimTime ready = last_send_;
  if (hash_bytes > 0) {
    ready = params_.cpu->Hash(last_send_, Bytes{hash_bytes},
                              params_.config.algorithm);
    stats_.source_hashed_bytes += Bytes{hash_bytes};
  }
  if (fnv_bytes_pending_ > 0) {
    ready = std::max(ready,
                     params_.cpu->Hash(last_send_, Bytes{fnv_bytes_pending_},
                                       DigestAlgorithm::kFnv1a));
    fnv_bytes_pending_ = 0;
  }
  if (compress_bytes_pending_ > 0) {
    ready = std::max(
        ready, params_.cpu->Work(last_send_, Bytes{compress_bytes_pending_},
                                 params_.config.compression.compress_rate));
    compress_bytes_pending_ = 0;
  }
  // In per-page-query mode a batch may not leave before the destination
  // has answered for every page it contains.
  ready = std::max(ready, query_ready_pending_);
  net::Message msg;
  msg.type = net::MessageType::kPageBatch;
  msg.round = round;
  msg.records = std::move(records);
  records.clear();
  last_send_ = std::max(last_send_,
                        std::max(ready, params_.simulator->Now()));
  return params_.channel->Send(std::move(msg), last_send_);
}

void SourceActor::BeginRound(SimTime start, std::vector<vm::PageId> pages,
                             bool final_round) {
  ++round_;
  round_start_ = start;
  last_send_ = std::max(last_send_, start);
  round_snapshot_ = vm::DirtySnapshot(*params_.memory);
  round_pages_ = std::move(pages);
  cursor_ = 0;
  round_is_final_ = final_round;
  stats_.rounds = round_;
  if (params_.tracer != nullptr) {
    auto& tracer = *params_.tracer;
    const std::string label =
        final_round ? "round " + std::to_string(round_) + " (stop-and-copy)"
                    : "round " + std::to_string(round_);
    round_span_ =
        tracer.BeginSpan(params_.trace_track, tracer.Name(label), start);
    round_span_open_ = true;
    const std::uint64_t pending =
        round_ == 1 ? params_.memory->PageCount() : round_pages_.size();
    tracer.Arg(tracer.Name("pages"), pending);
  }
  params_.simulator->ScheduleAt(std::max(start, params_.simulator->Now()),
                                Guarded([this] { PumpBatches(); }));
}

void SourceActor::PumpBatches() {
  auto& memory = *params_.memory;
  const bool first_round = round_ == 1;
  const std::uint64_t limit =
      first_round ? memory.PageCount() : round_pages_.size();

  std::vector<net::PageRecord> batch;
  batch.reserve(params_.config.batch_pages);
  std::uint64_t hash_bytes = 0;
  while (cursor_ < limit && batch.size() < params_.config.batch_pages) {
    if (first_round) {
      net::PageRecord record;
      if (ClassifyFirstRoundPage(cursor_, record, hash_bytes)) {
        batch.push_back(record);
      }
    } else {
      batch.push_back(FullRecord(round_pages_[cursor_]));
      ++stats_.pages_resent_dirty;
    }
    ++cursor_;
  }

  const SimTime arrival = FlushBatch(batch, hash_bytes, round_);

  if (cursor_ < limit) {
    // Yield the link until this batch's last byte is serialized; other
    // traffic (e.g. a concurrent migration) can slot in between.
    const SimTime next =
        arrival == kSimEpoch
            ? params_.simulator->Now()
            : std::max(params_.simulator->Now(),
                       arrival - params_.channel->Latency());
    params_.simulator->ScheduleAt(next, Guarded([this] { PumpBatches(); }));
    return;
  }
  FinishRound();
}

void SourceActor::FinishRound() {
  net::Message end;
  end.round = round_;
  end.type = round_is_final_ ? net::MessageType::kDone
                             : net::MessageType::kRoundEnd;
  params_.channel->Send(std::move(end), last_send_);
  if (round_is_final_) final_sent_ = true;
}

void SourceActor::OnRoundAck(SimTime arrival) {
  VEC_CHECK_MSG(!final_sent_, "round ack after done");
  auto& memory = *params_.memory;

  // The guest ran while the round was in flight; apply its writes now.
  const SimDuration elapsed = arrival - round_start_;
  if (params_.workload != nullptr && elapsed > SimDuration::zero()) {
    params_.workload->Advance(memory, elapsed);
  }

  const auto dirty = round_snapshot_.DirtyPages(memory);
  const bool out_of_rounds = round_ + 1 >= params_.config.max_rounds;
  const bool small_enough =
      dirty.size() <= params_.config.stop_copy_threshold_pages;

  if (params_.tracer != nullptr) {
    auto& tracer = *params_.tracer;
    if (round_span_open_) {
      tracer.EndSpan(round_span_, arrival);
      round_span_open_ = false;
    }
    tracer.Counter(params_.trace_track, tracer.Name("dirty_pages"), arrival,
                   static_cast<double>(dirty.size()));
  }

  if (small_enough || out_of_rounds) {
    // Stop-and-copy: pause the VM (no more dirtying) and ship the rest.
    pause_time_ = arrival;
    if (on_pause) on_pause(arrival);
    BeginRound(arrival, dirty, /*final_round=*/true);
  } else {
    BeginRound(arrival, dirty, /*final_round=*/false);
  }
}

}  // namespace vecycle::migration
