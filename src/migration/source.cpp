#include "migration/source.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "storage/chunk_store.hpp"

namespace vecycle::migration {

SourceActor::SourceActor(Params params) : params_(std::move(params)) {
  VEC_CHECK(params_.simulator != nullptr);
  VEC_CHECK_MSG(!params_.channels.empty(), "source needs a forward channel");
  for (auto* channel : params_.channels) VEC_CHECK(channel != nullptr);
  VEC_CHECK(params_.cpu != nullptr);
  VEC_CHECK(params_.memory != nullptr);
  params_.config.Validate();
  VEC_CHECK_MSG(params_.channels.size() ==
                    params_.config.multifd.ActiveChannels(),
                "channel count does not match the multifd config");
  stats_.multifd_channels =
      static_cast<std::uint32_t>(params_.channels.size());
  if (!params_.departure_generations.empty()) {
    VEC_CHECK_MSG(
        params_.departure_generations.size() == params_.memory->PageCount(),
        "departure generation vector does not match memory geometry");
  }
  if (params_.config.delta.enabled) {
    if (!params_.departure_seeds.empty()) {
      VEC_CHECK_MSG(
          params_.departure_seeds.size() == params_.memory->PageCount(),
          "departure seed vector does not match memory geometry");
      dest_view_ = params_.departure_seeds;
      dest_view_known_.assign(dest_view_.size(), 1);
    } else {
      dest_view_.assign(params_.memory->PageCount(), 0);
      dest_view_known_.assign(params_.memory->PageCount(), 0);
    }
  }
  if (params_.dest_digest_set != nullptr) {
    shared_dest_digests_ = std::move(params_.dest_digest_set);
  } else if (!params_.dest_digests.empty()) {
    owned_dest_digests_ = DigestSet(std::move(params_.dest_digests));
  }
}

bool SourceActor::DestHas(const Digest128& digest) const {
  const DigestSet& digests = shared_dest_digests_ != nullptr
                                 ? *shared_dest_digests_
                                 : owned_dest_digests_;
  return digests.Contains(digest);
}

void SourceActor::Start(SimTime start) {
  VEC_CHECK_MSG(!started_, "source started twice");
  started_ = true;
  round1_start_ = start;
  last_send_ = start;
  if (on_started) on_started(start);
  BeginRound(start, {}, /*final_round=*/false);
}

void SourceActor::OnMessage(net::Message&& message, SimTime arrival) {
  VEC_CHECK_MSG(message.session == params_.session_id,
                "message routed to the wrong migration session (source)");
  switch (message.type) {
    case net::MessageType::kBulkHashes: {
      VEC_CHECK_MSG(!started_, "bulk hashes after round 1 started");
      stats_.bulk_exchange_bytes +=
          message.WireSize(params_.config.algorithm);
      // Consume the payload by move; the hash set needs no sort, so the
      // digests go straight from the wire into the probe table.
      owned_dest_digests_ = DigestSet(std::move(message.bulk_hashes));
      shared_dest_digests_.reset();
      Start(arrival);
      break;
    }
    case net::MessageType::kRoundAck:
      OnRoundAck(arrival);
      break;
    case net::MessageType::kDoneAck:
      if (round_span_open_) {
        params_.tracer->EndSpan(round_span_, arrival);
        round_span_open_ = false;
      }
      if (on_finished) on_finished(arrival);
      break;
    case net::MessageType::kResendRequest:
      ServeResend(message.resend_pages, arrival);
      break;
    case net::MessageType::kPageBatch:
    case net::MessageType::kRoundEnd:
    case net::MessageType::kDone:
      VEC_CHECK_MSG(false, "unexpected message at migration source");
  }
}

void SourceActor::ServeResend(const std::vector<vm::PageId>& pages,
                              SimTime arrival) {
  VEC_CHECK_MSG(!pages.empty(), "empty resend request");
  auto& memory = *params_.memory;
  const std::size_t nchan = params_.channels.size();
  // Resends ride the channel their page stripes to: per-channel FIFO
  // ordering then guarantees the full content lands after the record the
  // destination could not satisfy, just like the single-stream engine.
  std::vector<net::Message> per_channel(nchan);
  for (const vm::PageId page : pages) {
    VEC_CHECK_MSG(page < memory.PageCount(), "resend request out of range");
    net::PageRecord record;
    record.page = page;
    record.content_seed = memory.Seed(page);
    record.is_resend = true;
    record.has_digest = false;
    record.is_zero = record.content_seed == vm::kZeroPageSeed;
    record.has_payload = !record.is_zero;
    per_channel[page % nchan].records.push_back(record);
    NoteDestContent(page, record.content_seed);
    ++stats_.fallback_pages;
  }
  // Live memory is authoritative: if the page was dirtied since its
  // checksum-only classification, a later round (or the stop-and-copy)
  // re-sends it anyway, and FIFO ordering means the newest content
  // always lands last.
  last_send_ =
      std::max(last_send_, std::max(arrival, params_.simulator->Now()));
  for (std::size_t k = 0; k < nchan; ++k) {
    if (per_channel[k].records.empty()) continue;
    per_channel[k].type = net::MessageType::kPageBatch;
    per_channel[k].round = round_;
    params_.channels[k]->Send(std::move(per_channel[k]), last_send_);
  }
}

bool SourceActor::ClassifyFirstRoundPage(vm::PageId page,
                                         net::PageRecord& record,
                                         std::uint64_t& hash_bytes) {
  auto& memory = *params_.memory;
  const Strategy strategy = params_.config.strategy;

  // Miyakodori skip: generation counter unchanged since the VM left the
  // destination host — the destination's checkpoint copy is still valid
  // and nothing needs to travel. No checksum is ever computed.
  if (UsesDirtyTracking(strategy) && !params_.departure_generations.empty() &&
      memory.Generation(page) == params_.departure_generations[page]) {
    ++stats_.pages_skipped_clean;
    // The destination restores this page from its pristine checkpoint,
    // whose content the unchanged generation proves equals the live seed.
    NoteDestContent(page, memory.Seed(page));
    return false;
  }

  record = net::PageRecord{};
  record.page = page;
  record.content_seed = memory.Seed(page);

  // Zero-page elision, which every implementation performs.
  if (record.content_seed == vm::kZeroPageSeed) {
    record.is_zero = true;
    record.has_payload = false;
    record.has_digest = false;
    ++stats_.pages_sent_full;  // counted as a (trivially small) content send
    NoteDestContent(page, record.content_seed);
    return true;
  }

  // VeCycle: one strong checksum per page, compared against the set of
  // pages existing at the destination (§3.2). In bulk mode the source
  // holds the set locally; in per-page-query mode it asks the destination
  // and cannot proceed past `query_window` unanswered questions — the
  // protocol variant the paper expected to be slow.
  if (UsesContentHashes(strategy)) {
    record.digest = memory.PageDigest(page);
    hash_bytes += kPageSize;
    bool dest_has;
    if (params_.query_oracle != nullptr) {
      // Window control: at most query_window questions in flight. The
      // link's FIFO serializes the query frames themselves.
      SimTime earliest = round_start_;
      if (query_pipeline_.size() >= params_.config.query_window) {
        earliest = std::max(earliest, query_pipeline_.front());
        query_pipeline_.pop_front();
      }
      const SimTime answered = params_.query_transport(earliest);
      query_pipeline_.push_back(answered);
      // Page data referencing this answer cannot leave before it arrives;
      // FlushBatch folds this into the batch send time.
      query_ready_pending_ = std::max(query_ready_pending_, answered);
      ++stats_.query_count;
      // Query: header + digest out; header + one-byte verdict back.
      stats_.query_bytes += Bytes{net::kRecordHeaderBytes +
                                  WireSizeBytes(params_.config.algorithm) +
                                  net::kRecordHeaderBytes + 1};
      dest_has = params_.query_oracle(record.digest);
    } else {
      dest_has = DestHas(record.digest);
    }
    if (dest_has) {
      record.has_payload = false;
      record.has_digest = true;
      ++stats_.pages_sent_checksum;
      NoteDestContent(page, record.content_seed);
      return true;
    }
  }

  // Sender-side dedup: identical content already transmitted during this
  // migration travels as a cache reference. The probe hash is cheap
  // (FNV-class) and candidates are verified by local byte comparison,
  // which the model gets for free because seed equality is content
  // equality; the probe cost is charged at the FNV rate per batch.
  if (UsesDedup(strategy)) {
    fnv_bytes_pending_ += kPageSize;
    auto& cache = DedupCache();
    // Keyed by the chunk store's content identity (single-page chunk
    // digest), so gang caches and the destination's dedup store agree on
    // what "same content" means. A key collision merely turns a record
    // into a dup_ref, which still carries the real content seed.
    const bool inserted =
        cache
            .try_emplace(storage::ChunkContentKey(record.content_seed),
                         cache.size())
            .second;
    if (!inserted) {
      record.is_dup_ref = true;
      record.has_payload = false;
      record.has_digest = false;
      ++stats_.pages_dup_ref;
      NoteDestContent(page, record.content_seed);
      return true;
    }
  }

  if (TryDelta(record)) {
    record.has_digest = UsesContentHashes(strategy);
    ++stats_.pages_sent_full;  // delta is still a content send
    NoteDestContent(page, record.content_seed);
    return true;
  }

  record.has_payload = true;
  record.has_digest = UsesContentHashes(strategy);
  MaybeCompress(record);
  ++stats_.pages_sent_full;
  NoteDestContent(page, record.content_seed);
  return true;
}

void SourceActor::MaybeCompress(net::PageRecord& record) {
  const auto& compression = params_.config.compression;
  // Delta payloads are already the output of a codec; compressing them
  // again would double-count (QEMU's xbzrle and compress capabilities are
  // likewise applied per page, not stacked).
  if (!compression.enabled || !record.has_payload || record.is_delta) return;
  // Per-page compressibility derived deterministically from the content
  // identity: some pages squeeze well, some barely at all.
  const double unit =
      static_cast<double>(SplitMix64(record.content_seed ^ 0xc0dec0deull)
                              .Next() >>
                          11) *
      0x1.0p-53;
  const double ratio =
      std::clamp(compression.mean_ratio +
                     (unit * 2.0 - 1.0) * compression.ratio_jitter,
                 0.05, 1.0);
  record.payload_wire_bytes =
      static_cast<std::uint32_t>(ratio * static_cast<double>(kPageSize));
  compress_bytes_pending_ += kPageSize;
  stats_.payload_bytes_original += Bytes{kPageSize};
  stats_.payload_bytes_on_wire += Bytes{record.payload_wire_bytes};
}

net::PageRecord SourceActor::FullRecord(vm::PageId page) {
  auto& memory = *params_.memory;
  net::PageRecord record;
  record.page = page;
  record.content_seed = memory.Seed(page);
  record.has_digest = false;
  if (record.content_seed == vm::kZeroPageSeed) {
    record.is_zero = true;
    NoteDestContent(page, record.content_seed);
    return record;
  }
  if (UsesDedup(params_.config.strategy)) {
    fnv_bytes_pending_ += kPageSize;
    auto& cache = DedupCache();
    // Same chunk-digest content key as the round-1 probe above.
    const bool inserted =
        cache
            .try_emplace(storage::ChunkContentKey(record.content_seed),
                         cache.size())
            .second;
    if (!inserted) {
      record.is_dup_ref = true;
      NoteDestContent(page, record.content_seed);
      return record;
    }
  }
  if (TryDelta(record)) {
    NoteDestContent(page, record.content_seed);
    return record;
  }
  record.has_payload = true;
  MaybeCompress(record);
  NoteDestContent(page, record.content_seed);
  return record;
}

bool SourceActor::TryDelta(net::PageRecord& record) {
  const auto& delta = params_.config.delta;
  if (!delta.enabled) return false;
  if (dest_view_known_[record.page] == 0) return false;
  const std::uint64_t baseline = dest_view_[record.page];
  // Deltas against the zero page are the page itself (nothing to reuse);
  // the full-page path handles that case better.
  if (baseline == vm::kZeroPageSeed) return false;
  double ratio;
  if (baseline == record.content_seed) {
    // Unchanged content: the delta degenerates to a header-sized "no
    // change" token (possible under the kFull/kQemu strategies, which
    // have no checksum path to elide such pages).
    ratio = 16.0 / static_cast<double>(kPageSize);
  } else {
    // Per-page encodability derived deterministically from the two
    // contents, same idiom as MaybeCompress.
    const double unit =
        static_cast<double>(
            SplitMix64((baseline * 0x9e3779b97f4a7c15ull) ^
                       record.content_seed ^ 0xde17ac0deull)
                .Next() >>
            11) *
        0x1.0p-53;
    ratio = std::clamp(
        delta.mean_ratio + (unit * 2.0 - 1.0) * delta.ratio_jitter, 0.02,
        1.0);
  }
  // Oversized deltas fall back to the full page (QEMU's xbzrle overflow).
  if (ratio > delta.max_ratio) return false;
  record.is_delta = true;
  record.has_payload = true;
  record.baseline_seed = baseline;
  record.payload_wire_bytes = static_cast<std::uint32_t>(
      std::max(16.0, ratio * static_cast<double>(kPageSize)));
  delta_bytes_pending_ += kPageSize;
  ++stats_.pages_sent_delta;
  stats_.delta_bytes_original += Bytes{kPageSize};
  stats_.delta_bytes_on_wire += Bytes{record.payload_wire_bytes};
  return true;
}

void SourceActor::NoteDestContent(vm::PageId page, std::uint64_t seed) {
  if (!params_.config.delta.enabled) return;
  dest_view_[page] = seed;
  dest_view_known_[page] = 1;
}

Bytes SourceActor::TotalPayloadSent() const {
  Bytes total;
  for (const auto* channel : params_.channels) {
    total += channel->PayloadSent();
  }
  return total;
}

SimTime SourceActor::FlushBatch(std::vector<net::PageRecord>& records,
                                std::uint64_t hash_bytes,
                                std::uint32_t round) {
  if (records.empty()) return kSimEpoch;
  SimTime ready = last_send_;
  if (hash_bytes > 0) {
    ready = params_.cpu->Hash(last_send_, Bytes{hash_bytes},
                              params_.config.algorithm);
    stats_.source_hashed_bytes += Bytes{hash_bytes};
  }
  if (fnv_bytes_pending_ > 0) {
    ready = std::max(ready,
                     params_.cpu->Hash(last_send_, Bytes{fnv_bytes_pending_},
                                       DigestAlgorithm::kFnv1a));
    fnv_bytes_pending_ = 0;
  }
  if (compress_bytes_pending_ > 0) {
    ready = std::max(
        ready, params_.cpu->Work(last_send_, Bytes{compress_bytes_pending_},
                                 params_.config.compression.compress_rate));
    compress_bytes_pending_ = 0;
  }
  if (delta_bytes_pending_ > 0) {
    ready = std::max(ready,
                     params_.cpu->Work(last_send_, Bytes{delta_bytes_pending_},
                                       params_.config.delta.encode_rate));
    delta_bytes_pending_ = 0;
  }
  // In per-page-query mode a batch may not leave before the destination
  // has answered for every page it contains.
  ready = std::max(ready, query_ready_pending_);
  last_send_ = std::max(last_send_,
                        std::max(ready, params_.simulator->Now()));
  const std::size_t nchan = params_.channels.size();
  if (nchan == 1) {
    net::Message msg;
    msg.type = net::MessageType::kPageBatch;
    msg.round = round;
    msg.records = std::move(records);
    records.clear();
    return params_.channels[0]->Send(std::move(msg), last_send_);
  }
  // Multifd: stripe the batch across the streams by page index. Each
  // stream is its own TCP connection with its own window pacing, so the
  // aggregate can exceed the single-stream window cap.
  std::vector<std::vector<net::PageRecord>> parts(nchan);
  for (const auto& record : records) {
    parts[record.page % nchan].push_back(record);
  }
  records.clear();
  SimTime last_arrival = kSimEpoch;
  for (std::size_t k = 0; k < nchan; ++k) {
    if (parts[k].empty()) continue;
    net::Message msg;
    msg.type = net::MessageType::kPageBatch;
    msg.round = round;
    msg.records = std::move(parts[k]);
    last_arrival = std::max(
        last_arrival, params_.channels[k]->Send(std::move(msg), last_send_));
  }
  return last_arrival;
}

void SourceActor::BeginRound(SimTime start, std::vector<vm::PageId> pages,
                             bool final_round) {
  ++round_;
  round_start_ = start;
  round_tx_mark_ = TotalPayloadSent();
  last_send_ = std::max(last_send_, start);
  round_snapshot_ = vm::DirtySnapshot(*params_.memory);
  round_pages_ = std::move(pages);
  cursor_ = 0;
  round_is_final_ = final_round;
  stats_.rounds = round_;
  if (params_.tracer != nullptr) {
    auto& tracer = *params_.tracer;
    const std::string label =
        final_round ? "round " + std::to_string(round_) + " (stop-and-copy)"
                    : "round " + std::to_string(round_);
    round_span_ =
        tracer.BeginSpan(params_.trace_track, tracer.Name(label), start);
    round_span_open_ = true;
    const std::uint64_t pending =
        round_ == 1 ? params_.memory->PageCount() : round_pages_.size();
    tracer.Arg(tracer.Name("pages"), pending);
  }
  params_.simulator->ScheduleAt(std::max(start, params_.simulator->Now()),
                                Guarded([this] { PumpBatches(); }));
}

void SourceActor::PumpBatches() {
  auto& memory = *params_.memory;
  const bool first_round = round_ == 1;
  const std::uint64_t limit =
      first_round ? memory.PageCount() : round_pages_.size();

  std::vector<net::PageRecord> batch;
  batch.reserve(params_.config.batch_pages);
  std::uint64_t hash_bytes = 0;
  while (cursor_ < limit && batch.size() < params_.config.batch_pages) {
    if (first_round) {
      net::PageRecord record;
      if (ClassifyFirstRoundPage(cursor_, record, hash_bytes)) {
        batch.push_back(record);
      }
    } else {
      batch.push_back(FullRecord(round_pages_[cursor_]));
      ++stats_.pages_resent_dirty;
    }
    ++cursor_;
  }

  const SimTime arrival = FlushBatch(batch, hash_bytes, round_);

  if (cursor_ < limit) {
    SimTime next = params_.simulator->Now();
    if (arrival != kSimEpoch) {
      if (params_.channels.size() == 1) {
        // Yield the link until this batch's last byte is serialized;
        // other traffic (e.g. a concurrent migration) can slot in
        // between.
        next = std::max(next, arrival - params_.channels[0]->Latency());
      } else {
        // Multifd: the streams pace themselves (window cap); produce the
        // next batch when the least-loaded stream may inject again, so
        // the pump neither runs ahead of the wire nor starves it.
        SimTime min_slot = params_.channels[0]->NextStreamSlot();
        for (const auto* channel : params_.channels) {
          min_slot = std::min(min_slot, channel->NextStreamSlot());
        }
        next = std::max(next, min_slot);
      }
    }
    params_.simulator->ScheduleAt(next, Guarded([this] { PumpBatches(); }));
    return;
  }
  FinishRound();
}

void SourceActor::FinishRound() {
  // One marker per channel (QEMU's MULTIFD_FLUSH): per-channel FIFO
  // ordering puts each marker behind that channel's data, and the
  // destination acts only once every channel's marker has arrived.
  for (auto* channel : params_.channels) {
    net::Message end;
    end.round = round_;
    end.type = round_is_final_ ? net::MessageType::kDone
                               : net::MessageType::kRoundEnd;
    channel->Send(std::move(end), last_send_);
  }
  if (round_is_final_) final_sent_ = true;
}

void SourceActor::OnRoundAck(SimTime arrival) {
  VEC_CHECK_MSG(!final_sent_, "round ack after done");
  auto& memory = *params_.memory;

  // The guest ran while the round was in flight; apply its writes now.
  const SimDuration elapsed = arrival - round_start_;
  if (params_.workload != nullptr && elapsed > SimDuration::zero()) {
    params_.workload->Advance(memory, elapsed);
  }

  const auto dirty = round_snapshot_.DirtyPages(memory);
  const bool out_of_rounds = round_ + 1 >= params_.config.max_rounds;
  const bool small_enough =
      dirty.size() <= params_.config.stop_copy_threshold_pages;

  // Auto-converge (QEMU's capability of the same name): when the guest
  // dirties faster than the wire drains, progressively force-idle its
  // vCPUs so the dirty set shrinks and pre-copy terminates. The throttle
  // persists until the migration ends (the engine restores full speed).
  const auto& converge = params_.config.auto_converge;
  if (converge.enabled && params_.workload != nullptr && !small_enough &&
      !out_of_rounds) {
    const Bytes sent = TotalPayloadSent() - round_tx_mark_;
    const double dirtied_bytes =
        static_cast<double>(dirty.size()) * static_cast<double>(kPageSize);
    const bool diverging =
        sent.count > 0 &&
        dirtied_bytes >
            converge.divergence_ratio * static_cast<double>(sent.count);
    if (diverging) {
      ++diverge_streak_;
      if (diverge_streak_ >= converge.trigger_rounds) {
        const std::uint32_t steps = diverge_streak_ - converge.trigger_rounds;
        throttle_ = std::min(
            converge.max_throttle,
            converge.initial_throttle +
                static_cast<double>(steps) * converge.throttle_increment);
      }
    } else {
      diverge_streak_ = 0;
    }
    if (throttle_ > 0.0) {
      params_.workload->SetThrottle(1.0 - throttle_);
      ++stats_.throttle_rounds;
      stats_.max_throttle = std::max(stats_.max_throttle, throttle_);
      if (params_.tracer != nullptr) {
        params_.tracer->Counter(params_.trace_track,
                                params_.tracer->Name("cpu_throttle"), arrival,
                                throttle_);
      }
    }
  }

  if (params_.tracer != nullptr) {
    auto& tracer = *params_.tracer;
    if (round_span_open_) {
      tracer.EndSpan(round_span_, arrival);
      round_span_open_ = false;
    }
    tracer.Counter(params_.trace_track, tracer.Name("dirty_pages"), arrival,
                   static_cast<double>(dirty.size()));
  }

  if (small_enough || out_of_rounds) {
    // Stop-and-copy: pause the VM (no more dirtying) and ship the rest.
    pause_time_ = arrival;
    if (on_pause) on_pause(arrival);
    BeginRound(arrival, dirty, /*final_round=*/true);
  } else {
    BeginRound(arrival, dirty, /*final_round=*/false);
  }
}

}  // namespace vecycle::migration
