#include "migration/postcopy.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "migration/observe.hpp"
#include "net/message.hpp"

namespace vecycle::migration {

void PostCopyConfig::Validate() const {
  // algorithm: every enumerator is a valid digest choice; the digest
  // layer rejects unknown values itself.
  VEC_CHECK_MSG(guest_touch_rate_per_s >= 0.0,
                "touch rate must be non-negative");
  VEC_CHECK_MSG(prefetch_batch > 0, "prefetch batch must be positive");
  VEC_CHECK_MSG(switchover_state.count > 0,
                "switchover_state must be positive");
}

namespace {

/// Per-page residency state at the destination.
enum class Residency : std::uint8_t {
  kUnknown,   ///< not verified / not fetched yet
  kFetching,  ///< a fetch is in flight
  kResident,  ///< correct content in destination RAM
};

class PostCopyEngine {
 public:
  ~PostCopyEngine() {
    if (attached_simulator_) run_.simulator->SetAuditor(nullptr);
    if (attached_store_) run_.dest_store->SetAuditor(nullptr);
    if (attached_simulator_tracer_) run_.simulator->SetTracer(nullptr);
    if (attached_source_cpu_) run_.source_cpu->SetTracer(nullptr);
    if (attached_dest_cpu_) run_.dest_cpu->SetTracer(nullptr);
    if (attached_store_tracer_) run_.dest_store->SetTracer(nullptr);
  }

  explicit PostCopyEngine(PostCopyRun run) : run_(std::move(run)) {
    VEC_CHECK(run_.simulator != nullptr);
    VEC_CHECK(run_.link != nullptr);
    VEC_CHECK(run_.source_memory != nullptr);
    VEC_CHECK(run_.source_cpu != nullptr);
    VEC_CHECK(run_.dest_cpu != nullptr);
    run_.config.Validate();

    if (run_.auditor != nullptr) {
      auditor_ = run_.auditor;
    } else if (run_.config.audit || audit::EnvEnabled()) {
      owned_auditor_ = std::make_unique<audit::SimAuditor>();
      auditor_ = owned_auditor_.get();
    }

    // Observability layer: same resolution as the pre-copy engine.
    if (run_.tracer != nullptr) {
      tracer_ = run_.tracer;
    } else if (run_.config.trace || obs::EnvEnabled()) {
      tracer_ = &obs::GlobalTrace();
    }
    if (run_.metrics != nullptr) {
      metrics_ = run_.metrics;
    } else if (tracer_ != nullptr) {
      metrics_ = &obs::GlobalMetrics();
    }
    if (tracer_ != nullptr) {
      const auto process = tracer_->NewProcess(run_.vm_id + "/postcopy");
      phase_track_ = tracer_->Track(process, "phases");
      prefetch_track_ = tracer_->Track(process, "prefetch");
      fault_track_ = tracer_->Track(process, "faults");
      remaining_counter_ = tracer_->Name("remaining_pages");
      fault_name_ = tracer_->Name("remote_fault");
      if (run_.source_cpu->Tracer() == nullptr) {
        run_.source_cpu->SetTracer(tracer_,
                                   tracer_->Track(process, "cpu source"));
        attached_source_cpu_ = true;
      }
      if (run_.dest_cpu->Tracer() == nullptr) {
        run_.dest_cpu->SetTracer(tracer_,
                                 tracer_->Track(process, "cpu dest"));
        attached_dest_cpu_ = true;
      }
      if (run_.dest_store != nullptr &&
          run_.dest_store->Tracer() == nullptr) {
        run_.dest_store->SetTracer(tracer_,
                                   tracer_->Track(process, "store"));
        attached_store_tracer_ = true;
      }
      if (run_.simulator->Tracer() == nullptr) {
        run_.simulator->SetTracer(tracer_,
                                  tracer_->Track(process, "event loop"));
        attached_simulator_tracer_ = true;
      }
    }

    auto& source = *run_.source_memory;
    dest_memory_ = std::make_unique<vm::GuestMemory>(
        source.RamSize(), source.Mode(), run_.config.algorithm);
    residency_.assign(source.PageCount(), Residency::kUnknown);
    fetch_arrival_.assign(source.PageCount(), kSimEpoch);
    remaining_ = source.PageCount();
    touch_rng_ = Xoshiro256(run_.config.touch_seed);
    reverse_ = run_.direction == sim::Direction::kAtoB
                   ? sim::Direction::kBtoA
                   : sim::Direction::kAtoB;
  }

  PostCopyOutcome Run() {
    auto& simulator = *run_.simulator;
    auto& source = *run_.source_memory;
    const SimTime t0 = simulator.Now();

    if (auditor_ != nullptr && simulator.Auditor() == nullptr) {
      simulator.SetAuditor(auditor_);
      attached_simulator_ = true;
    }
    if (auditor_ != nullptr && run_.dest_store != nullptr &&
        run_.dest_store->Auditor() == nullptr) {
      run_.dest_store->SetAuditor(auditor_);
      attached_store_ = true;
    }

    // Destination setup: restore the stale checkpoint if we may use it.
    SimTime setup_done = t0;
    if (run_.config.use_checkpoint && run_.dest_store != nullptr &&
        run_.dest_store->Has(run_.vm_id) &&
        run_.dest_store->Peek(run_.vm_id)->PageCount() ==
            source.PageCount()) {
      const auto load = run_.dest_store->Load(run_.vm_id, t0);
      checkpoint_ = load.checkpoint;
      setup_done = load.ready_at;
      checkpoint_->RestoreInto(*dest_memory_);
    }

    // Switchover: pause at the source, ship device state, resume at the
    // destination. This is the entire downtime.
    const SimTime switch_start = setup_done;
    const SimTime resumed = run_.link->Transmit(
        run_.direction, switch_start, run_.config.switchover_state);
    stats_.tx_bytes += run_.config.switchover_state;
    stats_.downtime = resumed - switch_start;
    resumed_at_ = resumed;

    // VeCycle composition: ship the VM's checksum vector so the
    // destination can tell which checkpoint pages are still valid. The
    // source computes the vector *before* pausing, while the guest still
    // runs (entries for pages dirtied during the scan are invalidated and
    // simply fail verification later — a bounded imprecision the model
    // folds into the churn itself), so only the wire transfer lands after
    // switchover. Faults that arrive before the vector wait for it: it
    // is milliseconds away, while a blind remote fetch of a page the
    // checkpoint already holds wastes link time everyone else needs.
    if (checkpoint_ != nullptr) {
      const Bytes ram = source.RamSize();
      run_.source_cpu->Hash(t0, ram, run_.config.algorithm);  // pre-pause
      const Bytes vector_bytes{source.PageCount() *
                               WireSizeBytes(run_.config.algorithm)};
      const SimTime vector_arrival =
          run_.link->Transmit(run_.direction, switch_start, vector_bytes);
      stats_.tx_bytes += vector_bytes;
      stats_.checksum_vector_bytes = vector_bytes;
      vector_ready_ = vector_arrival;
    } else {
      vector_ready_ = resumed;
    }

    // Background prefetcher and guest touch process.
    simulator.ScheduleAt(std::max(resumed, vector_ready_),
                         [this] { PumpPrefetch(); });
    if (run_.config.guest_touch_rate_per_s > 0.0) {
      ScheduleNextTouch(resumed);
    }

    simulator.Run();

    VEC_CHECK_MSG(remaining_ == 0, "post-copy never reached residency");
    VEC_CHECK_MSG(dest_memory_->ContentEquals(source),
                  "post-copy reconstruction diverged");
    dest_memory_->SetGenerations(source.Generations());

    if (auditor_ != nullptr) AuditOutcome(source);

    if (tracer_ != nullptr) {
      // Durations only known now, recorded retroactively on one lane:
      // setup scan, the switchover gap (the entire downtime), and the
      // residency window the prefetcher and faults filled.
      tracer_->Span(phase_track_, tracer_->Name("setup"), t0, setup_done);
      tracer_->Span(phase_track_, tracer_->Name("switchover"), switch_start,
                    resumed);
      tracer_->Span(phase_track_, tracer_->Name("residency"), resumed_at_,
                    resumed_at_ + stats_.time_to_residency);
    }
    if (metrics_ != nullptr) {
      RecordPostCopyStats(*metrics_, run_.vm_id + "/postcopy", stats_);
    }

    PostCopyOutcome outcome;
    outcome.stats = stats_;
    outcome.dest_memory = std::move(dest_memory_);
    return outcome;
  }

 private:
  std::uint64_t PageCount() const { return residency_.size(); }

  /// Run-level audit: every page reached residency through exactly one
  /// mechanism, and the reconstructed image digests equal to the source.
  void AuditOutcome(const vm::GuestMemory& source) const {
    VEC_CHECK_MSG(stats_.pages_from_checkpoint + stats_.pages_prefetched +
                          stats_.remote_faults ==
                      PageCount(),
                  "audit: post-copy residency conservation violated "
                  "(checkpoint + prefetch + fault != page count)");
    VEC_CHECK_MSG(dest_memory_->ContentFingerprint() ==
                      source.ContentFingerprint(),
                  "audit: post-copy destination digest != source digest");
    auditor_->OnScalar("pc_remote_faults", stats_.remote_faults);
    auditor_->OnScalar("pc_tx_bytes", stats_.tx_bytes.count);
    auditor_->OnScalar(
        "pc_residency_ns",
        static_cast<std::uint64_t>(stats_.time_to_residency.count()));
    auditor_->OnScalar("pc_memory_digest",
                       dest_memory_->ContentFingerprint());
  }

  void MarkResident(vm::PageId page) {
    if (residency_[page] == Residency::kResident) return;
    residency_[page] = Residency::kResident;
    --remaining_;
  }

  /// Verifies one checkpoint page against the source's checksum vector:
  /// one 4 KiB hash. The background sweep runs on the host's checksum
  /// engine; demand faults verify on the faulting vCPU (`fault_cpu_`) so
  /// they are not head-of-line blocked behind the sweep. Returns true
  /// when the checkpoint content is still correct.
  bool VerifyAgainstVector(vm::PageId page, SimTime when, bool demand_path,
                           SimTime& work_done) {
    auto& cpu = demand_path ? fault_cpu_ : *run_.dest_cpu;
    work_done = cpu.Hash(when, Bytes{kPageSize}, run_.config.algorithm);
    return checkpoint_ != nullptr &&
           checkpoint_->SeedAt(page) == run_.source_memory->Seed(page);
  }

  /// Books one page fetch on the link; returns arrival time.
  SimTime BookFetch(vm::PageId page, SimTime when) {
    // Request (header) travels backward, the page forward. Zero pages
    // compress to a bare header as everywhere else.
    const SimTime asked = run_.link->Transmit(
        reverse_, when, Bytes{net::kRecordHeaderBytes});
    const bool zero = run_.source_memory->Seed(page) == vm::kZeroPageSeed;
    const Bytes payload{net::kRecordHeaderBytes +
                        (zero ? 0 : kPageSize)};
    const SimTime arrival = run_.link->Transmit(run_.direction, asked,
                                                payload);
    stats_.tx_bytes += payload;
    return arrival;
  }

  void CompleteFetch(vm::PageId page, SimTime arrival) {
    run_.simulator->ScheduleAt(arrival, [this, page] {
      dest_memory_->WritePage(page, run_.source_memory->Seed(page));
      MarkResident(page);
      MaybeFinish(run_.simulator->Now());
    });
  }

  void PumpPrefetch() {
    const SimTime now = run_.simulator->Now();
    if (tracer_ != nullptr) {
      tracer_->Counter(prefetch_track_, remaining_counter_, now,
                       static_cast<double>(remaining_));
    }
    std::uint32_t handled = 0;
    SimTime last_arrival = now;
    while (prefetch_cursor_ < PageCount() &&
           handled < run_.config.prefetch_batch) {
      const vm::PageId page = prefetch_cursor_++;
      if (residency_[page] != Residency::kUnknown) continue;
      ++handled;
      if (checkpoint_ != nullptr) {
        SimTime verified;
        if (VerifyAgainstVector(page, now, /*demand_path=*/false,
                                verified)) {
          ++stats_.pages_from_checkpoint;
          dest_memory_->WritePage(page, checkpoint_->SeedAt(page));
          MarkResident(page);
          last_arrival = std::max(last_arrival, verified);
          continue;
        }
        last_arrival = std::max(last_arrival, verified);
      }
      residency_[page] = Residency::kFetching;
      const SimTime arrival = BookFetch(page, now);
      fetch_arrival_[page] = arrival;
      ++stats_.pages_prefetched;
      CompleteFetch(page, arrival);
      last_arrival = std::max(last_arrival, arrival);
    }

    if (prefetch_cursor_ < PageCount()) {
      // Pace off the work just issued so demand faults can interleave.
      const SimTime next =
          std::max(now, last_arrival - run_.link->Config().latency);
      run_.simulator->ScheduleAt(next, [this] { PumpPrefetch(); });
    } else {
      MaybeFinish(std::max(now, last_arrival));
    }
  }

  void ScheduleNextTouch(SimTime from) {
    const SimDuration gap =
        Seconds(1.0 / run_.config.guest_touch_rate_per_s);
    run_.simulator->ScheduleAt(from + gap, [this] { OnTouch(); });
  }

  void OnTouch() {
    if (remaining_ == 0) return;  // fully resident: touches are free now
    const SimTime now = run_.simulator->Now();
    const vm::PageId page = touch_rng_.NextBelow(PageCount());
    // The touch loop is closed: a faulting guest thread blocks until its
    // page is resident, so the next touch is scheduled from the stall's
    // resolution, never piling unbounded faults onto the link.
    SimTime resume_at = now;
    switch (residency_[page]) {
      case Residency::kResident:
        break;
      case Residency::kFetching:
        // Stall until the in-flight fetch lands.
        if (fetch_arrival_[page] > now) {
          stats_.total_stall += fetch_arrival_[page] - now;
          resume_at = fetch_arrival_[page];
        }
        break;
      case Residency::kUnknown: {
        // Verify locally first when a checkpoint candidate exists,
        // waiting for the (imminent) checksum vector if needed; only
        // genuinely diverged pages fault remotely.
        SimTime ready = now;
        if (checkpoint_ != nullptr) {
          ready = std::max(ready, vector_ready_);
          SimTime verified;
          if (VerifyAgainstVector(page, ready, /*demand_path=*/true,
                                  verified)) {
            ++stats_.pages_from_checkpoint;
            dest_memory_->WritePage(page, checkpoint_->SeedAt(page));
            MarkResident(page);
            stats_.total_stall += verified - now;  // wait + verify
            resume_at = verified;
            MaybeFinish(verified);
            break;
          }
          ready = verified;
        }
        residency_[page] = Residency::kFetching;
        const SimTime arrival = BookFetch(page, ready);
        fetch_arrival_[page] = arrival;
        ++stats_.remote_faults;
        if (tracer_ != nullptr) {
          tracer_->Instant(fault_track_, fault_name_, now);
          tracer_->Arg(tracer_->Name("page"), page);
        }
        stats_.total_stall += arrival - now;
        resume_at = arrival;
        CompleteFetch(page, arrival);
        break;
      }
    }
    ScheduleNextTouch(resume_at);
  }

  void MaybeFinish(SimTime when) {
    if (remaining_ == 0 && !finished_) {
      finished_ = true;
      stats_.time_to_residency = when - resumed_at_;
    }
  }

  PostCopyRun run_;
  sim::Direction reverse_ = sim::Direction::kBtoA;
  std::unique_ptr<vm::GuestMemory> dest_memory_;
  const storage::Checkpoint* checkpoint_ = nullptr;
  std::vector<Residency> residency_;
  std::vector<SimTime> fetch_arrival_;
  std::uint64_t remaining_ = 0;
  std::uint64_t prefetch_cursor_ = 0;
  SimTime resumed_at_ = kSimEpoch;
  SimTime vector_ready_ = kSimEpoch;
  /// The faulting vCPU's hashing capacity (demand-path verification).
  sim::ChecksumEngine fault_cpu_{sim::ChecksumEngineConfig{}};
  Xoshiro256 touch_rng_{1};
  PostCopyStats stats_;
  std::unique_ptr<audit::SimAuditor> owned_auditor_;
  audit::SimAuditor* auditor_ = nullptr;
  bool attached_simulator_ = false;
  bool attached_store_ = false;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TrackId phase_track_ = 0;
  obs::TrackId prefetch_track_ = 0;
  obs::TrackId fault_track_ = 0;
  obs::NameId remaining_counter_ = 0;
  obs::NameId fault_name_ = 0;
  bool attached_simulator_tracer_ = false;
  bool attached_source_cpu_ = false;
  bool attached_dest_cpu_ = false;
  bool attached_store_tracer_ = false;
  bool finished_ = false;
};

}  // namespace

PostCopyOutcome RunPostCopyMigration(PostCopyRun run) {
  PostCopyEngine engine(std::move(run));
  return engine.Run();
}

}  // namespace vecycle::migration
