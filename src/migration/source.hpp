// Migration source actor (§3.1/§3.2).
//
// Runs the multi-round pre-copy loop. Round 1 applies the configured
// traffic-reduction strategy; later rounds re-send pages dirtied while the
// previous round was in flight (with sender-side dedup still active for
// the *Dedup strategies); the final stop-and-copy round pauses the VM.
// The guest workload keeps running between rounds, which is what produces
// the dirty sets — exactly the dynamics of a live migration.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "digest/digest_set.hpp"
#include "migration/config.hpp"
#include "migration/stats.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "obs/trace.hpp"
#include "sim/checksum_engine.hpp"
#include "vm/dirty_tracker.hpp"
#include "vm/guest_memory.hpp"
#include "vm/workload.hpp"

namespace vecycle::migration {

class SourceActor {
 public:
  struct Params {
    sim::Simulator* simulator = nullptr;
    /// Forward (source -> destination) channels. One entry is the classic
    /// single-stream engine; several entries are multifd streams, and page
    /// records stripe across them by page index (page % channels.size()).
    std::vector<net::Channel*> channels;
    sim::ChecksumEngine* cpu = nullptr;
    vm::GuestMemory* memory = nullptr;  ///< the live VM
    vm::Workload* workload = nullptr;   ///< nullable: frozen guest
    MigrationConfig config;
    /// Digests of pages known to exist at the destination (any order).
    /// For ping-pong migrations the caller provides this from the
    /// previous incoming migration; otherwise it arrives via the bulk
    /// exchange. Built into a flat hash set once, at construction.
    std::vector<Digest128> dest_digests;
    /// Prebuilt membership set sharing the same meaning as dest_digests —
    /// the zero-rebuild fast path for callers (VmInstance) that keep the
    /// set across migrations. Wins over dest_digests when non-null.
    std::shared_ptr<const DigestSet> dest_digest_set;
    /// Per-page generation counters at the moment the VM last left the
    /// destination host (Miyakodori state); empty disables dirty skips.
    std::vector<std::uint64_t> departure_generations;

    /// Per-page content seeds at the moment the VM last left the
    /// destination host — what the destination's recycled checkpoint
    /// holds, and hence the round-1 baseline for XBZRLE-style delta
    /// encoding (DeltaConfig). Empty disables round-1 deltas; later
    /// rounds still delta against content this migration already sent.
    /// The engine clears this unless the destination actually restored a
    /// geometry-matching checkpoint (rot is fine: a rotten page fails the
    /// destination's baseline check and degrades per page).
    std::vector<std::uint64_t> departure_seeds;

    /// Per-page query oracle (HashExchangeMode::kPerPageQuery): answers
    /// whether the destination's checkpoint holds `digest`, and the wire
    /// round-trip is booked by QueryTransport below. Null in bulk mode.
    std::function<bool(const Digest128&)> query_oracle;
    /// Books one query round trip on the link starting no earlier than
    /// `earliest`; returns the time the response reaches the source.
    std::function<SimTime(SimTime earliest)> query_transport;

    /// Shared sender-side dedup cache for gang migrations (VMFlock [4] /
    /// CloudNet cluster dedup): concurrent migrations from this host to
    /// the same destination share one content cache, so a page one VM
    /// already shipped travels as a reference from every other VM too.
    /// Null gives each migration a private cache.
    std::unordered_map<std::uint64_t, std::uint64_t>* shared_dedup_cache =
        nullptr;

    /// Trace recorder for per-round spans and the dirty-page counter;
    /// null when tracing is off (the engine resolves enablement).
    obs::TraceRecorder* tracer = nullptr;
    obs::TrackId trace_track = 0;

    /// Session this actor belongs to; every delivered message must carry
    /// the same tag (cross-session routing check on shared links).
    std::uint64_t session_id = 0;

    /// Lifetime token shared with the session: closures this actor
    /// schedules on the simulator fire only while the token is alive and
    /// true, so events queued for an aborted or destroyed session become
    /// no-ops instead of calls into freed state. Null leaves scheduling
    /// unguarded (standalone/test use).
    std::shared_ptr<const bool> lifetime;
  };

  explicit SourceActor(Params params);

  /// Begins round 1 at `start` (>= destination readiness).
  void Start(SimTime start);

  /// Channel receiver for the reverse direction. Takes the message by
  /// rvalue so the bulk-hash payload is consumed by move, not copied.
  void OnMessage(net::Message&& message, SimTime arrival);

  /// Invoked when the source has received the final done-ack.
  std::function<void(SimTime)> on_finished;
  /// Invoked once when round 1 begins (pre-copy phase entered) — on the
  /// bulk-exchange path this is the arrival of the destination's hashes.
  std::function<void(SimTime)> on_started;
  /// Invoked once when the VM pauses for the stop-and-copy round.
  std::function<void(SimTime)> on_pause;

  [[nodiscard]] const MigrationStats& Stats() const { return stats_; }
  [[nodiscard]] MigrationStats& MutableStats() { return stats_; }
  [[nodiscard]] SimTime RoundOneStart() const { return round1_start_; }
  [[nodiscard]] SimTime PauseTime() const { return pause_time_; }
  [[nodiscard]] bool Started() const { return started_; }

 private:
  /// Wraps a closure with the lifetime-token guard before it goes on the
  /// simulator's event heap.
  template <typename F>
  [[nodiscard]] auto Guarded(F f) const {
    return [guard = std::weak_ptr<const bool>(params_.lifetime),
            guarded = params_.lifetime != nullptr, f = std::move(f)] {
      if (guarded) {
        const auto alive = guard.lock();
        if (alive == nullptr || !*alive) return;
      }
      f();
    };
  }

  /// Answers a kResendRequest: full-content records for every page whose
  /// checksum-only record the destination could not satisfy locally.
  void ServeResend(const std::vector<vm::PageId>& pages, SimTime arrival);

  /// Initializes a round's iteration state and schedules the first batch
  /// pump. For round 1, `pages` is empty (the cursor walks all of RAM);
  /// later rounds carry the dirty list.
  void BeginRound(SimTime start, std::vector<vm::PageId> pages,
                  bool final_round);
  /// Builds and sends one batch, then reschedules itself at the batch's
  /// wire-serialization end — which is what lets two concurrent
  /// migrations interleave fairly on a shared link instead of one
  /// monopolizing the FIFO for its whole round.
  void PumpBatches();
  void FinishRound();
  void OnRoundAck(SimTime arrival);

  /// Classifies one round-1 page into a wire record, charging checksum
  /// work into `hash_bytes` (booked per batch). Returns false when the
  /// page is skipped entirely (dirty-tracking clean page).
  bool ClassifyFirstRoundPage(vm::PageId page, net::PageRecord& record,
                              std::uint64_t& hash_bytes);

  /// Builds a full-content record for later rounds, consulting the dedup
  /// cache when the strategy dedups.
  net::PageRecord FullRecord(vm::PageId page);

  /// Applies wire compression to a full-payload record when configured:
  /// sets the payload's wire size and accrues the compression CPU cost.
  void MaybeCompress(net::PageRecord& record);

  /// Attempts to turn `record` (page + content_seed already set) into an
  /// XBZRLE-style delta against the content the destination is believed
  /// to hold. Returns false — leaving the record untouched — when delta
  /// encoding is off, the baseline is unknown (or the zero page), or the
  /// encoded size would exceed DeltaConfig::max_ratio.
  bool TryDelta(net::PageRecord& record);

  /// Records that, once everything queued so far lands, the destination
  /// holds `seed` for `page` — the source-side view delta encoding works
  /// from. No-op unless delta encoding is enabled.
  void NoteDestContent(vm::PageId page, std::uint64_t seed);

  /// Sends the accumulated records; returns the last arrival time at the
  /// destination (kSimEpoch when there was nothing to send). With several
  /// channels the records stripe by page index (page % channel count).
  SimTime FlushBatch(std::vector<net::PageRecord>& records,
                     std::uint64_t hash_bytes, std::uint32_t round);

  /// Sum of payload bytes booked across every forward channel.
  [[nodiscard]] Bytes TotalPayloadSent() const;

  [[nodiscard]] bool DestHas(const Digest128& digest) const;

  /// The dedup cache in effect: the gang-shared one when configured,
  /// else this migration's private cache.
  [[nodiscard]] std::unordered_map<std::uint64_t, std::uint64_t>&
  DedupCache() {
    return params_.shared_dedup_cache != nullptr
               ? *params_.shared_dedup_cache
               : dedup_cache_;
  }

  Params params_;
  MigrationStats stats_;
  /// O(1) destination-membership set (owned: built from dest_digests or
  /// the bulk exchange). Unused when the caller provided a prebuilt set.
  DigestSet owned_dest_digests_;
  std::shared_ptr<const DigestSet> shared_dest_digests_;
  /// Sender-side dedup cache: chunk content key (single-page chunk
  /// digest, storage::ChunkContentKey) -> cache slot of the first
  /// transmission this migration.
  std::unordered_map<std::uint64_t, std::uint64_t> dedup_cache_;

  /// Dedup probe work accumulated since the last batch flush, charged at
  /// the FNV rate.
  std::uint64_t fnv_bytes_pending_ = 0;

  /// Completion times of in-flight per-page queries (kPerPageQuery);
  /// bounded by config.query_window.
  std::deque<SimTime> query_pipeline_;
  /// Latest query answer the next data batch must wait for.
  SimTime query_ready_pending_ = kSimEpoch;

  /// Original bytes awaiting the compression CPU charge at the next flush.
  std::uint64_t compress_bytes_pending_ = 0;

  /// Original bytes awaiting the delta-encode CPU charge at the next flush.
  std::uint64_t delta_bytes_pending_ = 0;

  /// Delta-encoding view of the destination: the content seed the
  /// destination holds per page once in-flight sends land. Pre-seeded
  /// from departure_seeds (the recycled checkpoint), updated on every
  /// record that establishes content. Empty when delta encoding is off.
  std::vector<std::uint64_t> dest_view_;
  std::vector<std::uint8_t> dest_view_known_;

  // Auto-converge state (AutoConvergeConfig).
  Bytes round_tx_mark_;               ///< TotalPayloadSent() at round start
  std::uint32_t diverge_streak_ = 0;  ///< consecutive diverging rounds
  double throttle_ = 0.0;             ///< current guest throttle fraction

  // Round iteration state, consumed batch-by-batch by PumpBatches().
  std::vector<vm::PageId> round_pages_;  ///< empty in round 1 (walk RAM)
  std::uint64_t cursor_ = 0;
  bool round_is_final_ = false;

  vm::DirtySnapshot round_snapshot_;
  /// Trace state: the currently open per-round span, if any.
  obs::SpanId round_span_ = 0;
  bool round_span_open_ = false;
  SimTime round_start_ = kSimEpoch;
  SimTime round1_start_ = kSimEpoch;
  SimTime last_send_ = kSimEpoch;
  SimTime pause_time_ = kSimEpoch;
  std::uint32_t round_ = 0;
  bool started_ = false;
  bool final_sent_ = false;
};

}  // namespace vecycle::migration
