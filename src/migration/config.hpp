// Migration engine configuration.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "digest/digest.hpp"
#include "fault/fault.hpp"
#include "migration/strategy.hpp"

namespace vecycle::migration {

/// How the source learns which page contents exist at the destination
/// (§3.2). The paper's prototype sends the checksums in bulk before the
/// migration; it names — but does not evaluate — the alternative of
/// querying the destination per page, expecting "the high frequency
/// exchange of small messages to slow down the migration". Both are
/// implemented so that expectation can be quantified
/// (bench_ablation_hash_exchange).
enum class HashExchangeMode {
  kBulk,          ///< destination ships its digest set up front
  kPerPageQuery,  ///< source asks per page, bounded by query_window
};

/// Wire compression of full-page payloads (Svärd et al. [24]; the paper
/// notes such techniques "can be combined with VeCycle"). Modeled as a
/// per-page compression ratio with CPU cost at both ends; checksum-only
/// records, dedup references and zero pages are unaffected (there is
/// nothing left to compress).
struct CompressionConfig {
  bool enabled = false;
  /// Mean compressed-size / original-size for guest pages. 0.55 matches
  /// the delta/RLE-class compressors of the era on mixed content.
  double mean_ratio = 0.55;
  /// Per-page spread around the mean (content-dependent), clamped to
  /// [0.05, 1.0].
  double ratio_jitter = 0.25;
  ByteRate compress_rate = MiBPerSecond(250.0);
  ByteRate decompress_rate = MiBPerSecond(500.0);

  /// Rejects ratios and rates no compressor can produce. Checked even
  /// when `enabled` is false, so a latent bad config fails at Validate
  /// time rather than on the day compression is switched on.
  void Validate() const;
};

struct MigrationConfig {
  Strategy strategy = Strategy::kHashes;
  DigestAlgorithm algorithm = DigestAlgorithm::kMd5;

  HashExchangeMode hash_exchange = HashExchangeMode::kBulk;
  /// Outstanding per-page queries allowed in flight (kPerPageQuery only).
  /// 1 models the naive synchronous scheme; larger windows pipeline.
  std::uint32_t query_window = 1;

  CompressionConfig compression;

  /// Pages per wire message. Real implementations buffer the RAM stream;
  /// 256 pages (1 MiB) per send matches QEMU's buffered chunking order of
  /// magnitude and keeps simulation event counts tractable.
  std::uint32_t batch_pages = 256;

  /// Pre-copy termination: enter the stop-and-copy round when the dirty
  /// set is at most this many pages...
  std::uint64_t stop_copy_threshold_pages = 2048;
  /// ...or after this many rounds regardless (QEMU behaves similarly to
  /// avoid livelock against fast writers).
  std::uint32_t max_rounds = 16;

  /// Runs this migration under the audit layer (src/audit): causality,
  /// page/byte conservation, and end-state digest checks, each violation
  /// throwing CheckFailure. The VECYCLE_AUDIT environment variable turns
  /// this on globally regardless of the flag.
  bool audit = false;

  /// Runs this migration under the observability layer (src/obs): per-round
  /// spans, channel byte timelines, CPU backlog and dirty-page counters
  /// recorded into obs::GlobalTrace(), and a metrics record of every
  /// MigrationStats field into obs::GlobalMetrics(). The VECYCLE_TRACE
  /// environment variable turns this on globally regardless of the flag.
  /// Disabled, the cost is one pointer test per event.
  bool trace = false;

  /// Runs this migration under the fault-injection layer (src/fault):
  /// link outages abort the session (phase kFailed), degradations slow
  /// it, disk errors and checkpoint rot exercise the per-page fallback
  /// path. The VECYCLE_FAULTS environment variable supplies a plan
  /// globally when this config is disabled. An explicit injector passed
  /// via MigrationRun::injector (the scheduler's mode) wins over both.
  fault::FaultConfig faults;

  void Validate() const;
};

}  // namespace vecycle::migration
