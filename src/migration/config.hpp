// Migration engine configuration.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "digest/digest.hpp"
#include "fault/fault.hpp"
#include "migration/strategy.hpp"

namespace vecycle::migration {

/// How the source learns which page contents exist at the destination
/// (§3.2). The paper's prototype sends the checksums in bulk before the
/// migration; it names — but does not evaluate — the alternative of
/// querying the destination per page, expecting "the high frequency
/// exchange of small messages to slow down the migration". Both are
/// implemented so that expectation can be quantified
/// (bench_ablation_hash_exchange).
enum class HashExchangeMode {
  kBulk,          ///< destination ships its digest set up front
  kPerPageQuery,  ///< source asks per page, bounded by query_window
};

/// Wire compression of full-page payloads (Svärd et al. [24]; the paper
/// notes such techniques "can be combined with VeCycle"). Modeled as a
/// per-page compression ratio with CPU cost at both ends; checksum-only
/// records, dedup references and zero pages are unaffected (there is
/// nothing left to compress).
struct CompressionConfig {
  bool enabled = false;
  /// Mean compressed-size / original-size for guest pages. 0.55 matches
  /// the delta/RLE-class compressors of the era on mixed content.
  double mean_ratio = 0.55;
  /// Per-page spread around the mean (content-dependent), clamped to
  /// [0.05, 1.0].
  double ratio_jitter = 0.25;
  ByteRate compress_rate = MiBPerSecond(250.0);
  ByteRate decompress_rate = MiBPerSecond(500.0);

  /// Rejects ratios and rates no compressor can produce. Checked even
  /// when `enabled` is false, so a latent bad config fails at Validate
  /// time rather than on the day compression is switched on.
  void Validate() const;
};

/// Multi-channel parallel transfer (QEMU's multifd capability). The
/// session opens `channels` forward TCP streams and stripes page records
/// across them by page index (page % channels), so one migration can
/// exceed the per-stream TCP window cap and saturate a fat link. Round
/// boundaries are synchronized with one marker per channel (QEMU's
/// MULTIFD_FLUSH); the destination acks only after every channel's
/// marker has arrived. Inactive (single channel, byte-identical to the
/// pre-multifd engine) unless enabled with channels > 1.
struct MultifdConfig {
  bool enabled = false;
  /// Parallel source -> destination streams. 1 behaves exactly like the
  /// single-channel engine; QEMU's default when the capability is on is
  /// 2, typical deployments use 4-16.
  std::uint32_t channels = 4;

  /// Streams actually used: 1 unless enabled.
  [[nodiscard]] std::uint32_t ActiveChannels() const {
    return enabled ? channels : 1;
  }

  /// Rejects channel counts the audit channel-id scheme cannot represent
  /// (see kMaxChannels). Checked even when `enabled` is false.
  void Validate() const;

  /// Channel-id namespace width: with multifd active, audit channel ids
  /// are session_id * 2 * kMaxChannels + stream index, so ids of distinct
  /// sessions never collide as long as channels <= kMaxChannels.
  static constexpr std::uint32_t kMaxChannels = 16;
};

/// XBZRLE-style delta encoding against the recycled checkpoint baseline
/// (the VeCycle-native composition of QEMU's xbzrle capability). The
/// source keeps a cache of the content it believes the destination holds
/// per page — pre-seeded from the departure-time seeds of the recycled
/// checkpoint, updated on every send — and ships a run-length delta
/// instead of the full page when the encoded size stays under
/// `max_ratio`. The destination verifies the baseline before applying;
/// a rotten baseline (checkpoint rot/truncation per vecycle::fault)
/// degrades per page to the full-content resend path.
struct DeltaConfig {
  bool enabled = false;
  /// Mean encoded-size / page-size across dirty pages. Real XBZRLE on
  /// guest working sets typically encodes a dirtied page into a small
  /// fraction of 4 KiB (most writes touch a few cachelines).
  double mean_ratio = 0.25;
  /// Per-page spread around the mean (content-dependent), clamped to
  /// [0.02, 1.0].
  double ratio_jitter = 0.2;
  /// Deltas larger than this fraction of a page fall back to a full-page
  /// send (QEMU's xbzrle overflow path).
  double max_ratio = 0.75;
  ByteRate encode_rate = MiBPerSecond(400.0);
  ByteRate decode_rate = MiBPerSecond(800.0);

  /// Rejects ratios and rates no delta codec can produce. Checked even
  /// when `enabled` is false, like CompressionConfig.
  void Validate() const;
};

/// Auto-converge (QEMU's auto-converge capability): when the guest
/// dirties memory faster than pre-copy drains it, progressively throttle
/// the guest's write rate so the dirty set shrinks and the migration
/// completes with bounded downtime instead of spinning until max_rounds.
struct AutoConvergeConfig {
  bool enabled = false;
  /// First throttle step: guest write rate is cut to (1 - 0.2) = 80% of
  /// nominal. QEMU's x-cpu-throttle-initial default is 20%.
  double initial_throttle = 0.2;
  /// Added on each further diverging round (QEMU's
  /// x-cpu-throttle-increment default is 10%).
  double throttle_increment = 0.1;
  /// Hard ceiling; QEMU caps at 99% — the guest never fully stops
  /// before the stop-and-copy round.
  double max_throttle = 0.99;
  /// A round diverges when bytes dirtied during it exceed this fraction
  /// of the bytes transferred (QEMU's throttle trigger threshold, 50%).
  double divergence_ratio = 0.5;
  /// Consecutive diverging rounds before the first throttle step.
  std::uint32_t trigger_rounds = 2;

  /// Rejects throttle fractions outside [0, 1) and degenerate triggers.
  /// Checked even when `enabled` is false.
  void Validate() const;
};

struct MigrationConfig {
  Strategy strategy = Strategy::kHashes;
  DigestAlgorithm algorithm = DigestAlgorithm::kMd5;

  HashExchangeMode hash_exchange = HashExchangeMode::kBulk;
  /// Outstanding per-page queries allowed in flight (kPerPageQuery only).
  /// 1 models the naive synchronous scheme; larger windows pipeline.
  std::uint32_t query_window = 1;

  CompressionConfig compression;

  /// Transfer-stack capabilities (QEMU parity; docs/migration.md
  /// "Transfer stack").
  MultifdConfig multifd;
  DeltaConfig delta;
  AutoConvergeConfig auto_converge;

  /// Pages per wire message. Real implementations buffer the RAM stream;
  /// 256 pages (1 MiB) per send matches QEMU's buffered chunking order of
  /// magnitude and keeps simulation event counts tractable.
  std::uint32_t batch_pages = 256;

  /// Pre-copy termination: enter the stop-and-copy round when the dirty
  /// set is at most this many pages...
  std::uint64_t stop_copy_threshold_pages = 2048;
  /// ...or after this many rounds regardless (QEMU behaves similarly to
  /// avoid livelock against fast writers).
  std::uint32_t max_rounds = 16;

  /// Runs this migration under the audit layer (src/audit): causality,
  /// page/byte conservation, and end-state digest checks, each violation
  /// throwing CheckFailure. The VECYCLE_AUDIT environment variable turns
  /// this on globally regardless of the flag.
  bool audit = false;

  /// Runs this migration under the observability layer (src/obs): per-round
  /// spans, channel byte timelines, CPU backlog and dirty-page counters
  /// recorded into obs::GlobalTrace(), and a metrics record of every
  /// MigrationStats field into obs::GlobalMetrics(). The VECYCLE_TRACE
  /// environment variable turns this on globally regardless of the flag.
  /// Disabled, the cost is one pointer test per event.
  bool trace = false;

  /// Runs this migration under the fault-injection layer (src/fault):
  /// link outages abort the session (phase kFailed), degradations slow
  /// it, disk errors and checkpoint rot exercise the per-page fallback
  /// path. The VECYCLE_FAULTS environment variable supplies a plan
  /// globally when this config is disabled. An explicit injector passed
  /// via MigrationRun::injector (the scheduler's mode) wins over both.
  fault::FaultConfig faults;

  void Validate() const;
};

}  // namespace vecycle::migration
