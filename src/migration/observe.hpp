// Adapters from migration result structs to the obs metrics schema.
//
// These live in the migration layer (not obs) because they read
// MigrationStats / PostCopyStats; obs stays below migration in the
// dependency graph. Every field of the struct is serialized — the CI
// schema check (tools/validate_metrics.py) counts on that — plus the
// derived rates the paper reports, guarded against zero denominators by
// the helpers on the structs themselves.
#pragma once

#include <cstdint>
#include <string_view>

#include "migration/postcopy.hpp"
#include "migration/stats.hpp"
#include "obs/metrics.hpp"

namespace vecycle::migration {

/// Appends one "precopy" record covering every MigrationStats field
/// (counters) and the derived seconds/throughput/compression gauges.
/// `session_id` is the scheduler's session identity (0 for the anonymous
/// synchronous facade); it is emitted as its own counter so fleet runs can
/// be joined against per-session audit/trace data by id, not label.
obs::MetricsRecord& RecordMigrationStats(obs::MetricsRegistry& registry,
                                         std::string_view label,
                                         const MigrationStats& stats,
                                         std::uint64_t session_id = 0);

/// Appends one "postcopy" record covering every PostCopyStats field.
obs::MetricsRecord& RecordPostCopyStats(obs::MetricsRegistry& registry,
                                        std::string_view label,
                                        const PostCopyStats& stats);

}  // namespace vecycle::migration
