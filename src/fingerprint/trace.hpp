// Fingerprint traces: an ordered series of fingerprints of one machine,
// the on-disk artifact the Memory Buddies project published and §2.3
// analyzes (one fingerprint every 30 minutes over days). Traces carry gaps
// naturally — laptops are powered off at night, servers reboot — simply by
// having non-uniform timestamps, exactly as the original corpus does.
//
// The binary format is versioned and self-describing:
//   magic "VECTRACE" | u32 version | u32 name_len | name bytes
//   u64 fingerprint_count | per fingerprint: i64 timestamp_ns |
//   u64 page_count | page_count * u64 hashes
// All integers little-endian.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fingerprint/fingerprint.hpp"

namespace vecycle::fp {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string machine_name)
      : machine_name_(std::move(machine_name)) {}

  [[nodiscard]] const std::string& MachineName() const {
    return machine_name_;
  }

  /// Appends a fingerprint; timestamps must be strictly increasing.
  void Append(Fingerprint fingerprint);

  [[nodiscard]] std::size_t Size() const { return fingerprints_.size(); }
  [[nodiscard]] bool Empty() const { return fingerprints_.empty(); }
  [[nodiscard]] const Fingerprint& At(std::size_t index) const {
    return fingerprints_.at(index);
  }
  [[nodiscard]] const std::vector<Fingerprint>& Fingerprints() const {
    return fingerprints_;
  }

  /// Total time covered, last timestamp minus first.
  [[nodiscard]] SimDuration Span() const;

  void WriteTo(std::ostream& out) const;
  static Trace ReadFrom(std::istream& in);

  void SaveFile(const std::string& path) const;
  static Trace LoadFile(const std::string& path);

 private:
  std::string machine_name_;
  std::vector<Fingerprint> fingerprints_;
};

}  // namespace vecycle::fp
