#include "fingerprint/fingerprint.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace vecycle::fp {

std::uint64_t ZeroPageHash() {
  return SplitMix64(vm::kZeroPageSeed + 1).Next();
}

Fingerprint::Fingerprint(SimTime timestamp,
                         std::vector<std::uint64_t> page_hashes)
    : timestamp_(timestamp), page_hashes_(std::move(page_hashes)) {
  VEC_CHECK_MSG(!page_hashes_.empty(), "empty fingerprint");
}

const std::vector<std::uint64_t>& Fingerprint::UniqueHashes() const {
  if (unique_cache_.empty() && !page_hashes_.empty()) {
    unique_cache_ = page_hashes_;
    std::sort(unique_cache_.begin(), unique_cache_.end());
    unique_cache_.erase(
        std::unique(unique_cache_.begin(), unique_cache_.end()),
        unique_cache_.end());
  }
  return unique_cache_;
}

double Fingerprint::DuplicateFraction() const {
  if (page_hashes_.empty()) return 0.0;
  return 1.0 - static_cast<double>(UniqueHashes().size()) /
                   static_cast<double>(page_hashes_.size());
}

double Fingerprint::ZeroFraction() const {
  if (page_hashes_.empty()) return 0.0;
  const std::uint64_t zero = ZeroPageHash();
  const auto zeros = static_cast<std::uint64_t>(
      std::count(page_hashes_.begin(), page_hashes_.end(), zero));
  return static_cast<double>(zeros) /
         static_cast<double>(page_hashes_.size());
}

bool Fingerprint::Contains(std::uint64_t hash) const {
  const auto& unique = UniqueHashes();
  return std::binary_search(unique.begin(), unique.end(), hash);
}

Fingerprint Capture(const vm::GuestMemory& memory, SimTime now) {
  std::vector<std::uint64_t> hashes(memory.PageCount());
  for (vm::PageId page = 0; page < memory.PageCount(); ++page) {
    hashes[page] = memory.ContentHash64(page);
  }
  return Fingerprint(now, std::move(hashes));
}

std::uint64_t SharedUniqueHashes(const Fingerprint& a, const Fingerprint& b) {
  const auto& ua = a.UniqueHashes();
  const auto& ub = b.UniqueHashes();
  std::uint64_t shared = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ua.size() && j < ub.size()) {
    if (ua[i] < ub[j]) {
      ++i;
    } else if (ub[j] < ua[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

double Similarity(const Fingerprint& a, const Fingerprint& b) {
  const auto& ua = a.UniqueHashes();
  VEC_CHECK_MSG(!ua.empty(), "similarity of an empty fingerprint");
  return static_cast<double>(SharedUniqueHashes(a, b)) /
         static_cast<double>(ua.size());
}

}  // namespace vecycle::fp
