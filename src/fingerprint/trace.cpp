#include "fingerprint/trace.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace vecycle::fp {
namespace {

constexpr char kMagic[8] = {'V', 'E', 'C', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T ReadPod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  VEC_CHECK_MSG(in.good(), "truncated trace stream");
  return value;
}

}  // namespace

void Trace::Append(Fingerprint fingerprint) {
  if (!fingerprints_.empty()) {
    VEC_CHECK_MSG(fingerprint.Timestamp() > fingerprints_.back().Timestamp(),
                  "trace timestamps must be strictly increasing");
    VEC_CHECK_MSG(
        fingerprint.PageCount() == fingerprints_.front().PageCount(),
        "all fingerprints in a trace must cover the same page count");
  }
  fingerprints_.push_back(std::move(fingerprint));
}

SimDuration Trace::Span() const {
  if (fingerprints_.size() < 2) return SimDuration::zero();
  return fingerprints_.back().Timestamp() -
         fingerprints_.front().Timestamp();
}

void Trace::WriteTo(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<std::uint32_t>(machine_name_.size()));
  out.write(machine_name_.data(),
            static_cast<std::streamsize>(machine_name_.size()));
  WritePod(out, static_cast<std::uint64_t>(fingerprints_.size()));
  for (const auto& f : fingerprints_) {
    WritePod(out, static_cast<std::int64_t>(f.Timestamp().count()));
    WritePod(out, static_cast<std::uint64_t>(f.PageCount()));
    out.write(reinterpret_cast<const char*>(f.PageHashes().data()),
              static_cast<std::streamsize>(f.PageCount() * sizeof(std::uint64_t)));
  }
  VEC_CHECK_MSG(out.good(), "trace write failed");
}

Trace Trace::ReadFrom(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  VEC_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 8) == 0,
                "not a VECTRACE stream");
  const auto version = ReadPod<std::uint32_t>(in);
  VEC_CHECK_MSG(version == kVersion, "unsupported trace version");

  const auto name_len = ReadPod<std::uint32_t>(in);
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  VEC_CHECK_MSG(in.good(), "truncated trace name");

  Trace trace(std::move(name));
  const auto count = ReadPod<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto ts = ReadPod<std::int64_t>(in);
    const auto pages = ReadPod<std::uint64_t>(in);
    std::vector<std::uint64_t> hashes(pages);
    in.read(reinterpret_cast<char*>(hashes.data()),
            static_cast<std::streamsize>(pages * sizeof(std::uint64_t)));
    VEC_CHECK_MSG(in.good(), "truncated fingerprint data");
    trace.Append(Fingerprint(SimTime{ts}, std::move(hashes)));
  }
  return trace;
}

void Trace::SaveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  VEC_CHECK_MSG(out.is_open(), "cannot open trace file for writing: " + path);
  WriteTo(out);
}

Trace Trace::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VEC_CHECK_MSG(in.is_open(), "cannot open trace file: " + path);
  return ReadFrom(in);
}

}  // namespace vecycle::fp
