// Memory fingerprints (§2.1).
//
// A fingerprint F of an n-page machine is the list of per-page content
// hashes [h(p_0) .. h(p_{n-1})], captured at a point in time. The set of
// *unique* hashes U drives the paper's similarity metric: similarity of
// Ua with Ub is |Ua ∩ Ub| / |Ua|. This module captures fingerprints from
// GuestMemory, computes similarity and duplicate/zero-page statistics, and
// is the substrate for the Memory-Buddies-style trace analysis of §2.3/§4.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::fp {

/// The 64-bit content hash of the all-zero page, as produced by
/// GuestMemory::ContentHash64 for seed 0.
std::uint64_t ZeroPageHash();

class Fingerprint {
 public:
  Fingerprint() = default;
  Fingerprint(SimTime timestamp, std::vector<std::uint64_t> page_hashes);

  [[nodiscard]] SimTime Timestamp() const { return timestamp_; }
  [[nodiscard]] std::uint64_t PageCount() const {
    return page_hashes_.size();
  }
  [[nodiscard]] const std::vector<std::uint64_t>& PageHashes() const {
    return page_hashes_;
  }
  [[nodiscard]] std::uint64_t HashAt(std::uint64_t page) const {
    return page_hashes_[page];
  }

  /// Sorted vector of distinct hashes (the set U of §2.1). Built on first
  /// use and cached; the cache survives copies.
  [[nodiscard]] const std::vector<std::uint64_t>& UniqueHashes() const;

  /// 1 - |U|/n: the fraction of pages whose content also occurs elsewhere
  /// in the same fingerprint (Fig. 4's "duplicate pages").
  [[nodiscard]] double DuplicateFraction() const;

  /// Fraction of pages that are all zeros (Fig. 4's rightmost plot).
  [[nodiscard]] double ZeroFraction() const;

  /// True if `hash` occurs anywhere in this fingerprint (binary search on
  /// the unique set).
  [[nodiscard]] bool Contains(std::uint64_t hash) const;

 private:
  SimTime timestamp_ = kSimEpoch;
  std::vector<std::uint64_t> page_hashes_;
  mutable std::vector<std::uint64_t> unique_cache_;
};

/// Captures a fingerprint of `memory` at time `now` using the fast 64-bit
/// content hash (hash collisions are irrelevant at statistics scale; the
/// migration protocol itself uses full Digest128 checksums).
Fingerprint Capture(const vm::GuestMemory& memory, SimTime now);

/// |Ua ∩ Ub| / |Ua| — the §2.1 similarity of fingerprint `a` with `b`.
/// Asymmetric by definition (denominator is |Ua|).
double Similarity(const Fingerprint& a, const Fingerprint& b);

/// |Ua ∩ Ub| via linear merge of the two sorted unique sets.
std::uint64_t SharedUniqueHashes(const Fingerprint& a, const Fingerprint& b);

}  // namespace vecycle::fp
