// Network link model.
//
// A full-duplex point-to-point link with a serialization rate and a
// propagation latency per direction, matching the paper's two benchmark
// configurations: gigabit Ethernet LAN and the CloudNet-derived emulated
// WAN (465 Mbps, 27 ms average latency, §4.4). Each direction is a FIFO
// server, so concurrent transfers queue exactly as they would on the wire.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"

namespace vecycle::sim {

struct LinkConfig {
  ByteRate bandwidth = GigabitsPerSecond(1.0);
  SimDuration latency = Milliseconds(0.2);
  /// TCP flow-window cap: a single migration stream cannot exceed
  /// window / latency regardless of line rate. Zero disables the cap.
  /// This models the §4.4 observation that the emulated 465 Mbps WAN
  /// delivered far less than line rate to one TCP connection (the paper
  /// measured ~6 Mbps for a 1 GiB migration and ~55 Mbps for larger
  /// transfers once the window had grown).
  Bytes tcp_window{0};

  /// Effective per-stream rate after the window cap.
  [[nodiscard]] ByteRate EffectiveBandwidth() const {
    if (tcp_window.count == 0 || ToSeconds(latency) <= 0.0) {
      return bandwidth;
    }
    const double window_rate =
        static_cast<double>(tcp_window.count) / ToSeconds(latency);
    return ByteRate{std::min(bandwidth.bytes_per_second, window_rate)};
  }

  void Validate() const {
    VEC_CHECK_MSG(bandwidth.bytes_per_second > 0.0,
                  "link bandwidth must be positive");
    VEC_CHECK_MSG(latency >= SimDuration::zero(),
                  "link latency must be non-negative");
    // tcp_window: every value is legal — Bytes is unsigned, and zero
    // means "no window cap" by the EffectiveRate contract above.
  }

  /// Gigabit Ethernet LAN of the paper's testbed. 0.2 ms is a typical
  /// switched-LAN RTT/2; the paper quotes the effective payload rate as
  /// ~120 MiB/s, which 1 Gbps with ~6% framing overhead reproduces.
  static LinkConfig Lan() {
    return LinkConfig{GigabitsPerSecond(1.0), Milliseconds(0.2), Bytes{0}};
  }

  /// Emulated wide-area network per CloudNet as used in §4.4: 465 Mbps
  /// line rate, 27 ms average latency, single-stream throughput capped by
  /// a 192 KiB window (~56 Mbps effective — matching the paper's measured
  /// WAN migration times for multi-GiB transfers).
  static LinkConfig Wan() {
    return LinkConfig{MegabitsPerSecond(465.0), Milliseconds(27.0),
                      KiB(192)};
  }
};

/// Directions are named from the perspective of the first endpoint ("A").
enum class Direction { kAtoB, kBtoA };

class Link {
 public:
  explicit Link(LinkConfig config) : config_(config) { config_.Validate(); }

  /// What happened to one transmission, for callers (the migration
  /// channel) that react to injected faults. `cut` means an outage window
  /// overlapped the wire booking: the message is lost in flight.
  struct TransmitInfo {
    SimTime start = kSimEpoch;       ///< first byte on the wire
    SimTime serialized = kSimEpoch;  ///< last byte on the wire
    bool cut = false;
  };

  /// Books the transmission of `payload` bytes in `dir`, starting no
  /// earlier than `earliest`. Returns the time at which the last byte
  /// arrives at the far end (serialization + propagation latency).
  /// When a fault injector is attached, degradation windows stretch the
  /// serialization and outage windows mark the transmission cut in
  /// `info` (the wire time is still booked — the sender spent it).
  SimTime Transmit(Direction dir, SimTime earliest, Bytes payload,
                   TransmitInfo* info = nullptr) {
    return TransmitAt(dir, earliest, payload, config_.EffectiveBandwidth(),
                      info);
  }

  /// Multifd stream path: serialization happens at the link's *line*
  /// rate, not the window-capped per-stream rate. Each multifd channel is
  /// its own TCP stream; the per-stream window cap limits how fast one
  /// stream may inject (the caller — net::Channel — spaces successive
  /// sends by StreamPace()), while the shared wire serializes all streams
  /// at line rate. N streams therefore aggregate to
  /// min(line rate, N * window rate), which is exactly why real multifd
  /// speeds up window-bound WAN migrations. Single-channel sessions keep
  /// using Transmit() — byte-identical to the pre-multifd engine.
  SimTime TransmitLineRate(Direction dir, SimTime earliest, Bytes payload,
                           TransmitInfo* info = nullptr) {
    return TransmitAt(dir, earliest, payload, config_.bandwidth, info);
  }

  /// Time one TCP stream needs between successive injections of
  /// `payload` (framed) to honor the flow-window cap. Pairs with
  /// TransmitLineRate above.
  [[nodiscard]] SimDuration StreamPace(Bytes payload) const {
    const auto wire_bytes = static_cast<std::uint64_t>(
        static_cast<double>(payload.count) * kFramingOverhead);
    return config_.EffectiveBandwidth().TimeFor(Bytes{wire_bytes});
  }

 private:
  SimTime TransmitAt(Direction dir, SimTime earliest, Bytes payload,
                     ByteRate rate, TransmitInfo* info) {
    // Ethernet/IP/TCP framing: ~1448 payload bytes per 1538 wire bytes.
    // This is what turns 1 Gbps into the ~112-118 MiB/s of goodput real
    // migrations see.
    const auto wire_bytes = static_cast<std::uint64_t>(
        static_cast<double>(payload.count) * kFramingOverhead);
    SimDuration serialize = rate.TimeFor(Bytes{wire_bytes});
    auto& server = dir == Direction::kAtoB ? a_to_b_ : b_to_a_;
    if (injector_ != nullptr) {
      const double factor =
          injector_->LinkDegradeFactor(std::max(earliest,
                                                server.AvailableAt()));
      if (factor < 1.0) {
        serialize = SimDuration{static_cast<SimDuration::rep>(
            static_cast<double>(serialize.count()) / factor)};
      }
    }
    const auto booking = server.Reserve(earliest, serialize);
    auto& stats = MutableStats(dir);
    stats.payload_bytes += payload;
    stats.wire_bytes += Bytes{wire_bytes};
    stats.transfers += 1;
    if (info != nullptr) {
      info->start = booking.start;
      info->serialized = booking.end;
      info->cut = injector_ != nullptr &&
                  injector_->LinkCut(booking.start, booking.end);
    }
    return booking.end + config_.latency;
  }

 public:
  /// Attaches a fault injector consulted on every transmission; pass
  /// nullptr to detach. The caller owns the injector.
  void SetFaultInjector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  [[nodiscard]] fault::FaultInjector* Injector() const { return injector_; }

  struct DirectionStats {
    Bytes payload_bytes;
    Bytes wire_bytes;
    std::uint64_t transfers = 0;
  };

  [[nodiscard]] const DirectionStats& Stats(Direction dir) const {
    return dir == Direction::kAtoB ? stats_ab_ : stats_ba_;
  }

  [[nodiscard]] const LinkConfig& Config() const { return config_; }

  void ResetStats() {
    stats_ab_ = {};
    stats_ba_ = {};
  }

  /// Clears queued bookings (and stats); used between independent
  /// experiment repetitions sharing one topology.
  void Reset() {
    a_to_b_.Reset();
    b_to_a_.Reset();
    ResetStats();
  }

 private:
  DirectionStats& MutableStats(Direction dir) {
    return dir == Direction::kAtoB ? stats_ab_ : stats_ba_;
  }

  static constexpr double kFramingOverhead = 1538.0 / 1448.0;

  LinkConfig config_;
  fault::FaultInjector* injector_ = nullptr;
  FifoResource a_to_b_;
  FifoResource b_to_a_;
  DirectionStats stats_ab_;
  DirectionStats stats_ba_;
};

}  // namespace vecycle::sim
