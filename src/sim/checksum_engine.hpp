// Checksum-rate model.
//
// §3.4: the benchmark machines compute MD5 at ~350 MiB/s on one core —
// about 3x gigabit-Ethernet line rate, so checksumming is not the
// bottleneck on GbE but *becomes* the lower bound on migration time when
// similarity is high or links are faster. The engine books hashing work on
// a per-core FIFO server so that bound emerges naturally from the
// simulation instead of being asserted.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/units.hpp"
#include "digest/digest.hpp"
#include "sim/simulator.hpp"

namespace vecycle::sim {

struct ChecksumEngineConfig {
  /// Single-core hashing rates. MD5 350 MiB/s matches §3.4; SHA-1 is
  /// roughly 40% slower and SHA-256 roughly 2.5x slower on the same era
  /// of hardware; FNV-1a runs at memory speed.
  ByteRate md5_rate = MiBPerSecond(350.0);
  ByteRate sha1_rate = MiBPerSecond(210.0);
  ByteRate sha256_rate = MiBPerSecond(140.0);
  ByteRate fnv_rate = MiBPerSecond(2800.0);
  /// Worker threads hashing in parallel (§3.4 names multi-threading as the
  /// lever for >1 Gbps links). The model divides work evenly.
  std::uint32_t threads = 1;

  void Validate() const {
    VEC_CHECK_MSG(md5_rate.bytes_per_second > 0.0,
                  "checksum md5_rate must be positive");
    VEC_CHECK_MSG(sha1_rate.bytes_per_second > 0.0,
                  "checksum sha1_rate must be positive");
    VEC_CHECK_MSG(sha256_rate.bytes_per_second > 0.0,
                  "checksum sha256_rate must be positive");
    VEC_CHECK_MSG(fnv_rate.bytes_per_second > 0.0,
                  "checksum fnv_rate must be positive");
    VEC_CHECK_MSG(threads > 0, "checksum engine needs at least one thread");
  }

  [[nodiscard]] ByteRate RateFor(DigestAlgorithm algorithm) const {
    switch (algorithm) {
      case DigestAlgorithm::kMd5:
        return md5_rate;
      case DigestAlgorithm::kSha1:
        return sha1_rate;
      case DigestAlgorithm::kSha256:
        return sha256_rate;
      case DigestAlgorithm::kFnv1a:
        return fnv_rate;
    }
    // Reaching here means an algorithm was added to the enum without a
    // configured rate; silently hashing it at the MD5 rate would skew every
    // timing result, so fail loudly instead.
    VEC_CHECK_MSG(false, "ChecksumEngineConfig::RateFor: unenumerated digest algorithm");
  }
};

class ChecksumEngine {
 public:
  explicit ChecksumEngine(ChecksumEngineConfig config) : config_(config) {
    config_.Validate();
  }

  /// Books hashing of `n` bytes with `algorithm`; returns completion time.
  SimTime Hash(SimTime earliest, Bytes n, DigestAlgorithm algorithm) {
    hashed_bytes_ += n;
    return Work(earliest, n, config_.RateFor(algorithm));
  }

  /// Books generic per-byte CPU work (e.g. compression) at `rate` on the
  /// same cores the checksums run on, so hashing and compression contend
  /// realistically.
  SimTime Work(SimTime earliest, Bytes n, ByteRate rate) {
    if (tracer_ != nullptr) {
      // Backlog already queued on the cores when this request arrives —
      // positive values mean hashing (not the link) is the bottleneck.
      const SimTime avail = core_.AvailableAt();
      const auto backlog =
          avail > earliest ? (avail - earliest).count() : SimDuration::rep{0};
      tracer_->Counter(tracer_track_, tracer_counter_, earliest,
                       static_cast<double>(backlog));
    }
    const double effective =
        rate.bytes_per_second * static_cast<double>(config_.threads);
    const auto booking =
        core_.Reserve(earliest, ByteRate{effective}.TimeFor(n));
    return booking.end;
  }

  /// Attaches a trace recorder that receives a per-request CPU backlog
  /// counter (nanoseconds of queued work) on `track`; nullptr detaches.
  void SetTracer(obs::TraceRecorder* tracer, obs::TrackId track = 0) {
    tracer_ = tracer;
    tracer_track_ = track;
    if (tracer_ != nullptr) tracer_counter_ = tracer_->Name("cpu_backlog_ns");
  }
  [[nodiscard]] obs::TraceRecorder* Tracer() const { return tracer_; }

  [[nodiscard]] Bytes HashedBytes() const { return hashed_bytes_; }
  [[nodiscard]] const ChecksumEngineConfig& Config() const { return config_; }

  void Reset() {
    core_.Reset();
    hashed_bytes_ = Bytes{0};
  }

 private:
  ChecksumEngineConfig config_;
  FifoResource core_;
  Bytes hashed_bytes_;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::TrackId tracer_track_ = 0;
  obs::NameId tracer_counter_ = 0;
};

}  // namespace vecycle::sim
