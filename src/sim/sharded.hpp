// Conservative parallel discrete-event simulation (PDES).
//
// The single-threaded Simulator caps fleets at tens of hosts (~3.1 M
// events/s). This module shards one logical simulation across several
// Simulator instances — one event queue and clock per shard — and runs
// the shards on worker threads under barrier-window synchronization:
//
//   * Hosts (and with them their disks, CPUs, stores and the VMs they
//     run) are partitioned into shards by a fixed, seed-deterministic
//     ShardPlan. The plan never depends on the worker count.
//   * The minimum propagation latency over links that cross shards is
//     the *lookahead*. Any message sent at time t on a cross-shard link
//     arrives no earlier than t + lookahead, so all shards may execute
//     the window [T, T + lookahead) independently: nothing sent inside
//     the window can be received inside it.
//   * Cross-shard messages are posted to a per-source-shard mailbox
//     (guarded by a real common::Mutex — this is the seam PR 6's
//     NullMutex annotations anticipated) and merged into the target
//     shards at the barrier, in (source shard id, post order) — a
//     deterministic order, so target-queue sequence numbers, and with
//     them every tie-break, replay identically at any worker count.
//
// Worker count is an execution detail: shard s runs on worker s % W, and
// W <= 1 runs every shard inline on the calling thread. Because shards
// never share mutable state inside a window and the merge order is
// fixed, the observable behaviour (audit fingerprints, traces, stats)
// is byte-identical for every W, including 1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace vecycle::sim {

using ShardId = std::uint32_t;

/// Fixed partition of entity keys (host ids) onto shards. Built once,
/// before the run, and immutable during it; the assignment depends only
/// on the key set, the shard count and the seed — never on the worker
/// count — so every execution of a scenario sees the same partition.
class ShardPlan {
 public:
  ShardPlan() = default;

  /// Seed-deterministic automatic partition: keys are sorted, shuffled by
  /// a seeded Xoshiro256, and dealt round-robin onto `shard_count`
  /// shards. Sorting first makes the result a pure function of the key
  /// *set* (insertion order does not leak in).
  static ShardPlan Build(std::vector<std::string> keys,
                         std::uint32_t shard_count, std::uint64_t seed);

  /// Manual assignment for topology-aware plans (e.g. one shard per
  /// datacenter site, so intra-site LAN links never constrain the
  /// lookahead). Grows the shard count to cover `shard`.
  void Assign(const std::string& key, ShardId shard);

  [[nodiscard]] ShardId ShardOf(const std::string& key) const {
    const auto it = assignment_.find(key);
    VEC_CHECK_MSG(it != assignment_.end(),
                  "shard plan does not cover key: " + key);
    return it->second;
  }

  [[nodiscard]] bool Covers(const std::string& key) const {
    return assignment_.contains(key);
  }

  [[nodiscard]] std::uint32_t ShardCount() const { return shard_count_; }
  [[nodiscard]] std::size_t KeyCount() const { return assignment_.size(); }

  /// Rejects plans no sharded run could execute: zero shards, or an
  /// assignment pointing past the shard count.
  void Validate() const;

 private:
  std::map<std::string, ShardId> assignment_;
  std::uint32_t shard_count_ = 0;
};

/// Worker count requested via the VECYCLE_THREADS environment variable;
/// 1 (the serial facade) when unset or unparsable. Values are clamped to
/// [1, 64].
[[nodiscard]] std::size_t ThreadsFromEnv();

namespace pdes_internal {

/// One cross-shard message waiting in a mailbox for the next barrier.
struct Posted {
  ShardId to = 0;
  SimTime when = kSimEpoch;
  std::function<void()> action;
};

/// Per-source-shard mailbox. Exactly one worker (the source shard's)
/// appends during a window; the coordinator drains at the barrier. The
/// real lock makes that safe even if a future caller posts from the
/// control plane mid-merge, and is uncontended by construction.
struct Mailbox {
  common::Mutex mu;
  std::vector<Posted> posts VEC_GUARDED_BY(mu);
};

}  // namespace pdes_internal

/// A set of Simulator shards plus the cross-shard mailbox and the
/// barrier-window run loop.
///
/// Thread model: between windows (construction, barriers, and after
/// Run() returns) only the coordinating thread touches anything. Inside
/// a window, shard s is touched exclusively by the worker that owns it —
/// the per-shard Simulator keeps its zero-cost NullMutex for exactly
/// this reason. The only cross-thread traffic is Post(), which appends
/// to the posting shard's own mailbox under a real lock, and the worker
/// pool handshake; the barrier provides the happens-before edge for
/// everything else.
class ShardedSimulator {
 public:
  explicit ShardedSimulator(std::uint32_t shard_count);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] std::uint32_t ShardCount() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] Simulator& Shard(ShardId shard) {
    VEC_CHECK_MSG(shard < shards_.size(), "shard id out of range");
    return *shards_[shard];
  }

  /// Queues `action` for shard `to` at simulated time `when`, posted by
  /// shard `from`. Safe to call from `from`'s worker while a window runs;
  /// the action is merged into `to`'s event queue at the next barrier.
  /// `when` must be at or after the end of the current window — that is
  /// the conservative-PDES contract the lookahead guarantees.
  void Post(ShardId from, ShardId to, SimTime when,
            std::function<void()> action);

  /// The DeliveryExecutor a channel from shard `from` to shard `to` uses.
  /// Routes are created lazily (coordinator thread only) and live as long
  /// as the ShardedSimulator.
  [[nodiscard]] DeliveryExecutor& Route(ShardId from, ShardId to);

  /// Barrier-time hook: called with the logical time of each window
  /// boundary after the window's cross-shard messages were merged.
  /// Returns the next time the control plane wants to run even if no
  /// events pend (a retry-backoff deadline), or kNoPendingEvent.
  using ControlFn = std::function<SimTime(SimTime now)>;

  /// Runs every shard to completion under barrier-window synchronization
  /// with the given `lookahead` (must be positive). `workers` <= 1 runs
  /// inline; shard s executes on worker s % workers otherwise. Returns
  /// the latest shard clock. The event order inside each shard and the
  /// merge order between shards are independent of `workers`.
  SimTime Run(std::size_t workers, SimDuration lookahead,
              const ControlFn& control = nullptr);

  /// Advances every shard to `deadline` (events at or before it run,
  /// clocks end at `deadline`), serially in shard order — the sharded
  /// equivalent of Simulator::RunUntil for the quiescent periods between
  /// Drain() calls, when VMs churn in place.
  void AdvanceAllTo(SimTime deadline);

  /// Latest clock across shards — the fleet's notion of "now" while
  /// quiescent.
  [[nodiscard]] SimTime MaxNow() const;

  /// Earliest pending event across shards, or kNoPendingEvent.
  [[nodiscard]] SimTime NextEventTime() const;

 private:
  class MailboxRoute final : public DeliveryExecutor {
   public:
    MailboxRoute(ShardedSimulator* owner, ShardId from, ShardId to)
        : owner_(owner), from_(from), to_(to) {}
    void DeliverAt(SimTime when, std::function<void()> action) override {
      owner_->Post(from_, to_, when, std::move(action));
    }

   private:
    ShardedSimulator* owner_;
    ShardId from_;
    ShardId to_;
  };

  /// Merges every mailbox into its target shards, source shard id first,
  /// post order within a source — the deterministic cross-shard order.
  /// Coordinator only. Returns the number of merged events.
  std::size_t DrainMailboxes(SimTime window_end);

  // Immutable after construction (coordinator wires routes before the
  // workers exist; Route() is documented coordinator-only).
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::unique_ptr<pdes_internal::Mailbox>> mailboxes_;
  std::map<std::pair<ShardId, ShardId>, std::unique_ptr<MailboxRoute>>
      routes_;
  /// End of the window currently executing (or last executed): Post()
  /// asserts the conservative contract `when >= window_end_` against it.
  /// Written at barriers only; read by Post() from workers — the barrier
  /// handshake orders those accesses.
  SimTime window_end_ = kSimEpoch;
};

}  // namespace vecycle::sim
