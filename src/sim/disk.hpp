// Local disk model.
//
// Checkpoints are written to and read from each host's local disk (§3.3:
// the destination sequentially scans the checkpoint to initialize guest
// RAM; non-matching pages are later fetched from the checkpoint at random
// offsets, Listing 1). The model charges a sequential streaming rate plus a
// per-random-request positioning cost, parameterized for the paper's two
// devices: a Samsung HD204UI spinning disk and an Intel SSDSC2CT120 SSD on
// SATA-2 (§4.1). §4.4 reports checkpoint placement (HDD vs SSD) made no
// difference to migration time; bench_ablation_disk reproduces that.
#pragma once

#include <cstdint>
#include <optional>

#include "common/check.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"

namespace vecycle::sim {

struct DiskConfig {
  ByteRate sequential_read = MiBPerSecond(120.0);
  ByteRate sequential_write = MiBPerSecond(110.0);
  /// Average positioning time charged per non-sequential request
  /// (seek + rotational delay for HDD, controller latency for SSD).
  SimDuration random_access = Milliseconds(12.0);

  void Validate() const {
    VEC_CHECK_MSG(sequential_read.bytes_per_second > 0.0,
                  "disk sequential_read rate must be positive");
    VEC_CHECK_MSG(sequential_write.bytes_per_second > 0.0,
                  "disk sequential_write rate must be positive");
    VEC_CHECK_MSG(random_access >= SimDuration::zero(),
                  "disk random_access must be non-negative");
  }

  /// Samsung HD204UI 2 TB, 5400 rpm, SATA-2.
  static DiskConfig Hdd() {
    return DiskConfig{MiBPerSecond(120.0), MiBPerSecond(110.0),
                      Milliseconds(12.0)};
  }

  /// Intel SSDSC2CT120 (330 series) on SATA-2 — sequential throughput caps
  /// near the SATA-2 ceiling; random access is effectively free at page
  /// granularity.
  static DiskConfig Ssd() {
    return DiskConfig{MiBPerSecond(250.0), MiBPerSecond(230.0),
                      Milliseconds(0.1)};
  }
};

class Disk {
 public:
  explicit Disk(DiskConfig config) : config_(config) { config_.Validate(); }

  /// Books a sequential streaming read of `n` bytes. With a fault
  /// injector attached, `error` (when non-null) receives the earliest
  /// read-error window overlapping the booking — the disk time is still
  /// charged, the data is not to be trusted.
  SimTime ReadSequential(SimTime earliest, Bytes n,
                         std::optional<fault::FaultWindow>* error = nullptr) {
    const auto booking =
        device_.Reserve(earliest, config_.sequential_read.TimeFor(n));
    read_bytes_ += n;
    RecordReadFault(booking.start, booking.end, error);
    return booking.end;
  }

  /// Books a random read of `n` bytes (positioning cost + transfer).
  SimTime ReadRandom(SimTime earliest, Bytes n,
                     std::optional<fault::FaultWindow>* error = nullptr) {
    const auto booking = device_.Reserve(
        earliest, config_.random_access + config_.sequential_read.TimeFor(n));
    read_bytes_ += n;
    random_reads_ += 1;
    RecordReadFault(booking.start, booking.end, error);
    return booking.end;
  }

  /// Books a sequential streaming write of `n` bytes.
  SimTime WriteSequential(SimTime earliest, Bytes n) {
    const auto booking =
        device_.Reserve(earliest, config_.sequential_write.TimeFor(n));
    written_bytes_ += n;
    return booking.end;
  }

  [[nodiscard]] Bytes ReadBytes() const { return read_bytes_; }
  [[nodiscard]] Bytes WrittenBytes() const { return written_bytes_; }
  [[nodiscard]] std::uint64_t RandomReads() const { return random_reads_; }
  [[nodiscard]] std::uint64_t ReadErrors() const { return read_errors_; }
  [[nodiscard]] const DiskConfig& Config() const { return config_; }

  /// Attaches a fault injector consulted on every read; pass nullptr to
  /// detach. The caller owns the injector.
  void SetFaultInjector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  [[nodiscard]] fault::FaultInjector* Injector() const { return injector_; }

  void Reset() {
    device_.Reset();
    read_bytes_ = Bytes{0};
    written_bytes_ = Bytes{0};
    random_reads_ = 0;
  }

 private:
  void RecordReadFault(SimTime start, SimTime end,
                       std::optional<fault::FaultWindow>* error) {
    if (error == nullptr) return;
    *error = injector_ != nullptr ? injector_->DiskReadError(start, end)
                                  : std::nullopt;
    if (error->has_value()) ++read_errors_;
  }

  DiskConfig config_;
  fault::FaultInjector* injector_ = nullptr;
  FifoResource device_;
  Bytes read_bytes_;
  Bytes written_bytes_;
  std::uint64_t random_reads_ = 0;
  std::uint64_t read_errors_ = 0;
};

}  // namespace vecycle::sim
