#include "sim/sharded.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

#include "common/rng.hpp"

namespace vecycle::sim {

ShardPlan ShardPlan::Build(std::vector<std::string> keys,
                           std::uint32_t shard_count, std::uint64_t seed) {
  VEC_CHECK_MSG(shard_count > 0, "shard plan needs at least one shard");
  std::sort(keys.begin(), keys.end());
  VEC_CHECK_MSG(
      std::adjacent_find(keys.begin(), keys.end()) == keys.end(),
      "duplicate key in shard plan");
  // Fisher-Yates over the sorted keys: the shuffle is a pure function of
  // (key set, seed), so the partition replays identically everywhere.
  Xoshiro256 rng(seed);
  for (std::size_t i = keys.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.NextBelow(i));
    std::swap(keys[i - 1], keys[j]);
  }
  ShardPlan plan;
  plan.shard_count_ = shard_count;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    plan.assignment_.emplace(std::move(keys[i]),
                             static_cast<ShardId>(i % shard_count));
  }
  return plan;
}

void ShardPlan::Assign(const std::string& key, ShardId shard) {
  assignment_[key] = shard;
  shard_count_ = std::max(shard_count_, shard + 1);
}

void ShardPlan::Validate() const {
  VEC_CHECK_MSG(shard_count_ > 0, "shard plan needs at least one shard");
  for (const auto& [key, shard] : assignment_) {
    VEC_CHECK_MSG(shard < shard_count_,
                  "shard assignment out of range for key: " + key);
  }
}

std::size_t ThreadsFromEnv() {
  const char* raw = std::getenv("VECYCLE_THREADS");
  if (raw == nullptr || *raw == '\0') return 1;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return 1;
  return std::clamp<std::size_t>(static_cast<std::size_t>(value), 1, 64);
}

ShardedSimulator::ShardedSimulator(std::uint32_t shard_count) {
  VEC_CHECK_MSG(shard_count > 0, "need at least one shard");
  shards_.reserve(shard_count);
  mailboxes_.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Simulator>());
    mailboxes_.push_back(std::make_unique<pdes_internal::Mailbox>());
  }
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::Post(ShardId from, ShardId to, SimTime when,
                            std::function<void()> action) {
  VEC_CHECK_MSG(from < shards_.size() && to < shards_.size(),
                "shard id out of range");
  // The conservative contract: anything posted during the window [T, E)
  // arrives at or after E, because the lookahead is the minimum
  // cross-shard latency. A violation here means a cross-shard path
  // shorter than the lookahead slipped past the planner.
  VEC_CHECK_MSG(when >= window_end_,
                "cross-shard message inside the lookahead window");
  pdes_internal::Mailbox& mailbox = *mailboxes_[from];
  common::LockGuard lock(mailbox.mu);
  mailbox.posts.push_back(pdes_internal::Posted{to, when, std::move(action)});
}

DeliveryExecutor& ShardedSimulator::Route(ShardId from, ShardId to) {
  VEC_CHECK_MSG(from < shards_.size() && to < shards_.size(),
                "shard id out of range");
  auto& route = routes_[{from, to}];
  if (route == nullptr) {
    route = std::make_unique<MailboxRoute>(this, from, to);
  }
  return *route;
}

std::size_t ShardedSimulator::DrainMailboxes(SimTime window_end) {
  std::size_t merged = 0;
  // Source shard id ascending, post order within a source: the one true
  // merge order. Target-queue sequence numbers — and with them every
  // same-timestamp tie-break — depend only on it, never on worker count.
  for (std::size_t from = 0; from < mailboxes_.size(); ++from) {
    std::vector<pdes_internal::Posted> taken;
    {
      common::LockGuard lock(mailboxes_[from]->mu);
      taken.swap(mailboxes_[from]->posts);
    }
    for (auto& post : taken) {
      VEC_CHECK_MSG(post.when >= window_end,
                    "cross-shard message lands inside an executed window");
      shards_[post.to]->ScheduleAt(post.when, std::move(post.action));
      ++merged;
    }
  }
  return merged;
}

SimTime ShardedSimulator::Run(std::size_t workers, SimDuration lookahead,
                              const ControlFn& control) {
  VEC_CHECK_MSG(lookahead > SimDuration::zero(),
                "PDES lookahead must be positive");
  const std::size_t shard_count = shards_.size();
  const std::size_t pool_size =
      std::min(workers == 0 ? std::size_t{1} : workers, shard_count);
  const bool parallel = pool_size > 1;

  // Window handshake: the coordinator publishes (generation, window end),
  // workers run their shards and report back. The condition variable
  // pair is the happens-before edge that lets workers read window_end_
  // and the coordinator read shard state without further locking.
  struct PoolState {
    std::mutex mu;
    std::condition_variable work_ready;
    std::condition_variable window_done;
    std::uint64_t generation = 0;
    std::size_t remaining = 0;
    SimTime window_end = kSimEpoch;
    bool stop = false;
  };
  PoolState pool;
  std::vector<std::exception_ptr> errors(shard_count);
  std::vector<std::thread> threads;

  if (parallel) {
    threads.reserve(pool_size);
    for (std::size_t w = 0; w < pool_size; ++w) {
      // Worker w owns shards {s : s % pool_size == w} — a fixed mapping,
      // though any mapping would do: shards share nothing inside a window.
      threads.emplace_back([this, &pool, &errors, w, pool_size,
                            shard_count] {
        std::uint64_t seen = 0;
        while (true) {
          SimTime end = kSimEpoch;
          {
            std::unique_lock<std::mutex> lock(pool.mu);
            pool.work_ready.wait(lock, [&pool, seen] {
              return pool.stop || pool.generation != seen;
            });
            if (pool.stop) return;
            seen = pool.generation;
            end = pool.window_end;
          }
          for (std::size_t s = w; s < shard_count; s += pool_size) {
            try {
              shards_[s]->RunWindow(end);
            } catch (...) {
              errors[s] = std::current_exception();
            }
          }
          {
            std::lock_guard<std::mutex> lock(pool.mu);
            if (--pool.remaining == 0) pool.window_done.notify_one();
          }
        }
      });
    }
  }
  const auto stop_pool = [&pool, &threads, parallel] {
    if (!parallel) return;
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      pool.stop = true;
    }
    pool.work_ready.notify_all();
    for (auto& thread : threads) thread.join();
    threads.clear();
  };

  SimTime control_wake = kNoPendingEvent;
  try {
    while (true) {
      SimTime window_start = NextEventTime();
      if (control_wake < window_start) window_start = control_wake;
      if (window_start == kNoPendingEvent) break;
      const SimTime window_end = window_start + lookahead;
      window_end_ = window_end;

      if (parallel) {
        {
          std::lock_guard<std::mutex> lock(pool.mu);
          ++pool.generation;
          pool.remaining = pool_size;
          pool.window_end = window_end;
        }
        pool.work_ready.notify_all();
        {
          std::unique_lock<std::mutex> lock(pool.mu);
          pool.window_done.wait(lock,
                                [&pool] { return pool.remaining == 0; });
        }
        for (auto& error : errors) {
          if (error != nullptr) {
            std::exception_ptr raised = error;
            error = nullptr;
            std::rethrow_exception(raised);
          }
        }
      } else {
        for (auto& shard : shards_) shard->RunWindow(window_end);
      }

      DrainMailboxes(window_end);
      if (control != nullptr) {
        control_wake = control(window_end);
        VEC_CHECK_MSG(control_wake > window_end,
                      "control wake must be after the barrier");
        // The control plane may have started sessions whose setup posted
        // cross-shard work; merge it before the next window is chosen.
        DrainMailboxes(window_end);
      }
    }
  } catch (...) {
    stop_pool();
    throw;
  }
  stop_pool();
  return MaxNow();
}

void ShardedSimulator::AdvanceAllTo(SimTime deadline) {
  // Quiescent advance for the periods between Drain() calls, when VMs
  // churn in place: every event is shard-local, so the shards can run
  // serially with no windows. An occupied mailbox afterwards means a
  // migration was still in flight — that is a caller bug (Drain first).
  for (auto& shard : shards_) shard->RunUntil(deadline);
  for (const auto& mailbox : mailboxes_) {
    common::LockGuard lock(mailbox->mu);
    VEC_CHECK_MSG(mailbox->posts.empty(),
                  "cross-shard traffic during a quiescent advance");
  }
}

SimTime ShardedSimulator::MaxNow() const {
  SimTime latest = kSimEpoch;
  for (const auto& shard : shards_) latest = std::max(latest, shard->Now());
  return latest;
}

SimTime ShardedSimulator::NextEventTime() const {
  SimTime earliest = kNoPendingEvent;
  for (const auto& shard : shards_) {
    earliest = std::min(earliest, shard->NextEventTime());
  }
  return earliest;
}

}  // namespace vecycle::sim
