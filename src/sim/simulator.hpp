// Discrete-event simulation core.
//
// The paper's evaluation ran on two physical hosts connected by gigabit
// Ethernet (plus netem WAN emulation). We reproduce that testbed as a
// deterministic discrete-event simulation: components schedule callbacks at
// simulated times, and shared resources (links, disks, checksum engines)
// are modeled as FIFO servers so contention and pipelining behave like the
// real serialized devices they stand in for.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "obs/trace.hpp"

namespace vecycle::sim {

/// Sentinel for "no pending event" returned by Simulator::NextEventTime
/// (and by the sharded coordinator when every queue is empty): later than
/// every representable simulated instant.
inline constexpr SimTime kNoPendingEvent = SimTime::max();

/// Where a closure should execute. Channels schedule deliveries through
/// this seam so a message between shards lands on the *receiving* shard's
/// event queue (via the sharded simulator's mailbox) instead of the
/// sender's. The default (no executor) is a plain ScheduleAt on the
/// sender's simulator — the single-shard behaviour.
class DeliveryExecutor {
 public:
  virtual ~DeliveryExecutor() = default;
  virtual void DeliverAt(SimTime when, std::function<void()> action) = 0;
};

/// Deterministic event loop. Events fire in (time, insertion-sequence)
/// order, so two events at the same timestamp run in the order they were
/// scheduled — no implementation-defined tie-breaking.
///
/// Concurrency readiness: the event-loop state (heap, clock, sequence
/// counters) is guarded by `mu_`, today a zero-cost NullMutex. Public
/// methods acquire it for exactly the state they touch and release it
/// before running user actions, so re-entrant Schedule() calls from
/// inside an event remain legal when a real mutex replaces it.
class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime Now() const {
    common::NullLockGuard lock(mu_);
    return now_;
  }

  /// Schedules `action` to run `delay` after the current simulated time.
  void Schedule(SimDuration delay, Action action) {
    ScheduleAt(Now() + delay, std::move(action));
  }

  /// Schedules `action` at an absolute simulated time, which must not be in
  /// the simulated past.
  void ScheduleAt(SimTime when, Action action) {
    common::NullLockGuard lock(mu_);
    VEC_CHECK_MSG(when >= now_, "cannot schedule into the simulated past");
    queue_.push_back(Event{when, next_seq_++, std::move(action)});
    SiftUp(queue_.size() - 1);
  }

  /// Capacity hint: pre-sizes the event heap for `additional` upcoming
  /// events, so bursty schedulers (a migration pumping thousands of
  /// batches) do not pay repeated heap-array reallocations.
  void Reserve(std::size_t additional) {
    common::NullLockGuard lock(mu_);
    queue_.reserve(queue_.size() + additional);
  }

  /// Runs one event; returns false if the queue is empty.
  bool Step() {
    Event ev;
    {
      common::NullLockGuard lock(mu_);
      if (queue_.empty()) return false;
      // The hand-rolled heap pops by move: the action leaves the queue
      // without the copy (or the shared_ptr indirection)
      // std::priority_queue would force through its const top().
      ev = PopEarliest();
      now_ = ev.when;
      ++executed_;
      if (auditor_ != nullptr) auditor_->OnEventExecuted(ev.when, ev.seq);
      if (tracer_ != nullptr &&
          (executed_ & (kTraceSampleStride - 1)) == 0) {
        // Sampled queue-depth timeline: one counter event per stride
        // keeps the trace small while still showing event-loop pressure.
        tracer_->Counter(tracer_track_, tracer_counter_, now_,
                         static_cast<double>(queue_.size()));
      }
    }
    // The action runs outside the event-loop capability: actions routinely
    // schedule follow-up events, and that re-entry must not self-deadlock
    // once the capability is a real lock.
    ev.action();
    return true;
  }

  /// Runs until no events remain. Returns the final simulated time.
  SimTime Run() {
    while (Step()) {
    }
    return Now();
  }

  /// Runs until the queue drains or the simulated clock passes `deadline`.
  SimTime RunUntil(SimTime deadline) {
    while (HasEventNoLaterThan(deadline)) {
      Step();
    }
    common::NullLockGuard lock(mu_);
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  /// Runs every event strictly before `end`, leaving the clock at the
  /// last executed event — it is NOT forced forward to `end`. This is the
  /// conservative-PDES window primitive: a shard executes its share of
  /// the window [T, T+lookahead), then the coordinator merges cross-shard
  /// messages at the barrier. Leaving the clock untouched keeps a
  /// one-shard run byte-identical to Run() (which never forces the clock
  /// either). Returns the number of events executed.
  std::size_t RunWindow(SimTime end) {
    std::size_t executed = 0;
    while (HasEventBefore(end)) {
      Step();
      ++executed;
    }
    return executed;
  }

  /// Timestamp of the earliest pending event, or kNoPendingEvent when the
  /// queue is empty. The sharded coordinator uses this to pick the next
  /// window's start across shards.
  [[nodiscard]] SimTime NextEventTime() const {
    common::NullLockGuard lock(mu_);
    return queue_.empty() ? kNoPendingEvent : queue_.front().when;
  }

  [[nodiscard]] std::size_t PendingEvents() const {
    common::NullLockGuard lock(mu_);
    return queue_.size();
  }
  /// Events actually executed so far (not merely scheduled).
  [[nodiscard]] std::uint64_t ProcessedEvents() const {
    common::NullLockGuard lock(mu_);
    return executed_;
  }
  /// Events ever scheduled, executed or still pending.
  [[nodiscard]] std::uint64_t ScheduledEvents() const {
    common::NullLockGuard lock(mu_);
    return next_seq_;
  }

  /// Attaches an audit observer notified of every executed event; pass
  /// nullptr to detach. The caller owns the sink and must detach it (or
  /// keep it alive) for as long as the simulator runs.
  void SetAuditor(audit::AuditSink* auditor) { auditor_ = auditor; }
  [[nodiscard]] audit::AuditSink* Auditor() const { return auditor_; }

  /// Attaches a trace recorder that receives a sampled pending-event
  /// counter on `track` (one sample every 256 executed events; a single
  /// pointer test per event when detached). Pass nullptr to detach.
  void SetTracer(obs::TraceRecorder* tracer, obs::TrackId track = 0) {
    tracer_ = tracer;
    tracer_track_ = track;
    if (tracer_ != nullptr) tracer_counter_ = tracer_->Name("pending_events");
  }
  [[nodiscard]] obs::TraceRecorder* Tracer() const { return tracer_; }

 private:
  /// Heap node. Holds the action inline (std::function moves are cheap and
  /// noexcept), so scheduling allocates nothing beyond the closure itself.
  struct Event {
    SimTime when = kSimEpoch;
    std::uint64_t seq = 0;
    Action action;
  };

  static bool Earlier(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  /// True when an event is pending at or before `deadline` (RunUntil's
  /// loop condition, split out so the peek happens under the capability).
  [[nodiscard]] bool HasEventNoLaterThan(SimTime deadline) const {
    common::NullLockGuard lock(mu_);
    return !queue_.empty() && queue_.front().when <= deadline;
  }

  /// RunWindow's loop condition: an event strictly before `end` pends.
  [[nodiscard]] bool HasEventBefore(SimTime end) const {
    common::NullLockGuard lock(mu_);
    return !queue_.empty() && queue_.front().when < end;
  }

  // Binary min-heap over queue_ ordered by (when, seq). Hand-rolled so the
  // root can be moved out on pop and sifts shift a hole instead of
  // swapping (one move per level, not three).
  void SiftUp(std::size_t index) VEC_REQUIRES(mu_) {
    Event ev = std::move(queue_[index]);
    while (index > 0) {
      const std::size_t parent = (index - 1) / 2;
      if (!Earlier(ev, queue_[parent])) break;
      queue_[index] = std::move(queue_[parent]);
      index = parent;
    }
    queue_[index] = std::move(ev);
  }

  void SiftDown(std::size_t index) VEC_REQUIRES(mu_) {
    Event ev = std::move(queue_[index]);
    const std::size_t count = queue_.size();
    while (true) {
      std::size_t child = 2 * index + 1;
      if (child >= count) break;
      if (child + 1 < count && Earlier(queue_[child + 1], queue_[child])) {
        ++child;
      }
      if (!Earlier(queue_[child], ev)) break;
      queue_[index] = std::move(queue_[child]);
      index = child;
    }
    queue_[index] = std::move(ev);
  }

  Event PopEarliest() VEC_REQUIRES(mu_) {
    Event top = std::move(queue_.front());
    if (queue_.size() > 1) {
      queue_.front() = std::move(queue_.back());
      queue_.pop_back();
      SiftDown(0);
    } else {
      queue_.pop_back();
    }
    return top;
  }

  static constexpr std::uint64_t kTraceSampleStride = 256;

  /// Event-loop capability: clock, sequence counters and the heap are one
  /// consistency domain. Mutable so const accessors (Now, PendingEvents)
  /// can acquire it.
  mutable common::NullMutex mu_;

  SimTime now_ VEC_GUARDED_BY(mu_) = kSimEpoch;
  std::uint64_t next_seq_ VEC_GUARDED_BY(mu_) = 0;
  std::uint64_t executed_ VEC_GUARDED_BY(mu_) = 0;
  // Observer wiring happens during single-threaded setup, before any
  // worker exists; the PDES design keeps it that way (attach, then run).
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the loop runs and never swapped mid-run
  audit::AuditSink* auditor_ = nullptr;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the loop runs and never swapped mid-run
  obs::TraceRecorder* tracer_ = nullptr;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the loop runs and never swapped mid-run
  obs::TrackId tracer_track_ = 0;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the loop runs and never swapped mid-run
  obs::NameId tracer_counter_ = 0;
  std::vector<Event> queue_ VEC_GUARDED_BY(mu_);
};

/// A serialized device: at most one request in service at a time, FIFO.
/// Reserve() books `service` time starting no earlier than `earliest` and
/// no earlier than the end of the previous booking, returning the
/// [start, end) of the booking. This fluid model is exact for links and
/// disks whose requests are issued in order — the case everywhere in the
/// migration pipeline.
class FifoResource {
 public:
  struct Booking {
    SimTime start;
    SimTime end;
  };

  Booking Reserve(SimTime earliest, SimDuration service) {
    common::NullLockGuard lock(mu_);
    const SimTime start = std::max(earliest, available_at_);
    const SimTime end = start + service;
    available_at_ = end;
    busy_ += service;
    return Booking{start, end};
  }

  [[nodiscard]] SimTime AvailableAt() const {
    common::NullLockGuard lock(mu_);
    return available_at_;
  }

  /// Total time this resource spent in service — utilization numerator.
  [[nodiscard]] SimDuration BusyTime() const {
    common::NullLockGuard lock(mu_);
    return busy_;
  }

  void Reset() {
    common::NullLockGuard lock(mu_);
    available_at_ = kSimEpoch;
    busy_ = SimDuration::zero();
  }

 private:
  /// A FIFO resource is exactly the kind of cross-shard contention point
  /// PDES has to serialize; its booking cursor is one capability.
  mutable common::NullMutex mu_;
  SimTime available_at_ VEC_GUARDED_BY(mu_) = kSimEpoch;
  SimDuration busy_ VEC_GUARDED_BY(mu_) = SimDuration::zero();
};

}  // namespace vecycle::sim
