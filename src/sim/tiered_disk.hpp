// Tiered disk: an SSD chunk cache layered over a backing HDD.
//
// The chunk store's working set is skewed — golden-image chunks shared by
// every co-located desktop are read on every restore, while cold user
// chunks sit untouched for days. The tier models the §4.4 placement
// question at chunk granularity: chunk writes go through to the backing
// device (write-through, so the durable footprint always lives on the
// backing disk) and are cached on the SSD; random chunk reads served from
// the SSD pay SSD latency, misses pay the backing device and promote the
// chunk. Eviction is LRU in deterministic (last_used, digest) order, so
// identical schedules produce identical hit sequences across replay runs.
//
// The SSD device is owned by the tier and is a pure cache: a read served
// from it never consults the fault injector — bit-rot and truncation are
// properties of the durable image on the backing disk, which keeps fault
// semantics identical whether a tier is configured or not.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/check.hpp"
#include "common/units.hpp"
#include "digest/digest.hpp"
#include "sim/disk.hpp"

namespace vecycle::sim {

struct TieredDiskConfig {
  /// SSD chunk-cache capacity. Zero disables the tier entirely: all
  /// traffic goes straight to the backing device.
  Bytes ssd_capacity{0};

  /// Device model for the cache tier.
  DiskConfig ssd = DiskConfig::Ssd();

  void Validate() const {
    // Any ssd_capacity is structurally valid here (zero = tier off); the
    // cross-check that a non-zero cache holds at least one chunk needs
    // the chunk size and lives in storage::StoreConfig::Validate.
    ssd.Validate();
  }
};

/// SSD cache over a backing `Disk`. The backing disk is borrowed (it is
/// the host's durable device, shared with flat-image traffic); the SSD
/// device is owned, created from the config's device model.
class TieredDisk {
 public:
  TieredDisk(Disk& backing, TieredDiskConfig config)
      : config_(config), backing_(backing), ssd_(config.ssd) {
    config_.Validate();
  }

  [[nodiscard]] bool Enabled() const { return config_.ssd_capacity.count > 0; }

  /// Write-through chunk write: the backing device's sequential write
  /// gates the returned completion time; when the tier is enabled the
  /// chunk also becomes resident (evicting LRU chunks to fit) and the
  /// SSD copy is booked asynchronously — it never delays the caller.
  SimTime WriteChunk(const Digest128& digest, Bytes n, SimTime earliest) {
    const SimTime done = backing_.WriteSequential(earliest, n);
    if (Enabled()) MakeResident(digest, n, done);
    return done;
  }

  /// Random chunk read. Resident chunks are served by the SSD and report
  /// no fault window; misses are served by the backing device (which does
  /// consult its fault injector) and promote the chunk on completion.
  SimTime ReadChunkRandom(const Digest128& digest, Bytes n, SimTime earliest,
                          std::optional<fault::FaultWindow>* error = nullptr) {
    if (NoteAccess(digest, earliest)) {
      if (error != nullptr) *error = std::nullopt;
      return ssd_.ReadRandom(earliest, n);
    }
    const SimTime done = backing_.ReadRandom(earliest, n, error);
    if (Enabled()) {
      MakeResident(digest, n, done);
      ++promotions_;
    }
    return done;
  }

  /// Marks an access for hit/miss accounting and LRU recency without
  /// booking device time; returns whether the chunk is resident. Used by
  /// sequential restores, which batch the device traffic via ReadSplit.
  bool NoteAccess(const Digest128& digest, SimTime now) {
    if (!Enabled()) return false;
    const auto it = resident_.find(digest);
    if (it == resident_.end()) {
      ++ssd_misses_;
      return false;
    }
    Touch(it, now);
    ++ssd_hits_;
    return true;
  }

  /// Books one sequential read per device — `ssd_bytes` from the cache,
  /// `backing_bytes` from the durable disk — overlapped; the returned time
  /// is the later of the two. Only the backing read can report a fault
  /// window: the SSD serves cached copies of already-verified chunks.
  SimTime ReadSplit(SimTime earliest, Bytes ssd_bytes, Bytes backing_bytes,
                    std::optional<fault::FaultWindow>* error = nullptr) {
    SimTime done = earliest;
    if (backing_bytes.count > 0) {
      done = std::max(done, backing_.ReadSequential(earliest, backing_bytes,
                                                    error));
    } else if (error != nullptr) {
      *error = std::nullopt;
    }
    if (ssd_bytes.count > 0) {
      done = std::max(done, ssd_.ReadSequential(earliest, ssd_bytes));
    }
    return done;
  }

  /// Drops a chunk from the cache (no device time: the copy is simply
  /// forgotten). Called when the store's GC frees the chunk.
  void Drop(const Digest128& digest) {
    const auto it = resident_.find(digest);
    if (it == resident_.end()) return;
    resident_bytes_ -= it->second.bytes;
    lru_.erase({it->second.last_used, digest});
    resident_.erase(it);
  }

  [[nodiscard]] std::uint64_t SsdHits() const { return ssd_hits_; }
  [[nodiscard]] std::uint64_t SsdMisses() const { return ssd_misses_; }
  [[nodiscard]] std::uint64_t Promotions() const { return promotions_; }
  [[nodiscard]] std::uint64_t Evictions() const { return evictions_; }
  [[nodiscard]] Bytes ResidentBytes() const { return resident_bytes_; }
  [[nodiscard]] Disk& Backing() { return backing_; }
  [[nodiscard]] const TieredDiskConfig& Config() const { return config_; }

 private:
  struct Resident {
    SimTime last_used = kSimEpoch;
    Bytes bytes;
  };

  /// Bumps a resident chunk's recency, keeping the LRU index in sync.
  void Touch(std::map<Digest128, Resident>::iterator it, SimTime now) {
    if (now <= it->second.last_used) return;
    lru_.erase({it->second.last_used, it->first});
    it->second.last_used = now;
    lru_.emplace(now, it->first);
  }

  void MakeResident(const Digest128& digest, Bytes n, SimTime now) {
    if (n > config_.ssd_capacity) return;  // would never fit
    const auto it = resident_.find(digest);
    if (it != resident_.end()) {
      Touch(it, now);
      return;
    }
    EvictToFit(n);
    resident_.emplace(digest, Resident{now, n});
    lru_.emplace(now, digest);
    resident_bytes_ += n;
    ssd_.WriteSequential(now, n);  // booked, not gating
  }

  void EvictToFit(Bytes incoming) {
    while (resident_bytes_ + incoming > config_.ssd_capacity) {
      // Victim: least recently used, digest as the deterministic
      // tie-break — exactly the LRU index's ordering, so eviction is a
      // replay-stable O(log n) pop instead of a full-cache scan.
      const auto victim = lru_.begin();
      const auto it = resident_.find(victim->second);
      resident_bytes_ -= it->second.bytes;
      resident_.erase(it);
      lru_.erase(victim);
      ++evictions_;
    }
  }

  TieredDiskConfig config_;
  Disk& backing_;
  Disk ssd_;
  std::map<Digest128, Resident> resident_;
  /// Eviction order: (last_used, digest), the cheapest chunk first.
  std::set<std::pair<SimTime, Digest128>> lru_;
  Bytes resident_bytes_;
  std::uint64_t ssd_hits_ = 0;
  std::uint64_t ssd_misses_ = 0;
  std::uint64_t promotions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace vecycle::sim
