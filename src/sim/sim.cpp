// The sim library is header-only today (the models are small, hot, and
// inline-friendly); this translation unit anchors the library target and
// forces the headers to be self-contained.
#include "sim/checksum_engine.hpp"
#include "sim/disk.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
