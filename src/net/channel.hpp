// Reliable ordered channel over a simulated link — the TCP connection the
// migration runs over. Send() books the message on the link's FIFO server
// and schedules delivery to the far endpoint's handler at arrival time.
// Ordering is guaranteed by the link's FIFO serialization plus constant
// latency.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "audit/audit.hpp"
#include "common/check.hpp"
#include "net/message.hpp"
#include "obs/trace.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace vecycle::net {

class Channel {
 public:
  /// Handler invoked at delivery time. `arrival` is the simulated time the
  /// last byte reached the receiver. The message is delivered by rvalue:
  /// a batch's record vector (or a bulk-hash payload) moves from sender to
  /// receiver without a single copy — receivers that only read may still
  /// bind a `const Message&` parameter.
  using Handler = std::function<void(Message&&, SimTime arrival)>;

  Channel(sim::Simulator& simulator, sim::Link& link, sim::Direction direction,
          DigestAlgorithm algorithm)
      : simulator_(simulator),
        link_(link),
        direction_(direction),
        algorithm_(algorithm) {}

  void SetReceiver(Handler handler) { receiver_ = std::move(handler); }

  /// Lifetime token guarding every closure this channel schedules on the
  /// simulator. Deliveries fire only while the token is alive and true;
  /// the owner (a migration session) resets or zeroes it on teardown so
  /// in-flight events for a dead session become no-ops instead of calls
  /// into freed actors. Without a token (the default) deliveries are
  /// unguarded, as before.
  void SetLifetime(std::shared_ptr<const bool> token) {
    lifetime_ = std::move(token);
  }

  /// Handler invoked (instead of the receiver) when an injected link
  /// outage cuts a message in flight; the argument is the time the loss
  /// is noticed (the would-be arrival). Unset: cut messages vanish.
  void SetFaultHandler(std::function<void(SimTime)> handler) {
    on_fault_ = std::move(handler);
  }

  /// Attaches an audit observer notified of every send; `channel_id`
  /// distinguishes this channel in the auditor's per-channel accounting.
  /// Pass nullptr to detach.
  void SetAuditor(audit::AuditSink* auditor, std::uint32_t channel_id = 0) {
    auditor_ = auditor;
    audit_channel_id_ = channel_id;
  }

  /// Session tag stamped onto every message this channel sends, so
  /// endpoints of concurrent migrations sharing one link can verify each
  /// delivery reached the session it belongs to. 0 (the default) is the
  /// anonymous single-session case.
  void SetSessionTag(std::uint64_t session) { session_tag_ = session; }
  [[nodiscard]] std::uint64_t SessionTag() const { return session_tag_; }

  /// Attaches a trace recorder that receives a cumulative wire-byte
  /// counter and an in-flight queue-depth counter on `track`; nullptr
  /// detaches. `label` distinguishes this channel's series when several
  /// channels of one session share a process (multifd): non-empty, the
  /// counters are named "wire_bytes[label]" / "queue_depth[label]" so the
  /// per-channel timelines stay separate instead of aggregating into one
  /// misleading series. Empty keeps the historical bare names.
  void SetTracer(obs::TraceRecorder* tracer, obs::TrackId track = 0,
                 std::string_view label = {}) {
    tracer_ = tracer;
    tracer_track_ = track;
    if (tracer_ != nullptr) {
      std::string wire_name = "wire_bytes";
      std::string depth_name = "queue_depth";
      if (!label.empty()) {
        wire_name += "[";
        wire_name += label;
        wire_name += "]";
        depth_name += "[";
        depth_name += label;
        depth_name += "]";
      }
      tracer_counter_ = tracer_->Name(wire_name);
      tracer_depth_counter_ = tracer_->Name(depth_name);
    }
  }

  /// Switches this channel to the multifd stream path: sends serialize at
  /// the link's line rate, and the channel paces its own injections at
  /// the per-stream window rate (sim::Link::StreamPace) — one TCP stream
  /// among many sharing the wire. Off (the default), sends go through
  /// Link::Transmit, byte-identical to the pre-multifd engine.
  void SetWindowPaced(bool paced) { window_paced_ = paced; }
  [[nodiscard]] bool WindowPaced() const { return window_paced_; }

  /// Earliest time this stream may inject its next message under the
  /// window pacing above (kSimEpoch before the first send). The multifd
  /// source pump paces batch production off the least-loaded stream.
  [[nodiscard]] SimTime NextStreamSlot() const { return stream_next_; }

  /// Routes delivery (and fault-notification) closures through `executor`
  /// instead of scheduling them on the sending simulator — the seam the
  /// sharded PDES uses to land a message on the *receiving* shard's event
  /// queue. nullptr (the default) restores the single-simulator behaviour.
  /// Wire-time booking is unaffected: the link's FIFO server lives with
  /// the sender either way.
  void SetDeliveryExecutor(sim::DeliveryExecutor* executor) {
    delivery_ = executor;
  }

  /// Sends `message`, booking wire time from `earliest` (never before the
  /// simulator's current time). Returns the delivery time.
  SimTime Send(Message message, SimTime earliest) {
    VEC_CHECK_MSG(receiver_ != nullptr, "channel has no receiver");
    message.session = session_tag_;
    SimTime start = std::max(earliest, simulator_.Now());
    const Bytes wire = message.WireSize(algorithm_);
    sim::Link::TransmitInfo info;
    SimTime arrival;
    if (window_paced_) {
      // One TCP stream of a multifd session: the wire serializes at line
      // rate, the stream injects no faster than its window allows.
      start = std::max(start, stream_next_);
      arrival = link_.TransmitLineRate(direction_, start, wire, &info);
      stream_next_ = info.start + link_.StreamPace(wire);
    } else {
      arrival = link_.Transmit(direction_, start, wire, &info);
    }
    payload_sent_ += wire;
    ++messages_sent_;
    if (auditor_ != nullptr) {
      auditor_->OnMessageSent(audit_channel_id_,
                              static_cast<std::uint32_t>(message.type),
                              wire.count, start, arrival);
    }
    if (tracer_ != nullptr) {
      tracer_->Counter(tracer_track_, tracer_counter_, start,
                       static_cast<double>(payload_sent_.count));
      ++in_flight_;
      tracer_->Counter(tracer_track_, tracer_depth_counter_, start,
                       static_cast<double>(in_flight_));
    }
    if (info.cut) {
      // The wire time was booked and charged, but the message is lost.
      // Notify the fault handler at the would-be arrival (the earliest
      // the endpoint could notice) rather than delivering.
      ++messages_cut_;
      DeliverAt(arrival,
                [this, arrival, guard = std::weak_ptr<const bool>(lifetime_),
                 guarded = lifetime_ != nullptr] {
                  if (guarded) {
                    const auto alive = guard.lock();
                    if (alive == nullptr || !*alive) return;
                  }
                  RecordDelivered(arrival);
                  if (on_fault_ != nullptr) on_fault_(arrival);
                });
      return arrival;
    }
    DeliverAt(arrival, [this, msg = std::move(message), arrival,
                        guard = std::weak_ptr<const bool>(lifetime_),
                        guarded = lifetime_ != nullptr]() mutable {
      if (guarded) {
        const auto alive = guard.lock();
        if (alive == nullptr || !*alive) return;
      }
      RecordDelivered(arrival);
      receiver_(std::move(msg), arrival);
    });
    return arrival;
  }

  /// Propagation latency of the underlying link — senders use it to pace
  /// themselves off the serialization end rather than the arrival time.
  [[nodiscard]] SimDuration Latency() const {
    return link_.Config().latency;
  }

  [[nodiscard]] Bytes PayloadSent() const { return payload_sent_; }
  [[nodiscard]] std::uint64_t MessagesSent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t MessagesCut() const { return messages_cut_; }
  [[nodiscard]] DigestAlgorithm Algorithm() const { return algorithm_; }

 private:
  /// Queue-depth bookkeeping at delivery (or cut-notification) time. Only
  /// meaningful when a tracer is attached — and tracers are rejected for
  /// cross-shard sessions, so the decrement always runs on the sending
  /// simulator's thread, racelessly.
  void RecordDelivered(SimTime arrival) {
    if (tracer_ == nullptr) return;
    if (in_flight_ > 0) --in_flight_;
    tracer_->Counter(tracer_track_, tracer_depth_counter_, arrival,
                     static_cast<double>(in_flight_));
  }

  void DeliverAt(SimTime when, std::function<void()> action) {
    if (delivery_ != nullptr) {
      delivery_->DeliverAt(when, std::move(action));
    } else {
      simulator_.ScheduleAt(when, std::move(action));
    }
  }

  sim::Simulator& simulator_;
  sim::Link& link_;
  sim::Direction direction_;
  DigestAlgorithm algorithm_;
  Handler receiver_;
  sim::DeliveryExecutor* delivery_ = nullptr;
  std::function<void(SimTime)> on_fault_;
  std::shared_ptr<const bool> lifetime_;
  audit::AuditSink* auditor_ = nullptr;
  std::uint32_t audit_channel_id_ = 0;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::TrackId tracer_track_ = 0;
  obs::NameId tracer_counter_ = 0;
  obs::NameId tracer_depth_counter_ = 0;
  std::uint64_t session_tag_ = 0;
  bool window_paced_ = false;
  SimTime stream_next_ = kSimEpoch;
  std::uint64_t in_flight_ = 0;
  Bytes payload_sent_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_cut_ = 0;
};

}  // namespace vecycle::net
