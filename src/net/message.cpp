#include "net/message.hpp"

#include "common/check.hpp"

namespace vecycle::net {

const char* ToString(MessageType type) {
  switch (type) {
    case MessageType::kPageBatch:
      return "page-batch";
    case MessageType::kBulkHashes:
      return "bulk-hashes";
    case MessageType::kRoundEnd:
      return "round-end";
    case MessageType::kRoundAck:
      return "round-ack";
    case MessageType::kDone:
      return "done";
    case MessageType::kDoneAck:
      return "done-ack";
    case MessageType::kResendRequest:
      return "resend-request";
  }
  VEC_CHECK_MSG(false, "ToString: unenumerated message type");
}

Bytes Message::WireSize(DigestAlgorithm algorithm) const {
  const std::uint64_t digest_bytes = WireSizeBytes(algorithm);
  std::uint64_t total = kControlFrameBytes;
  for (const auto& record : records) {
    total += kRecordHeaderBytes;
    if (record.has_digest) total += digest_bytes;
    if (record.is_dup_ref) total += 8;  // cache index
    if (record.has_payload) total += record.payload_wire_bytes;
  }
  total += bulk_hashes.size() * digest_bytes;
  total += resend_pages.size() * 8;  // page numbers
  return Bytes{total};
}

}  // namespace vecycle::net
