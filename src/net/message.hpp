// Migration protocol messages (§3.2/§3.3).
//
// The protocol in the paper exchanges, per page, either the full page plus
// its checksum (sending the checksum along saves the receiver recomputing
// it) or just the checksum when the content is known to exist at the
// destination. Before a non-ping-pong migration the destination ships the
// checksums of all locally available pages in bulk. Real implementations
// batch page records into buffered writes; Message models one such batch,
// and its wire size is computed from the per-record costs below so traffic
// accounting matches a byte-level implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "digest/digest.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::net {

enum class MessageType {
  kPageBatch,   ///< page records (full pages and/or checksum-only)
  kBulkHashes,  ///< destination -> source: checksums of available pages
  /// source -> destination: round boundary marker. With multifd active
  /// the source sends one marker per channel (QEMU's MULTIFD_FLUSH); the
  /// destination acks only after all of them have arrived.
  kRoundEnd,
  kRoundAck,    ///< destination -> source: all round data applied
  /// source -> destination: migration complete (VM paused). One marker
  /// per multifd channel, like kRoundEnd.
  kDone,
  kDoneAck,     ///< destination -> source: VM resumed at destination
  /// destination -> source: pages whose checksum-only records could not
  /// be satisfied locally (checkpoint rot or a failed block read); the
  /// source answers with full-content records. The recovery half of the
  /// fault-injection layer's graceful-degradation path.
  kResendRequest,
};

const char* ToString(MessageType type);

/// One page's worth of migration data. Three shapes travel on the wire:
///  * full page:       header + digest (optional) + 4 KiB payload
///  * checksum-only:   header + digest                      (VeCycle match)
///  * dedup reference: header + 8-byte cache index          (dedup repeat)
struct PageRecord {
  vm::PageId page = 0;
  Digest128 digest;
  /// True when the full page content travels with the record; false for
  /// checksum-only records (content expected at the destination).
  bool has_payload = false;
  /// True when the record carries a digest on the wire. The QEMU-baseline
  /// full round and dedup references carry none.
  bool has_digest = true;
  /// True for sender-side dedup references: the payload equals a page
  /// already sent earlier in this migration, identified by cache index.
  bool is_dup_ref = false;
  /// True for all-zero pages, which every implementation (QEMU included)
  /// compresses to a bare header — the reason §4.4's benchmark fills RAM
  /// with random data first.
  bool is_zero = false;
  /// True when this full-content record answers a kResendRequest (a
  /// checksum-only page the destination could not satisfy locally). The
  /// flag travels in the header (no wire cost) so the destination can
  /// retire the matching outstanding request.
  bool is_resend = false;
  /// True when the payload is an XBZRLE-style delta against the content
  /// the destination already holds for this page (recycled-checkpoint
  /// baseline in round 1, the previously sent content afterwards). The
  /// destination must verify its current content equals `baseline_seed`
  /// before applying; a mismatch (rotten baseline) degrades to the
  /// kResendRequest full-content path.
  bool is_delta = false;
  /// Content identity of the page (always set by the sender). The
  /// simulation transfers content by seed; byte payloads are reconstructed
  /// deterministically on the receiving side.
  std::uint64_t content_seed = 0;
  /// Baseline the delta was encoded against (is_delta only). Travels in
  /// the record header like content_seed — the sim's transfer-by-seed
  /// shortcut, no wire cost beyond the encoded payload itself.
  std::uint64_t baseline_seed = 0;
  /// Bytes the payload occupies on the wire: kPageSize uncompressed, less
  /// when wire compression is active. Ignored unless has_payload.
  std::uint32_t payload_wire_bytes = static_cast<std::uint32_t>(kPageSize);
};

struct Message {
  MessageType type = MessageType::kPageBatch;
  std::uint32_t round = 0;
  /// Migration session the message belongs to, stamped by the sending
  /// channel. Routing metadata only (a real implementation demultiplexes
  /// by TCP connection), so it does not count toward WireSize; endpoints
  /// assert it to catch cross-session misrouting when many sessions share
  /// one link.
  std::uint64_t session = 0;
  std::vector<PageRecord> records;       // kPageBatch
  std::vector<Digest128> bulk_hashes;    // kBulkHashes
  std::vector<vm::PageId> resend_pages;  // kResendRequest

  /// Serialized size on the wire under `algorithm` checksums.
  [[nodiscard]] Bytes WireSize(DigestAlgorithm algorithm) const;
};

/// Wire-cost constants. A page record carries an 8-byte page number and a
/// 4-byte flags/length field ahead of its digest (and payload, if any);
/// control messages are a fixed small frame. These match the order of
/// magnitude of QEMU's RAM-section framing.
inline constexpr std::uint64_t kRecordHeaderBytes = 12;
inline constexpr std::uint64_t kControlFrameBytes = 32;

}  // namespace vecycle::net
