// Datacenter-scale migration scheduler.
//
// The engine layer knows how to run ONE migration (MigrationSession, an
// event-driven actor pair on a shared simulator). This layer turns that
// into fleet operations: callers Submit() as many migrations as they
// like, the scheduler admits them against per-host concurrency caps,
// runs the admitted ones as overlapping sessions that contend for the
// shared links / disks / checksum engines, and starts queued ones the
// moment capacity frees up — all inside a single Drain() of the event
// loop. Completion performs the same §3/§4.4 bookkeeping as the
// synchronous MigrationOrchestrator::Migrate (checkpoint write-back at
// the source, digest-set and generation memory, VM relocation), so a
// scheduler that admits one session at a time reproduces the synchronous
// engine's results exactly.
//
// Concurrent sessions from one host to one destination form a gang
// (VMFlock [4]): they share a sender-side dedup cache, so page content
// common across the gang's VMs travels once.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"
#include "core/vm_instance.hpp"
#include "fault/fault.hpp"
#include "migration/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/sharded.hpp"

namespace vecycle::core {

using SessionId = std::uint64_t;

namespace sched_internal {

/// One session-lifecycle notification (completed / failed) crossing from
/// a shard worker to the barrier-time control plane.
struct ControlEvent {
  SimTime when = kSimEpoch;
  SessionId id = 0;
  bool failed = false;
};

/// Per-shard outbox for ControlEvents. The shard's worker appends from
/// inside session callbacks mid-window; the coordinator drains at the
/// barrier. Processing order is (when, id) after a global sort, so which
/// outbox an event arrived through never matters.
struct ControlOutbox {
  common::Mutex mu;
  std::vector<ControlEvent> events VEC_GUARDED_BY(mu);
};

}  // namespace sched_internal

/// Saturating retry-backoff deadline: `backoff * 2^(failures-1)` after
/// `when`, with both the doubling and the final sum clamped so a large
/// configured backoff (or a long failure streak under max_attempts == 0)
/// can never overflow SimDuration — an overflowed product would wrap
/// negative and silently disable the backoff gate. Saturates to
/// SimTime::max(), i.e. "never", at the extreme.
[[nodiscard]] SimTime RetryNotBefore(SimTime when, SimDuration backoff,
                                     std::uint64_t failures);

/// Thrown by the scheduler when a migration exhausts its retry budget
/// and `SchedulerConfig::throw_on_abort` is set. Distinct from engine
/// CheckFailures so fleet callers can tell "a fault won" from "the
/// simulation is broken".
class MigrationAborted : public CheckFailure {
 public:
  explicit MigrationAborted(const std::string& what) : CheckFailure(what) {}
};

struct SchedulerConfig {
  /// Per-host admission caps (0 = unlimited). The defaults mirror common
  /// hypervisor practice: a host saturates on a couple of simultaneous
  /// migrations per direction, more just thrash the NIC and disk.
  std::size_t max_outgoing_per_host = 2;
  std::size_t max_incoming_per_host = 2;

  /// Share the sender-side dedup cache across concurrently admitted
  /// sessions with the same (from, to) pair — gang migration. The cache
  /// lives exactly as long as its gang, so serial admission still gives
  /// every session a fresh cache (serial equivalence is preserved).
  bool gang_dedup = true;

  /// Shared observers handed to every session (callers own them; null
  /// means each session resolves its own from config/env as before).
  /// A shared auditor is how fleet tests check cross-session
  /// conservation: channel ids derive from session ids, so per-session
  /// byte accounts stay separate inside one auditor.
  audit::SimAuditor* auditor = nullptr;
  obs::TraceRecorder* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  /// Shared fault injector handed to every session (caller owns it; see
  /// fault/fault.hpp). One injector across the fleet means one fault
  /// plan: all sessions on a link see the same outage windows.
  fault::FaultInjector* injector = nullptr;

  /// Fault recovery: a session aborted by an injected link outage is
  /// requeued and retried up to `max_attempts` total attempts, with
  /// exponential backoff (`retry_backoff`, doubled per failure) before
  /// each retry. 0 attempts means retry forever.
  std::size_t max_attempts = 3;
  SimDuration retry_backoff = Seconds(5.0);

  /// When a request exhausts its attempts: throw MigrationAborted (the
  /// default — an unhandled abort should be loud), or record it in
  /// Aborts() and keep draining the rest of the fleet.
  bool throw_on_abort = true;

  /// Worker threads for the sharded (PDES) constructor; ignored by the
  /// single-simulator constructor. 0 (the default) reads VECYCLE_THREADS.
  /// The worker count never changes results — only wall-clock time.
  std::size_t workers = 0;

  /// Rejects configurations the scheduler cannot execute sensibly. The
  /// admission caps (max_outgoing_per_host / max_incoming_per_host) and
  /// the retry budget (max_attempts) accept every value — 0 means
  /// unlimited for each of them — so only the backoff needs a bound:
  /// a negative retry_backoff would schedule retry wake-ups into the
  /// simulated past. Called by the MigrationScheduler constructor.
  void Validate() const;
};

class MigrationScheduler {
 public:
  /// Everything known about a finished session. `vm` points at the
  /// caller's instance (now relocated to `to`).
  struct Completion {
    SessionId id = 0;
    VmInstance* vm = nullptr;
    HostId from;
    HostId to;
    migration::MigrationStats stats;
    SimTime completed_at = kSimEpoch;
  };
  using CompletionCallback = std::function<void(const Completion&)>;

  explicit MigrationScheduler(Cluster& cluster, SchedulerConfig config = {});

  /// PDES mode: drive the fleet across the shards of `pdes`, with hosts
  /// partitioned by `plan` (which must cover every host of `cluster` and
  /// agree with `pdes` on the shard count). The scheduler owns one
  /// auditor per shard (attached to the shard simulators for the
  /// scheduler's lifetime) and runs its control plane at barrier times,
  /// so `config.auditor/tracer/injector` must be null — those would be
  /// fed from several workers at once. `config.metrics` stays legal:
  /// stats are recorded at barriers only.
  MigrationScheduler(Cluster& cluster, sim::ShardedSimulator& pdes,
                     sim::ShardPlan plan, SchedulerConfig config = {});

  ~MigrationScheduler();

  MigrationScheduler(const MigrationScheduler&) = delete;
  MigrationScheduler& operator=(const MigrationScheduler&) = delete;

  /// Queues a migration of `vm` to `to`. The source host is read from
  /// the VM at *admission* time, so several legs of one VM's journey can
  /// be submitted up front (they run in submission order — per-VM FIFO —
  /// regardless of priority). Higher `priority` admits first across
  /// different VMs; ties admit in submission order. Returns the session
  /// id (session ids start at 1; 0 is the engine's anonymous default).
  SessionId Submit(VmInstance& vm, const HostId& to,
                   const migration::MigrationConfig& config,
                   int priority = 0, CompletionCallback on_complete = nullptr);

  /// Runs the event loop until every submitted migration has completed,
  /// admitting queued sessions as capacity frees. Returns the number of
  /// sessions completed by this call. Throws CheckFailure if requests
  /// remain that can never be admitted.
  std::size_t Drain();

  [[nodiscard]] std::size_t QueuedCount() const {
    common::NullLockGuard lock(mu_);
    return queued_.size();
  }
  [[nodiscard]] std::size_t RunningCount() const {
    common::NullLockGuard lock(mu_);
    return running_.size();
  }

  /// All completions since construction, in completion order. The
  /// reference is stable for reads between Drain() calls; under PDES it
  /// must be snapshotted while the scheduler is quiescent.
  [[nodiscard]] const std::vector<Completion>& Completions() const {
    common::NullLockGuard lock(mu_);
    return completions_;
  }
  [[nodiscard]] const Completion* FindCompletion(SessionId id) const;

  /// A request that exhausted its retry budget (only recorded when
  /// `throw_on_abort` is off; otherwise the abort throws instead).
  struct Abort {
    SessionId id = 0;  ///< the id Submit() returned
    VmInstance* vm = nullptr;
    HostId from;
    HostId to;
    std::uint64_t attempts = 0;  ///< attempts consumed (== max_attempts)
    SimTime failed_at = kSimEpoch;
  };
  [[nodiscard]] const std::vector<Abort>& Aborts() const {
    common::NullLockGuard lock(mu_);
    return aborts_;
  }

  /// Failed attempts that were requeued for another try.
  [[nodiscard]] std::uint64_t Retries() const {
    common::NullLockGuard lock(mu_);
    return retries_;
  }

  [[nodiscard]] const SchedulerConfig& Config() const { return config_; }

  /// PDES mode only: the per-shard audit fingerprints folded together in
  /// shard order — the one number ReplayCheck compares across worker
  /// counts. Read while quiescent (between Drain() calls).
  [[nodiscard]] std::uint64_t CombinedFingerprint() const;

  /// PDES mode only: the auditor observing shard `shard`.
  [[nodiscard]] const audit::SimAuditor& ShardAuditor(
      sim::ShardId shard) const;

 private:
  struct Request {
    SessionId id = 0;  ///< caller-facing id, stable across retries
    VmInstance* vm = nullptr;
    HostId to;
    migration::MigrationConfig config;
    int priority = 0;
    CompletionCallback on_complete;
    std::uint64_t attempts = 0;     ///< failed attempts so far
    SimTime not_before = kSimEpoch;  ///< retry backoff gate
  };

  struct Running {
    Request request;
    HostId from;
    std::unique_ptr<migration::MigrationSession> session;
    bool in_gang = false;
    std::pair<HostId, HostId> gang_key;
  };

  /// One gang: the shared sender-side dedup cache plus a refcount of the
  /// concurrently running sessions using it.
  struct Gang {
    std::unordered_map<std::uint64_t, std::uint64_t> cache;
    std::size_t sessions = 0;
  };

  void AdmitEligible() VEC_REQUIRES(mu_);
  void StartSession(Request request) VEC_REQUIRES(mu_);
  /// Re-entry point for the retry-backoff wake event: acquires the
  /// scheduler capability, then admits (the simulator must never call
  /// into a VEC_REQUIRES method directly).
  void WakeAdmit();
  void OnSessionFinished(SessionId id, SimTime when);
  void OnSessionFailed(SessionId id, SimTime when);
  /// Tears down a running session's slot bookkeeping (host caps, gang
  /// refcount) and parks the session object; returns its Request.
  Request ReleaseSlot(SessionId id) VEC_REQUIRES(mu_);

  /// "Now" for admission decisions: the barrier time in PDES mode (shard
  /// clocks diverge inside windows; the barrier is the one shared
  /// instant), the simulator clock otherwise.
  [[nodiscard]] SimTime CurrentTime() const VEC_REQUIRES(mu_);
  /// PDES Drain(): the barrier-window loop around ShardedSimulator::Run.
  std::size_t DrainSharded();
  /// Barrier hook for ShardedSimulator::Run — processes the window's
  /// completions/failures in (when, id) order, admits, and returns the
  /// earliest pending retry-backoff deadline (or kNoPendingEvent).
  SimTime ControlStep(SimTime now);
  /// Minimum latency over links whose endpoints sit on different shards
  /// (Seconds(1.0) when no link crosses shards — the shards never talk).
  [[nodiscard]] SimDuration ShardLookahead() const;

  Cluster& cluster_;
  // vecycle-analyze: allow(concurrency-guarded-member) written once in the constructor, immutable afterwards
  SchedulerConfig config_;

  // --- PDES mode (all null/empty in single-simulator mode) ---
  // vecycle-analyze: allow(concurrency-guarded-member) set once in the constructor, immutable afterwards
  sim::ShardedSimulator* pdes_ = nullptr;
  // vecycle-analyze: allow(concurrency-guarded-member) set once in the constructor, immutable afterwards
  sim::ShardPlan plan_;
  // vecycle-analyze: allow(concurrency-guarded-member) set once in the constructor, immutable afterwards
  std::size_t workers_ = 1;
  /// One auditor per shard: each is fed by exactly one worker during
  /// windows and read by the coordinator only at barriers.
  // vecycle-analyze: allow(concurrency-guarded-member) vector immutable after construction; each auditor is fed by exactly one worker
  std::vector<std::unique_ptr<audit::SimAuditor>> shard_auditors_;
  // vecycle-analyze: allow(concurrency-guarded-member) vector immutable after construction; per-entry mutexes guard the contents
  std::vector<std::unique_ptr<sched_internal::ControlOutbox>> outboxes_;

  /// Scheduler capability: admission queue, running set, host caps, gang
  /// refcounts and completion records form one consistency domain.
  /// Today a zero-cost NullMutex; the PDES control plane replaces it
  /// with a real lock and inherits the acquisition structure unchanged.
  mutable common::NullMutex mu_;

  SessionId next_id_ VEC_GUARDED_BY(mu_) = 1;

  std::vector<Request> queued_ VEC_GUARDED_BY(mu_);  ///< submission order
  std::map<SessionId, Running> running_ VEC_GUARDED_BY(mu_);
  /// VMs with a session in flight — an index over running_ so the
  /// admission scan probes VM-busy in O(1) instead of walking every
  /// running session per queued candidate (quadratic at fleet scale).
  std::unordered_set<const VmInstance*> busy_vms_ VEC_GUARDED_BY(mu_);
  /// Sessions finished but not yet destructible: OnSessionFinished runs
  /// inside the session's own actor callback, so destruction is deferred
  /// until the event loop returns control to Drain().
  std::vector<std::unique_ptr<migration::MigrationSession>> retired_
      VEC_GUARDED_BY(mu_);

  /// Host admission counters are keyed by HostId in sorted order: fleet
  /// diagnostics iterate them, and iteration order must not depend on
  /// the HostId hash (determinism; see docs/analysis-tooling.md).
  std::map<HostId, std::size_t> outgoing_ VEC_GUARDED_BY(mu_);
  std::map<HostId, std::size_t> incoming_ VEC_GUARDED_BY(mu_);
  std::map<std::pair<HostId, HostId>, Gang> gangs_ VEC_GUARDED_BY(mu_);

  std::vector<Completion> completions_ VEC_GUARDED_BY(mu_);
  std::vector<Abort> aborts_ VEC_GUARDED_BY(mu_);
  std::uint64_t retries_ VEC_GUARDED_BY(mu_) = 0;

  /// The barrier time the control plane is currently acting at (PDES
  /// mode); admission reads it as "now" because shard clocks disagree.
  SimTime control_now_ VEC_GUARDED_BY(mu_) = kSimEpoch;
};

}  // namespace vecycle::core
