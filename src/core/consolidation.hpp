// Dynamic workload consolidation (Verma et al. [26]; §1 and §2.2 name it
// as a likely cause of the ping-pong migration pattern VeCycle exploits):
// low-activity VMs are packed onto a consolidation host so worker hosts
// can power down; when a VM becomes active again it moves back. The
// manager here implements that control loop — activity sensing with
// hysteresis and a minimum dwell time — and is precisely the component
// that *generates* the small-host-set migration patterns of the IBM
// study [7].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/orchestrator.hpp"
#include "core/vm_instance.hpp"
#include "migration/config.hpp"

namespace vecycle::core {

/// Sliding-window write-rate estimator over GuestMemory::TotalWrites().
class ActivitySensor {
 public:
  /// Records an observation; the rate is computed over the last window.
  void Observe(std::uint64_t total_writes, SimTime now);

  /// Writes per second over the most recent observation interval
  /// (0 before two observations exist).
  [[nodiscard]] double WritesPerSecond() const { return rate_; }

 private:
  std::uint64_t last_writes_ = 0;
  SimTime last_time_ = kSimEpoch;
  bool primed_ = false;
  double rate_ = 0.0;
};

struct ConsolidationPolicy {
  /// Below this write rate a VM counts as idle (candidate to consolidate).
  double idle_threshold_writes_per_s = 20.0;
  /// Above this it counts as active (candidate to return). The gap
  /// between the thresholds is the hysteresis band.
  double active_threshold_writes_per_s = 200.0;
  /// A VM stays put at least this long after any migration (anti-flap).
  SimDuration min_dwell = Minutes(30);

  void Validate() const;
};

/// Drives the consolidate/activate loop for a set of VMs between their
/// home (worker) hosts and one shared consolidation host.
class ConsolidationManager {
 public:
  ConsolidationManager(Cluster& cluster, MigrationOrchestrator& orchestrator,
                       HostId consolidation_host, ConsolidationPolicy policy,
                       migration::MigrationConfig migration_config);

  /// Registers a VM whose home is `worker_host`. The VM must already be
  /// deployed (on the worker or the consolidation host).
  void Register(VmInstance& vm, HostId worker_host);

  /// Advances simulated time by `step`: runs every VM's workload, samples
  /// activity, and performs any migrations the policy calls for.
  void Tick(SimDuration step);

  struct Stats {
    std::uint64_t consolidations = 0;  ///< worker -> consolidation host
    std::uint64_t activations = 0;     ///< consolidation host -> worker
    Bytes migration_traffic;
    SimDuration migration_time = SimDuration::zero();
  };
  [[nodiscard]] const Stats& GetStats() const { return stats_; }

  /// True if the VM currently lives on the consolidation host.
  [[nodiscard]] bool IsConsolidated(const VmInstance& vm) const;

 private:
  struct Managed {
    VmInstance* vm = nullptr;
    HostId worker_host;
    ActivitySensor sensor;
    SimTime last_move = kSimEpoch;
    bool ever_moved = false;
  };

  void MaybeMigrate(Managed& managed, SimTime now);

  Cluster& cluster_;
  MigrationOrchestrator& orchestrator_;
  HostId consolidation_host_;
  ConsolidationPolicy policy_;
  migration::MigrationConfig migration_config_;
  std::vector<Managed> vms_;
  Stats stats_;
};

}  // namespace vecycle::core
