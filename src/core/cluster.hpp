// Cluster topology: hosts and the links between them, sharing one
// simulator. Links are full duplex and identified by unordered host pair.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/host.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace vecycle::core {

class Cluster {
 public:
  explicit Cluster(sim::Simulator& simulator) : simulator_(simulator) {}

  Host& AddHost(HostConfig config) {
    config.Validate();
    VEC_CHECK_MSG(FindHost(config.id) == nullptr,
                  "duplicate host id: " + config.id);
    hosts_.push_back(std::make_unique<Host>(std::move(config)));
    return *hosts_.back();
  }

  /// Connects two hosts with a dedicated link (e.g. LinkConfig::Lan()).
  sim::Link& Connect(const HostId& a, const HostId& b,
                     sim::LinkConfig config) {
    VEC_CHECK_MSG(FindHost(a) != nullptr, "unknown host: " + a);
    VEC_CHECK_MSG(FindHost(b) != nullptr, "unknown host: " + b);
    VEC_CHECK_MSG(a != b, "cannot connect a host to itself");
    const auto key = Key(a, b);
    VEC_CHECK_MSG(!links_.contains(key), "hosts already connected");
    links_[key] = std::make_unique<sim::Link>(config);
    return *links_[key];
  }

  [[nodiscard]] Host* FindHost(const HostId& id) {
    for (const auto& host : hosts_) {
      if (host->Id() == id) return host.get();
    }
    return nullptr;
  }
  [[nodiscard]] const Host* FindHost(const HostId& id) const {
    for (const auto& host : hosts_) {
      if (host->Id() == id) return host.get();
    }
    return nullptr;
  }

  [[nodiscard]] Host& GetHost(const HostId& id) {
    Host* host = FindHost(id);
    VEC_CHECK_MSG(host != nullptr, "unknown host: " + id);
    return *host;
  }
  [[nodiscard]] const Host& GetHost(const HostId& id) const {
    const Host* host = FindHost(id);
    VEC_CHECK_MSG(host != nullptr, "unknown host: " + id);
    return *host;
  }

  /// All hosts in AddHost order — a stable iteration order for fleet
  /// tooling (reports, schedulers, examples).
  [[nodiscard]] std::vector<const Host*> Hosts() const {
    std::vector<const Host*> out;
    out.reserve(hosts_.size());
    for (const auto& host : hosts_) out.push_back(host.get());
    return out;
  }

  /// Every link with its (lexicographically ordered) endpoints, in key
  /// order — a stable enumeration for topology analysis such as the PDES
  /// lookahead (minimum latency over links that cross shards).
  struct LinkEntry {
    HostId a;
    HostId b;
    const sim::Link* link = nullptr;
  };

  [[nodiscard]] std::vector<LinkEntry> Links() const {
    std::vector<LinkEntry> out;
    out.reserve(links_.size());
    for (const auto& [key, link] : links_) {
      out.push_back(LinkEntry{key.first, key.second, link.get()});
    }
    return out;
  }

  /// The direct link between two hosts, in either endpoint order, or
  /// nullptr when they are not connected.
  [[nodiscard]] const sim::Link* LinkBetween(const HostId& a,
                                             const HostId& b) const {
    const auto it = links_.find(Key(a, b));
    return it == links_.end() ? nullptr : it->second.get();
  }

  /// The link between two hosts plus the direction a->b on it.
  struct Path {
    sim::Link* link = nullptr;
    sim::Direction direction = sim::Direction::kAtoB;
  };

  [[nodiscard]] Path PathBetween(const HostId& from, const HostId& to) {
    const auto it = links_.find(Key(from, to));
    VEC_CHECK_MSG(it != links_.end(),
                  "no link between " + from + " and " + to);
    Path path;
    path.link = it->second.get();
    // Key() orders endpoints lexicographically; kAtoB flows from the
    // lexicographically smaller id.
    path.direction =
        from < to ? sim::Direction::kAtoB : sim::Direction::kBtoA;
    return path;
  }

  [[nodiscard]] sim::Simulator& Simulator() { return simulator_; }
  [[nodiscard]] std::size_t HostCount() const { return hosts_.size(); }
  [[nodiscard]] std::size_t LinkCount() const { return links_.size(); }

 private:
  static std::pair<HostId, HostId> Key(const HostId& a, const HostId& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  sim::Simulator& simulator_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::map<std::pair<HostId, HostId>, std::unique_ptr<sim::Link>> links_;
};

}  // namespace vecycle::core
