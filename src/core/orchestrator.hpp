// Migration orchestrator — the top of the VeCycle public API.
//
// Deploy a VM on a host, let simulated time pass (the workload churns
// guest memory), and migrate it between hosts. Every migration performs
// the full VeCycle bookkeeping of §3:
//   * after the copy completes, the *source* writes a checkpoint of the
//     departed VM to its local disk (outside the measured migration time,
//     as in §4.4),
//   * the VM remembers the digest set it left behind (so a future return
//     migration needs no bulk hash exchange) and its generation counters
//     at departure (Miyakodori state),
//   * the destination bootstraps from its own stale checkpoint when it has
//     one and the strategy uses it.
#pragma once

#include <vector>

#include "core/cluster.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "migration/engine.hpp"
#include "policy/placement.hpp"

namespace vecycle::core {

/// One leg of a policy wave (RunPolicy): which VM must move and which
/// destinations it may choose among. Empty candidates mean "every host
/// directly linked to the VM's current host".
struct PolicyLeg {
  VmInstance* vm = nullptr;
  std::vector<HostId> candidates;
  int priority = 0;
};

class MigrationOrchestrator {
 public:
  explicit MigrationOrchestrator(Cluster& cluster,
                                 SchedulerConfig scheduler_config = {})
      : cluster_(cluster), scheduler_(cluster, scheduler_config) {}

  /// PDES mode: the fleet runs sharded across `pdes` under `plan` (see
  /// MigrationScheduler's sharded constructor for the contract). The
  /// synchronous Migrate() is unavailable in this mode — queue with
  /// MigrateAsync() and Drain().
  MigrationOrchestrator(Cluster& cluster, sim::ShardedSimulator& pdes,
                        sim::ShardPlan plan,
                        SchedulerConfig scheduler_config = {})
      : cluster_(cluster),
        scheduler_(cluster, pdes, std::move(plan), scheduler_config),
        pdes_(&pdes) {}

  /// Places `vm` on `host` (initial deployment, no traffic).
  void Deploy(VmInstance& vm, const HostId& host);

  /// Advances simulated time by `duration` while the VM runs in place;
  /// the VM's workload is applied over the interval.
  void RunFor(VmInstance& vm, SimDuration duration);

  /// Fleet variant: advances simulated time once, then applies every
  /// VM's workload over the interval.
  void RunFor(const std::vector<VmInstance*>& vms, SimDuration duration);

  /// Migrates `vm` from its current host to `to` and returns the measured
  /// statistics. The VM must be deployed and the hosts connected.
  /// Synchronous: runs the event loop to completion before returning.
  migration::MigrationStats Migrate(VmInstance& vm, const HostId& to,
                                    const migration::MigrationConfig& config);

  /// Queues a migration on the scheduler and returns its session id; the
  /// migration runs (possibly overlapping others) on the next Drain().
  SessionId MigrateAsync(
      VmInstance& vm, const HostId& to,
      const migration::MigrationConfig& config, int priority = 0,
      MigrationScheduler::CompletionCallback on_complete = nullptr);

  /// Consults `policy` for one leg and queues the chosen migration on
  /// the scheduler (run it with Drain()). Candidates are sorted, deduped
  /// and stripped of the VM's current host before the policy sees them;
  /// empty `candidates` resolve to every host directly linked to the
  /// VM's current host. The returned Decision reports the policy's
  /// deferral recommendation, but this call always submits immediately —
  /// callers that honor timing use RunPolicy.
  policy::Decision MigrateAuto(
      VmInstance& vm, policy::PlacementPolicy& policy,
      const migration::MigrationConfig& config,
      std::vector<HostId> candidates = {},
      const std::vector<VmInstance*>* fleet = nullptr, int priority = 0,
      MigrationScheduler::CompletionCallback on_complete = nullptr);

  /// Runs one wave of policy-driven legs to completion. Every decision
  /// is taken up front at the wave's quiescent start (in leg order, so
  /// results never depend on container iteration); legs are then grouped
  /// by the policy's deferral, and each group is submitted and drained
  /// after the fleet has run in place up to its deferral instant —
  /// decisions and submissions only ever happen while the fleet is
  /// quiescent, which is what keeps PDES replays byte-identical. A VM
  /// may appear in at most one leg per wave. A positive `observe_step`
  /// advances deferral waits in chunks of that size and feeds the fleet
  /// to policy.Observe() after each chunk, so dirty-rate sampling keeps
  /// the same cadence inside a wave as between waves (a detector fed one
  /// hours-long smeared interval mislearns the phase edges its next
  /// deferral depends on); zero advances each wait in one step with no
  /// observations. Returns the decisions in leg order.
  std::vector<policy::Decision> RunPolicy(
      const std::vector<VmInstance*>& fleet,
      const std::vector<PolicyLeg>& legs, policy::PlacementPolicy& policy,
      const migration::MigrationConfig& config,
      SimDuration observe_step = SimDuration::zero());

  /// Runs every queued migration to completion; returns how many
  /// finished. See MigrationScheduler::Drain.
  std::size_t Drain() { return scheduler_.Drain(); }

  [[nodiscard]] MigrationScheduler& Scheduler() { return scheduler_; }

 private:
  Cluster& cluster_;
  MigrationScheduler scheduler_;
  sim::ShardedSimulator* pdes_ = nullptr;  ///< null in single-sim mode
};

}  // namespace vecycle::core
