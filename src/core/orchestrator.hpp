// Migration orchestrator — the top of the VeCycle public API.
//
// Deploy a VM on a host, let simulated time pass (the workload churns
// guest memory), and migrate it between hosts. Every migration performs
// the full VeCycle bookkeeping of §3:
//   * after the copy completes, the *source* writes a checkpoint of the
//     departed VM to its local disk (outside the measured migration time,
//     as in §4.4),
//   * the VM remembers the digest set it left behind (so a future return
//     migration needs no bulk hash exchange) and its generation counters
//     at departure (Miyakodori state),
//   * the destination bootstraps from its own stale checkpoint when it has
//     one and the strategy uses it.
#pragma once

#include <vector>

#include "core/cluster.hpp"
#include "core/scheduler.hpp"
#include "core/vm_instance.hpp"
#include "migration/engine.hpp"

namespace vecycle::core {

class MigrationOrchestrator {
 public:
  explicit MigrationOrchestrator(Cluster& cluster,
                                 SchedulerConfig scheduler_config = {})
      : cluster_(cluster), scheduler_(cluster, scheduler_config) {}

  /// PDES mode: the fleet runs sharded across `pdes` under `plan` (see
  /// MigrationScheduler's sharded constructor for the contract). The
  /// synchronous Migrate() is unavailable in this mode — queue with
  /// MigrateAsync() and Drain().
  MigrationOrchestrator(Cluster& cluster, sim::ShardedSimulator& pdes,
                        sim::ShardPlan plan,
                        SchedulerConfig scheduler_config = {})
      : cluster_(cluster),
        scheduler_(cluster, pdes, std::move(plan), scheduler_config),
        pdes_(&pdes) {}

  /// Places `vm` on `host` (initial deployment, no traffic).
  void Deploy(VmInstance& vm, const HostId& host);

  /// Advances simulated time by `duration` while the VM runs in place;
  /// the VM's workload is applied over the interval.
  void RunFor(VmInstance& vm, SimDuration duration);

  /// Fleet variant: advances simulated time once, then applies every
  /// VM's workload over the interval.
  void RunFor(const std::vector<VmInstance*>& vms, SimDuration duration);

  /// Migrates `vm` from its current host to `to` and returns the measured
  /// statistics. The VM must be deployed and the hosts connected.
  /// Synchronous: runs the event loop to completion before returning.
  migration::MigrationStats Migrate(VmInstance& vm, const HostId& to,
                                    const migration::MigrationConfig& config);

  /// Queues a migration on the scheduler and returns its session id; the
  /// migration runs (possibly overlapping others) on the next Drain().
  SessionId MigrateAsync(
      VmInstance& vm, const HostId& to,
      const migration::MigrationConfig& config, int priority = 0,
      MigrationScheduler::CompletionCallback on_complete = nullptr);

  /// Runs every queued migration to completion; returns how many
  /// finished. See MigrationScheduler::Drain.
  std::size_t Drain() { return scheduler_.Drain(); }

  [[nodiscard]] MigrationScheduler& Scheduler() { return scheduler_; }

 private:
  Cluster& cluster_;
  MigrationScheduler scheduler_;
  sim::ShardedSimulator* pdes_ = nullptr;  ///< null in single-sim mode
};

}  // namespace vecycle::core
