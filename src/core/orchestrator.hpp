// Migration orchestrator — the top of the VeCycle public API.
//
// Deploy a VM on a host, let simulated time pass (the workload churns
// guest memory), and migrate it between hosts. Every migration performs
// the full VeCycle bookkeeping of §3:
//   * after the copy completes, the *source* writes a checkpoint of the
//     departed VM to its local disk (outside the measured migration time,
//     as in §4.4),
//   * the VM remembers the digest set it left behind (so a future return
//     migration needs no bulk hash exchange) and its generation counters
//     at departure (Miyakodori state),
//   * the destination bootstraps from its own stale checkpoint when it has
//     one and the strategy uses it.
#pragma once

#include "core/cluster.hpp"
#include "core/vm_instance.hpp"
#include "migration/engine.hpp"

namespace vecycle::core {

class MigrationOrchestrator {
 public:
  explicit MigrationOrchestrator(Cluster& cluster) : cluster_(cluster) {}

  /// Places `vm` on `host` (initial deployment, no traffic).
  void Deploy(VmInstance& vm, const HostId& host);

  /// Advances simulated time by `duration` while the VM runs in place;
  /// the VM's workload is applied over the interval.
  void RunFor(VmInstance& vm, SimDuration duration);

  /// Migrates `vm` from its current host to `to` and returns the measured
  /// statistics. The VM must be deployed and the hosts connected.
  migration::MigrationStats Migrate(VmInstance& vm, const HostId& to,
                                    const migration::MigrationConfig& config);

 private:
  Cluster& cluster_;
};

}  // namespace vecycle::core
