// A virtual machine plus the VeCycle metadata that travels with it.
//
// Beyond guest memory and its workload, the VM carries what its hypervisor
// learned at each previously visited host: the checksum set of the
// checkpoint it left behind (§3.2's incoming-page tracking, consumed on a
// return migration to skip the bulk hash exchange). Departure-time
// generation counters and delta baselines are *not* carried on the VM —
// they resolve through the destination host's CheckpointStore, the system
// of record for what the VM actually left there.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/host.hpp"
#include "digest/digest.hpp"
#include "digest/digest_set.hpp"
#include "vm/guest_memory.hpp"
#include "vm/workload.hpp"

namespace vecycle::core {

class VmInstance {
 public:
  VmInstance(std::string id, Bytes ram, vm::ContentMode mode,
             DigestAlgorithm algorithm = DigestAlgorithm::kMd5)
      : id_(std::move(id)),
        memory_(std::make_unique<vm::GuestMemory>(ram, mode, algorithm)) {}

  [[nodiscard]] const std::string& Id() const { return id_; }
  [[nodiscard]] vm::GuestMemory& Memory() { return *memory_; }
  [[nodiscard]] const vm::GuestMemory& Memory() const { return *memory_; }

  void SetWorkload(std::unique_ptr<vm::Workload> workload) {
    workload_ = std::move(workload);
  }
  [[nodiscard]] vm::Workload* Workload() { return workload_.get(); }

  [[nodiscard]] const HostId& CurrentHost() const { return current_host_; }
  void SetCurrentHost(HostId host) { current_host_ = std::move(host); }

  /// Replaces the VM's memory with the state reconstructed at a migration
  /// destination.
  void AdoptMemory(std::unique_ptr<vm::GuestMemory> memory) {
    memory_ = std::move(memory);
  }

  /// Sorted digest set of the checkpoint left behind at `host` (empty
  /// vector if the host was never visited).
  [[nodiscard]] std::vector<Digest128> KnownPagesAt(
      const HostId& host) const {
    const auto it = known_pages_.find(host);
    return it == known_pages_.end() ? std::vector<Digest128>{}
                                    : it->second->ToSortedVector();
  }
  /// Prebuilt membership set for `host`; null if never visited. The set is
  /// built once in RememberPagesAt, so every later migration toward `host`
  /// probes it without re-sorting or re-hashing anything.
  [[nodiscard]] std::shared_ptr<const DigestSet> KnownPageSetAt(
      const HostId& host) const {
    const auto it = known_pages_.find(host);
    return it == known_pages_.end() ? nullptr : it->second;
  }
  void RememberPagesAt(const HostId& host, std::vector<Digest128> digests) {
    known_pages_[host] =
        std::make_shared<const DigestSet>(std::move(digests));
  }

  [[nodiscard]] std::size_t VisitedHostCount() const {
    return known_pages_.size();
  }

 private:
  std::string id_;
  std::unique_ptr<vm::GuestMemory> memory_;
  std::unique_ptr<vm::Workload> workload_;
  HostId current_host_;
  /// Keyed by sorted HostId, not hashed: a VM visits a handful of hosts
  /// (the paper's whole premise), so ordered lookups cost nothing, and
  /// any future iteration (fleet placement policies walking a VM's
  /// checkpoint affinity) is deterministic by construction.
  std::map<HostId, std::shared_ptr<const DigestSet>> known_pages_;
};

}  // namespace vecycle::core
