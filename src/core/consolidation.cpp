#include "core/consolidation.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace vecycle::core {

void ActivitySensor::Observe(std::uint64_t total_writes, SimTime now) {
  if (primed_ && now > last_time_) {
    const double seconds = ToSeconds(now - last_time_);
    rate_ = static_cast<double>(total_writes - last_writes_) / seconds;
  }
  last_writes_ = total_writes;
  last_time_ = now;
  primed_ = true;
}

void ConsolidationPolicy::Validate() const {
  VEC_CHECK_MSG(idle_threshold_writes_per_s >= 0.0,
                "idle threshold must be non-negative");
  VEC_CHECK_MSG(
      active_threshold_writes_per_s >= idle_threshold_writes_per_s,
      "active threshold must not sit below the idle threshold "
      "(hysteresis would invert)");
  VEC_CHECK_MSG(min_dwell >= SimDuration::zero(),
                "min dwell must be non-negative");
}

ConsolidationManager::ConsolidationManager(
    Cluster& cluster, MigrationOrchestrator& orchestrator,
    HostId consolidation_host, ConsolidationPolicy policy,
    migration::MigrationConfig migration_config)
    : cluster_(cluster),
      orchestrator_(orchestrator),
      consolidation_host_(std::move(consolidation_host)),
      policy_(policy),
      migration_config_(migration_config) {
  policy_.Validate();
  (void)cluster_.GetHost(consolidation_host_);  // existence check
}

void ConsolidationManager::Register(VmInstance& vm, HostId worker_host) {
  VEC_CHECK_MSG(!vm.CurrentHost().empty(),
                "register requires a deployed VM: " + vm.Id());
  (void)cluster_.GetHost(worker_host);
  VEC_CHECK_MSG(
      vm.CurrentHost() == worker_host ||
          vm.CurrentHost() == consolidation_host_,
      "VM must start on its worker or the consolidation host: " + vm.Id());
  Managed managed;
  managed.vm = &vm;
  managed.worker_host = std::move(worker_host);
  managed.last_move = cluster_.Simulator().Now();
  // Prime the sensor so the first tick yields a real rate; an unprimed
  // sensor reads 0 writes/s, which would masquerade as idleness.
  managed.sensor.Observe(vm.Memory().TotalWrites(),
                         cluster_.Simulator().Now());
  vms_.push_back(std::move(managed));
}

bool ConsolidationManager::IsConsolidated(const VmInstance& vm) const {
  return vm.CurrentHost() == consolidation_host_;
}

void ConsolidationManager::Tick(SimDuration step) {
  VEC_CHECK_MSG(step > SimDuration::zero(), "tick step must be positive");
  auto& simulator = cluster_.Simulator();
  simulator.RunUntil(simulator.Now() + step);
  const SimTime now = simulator.Now();

  for (auto& managed : vms_) {
    auto& vm = *managed.vm;
    if (vm.Workload() != nullptr) {
      vm.Workload()->Advance(vm.Memory(), step);
    }
    managed.sensor.Observe(vm.Memory().TotalWrites(), now);
    MaybeMigrate(managed, now);
  }
}

void ConsolidationManager::MaybeMigrate(Managed& managed, SimTime now) {
  auto& vm = *managed.vm;
  if (now - managed.last_move < policy_.min_dwell) return;

  const double rate = managed.sensor.WritesPerSecond();
  const bool consolidated = IsConsolidated(vm);

  const bool should_consolidate =
      !consolidated && rate <= policy_.idle_threshold_writes_per_s;
  const bool should_activate =
      consolidated && rate >= policy_.active_threshold_writes_per_s;
  if (!should_consolidate && !should_activate) return;

  const HostId target =
      should_consolidate ? consolidation_host_ : managed.worker_host;
  const auto stats = orchestrator_.Migrate(vm, target, migration_config_);
  managed.last_move = cluster_.Simulator().Now();
  managed.ever_moved = true;
  // The VM adopted a fresh memory object whose write counter reflects the
  // reconstruction, not guest activity; re-prime so the next interval
  // measures the guest alone.
  managed.sensor = ActivitySensor();
  managed.sensor.Observe(vm.Memory().TotalWrites(), managed.last_move);
  stats_.migration_traffic += stats.tx_bytes;
  stats_.migration_time += stats.total_time;
  if (should_consolidate) {
    ++stats_.consolidations;
  } else {
    ++stats_.activations;
  }
}

}  // namespace vecycle::core
