#include "core/scheduler.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"

namespace vecycle::core {

MigrationScheduler::MigrationScheduler(Cluster& cluster,
                                       SchedulerConfig config)
    : cluster_(cluster), config_(config) {}

MigrationScheduler::~MigrationScheduler() = default;

SessionId MigrationScheduler::Submit(VmInstance& vm, const HostId& to,
                                     const migration::MigrationConfig& config,
                                     int priority,
                                     CompletionCallback on_complete) {
  VEC_CHECK_MSG(!vm.CurrentHost().empty(), "VM is not deployed");
  (void)cluster_.GetHost(to);  // existence check, before queueing
  config.Validate();

  Request request;
  request.id = next_id_++;
  request.vm = &vm;
  request.to = to;
  request.config = config;
  request.priority = priority;
  request.on_complete = std::move(on_complete);
  const SessionId id = request.id;
  queued_.push_back(std::move(request));
  return id;
}

const MigrationScheduler::Completion* MigrationScheduler::FindCompletion(
    SessionId id) const {
  for (const auto& completion : completions_) {
    if (completion.id == id) return &completion;
  }
  return nullptr;
}

void MigrationScheduler::AdmitEligible() {
  while (true) {
    // Pick the admissible request with the highest priority (ties: lowest
    // id). A request is admissible when its VM is idle, it is the VM's
    // oldest queued request (per-VM FIFO — later legs of one journey
    // cannot overtake earlier ones, whatever their priority), and both
    // endpoint hosts have capacity under the configured caps.
    std::size_t best = queued_.size();
    std::unordered_set<const VmInstance*> seen;
    for (std::size_t i = 0; i < queued_.size(); ++i) {
      const Request& request = queued_[i];
      const bool first_for_vm = seen.insert(request.vm).second;
      if (!first_for_vm) continue;
      const bool vm_busy = std::any_of(
          running_.begin(), running_.end(), [&](const auto& entry) {
            return entry.second.request.vm == request.vm;
          });
      if (vm_busy) continue;
      const HostId& from = request.vm->CurrentHost();
      if (config_.max_outgoing_per_host != 0) {
        const auto it = outgoing_.find(from);
        if (it != outgoing_.end() &&
            it->second >= config_.max_outgoing_per_host) {
          continue;
        }
      }
      if (config_.max_incoming_per_host != 0) {
        const auto it = incoming_.find(request.to);
        if (it != incoming_.end() &&
            it->second >= config_.max_incoming_per_host) {
          continue;
        }
      }
      if (best == queued_.size() ||
          request.priority > queued_[best].priority) {
        best = i;
      }
    }
    if (best == queued_.size()) return;
    Request request = std::move(queued_[best]);
    queued_.erase(queued_.begin() +
                  static_cast<std::ptrdiff_t>(best));
    StartSession(std::move(request));
  }
}

void MigrationScheduler::StartSession(Request request) {
  const HostId from = request.vm->CurrentHost();
  VEC_CHECK_MSG(!from.empty(), "VM is not deployed");
  VEC_CHECK_MSG(from != request.to,
                "VM " + request.vm->Id() + " is already on " + request.to);

  Host& source_host = cluster_.GetHost(from);
  Host& dest_host = cluster_.GetHost(request.to);
  const auto path = cluster_.PathBetween(from, request.to);

  // Identical wiring to MigrationOrchestrator::Migrate, plus the session
  // identity and the in-loop checkpoint write-back (the synchronous path
  // books the write-back after its private event loop drains; here the
  // disk stays contended by the sessions still running).
  migration::MigrationRun run;
  run.simulator = &cluster_.Simulator();
  run.link = path.link;
  run.direction = path.direction;
  run.session_id = request.id;
  run.write_back_checkpoint = true;
  run.source_memory = &request.vm->Memory();
  run.workload = request.vm->Workload();
  run.source = {&source_host.Cpu(), &source_host.Store()};
  run.destination = {&dest_host.Cpu(), &dest_host.Store()};
  run.vm_id = request.vm->Id();
  run.config = request.config;
  run.source_knowledge_set = request.vm->KnownPageSetAt(request.to);
  run.departure_generations =
      request.vm->GenerationsAtDeparture(request.to);
  run.auditor = config_.auditor;
  run.tracer = config_.tracer;
  run.metrics = config_.metrics;

  Running running;
  running.from = from;
  if (config_.gang_dedup) {
    running.in_gang = true;
    running.gang_key = {from, request.to};
    Gang& gang = gangs_[running.gang_key];
    ++gang.sessions;
    run.shared_dedup_cache = &gang.cache;
  }

  const SessionId id = request.id;
  run.on_complete = [this, id](SimTime when) {
    OnSessionFinished(id, when);
  };

  ++outgoing_[from];
  ++incoming_[request.to];
  running.request = std::move(request);
  running.session =
      std::make_unique<migration::MigrationSession>(std::move(run));
  running_.emplace(id, std::move(running));
}

void MigrationScheduler::OnSessionFinished(SessionId id, SimTime when) {
  const auto it = running_.find(id);
  VEC_CHECK_MSG(it != running_.end(), "completion for unknown session");
  Running& running = it->second;
  VmInstance& vm = *running.request.vm;
  const HostId from = running.from;
  const HostId to = running.request.to;

  auto outcome = running.session->TakeOutcome();

  // Same bookkeeping, same order, as the synchronous orchestrator path.
  // (The checkpoint write-back already happened inside the session.)
  vm.RememberDeparture(from, vm.Memory().Generations());
  vm.RememberPagesAt(from, std::move(outcome.incoming_digests));
  vm.AdoptMemory(std::move(outcome.dest_memory));
  vm.SetCurrentHost(to);

  const auto release = [](std::unordered_map<HostId, std::size_t>& counts,
                          const HostId& host) {
    const auto entry = counts.find(host);
    VEC_CHECK_MSG(entry != counts.end() && entry->second > 0,
                  "session count underflow for host " + host);
    if (--entry->second == 0) counts.erase(entry);
  };
  release(outgoing_, from);
  release(incoming_, to);
  if (running.in_gang) {
    const auto gang = gangs_.find(running.gang_key);
    VEC_CHECK_MSG(gang != gangs_.end() && gang->second.sessions > 0,
                  "gang refcount underflow");
    if (--gang->second.sessions == 0) gangs_.erase(gang);
  }

  Completion completion;
  completion.id = id;
  completion.vm = &vm;
  completion.from = from;
  completion.to = to;
  completion.stats = outcome.stats;
  completion.completed_at = outcome.completed_at;

  CompletionCallback callback = std::move(running.request.on_complete);
  // This runs inside the session's own done-ack handler; the session
  // object must outlive the call, so park it instead of destroying it.
  retired_.push_back(std::move(running.session));
  running_.erase(it);

  completions_.push_back(std::move(completion));
  if (callback) callback(completions_.back());
  (void)when;

  // Capacity just freed up — admit the next queued request(s) now, at
  // the completion's sim time, exactly when a real control plane would.
  AdmitEligible();
}

std::size_t MigrationScheduler::Drain() {
  const std::size_t before = completions_.size();
  AdmitEligible();
  while (!running_.empty() || !queued_.empty()) {
    VEC_CHECK_MSG(!running_.empty(),
                  "scheduler stuck: queued migrations can never be "
                  "admitted (check caps and VM placement)");
    cluster_.Simulator().Run();
    retired_.clear();
    // The event loop only drains when every running session finished;
    // completions may have queued fresh submissions via callbacks.
    AdmitEligible();
  }
  retired_.clear();
  return completions_.size() - before;
}

}  // namespace vecycle::core
