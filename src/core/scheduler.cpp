#include "core/scheduler.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"

namespace vecycle::core {

void SchedulerConfig::Validate() const {
  // max_outgoing_per_host / max_incoming_per_host: every value is legal —
  // zero means unlimited admission per the header contract.
  // max_attempts: every value is legal — zero means retry forever, any
  // other count is a plain retry budget.
  VEC_CHECK_MSG(retry_backoff >= SimDuration::zero(),
                "retry_backoff must be non-negative (retry wake-ups "
                "cannot land in the simulated past)");
}

MigrationScheduler::MigrationScheduler(Cluster& cluster,
                                       SchedulerConfig config)
    : cluster_(cluster), config_(config) {
  config_.Validate();
}

MigrationScheduler::~MigrationScheduler() = default;

SessionId MigrationScheduler::Submit(VmInstance& vm, const HostId& to,
                                     const migration::MigrationConfig& config,
                                     int priority,
                                     CompletionCallback on_complete) {
  VEC_CHECK_MSG(!vm.CurrentHost().empty(), "VM is not deployed");
  (void)cluster_.GetHost(to);  // existence check, before queueing
  config.Validate();

  common::NullLockGuard lock(mu_);
  Request request;
  request.id = next_id_++;
  request.vm = &vm;
  request.to = to;
  request.config = config;
  request.priority = priority;
  request.on_complete = std::move(on_complete);
  const SessionId id = request.id;
  queued_.push_back(std::move(request));
  return id;
}

const MigrationScheduler::Completion* MigrationScheduler::FindCompletion(
    SessionId id) const {
  common::NullLockGuard lock(mu_);
  for (const auto& completion : completions_) {
    if (completion.id == id) return &completion;
  }
  return nullptr;
}

void MigrationScheduler::AdmitEligible() {
  while (true) {
    // Pick the admissible request with the highest priority (ties: lowest
    // id). A request is admissible when its VM is idle, it is the VM's
    // oldest queued request (per-VM FIFO — later legs of one journey
    // cannot overtake earlier ones, whatever their priority), and both
    // endpoint hosts have capacity under the configured caps.
    std::size_t best = queued_.size();
    const SimTime now = cluster_.Simulator().Now();
    std::unordered_set<const VmInstance*> seen;
    for (std::size_t i = 0; i < queued_.size(); ++i) {
      const Request& request = queued_[i];
      const bool first_for_vm = seen.insert(request.vm).second;
      if (!first_for_vm) continue;
      // A request waiting out its retry backoff still claims its VM's
      // FIFO slot (later legs must not overtake it); it just cannot be
      // admitted until the backoff expires.
      if (request.not_before > now) continue;
      const bool vm_busy = std::any_of(
          running_.begin(), running_.end(), [&](const auto& entry) {
            return entry.second.request.vm == request.vm;
          });
      if (vm_busy) continue;
      const HostId& from = request.vm->CurrentHost();
      if (config_.max_outgoing_per_host != 0) {
        const auto it = outgoing_.find(from);
        if (it != outgoing_.end() &&
            it->second >= config_.max_outgoing_per_host) {
          continue;
        }
      }
      if (config_.max_incoming_per_host != 0) {
        const auto it = incoming_.find(request.to);
        if (it != incoming_.end() &&
            it->second >= config_.max_incoming_per_host) {
          continue;
        }
      }
      if (best == queued_.size() ||
          request.priority > queued_[best].priority) {
        best = i;
      }
    }
    if (best == queued_.size()) return;
    Request request = std::move(queued_[best]);
    queued_.erase(queued_.begin() +
                  static_cast<std::ptrdiff_t>(best));
    StartSession(std::move(request));
  }
}

void MigrationScheduler::StartSession(Request request) {
  const HostId from = request.vm->CurrentHost();
  VEC_CHECK_MSG(!from.empty(), "VM is not deployed");
  VEC_CHECK_MSG(from != request.to,
                "VM " + request.vm->Id() + " is already on " + request.to);

  Host& source_host = cluster_.GetHost(from);
  Host& dest_host = cluster_.GetHost(request.to);
  const auto path = cluster_.PathBetween(from, request.to);

  // Identical wiring to MigrationOrchestrator::Migrate, plus the session
  // identity and the in-loop checkpoint write-back (the synchronous path
  // books the write-back after its private event loop drains; here the
  // disk stays contended by the sessions still running).
  // Retries run under a fresh session id: channel ids (and so the
  // auditor's per-channel byte accounts) derive from the session id, and
  // the aborted attempt's wire bytes must not leak into the retry's
  // conservation checks. The caller-facing id stays `request.id`.
  const SessionId sid = request.attempts == 0 ? request.id : next_id_++;

  migration::MigrationRun run;
  run.simulator = &cluster_.Simulator();
  run.link = path.link;
  run.direction = path.direction;
  run.session_id = sid;
  run.write_back_checkpoint = true;
  run.source_memory = &request.vm->Memory();
  run.workload = request.vm->Workload();
  run.source = {&source_host.Cpu(), &source_host.Store()};
  run.destination = {&dest_host.Cpu(), &dest_host.Store()};
  run.vm_id = request.vm->Id();
  run.config = request.config;
  run.source_knowledge_set = request.vm->KnownPageSetAt(request.to);
  run.departure_generations =
      request.vm->GenerationsAtDeparture(request.to);
  run.auditor = config_.auditor;
  run.tracer = config_.tracer;
  run.metrics = config_.metrics;
  run.injector = config_.injector;
  run.attempt = request.attempts;

  Running running;
  running.from = from;
  if (config_.gang_dedup) {
    running.in_gang = true;
    running.gang_key = {from, request.to};
    Gang& gang = gangs_[running.gang_key];
    ++gang.sessions;
    run.shared_dedup_cache = &gang.cache;
  }

  run.on_complete = [this, sid](SimTime when) {
    OnSessionFinished(sid, when);
  };
  run.on_failed = [this, sid](SimTime when) { OnSessionFailed(sid, when); };

  ++outgoing_[from];
  ++incoming_[request.to];
  running.request = std::move(request);
  running.session =
      std::make_unique<migration::MigrationSession>(std::move(run));
  running_.emplace(sid, std::move(running));
}

MigrationScheduler::Request MigrationScheduler::ReleaseSlot(SessionId id) {
  const auto it = running_.find(id);
  VEC_CHECK_MSG(it != running_.end(), "outcome for unknown session");
  Running& running = it->second;

  const auto release = [](std::map<HostId, std::size_t>& counts,
                          const HostId& host) {
    const auto entry = counts.find(host);
    VEC_CHECK_MSG(entry != counts.end() && entry->second > 0,
                  "session count underflow for host " + host);
    if (--entry->second == 0) counts.erase(entry);
  };
  release(outgoing_, running.from);
  release(incoming_, running.request.to);
  if (running.in_gang) {
    const auto gang = gangs_.find(running.gang_key);
    VEC_CHECK_MSG(gang != gangs_.end() && gang->second.sessions > 0,
                  "gang refcount underflow");
    // An aborted session may leave entries for content whose carrier
    // message was cut in flight. That is harmless here — dup-ref records
    // still carry the content seed, the cache only shapes wire bytes —
    // so the cache survives for the gang's remaining sessions.
    if (--gang->second.sessions == 0) gangs_.erase(gang);
  }

  Request request = std::move(running.request);
  // Both completion and failure run inside the session's own actor
  // callbacks; the session object must outlive the call, so park it
  // instead of destroying it.
  retired_.push_back(std::move(running.session));
  running_.erase(it);
  return request;
}

void MigrationScheduler::OnSessionFinished(SessionId id, SimTime when) {
  Completion completion;
  CompletionCallback on_complete;
  {
    common::NullLockGuard lock(mu_);
    const auto it = running_.find(id);
    VEC_CHECK_MSG(it != running_.end(), "completion for unknown session");
    auto outcome = it->second.session->TakeOutcome();
    const HostId from = it->second.from;
    Request request = ReleaseSlot(id);
    VmInstance& vm = *request.vm;

    // Same bookkeeping, same order, as the synchronous orchestrator path.
    // (The checkpoint write-back already happened inside the session.)
    vm.RememberDeparture(from, vm.Memory().Generations());
    vm.RememberPagesAt(from, std::move(outcome.incoming_digests));
    vm.AdoptMemory(std::move(outcome.dest_memory));
    vm.SetCurrentHost(request.to);

    completion.id = request.id;
    completion.vm = &vm;
    completion.from = from;
    completion.to = request.to;
    completion.stats = outcome.stats;
    completion.completed_at = outcome.completed_at;

    completions_.push_back(completion);
    on_complete = std::move(request.on_complete);
  }
  (void)when;

  // The caller's callback runs outside the scheduler capability: it may
  // legitimately Submit() the VM's next leg, and that re-entry must not
  // self-deadlock once the capability is a real lock.
  if (on_complete) on_complete(completion);

  // Capacity just freed up — admit the next queued request(s) now, at
  // the completion's sim time, exactly when a real control plane would.
  common::NullLockGuard lock(mu_);
  AdmitEligible();
}

void MigrationScheduler::WakeAdmit() {
  common::NullLockGuard lock(mu_);
  AdmitEligible();
}

void MigrationScheduler::OnSessionFailed(SessionId id, SimTime when) {
  common::NullLockGuard lock(mu_);
  const HostId from = running_.count(id) != 0 ? running_.at(id).from
                                              : HostId{};
  Request request = ReleaseSlot(id);
  ++request.attempts;

  if (config_.max_attempts != 0 &&
      request.attempts >= config_.max_attempts) {
    if (config_.throw_on_abort) {
      throw MigrationAborted(
          "migration of " + request.vm->Id() + " (session " +
          std::to_string(request.id) + ") aborted after " +
          std::to_string(request.attempts) + " attempts");
    }
    aborts_.push_back(Abort{request.id, request.vm, from, request.to,
                            request.attempts, when});
    AdmitEligible();  // its host slots just freed up
    return;
  }

  // Exponential backoff: retry_backoff * 2^(failures-1), shift-capped so
  // a forever-retrying config cannot overflow the duration.
  ++retries_;
  const auto shift =
      std::min<std::uint64_t>(request.attempts - 1, 16);
  request.not_before =
      when + config_.retry_backoff * static_cast<SimDuration::rep>(
                                         std::uint64_t{1} << shift);
  const SimTime wake = request.not_before;
  // Front of the queue: this is, by construction, the VM's oldest
  // request, and per-VM FIFO must survive the round trip through
  // failure. Priority ties break by queue position, so the front slot
  // also restores its original standing among equals.
  queued_.insert(queued_.begin(), std::move(request));
  // Without a wake event the loop could go idle before the backoff
  // expires; AdmitEligible at the deadline restarts the session.
  cluster_.Simulator().ScheduleAt(wake, [this] { WakeAdmit(); });
  AdmitEligible();
}

std::size_t MigrationScheduler::Drain() {
  std::size_t before = 0;
  {
    common::NullLockGuard lock(mu_);
    before = completions_.size();
    AdmitEligible();
  }
  while (true) {
    {
      common::NullLockGuard lock(mu_);
      if (running_.empty() && queued_.empty()) break;
      if (running_.empty()) {
        // Nothing running and requests still queued: only legitimate when
        // some request is waiting out a retry backoff (its wake event is
        // in the simulator, so Run() below makes progress).
        const SimTime now = cluster_.Simulator().Now();
        const bool backing_off = std::any_of(
            queued_.begin(), queued_.end(),
            [&](const Request& r) { return r.not_before > now; });
        VEC_CHECK_MSG(backing_off,
                      "scheduler stuck: queued migrations can never be "
                      "admitted (check caps and VM placement)");
      }
    }
    // The event loop runs outside the scheduler capability: session
    // completion callbacks re-enter the scheduler (OnSessionFinished),
    // and under a real lock that re-entry must find it free.
    cluster_.Simulator().Run();
    common::NullLockGuard lock(mu_);
    retired_.clear();
    // The event loop only drains when every running session finished;
    // completions may have queued fresh submissions via callbacks.
    AdmitEligible();
  }
  common::NullLockGuard lock(mu_);
  retired_.clear();
  return completions_.size() - before;
}

}  // namespace vecycle::core
