#include "core/scheduler.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace vecycle::core {

void SchedulerConfig::Validate() const {
  // max_outgoing_per_host / max_incoming_per_host: every value is legal —
  // zero means unlimited admission per the header contract.
  // max_attempts: every value is legal — zero means retry forever, any
  // other count is a plain retry budget.
  // workers: every value is legal — zero reads VECYCLE_THREADS, and the
  // sharded run loop clamps to the shard count.
  VEC_CHECK_MSG(retry_backoff >= SimDuration::zero(),
                "retry_backoff must be non-negative (retry wake-ups "
                "cannot land in the simulated past)");
}

SimTime RetryNotBefore(SimTime when, SimDuration backoff,
                       std::uint64_t failures) {
  VEC_CHECK_MSG(backoff >= SimDuration::zero() && failures > 0,
                "RetryNotBefore needs a non-negative backoff and at "
                "least one failure");
  if (backoff <= SimDuration::zero()) return when;
  const std::uint64_t shift = failures - 1;
  const auto rep = static_cast<std::uint64_t>(backoff.count());
  const auto limit =
      static_cast<std::uint64_t>(SimDuration::max().count());
  // rep * 2^shift > limit  ⟺  rep > limit >> shift; past 63 doublings
  // the product exceeds any 64-bit rep regardless of the backoff.
  if (shift >= 64 || rep > (limit >> shift)) return SimTime::max();
  const SimDuration delay{static_cast<SimDuration::rep>(rep << shift)};
  if (delay > SimTime::max() - when) return SimTime::max();
  return when + delay;
}

MigrationScheduler::MigrationScheduler(Cluster& cluster,
                                       SchedulerConfig config)
    : cluster_(cluster), config_(config) {
  config_.Validate();
}

MigrationScheduler::MigrationScheduler(Cluster& cluster,
                                       sim::ShardedSimulator& pdes,
                                       sim::ShardPlan plan,
                                       SchedulerConfig config)
    : cluster_(cluster),
      config_(config),
      pdes_(&pdes),
      plan_(std::move(plan)) {
  config_.Validate();
  plan_.Validate();
  VEC_CHECK_MSG(plan_.ShardCount() == pdes.ShardCount(),
                "shard plan and sharded simulator disagree on the shard "
                "count");
  for (const Host* host : cluster_.Hosts()) {
    VEC_CHECK_MSG(plan_.Covers(host->Id()),
                  "shard plan does not cover host: " + host->Id());
  }
  // Observers that one object would feed from several workers at once
  // are rejected; per-shard auditors (below) replace the shared one, and
  // shard-level trace/fault wiring happens outside the scheduler.
  VEC_CHECK_MSG(config_.auditor == nullptr,
                "PDES mode owns per-shard auditors; config.auditor must "
                "be null");
  VEC_CHECK_MSG(config_.tracer == nullptr,
                "a shared tracer would race across workers; config.tracer "
                "must be null in PDES mode");
  VEC_CHECK_MSG(config_.injector == nullptr,
                "a shared fault injector would race across workers; "
                "attach per-shard injectors to intra-shard links instead");
  workers_ = config_.workers == 0 ? sim::ThreadsFromEnv() : config_.workers;
  const std::uint32_t shard_count = pdes.ShardCount();
  shard_auditors_.reserve(shard_count);
  outboxes_.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    shard_auditors_.push_back(std::make_unique<audit::SimAuditor>());
    outboxes_.push_back(std::make_unique<sched_internal::ControlOutbox>());
    VEC_CHECK_MSG(pdes.Shard(s).Auditor() == nullptr,
                  "shard simulator already has an auditor attached");
    pdes.Shard(s).SetAuditor(shard_auditors_.back().get());
  }
}

MigrationScheduler::~MigrationScheduler() {
  if (pdes_ != nullptr) {
    for (std::uint32_t s = 0; s < pdes_->ShardCount(); ++s) {
      pdes_->Shard(s).SetAuditor(nullptr);
    }
  }
}

std::uint64_t MigrationScheduler::CombinedFingerprint() const {
  VEC_CHECK_MSG(pdes_ != nullptr,
                "CombinedFingerprint is a PDES-mode API");
  // Fold in fixed shard order: the result is well-defined whatever the
  // worker count, because each shard's fingerprint is.
  std::uint64_t combined = 0x76656379636c65ull;  // "vecycle"
  for (const auto& auditor : shard_auditors_) {
    combined = SplitMix64(combined ^ auditor->Fingerprint()).Next();
  }
  return combined;
}

const audit::SimAuditor& MigrationScheduler::ShardAuditor(
    sim::ShardId shard) const {
  VEC_CHECK_MSG(pdes_ != nullptr, "ShardAuditor is a PDES-mode API");
  VEC_CHECK_MSG(shard < shard_auditors_.size(), "shard id out of range");
  return *shard_auditors_[shard];
}

SessionId MigrationScheduler::Submit(VmInstance& vm, const HostId& to,
                                     const migration::MigrationConfig& config,
                                     int priority,
                                     CompletionCallback on_complete) {
  VEC_CHECK_MSG(!vm.CurrentHost().empty(), "VM is not deployed");
  (void)cluster_.GetHost(to);  // existence check, before queueing
  config.Validate();

  common::NullLockGuard lock(mu_);
  Request request;
  request.id = next_id_++;
  request.vm = &vm;
  request.to = to;
  request.config = config;
  request.priority = priority;
  request.on_complete = std::move(on_complete);
  const SessionId id = request.id;
  queued_.push_back(std::move(request));
  return id;
}

const MigrationScheduler::Completion* MigrationScheduler::FindCompletion(
    SessionId id) const {
  common::NullLockGuard lock(mu_);
  for (const auto& completion : completions_) {
    if (completion.id == id) return &completion;
  }
  return nullptr;
}

void MigrationScheduler::AdmitEligible() {
  // Admit in priority order (ties: lowest queue position). A request is
  // admissible when its VM is idle, it is the VM's oldest queued request
  // (per-VM FIFO — later legs of one journey cannot overtake earlier
  // ones, whatever their priority), and both endpoint hosts have
  // capacity under the configured caps.
  //
  // One collection pass suffices: admission only consumes host slots and
  // marks VMs busy, so nothing inadmissible now becomes admissible
  // during the round. (A VM's next queued request surfaces when its
  // first is admitted, but that VM is busy by then.) Greedy over the
  // sorted candidates therefore reaches the same fixpoint the old
  // rescan-after-every-admission loop did, without its
  // admissions × queue-length × string-map-lookup blowup, which
  // dominated wall time at datacenter scale.
  const SimTime now = CurrentTime();
  std::unordered_set<const VmInstance*> seen;
  seen.reserve(queued_.size());
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < queued_.size(); ++i) {
    const Request& request = queued_[i];
    const bool first_for_vm = seen.insert(request.vm).second;
    if (!first_for_vm) continue;
    // A request waiting out its retry backoff still claims its VM's
    // FIFO slot (later legs must not overtake it); it just cannot be
    // admitted until the backoff expires.
    if (request.not_before > now) continue;
    if (busy_vms_.count(request.vm) != 0) continue;
    candidates.push_back(i);
  }
  // stable_sort keeps equal priorities in ascending queue position.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [this](std::size_t a, std::size_t b) {
                     return queued_[a].priority > queued_[b].priority;
                   });

  std::vector<bool> admitted(queued_.size(), false);
  bool any = false;
  for (const std::size_t i : candidates) {
    const Request& request = queued_[i];
    const HostId& from = request.vm->CurrentHost();
    if (config_.max_outgoing_per_host != 0) {
      const auto it = outgoing_.find(from);
      if (it != outgoing_.end() &&
          it->second >= config_.max_outgoing_per_host) {
        continue;
      }
    }
    if (config_.max_incoming_per_host != 0) {
      const auto it = incoming_.find(request.to);
      if (it != incoming_.end() &&
          it->second >= config_.max_incoming_per_host) {
        continue;
      }
    }
    admitted[i] = true;
    any = true;
    Request taken = std::move(queued_[i]);
    StartSession(std::move(taken));
  }
  if (!any) return;

  std::size_t write = 0;
  for (std::size_t i = 0; i < queued_.size(); ++i) {
    if (admitted[i]) continue;
    if (write != i) queued_[write] = std::move(queued_[i]);
    ++write;
  }
  queued_.resize(write);
}

SimTime MigrationScheduler::CurrentTime() const {
  return pdes_ != nullptr ? control_now_ : cluster_.Simulator().Now();
}

void MigrationScheduler::StartSession(Request request) {
  const HostId from = request.vm->CurrentHost();
  VEC_CHECK_MSG(!from.empty(), "VM is not deployed");
  VEC_CHECK_MSG(from != request.to,
                "VM " + request.vm->Id() + " is already on " + request.to);

  Host& source_host = cluster_.GetHost(from);
  Host& dest_host = cluster_.GetHost(request.to);
  const auto path = cluster_.PathBetween(from, request.to);

  // Identical wiring to MigrationOrchestrator::Migrate, plus the session
  // identity and the in-loop checkpoint write-back (the synchronous path
  // books the write-back after its private event loop drains; here the
  // disk stays contended by the sessions still running).
  // Retries run under a fresh session id: channel ids (and so the
  // auditor's per-channel byte accounts) derive from the session id, and
  // the aborted attempt's wire bytes must not leak into the retry's
  // conservation checks. The caller-facing id stays `request.id`.
  const SessionId sid = request.attempts == 0 ? request.id : next_id_++;

  migration::MigrationRun run;
  run.simulator = &cluster_.Simulator();
  run.link = path.link;
  run.direction = path.direction;
  run.session_id = sid;
  run.write_back_checkpoint = true;
  run.source_memory = &request.vm->Memory();
  run.workload = request.vm->Workload();
  run.source = {&source_host.Cpu(), &source_host.Store()};
  run.destination = {&dest_host.Cpu(), &dest_host.Store()};
  run.vm_id = request.vm->Id();
  run.config = request.config;
  run.source_knowledge_set = request.vm->KnownPageSetAt(request.to);
  // Dirty-tracking generations and the delta baseline resolve through the
  // destination's checkpoint store (empty when the checkpoint was evicted
  // or never written). In PDES mode the destination store belongs to the
  // destination shard, but admission happens at a barrier — no worker is
  // running — so the read is race-free.
  run.departure_generations =
      dest_host.Store().DepartureGenerations(request.vm->Id());
  run.departure_seeds = dest_host.Store().BaselineSeeds(request.vm->Id());
  run.auditor = config_.auditor;
  run.tracer = config_.tracer;
  run.metrics = config_.metrics;
  run.injector = config_.injector;
  run.attempt = request.attempts;

  Running running;
  running.from = from;
  if (config_.gang_dedup) {
    // The gang cache is sender-side state: every session of one gang has
    // the same source host, hence the same shard, so in PDES mode the
    // cache is only ever touched by that shard's worker.
    running.in_gang = true;
    running.gang_key = {from, request.to};
    Gang& gang = gangs_[running.gang_key];
    ++gang.sessions;
    run.shared_dedup_cache = &gang.cache;
  }

  if (pdes_ != nullptr) {
    const sim::ShardId src_shard = plan_.ShardOf(from);
    const sim::ShardId dst_shard = plan_.ShardOf(request.to);
    run.simulator = &pdes_->Shard(src_shard);
    run.auditor = shard_auditors_[src_shard].get();
    if (dst_shard != src_shard) {
      run.dest_simulator = &pdes_->Shard(dst_shard);
      run.forward_delivery = &pdes_->Route(src_shard, dst_shard);
      run.backward_delivery = &pdes_->Route(dst_shard, src_shard);
      run.dest_auditor = shard_auditors_[dst_shard].get();
    }
    // Admission happens at a barrier; the barrier time is ahead of every
    // shard clock and is the instant both endpoints agree the session
    // begins.
    run.start_at = control_now_;
    // Lifecycle callbacks fire on the source shard's worker mid-window;
    // they only enqueue — the control plane processes at the barrier, in
    // (when, id) order, regardless of which outbox carried what.
    sched_internal::ControlOutbox* outbox = outboxes_[src_shard].get();
    run.on_complete = [outbox, sid](SimTime when) {
      common::LockGuard lock(outbox->mu);
      outbox->events.push_back(
          sched_internal::ControlEvent{when, sid, false});
    };
    run.on_failed = [outbox, sid](SimTime when) {
      common::LockGuard lock(outbox->mu);
      outbox->events.push_back(
          sched_internal::ControlEvent{when, sid, true});
    };
  } else {
    run.on_complete = [this, sid](SimTime when) {
      OnSessionFinished(sid, when);
    };
    run.on_failed = [this, sid](SimTime when) {
      OnSessionFailed(sid, when);
    };
  }

  ++outgoing_[from];
  ++incoming_[request.to];
  busy_vms_.insert(request.vm);
  running.request = std::move(request);
  running.session =
      std::make_unique<migration::MigrationSession>(std::move(run));
  running_.emplace(sid, std::move(running));
}

MigrationScheduler::Request MigrationScheduler::ReleaseSlot(SessionId id) {
  const auto it = running_.find(id);
  VEC_CHECK_MSG(it != running_.end(), "outcome for unknown session");
  Running& running = it->second;

  const auto release = [](std::map<HostId, std::size_t>& counts,
                          const HostId& host) {
    const auto entry = counts.find(host);
    VEC_CHECK_MSG(entry != counts.end() && entry->second > 0,
                  "session count underflow for host " + host);
    if (--entry->second == 0) counts.erase(entry);
  };
  release(outgoing_, running.from);
  release(incoming_, running.request.to);
  if (running.in_gang) {
    const auto gang = gangs_.find(running.gang_key);
    VEC_CHECK_MSG(gang != gangs_.end() && gang->second.sessions > 0,
                  "gang refcount underflow");
    // An aborted session may leave entries for content whose carrier
    // message was cut in flight. That is harmless here — dup-ref records
    // still carry the content seed, the cache only shapes wire bytes —
    // so the cache survives for the gang's remaining sessions.
    if (--gang->second.sessions == 0) gangs_.erase(gang);
  }

  Request request = std::move(running.request);
  busy_vms_.erase(request.vm);
  // Both completion and failure run inside the session's own actor
  // callbacks; the session object must outlive the call, so park it
  // instead of destroying it.
  retired_.push_back(std::move(running.session));
  running_.erase(it);
  return request;
}

void MigrationScheduler::OnSessionFinished(SessionId id, SimTime when) {
  Completion completion;
  CompletionCallback on_complete;
  {
    common::NullLockGuard lock(mu_);
    const auto it = running_.find(id);
    VEC_CHECK_MSG(it != running_.end(), "completion for unknown session");
    auto outcome = it->second.session->TakeOutcome();
    const HostId from = it->second.from;
    Request request = ReleaseSlot(id);
    VmInstance& vm = *request.vm;

    // Same bookkeeping, same order, as the synchronous orchestrator path.
    // (The checkpoint write-back already happened inside the session; the
    // source store now holds the seeds and generations a return
    // migration will resolve.)
    vm.RememberPagesAt(from, std::move(outcome.incoming_digests));
    vm.AdoptMemory(std::move(outcome.dest_memory));
    vm.SetCurrentHost(request.to);

    completion.id = request.id;
    completion.vm = &vm;
    completion.from = from;
    completion.to = request.to;
    completion.stats = outcome.stats;
    completion.completed_at = outcome.completed_at;

    completions_.push_back(completion);
    on_complete = std::move(request.on_complete);
  }
  (void)when;

  // The caller's callback runs outside the scheduler capability: it may
  // legitimately Submit() the VM's next leg, and that re-entry must not
  // self-deadlock once the capability is a real lock.
  if (on_complete) on_complete(completion);

  // Capacity just freed up — admit the next queued request(s) now, at
  // the completion's sim time, exactly when a real control plane would.
  // In PDES mode every completion of a barrier admits at the same
  // control_now_, so ControlStep runs one admission round for the whole
  // batch instead of one quadratic scan per completion.
  common::NullLockGuard lock(mu_);
  if (pdes_ == nullptr) AdmitEligible();
}

void MigrationScheduler::WakeAdmit() {
  common::NullLockGuard lock(mu_);
  AdmitEligible();
}

void MigrationScheduler::OnSessionFailed(SessionId id, SimTime when) {
  common::NullLockGuard lock(mu_);
  const HostId from = running_.count(id) != 0 ? running_.at(id).from
                                              : HostId{};
  Request request = ReleaseSlot(id);
  ++request.attempts;

  if (config_.max_attempts != 0 &&
      request.attempts >= config_.max_attempts) {
    if (config_.throw_on_abort) {
      throw MigrationAborted(
          "migration of " + request.vm->Id() + " (session " +
          std::to_string(request.id) + ") aborted after " +
          std::to_string(request.attempts) + " attempts");
    }
    aborts_.push_back(Abort{request.id, request.vm, from, request.to,
                            request.attempts, when});
    // Its host slots just freed up (batched at the barrier in PDES mode).
    if (pdes_ == nullptr) AdmitEligible();
    return;
  }

  // Exponential backoff: retry_backoff * 2^(failures-1), saturating —
  // a large configured backoff (or a long failure streak) clamps to the
  // end of simulated time instead of overflowing into the past.
  ++retries_;
  request.not_before =
      RetryNotBefore(when, config_.retry_backoff, request.attempts);
  const SimTime wake = request.not_before;
  // Front of the queue: this is, by construction, the VM's oldest
  // request, and per-VM FIFO must survive the round trip through
  // failure. Priority ties break by queue position, so the front slot
  // also restores its original standing among equals.
  queued_.insert(queued_.begin(), std::move(request));
  // Without a wake event the loop could go idle before the backoff
  // expires; AdmitEligible at the deadline restarts the session. In PDES
  // mode ControlStep's return value carries the deadline instead — the
  // barrier loop wakes the control plane there.
  if (pdes_ == nullptr) {
    cluster_.Simulator().ScheduleAt(wake, [this] { WakeAdmit(); });
    AdmitEligible();
  }
}

std::size_t MigrationScheduler::Drain() {
  if (pdes_ != nullptr) return DrainSharded();
  std::size_t before = 0;
  {
    common::NullLockGuard lock(mu_);
    before = completions_.size();
    AdmitEligible();
  }
  while (true) {
    {
      common::NullLockGuard lock(mu_);
      if (running_.empty() && queued_.empty()) break;
      if (running_.empty()) {
        // Nothing running and requests still queued: only legitimate when
        // some request is waiting out a retry backoff (its wake event is
        // in the simulator, so Run() below makes progress).
        const SimTime now = cluster_.Simulator().Now();
        const bool backing_off = std::any_of(
            queued_.begin(), queued_.end(),
            [&](const Request& r) { return r.not_before > now; });
        VEC_CHECK_MSG(backing_off,
                      "scheduler stuck: queued migrations can never be "
                      "admitted (check caps and VM placement)");
      }
    }
    // The event loop runs outside the scheduler capability: session
    // completion callbacks re-enter the scheduler (OnSessionFinished),
    // and under a real lock that re-entry must find it free.
    cluster_.Simulator().Run();
    common::NullLockGuard lock(mu_);
    retired_.clear();
    // The event loop only drains when every running session finished;
    // completions may have queued fresh submissions via callbacks.
    AdmitEligible();
  }
  common::NullLockGuard lock(mu_);
  retired_.clear();
  return completions_.size() - before;
}

std::size_t MigrationScheduler::DrainSharded() {
  std::size_t before = 0;
  const SimDuration lookahead = ShardLookahead();
  {
    common::NullLockGuard lock(mu_);
    before = completions_.size();
    // Shard clocks may have advanced since the last drain (AdvanceAllTo
    // between waves); admissions must not start sessions in their past.
    control_now_ = std::max(control_now_, pdes_->MaxNow());
  }
  while (true) {
    {
      common::NullLockGuard lock(mu_);
      AdmitEligible();
      if (running_.empty() && queued_.empty()) break;
      if (running_.empty()) {
        const SimTime now = control_now_;
        const bool backing_off = std::any_of(
            queued_.begin(), queued_.end(),
            [&](const Request& r) { return r.not_before > now; });
        VEC_CHECK_MSG(backing_off,
                      "scheduler stuck: queued migrations can never be "
                      "admitted (check caps and VM placement)");
        // A backoff saturated to the end of simulated time never
        // expires; spinning the window loop on it would hang.
        const bool reachable = std::any_of(
            queued_.begin(), queued_.end(), [](const Request& r) {
              return r.not_before < SimTime::max();
            });
        VEC_CHECK_MSG(reachable,
                      "scheduler stuck: every queued migration's retry "
                      "backoff saturated to the end of simulated time");
      }
    }
    // The window loop runs outside the scheduler capability: ControlStep
    // re-enters the scheduler at every barrier, and under a real lock
    // that re-entry must find it free.
    pdes_->Run(workers_, lookahead,
               [this](SimTime now) { return ControlStep(now); });
    common::NullLockGuard lock(mu_);
    retired_.clear();
    // Run() only returns when no shard has events and no retry deadline
    // pends; a session still running at that point is wedged for good.
    VEC_CHECK_MSG(running_.empty(),
                  "scheduler stuck: sessions still running after every "
                  "shard's event queue drained");
  }
  common::NullLockGuard lock(mu_);
  retired_.clear();
  return completions_.size() - before;
}

SimTime MigrationScheduler::ControlStep(SimTime now) {
  // Collect the window's lifecycle notifications from every shard and
  // process them in (when, id) order — session ids are unique, so the
  // order is total and independent of worker interleaving.
  std::vector<sched_internal::ControlEvent> events;
  for (const auto& outbox : outboxes_) {
    common::LockGuard lock(outbox->mu);
    events.insert(events.end(), outbox->events.begin(),
                  outbox->events.end());
    outbox->events.clear();
  }
  std::sort(events.begin(), events.end(),
            [](const sched_internal::ControlEvent& a,
               const sched_internal::ControlEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              return a.id < b.id;
            });
  {
    common::NullLockGuard lock(mu_);
    control_now_ = now;
  }
  for (const auto& event : events) {
    if (event.failed) {
      OnSessionFailed(event.id, event.when);
    } else {
      OnSessionFinished(event.id, event.when);
    }
  }
  common::NullLockGuard lock(mu_);
  // Finished sessions are destroyed at the barrier: no worker is running,
  // and all their in-flight events are already executed or token-guarded.
  retired_.clear();
  AdmitEligible();
  SimTime wake = sim::kNoPendingEvent;
  for (const auto& request : queued_) {
    if (request.not_before > now && request.not_before < wake) {
      wake = request.not_before;
    }
  }
  return wake;
}

SimDuration MigrationScheduler::ShardLookahead() const {
  SimDuration lookahead = SimDuration::max();
  for (const auto& entry : cluster_.Links()) {
    if (plan_.ShardOf(entry.a) == plan_.ShardOf(entry.b)) continue;
    lookahead = std::min(lookahead, entry.link->Config().latency);
  }
  if (lookahead == SimDuration::max()) {
    // No link crosses shards: the shards can never interact, so any
    // positive window works; a fat one keeps barrier counts low.
    return Seconds(1.0);
  }
  VEC_CHECK_MSG(lookahead > SimDuration::zero(),
                "PDES needs positive latency on every cross-shard link");
  return lookahead;
}

}  // namespace vecycle::core
