// A physical host: local disk (checkpoint storage), checksum engine, and a
// per-VM checkpoint store. Mirrors the paper's benchmark machines (§4.1) —
// two VM hosts with local HDD/SSD for checkpoints and a single-core MD5
// rate of ~350 MiB/s.
#pragma once

#include <string>

#include "common/check.hpp"
#include "sim/checksum_engine.hpp"
#include "sim/disk.hpp"
#include "storage/checkpoint_store.hpp"

namespace vecycle::core {

using HostId = std::string;

struct HostConfig {
  HostId id;
  sim::DiskConfig disk = sim::DiskConfig::Hdd();
  sim::ChecksumEngineConfig cpu;
  /// Checkpoint retention bounds; unlimited by default (§1: "local
  /// storage is cheap and abundant").
  storage::RetentionPolicy retention;
  /// Checkpoint store backend: flat per-VM images by default, or the
  /// content-addressed chunk store (dedup + incremental saves + SSD
  /// tier) when `store.chunking` is set.
  storage::StoreConfig store;

  /// Fails fast on configs that cannot name a host or retain a single
  /// checkpoint. The disk, CPU rate and store configs also self-validate
  /// here, so a bad fleet config surfaces before any device is built.
  void Validate() const {
    VEC_CHECK_MSG(!id.empty(), "host id must be non-empty");
    disk.Validate();
    cpu.Validate();
    retention.Validate();
    store.Validate();
  }
};

class Host {
 public:
  explicit Host(HostConfig config)
      : config_((config.Validate(), std::move(config))),
        disk_(config_.disk),
        cpu_(config_.cpu),
        store_(disk_, config_.retention, config_.store) {}

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const HostId& Id() const { return config_.id; }
  [[nodiscard]] sim::Disk& Disk() { return disk_; }
  [[nodiscard]] sim::ChecksumEngine& Cpu() { return cpu_; }
  [[nodiscard]] storage::CheckpointStore& Store() { return store_; }
  [[nodiscard]] const storage::CheckpointStore& Store() const {
    return store_;
  }

 private:
  HostConfig config_;
  sim::Disk disk_;
  sim::ChecksumEngine cpu_;
  storage::CheckpointStore store_;
};

}  // namespace vecycle::core
