#include "core/orchestrator.hpp"

#include "common/check.hpp"

namespace vecycle::core {

void MigrationOrchestrator::Deploy(VmInstance& vm, const HostId& host) {
  VEC_CHECK_MSG(vm.CurrentHost().empty(), "VM is already deployed");
  (void)cluster_.GetHost(host);  // existence check
  vm.SetCurrentHost(host);
}

void MigrationOrchestrator::RunFor(VmInstance& vm, SimDuration duration) {
  VEC_CHECK_MSG(!vm.CurrentHost().empty(), "VM is not deployed");
  if (pdes_ != nullptr) {
    pdes_->AdvanceAllTo(pdes_->MaxNow() + duration);
  } else {
    auto& simulator = cluster_.Simulator();
    simulator.RunUntil(simulator.Now() + duration);
  }
  if (vm.Workload() != nullptr) {
    vm.Workload()->Advance(vm.Memory(), duration);
  }
}

void MigrationOrchestrator::RunFor(const std::vector<VmInstance*>& vms,
                                   SimDuration duration) {
  if (pdes_ != nullptr) {
    // Quiescent advance: every shard reaches the same deadline, so the
    // fleet shares one clock again before the workloads churn.
    pdes_->AdvanceAllTo(pdes_->MaxNow() + duration);
  } else {
    auto& simulator = cluster_.Simulator();
    simulator.RunUntil(simulator.Now() + duration);
  }
  for (VmInstance* vm : vms) {
    VEC_CHECK(vm != nullptr);
    VEC_CHECK_MSG(!vm->CurrentHost().empty(), "VM is not deployed");
    if (vm->Workload() != nullptr) {
      vm->Workload()->Advance(vm->Memory(), duration);
    }
  }
}

SessionId MigrationOrchestrator::MigrateAsync(
    VmInstance& vm, const HostId& to,
    const migration::MigrationConfig& config, int priority,
    MigrationScheduler::CompletionCallback on_complete) {
  return scheduler_.Submit(vm, to, config, priority,
                           std::move(on_complete));
}

migration::MigrationStats MigrationOrchestrator::Migrate(
    VmInstance& vm, const HostId& to,
    const migration::MigrationConfig& config) {
  VEC_CHECK_MSG(pdes_ == nullptr,
                "synchronous Migrate is a single-simulator API; queue "
                "with MigrateAsync and Drain in PDES mode");
  const HostId from = vm.CurrentHost();
  VEC_CHECK_MSG(!from.empty(), "VM is not deployed");
  VEC_CHECK_MSG(from != to, "VM is already on " + to);

  Host& source_host = cluster_.GetHost(from);
  Host& dest_host = cluster_.GetHost(to);
  const auto path = cluster_.PathBetween(from, to);

  migration::MigrationRun run;
  run.simulator = &cluster_.Simulator();
  run.link = path.link;
  run.direction = path.direction;
  run.source_memory = &vm.Memory();
  run.workload = vm.Workload();
  run.source = {&source_host.Cpu(), &source_host.Store()};
  run.destination = {&dest_host.Cpu(), &dest_host.Store()};
  run.vm_id = vm.Id();
  run.config = config;
  run.source_knowledge_set = vm.KnownPageSetAt(to);
  // Dirty-tracking generations and the delta baseline resolve through the
  // destination's checkpoint store — the system of record for what the VM
  // left there (empty when the checkpoint was evicted or never written).
  run.departure_generations = dest_host.Store().DepartureGenerations(vm.Id());
  run.departure_seeds = dest_host.Store().BaselineSeeds(vm.Id());
  // Checkpoint write-back happens inside the session (booked at the
  // destination completion time, not counted in migration time — §4.4)
  // so a session-private fault injector can still rot the saved image.
  run.write_back_checkpoint = true;

  auto outcome = migration::RunMigration(std::move(run));

  // The VM remembers the digest set it left behind at the source; the
  // source's checkpoint store holds the seeds and generations.
  vm.RememberPagesAt(from, std::move(outcome.incoming_digests));

  // And moves.
  vm.AdoptMemory(std::move(outcome.dest_memory));
  vm.SetCurrentHost(to);

  return outcome.stats;
}

}  // namespace vecycle::core
