#include "core/orchestrator.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/check.hpp"

namespace vecycle::core {
namespace {

/// Sorted, deduped candidate list without the VM's current host. Empty
/// input resolves to every host directly linked to the current host, in
/// lexicographic order (Cluster::Hosts is AddHost order; sorting makes
/// the result independent of it).
std::vector<HostId> ResolveCandidates(const Cluster& cluster,
                                      const VmInstance& vm,
                                      std::vector<HostId> candidates) {
  VEC_CHECK_MSG(!vm.CurrentHost().empty(), "VM is not deployed");
  if (candidates.empty()) {
    for (const Host* host : cluster.Hosts()) {
      if (host->Id() != vm.CurrentHost() &&
          cluster.LinkBetween(vm.CurrentHost(), host->Id()) != nullptr) {
        candidates.push_back(host->Id());
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::erase(candidates, vm.CurrentHost());
  VEC_CHECK_MSG(!candidates.empty(),
                "no candidate destination for VM " + vm.Id());
  return candidates;
}

}  // namespace

void MigrationOrchestrator::Deploy(VmInstance& vm, const HostId& host) {
  VEC_CHECK_MSG(vm.CurrentHost().empty(), "VM is already deployed");
  (void)cluster_.GetHost(host);  // existence check
  vm.SetCurrentHost(host);
}

void MigrationOrchestrator::RunFor(VmInstance& vm, SimDuration duration) {
  VEC_CHECK_MSG(!vm.CurrentHost().empty(), "VM is not deployed");
  if (pdes_ != nullptr) {
    pdes_->AdvanceAllTo(pdes_->MaxNow() + duration);
  } else {
    auto& simulator = cluster_.Simulator();
    simulator.RunUntil(simulator.Now() + duration);
  }
  if (vm.Workload() != nullptr) {
    vm.Workload()->Advance(vm.Memory(), duration);
  }
}

void MigrationOrchestrator::RunFor(const std::vector<VmInstance*>& vms,
                                   SimDuration duration) {
  if (pdes_ != nullptr) {
    // Quiescent advance: every shard reaches the same deadline, so the
    // fleet shares one clock again before the workloads churn.
    pdes_->AdvanceAllTo(pdes_->MaxNow() + duration);
  } else {
    auto& simulator = cluster_.Simulator();
    simulator.RunUntil(simulator.Now() + duration);
  }
  for (VmInstance* vm : vms) {
    VEC_CHECK(vm != nullptr);
    VEC_CHECK_MSG(!vm->CurrentHost().empty(), "VM is not deployed");
    if (vm->Workload() != nullptr) {
      vm->Workload()->Advance(vm->Memory(), duration);
    }
  }
}

SessionId MigrationOrchestrator::MigrateAsync(
    VmInstance& vm, const HostId& to,
    const migration::MigrationConfig& config, int priority,
    MigrationScheduler::CompletionCallback on_complete) {
  return scheduler_.Submit(vm, to, config, priority,
                           std::move(on_complete));
}

policy::Decision MigrationOrchestrator::MigrateAuto(
    VmInstance& vm, policy::PlacementPolicy& policy,
    const migration::MigrationConfig& config,
    std::vector<HostId> candidates,
    const std::vector<VmInstance*>* fleet, int priority,
    MigrationScheduler::CompletionCallback on_complete) {
  policy::PlacementQuery query;
  query.cluster = &cluster_;
  query.vm = &vm;
  query.candidates = ResolveCandidates(cluster_, vm, std::move(candidates));
  query.fleet = fleet;
  query.now = pdes_ != nullptr ? pdes_->MaxNow() : cluster_.Simulator().Now();
  policy::Decision decision = policy.Decide(query);
  scheduler_.Submit(vm, decision.to, config, priority,
                    std::move(on_complete));
  return decision;
}

std::vector<policy::Decision> MigrationOrchestrator::RunPolicy(
    const std::vector<VmInstance*>& fleet,
    const std::vector<PolicyLeg>& legs, policy::PlacementPolicy& policy,
    const migration::MigrationConfig& config, SimDuration observe_step) {
  const SimTime wave_start =
      pdes_ != nullptr ? pdes_->MaxNow() : cluster_.Simulator().Now();

  // Decide every leg up front, at the wave's quiescent start.
  std::vector<policy::Decision> decisions;
  decisions.reserve(legs.size());
  std::map<SimDuration, std::vector<std::size_t>> by_defer;
  std::set<const VmInstance*> seen;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const PolicyLeg& leg = legs[i];
    VEC_CHECK_MSG(leg.vm != nullptr, "policy leg has no VM");
    VEC_CHECK_MSG(seen.insert(leg.vm).second,
                  "VM " + leg.vm->Id() + " appears in two legs of one wave");
    policy::PlacementQuery query;
    query.cluster = &cluster_;
    query.vm = leg.vm;
    query.candidates =
        ResolveCandidates(cluster_, *leg.vm, leg.candidates);
    query.fleet = &fleet;
    query.now = wave_start;
    decisions.push_back(policy.Decide(query));
    by_defer[decisions.back().defer].push_back(i);
  }

  // Submit each deferral group at its instant: the fleet runs in place
  // (workloads churning) up to wave_start + defer, then the group's legs
  // are queued and drained. std::map iterates deferrals ascending. The
  // advance is measured from the live clock, not from the previous
  // deferral — draining a group consumes simulated time too.
  for (const auto& [defer, indices] : by_defer) {
    SimTime now =
        pdes_ != nullptr ? pdes_->MaxNow() : cluster_.Simulator().Now();
    const SimTime target = wave_start + defer;
    while (target > now) {
      // Chunked so the policy's dirty-rate sampling keeps its cadence
      // through deferral waits: a single hours-long advance would hand
      // the cycle detectors one smeared interval that blurs the very
      // phase edges the deferral was computed from.
      const SimDuration chunk = observe_step > SimDuration::zero()
                                    ? std::min(observe_step, target - now)
                                    : target - now;
      RunFor(fleet, chunk);
      now = pdes_ != nullptr ? pdes_->MaxNow() : cluster_.Simulator().Now();
      if (observe_step > SimDuration::zero()) {
        for (VmInstance* vm : fleet) policy.Observe(*vm, now);
      }
    }
    for (const std::size_t i : indices) {
      scheduler_.Submit(*legs[i].vm, decisions[i].to, config,
                        legs[i].priority);
    }
    scheduler_.Drain();
  }
  return decisions;
}

migration::MigrationStats MigrationOrchestrator::Migrate(
    VmInstance& vm, const HostId& to,
    const migration::MigrationConfig& config) {
  VEC_CHECK_MSG(pdes_ == nullptr,
                "synchronous Migrate is a single-simulator API; queue "
                "with MigrateAsync and Drain in PDES mode");
  const HostId from = vm.CurrentHost();
  VEC_CHECK_MSG(!from.empty(), "VM is not deployed");
  VEC_CHECK_MSG(from != to, "VM is already on " + to);

  Host& source_host = cluster_.GetHost(from);
  Host& dest_host = cluster_.GetHost(to);
  const auto path = cluster_.PathBetween(from, to);

  migration::MigrationRun run;
  run.simulator = &cluster_.Simulator();
  run.link = path.link;
  run.direction = path.direction;
  run.source_memory = &vm.Memory();
  run.workload = vm.Workload();
  run.source = {&source_host.Cpu(), &source_host.Store()};
  run.destination = {&dest_host.Cpu(), &dest_host.Store()};
  run.vm_id = vm.Id();
  run.config = config;
  run.source_knowledge_set = vm.KnownPageSetAt(to);
  // Dirty-tracking generations and the delta baseline resolve through the
  // destination's checkpoint store — the system of record for what the VM
  // left there (empty when the checkpoint was evicted or never written).
  run.departure_generations = dest_host.Store().DepartureGenerations(vm.Id());
  run.departure_seeds = dest_host.Store().BaselineSeeds(vm.Id());
  // Checkpoint write-back happens inside the session (booked at the
  // destination completion time, not counted in migration time — §4.4)
  // so a session-private fault injector can still rot the saved image.
  run.write_back_checkpoint = true;

  auto outcome = migration::RunMigration(std::move(run));

  // The VM remembers the digest set it left behind at the source; the
  // source's checkpoint store holds the seeds and generations.
  vm.RememberPagesAt(from, std::move(outcome.incoming_digests));

  // And moves.
  vm.AdoptMemory(std::move(outcome.dest_memory));
  vm.SetCurrentHost(to);

  return outcome.stats;
}

}  // namespace vecycle::core
