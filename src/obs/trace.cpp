#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace vecycle::obs {

namespace {

/// JSON string escaping for the small identifier set we intern (labels
/// come from code, not user input, but a stray quote must not corrupt the
/// file).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Chrome-trace timestamps are microseconds; keep nanosecond precision as
/// a fixed three-decimal fraction so output formatting is deterministic.
std::string Micros(SimTime t) {
  const std::int64_t ns = t.count();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

/// Deterministic rendering for counter values (which are exact integers
/// in every series we record, but the API allows doubles).
std::string Number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

NameId TraceRecorder::Name(std::string_view name) {
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t TraceRecorder::NewProcess(std::string_view label) {
  process_labels_.push_back(Name(label));
  return static_cast<std::uint32_t>(process_labels_.size() - 1);
}

TrackId TraceRecorder::Track(std::uint32_t process, std::string_view name) {
  VEC_CHECK_MSG(process < process_labels_.size(),
                "trace track refers to an unknown process");
  tracks_.push_back(TrackInfo{process, Name(name)});
  return static_cast<TrackId>(tracks_.size() - 1);
}

void TraceRecorder::Push(Phase phase, TrackId track, NameId name,
                         SimTime start, SimTime end, double value) {
  VEC_CHECK_MSG(track < tracks_.size(), "trace event on unknown track");
  VEC_CHECK_MSG(start >= kSimEpoch,
                "trace event before the simulation epoch");
  VEC_CHECK_MSG(end >= start, "trace span ends before it starts");
  events_.push_back(Event{phase, track, name, start, end, value,
                          static_cast<std::uint32_t>(args_.size())});
}

SpanId TraceRecorder::BeginSpan(TrackId track, NameId name, SimTime start) {
  Push(Phase::kSpan, track, name, start, start, 0.0);
  const SpanId id = events_.size() - 1;
  open_spans_[track].push_back(id);
  return id;
}

void TraceRecorder::EndSpan(SpanId span, SimTime end) {
  VEC_CHECK_MSG(span < events_.size(), "EndSpan on unknown span");
  Event& event = events_[span];
  VEC_CHECK_MSG(event.phase == Phase::kSpan, "EndSpan on a non-span event");
  auto& stack = open_spans_[event.track];
  VEC_CHECK_MSG(!stack.empty() && stack.back() == span,
                "spans on one track must close innermost-first");
  stack.pop_back();
  VEC_CHECK_MSG(end >= event.start, "trace span ends before it starts");
  event.end = end;
}

void TraceRecorder::Span(TrackId track, NameId name, SimTime start,
                         SimTime end) {
  Push(Phase::kSpan, track, name, start, end, 0.0);
}

void TraceRecorder::Instant(TrackId track, NameId name, SimTime at) {
  Push(Phase::kInstant, track, name, at, at, 0.0);
}

void TraceRecorder::Counter(TrackId track, NameId name, SimTime at,
                            double value) {
  Push(Phase::kCounter, track, name, at, at, value);
}

void TraceRecorder::Arg(NameId key, std::uint64_t value) {
  VEC_CHECK_MSG(!events_.empty(), "Arg with no event to attach to");
  args_.emplace_back(key, value);
  events_.back().args_end = static_cast<std::uint32_t>(args_.size());
}

void TraceRecorder::Clear() {
  events_.clear();
  args_.clear();
  open_spans_.clear();
  // Interned names, processes and tracks survive: callers may hold ids.
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  // Sort by (start, recording order): the stable order viewers want and
  // the byte-identical order ReplayCheck compares.
  std::vector<std::uint64_t> order(events_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::uint64_t a, std::uint64_t b) {
                     return events_[a].start < events_[b].start;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };

  // Metadata: process and track (thread) names.
  for (std::size_t pid = 0; pid < process_labels_.size(); ++pid) {
    comma();
    out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\""
        << JsonEscape(names_[process_labels_[pid]]) << "\"}}";
  }
  for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
    comma();
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
        << tracks_[tid].process << ",\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << JsonEscape(names_[tracks_[tid].name])
        << "\"}}";
  }

  for (const std::uint64_t index : order) {
    const Event& event = events_[index];
    const TrackInfo& track = tracks_[event.track];
    comma();
    out << "{\"name\":\"" << JsonEscape(names_[event.name]) << "\",\"pid\":"
        << track.process << ",\"tid\":" << event.track << ",\"ts\":"
        << Micros(event.start);
    switch (event.phase) {
      case Phase::kSpan:
        out << ",\"ph\":\"X\",\"dur\":" << Micros(event.end - event.start);
        break;
      case Phase::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case Phase::kCounter:
        out << ",\"ph\":\"C\"";
        break;
    }
    const std::uint32_t args_begin =
        index == 0 ? 0 : events_[index - 1].args_end;
    const bool has_args = event.phase == Phase::kCounter ||
                          args_begin != event.args_end;
    if (has_args) {
      out << ",\"args\":{";
      bool first_arg = true;
      if (event.phase == Phase::kCounter) {
        out << "\"" << JsonEscape(names_[event.name])
            << "\":" << Number(event.value);
        first_arg = false;
      }
      for (std::uint32_t a = args_begin; a != event.args_end; ++a) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << JsonEscape(names_[args_[a].first])
            << "\":" << args_[a].second;
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}\n";
}

std::string TraceRecorder::ChromeTraceJson() const {
  std::ostringstream out;
  WriteChromeTrace(out);
  return out.str();
}

bool EnvEnabled() {
  const char* raw = std::getenv("VECYCLE_TRACE");
  if (raw == nullptr) return false;
  std::string value(raw);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return value == "1" || value == "true" || value == "on" || value == "yes";
}

TraceRecorder& GlobalTrace() {
  static TraceRecorder recorder;
  return recorder;
}

}  // namespace vecycle::obs
