// Exit-time artifact dump for the bench and example binaries.
//
// A ScopedReporter declared at the top of main() writes the process-wide
// recorders to disk when the scope ends and tracing actually ran:
//
//   ${VECYCLE_TRACE_DIR:-.}/<name>.trace.json    (chrome://tracing, Perfetto)
//   ${VECYCLE_TRACE_DIR:-.}/<name>.metrics.json  (vecycle.metrics.v1)
//
// With tracing off (no VECYCLE_TRACE, no config flag) both recorders stay
// empty and nothing is written, so every binary can carry one
// unconditionally. CI points VECYCLE_TRACE_DIR at its artifact directory.
#pragma once

#include <string>
#include <string_view>

namespace vecycle::obs {

class ScopedReporter {
 public:
  /// `name` becomes the file stem, conventionally the binary's own name.
  explicit ScopedReporter(std::string_view name) : name_(name) {}
  ~ScopedReporter();

  ScopedReporter(const ScopedReporter&) = delete;
  ScopedReporter& operator=(const ScopedReporter&) = delete;

 private:
  std::string name_;
};

}  // namespace vecycle::obs
