// Tracing half of the observability layer (vecycle::obs).
//
// The paper's evaluation reports aggregates — migration time, send
// traffic, per-mechanism page counts (§4.4) — but *explaining* those
// numbers needs the timeline behind them: when each pre-copy round ran,
// how the channel's byte counter grew, how far the checksum engine's
// backlog stretched. TraceRecorder captures that timeline, keyed purely
// on simulated time (never wall clock, so traces are deterministic and
// ReplayCheck-stable), and exports Chrome-trace JSON that chrome://tracing
// and Perfetto load directly.
//
// The model mirrors the trace viewers': a *process* groups the tracks of
// one migration (or post-copy run), a *track* is one lane of spans or one
// counter series, and events are spans (duration), instants, or counter
// samples. All strings are interned so the per-event footprint is a few
// words; components hold a `TraceRecorder*` that is null when tracing is
// off, making the disabled path a single pointer test — the same pattern
// as the audit layer's AuditSink.
//
// Enablement mirrors `audit`: MigrationConfig::trace /
// PostCopyConfig::trace, the VECYCLE_TRACE environment variable (via the
// process-wide GlobalTrace() recorder), or an explicit recorder handed to
// the run.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace vecycle::obs {

/// Interned-string handle (track names, event names, argument keys).
using NameId = std::uint32_t;
/// Track handle: one lane in the trace (a Chrome-trace (pid, tid) pair).
using TrackId = std::uint32_t;
/// Handle of an open span, returned by BeginSpan and consumed by EndSpan.
using SpanId = std::uint64_t;

class TraceRecorder {
 public:
  /// Interns `name`; repeated calls with the same string return the same
  /// id. Interning is what keeps per-event cost at a few words.
  NameId Name(std::string_view name);

  /// Opens a new process group (one migration, one post-copy run, one
  /// bench scenario) labelled `label` in the viewer's process list.
  std::uint32_t NewProcess(std::string_view label);

  /// Creates a track named `name` under `process`. Tracks are cheap;
  /// give every component its own lane.
  TrackId Track(std::uint32_t process, std::string_view name);

  /// Opens a span on `track` starting at `start`. Spans on one track may
  /// nest (begin B inside A) but must close LIFO per track, which is what
  /// the viewers require to draw containment.
  SpanId BeginSpan(TrackId track, NameId name, SimTime start);
  void EndSpan(SpanId span, SimTime end);

  /// Records a complete span retroactively — for durations only known at
  /// the end (e.g. total migration time at Finalize).
  void Span(TrackId track, NameId name, SimTime start, SimTime end);

  /// Zero-duration marker.
  void Instant(TrackId track, NameId name, SimTime at);

  /// One sample of the counter series `name` on `track` (byte timelines,
  /// dirty-page counts, backlog depth).
  void Counter(TrackId track, NameId name, SimTime at, double value);

  /// Attaches `key`=`value` to a span or instant (shown in the viewer's
  /// args pane). Must refer to the most recently begun or completed
  /// event; call immediately after BeginSpan/Span/Instant.
  void Arg(NameId key, std::uint64_t value);

  [[nodiscard]] bool Empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t EventCount() const { return events_.size(); }
  void Clear();

  /// Serializes everything observed so far as Chrome-trace JSON
  /// (trace-event format, "X"/"i"/"C" phases plus name metadata).
  /// Events are emitted sorted by (time, recording order), so the output
  /// is byte-identical across identically seeded runs.
  void WriteChromeTrace(std::ostream& out) const;

  /// WriteChromeTrace into a string (tests, ReplayCheck comparisons).
  [[nodiscard]] std::string ChromeTraceJson() const;

 private:
  enum class Phase : std::uint8_t { kSpan, kInstant, kCounter };

  struct Event {
    Phase phase;
    TrackId track;
    NameId name;
    SimTime start;
    SimTime end;    // spans only
    double value;   // counters only
    /// Index into args_ (one past the last arg); args of event i are
    /// args_[events_[i-1].args_end, events_[i].args_end).
    std::uint32_t args_end;
  };

  struct TrackInfo {
    std::uint32_t process;
    NameId name;
  };

  void Push(Phase phase, TrackId track, NameId name, SimTime start,
            SimTime end, double value);

  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> name_ids_;
  std::vector<NameId> process_labels_;  // index = process id
  std::vector<TrackInfo> tracks_;       // index = track id
  std::vector<Event> events_;
  std::vector<std::pair<NameId, std::uint64_t>> args_;
  /// Open-span stack per track, for the LIFO nesting check.
  std::unordered_map<TrackId, std::vector<SpanId>> open_spans_;
};

/// True when the VECYCLE_TRACE environment variable requests tracing for
/// every run ("1"/"true"/"on"/"yes", case-insensitive) — the switch the
/// bench binaries and CI use, mirroring VECYCLE_AUDIT.
[[nodiscard]] bool EnvEnabled();

/// Process-wide recorder used when tracing is enabled by flag or
/// environment rather than by an explicit recorder. Bench binaries dump
/// it to disk at exit (bench_util::BenchReporter).
[[nodiscard]] TraceRecorder& GlobalTrace();

}  // namespace vecycle::obs
