#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vecycle::obs {

namespace {

std::string OutputDir() {
  const char* dir = std::getenv("VECYCLE_TRACE_DIR");
  return (dir != nullptr && *dir != '\0') ? dir : ".";
}

/// Best-effort write; a reporting failure must not fail the bench run
/// (and destructors must not throw), so problems go to stderr only.
template <typename WriteBody>
void WriteFile(const std::string& path, const WriteBody& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return;
  }
  body(out);
  if (!out) {
    std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
    return;
  }
  std::fprintf(stderr, "[obs] wrote %s\n", path.c_str());
}

}  // namespace

ScopedReporter::~ScopedReporter() {
  const TraceRecorder& trace = GlobalTrace();
  const MetricsRegistry& metrics = GlobalMetrics();
  if (trace.Empty() && metrics.Empty()) return;
  const std::string stem = OutputDir() + "/" + name_;
  if (!trace.Empty()) {
    WriteFile(stem + ".trace.json",
              [&trace](std::ostream& out) { trace.WriteChromeTrace(out); });
  }
  if (!metrics.Empty()) {
    WriteFile(stem + ".metrics.json", [&](std::ostream& out) {
      metrics.WriteJson(out, name_);
    });
  }
}

}  // namespace vecycle::obs
