// Metrics half of the observability layer (vecycle::obs).
//
// A MetricsRegistry collects labelled records of named counters (exact
// integers) and gauges (derived doubles) and serializes them to a stable,
// machine-readable JSON schema ("vecycle.metrics.v1"). The bench binaries
// emit one such file per run so CI can archive a perf trajectory; the
// schema is validated by tools/validate_metrics.py.
//
// The registry itself is schema-agnostic; the adapters that translate
// MigrationStats / PostCopyStats into full records (every field plus
// guarded derived rates) live with the structs they read, in
// migration/observe.hpp — obs stays below the migration layer.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vecycle::obs {

/// One labelled measurement record: ordered counter and gauge series.
/// Insertion order is preserved in the JSON so diffs stay readable.
struct MetricsRecord {
  std::string label;
  std::string kind;  ///< "precopy" | "postcopy" | free-form
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;

  void Counter(std::string_view name, std::uint64_t value) {
    counters.emplace_back(name, value);
  }
  void Gauge(std::string_view name, double value) {
    gauges.emplace_back(name, value);
  }
};

class MetricsRegistry {
 public:
  /// Appends a new record; the reference stays valid until the next call
  /// (callers fill it immediately).
  MetricsRecord& NewRecord(std::string_view label, std::string_view kind);

  [[nodiscard]] bool Empty() const { return records_.empty(); }
  [[nodiscard]] std::size_t Count() const { return records_.size(); }
  [[nodiscard]] const std::vector<MetricsRecord>& Records() const {
    return records_;
  }
  void Clear() { records_.clear(); }

  /// Serializes all records under the vecycle.metrics.v1 schema.
  /// `source` names the producing binary.
  void WriteJson(std::ostream& out, std::string_view source) const;
  [[nodiscard]] std::string ToJson(std::string_view source) const;

 private:
  std::vector<MetricsRecord> records_;
};

/// Process-wide registry, filled by runs whose tracing is enabled via
/// config flag or VECYCLE_TRACE; bench_util::BenchReporter writes it to
/// disk at exit.
[[nodiscard]] MetricsRegistry& GlobalMetrics();

}  // namespace vecycle::obs
