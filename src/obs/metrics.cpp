#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace vecycle::obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

MetricsRecord& MetricsRegistry::NewRecord(std::string_view label,
                                          std::string_view kind) {
  records_.push_back(MetricsRecord{});
  records_.back().label = std::string(label);
  records_.back().kind = std::string(kind);
  return records_.back();
}

void MetricsRegistry::WriteJson(std::ostream& out,
                                std::string_view source) const {
  out << "{\"schema\":\"vecycle.metrics.v1\",\"source\":\""
      << JsonEscape(source) << "\",\"records\":[";
  bool first_record = true;
  for (const auto& record : records_) {
    if (!first_record) out << ",";
    first_record = false;
    out << "{\"label\":\"" << JsonEscape(record.label) << "\",\"kind\":\""
        << JsonEscape(record.kind) << "\",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : record.counters) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(name) << "\":" << value;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : record.gauges) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(name) << "\":" << Number(value);
    }
    out << "}}";
  }
  out << "]}\n";
}

std::string MetricsRegistry::ToJson(std::string_view source) const {
  std::ostringstream out;
  WriteJson(out, source);
  return out.str();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace vecycle::obs
