// SHA-1, implemented from RFC 3174.
//
// §3.4 of the paper names SHA-1/SHA-256 as the drop-in replacements should
// MD5's known collision weaknesses be considered a risk for checkpoint
// matching. We provide SHA-1 so the checksum-algorithm ablation bench can
// quantify the rate difference the paper alludes to. Output is truncated to
// the library-wide 128-bit Digest128 (the full 160-bit state is available
// via FinalizeFull for tests).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "digest/digest.hpp"

namespace vecycle {

class Sha1 {
 public:
  Sha1();

  void Update(std::span<const std::byte> data);
  void Update(const void* data, std::size_t size);

  /// Digest truncated to the leading 128 bits.
  [[nodiscard]] Digest128 Finalize();

  /// Full 20-byte digest as five big-endian words, for verification against
  /// RFC 3174 test vectors.
  [[nodiscard]] std::array<std::uint32_t, 5> FinalizeFull();

 private:
  void ProcessBlock(const std::uint8_t* block);
  void Pad();

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

Digest128 Sha1Digest(std::span<const std::byte> data);
Digest128 Sha1Digest(const void* data, std::size_t size);

}  // namespace vecycle
