#include "digest/sha1.hpp"

#include <cstring>

#include "common/check.hpp"

namespace vecycle {
namespace {

constexpr std::uint32_t Rotl(std::uint32_t x, int c) {
  return (x << c) | (x >> (32 - c));
}

std::uint32_t LoadBe32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

Sha1::Sha1()
    : state_{0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u,
             0xc3d2e1f0u} {}

void Sha1::ProcessBlock(const std::uint8_t* block) {
  std::array<std::uint32_t, 80> w;
  for (int i = 0; i < 16; ++i) w[static_cast<std::size_t>(i)] = LoadBe32(block + i * 4);
  for (int i = 16; i < 80; ++i) {
    auto idx = static_cast<std::size_t>(i);
    w[idx] = Rotl(w[idx - 3] ^ w[idx - 8] ^ w[idx - 14] ^ w[idx - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t tmp =
        Rotl(a, 5) + f + e + k + w[static_cast<std::size_t>(i)];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::Update(const void* data, std::size_t size) {
  VEC_CHECK_MSG(!finalized_, "Sha1::Update after Finalize");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t fill = total_bytes_ % 64;
  total_bytes_ += size;

  if (fill != 0) {
    const std::size_t want = 64 - fill;
    const std::size_t take = size < want ? size : want;
    std::memcpy(buffer_.data() + fill, p, take);
    p += take;
    size -= take;
    fill += take;
    if (fill == 64) ProcessBlock(buffer_.data());
  }
  while (size >= 64) {
    ProcessBlock(p);
    p += 64;
    size -= 64;
  }
  if (size > 0) std::memcpy(buffer_.data(), p, size);
}

void Sha1::Update(std::span<const std::byte> data) {
  Update(data.data(), data.size());
}

void Sha1::Pad() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t fill = total_bytes_ % 64;
  const std::size_t pad_len = fill < 56 ? 56 - fill : 120 - fill;
  Update(kPad, pad_len);
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 8);
}

std::array<std::uint32_t, 5> Sha1::FinalizeFull() {
  VEC_CHECK_MSG(!finalized_, "Sha1::Finalize called twice");
  Pad();
  finalized_ = true;
  return state_;
}

Digest128 Sha1::Finalize() {
  const auto full = FinalizeFull();
  Digest128 d;
  d.words[0] = (static_cast<std::uint64_t>(full[0]) << 32) | full[1];
  d.words[1] = (static_cast<std::uint64_t>(full[2]) << 32) | full[3];
  return d;
}

Digest128 Sha1Digest(const void* data, std::size_t size) {
  Sha1 sha;
  sha.Update(data, size);
  return sha.Finalize();
}

Digest128 Sha1Digest(std::span<const std::byte> data) {
  return Sha1Digest(data.data(), data.size());
}

}  // namespace vecycle
