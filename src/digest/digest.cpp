#include "digest/digest.hpp"

#include "common/check.hpp"

namespace vecycle {

std::string Digest128::ToHex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint64_t word : words) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kHex[(word >> shift) & 0xf]);
    }
  }
  return out;
}

const char* ToString(DigestAlgorithm algorithm) {
  switch (algorithm) {
    case DigestAlgorithm::kMd5:
      return "md5";
    case DigestAlgorithm::kSha1:
      return "sha1";
    case DigestAlgorithm::kSha256:
      return "sha256";
    case DigestAlgorithm::kFnv1a:
      return "fnv1a";
  }
  VEC_CHECK_MSG(false, "ToString: unenumerated digest algorithm");
}

}  // namespace vecycle
