#include "digest/hasher.hpp"

#include "common/check.hpp"
#include "digest/fnv.hpp"
#include "digest/md5.hpp"
#include "digest/sha1.hpp"
#include "digest/sha256.hpp"

namespace vecycle {

Digest128 ComputeDigest(DigestAlgorithm algorithm, const void* data,
                        std::size_t size) {
  switch (algorithm) {
    case DigestAlgorithm::kMd5:
      return Md5Digest(data, size);
    case DigestAlgorithm::kSha1:
      return Sha1Digest(data, size);
    case DigestAlgorithm::kSha256:
      return Sha256Digest(data, size);
    case DigestAlgorithm::kFnv1a:
      return FnvDigest(data, size);
  }
  // A zero digest for an unknown algorithm would silently collide with
  // every other unknown-algorithm digest; fail loudly instead.
  VEC_CHECK_MSG(false, "ComputeDigest: unenumerated digest algorithm");
}

Digest128 ComputeDigest(DigestAlgorithm algorithm,
                        std::span<const std::byte> data) {
  return ComputeDigest(algorithm, data.data(), data.size());
}

}  // namespace vecycle
