// FNV-1a, 64-bit variant.
//
// Sender-side deduplication (CloudNet, §4.2) may use a cheap
// non-cryptographic hash because candidate pages live on the *same* host and
// can be byte-compared for true equality before acting on a match. FNV-1a
// plays that role here and also serves as the cheap end of the
// checksum-rate ablation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "digest/digest.hpp"

namespace vecycle {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

constexpr std::uint64_t Fnv1a64(const std::uint8_t* data, std::size_t size,
                                std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t Fnv1a64(std::span<const std::byte> data);

/// FNV widened into the common digest type: the 64-bit hash in word 0,
/// word 1 zero (its 8-byte wire size is handled by WireSizeBytes()).
Digest128 FnvDigest(const void* data, std::size_t size);
Digest128 FnvDigest(std::span<const std::byte> data);

}  // namespace vecycle
