// Process-wide (per-thread) memo of seed-determined page digests.
//
// Guest page content in this simulation is a pure function of the page's
// content seed: GuestMemory materializes page bytes from the seed, and
// checkpoints store the seed itself. A page digest is therefore a pure
// function of (algorithm, expansion flavor, seed) — yet distinct
// GuestMemory and Checkpoint objects keep re-hashing identical content,
// because every migration leg builds a fresh destination memory and a
// fresh checkpoint over the very seeds the source just hashed. The
// per-object generation-keyed caches cannot see across objects; this
// table can. Results are bit-identical by construction (the computation
// is pure), only wall-clock time changes — simulated CPU time is charged
// by the ChecksumEngine and is unaffected.
//
// The table is thread_local: the simulator is single-threaded, and a
// per-thread flat open-addressing map keeps a lookup at one or two cache
// lines with no synchronization on the hot path. Threads simply build
// independent memos.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "digest/digest.hpp"

namespace vecycle {

class SeedDigestMemo {
 public:
  /// How a seed expands into the bytes that were hashed; part of the key.
  enum class Flavor : std::uint8_t {
    kSeedBytes = 0,     ///< digest of the 8 seed bytes (seed-only mode)
    kMaterialized = 1,  ///< digest of the 4 KiB page the seed generates
  };

  /// The calling thread's memo.
  static SeedDigestMemo& Instance();

  /// Cached digest for (algorithm, flavor, seed), or nullopt on a miss.
  [[nodiscard]] std::optional<Digest128> Find(DigestAlgorithm algorithm,
                                              Flavor flavor,
                                              std::uint64_t seed);

  /// Records a computed digest. No-op once the table holds kMaxEntries
  /// (a bound, not an eviction policy: long processes stop growing the
  /// table and simply compute the tail honestly).
  void Store(DigestAlgorithm algorithm, Flavor flavor, std::uint64_t seed,
             const Digest128& digest);

  [[nodiscard]] std::uint64_t Hits() const { return hits_; }
  [[nodiscard]] std::uint64_t Misses() const { return misses_; }
  [[nodiscard]] std::uint64_t Size() const { return size_; }

  /// Drops every entry and resets the counters (tests, benchmarks).
  void Clear();

  static constexpr std::uint64_t kMaxEntries = 1ull << 20;

 private:
  struct Slot {
    std::uint64_t seed = 0;
    std::uint16_t tag = 0;  // algorithm low byte, flavor high byte; 0=free
    Digest128 digest;
  };

  [[nodiscard]] std::uint64_t ProbeStart(std::uint64_t seed,
                                         std::uint16_t tag) const;
  void Grow();

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;  // slots_.size() - 1 (power-of-two table)
  std::uint64_t size_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vecycle
