// Flat open-addressing map from 128-bit digests to 64-bit values.
//
// Sibling of DigestSet (the §3.3 membership structure): same power-of-two
// table, same SplitMix64 slot hash over the digest's low word, same
// <= 50% load factor — but each slot carries a value, and entries can be
// erased. The chunk store uses it as its content index: chunk digest ->
// slot in the chunk arena. Erasure uses backward-shift deletion instead
// of tombstones, so probe chains never degrade as the GC churns entries;
// the table's layout is a pure function of the live key set and the
// insertion order, which the store keeps deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "digest/digest.hpp"

namespace vecycle {

class DigestMap {
 public:
  DigestMap() = default;

  /// Inserts `digest -> value`; returns false (leaving the stored value
  /// untouched) when the digest is already present.
  bool Insert(const Digest128& digest, std::uint64_t value);

  /// Pointer to the stored value, or nullptr when absent.
  [[nodiscard]] const std::uint64_t* Find(const Digest128& digest) const;

  /// Removes the digest; returns false when it was absent. Backward-shift
  /// deletion: later entries of the probe chain slide into the hole, so
  /// no tombstone is left behind.
  bool Erase(const Digest128& digest);

  [[nodiscard]] std::uint64_t Size() const { return size_; }
  [[nodiscard]] bool Empty() const { return size_ == 0; }

  /// Slot count of the backing table (diagnostics / load-factor checks).
  [[nodiscard]] std::uint64_t Capacity() const { return slots_.size(); }

 private:
  struct Slot {
    Digest128 digest;
    std::uint64_t value = 0;
    bool occupied = false;
  };

  void Grow();
  [[nodiscard]] std::uint64_t IdealIndex(const Digest128& digest) const;

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;  // slots_.size() - 1 (power-of-two table)
  std::uint64_t size_ = 0;
};

}  // namespace vecycle
