// Algorithm-dispatched one-shot hashing, so higher layers can be configured
// with a DigestAlgorithm value instead of hard-coding MD5 (§3.4 asks for
// exactly this pluggability).
#pragma once

#include <cstddef>
#include <span>

#include "digest/digest.hpp"

namespace vecycle {

Digest128 ComputeDigest(DigestAlgorithm algorithm, const void* data,
                        std::size_t size);
Digest128 ComputeDigest(DigestAlgorithm algorithm,
                        std::span<const std::byte> data);

}  // namespace vecycle
