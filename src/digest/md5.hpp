// MD5 message digest, implemented from RFC 1321.
//
// The VeCycle prototype uses MD5 to decide whether a page already exists at
// the destination (§3.2). We implement it from the specification rather
// than depending on a crypto library; correctness is pinned by the RFC 1321
// appendix test vectors in tests/digest_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "digest/digest.hpp"

namespace vecycle {

/// Incremental MD5 context. Usage:
///   Md5 md5;
///   md5.Update(chunk1); md5.Update(chunk2);
///   Digest128 d = md5.Finalize();
/// Finalize() may be called once; the context is not reusable afterwards.
class Md5 {
 public:
  Md5();

  void Update(std::span<const std::byte> data);
  void Update(const void* data, std::size_t size);

  /// Completes padding and returns the 128-bit digest. The digest's words
  /// hold the RFC output bytes in big-endian order, so ToHex() prints the
  /// familiar md5sum string.
  [[nodiscard]] Digest128 Finalize();

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience wrapper.
Digest128 Md5Digest(std::span<const std::byte> data);
Digest128 Md5Digest(const void* data, std::size_t size);

}  // namespace vecycle
