#include "digest/md5.hpp"

#include <cstring>

#include "common/check.hpp"

namespace vecycle {
namespace {

// Per-round left-rotation amounts (RFC 1321 §3.4).
constexpr std::array<std::uint32_t, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// Sine-derived constants T[i] = floor(2^32 * |sin(i+1)|) (RFC 1321 §3.4).
constexpr std::array<std::uint32_t, 64> kSine = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::uint32_t Rotl(std::uint32_t x, std::uint32_t c) {
  return (x << c) | (x >> (32 - c));
}

std::uint32_t LoadLe32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void StoreLe32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

Md5::Md5() : state_{0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u} {}

void Md5::ProcessBlock(const std::uint8_t* block) {
  std::array<std::uint32_t, 16> m;
  for (int i = 0; i < 16; ++i) m[static_cast<std::size_t>(i)] = LoadLe32(block + i * 4);

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];

  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t f;
    std::uint32_t g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + Rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::Update(const void* data, std::size_t size) {
  VEC_CHECK_MSG(!finalized_, "Md5::Update after Finalize");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t fill = total_bytes_ % 64;
  total_bytes_ += size;

  if (fill != 0) {
    const std::size_t want = 64 - fill;
    const std::size_t take = size < want ? size : want;
    std::memcpy(buffer_.data() + fill, p, take);
    p += take;
    size -= take;
    fill += take;
    if (fill == 64) ProcessBlock(buffer_.data());
  }
  while (size >= 64) {
    ProcessBlock(p);
    p += 64;
    size -= 64;
  }
  if (size > 0) std::memcpy(buffer_.data(), p, size);
}

void Md5::Update(std::span<const std::byte> data) {
  Update(data.data(), data.size());
}

Digest128 Md5::Finalize() {
  VEC_CHECK_MSG(!finalized_, "Md5::Finalize called twice");
  finalized_ = true;

  const std::uint64_t bit_len = total_bytes_ * 8;
  // Append the 0x80 terminator, zero padding, then the 64-bit length.
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t fill = total_bytes_ % 64;
  const std::size_t pad_len = fill < 56 ? 56 - fill : 120 - fill;

  finalized_ = false;  // allow the padding Updates below
  Update(kPad, pad_len);
  std::uint8_t len_bytes[8];
  StoreLe32(len_bytes, static_cast<std::uint32_t>(bit_len));
  StoreLe32(len_bytes + 4, static_cast<std::uint32_t>(bit_len >> 32));
  Update(len_bytes, 8);
  finalized_ = true;

  std::uint8_t out[16];
  for (int i = 0; i < 4; ++i) {
    StoreLe32(out + i * 4, state_[static_cast<std::size_t>(i)]);
  }
  // Pack big-endian so ToHex() matches md5sum output ordering.
  Digest128 d;
  for (int i = 0; i < 8; ++i) {
    d.words[0] = (d.words[0] << 8) | out[i];
    d.words[1] = (d.words[1] << 8) | out[8 + i];
  }
  return d;
}

Digest128 Md5Digest(const void* data, std::size_t size) {
  Md5 md5;
  md5.Update(data, size);
  return md5.Finalize();
}

Digest128 Md5Digest(std::span<const std::byte> data) {
  return Md5Digest(data.data(), data.size());
}

}  // namespace vecycle
