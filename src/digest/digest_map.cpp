#include "digest/digest_map.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace vecycle {

namespace {

/// Same slot hash as DigestSet: SplitMix64 of the low word, so FNV-widened
/// digests (high word zero) still spread across the table.
std::uint64_t SlotHash(const Digest128& digest) {
  return SplitMix64(digest.words[1]).Next();
}

}  // namespace

std::uint64_t DigestMap::IdealIndex(const Digest128& digest) const {
  return SlotHash(digest) & mask_;
}

void DigestMap::Grow() {
  const std::uint64_t capacity =
      slots_.empty() ? 16 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  size_ = 0;
  for (const Slot& slot : old) {
    if (slot.occupied) Insert(slot.digest, slot.value);
  }
}

bool DigestMap::Insert(const Digest128& digest, std::uint64_t value) {
  if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) Grow();
  std::uint64_t index = IdealIndex(digest);
  while (true) {
    Slot& slot = slots_[index];
    if (!slot.occupied) {
      slot.digest = digest;
      slot.value = value;
      slot.occupied = true;
      ++size_;
      return true;
    }
    if (slot.digest == digest) return false;
    index = (index + 1) & mask_;
  }
}

const std::uint64_t* DigestMap::Find(const Digest128& digest) const {
  if (slots_.empty()) return nullptr;
  std::uint64_t index = IdealIndex(digest);
  while (true) {
    const Slot& slot = slots_[index];
    if (!slot.occupied) return nullptr;
    if (slot.digest == digest) return &slot.value;
    index = (index + 1) & mask_;
  }
}

bool DigestMap::Erase(const Digest128& digest) {
  if (slots_.empty()) return false;
  std::uint64_t index = IdealIndex(digest);
  while (true) {
    Slot& slot = slots_[index];
    if (!slot.occupied) return false;
    if (slot.digest == digest) break;
    index = (index + 1) & mask_;
  }
  // Backward shift: walk the probe chain after the hole; any entry whose
  // ideal slot lies outside the (hole, current] stretch wraps into the
  // hole, which then moves forward. An empty slot ends the chain.
  std::uint64_t hole = index;
  std::uint64_t probe = (hole + 1) & mask_;
  while (slots_[probe].occupied) {
    const std::uint64_t ideal = IdealIndex(slots_[probe].digest);
    // Distance from ideal slot to `probe` vs from `hole` to `probe`, both
    // measured forward around the ring: the entry may move into the hole
    // only if doing so does not put it before its ideal slot.
    const std::uint64_t probe_dist = (probe - ideal) & mask_;
    const std::uint64_t hole_dist = (probe - hole) & mask_;
    if (probe_dist >= hole_dist) {
      slots_[hole] = slots_[probe];
      hole = probe;
    }
    probe = (probe + 1) & mask_;
  }
  slots_[hole] = Slot{};
  --size_;
  return true;
}

}  // namespace vecycle
