#include "digest/digest_set.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace vecycle {

namespace {

/// Slot index for a digest: SplitMix64 of the low word. Digests from the
/// cryptographic algorithms are already uniform, but FNV-widened digests
/// are not — the mix makes the table insensitive to the algorithm choice.
std::uint64_t SlotHash(const Digest128& digest) {
  return SplitMix64(digest.words[1]).Next();
}

std::uint64_t NextPowerOfTwo(std::uint64_t n) {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

DigestSet::DigestSet(std::vector<Digest128> digests) {
  if (digests.empty()) return;
  // <= 50% load keeps linear-probe chains short (expected < 2 probes).
  const std::uint64_t capacity =
      NextPowerOfTwo(std::max<std::uint64_t>(8, digests.size() * 2));
  slots_.assign(capacity, kEmptySlot);
  mask_ = capacity - 1;
  for (const auto& digest : digests) Insert(digest);
  digests.clear();
}

void DigestSet::Insert(const Digest128& digest) {
  if (digest == kEmptySlot) {
    if (!holds_empty_marker_) {
      holds_empty_marker_ = true;
      ++size_;
    }
    return;
  }
  std::uint64_t index = SlotHash(digest) & mask_;
  while (true) {
    Digest128& slot = slots_[index];
    if (slot == kEmptySlot) {
      slot = digest;
      ++size_;
      return;
    }
    if (slot == digest) return;  // duplicate
    index = (index + 1) & mask_;
  }
}

bool DigestSet::Contains(const Digest128& digest) const {
  if (digest == kEmptySlot) return holds_empty_marker_;
  if (slots_.empty()) return false;
  std::uint64_t index = SlotHash(digest) & mask_;
  while (true) {
    const Digest128& slot = slots_[index];
    if (slot == digest) return true;
    if (slot == kEmptySlot) return false;
    index = (index + 1) & mask_;
  }
}

std::vector<Digest128> DigestSet::ToSortedVector() const {
  std::vector<Digest128> digests;
  digests.reserve(size_);
  for (const auto& slot : slots_) {
    if (slot != kEmptySlot) digests.push_back(slot);
  }
  if (holds_empty_marker_) digests.push_back(kEmptySlot);
  std::sort(digests.begin(), digests.end());
  return digests;
}

}  // namespace vecycle
